package chaosproxy

import (
	"bytes"
	"io"
	"math/bits"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("echo listen: %v", err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				io.Copy(conn, conn)
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func startProxy(t *testing.T, target string, prof Profile, seed int64) *Proxy {
	t.Helper()
	p, err := New(Config{ListenAddr: "127.0.0.1:0", TargetAddr: target, Profile: prof, Seed: seed})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p.Start()
	t.Cleanup(func() { p.Close() })
	return p
}

func TestCleanProfileIsTransparent(t *testing.T) {
	ln := echoServer(t)
	p := startProxy(t, ln.Addr().String(), Profile{Name: "clean"}, 1)

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	msg := []byte("sidewinder chaos transparency check")
	if _, err := conn.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(msg))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: %q != %q", got, msg)
	}
	if n := p.Stats().Conns.Load(); n != 1 {
		t.Fatalf("conns = %d, want 1", n)
	}
	if p.Stats().ForwardedBytes.Load() < uint64(2*len(msg)) {
		t.Fatalf("forwarded %d bytes, want >= %d", p.Stats().ForwardedBytes.Load(), 2*len(msg))
	}
}

func TestResetKillsConnection(t *testing.T) {
	ln := echoServer(t)
	p := startProxy(t, ln.Addr().String(), Profile{Name: "resets", ResetProb: 1}, 2)

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("doomed")); err != nil {
		t.Fatalf("write: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 8)); err == nil {
		t.Fatalf("read succeeded through a ResetProb=1 proxy")
	}
	if p.Stats().Resets.Load() == 0 {
		t.Fatalf("no resets counted")
	}
}

func TestMidFrameCutForwardsStrictPrefix(t *testing.T) {
	ln := echoServer(t)
	p := startProxy(t, ln.Addr().String(), Profile{Name: "cut", CutProb: 1}, 3)

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	msg := bytes.Repeat([]byte{0xAB}, 256)
	if _, err := conn.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	// The echo server only saw a strict prefix before the kill, so the
	// client can read back at most len(msg)-1 bytes before an error.
	n, _ := io.ReadFull(conn, make([]byte, len(msg)))
	if n >= len(msg) {
		t.Fatalf("full message survived a CutProb=1 proxy")
	}
	if p.Stats().Cuts.Load() == 0 {
		t.Fatalf("no cuts counted")
	}
}

func TestCorruptionFlipsExactlyOneBit(t *testing.T) {
	ln := echoServer(t)
	p := startProxy(t, ln.Addr().String(), Profile{Name: "corrupt", CorruptProb: 1}, 4)

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	msg := bytes.Repeat([]byte{0x55}, 64)
	if _, err := conn.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(msg))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	// Both directions corrupt one bit per chunk, so the round trip
	// differs from the original in one or two bits.
	diff := 0
	for i := range msg {
		diff += bits.OnesCount8(msg[i] ^ got[i])
	}
	if diff < 1 || diff > 2 {
		t.Fatalf("round trip flipped %d bits, want 1..2", diff)
	}
	if p.Stats().CorruptChunks.Load() == 0 {
		t.Fatalf("no corruption counted")
	}
}

func TestPartitionBlackholesBytes(t *testing.T) {
	ln := echoServer(t)
	p := startProxy(t, ln.Addr().String(), Profile{
		Name:         "partition",
		PartitionDur: 30 * time.Second, // window opens immediately and outlives the test
	}, 5)

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("into the void")); err != nil {
		t.Fatalf("write: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	if _, err := conn.Read(make([]byte, 8)); err == nil {
		t.Fatalf("read returned data through a blackhole partition")
	}
	if p.Stats().BlackholedBytes.Load() == 0 {
		t.Fatalf("no blackholed bytes counted")
	}
}

func TestCloseInterruptsStalledPumps(t *testing.T) {
	ln := echoServer(t)
	p := startProxy(t, ln.Addr().String(), Profile{
		Name:      "stall",
		StallProb: 1,
		StallDur:  time.Hour,
	}, 6)

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("stall me")); err != nil {
		t.Fatalf("write: %v", err)
	}
	start := time.Now()
	done := make(chan struct{})
	go func() { p.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("Close did not interrupt an hour-long stall")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("Close took %v", time.Since(start))
	}
}

func TestPumpSeedIsDeterministicAndDirectional(t *testing.T) {
	if pumpSeed(42, 7, 0) != pumpSeed(42, 7, 0) {
		t.Fatalf("pumpSeed not deterministic")
	}
	if pumpSeed(42, 7, 0) == pumpSeed(42, 7, 1) {
		t.Fatalf("directions share a PRNG stream")
	}
	if pumpSeed(42, 7, 0) == pumpSeed(43, 7, 0) {
		t.Fatalf("seeds share a PRNG stream")
	}
}

func TestProfileRegistry(t *testing.T) {
	names := Profiles()
	if len(names) < 6 {
		t.Fatalf("expected >= 6 built-in profiles, got %v", names)
	}
	for _, n := range names {
		p, err := ProfileByName(n)
		if err != nil {
			t.Fatalf("ProfileByName(%q): %v", n, err)
		}
		if p.Name != n {
			t.Fatalf("profile %q carries name %q", n, p.Name)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("built-in %q invalid: %v", n, err)
		}
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatalf("unknown profile resolved")
	}
	if err := (Profile{ResetProb: 1.5}).Validate(); err == nil {
		t.Fatalf("ResetProb 1.5 validated")
	}
	if err := (Profile{StallDur: -1}).Validate(); err == nil {
		t.Fatalf("negative StallDur validated")
	}
	if _, err := New(Config{Profile: Profile{CutProb: 2}}); err == nil {
		t.Fatalf("New accepted an invalid profile")
	}
	if _, err := New(Config{}); err == nil {
		t.Fatalf("New accepted an empty target")
	}
}
