// Package chaosproxy is a seeded fault-injecting TCP proxy for hardening
// the fleet ingest path. It sits between fleetload and sidewinderd and
// subjects every connection to a profile of network hostility —
// connection resets, mid-frame cuts, byte corruption, latency jitter,
// slow-loris stalls, and timed blackhole partitions — with every fault
// decision drawn from a PRNG seeded by (Seed, connection index,
// direction), so a given profile × seed replays the same fault sequence
// run after run. It is the socket-layer sibling of the intra-device link
// fault injector (internal/link.FaultConfig), extended with the failure
// modes only a real network has.
package chaosproxy

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes a proxy instance.
type Config struct {
	// ListenAddr is the address clients dial (e.g. "127.0.0.1:0").
	ListenAddr string
	// TargetAddr is the real daemon's ingest address.
	TargetAddr string
	// Profile selects the fault mix.
	Profile Profile
	// Seed drives every fault decision. Same seed, same profile, same
	// connection order → same faults.
	Seed int64
	// Logf, when non-nil, receives one line per injected fault class
	// transition (connection opened/killed). Keep nil in tests.
	Logf func(format string, args ...any)
}

// Stats tallies what the proxy did, with atomic counters so tests and
// the daemon wrapper can read them live.
type Stats struct {
	Conns           atomic.Uint64 // accepted client connections
	DialErrors      atomic.Uint64 // upstream dial failures (conn dropped)
	Resets          atomic.Uint64 // abrupt connection kills (RST where possible)
	Cuts            atomic.Uint64 // mid-frame cuts: partial chunk forwarded, then killed
	CorruptChunks   atomic.Uint64 // chunks with one bit flipped
	Delays          atomic.Uint64 // jitter sleeps
	Stalls          atomic.Uint64 // slow-loris stalls
	BlackholedBytes atomic.Uint64 // bytes silently dropped during a partition
	ForwardedBytes  atomic.Uint64 // bytes delivered intact (post-mangling)
}

// Snapshot is a plain-values copy of Stats for reports.
type Snapshot struct {
	Conns           uint64 `json:"conns"`
	DialErrors      uint64 `json:"dial_errors,omitempty"`
	Resets          uint64 `json:"resets,omitempty"`
	Cuts            uint64 `json:"cuts,omitempty"`
	CorruptChunks   uint64 `json:"corrupt_chunks,omitempty"`
	Delays          uint64 `json:"delays,omitempty"`
	Stalls          uint64 `json:"stalls,omitempty"`
	BlackholedBytes uint64 `json:"blackholed_bytes,omitempty"`
	ForwardedBytes  uint64 `json:"forwarded_bytes"`
}

// Snapshot copies the live counters.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		Conns:           s.Conns.Load(),
		DialErrors:      s.DialErrors.Load(),
		Resets:          s.Resets.Load(),
		Cuts:            s.Cuts.Load(),
		CorruptChunks:   s.CorruptChunks.Load(),
		Delays:          s.Delays.Load(),
		Stalls:          s.Stalls.Load(),
		BlackholedBytes: s.BlackholedBytes.Load(),
		ForwardedBytes:  s.ForwardedBytes.Load(),
	}
}

// Proxy is a running fault-injecting TCP proxy.
type Proxy struct {
	cfg   Config
	ln    net.Listener
	start time.Time
	next  atomic.Uint64 // connection index
	stats Stats

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  chan struct{}
	wg    sync.WaitGroup
}

// New validates the config, binds the listen address, and returns a
// proxy ready to Serve.
func New(cfg Config) (*Proxy, error) {
	if err := cfg.Profile.Validate(); err != nil {
		return nil, err
	}
	if cfg.TargetAddr == "" {
		return nil, fmt.Errorf("chaosproxy: target address required")
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("chaosproxy: listen: %w", err)
	}
	return &Proxy{
		cfg:   cfg,
		ln:    ln,
		start: time.Now(),
		conns: make(map[net.Conn]struct{}),
		done:  make(chan struct{}),
	}, nil
}

// Addr is the proxy's client-facing listen address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Stats exposes the live fault counters.
func (p *Proxy) Stats() *Stats { return &p.stats }

// Start serves in the background.
func (p *Proxy) Start() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.Serve()
	}()
}

// Serve accepts and proxies connections until Close.
func (p *Proxy) Serve() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		idx := p.next.Add(1) - 1
		p.stats.Conns.Add(1)
		p.logf("conn %d: accepted from %s", idx, conn.RemoteAddr())
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handle(conn, idx)
		}()
	}
}

// Close stops the listener, kills every live connection, and waits for
// the pumps to drain.
func (p *Proxy) Close() error {
	select {
	case <-p.done:
		return nil
	default:
	}
	close(p.done)
	err := p.ln.Close()
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Proxy) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// inPartition reports whether the timed blackhole window is open.
func (p *Proxy) inPartition() bool {
	prof := p.cfg.Profile
	if prof.PartitionDur <= 0 {
		return false
	}
	since := time.Since(p.start)
	return since >= prof.PartitionAfter && since < prof.PartitionAfter+prof.PartitionDur
}

// handle proxies one client connection to the target with a pump per
// direction. Each pump gets its own PRNG derived from (seed, connection
// index, direction) so fault sequences don't depend on goroutine
// scheduling.
func (p *Proxy) handle(client net.Conn, idx uint64) {
	defer client.Close()
	server, err := net.Dial("tcp", p.cfg.TargetAddr)
	if err != nil {
		p.stats.DialErrors.Add(1)
		p.logf("conn %d: upstream dial failed: %v", idx, err)
		return
	}
	defer server.Close()
	p.track(client)
	p.track(server)
	defer p.untrack(client)
	defer p.untrack(server)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); p.pump(client, server, idx, 0) }()
	go func() { defer wg.Done(); p.pump(server, client, idx, 1) }()
	wg.Wait()
	p.logf("conn %d: closed", idx)
}

// pumpSeed mixes the proxy seed with the connection index and direction
// (SplitMix64-style finalizer) so per-pump streams are independent.
func pumpSeed(seed int64, idx uint64, dir int) int64 {
	z := uint64(seed) ^ (idx*2 + uint64(dir) + 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// pump copies src→dst, running every chunk through the fault lottery.
func (p *Proxy) pump(src, dst net.Conn, idx uint64, dir int) {
	rng := rand.New(rand.NewSource(pumpSeed(p.cfg.Seed, idx, dir)))
	buf := make([]byte, 1<<12)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if !p.deliver(rng, buf[:n], src, dst, idx) {
				return
			}
		}
		if err != nil {
			// Either side ending ends the pair: the protocol has no
			// half-open sessions.
			src.Close()
			dst.Close()
			return
		}
	}
}

// kill tears both legs down abruptly. SetLinger(0) turns the close into
// a TCP RST where the platform allows it — the authentic "connection
// reset by peer" a mobile uplink produces.
func kill(a, b net.Conn) {
	for _, c := range []net.Conn{a, b} {
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		c.Close()
	}
}

// deliver runs one chunk through the fault lottery and forwards what
// survives. Returns false when the connection pair was killed.
func (p *Proxy) deliver(rng *rand.Rand, chunk []byte, src, dst net.Conn, idx uint64) bool {
	prof := p.cfg.Profile
	// Blackhole partition: bytes vanish, no errors, no RST — both ends
	// just stop hearing each other, which is what exercises the client's
	// ack timeout and the server's idle reaper.
	if p.inPartition() {
		p.stats.BlackholedBytes.Add(uint64(len(chunk)))
		return true
	}
	if prof.CutProb > 0 && rng.Float64() < prof.CutProb {
		// Mid-frame cut: a strict prefix escapes, then the line dies. The
		// receiver is left holding a torn frame.
		k := rng.Intn(len(chunk))
		if k > 0 {
			dst.Write(chunk[:k])
		}
		p.stats.Cuts.Add(1)
		p.logf("conn %d: mid-frame cut after %d/%d bytes", idx, k, len(chunk))
		kill(src, dst)
		return false
	}
	if prof.ResetProb > 0 && rng.Float64() < prof.ResetProb {
		p.stats.Resets.Add(1)
		p.logf("conn %d: reset", idx)
		kill(src, dst)
		return false
	}
	if prof.CorruptProb > 0 && rng.Float64() < prof.CorruptProb {
		i := rng.Intn(len(chunk))
		chunk[i] ^= 1 << uint(rng.Intn(8))
		p.stats.CorruptChunks.Add(1)
	}
	if prof.StallProb > 0 && rng.Float64() < prof.StallProb {
		p.stats.Stalls.Add(1)
		p.logf("conn %d: stalling %v", idx, prof.StallDur)
		p.sleep(prof.StallDur)
	} else if prof.DelayProb > 0 && rng.Float64() < prof.DelayProb {
		p.stats.Delays.Add(1)
		max := int64(prof.DelayMax)
		if max <= 0 {
			max = int64(time.Millisecond)
		}
		p.sleep(time.Duration(1 + rng.Int63n(max)))
	}
	if _, err := dst.Write(chunk); err != nil {
		src.Close()
		dst.Close()
		return false
	}
	p.stats.ForwardedBytes.Add(uint64(len(chunk)))
	return true
}

// sleep waits out a fault-injected delay but aborts promptly on Close.
func (p *Proxy) sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-p.done:
	}
}
