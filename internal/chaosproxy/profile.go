package chaosproxy

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Profile is one fault mix. Probabilities are per delivered chunk (one
// socket read's worth of bytes); the zero value forwards everything
// untouched.
type Profile struct {
	// Name identifies the profile in reports and flags.
	Name string `json:"name"`
	// ResetProb kills the connection pair abruptly (RST where the
	// platform allows) before the chunk is forwarded.
	ResetProb float64 `json:"reset_prob,omitempty"`
	// CutProb forwards a strict prefix of the chunk and then kills the
	// pair — a mid-frame cut that leaves the receiver holding a torn
	// frame.
	CutProb float64 `json:"cut_prob,omitempty"`
	// CorruptProb flips one random bit of one random byte in the chunk
	// (the link CRC turns this into a counted corrupt frame, or — if it
	// hits framing — a malformed-stream teardown).
	CorruptProb float64 `json:"corrupt_prob,omitempty"`
	// DelayProb holds the chunk back by uniform jitter in (0, DelayMax].
	DelayProb float64       `json:"delay_prob,omitempty"`
	DelayMax  time.Duration `json:"delay_max,omitempty"`
	// StallProb freezes the pump for StallDur before forwarding — the
	// slow-loris that exercises ack timeouts and idle reaping.
	StallProb float64       `json:"stall_prob,omitempty"`
	StallDur  time.Duration `json:"stall_dur,omitempty"`
	// PartitionAfter/PartitionDur open a timed blackhole window relative
	// to proxy start: during it, every byte in either direction silently
	// vanishes.
	PartitionAfter time.Duration `json:"partition_after,omitempty"`
	PartitionDur   time.Duration `json:"partition_dur,omitempty"`
}

// Validate checks probabilities and durations.
func (p Profile) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"ResetProb", p.ResetProb},
		{"CutProb", p.CutProb},
		{"CorruptProb", p.CorruptProb},
		{"DelayProb", p.DelayProb},
		{"StallProb", p.StallProb},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("chaosproxy: %s must be in [0,1], got %g", f.name, f.v)
		}
	}
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"DelayMax", p.DelayMax},
		{"StallDur", p.StallDur},
		{"PartitionAfter", p.PartitionAfter},
		{"PartitionDur", p.PartitionDur},
	} {
		if d.v < 0 {
			return fmt.Errorf("chaosproxy: %s must be >= 0, got %v", d.name, d.v)
		}
	}
	return nil
}

// builtins is the named profile registry used by the chaosproxy daemon
// and the chaos soak. Probabilities are tuned so a few-thousand-frame
// fleet replay sees every fault class several times without drowning.
var builtins = map[string]Profile{
	"clean": {Name: "clean"},
	"resets": {
		Name:      "resets",
		ResetProb: 0.002,
		CutProb:   0.002,
	},
	"corrupt": {
		Name:        "corrupt",
		CorruptProb: 0.01,
	},
	"slow": {
		Name:      "slow",
		DelayProb: 0.2,
		DelayMax:  2 * time.Millisecond,
	},
	"stall": {
		Name:      "stall",
		StallProb: 0.001,
		StallDur:  1500 * time.Millisecond,
	},
	"partition": {
		Name:           "partition",
		PartitionAfter: 400 * time.Millisecond,
		PartitionDur:   700 * time.Millisecond,
	},
	"combined": {
		Name:        "combined",
		ResetProb:   0.001,
		CutProb:     0.001,
		CorruptProb: 0.003,
		DelayProb:   0.05,
		DelayMax:    time.Millisecond,
	},
}

// Profiles lists the built-in profile names, sorted.
func Profiles() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ProfileByName resolves a built-in profile.
func ProfileByName(name string) (Profile, error) {
	if p, ok := builtins[name]; ok {
		return p, nil
	}
	return Profile{}, fmt.Errorf("chaosproxy: unknown profile %q (have: %s)",
		name, strings.Join(Profiles(), ", "))
}
