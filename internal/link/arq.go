package link

// Stop-and-wait ARQ over the raw frame channel.
//
// The audio-jack UART of the paper's prototype (§3.4) is effectively
// half-duplex at the protocol level — the hub is a single-threaded
// microcontroller that alternates between sampling sensors and servicing
// the serial line, and neither side has buffer memory for a window of
// in-flight frames. Stop-and-wait (one outstanding frame, resent on
// timeout until acknowledged) is the textbook fit: one sequence byte, one
// timer, one retransmit buffer, and it cannot overrun the peer.
//
// A reliable frame is wrapped as MsgArqData [seq | inner type | inner
// payload]; the receiver acks every data frame it can decode (MsgArqAck
// [seq]) and delivers only the sequence number it expects, so a lost ack —
// which makes the sender retransmit — surfaces as a suppressed duplicate
// rather than a doubled wake event. Timeouts back off exponentially up to
// a cap; after MaxRetries unacknowledged attempts the frame is declared
// dead and handed to the application through TakeDead, keeping the retry
// budget bounded.

import (
	"fmt"

	"sidewinder/internal/telemetry"
)

// ARQConfig tunes the stop-and-wait reliability layer. Zero fields take
// the defaults noted on each.
type ARQConfig struct {
	// TimeoutTicks is the initial ack timeout, in Service ticks
	// (default 2).
	TimeoutTicks int
	// MaxTimeoutTicks caps the exponential backoff (default 16).
	MaxTimeoutTicks int
	// MaxRetries bounds retransmissions of a single frame before it is
	// declared dead (default 8). At a 5% frame-loss rate eight retries
	// put the residual failure probability below 1e-11 per frame.
	MaxRetries int
}

func (c ARQConfig) withDefaults() ARQConfig {
	if c.TimeoutTicks <= 0 {
		c.TimeoutTicks = 2
	}
	if c.MaxTimeoutTicks <= 0 {
		c.MaxTimeoutTicks = 16
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 8
	}
	return c
}

// ARQStats counts one session's traffic from this side's perspective.
type ARQStats struct {
	DataSent      int // reliable frames accepted for transmission
	DataAcked     int // reliable frames confirmed delivered
	DataReceived  int // in-sequence reliable frames delivered upward
	Retransmits   int // timeout-driven re-sends
	AcksSent      int // acknowledgements transmitted
	DupsDropped   int // out-of-sequence data frames suppressed
	StaleAcks     int // acks for frames no longer outstanding
	Dead          int // frames abandoned after MaxRetries
	LossySent     int // fire-and-forget frames bypassing the ARQ
	Malformed     int // ARQ frames with an impossible payload shape
	OverheadBytes int // wire bytes beyond a raw send: headers of
	// retransmissions plus all ack traffic
}

// outstanding is the single in-flight reliable frame.
type outstanding struct {
	frame     Frame
	seq       byte
	timeout   int // current backoff, in ticks
	ticksLeft int
	retries   int
}

// ARQ provides reliable, duplicate-free, in-order delivery of frames over
// a lossy Endpoint. It implements Port: Send is reliable, SendLossy
// bypasses the protocol, and Tick drives timeouts — callers must tick
// regularly (the manager and hub node do so once per Service pass).
type ARQ struct {
	ep      *Endpoint
	cfg     ARQConfig
	sendq   []Frame // reliable frames not yet transmitted
	out     *outstanding
	nextSeq byte
	expect  byte
	// expectAny makes the receiver adopt the next data frame's sequence
	// number instead of demanding `expect`. It is set by Reboot (this
	// side lost its receive state) and Resync (the peer lost its send
	// state), so the two sides can re-converge after a crash.
	expectAny bool
	delivered []Frame // decoded inbound frames awaiting Receive
	dead      []Frame // reliable frames abandoned after MaxRetries
	stats     ARQStats

	// Telemetry handles, nil (no-op) until SetTelemetry attaches them.
	cRetransmits *telemetry.Counter
	cDead        *telemetry.Counter
	trace        *telemetry.Stream
}

// SetTelemetry attaches metric counters (named <prefix>.arq_retransmits,
// <prefix>.arq_dead_frames) and an optional trace stream that receives
// frame.retransmit / frame.dead instants. Either argument may be nil. The
// underlying endpoint is instrumented separately via Endpoint.SetTelemetry.
func (a *ARQ) SetTelemetry(reg *telemetry.Registry, prefix string, trace *telemetry.Stream) {
	a.cRetransmits = reg.Counter(prefix + ".arq_retransmits")
	a.cDead = reg.Counter(prefix + ".arq_dead_frames")
	a.trace = trace
}

// NewARQ wraps an endpoint in the stop-and-wait reliability layer. Both
// pipe ends must be wrapped for reliable traffic to flow (a raw peer
// would not acknowledge).
func NewARQ(ep *Endpoint, cfg ARQConfig) *ARQ {
	return &ARQ{ep: ep, cfg: cfg.withDefaults()}
}

// Raw returns the underlying endpoint, for wire-level accounting.
func (a *ARQ) Raw() *Endpoint { return a.ep }

// Stats returns a snapshot of the session counters.
func (a *ARQ) Stats() ARQStats { return a.stats }

// Send queues a frame for reliable delivery. The frame goes out
// immediately if nothing is outstanding; otherwise it waits its turn
// (stop-and-wait admits one in-flight frame).
func (a *ARQ) Send(f Frame) error {
	if len(f.Payload) > 0xFFFF-2 {
		return fmt.Errorf("link: ARQ payload too large: %d", len(f.Payload))
	}
	a.sendq = append(a.sendq, f)
	a.stats.DataSent++
	a.transmitNext()
	return nil
}

// SendLossy transmits a frame outside the ARQ protocol: no sequence
// number, no retransmission. Suited to traffic whose loss is tolerable,
// like feedback hints.
func (a *ARQ) SendLossy(f Frame) error {
	a.stats.LossySent++
	return a.ep.Send(f)
}

// Receive pops the oldest delivered frame, draining the wire first.
func (a *ARQ) Receive() (Frame, bool) {
	a.drain()
	if len(a.delivered) == 0 {
		return Frame{}, false
	}
	f := a.delivered[0]
	a.delivered = a.delivered[1:]
	return f, true
}

// Pending returns the number of frames ready or queued for Receive.
func (a *ARQ) Pending() int { return len(a.delivered) + a.ep.Pending() }

// Idle reports that no reliable frame is in flight or queued and nothing
// awaits Receive on either the ARQ or the wire below it.
func (a *ARQ) Idle() bool {
	return a.out == nil && len(a.sendq) == 0 && len(a.delivered) == 0 &&
		a.ep.Pending() == 0 && a.ep.Idle()
}

// TakeDead returns and clears the frames abandoned after exhausting the
// retransmission budget, so the caller can settle the operations they
// carried (e.g. fail a pending config push with ErrLinkDown).
func (a *ARQ) TakeDead() []Frame {
	d := a.dead
	a.dead = nil
	return d
}

// Tick advances the retransmission timer: call once per service pass.
// Inbound traffic is drained first, so an ack that is already on the wire
// never triggers a spurious retransmit.
func (a *ARQ) Tick() {
	a.ep.Tick()
	a.drain()
	if a.out == nil {
		a.transmitNext()
		return
	}
	a.out.ticksLeft--
	if a.out.ticksLeft > 0 {
		return
	}
	if a.out.retries >= a.cfg.MaxRetries {
		a.stats.Dead++
		a.cDead.Inc()
		a.trace.Instant1("frame.dead", "link", "seq", float64(a.out.seq))
		a.dead = append(a.dead, a.out.frame)
		a.out = nil
		a.transmitNext()
		return
	}
	a.out.retries++
	a.out.timeout = min(a.out.timeout*2, a.cfg.MaxTimeoutTicks)
	a.out.ticksLeft = a.out.timeout
	a.stats.Retransmits++
	a.cRetransmits.Inc()
	a.trace.Instant2("frame.retransmit", "link", "seq", float64(a.out.seq), "retry", float64(a.out.retries))
	a.stats.OverheadBytes += a.transmit(a.out.frame, a.out.seq)
}

// transmitNext sends the head of the queue if the line is free.
func (a *ARQ) transmitNext() {
	if a.out != nil || len(a.sendq) == 0 {
		return
	}
	f := a.sendq[0]
	a.sendq = a.sendq[1:]
	seq := a.nextSeq
	a.nextSeq++
	a.out = &outstanding{
		frame:     f,
		seq:       seq,
		timeout:   a.cfg.TimeoutTicks,
		ticksLeft: a.cfg.TimeoutTicks,
	}
	// The 2-byte ARQ header is protocol overhead on the first
	// transmission too.
	a.stats.OverheadBytes += 2
	a.transmit(f, seq)
}

// transmit wraps a frame in the ARQ data envelope and puts it on the
// wire, returning the wire size for overhead accounting. Send pre-checks
// the payload bound, so the wrapped frame always encodes.
func (a *ARQ) transmit(f Frame, seq byte) int {
	payload := make([]byte, 0, len(f.Payload)+2)
	payload = append(payload, seq, byte(f.Type))
	payload = append(payload, f.Payload...)
	wrapped := Frame{Type: MsgArqData, Payload: payload}
	if err := a.ep.Send(wrapped); err != nil {
		return 0
	}
	wire, err := Encode(wrapped)
	if err != nil {
		return 0
	}
	return len(wire)
}

// Reboot models this side's CPU losing power: the send queue, the
// outstanding frame, undelivered inbound frames and all sequence state
// are gone. The transmitter restarts at sequence 0 and the receiver
// adopts whatever sequence number arrives next, so a rebooted hub can
// resume talking to a phone that kept its counters. Session statistics
// survive — they describe traffic that really happened.
func (a *ARQ) Reboot() {
	a.sendq = nil
	a.out = nil
	a.delivered = nil
	a.dead = nil
	a.nextSeq = 0
	a.expect = 0
	a.expectAny = true
	a.ep.Reboot()
}

// Resync makes the receiver adopt the peer's next sequence number instead
// of the one continuity expects. The manager calls it when the supervisor
// detects a hub reboot: the hub's transmitter restarted at sequence 0, and
// without adoption every post-reboot frame would be suppressed (and acked)
// as a duplicate.
func (a *ARQ) Resync() { a.expectAny = true }

// Blackhole discards all inbound traffic — wire frames and already
// decoded deliveries — without acknowledging any of it, returning the
// count. A crashed hub is silent: acking while dead would hide the crash
// from the peer's retransmission logic.
func (a *ARQ) Blackhole() int {
	n := len(a.delivered)
	a.delivered = nil
	return n + a.ep.Blackhole()
}

// drain consumes the raw endpoint's inbox: data frames are acked and
// delivered (once), acks settle the outstanding frame, and non-ARQ frames
// pass straight through (lossy traffic from the peer).
func (a *ARQ) drain() {
	for {
		f, ok := a.ep.Receive()
		if !ok {
			return
		}
		switch f.Type {
		case MsgArqData:
			if len(f.Payload) < 2 {
				a.stats.Malformed++
				continue
			}
			seq := f.Payload[0]
			// Ack everything decodable, even duplicates: the dup means
			// our previous ack was lost.
			ack := Frame{Type: MsgArqAck, Payload: []byte{seq}}
			a.ep.Send(ack)
			a.stats.AcksSent++
			if wire, err := Encode(ack); err == nil {
				a.stats.OverheadBytes += len(wire)
			}
			if a.expectAny {
				a.expect = seq
				a.expectAny = false
			}
			if seq != a.expect {
				a.stats.DupsDropped++
				continue
			}
			a.expect++
			inner := Frame{Type: MsgType(f.Payload[1])}
			if len(f.Payload) > 2 {
				inner.Payload = append([]byte(nil), f.Payload[2:]...)
			}
			a.delivered = append(a.delivered, inner)
			a.stats.DataReceived++
		case MsgArqAck:
			if len(f.Payload) != 1 {
				a.stats.Malformed++
				continue
			}
			if a.out == nil || f.Payload[0] != a.out.seq {
				a.stats.StaleAcks++
				continue
			}
			a.out = nil
			a.stats.DataAcked++
			a.transmitNext()
		default:
			a.delivered = append(a.delivered, f)
		}
	}
}
