package link

import (
	"fmt"
	"math/rand"
)

// FaultConfig parameterizes the deterministic fault injector on an
// endpoint's transmit path. The zero value disables every fault, leaving
// the link perfectly reliable (the legacy behavior). All probabilities are
// per-frame except BitFlipProb, which is per wire byte; every draw comes
// from a private PRNG seeded with Seed, so a given configuration replays
// the exact same fault sequence on every run.
type FaultConfig struct {
	// Seed initializes the injector's private PRNG.
	Seed int64
	// BitFlipProb is the per-byte probability that one random bit of a
	// wire byte is inverted (models electrical noise; usually caught by
	// the frame CRC).
	BitFlipProb float64
	// DropProb is the per-frame probability that the whole transmission
	// vanishes (models receiver overrun / missed start bit).
	DropProb float64
	// TruncateProb is the per-frame probability that transmission stops
	// at a random byte offset (models a reset mid-frame).
	TruncateProb float64
	// BurstProb is the per-frame probability of a burst error: BurstLen
	// consecutive wire bytes corrupted starting at a random offset
	// (models a noise spike longer than one symbol).
	BurstProb float64
	// BurstLen is the burst length in bytes; defaults to 4 when a burst
	// fires with BurstLen <= 0.
	BurstLen int
	// DelayProb is the per-frame probability that delivery is held back
	// by a uniform 1..DelayTicks ticks of jitter. Delayed frames are
	// released by Tick (or a later Send) and may arrive reordered.
	DelayProb float64
	// DelayTicks is the maximum jitter in ticks; defaults to 1 when a
	// delay fires with DelayTicks <= 0.
	DelayTicks int
}

// Validate checks that every probability lies in [0, 1].
func (c FaultConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"BitFlipProb", c.BitFlipProb},
		{"DropProb", c.DropProb},
		{"TruncateProb", c.TruncateProb},
		{"BurstProb", c.BurstProb},
		{"DelayProb", c.DelayProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("link: fault %s must be in [0,1], got %g", p.name, p.v)
		}
	}
	if c.BurstLen < 0 {
		return fmt.Errorf("link: fault BurstLen must be >= 0, got %d", c.BurstLen)
	}
	if c.DelayTicks < 0 {
		return fmt.Errorf("link: fault DelayTicks must be >= 0, got %d", c.DelayTicks)
	}
	return nil
}

// enabled reports whether any fault can ever fire.
func (c FaultConfig) enabled() bool {
	return c.BitFlipProb > 0 || c.DropProb > 0 || c.TruncateProb > 0 ||
		c.BurstProb > 0 || c.DelayProb > 0
}

// FaultStats tallies what the injector did to the frames it saw.
type FaultStats struct {
	FramesSent      int // frames offered to the injector
	FramesDropped   int // vanished entirely
	FramesTruncated int // cut short mid-transmission
	FramesCorrupted int // at least one byte damaged (flip or burst)
	FramesDelayed   int // held back by jitter
	BitsFlipped     int // individual bit inversions
	BurstBytes      int // bytes overwritten by burst errors
}

// heldChunk is a delayed transmission waiting out its jitter.
type heldChunk struct {
	wire []byte
	ttl  int
}

// injector applies a FaultConfig to outgoing wire bytes.
type injector struct {
	cfg   FaultConfig
	rng   *rand.Rand
	held  []heldChunk
	stats FaultStats
}

func newInjector(cfg FaultConfig) *injector {
	return &injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// heldCount reports how many transmissions are waiting out delay jitter.
func (in *injector) heldCount() int { return len(in.held) }

// dropHeld forgets every delayed transmission (the owning endpoint's CPU
// rebooted; its UART buffer is gone).
func (in *injector) dropHeld() { in.held = nil }

// transmit runs one frame's wire bytes through the fault lottery and
// returns the chunks to deliver now (the surviving frame, if not delayed,
// followed by any previously held frames whose jitter just elapsed —
// releasing them after the fresh frame is what produces reordering).
func (in *injector) transmit(wire []byte) [][]byte {
	in.stats.FramesSent++
	prevHeld := len(in.held)
	var out [][]byte
	if chunk, ok := in.mangle(wire); ok {
		if in.cfg.DelayProb > 0 && in.rng.Float64() < in.cfg.DelayProb {
			ticks := in.cfg.DelayTicks
			if ticks <= 0 {
				ticks = 1
			}
			in.stats.FramesDelayed++
			in.held = append(in.held, heldChunk{wire: chunk, ttl: 1 + in.rng.Intn(ticks)})
		} else {
			out = append(out, chunk)
		}
	}
	// Age only the frames that were already held before this
	// transmission; the freshly delayed frame keeps its full jitter.
	return append(out, in.age(prevHeld)...)
}

// mangle applies drop/truncate/corruption to one frame's bytes, returning
// the (possibly damaged) bytes and whether anything remains to deliver.
func (in *injector) mangle(wire []byte) ([]byte, bool) {
	if in.cfg.DropProb > 0 && in.rng.Float64() < in.cfg.DropProb {
		in.stats.FramesDropped++
		return nil, false
	}
	out := append([]byte(nil), wire...)
	if in.cfg.TruncateProb > 0 && in.rng.Float64() < in.cfg.TruncateProb {
		in.stats.FramesTruncated++
		out = out[:in.rng.Intn(len(out))]
		if len(out) == 0 {
			return nil, false
		}
	}
	damaged := false
	if in.cfg.BurstProb > 0 && in.rng.Float64() < in.cfg.BurstProb {
		n := in.cfg.BurstLen
		if n <= 0 {
			n = 4
		}
		start := in.rng.Intn(len(out))
		for i := start; i < len(out) && i < start+n; i++ {
			out[i] = byte(in.rng.Intn(256))
			in.stats.BurstBytes++
		}
		damaged = true
	}
	if in.cfg.BitFlipProb > 0 {
		for i := range out {
			if in.rng.Float64() < in.cfg.BitFlipProb {
				out[i] ^= 1 << uint(in.rng.Intn(8))
				in.stats.BitsFlipped++
				damaged = true
			}
		}
	}
	if damaged {
		in.stats.FramesCorrupted++
	}
	return out, true
}

// tickHeld advances all jitter timers and returns the chunks whose delay
// has elapsed, in the order they were held.
func (in *injector) tickHeld() [][]byte { return in.age(len(in.held)) }

// age decrements the ttl of the first n held chunks and releases those
// that reached zero.
func (in *injector) age(n int) [][]byte {
	var due [][]byte
	rest := in.held[:0]
	for i, h := range in.held {
		if i < n {
			h.ttl--
		}
		if h.ttl <= 0 {
			due = append(due, h.wire)
			continue
		}
		rest = append(rest, h)
	}
	in.held = rest
	return due
}
