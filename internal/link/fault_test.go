package link

import (
	"bytes"
	"errors"
	"testing"
)

func mustPipe(t *testing.T) (*Endpoint, *Endpoint) {
	t.Helper()
	a, b, err := Pipe(115200)
	if err != nil {
		t.Fatalf("Pipe: %v", err)
	}
	return a, b
}

func TestFaultConfigValidate(t *testing.T) {
	bad := []FaultConfig{
		{DropProb: -0.1},
		{DropProb: 1.5},
		{BitFlipProb: 2},
		{TruncateProb: -1},
		{BurstProb: 1.01},
		{DelayProb: 7},
		{BurstLen: -1},
		{DelayTicks: -2},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d: expected validation error, got nil", i)
		}
	}
	if err := (FaultConfig{Seed: 9, DropProb: 0.5, BurstLen: 4}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestZeroFaultConfigIsPassthrough(t *testing.T) {
	a, b := mustPipe(t)
	if err := a.SetFaults(FaultConfig{Seed: 42}); err != nil {
		t.Fatalf("SetFaults: %v", err)
	}
	f := Frame{Type: MsgData, Payload: []byte{1, 2, 3}}
	if err := a.Send(f); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, ok := b.Receive()
	if !ok || got.Type != f.Type || !bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("zero fault config altered delivery: %+v ok=%v", got, ok)
	}
	if s := a.FaultStats(); s != (FaultStats{}) {
		t.Fatalf("zero config accrued stats: %+v", s)
	}
}

func TestDropProbOneDropsEverything(t *testing.T) {
	a, b := mustPipe(t)
	if err := a.SetFaults(FaultConfig{Seed: 1, DropProb: 1}); err != nil {
		t.Fatalf("SetFaults: %v", err)
	}
	for i := 0; i < 20; i++ {
		if err := a.Send(Frame{Type: MsgPing}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	if b.Pending() != 0 {
		t.Fatalf("dropped frames were delivered: %d pending", b.Pending())
	}
	s := a.FaultStats()
	if s.FramesSent != 20 || s.FramesDropped != 20 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestBitFlipsAreDetectedByCRC(t *testing.T) {
	a, b := mustPipe(t)
	// Flip roughly one byte per frame: corrupted frames must be rejected
	// by the receiver's decoder, never delivered mangled.
	if err := a.SetFaults(FaultConfig{Seed: 7, BitFlipProb: 0.05}); err != nil {
		t.Fatalf("SetFaults: %v", err)
	}
	payload := bytes.Repeat([]byte{0xA5}, 32)
	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send(Frame{Type: MsgData, Payload: payload}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	delivered := 0
	for {
		f, ok := b.Receive()
		if !ok {
			break
		}
		if f.Type != MsgData || !bytes.Equal(f.Payload, payload) {
			t.Fatalf("corrupted frame delivered: %+v", f)
		}
		delivered++
	}
	s := a.FaultStats()
	if s.FramesCorrupted == 0 || s.BitsFlipped == 0 {
		t.Fatalf("injector never corrupted anything: %+v", s)
	}
	if delivered+b.RxCorrupt() < n {
		// A flip may hit a flag byte and merge two frames into one
		// CRC-failing blob, so delivered+corrupt can fall slightly
		// short of n — but most frames must be accounted for.
		if delivered+b.RxCorrupt() < n*9/10 {
			t.Fatalf("accounting hole: delivered=%d corrupt=%d of %d", delivered, b.RxCorrupt(), n)
		}
	}
	if delivered == 0 {
		t.Fatal("no frame survived a 5% per-byte flip rate")
	}
}

func TestTruncationYieldsCorruptNotMalformed(t *testing.T) {
	a, b := mustPipe(t)
	if err := a.SetFaults(FaultConfig{Seed: 3, TruncateProb: 1}); err != nil {
		t.Fatalf("SetFaults: %v", err)
	}
	payload := []byte{9, 8, 7, 6, 5}
	for i := 0; i < 50; i++ {
		if err := a.Send(Frame{Type: MsgData, Payload: payload}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	// Truncation is line damage: it must register as corrupt frames,
	// never as malformed ones. A frame that lost only its closing flag
	// legitimately survives (the next frame's opening flag terminates
	// it), but anything delivered must be byte-identical.
	if b.RxMalformed() != 0 {
		t.Fatalf("truncation classified as malformed: %d", b.RxMalformed())
	}
	if b.RxCorrupt() == 0 {
		t.Fatal("50 truncated frames produced no corrupt rejections")
	}
	for {
		got, ok := b.Receive()
		if !ok {
			break
		}
		if got.Type != MsgData || !bytes.Equal(got.Payload, payload) {
			t.Fatalf("truncated frame delivered mangled: %+v", got)
		}
	}
}

func TestBurstErrors(t *testing.T) {
	a, b := mustPipe(t)
	if err := a.SetFaults(FaultConfig{Seed: 11, BurstProb: 1, BurstLen: 6}); err != nil {
		t.Fatalf("SetFaults: %v", err)
	}
	payload := bytes.Repeat([]byte{0x42}, 40)
	for i := 0; i < 30; i++ {
		if err := a.Send(Frame{Type: MsgData, Payload: payload}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	s := a.FaultStats()
	if s.FramesCorrupted != 30 || s.BurstBytes == 0 {
		t.Fatalf("burst stats: %+v", s)
	}
	for {
		f, ok := b.Receive()
		if !ok {
			break
		}
		// A burst can randomly rewrite bytes into another valid frame
		// only with CRC-collision odds; any delivered frame must be
		// byte-identical.
		if !bytes.Equal(f.Payload, payload) {
			t.Fatalf("burst-corrupted frame delivered: %+v", f)
		}
	}
}

func TestDelayJitterHoldsAndReleases(t *testing.T) {
	a, b := mustPipe(t)
	if err := a.SetFaults(FaultConfig{Seed: 5, DelayProb: 1, DelayTicks: 1}); err != nil {
		t.Fatalf("SetFaults: %v", err)
	}
	if err := a.Send(Frame{Type: MsgPing}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if b.Pending() != 0 {
		t.Fatal("delayed frame arrived immediately")
	}
	if a.Idle() {
		t.Fatal("endpoint claims idle with a held frame")
	}
	a.Tick()
	if b.Pending() != 1 {
		t.Fatalf("delayed frame not released on tick: pending=%d", b.Pending())
	}
	if !a.Idle() {
		t.Fatal("endpoint not idle after flush")
	}
	if s := a.FaultStats(); s.FramesDelayed != 1 {
		t.Fatalf("delay stats: %+v", s)
	}
}

func TestFaultInjectionIsDeterministic(t *testing.T) {
	run := func() (FaultStats, []Frame, int) {
		a, b := mustPipe(t)
		if err := a.SetFaults(FaultConfig{
			Seed: 99, BitFlipProb: 0.01, DropProb: 0.1,
			TruncateProb: 0.05, BurstProb: 0.02, BurstLen: 4,
			DelayProb: 0.1, DelayTicks: 2,
		}); err != nil {
			t.Fatalf("SetFaults: %v", err)
		}
		for i := 0; i < 100; i++ {
			if err := a.Send(Frame{Type: MsgData, Payload: []byte{byte(i), byte(i >> 1)}}); err != nil {
				t.Fatalf("Send: %v", err)
			}
		}
		for i := 0; i < 4; i++ {
			a.Tick()
		}
		var got []Frame
		for {
			f, ok := b.Receive()
			if !ok {
				break
			}
			got = append(got, f)
		}
		return a.FaultStats(), got, b.RxCorrupt()
	}
	s1, f1, c1 := run()
	s2, f2, c2 := run()
	if s1 != s2 || c1 != c2 || len(f1) != len(f2) {
		t.Fatalf("non-deterministic: %+v/%d/%d vs %+v/%d/%d", s1, c1, len(f1), s2, c2, len(f2))
	}
	for i := range f1 {
		if f1[i].Type != f2[i].Type || !bytes.Equal(f1[i].Payload, f2[i].Payload) {
			t.Fatalf("frame %d differs between identical runs", i)
		}
	}
}

func TestDecoderErrorClassification(t *testing.T) {
	// A truncated body (under 5 bytes between flags) is line damage.
	var d Decoder
	_, err := d.Feed([]byte{flagByte, 0x01, 0x02, 0x03, flagByte})
	if !errors.Is(err, ErrShortFrame) || !IsCorrupt(err) || IsMalformed(err) {
		t.Fatalf("short frame misclassified: %v", err)
	}
	if d.Corrupt() != 1 || d.Malformed() != 0 {
		t.Fatalf("counters after short frame: corrupt=%d malformed=%d", d.Corrupt(), d.Malformed())
	}

	// A CRC-valid frame whose declared length disagrees with its actual
	// payload is a sender bug, not line damage.
	body := []byte{byte(MsgData), 0x00, 0x05, 1, 2, 3} // declares 5, carries 3
	crc := crc16(body)
	wire := append([]byte{flagByte}, body...)
	wire = append(wire, byte(crc>>8), byte(crc), flagByte)
	var d2 Decoder
	_, err = d2.Feed(wire)
	if !errors.Is(err, ErrLengthMismatch) || !IsMalformed(err) || IsCorrupt(err) {
		t.Fatalf("length mismatch misclassified: %v", err)
	}
	if d2.Corrupt() != 0 || d2.Malformed() != 1 {
		t.Fatalf("counters after mismatch: corrupt=%d malformed=%d", d2.Corrupt(), d2.Malformed())
	}
}

func TestDecoderContinuesPastDamagedFrame(t *testing.T) {
	good := mustEncode(t, Frame{Type: MsgPing})
	bad := mustEncode(t, Frame{Type: MsgData, Payload: []byte{1, 2, 3}})
	bad[4] ^= 0x10 // corrupt inside the body
	var d Decoder
	frames, err := d.Feed(append(append([]byte{}, bad...), good...))
	if err == nil {
		t.Fatal("corruption not reported")
	}
	if len(frames) != 1 || frames[0].Type != MsgPing {
		t.Fatalf("good frame after damaged one was lost: %+v", frames)
	}
}
