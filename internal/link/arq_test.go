package link

import (
	"bytes"
	"testing"
)

// arqPair wraps both ends of a fresh pipe in ARQ.
func arqPair(t *testing.T, cfg ARQConfig) (*ARQ, *ARQ) {
	t.Helper()
	a, b := mustPipe(t)
	return NewARQ(a, cfg), NewARQ(b, cfg)
}

// pumpARQ ticks both sides until both are idle or the round budget runs
// out, draining delivered frames into the returned slice (receiver side).
func pumpARQ(sender, receiver *ARQ, rounds int) []Frame {
	var got []Frame
	for i := 0; i < rounds; i++ {
		sender.Tick()
		receiver.Tick()
		for {
			f, ok := receiver.Receive()
			if !ok {
				break
			}
			got = append(got, f)
		}
		for { // drain acks / passthrough on the sender side too
			if _, ok := sender.Receive(); !ok {
				break
			}
		}
		if sender.Idle() && receiver.Idle() {
			break
		}
	}
	return got
}

func TestARQDeliversInOrderOnCleanLink(t *testing.T) {
	s, r := arqPair(t, ARQConfig{})
	const n = 10
	for i := 0; i < n; i++ {
		if err := s.Send(Frame{Type: MsgData, Payload: []byte{byte(i)}}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	got := pumpARQ(s, r, 100)
	if len(got) != n {
		t.Fatalf("delivered %d of %d", len(got), n)
	}
	for i, f := range got {
		if f.Type != MsgData || f.Payload[0] != byte(i) {
			t.Fatalf("frame %d out of order: %+v", i, f)
		}
	}
	st := s.Stats()
	if st.Retransmits != 0 || st.Dead != 0 || st.DataAcked != n {
		t.Fatalf("clean-link stats: %+v", st)
	}
}

func TestARQRecoversFromFrameLoss(t *testing.T) {
	s, r := arqPair(t, ARQConfig{})
	// 30% frame drop on the data direction.
	if err := s.Raw().SetFaults(FaultConfig{Seed: 21, DropProb: 0.3}); err != nil {
		t.Fatalf("SetFaults: %v", err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := s.Send(Frame{Type: MsgData, Payload: []byte{byte(i)}}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	got := pumpARQ(s, r, 4000)
	if len(got) != n {
		t.Fatalf("delivered %d of %d under 30%% loss", len(got), n)
	}
	for i, f := range got {
		if f.Payload[0] != byte(i) {
			t.Fatalf("frame %d delivered out of order", i)
		}
	}
	st := s.Stats()
	if st.Retransmits == 0 {
		t.Fatal("loss recovered without retransmissions?")
	}
	if st.Dead != 0 {
		t.Fatalf("frames died under recoverable loss: %+v", st)
	}
	if st.OverheadBytes == 0 {
		t.Fatal("no overhead accounted")
	}
}

func TestARQSuppressesDuplicatesWhenAcksAreLost(t *testing.T) {
	s, r := arqPair(t, ARQConfig{})
	// Drop half the ack direction: the sender retransmits frames the
	// receiver already has, and the receiver must suppress them.
	if err := r.Raw().SetFaults(FaultConfig{Seed: 8, DropProb: 0.5}); err != nil {
		t.Fatalf("SetFaults: %v", err)
	}
	const n = 25
	for i := 0; i < n; i++ {
		if err := s.Send(Frame{Type: MsgData, Payload: []byte{byte(i)}}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	got := pumpARQ(s, r, 4000)
	if len(got) != n {
		t.Fatalf("delivered %d of %d", len(got), n)
	}
	if st := r.Stats(); st.DupsDropped == 0 {
		t.Fatalf("lost acks produced no duplicates to suppress: %+v", st)
	}
}

func TestARQBoundedRetriesDeclareFrameDead(t *testing.T) {
	s, r := arqPair(t, ARQConfig{MaxRetries: 3})
	if err := s.Raw().SetFaults(FaultConfig{Seed: 1, DropProb: 1}); err != nil {
		t.Fatalf("SetFaults: %v", err)
	}
	want := Frame{Type: MsgWake, Payload: []byte{0xAB}}
	if err := s.Send(want); err != nil {
		t.Fatalf("Send: %v", err)
	}
	pumpARQ(s, r, 4000)
	if !s.Idle() {
		t.Fatal("sender never gave up")
	}
	st := s.Stats()
	if st.Dead != 1 || st.Retransmits != 3 {
		t.Fatalf("dead-frame stats: %+v", st)
	}
	dead := s.TakeDead()
	if len(dead) != 1 || dead[0].Type != want.Type || !bytes.Equal(dead[0].Payload, want.Payload) {
		t.Fatalf("TakeDead: %+v", dead)
	}
	if len(s.TakeDead()) != 0 {
		t.Fatal("TakeDead did not clear")
	}
}

func TestARQBackoffIsCapped(t *testing.T) {
	s, r := arqPair(t, ARQConfig{TimeoutTicks: 1, MaxTimeoutTicks: 4, MaxRetries: 6})
	if err := s.Raw().SetFaults(FaultConfig{Seed: 2, DropProb: 1}); err != nil {
		t.Fatalf("SetFaults: %v", err)
	}
	if err := s.Send(Frame{Type: MsgPing}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	// Backoff 1,2,4,4,4,4 → the frame must be dead within ~25 ticks. An
	// uncapped doubling (1+2+4+8+16+32) would still be waiting at 25.
	for i := 0; i < 25; i++ {
		s.Tick()
		r.Tick()
	}
	if s.Stats().Dead != 1 {
		t.Fatalf("backoff cap not honored: %+v", s.Stats())
	}
}

func TestARQLossyPassthrough(t *testing.T) {
	s, r := arqPair(t, ARQConfig{})
	if err := s.SendLossy(Frame{Type: MsgFeedback, Payload: []byte{1, 0, 1}}); err != nil {
		t.Fatalf("SendLossy: %v", err)
	}
	f, ok := r.Receive()
	if !ok || f.Type != MsgFeedback {
		t.Fatalf("lossy frame not passed through: %+v ok=%v", f, ok)
	}
	st := s.Stats()
	if st.LossySent != 1 || st.DataSent != 0 {
		t.Fatalf("lossy stats: %+v", st)
	}
}

func TestARQSequenceWraparound(t *testing.T) {
	s, r := arqPair(t, ARQConfig{})
	// More frames than the 1-byte sequence space.
	const n = 300
	for i := 0; i < n; i++ {
		if err := s.Send(Frame{Type: MsgData, Payload: []byte{byte(i), byte(i >> 8)}}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	got := pumpARQ(s, r, 2000)
	if len(got) != n {
		t.Fatalf("delivered %d of %d across seq wraparound", len(got), n)
	}
	for i, f := range got {
		if f.Payload[0] != byte(i) || f.Payload[1] != byte(i>>8) {
			t.Fatalf("frame %d wrong after wraparound", i)
		}
	}
}
