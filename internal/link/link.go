// Package link simulates the serial connection between the phone and the
// low-power sensor hub (paper §3.4: a UART over the Nexus 4's audio-jack
// debugging interface). It provides:
//
//   - a byte-stuffed frame codec with CRC-16 integrity checking, the kind
//     of framing a real microcontroller UART protocol uses,
//
//   - an in-memory full-duplex Pipe with a configurable baud rate that
//     accounts transfer time and byte counts, so experiments can reason
//     about link occupancy (the paper notes the serial link suffices for
//     low-bit-rate sensors but a camera would need I²C or better),
//
//   - a deterministic, seedable fault injector (FaultConfig) modeling the
//     noise a real audio-jack UART suffers: bit flips, frame drops,
//     truncation, burst errors and delivery jitter, and
//
//   - a stop-and-wait ARQ reliability layer (ARQ) that recovers from those
//     faults with sequence numbers, acknowledgements, capped exponential
//     backoff and duplicate suppression.
package link

import (
	"errors"
	"fmt"

	"sidewinder/internal/telemetry"
)

// MsgType identifies a frame's purpose in the manager-hub protocol.
type MsgType byte

// Protocol message types.
const (
	// MsgConfigPush carries an intermediate-language program from the
	// sensor manager to the hub (paper §3.3).
	MsgConfigPush MsgType = 0x01
	// MsgConfigAck confirms a successful bind; the payload names the
	// selected device.
	MsgConfigAck MsgType = 0x02
	// MsgConfigError reports a failed parse/bind/placement.
	MsgConfigError MsgType = 0x03
	// MsgRemove unloads a condition by ID.
	MsgRemove MsgType = 0x04
	// MsgWake signals a satisfied wake-up condition.
	MsgWake MsgType = 0x05
	// MsgData carries a buffer of raw sensor data to the application.
	MsgData MsgType = 0x06
	// MsgPing/MsgPong are the link liveness check.
	MsgPing MsgType = 0x07
	MsgPong MsgType = 0x08
	// MsgFeedback carries an application's wake-up verdict back to the
	// hub so the runtime can tune the condition's final threshold
	// (paper §7).
	MsgFeedback MsgType = 0x09

	// MsgArqData and MsgArqAck are the ARQ transport frames: a reliable
	// frame travels as [seq u8 | inner type u8 | inner payload] and is
	// confirmed by an ack carrying the same sequence number.
	MsgArqData MsgType = 0x10
	MsgArqAck  MsgType = 0x11
)

// Frame is one protocol unit.
type Frame struct {
	Type    MsgType
	Payload []byte
}

// Framing constants: HDLC-style byte stuffing.
const (
	flagByte   = 0x7E
	escapeByte = 0x7D
	escapeXor  = 0x20
)

// Decode-error taxonomy. Line damage (a failed CRC, or a frame cut short
// by noise) is transient — the right reaction is "retry", which the ARQ
// layer does automatically. A length declaration that disagrees with a
// frame whose CRC *passed* means the peer encoded nonsense: retrying
// reproduces the same bytes, so consumers must fail the operation instead.
var (
	// ErrCRC reports a corrupted frame (checksum mismatch).
	ErrCRC = errors.New("link: CRC mismatch")
	// ErrShortFrame reports a frame body below the minimum 5 bytes
	// (type + length + CRC), typically a truncated transmission.
	ErrShortFrame = errors.New("link: frame too short")
	// ErrLengthMismatch reports a CRC-valid frame whose declared payload
	// length disagrees with the bytes received — a sender-side bug, not
	// line noise.
	ErrLengthMismatch = errors.New("link: length mismatch")
	// ErrLinkDown reports that the ARQ layer exhausted its bounded
	// retransmissions without an acknowledgement.
	ErrLinkDown = errors.New("link: delivery failed after bounded retransmissions")
	// ErrPayloadTooLarge reports a frame whose payload exceeds the 16-bit
	// length field — a caller bug surfaced as an error, never a panic.
	ErrPayloadTooLarge = errors.New("link: payload too large")
)

// IsCorrupt reports whether a decode error indicates transient line damage
// (worth retrying), as opposed to a structurally malformed frame.
func IsCorrupt(err error) bool {
	return errors.Is(err, ErrCRC) || errors.Is(err, ErrShortFrame)
}

// IsMalformed reports whether a decode error indicates a well-transmitted
// but wrongly encoded frame (retrying cannot help).
func IsMalformed(err error) bool { return errors.Is(err, ErrLengthMismatch) }

// UARTActiveMW is the modeled draw of the audio-jack UART bridge while the
// line is busy (driver + level shifting on both ends). Experiments price
// link occupancy with it, so every retransmitted frame costs real
// simulated milliwatts.
const UARTActiveMW = 12.0

// crc16 computes CRC-16/CCITT-FALSE over data.
func crc16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// Encode serializes a frame with byte stuffing and CRC. The wire format is
// FLAG | stuffed(type, len16, payload, crc16) | FLAG. A payload beyond the
// 16-bit length field yields ErrPayloadTooLarge.
func Encode(f Frame) ([]byte, error) {
	if len(f.Payload) > 0xFFFF {
		return nil, fmt.Errorf("%w: %d bytes", ErrPayloadTooLarge, len(f.Payload))
	}
	raw := make([]byte, 0, len(f.Payload)+5)
	raw = append(raw, byte(f.Type), byte(len(f.Payload)>>8), byte(len(f.Payload)))
	raw = append(raw, f.Payload...)
	crc := crc16(raw)
	raw = append(raw, byte(crc>>8), byte(crc))

	out := make([]byte, 0, len(raw)+8)
	out = append(out, flagByte)
	for _, b := range raw {
		if b == flagByte || b == escapeByte {
			out = append(out, escapeByte, b^escapeXor)
			continue
		}
		out = append(out, b)
	}
	out = append(out, flagByte)
	return out, nil
}

// Decoder is a streaming frame decoder: feed it wire bytes, collect frames.
type Decoder struct {
	buf     []byte
	inFrame bool
	escaped bool

	corrupt   int // CRC failures and short frames (line damage)
	malformed int // length mismatches (sender bugs)
}

// Feed consumes wire bytes and returns completed frames, skipping noise
// between frames. A damaged frame does not stop the scan: later frames in
// the same call still decode, and the first error encountered is returned
// alongside them. Cumulative error counts are available via Corrupt and
// Malformed.
func (d *Decoder) Feed(data []byte) ([]Frame, error) {
	var frames []Frame
	var firstErr error
	for _, b := range data {
		if b == flagByte {
			if d.inFrame && len(d.buf) > 0 {
				f, err := d.complete()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
				} else {
					frames = append(frames, f)
				}
				d.reset()
				// Stay in-frame: back-to-back frames share flags.
				d.inFrame = true
				continue
			}
			d.inFrame = true
			d.buf = d.buf[:0]
			d.escaped = false
			continue
		}
		if !d.inFrame {
			continue // inter-frame noise
		}
		if d.escaped {
			d.buf = append(d.buf, b^escapeXor)
			d.escaped = false
			continue
		}
		if b == escapeByte {
			d.escaped = true
			continue
		}
		d.buf = append(d.buf, b)
	}
	return frames, firstErr
}

// Corrupt returns the cumulative count of line-damaged frames (CRC
// failures and truncations) this decoder has rejected.
func (d *Decoder) Corrupt() int { return d.corrupt }

// Malformed returns the cumulative count of structurally malformed frames
// (CRC-valid but self-inconsistent) this decoder has rejected.
func (d *Decoder) Malformed() int { return d.malformed }

func (d *Decoder) reset() {
	d.buf = d.buf[:0]
	d.inFrame = false
	d.escaped = false
}

// complete validates the buffered frame body.
func (d *Decoder) complete() (Frame, error) {
	raw := d.buf
	if len(raw) < 5 {
		d.corrupt++
		return Frame{}, fmt.Errorf("%w (%d bytes)", ErrShortFrame, len(raw))
	}
	body, crcBytes := raw[:len(raw)-2], raw[len(raw)-2:]
	want := uint16(crcBytes[0])<<8 | uint16(crcBytes[1])
	if crc16(body) != want {
		d.corrupt++
		return Frame{}, ErrCRC
	}
	declared := int(body[1])<<8 | int(body[2])
	payload := body[3:]
	if declared != len(payload) {
		d.malformed++
		return Frame{}, fmt.Errorf("%w: declared %d, got %d", ErrLengthMismatch, declared, len(payload))
	}
	out := Frame{Type: MsgType(body[0])}
	if len(payload) > 0 {
		out.Payload = append([]byte(nil), payload...)
	}
	return out, nil
}

// Port is the frame channel the manager and hub node speak through. The
// raw *Endpoint implements it directly (Send is best-effort and instant);
// *ARQ implements it with reliable delivery for Send and pass-through for
// SendLossy.
type Port interface {
	// Send transmits a frame; over an ARQ port delivery is guaranteed
	// within the bounded retransmission budget or reported via TakeDead.
	Send(Frame) error
	// SendLossy transmits fire-and-forget: the frame may be lost.
	SendLossy(Frame) error
	// Receive pops the oldest delivered frame.
	Receive() (Frame, bool)
	// Tick advances timers: ARQ retransmissions and delayed-fault
	// delivery. A no-op for a fault-free raw endpoint.
	Tick()
	// Idle reports that the port has no in-flight outbound work.
	Idle() bool
	// Pending returns the number of frames ready (or queued) for Receive.
	Pending() int
}

// Endpoint is one end of a simulated serial pipe.
type Endpoint struct {
	peer      *Endpoint
	inbox     []Frame
	dec       Decoder
	baud      int
	sentBytes int
	busySec   float64
	faults    *injector

	// Telemetry handles, interned once by SetTelemetry. All nil (no-op)
	// until attached, so the transmit path costs one branch per handle
	// when telemetry is disabled.
	cTxFrames  *telemetry.Counter
	cTxBytes   *telemetry.Counter
	cTxDropped *telemetry.Counter
	trace      *telemetry.Stream
}

// SetTelemetry attaches metric counters (named <prefix>.tx_frames,
// <prefix>.tx_bytes, <prefix>.tx_dropped_frames) and an optional trace
// stream to this endpoint's transmit path. Either argument may be nil.
func (e *Endpoint) SetTelemetry(reg *telemetry.Registry, prefix string, trace *telemetry.Stream) {
	e.cTxFrames = reg.Counter(prefix + ".tx_frames")
	e.cTxBytes = reg.Counter(prefix + ".tx_bytes")
	e.cTxDropped = reg.Counter(prefix + ".tx_dropped_frames")
	e.trace = trace
}

// Pipe creates a connected full-duplex link at the given baud rate
// (115200 is the Nexus 4 debug UART's typical rate).
func Pipe(baud int) (a, b *Endpoint, err error) {
	if baud <= 0 {
		return nil, nil, fmt.Errorf("link: baud must be positive, got %d", baud)
	}
	a = &Endpoint{baud: baud}
	b = &Endpoint{baud: baud}
	a.peer = b
	b.peer = a
	return a, b, nil
}

// SetFaults installs a deterministic fault injector on this endpoint's
// transmit path: frames this endpoint sends are subjected to the
// configured drop/corruption/delay lottery before reaching the peer. A
// zero FaultConfig removes the injector (perfect link).
func (e *Endpoint) SetFaults(cfg FaultConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if !cfg.enabled() {
		e.faults = nil
		return nil
	}
	e.faults = newInjector(cfg)
	return nil
}

// FaultStats returns the injector's tally (zero value when no faults are
// configured).
func (e *Endpoint) FaultStats() FaultStats {
	if e.faults == nil {
		return FaultStats{}
	}
	return e.faults.stats
}

// Send encodes and transmits a frame to the peer, accounting transfer
// time at 10 wire bits per byte (8N1 UART). Wire damage is the receiver's
// problem, exactly as on a real UART: a frame the peer cannot decode is
// counted in the peer's RxCorrupt/RxMalformed tallies and never enters its
// inbox; Send itself only fails for local errors such as an unencodable
// frame (ErrPayloadTooLarge).
func (e *Endpoint) Send(f Frame) error {
	wire, err := Encode(f)
	if err != nil {
		return err
	}
	e.sentBytes += len(wire)
	e.busySec += float64(len(wire)*10) / float64(e.baud)
	e.cTxFrames.Inc()
	e.cTxBytes.Add(int64(len(wire)))
	e.trace.Instant1("frame.send", "link", "msg_type", float64(f.Type))
	if e.faults == nil {
		e.deliver(wire)
		return nil
	}
	droppedBefore := e.faults.stats.FramesDropped
	for _, chunk := range e.faults.transmit(wire) {
		e.deliver(chunk)
	}
	if d := e.faults.stats.FramesDropped - droppedBefore; d > 0 {
		e.cTxDropped.Add(int64(d))
		e.trace.Instant1("frame.drop", "link", "msg_type", float64(f.Type))
	}
	return nil
}

// SendLossy is Send: a raw endpoint offers no stronger guarantee.
func (e *Endpoint) SendLossy(f Frame) error { return e.Send(f) }

// deliver feeds wire bytes into the peer's decoder.
func (e *Endpoint) deliver(chunk []byte) {
	// Decode errors are recorded by the peer's decoder counters; damaged
	// frames simply never arrive.
	frames, _ := e.peer.dec.Feed(chunk)
	e.peer.inbox = append(e.peer.inbox, frames...)
}

// Tick releases any fault-delayed transmissions whose jitter has elapsed.
func (e *Endpoint) Tick() {
	if e.faults == nil {
		return
	}
	for _, chunk := range e.faults.tickHeld() {
		e.deliver(chunk)
	}
}

// Idle reports whether this endpoint has no transmissions held back by
// delay jitter.
func (e *Endpoint) Idle() bool { return e.faults == nil || e.faults.heldCount() == 0 }

// Receive pops the oldest pending frame.
func (e *Endpoint) Receive() (Frame, bool) {
	if len(e.inbox) == 0 {
		return Frame{}, false
	}
	f := e.inbox[0]
	e.inbox = e.inbox[1:]
	return f, true
}

// Pending returns the number of undelivered frames.
func (e *Endpoint) Pending() int { return len(e.inbox) }

// SentBytes returns the total wire bytes this endpoint transmitted.
func (e *Endpoint) SentBytes() int { return e.sentBytes }

// BusySeconds returns the cumulative wire time this endpoint's
// transmissions occupied.
func (e *Endpoint) BusySeconds() float64 { return e.busySec }

// RxCorrupt returns how many inbound frames this endpoint rejected as
// line-damaged (CRC failure or truncation).
func (e *Endpoint) RxCorrupt() int { return e.dec.Corrupt() }

// RxMalformed returns how many inbound frames this endpoint rejected as
// structurally malformed (CRC-valid but self-inconsistent).
func (e *Endpoint) RxMalformed() int { return e.dec.Malformed() }

// Blackhole discards every frame waiting in the inbox without processing
// it, returning the count. It models a dead peer CPU: inbound bytes still
// hit the UART, but nobody reads them. Wire and fault accounting already
// happened on the sender's side and is unaffected.
func (e *Endpoint) Blackhole() int {
	n := len(e.inbox)
	e.inbox = e.inbox[:0]
	return n
}

// Reboot models this endpoint's CPU losing power: the receive inbox, any
// half-decoded frame, and transmissions still held back by fault jitter
// are all gone. Wire statistics (bytes, busy time, fault tallies) survive
// — they describe what already happened on the line.
func (e *Endpoint) Reboot() {
	e.inbox = nil
	e.dec.reset()
	if e.faults != nil {
		e.faults.dropHeld()
	}
}
