// Package link simulates the serial connection between the phone and the
// low-power sensor hub (paper §3.4: a UART over the Nexus 4's audio-jack
// debugging interface). It provides:
//
//   - a byte-stuffed frame codec with CRC-16 integrity checking, the kind
//     of framing a real microcontroller UART protocol uses, and
//
//   - an in-memory full-duplex Pipe with a configurable baud rate that
//     accounts transfer time and byte counts, so experiments can reason
//     about link occupancy (the paper notes the serial link suffices for
//     low-bit-rate sensors but a camera would need I²C or better).
package link

import (
	"errors"
	"fmt"
)

// MsgType identifies a frame's purpose in the manager-hub protocol.
type MsgType byte

// Protocol message types.
const (
	// MsgConfigPush carries an intermediate-language program from the
	// sensor manager to the hub (paper §3.3).
	MsgConfigPush MsgType = 0x01
	// MsgConfigAck confirms a successful bind; the payload names the
	// selected device.
	MsgConfigAck MsgType = 0x02
	// MsgConfigError reports a failed parse/bind/placement.
	MsgConfigError MsgType = 0x03
	// MsgRemove unloads a condition by ID.
	MsgRemove MsgType = 0x04
	// MsgWake signals a satisfied wake-up condition.
	MsgWake MsgType = 0x05
	// MsgData carries a buffer of raw sensor data to the application.
	MsgData MsgType = 0x06
	// MsgPing/MsgPong are the link liveness check.
	MsgPing MsgType = 0x07
	MsgPong MsgType = 0x08
	// MsgFeedback carries an application's wake-up verdict back to the
	// hub so the runtime can tune the condition's final threshold
	// (paper §7).
	MsgFeedback MsgType = 0x09
)

// Frame is one protocol unit.
type Frame struct {
	Type    MsgType
	Payload []byte
}

// Framing constants: HDLC-style byte stuffing.
const (
	flagByte   = 0x7E
	escapeByte = 0x7D
	escapeXor  = 0x20
)

// ErrCRC reports a corrupted frame.
var ErrCRC = errors.New("link: CRC mismatch")

// crc16 computes CRC-16/CCITT-FALSE over data.
func crc16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// Encode serializes a frame with byte stuffing and CRC. The wire format is
// FLAG | stuffed(type, len16, payload, crc16) | FLAG.
func Encode(f Frame) []byte {
	if len(f.Payload) > 0xFFFF {
		panic(fmt.Sprintf("link: payload too large: %d", len(f.Payload)))
	}
	raw := make([]byte, 0, len(f.Payload)+5)
	raw = append(raw, byte(f.Type), byte(len(f.Payload)>>8), byte(len(f.Payload)))
	raw = append(raw, f.Payload...)
	crc := crc16(raw)
	raw = append(raw, byte(crc>>8), byte(crc))

	out := make([]byte, 0, len(raw)+8)
	out = append(out, flagByte)
	for _, b := range raw {
		if b == flagByte || b == escapeByte {
			out = append(out, escapeByte, b^escapeXor)
			continue
		}
		out = append(out, b)
	}
	out = append(out, flagByte)
	return out
}

// Decoder is a streaming frame decoder: feed it wire bytes, collect frames.
type Decoder struct {
	buf     []byte
	inFrame bool
	escaped bool
}

// Feed consumes wire bytes and returns completed frames, skipping noise
// between frames. Corrupted frames produce an error alongside any frames
// decoded earlier in the same call.
func (d *Decoder) Feed(data []byte) ([]Frame, error) {
	var frames []Frame
	for _, b := range data {
		if b == flagByte {
			if d.inFrame && len(d.buf) > 0 {
				f, err := d.complete()
				if err != nil {
					d.reset()
					return frames, err
				}
				frames = append(frames, f)
				d.reset()
				// Stay in-frame: back-to-back frames share flags.
				d.inFrame = true
				continue
			}
			d.inFrame = true
			d.buf = d.buf[:0]
			d.escaped = false
			continue
		}
		if !d.inFrame {
			continue // inter-frame noise
		}
		if d.escaped {
			d.buf = append(d.buf, b^escapeXor)
			d.escaped = false
			continue
		}
		if b == escapeByte {
			d.escaped = true
			continue
		}
		d.buf = append(d.buf, b)
	}
	return frames, nil
}

func (d *Decoder) reset() {
	d.buf = d.buf[:0]
	d.inFrame = false
	d.escaped = false
}

// complete validates the buffered frame body.
func (d *Decoder) complete() (Frame, error) {
	raw := d.buf
	if len(raw) < 5 {
		return Frame{}, fmt.Errorf("link: frame too short (%d bytes)", len(raw))
	}
	body, crcBytes := raw[:len(raw)-2], raw[len(raw)-2:]
	want := uint16(crcBytes[0])<<8 | uint16(crcBytes[1])
	if crc16(body) != want {
		return Frame{}, ErrCRC
	}
	declared := int(body[1])<<8 | int(body[2])
	payload := body[3:]
	if declared != len(payload) {
		return Frame{}, fmt.Errorf("link: length mismatch: declared %d, got %d", declared, len(payload))
	}
	out := Frame{Type: MsgType(body[0])}
	if len(payload) > 0 {
		out.Payload = append([]byte(nil), payload...)
	}
	return out, nil
}

// Endpoint is one end of a simulated serial pipe.
type Endpoint struct {
	peer      *Endpoint
	inbox     []Frame
	dec       Decoder
	baud      int
	sentBytes int
	busySec   float64
}

// Pipe creates a connected full-duplex link at the given baud rate
// (115200 is the Nexus 4 debug UART's typical rate).
func Pipe(baud int) (a, b *Endpoint, err error) {
	if baud <= 0 {
		return nil, nil, fmt.Errorf("link: baud must be positive, got %d", baud)
	}
	a = &Endpoint{baud: baud}
	b = &Endpoint{baud: baud}
	a.peer = b
	b.peer = a
	return a, b, nil
}

// Send encodes and transmits a frame to the peer, accounting transfer
// time at 10 wire bits per byte (8N1 UART).
func (e *Endpoint) Send(f Frame) error {
	wire := Encode(f)
	e.sentBytes += len(wire)
	e.busySec += float64(len(wire)*10) / float64(e.baud)
	frames, err := e.peer.dec.Feed(wire)
	if err != nil {
		return err
	}
	e.peer.inbox = append(e.peer.inbox, frames...)
	return nil
}

// Receive pops the oldest pending frame.
func (e *Endpoint) Receive() (Frame, bool) {
	if len(e.inbox) == 0 {
		return Frame{}, false
	}
	f := e.inbox[0]
	e.inbox = e.inbox[1:]
	return f, true
}

// Pending returns the number of undelivered frames.
func (e *Endpoint) Pending() int { return len(e.inbox) }

// SentBytes returns the total wire bytes this endpoint transmitted.
func (e *Endpoint) SentBytes() int { return e.sentBytes }

// BusySeconds returns the cumulative wire time this endpoint's
// transmissions occupied.
func (e *Endpoint) BusySeconds() float64 { return e.busySec }
