package link

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: MsgPing},
		{Type: MsgConfigPush, Payload: []byte("ACC_X -> movingAvg(id=1, params={10});")},
		{Type: MsgData, Payload: []byte{0x7E, 0x7D, 0x00, 0xFF, 0x7E}}, // stuffing stress
		{Type: MsgWake, Payload: []byte{1, 2, 3}},
	}
	var dec Decoder
	for _, f := range frames {
		got, err := dec.Feed(mustEncode(t, f))
		if err != nil {
			t.Fatalf("decode %v: %v", f.Type, err)
		}
		if len(got) != 1 {
			t.Fatalf("decoded %d frames, want 1", len(got))
		}
		if got[0].Type != f.Type || !bytes.Equal(got[0].Payload, f.Payload) {
			t.Errorf("round trip mismatch: %+v vs %+v", got[0], f)
		}
	}
}

func TestDecoderHandlesFragmentedInput(t *testing.T) {
	f := Frame{Type: MsgData, Payload: []byte("hello hub")}
	wire := mustEncode(t, f)
	var dec Decoder
	var got []Frame
	for _, b := range wire { // one byte at a time
		fs, err := dec.Feed([]byte{b})
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, fs...)
	}
	if len(got) != 1 || !bytes.Equal(got[0].Payload, f.Payload) {
		t.Fatalf("fragmented decode = %+v", got)
	}
}

func TestDecoderSkipsInterFrameNoise(t *testing.T) {
	f := Frame{Type: MsgPong}
	wire := append([]byte{0x00, 0x55, 0xAA}, mustEncode(t, f)...)
	wire = append(wire, 0x11, 0x22)
	var dec Decoder
	got, err := dec.Feed(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Type != MsgPong {
		t.Fatalf("noise handling failed: %+v", got)
	}
}

func TestDecoderDetectsCorruption(t *testing.T) {
	wire := mustEncode(t, Frame{Type: MsgData, Payload: []byte("payload")})
	// Flip a payload byte (not a flag and not adjacent to escaping).
	for i := 4; i < len(wire)-3; i++ {
		if wire[i] != flagByte && wire[i] != escapeByte && wire[i]^0x01 != flagByte && wire[i]^0x01 != escapeByte {
			wire[i] ^= 0x01
			break
		}
	}
	var dec Decoder
	if _, err := dec.Feed(wire); err == nil {
		t.Fatal("corrupted frame decoded without error")
	}
	// The decoder recovers: a following clean frame decodes.
	got, err := dec.Feed(mustEncode(t, Frame{Type: MsgPing}))
	if err != nil || len(got) != 1 {
		t.Fatalf("decoder did not recover: %v %v", got, err)
	}
}

func TestBackToBackFrames(t *testing.T) {
	wire := append(mustEncode(t, Frame{Type: MsgPing}), mustEncode(t, Frame{Type: MsgPong})...)
	var dec Decoder
	got, err := dec.Feed(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Type != MsgPing || got[1].Type != MsgPong {
		t.Fatalf("back-to-back decode = %+v", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8, typ uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		payload := make([]byte, int(n))
		rng.Read(payload)
		frame := Frame{Type: MsgType(typ), Payload: payload}
		wire, encErr := Encode(frame)
		if encErr != nil {
			return false
		}
		var dec Decoder
		got, err := dec.Feed(wire)
		if err != nil || len(got) != 1 {
			return false
		}
		if len(payload) == 0 {
			return len(got[0].Payload) == 0
		}
		return got[0].Type == frame.Type && bytes.Equal(got[0].Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPipeDelivery(t *testing.T) {
	a, b, err := Pipe(115200)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(Frame{Type: MsgConfigPush, Payload: []byte("prog")}); err != nil {
		t.Fatal(err)
	}
	if b.Pending() != 1 {
		t.Fatalf("pending = %d", b.Pending())
	}
	f, ok := b.Receive()
	if !ok || f.Type != MsgConfigPush || string(f.Payload) != "prog" {
		t.Fatalf("received %+v, %v", f, ok)
	}
	if _, ok := b.Receive(); ok {
		t.Error("empty inbox should report no frame")
	}
	if a.SentBytes() == 0 || a.BusySeconds() <= 0 {
		t.Error("link accounting not recorded")
	}
	// 10 bits per byte at 115200 baud.
	wantBusy := float64(a.SentBytes()*10) / 115200
	if a.BusySeconds() != wantBusy {
		t.Errorf("busy = %g, want %g", a.BusySeconds(), wantBusy)
	}
}

func TestPipeBidirectional(t *testing.T) {
	a, b, err := Pipe(9600)
	if err != nil {
		t.Fatal(err)
	}
	a.Send(Frame{Type: MsgPing})
	b.Send(Frame{Type: MsgPong})
	if f, ok := b.Receive(); !ok || f.Type != MsgPing {
		t.Error("a->b failed")
	}
	if f, ok := a.Receive(); !ok || f.Type != MsgPong {
		t.Error("b->a failed")
	}
}

func TestPipeValidation(t *testing.T) {
	if _, _, err := Pipe(0); err == nil {
		t.Error("zero baud should fail")
	}
}

// mustEncode is the test-side shim for the error-returning Encode: every
// frame a test builds is encodable by construction.
func mustEncode(tb testing.TB, f Frame) []byte {
	tb.Helper()
	wire, err := Encode(f)
	if err != nil {
		tb.Fatalf("Encode(%v): %v", f.Type, err)
	}
	return wire
}

// TestEncodeOversizedPayload pins the ErrPayloadTooLarge contract: a
// payload beyond the 16-bit length field is an error on both the codec
// and the endpoint send path, never a panic.
func TestEncodeOversizedPayload(t *testing.T) {
	huge := Frame{Type: MsgData, Payload: make([]byte, 0x10000)}
	if _, err := Encode(huge); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("Encode oversized = %v, want ErrPayloadTooLarge", err)
	}
	a, b, err := Pipe(115200)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(huge); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("Endpoint.Send oversized = %v, want ErrPayloadTooLarge", err)
	}
	if err := a.SendLossy(huge); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("Endpoint.SendLossy oversized = %v, want ErrPayloadTooLarge", err)
	}
	if b.Pending() != 0 {
		t.Errorf("oversized frame reached the peer: %d pending", b.Pending())
	}
	if a.SentBytes() != 0 {
		t.Errorf("oversized frame was accounted on the wire: %d bytes", a.SentBytes())
	}
	// Exactly at the bound still encodes.
	max := Frame{Type: MsgData, Payload: make([]byte, 0xFFFF)}
	if _, err := Encode(max); err != nil {
		t.Fatalf("Encode 64KiB payload: %v", err)
	}
}

func TestCRC16KnownValue(t *testing.T) {
	// CRC-16/CCITT-FALSE("123456789") = 0x29B1.
	if got := crc16([]byte("123456789")); got != 0x29B1 {
		t.Errorf("crc16 = %#04x, want 0x29B1", got)
	}
}
