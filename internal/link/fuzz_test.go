package link

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame hammers the streaming deframer with arbitrary wire
// bytes. Invariants:
//
//   - Feed never panics, whatever the bytes;
//   - byte-at-a-time feeding yields exactly the same frames as one-shot
//     feeding (the decoder is a pure byte-stream state machine);
//   - every decoded frame re-encodes and decodes back to itself (what
//     came off the wire is a well-formed frame, not an artifact).
//
// The seed corpus covers clean frames (including a golden config push),
// stuffed bytes, concatenations, truncations and flips; `make fuzz`
// explores beyond it for a fixed budget.
func FuzzDecodeFrame(f *testing.F) {
	stepsIR := "ACC_X -> movingAvg(id=1, params={3}); 1 -> window(id=2, params={25, 12, rectangular}); 2 -> stat(id=3, params={stddev}); 3 -> minThreshold(id=4, params={0.7, 1}); 4 -> OUT;\n"
	push := mustEncode(f, Frame{Type: MsgConfigPush, Payload: append([]byte{0, 1}, []byte(stepsIR)...)})
	ping := mustEncode(f, Frame{Type: MsgPing})
	stuffed := mustEncode(f, Frame{Type: MsgData, Payload: []byte{flagByte, escapeByte, 0x00, flagByte}})
	wake := mustEncode(f, Frame{Type: MsgWake, Payload: make([]byte, 18)})
	arq := mustEncode(f, Frame{Type: MsgArqData, Payload: append([]byte{7, byte(MsgWake)}, make([]byte, 18)...)})

	f.Add(push)
	f.Add(ping)
	f.Add(stuffed)
	f.Add(wake)
	f.Add(arq)
	f.Add(append(append([]byte{}, ping...), stuffed...)) // back-to-back
	f.Add(push[:len(push)/2])                            // truncated
	f.Add([]byte{})
	f.Add([]byte{flagByte, flagByte, flagByte})
	f.Add([]byte{escapeByte, flagByte, escapeByte})
	corrupted := append([]byte{}, push...)
	corrupted[6] ^= 0x40
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64<<10 {
			return
		}
		var oneShot Decoder
		frames, _ := oneShot.Feed(data)

		var byByte Decoder
		var streamed []Frame
		for _, b := range data {
			fs, _ := byByte.Feed([]byte{b})
			streamed = append(streamed, fs...)
		}
		if len(frames) != len(streamed) {
			t.Fatalf("chunking changes results: %d frames one-shot, %d streamed", len(frames), len(streamed))
		}
		for i := range frames {
			if frames[i].Type != streamed[i].Type || !bytes.Equal(frames[i].Payload, streamed[i].Payload) {
				t.Fatalf("frame %d differs between one-shot and streamed decode", i)
			}
		}

		for i, fr := range frames {
			var re Decoder
			back, err := re.Feed(mustEncode(t, fr))
			if err != nil {
				t.Fatalf("frame %d does not re-encode cleanly: %v", i, err)
			}
			if len(back) != 1 || back[0].Type != fr.Type || !bytes.Equal(back[0].Payload, fr.Payload) {
				t.Fatalf("frame %d round trip mismatch: %+v -> %+v", i, fr, back)
			}
		}
	})
}
