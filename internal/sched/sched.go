// Package sched implements the multi-tenant hub capacity model: a cycle
// and RAM budget derived from the device's power-model constants, and an
// admission controller that decides which wake-up conditions run on the
// hub and which degrade to phone-side duty-cycled fallback sensing.
//
// The paper's prototype pushes conditions until the hub rejects one; this
// package gives the sensor manager the missing multi-tenant story. Each
// condition is costed through the DAG compile pass's static demand
// (package ir, via package interp), so structurally identical subgraphs
// across applications — shared prefixes, shared interior stages, whole
// duplicate pipelines — are billed exactly once — two applications
// windowing the microphone the same way together cost one windower. On overload the controller does not
// reject: it demotes the lowest-priority conditions to fallback, where the
// phone's duty-cycling schedule covers them at higher energy (billed to
// the ledger's phone.fallback component by package sim).
//
// Admission is a deterministic full recompute over the registered set:
// conditions sorted by descending priority (insertion order breaking
// ties) are greedily placed on the hub while the merged demand of the
// placed set fits the budget. The greedy order makes the controller
// monotone and history-free — removing a condition can only promote
// others, and the same registered set always yields the same placement
// regardless of the arrival order that produced it.
package sched

import (
	"fmt"
	"sort"

	"sidewinder/internal/core"
	"sidewinder/internal/hub"
	"sidewinder/internal/interp"
)

// FallbackDeviceName is the placement Status/reports show for a condition
// degraded to phone-side sensing.
const FallbackDeviceName = "phone-fallback"

// Budget is a device's schedulable capacity: the cycles per second left
// after the MaxUtilization reservation for sampling and link handling,
// and the RAM available for algorithm instance state.
type Budget struct {
	Device       hub.Device
	CyclesPerSec float64
	RAMBytes     int
}

// BudgetFor derives the budget from a device model's constants.
func BudgetFor(d hub.Device) Budget {
	return Budget{
		Device:       d,
		CyclesPerSec: d.ClockHz * d.MaxUtilization,
		RAMBytes:     d.RAMBytes,
	}
}

// Cycles converts a merged float/int demand into cycles per second on the
// budget's device.
func (b Budget) Cycles(floatOpsPerSec, intOpsPerSec float64) float64 {
	return floatOpsPerSec*b.Device.CyclesPerFloatOp + intOpsPerSec*b.Device.CyclesPerIntOp
}

// Fits reports whether a merged demand fits the budget.
func (b Budget) Fits(floatOpsPerSec, intOpsPerSec float64, memoryBytes int) bool {
	return b.Cycles(floatOpsPerSec, intOpsPerSec) <= b.CyclesPerSec &&
		memoryBytes <= b.RAMBytes
}

// Placement says where a condition currently runs.
type Placement int

const (
	// PlacedHub: the condition is admitted to the sensor hub.
	PlacedHub Placement = iota
	// PlacedFallback: the condition is degraded to phone-side duty-cycled
	// sensing.
	PlacedFallback
)

// String returns the placement's report name.
func (p Placement) String() string {
	switch p {
	case PlacedHub:
		return "hub"
	case PlacedFallback:
		return FallbackDeviceName
	default:
		return fmt.Sprintf("placement(%d)", int(p))
	}
}

// condition is one registered wake-up condition.
type condition struct {
	id       uint16
	plan     *core.Plan
	priority int
	seq      int // insertion order, the priority tiebreak
}

// Delta reports the placement changes one Add or Remove caused, with IDs
// in ascending order. The condition just added appears in neither list;
// query its placement directly.
type Delta struct {
	// Promoted moved fallback -> hub (capacity freed up or sharing made
	// them cheap).
	Promoted []uint16
	// Demoted moved hub -> fallback (a higher-priority arrival displaced
	// them).
	Demoted []uint16
}

// Options tune the admission controller's costing.
type Options struct {
	// DisableSharing bills every condition its standalone demand: no
	// cross-app deduplication, no DAG folds — the sum of per-plan totals.
	// This is the CSE-off ablation the fleet sweep compares against; the
	// default (false) bills the shared execution graph the hub actually
	// runs.
	DisableSharing bool
}

// Scheduler is the admission controller for one hub device.
type Scheduler struct {
	budget  Budget
	opts    Options
	conds   map[uint16]*condition
	placed  map[uint16]Placement
	nextSeq int
}

// New builds a scheduler over a device's derived budget with default
// (sharing-aware) costing.
func New(d hub.Device) *Scheduler { return NewWithOptions(d, Options{}) }

// NewWithOptions builds a scheduler with explicit costing options.
func NewWithOptions(d hub.Device, opts Options) *Scheduler {
	return &Scheduler{
		budget: BudgetFor(d),
		opts:   opts,
		conds:  make(map[uint16]*condition),
		placed: make(map[uint16]Placement),
	}
}

// Budget returns the device budget the scheduler admits against.
func (s *Scheduler) Budget() Budget { return s.budget }

// Add registers a condition and recomputes placements. Higher priority
// wins the hub under contention; equal priorities favor earlier arrivals.
// The condition is never rejected — at worst it lands in fallback.
func (s *Scheduler) Add(id uint16, plan *core.Plan, priority int) (Delta, error) {
	if plan == nil {
		return Delta{}, fmt.Errorf("sched: condition %d has no plan", id)
	}
	if _, ok := s.conds[id]; ok {
		return Delta{}, fmt.Errorf("sched: condition %d already registered", id)
	}
	s.conds[id] = &condition{id: id, plan: plan, priority: priority, seq: s.nextSeq}
	s.nextSeq++
	return s.recompute(id), nil
}

// Update swaps a registered condition's plan in place — keeping its
// priority and insertion order, so determinism is unaffected — and
// recomputes placements. This is the adaptive-sensing re-admission hook:
// a re-parameterized pipeline must clear the same cycle/RAM budget as a
// fresh push before the hub may run it. The updated condition's own
// placement transition is excluded from the delta, like Add's; query it
// with Placement. Updating an unknown ID is an error.
func (s *Scheduler) Update(id uint16, plan *core.Plan) (Delta, error) {
	if plan == nil {
		return Delta{}, fmt.Errorf("sched: condition %d has no plan", id)
	}
	c, ok := s.conds[id]
	if !ok {
		return Delta{}, fmt.Errorf("sched: unknown condition %d", id)
	}
	c.plan = plan
	return s.recompute(id), nil
}

// Remove unregisters a condition and recomputes placements; freed
// capacity can promote degraded conditions back to the hub. Removing an
// unknown ID is an error.
func (s *Scheduler) Remove(id uint16) (Delta, error) {
	if _, ok := s.conds[id]; !ok {
		return Delta{}, fmt.Errorf("sched: unknown condition %d", id)
	}
	delete(s.conds, id)
	delete(s.placed, id)
	return s.recompute(id), nil
}

// Placement reports where a condition runs.
func (s *Scheduler) Placement(id uint16) (Placement, bool) {
	p, ok := s.placed[id]
	return p, ok
}

// HubSet returns the admitted condition IDs in ascending order.
func (s *Scheduler) HubSet() []uint16 { return s.idsWhere(PlacedHub) }

// FallbackSet returns the degraded condition IDs in ascending order.
func (s *Scheduler) FallbackSet() []uint16 { return s.idsWhere(PlacedFallback) }

func (s *Scheduler) idsWhere(p Placement) []uint16 {
	var out []uint16
	for id, got := range s.placed {
		if got == p {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HubPlans returns the admitted set's plans in ascending ID order — the
// set whose merged demand is guaranteed to fit the budget.
func (s *Scheduler) HubPlans() []*core.Plan {
	ids := s.HubSet()
	out := make([]*core.Plan, len(ids))
	for i, id := range ids {
		out[i] = s.conds[id].plan
	}
	return out
}

// Utilization reports the admitted set's merged demand as fractions of
// the cycle and RAM budgets, plus the number of plan nodes deduplicated
// away by prefix sharing.
func (s *Scheduler) Utilization() (cycleFrac, ramFrac float64, sharedNodes int) {
	plans := s.HubPlans()
	if len(plans) == 0 {
		return 0, 0, 0
	}
	var f, i float64
	var mem int
	if s.opts.DisableSharing {
		for _, p := range plans {
			pf, pi := p.TotalOpsPerSecond()
			f += pf
			i += pi
			mem += p.TotalMemory()
		}
	} else {
		f, i, mem = interp.MergedDemand(plans...)
		for _, p := range plans {
			sharedNodes += len(p.Nodes)
		}
		sharedNodes -= distinctNodes(plans)
	}
	if s.budget.CyclesPerSec > 0 {
		cycleFrac = s.budget.Cycles(f, i) / s.budget.CyclesPerSec
	}
	if s.budget.RAMBytes > 0 {
		ramFrac = float64(mem) / float64(s.budget.RAMBytes)
	}
	return cycleFrac, ramFrac, sharedNodes
}

// distinctNodes counts merged instances across the plans (shared prefixes
// once), via the per-stage demand breakdown.
func distinctNodes(plans []*core.Plan) int {
	n := 0
	for _, sd := range interp.MergedDemandByStage(plans...) {
		n += sd.Nodes
	}
	return n
}

// recompute rebuilds the placement map greedily and diffs it against the
// previous one. The just-changed ID (added or removed) is excluded from
// the delta: its own transition is the caller's direct result, not a
// side effect.
func (s *Scheduler) recompute(changed uint16) Delta {
	order := make([]*condition, 0, len(s.conds))
	for _, c := range s.conds {
		order = append(order, c)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].priority != order[j].priority {
			return order[i].priority > order[j].priority
		}
		return order[i].seq < order[j].seq
	})

	next := make(map[uint16]Placement, len(order))
	if s.opts.DisableSharing {
		// CSE-off ablation: every condition is billed standalone.
		var f, i float64
		var mem int
		for _, c := range order {
			mf, mi := c.plan.TotalOpsPerSecond()
			mmem := c.plan.TotalMemory()
			if s.budget.Fits(f+mf, i+mi, mem+mmem) {
				f, i, mem = f+mf, i+mi, mem+mmem
				next[c.id] = PlacedHub
			} else {
				next[c.id] = PlacedFallback
			}
		}
	} else {
		acc := interp.NewDemandAccumulator()
		for _, c := range order {
			mf, mi, mmem := acc.Marginal(c.plan)
			f, i, mem := acc.Total()
			if s.budget.Fits(f+mf, i+mi, mem+mmem) {
				acc.Commit(c.plan)
				next[c.id] = PlacedHub
			} else {
				next[c.id] = PlacedFallback
			}
		}
	}

	var d Delta
	for id, np := range next {
		if id == changed {
			continue
		}
		if op, had := s.placed[id]; had && op != np {
			if np == PlacedHub {
				d.Promoted = append(d.Promoted, id)
			} else {
				d.Demoted = append(d.Demoted, id)
			}
		}
	}
	sort.Slice(d.Promoted, func(i, j int) bool { return d.Promoted[i] < d.Promoted[j] })
	sort.Slice(d.Demoted, func(i, j int) bool { return d.Demoted[i] < d.Demoted[j] })
	s.placed = next
	return d
}
