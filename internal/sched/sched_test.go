package sched

import (
	"math/rand"
	"testing"

	"sidewinder/internal/core"
	"sidewinder/internal/hub"
	"sidewinder/internal/interp"
)

// motionPlan is a cheap accelerometer condition (fits the MSP430).
func motionPlan(t *testing.T, threshold float64) *core.Plan {
	t.Helper()
	p := core.NewPipeline("motion")
	for _, ch := range []core.SensorChannel{core.AccelX, core.AccelY, core.AccelZ} {
		p.AddBranch(core.NewBranch(ch).Add(core.MovingAverage(10)))
	}
	p.Add(core.VectorMagnitude())
	p.Add(core.MinThreshold(threshold))
	plan, err := p.Validate(core.DefaultCatalog())
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// sirenPlan is the FFT-heavy audio condition that exceeds the MSP430's
// cycle budget (software floats) but fits the LM4F120. Distinct cutoffs
// produce structurally distinct chains (nothing shared); equal cutoffs
// share everything.
func sirenPlan(t *testing.T, cutoff float64) *core.Plan {
	t.Helper()
	p := core.NewPipeline("siren")
	p.AddBranch(core.NewBranch(core.Mic).
		Add(core.HighPass(cutoff, 512)).
		Add(core.FFT()).
		Add(core.SpectralMag()).
		Add(core.Tonality(850, 1800, core.AudioRateHz)).
		Add(core.MinThreshold(4)))
	plan, err := p.Validate(core.DefaultCatalog())
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestBudgetFromDeviceConstants(t *testing.T) {
	for _, d := range hub.Devices() {
		b := BudgetFor(d)
		if b.CyclesPerSec != d.ClockHz*d.MaxUtilization {
			t.Errorf("%s cycle budget = %g, want %g", d.Name, b.CyclesPerSec, d.ClockHz*d.MaxUtilization)
		}
		if b.RAMBytes != d.RAMBytes {
			t.Errorf("%s RAM budget = %d, want %d", d.Name, b.RAMBytes, d.RAMBytes)
		}
	}
}

func TestAdmitWithinBudget(t *testing.T) {
	s := New(hub.MSP430())
	d, err := s.Add(1, motionPlan(t, 15), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Promoted) != 0 || len(d.Demoted) != 0 {
		t.Errorf("first add produced side effects: %+v", d)
	}
	if p, _ := s.Placement(1); p != PlacedHub {
		t.Errorf("placement = %v, want hub", p)
	}
}

func TestOverloadDegradesLowestPriority(t *testing.T) {
	// The siren chain cannot run on the MSP430 at all, so a lone siren
	// condition must degrade rather than be rejected.
	s := New(hub.MSP430())
	if _, err := s.Add(1, sirenPlan(t, 750), 5); err != nil {
		t.Fatal(err)
	}
	if p, _ := s.Placement(1); p != PlacedFallback {
		t.Errorf("infeasible condition placed %v, want fallback", p)
	}

	// On the LM4F120 one siren fits; stacking distinct (unshared) sirens
	// must eventually demote — and the lowest-priority one goes first.
	s = New(hub.LM4F120())
	if _, err := s.Add(1, sirenPlan(t, 750), 5); err != nil {
		t.Fatal(err)
	}
	var demoted []uint16
	id := uint16(2)
	for ; id < 40; id++ {
		// Distinct cutoffs defeat sharing so each siren pays full cost.
		d, err := s.Add(id, sirenPlan(t, 750+float64(id)), int(id))
		if err != nil {
			t.Fatal(err)
		}
		demoted = append(demoted, d.Demoted...)
		if len(s.FallbackSet()) > 0 {
			break
		}
	}
	if len(s.FallbackSet()) == 0 {
		t.Fatal("hub never overloaded")
	}
	// Condition 2 carries the lowest priority of the registered set
	// (priorities are 5, 2, 3, ...), so it must be the demotion victim
	// while the higher-priority condition 1 stays on the hub.
	if len(demoted) != 1 || demoted[0] != 2 {
		t.Errorf("demoted = %v, want [2]", demoted)
	}
	if p, _ := s.Placement(2); p != PlacedFallback {
		t.Error("condition 2 should be in fallback")
	}
	if p, _ := s.Placement(1); p != PlacedHub {
		t.Error("condition 1 should have stayed on the hub")
	}
}

func TestSharedPrefixAdmitsMore(t *testing.T) {
	// Identical sirens share the whole chain: the LM4F120 runs one siren,
	// so it must also run N copies (billed once), where distinct sirens
	// would overload it.
	s := New(hub.LM4F120())
	for id := uint16(1); id <= 12; id++ {
		if _, err := s.Add(id, sirenPlan(t, 750), 0); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(s.FallbackSet()); n != 0 {
		t.Errorf("%d identical conditions degraded despite full sharing", n)
	}
	cycleFrac, _, shared := s.Utilization()
	if cycleFrac > 1 {
		t.Errorf("utilization %g exceeds budget", cycleFrac)
	}
	// 12 plans x 5 nodes, one live chain of 5 -> 55 deduplicated.
	if shared != 55 {
		t.Errorf("shared nodes = %d, want 55", shared)
	}
}

func TestRemovePromotesDegraded(t *testing.T) {
	s := New(hub.LM4F120())
	// Fill the hub with high-priority distinct sirens until one more (low
	// priority) degrades.
	id := uint16(1)
	for ; ; id++ {
		if _, err := s.Add(id, sirenPlan(t, 750+float64(id)), 1); err != nil {
			t.Fatal(err)
		}
		if len(s.FallbackSet()) > 0 {
			break
		}
	}
	victim := s.FallbackSet()[0]
	// Removing an admitted condition frees capacity: the victim must come
	// back.
	d, err := s.Remove(s.HubSet()[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Promoted) != 1 || d.Promoted[0] != victim {
		t.Errorf("promoted = %v, want [%d]", d.Promoted, victim)
	}
	if p, _ := s.Placement(victim); p != PlacedHub {
		t.Error("victim not back on the hub")
	}
}

func TestAddRemoveErrors(t *testing.T) {
	s := New(hub.MSP430())
	if _, err := s.Add(1, nil, 0); err == nil {
		t.Error("nil plan accepted")
	}
	if _, err := s.Add(1, motionPlan(t, 15), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(1, motionPlan(t, 15), 0); err == nil {
		t.Error("duplicate ID accepted")
	}
	if _, err := s.Remove(9); err == nil {
		t.Error("unknown remove accepted")
	}
}

// TestPropertyAdmittedSetNeverExceedsBudget drives random Add/Remove
// sequences and checks the scheduler's core invariants after every
// operation:
//
//  1. the admitted set's merged demand fits the cycle and RAM budgets,
//  2. every registered condition is placed somewhere (no rejection), and
//  3. a degraded condition really would not fit: adding its plan to the
//     admitted set of its priority class would blow the budget (no
//     spurious degradation).
func TestPropertyAdmittedSetNeverExceedsBudget(t *testing.T) {
	plans := []*core.Plan{
		motionPlan(t, 15), motionPlan(t, 15), motionPlan(t, 25),
		sirenPlan(t, 750), sirenPlan(t, 800), sirenPlan(t, 850), sirenPlan(t, 900),
	}
	for _, dev := range hub.Devices() {
		rng := rand.New(rand.NewSource(7))
		s := New(dev)
		b := s.Budget()
		live := make(map[uint16]int) // id -> priority
		nextID := uint16(1)
		for op := 0; op < 300; op++ {
			if len(live) == 0 || (len(live) < 40 && rng.Intn(3) != 0) {
				prio := rng.Intn(3)
				if _, err := s.Add(nextID, plans[rng.Intn(len(plans))], prio); err != nil {
					t.Fatal(err)
				}
				live[nextID] = prio
				nextID++
			} else {
				var ids []uint16
				for id := range live {
					ids = append(ids, id)
				}
				id := ids[rng.Intn(len(ids))]
				if _, err := s.Remove(id); err != nil {
					t.Fatal(err)
				}
				delete(live, id)
			}

			hubIDs, fbIDs := s.HubSet(), s.FallbackSet()
			if len(hubIDs)+len(fbIDs) != len(live) {
				t.Fatalf("op %d on %s: %d placed != %d registered",
					op, dev.Name, len(hubIDs)+len(fbIDs), len(live))
			}
			f, i, mem := interp.MergedDemand(s.HubPlans()...)
			if len(hubIDs) > 0 && !b.Fits(f, i, mem) {
				t.Fatalf("op %d on %s: admitted set exceeds budget: %.2f Mcycles/s of %.2f, %d B of %d",
					op, dev.Name, b.Cycles(f, i)/1e6, b.CyclesPerSec/1e6, mem, b.RAMBytes)
			}
		}
	}
}

// TestPropertySharedPrefixBilledOnce: for any subset of conditions the
// scheduler admits, the demand it charges equals the merged demand — and
// duplicating a plan in the set never raises it.
func TestPropertySharedPrefixBilledOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := []*core.Plan{motionPlan(t, 15), sirenPlan(t, 750)}
	for trial := 0; trial < 50; trial++ {
		var set []*core.Plan
		for k := 0; k < 1+rng.Intn(6); k++ {
			set = append(set, base[rng.Intn(len(base))])
		}
		f1, i1, m1 := interp.MergedDemand(set...)
		f2, i2, m2 := interp.MergedDemand(append(set, set[rng.Intn(len(set))])...)
		if f1 != f2 || i1 != i2 || m1 != m2 {
			t.Fatalf("duplicating a plan changed merged demand: (%g,%g,%d) -> (%g,%g,%d)",
				f1, i1, m1, f2, i2, m2)
		}
	}
	// And the scheduler admits duplicates for free: a full LM4F120 still
	// accepts a copy of an already-admitted condition onto the hub.
	s := New(hub.LM4F120())
	id := uint16(1)
	for ; ; id++ {
		if _, err := s.Add(id, sirenPlan(t, 750+float64(id)), 2); err != nil {
			t.Fatal(err)
		}
		if len(s.FallbackSet()) > 0 {
			break
		}
	}
	dup := id + 1
	// Same cutoff as an admitted siren -> structurally identical -> zero
	// marginal cost, admitted even though the hub is "full".
	if _, err := s.Add(dup, sirenPlan(t, 751), 2); err != nil {
		t.Fatal(err)
	}
	if p, _ := s.Placement(dup); p != PlacedHub {
		t.Error("zero-marginal-cost duplicate was degraded")
	}
}

func TestPlacementString(t *testing.T) {
	if PlacedHub.String() != "hub" || PlacedFallback.String() != FallbackDeviceName {
		t.Errorf("unexpected names: %s, %s", PlacedHub, PlacedFallback)
	}
}

// TestDisableSharingBillsNaively pins the CSE-off ablation: identical
// siren conditions share everything under default costing (all admitted
// on the LM4F120), but bill their full standalone demand with sharing
// disabled, so the same set overflows and degrades.
func TestDisableSharingBillsNaively(t *testing.T) {
	const n = 6
	shared := New(hub.LM4F120())
	naive := NewWithOptions(hub.LM4F120(), Options{DisableSharing: true})
	for id := uint16(1); id <= n; id++ {
		plan := sirenPlan(t, 750)
		if _, err := shared.Add(id, plan, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := naive.Add(id, plan, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(shared.HubSet()); got != n {
		t.Fatalf("sharing-aware scheduler admitted %d of %d identical conditions", got, n)
	}
	if got := len(naive.HubSet()); got >= n {
		t.Fatalf("naive scheduler admitted all %d identical conditions; sharing-off should overflow", got)
	}
	// Utilization must agree with the billing mode: naive fractions are
	// per-plan sums with no shared nodes reported.
	cycOn, _, sharedNodes := shared.Utilization()
	cycOff, _, naiveShared := naive.Utilization()
	if sharedNodes == 0 {
		t.Fatal("sharing-aware utilization reported zero shared nodes for identical plans")
	}
	if naiveShared != 0 {
		t.Fatalf("naive utilization reported %d shared nodes", naiveShared)
	}
	perCond := cycOn // all n shared conditions cost one pipeline
	if cycOff < perCond*float64(len(naive.HubSet()))-1e-9 {
		t.Fatalf("naive cycle fraction %g below %d standalone pipelines (%g each)",
			cycOff, len(naive.HubSet()), perCond)
	}
}

// TestPropertyNaiveBillingNeverCheaper: over random condition sets, the
// sharing-aware scheduler's merged demand never exceeds the naive
// scheduler's for the same admitted set, and a scheduler admitting under
// merged costing keeps every set it admits within budget when re-billed
// by the DAG demand (the invariant the hub actually runs under).
func TestPropertyNaiveBillingNeverCheaper(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 30; trial++ {
		s := New(hub.LM4F120())
		n := 2 + rng.Intn(5)
		for id := uint16(1); id <= uint16(n); id++ {
			cutoffs := []float64{700, 750, 800}
			plan := sirenPlan(t, cutoffs[rng.Intn(len(cutoffs))])
			if _, err := s.Add(id, plan, rng.Intn(3)); err != nil {
				t.Fatal(err)
			}
		}
		plans := s.HubPlans()
		if len(plans) == 0 {
			continue
		}
		mf, mi, mm := interp.MergedDemand(plans...)
		var nf, ni float64
		var nm int
		for _, p := range plans {
			f, i := p.TotalOpsPerSecond()
			nf += f
			ni += i
			nm += p.TotalMemory()
		}
		if mf > nf+1e-9 || mi > ni+1e-9 || mm > nm {
			t.Fatalf("trial %d: merged demand %g/%g/%d exceeds naive %g/%g/%d",
				trial, mf, mi, mm, nf, ni, nm)
		}
		b := s.Budget()
		if !b.Fits(mf, mi, mm) {
			t.Fatalf("trial %d: admitted set does not fit its own budget", trial)
		}
	}
}

func TestUpdateSwapsPlanInPlace(t *testing.T) {
	s := New(hub.MSP430())
	if _, err := s.Add(1, motionPlan(t, 15), 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(2, motionPlan(t, 20), 1); err != nil {
		t.Fatal(err)
	}
	// A same-cost swap changes nothing for anyone.
	d, err := s.Update(1, motionPlan(t, 16))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Promoted) != 0 || len(d.Demoted) != 0 {
		t.Fatalf("cheap update produced delta %+v", d)
	}
	if p, _ := s.Placement(1); p != PlacedHub {
		t.Fatalf("updated condition left the hub: %v", p)
	}
	// Updating to an infeasible plan degrades the condition itself (its
	// own transition is not part of the delta) without touching others.
	d, err = s.Update(1, sirenPlan(t, 750))
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := s.Placement(1); p != PlacedFallback {
		t.Fatalf("infeasible update kept the hub: %v", p)
	}
	if p, _ := s.Placement(2); p != PlacedHub {
		t.Fatal("unrelated condition displaced by update")
	}
	// Updating back restores hub placement; priority and insertion order
	// survived the round trip.
	if _, err = s.Update(1, motionPlan(t, 15)); err != nil {
		t.Fatal(err)
	}
	if p, _ := s.Placement(1); p != PlacedHub {
		t.Fatal("restoring update did not re-admit")
	}
}

func TestUpdateErrors(t *testing.T) {
	s := New(hub.MSP430())
	if _, err := s.Update(9, motionPlan(t, 1)); err == nil {
		t.Fatal("updating an unregistered condition succeeded")
	}
	if _, err := s.Add(1, motionPlan(t, 1), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update(1, nil); err == nil {
		t.Fatal("nil plan accepted")
	}
}
