// Package manager implements both software endpoints of the Sidewinder
// architecture (paper Fig. 1): the phone-side SidewinderSensorManager that
// applications use to push wake-up conditions and receive callbacks, and
// the hub-side node that parses the intermediate language, places
// conditions on a device, executes them over sensor data, and ships wake
// events plus buffered raw data back over the serial link.
//
// The two sides communicate exclusively through IR text and link frames —
// the same decoupling boundary the paper prescribes (§2.1.3, §3.3) — so
// either side could be replaced by a real implementation speaking the same
// protocol.
package manager

import (
	"encoding/binary"
	"fmt"
	"math"

	"sidewinder/internal/core"
)

// Payload codecs for the manager-hub protocol. All integers are little
// endian; samples travel as float32, matching the hub's native precision.

// configPushPayload is condID u16 | IR text.
func encodeConfigPush(id uint16, irText string) []byte {
	out := make([]byte, 2+len(irText))
	binary.LittleEndian.PutUint16(out, id)
	copy(out[2:], irText)
	return out
}

func decodeConfigPush(p []byte) (id uint16, irText string, err error) {
	if len(p) < 2 {
		return 0, "", fmt.Errorf("manager: config push payload too short")
	}
	return binary.LittleEndian.Uint16(p), string(p[2:]), nil
}

// idWithText is the shared shape of ack (device name) and error (message).
func encodeIDText(id uint16, text string) []byte {
	out := make([]byte, 2+len(text))
	binary.LittleEndian.PutUint16(out, id)
	copy(out[2:], text)
	return out
}

func decodeIDText(p []byte) (id uint16, text string, err error) {
	if len(p) < 2 {
		return 0, "", fmt.Errorf("manager: payload too short")
	}
	return binary.LittleEndian.Uint16(p), string(p[2:]), nil
}

func encodeRemove(id uint16) []byte {
	out := make([]byte, 2)
	binary.LittleEndian.PutUint16(out, id)
	return out
}

func decodeRemove(p []byte) (uint16, error) {
	if len(p) != 2 {
		return 0, fmt.Errorf("manager: remove payload must be 2 bytes")
	}
	return binary.LittleEndian.Uint16(p), nil
}

// wakePayload is condID u16 | value f64 | sampleIndex u64.
func encodeWake(id uint16, value float64, sampleIndex int64) []byte {
	out := make([]byte, 18)
	binary.LittleEndian.PutUint16(out, id)
	binary.LittleEndian.PutUint64(out[2:], math.Float64bits(value))
	binary.LittleEndian.PutUint64(out[10:], uint64(sampleIndex))
	return out
}

func decodeWake(p []byte) (id uint16, value float64, sampleIndex int64, err error) {
	if len(p) != 18 {
		return 0, 0, 0, fmt.Errorf("manager: wake payload must be 18 bytes, got %d", len(p))
	}
	id = binary.LittleEndian.Uint16(p)
	value = math.Float64frombits(binary.LittleEndian.Uint64(p[2:]))
	sampleIndex = int64(binary.LittleEndian.Uint64(p[10:]))
	return id, value, sampleIndex, nil
}

// dataPayload is condID u16 | chanLen u8 | chan | count u32 | f32 samples.
func encodeData(id uint16, ch core.SensorChannel, samples []float64) []byte {
	name := string(ch)
	out := make([]byte, 2+1+len(name)+4+4*len(samples))
	binary.LittleEndian.PutUint16(out, id)
	out[2] = byte(len(name))
	copy(out[3:], name)
	off := 3 + len(name)
	binary.LittleEndian.PutUint32(out[off:], uint32(len(samples)))
	off += 4
	for _, v := range samples {
		binary.LittleEndian.PutUint32(out[off:], math.Float32bits(float32(v)))
		off += 4
	}
	return out
}

func decodeData(p []byte) (id uint16, ch core.SensorChannel, samples []float64, err error) {
	if len(p) < 7 {
		return 0, "", nil, fmt.Errorf("manager: data payload too short")
	}
	id = binary.LittleEndian.Uint16(p)
	nameLen := int(p[2])
	if len(p) < 3+nameLen+4 {
		return 0, "", nil, fmt.Errorf("manager: data payload truncated name")
	}
	chParsed, err := core.ParseChannel(string(p[3 : 3+nameLen]))
	if err != nil {
		return 0, "", nil, err
	}
	off := 3 + nameLen
	count := int(binary.LittleEndian.Uint32(p[off:]))
	off += 4
	if len(p) != off+4*count {
		return 0, "", nil, fmt.Errorf("manager: data payload has %d bytes, want %d", len(p), off+4*count)
	}
	samples = make([]float64, count)
	for i := range samples {
		samples[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(p[off+4*i:])))
	}
	return id, chParsed, samples, nil
}

// feedbackPayload is condID u16 | verdict u8 (1 = false positive).
func encodeFeedback(id uint16, falsePositive bool) []byte {
	out := make([]byte, 3)
	binary.LittleEndian.PutUint16(out, id)
	if falsePositive {
		out[2] = 1
	}
	return out
}

func decodeFeedback(p []byte) (id uint16, falsePositive bool, err error) {
	if len(p) != 3 {
		return 0, false, fmt.Errorf("manager: feedback payload must be 3 bytes, got %d", len(p))
	}
	return binary.LittleEndian.Uint16(p), p[2] == 1, nil
}
