package manager

import (
	"fmt"

	"sidewinder/internal/adapt"
	"sidewinder/internal/core"
	"sidewinder/internal/ir"
	"sidewinder/internal/link"
	"sidewinder/internal/sched"
)

// This file wires the adaptive policy engine (package adapt) into the
// sensor manager, closing the feedback loop end to end:
//
//	Feedback/ReportMissedWake -> engine.Observe -> Reparameterize ->
//	sched re-admission -> MsgConfigPush update -> hub in-place rebuild
//
// The policy lives on the phone, not the hub: the phone sees the missed
// wakes the hub cannot, and keeping st.irText current means post-crash
// re-provisioning pushes the *adapted* program — adaptation survives hub
// reboots with no extra protocol.
//
// Re-admission contract: an adaptation is applied only if (a) the attached
// scheduler re-admits the mutated plan without displacing any other tenant
// and without falling off the hub itself, and (b) the hub's own rebuild
// accepts it. Either rejection rolls the condition back to its last good
// program and clamps the engine (Veto) so the offending rung is never
// proposed again.

// adaptState is one condition under adaptive management.
type adaptState struct {
	engine *adapt.Engine
	base   *core.Plan // the developer's plan, the reparameterization root

	applied     *core.Plan // last program the hub confirmed (nil = base)
	appliedText string
	pending     *core.Plan // update pushed but not yet acked
	pendingText string
}

// settleAck records a confirmed adaptive update.
func (as *adaptState) settleAck() {
	if as.pending != nil {
		as.applied, as.appliedText = as.pending, as.pendingText
		as.pending, as.pendingText = nil, ""
	}
}

// EnableAdaptive puts a previously pushed condition under adaptive
// management with the given policy bounds. Subsequent Feedback verdicts
// feed the policy engine instead of the hub's legacy tuner, and
// ReportMissedWake becomes meaningful. The condition must have settled
// (acked by the hub or degraded to fallback).
func (m *Manager) EnableAdaptive(id uint16, cfg adapt.Config) error {
	st, ok := m.pushes[id]
	if !ok {
		return fmt.Errorf("manager: unknown condition %d", id)
	}
	if !st.acked || st.err != nil {
		return fmt.Errorf("manager: condition %d has not settled; enable adaptation after the push is acked", id)
	}
	base, err := ir.ParseAndBind(st.irText, m.cat)
	if err != nil {
		return fmt.Errorf("manager: condition %d: cannot rebind pushed program: %w", id, err)
	}
	m.adaptive[id] = &adaptState{
		engine:      adapt.NewEngine(cfg),
		base:        base,
		applied:     base,
		appliedText: st.irText,
	}
	return nil
}

// AdaptiveEnabled reports whether a condition is under adaptive
// management.
func (m *Manager) AdaptiveEnabled(id uint16) bool { return m.adaptive[id] != nil }

// AdaptiveStats returns the policy engine's history for a condition.
func (m *Manager) AdaptiveStats(id uint16) (adapt.Stats, bool) {
	as := m.adaptive[id]
	if as == nil {
		return adapt.Stats{}, false
	}
	return as.engine.Stats(), true
}

// AdaptiveKnobs returns the engine's current proposal for a condition.
func (m *Manager) AdaptiveKnobs(id uint16) (adapt.Knobs, bool) {
	as := m.adaptive[id]
	if as == nil {
		return adapt.Knobs{}, false
	}
	return as.engine.Knobs(), true
}

// AdaptivePlan returns the last hub-confirmed program of an adaptively
// managed condition.
func (m *Manager) AdaptivePlan(id uint16) (*core.Plan, bool) {
	as := m.adaptive[id]
	if as == nil {
		return nil, false
	}
	return as.applied, true
}

// ReportMissedWake reports that an event of interest passed without a
// wake — the signal only the application layer can observe (ground truth,
// user annotation, a heavier duty-cycled classifier). For a condition
// under adaptive management it drives the policy toward its baseline
// configuration; for any other known condition it is accepted and
// dropped, mirroring Feedback on a degraded condition.
func (m *Manager) ReportMissedWake(id uint16) error {
	st, ok := m.pushes[id]
	if !ok {
		return fmt.Errorf("manager: unknown condition %d", id)
	}
	as := m.adaptive[id]
	if as == nil {
		return nil
	}
	as.engine.Observe(adapt.MissedWake)
	return m.applyAdaptation(id, st, as)
}

// applyAdaptation turns a dirty engine proposal into a hub update: mutate
// the base plan, re-check admission, and push the new program. Called
// after every Observe; a clean engine is a no-op.
func (m *Manager) applyAdaptation(id uint16, st *pushState, as *adaptState) error {
	if !as.engine.TakeDirty() {
		return nil
	}
	if st.degraded {
		// The condition runs phone-side; there is no hub program to
		// mutate. The engine keeps observing so a later promotion starts
		// from an informed state.
		return nil
	}
	knobs := as.engine.Knobs()
	plan, err := adapt.Reparameterize(m.cat, as.base, knobs)
	if err != nil {
		// A proposal the catalog itself rejects (e.g. a scaled window
		// collapsing) is a bad rung, not a broken manager: clamp and
		// retry with the fallback proposal (bounded by the ladder).
		as.engine.Veto()
		return m.applyAdaptation(id, st, as)
	}
	if m.sched != nil {
		delta, err := m.sched.Update(id, plan)
		if err != nil {
			return err
		}
		placement, _ := m.sched.Placement(id)
		if placement != sched.PlacedHub || len(delta.Demoted) > 0 {
			// Adaptation must never displace a tenant or degrade itself:
			// re-register the last good program and clamp the engine.
			if _, rerr := m.sched.Update(id, as.applied); rerr != nil {
				return rerr
			}
			as.engine.Veto()
			// The veto dropped the engine one rung; apply that fallback
			// proposal now rather than waiting for the next verdict. Each
			// veto strictly lowers the reachable rung, so this recursion
			// is bounded by the ladder length.
			return m.applyAdaptation(id, st, as)
		}
	}
	irText := compileIR(plan)
	if irText == st.irText {
		// Knob change with no program-level effect (e.g. a precision
		// proposal: the IR carries no precision, the hub executes its
		// native substrate). Nothing to push.
		as.applied, as.appliedText = plan, irText
		return nil
	}
	st.irText = irText // crash re-provisioning now re-pushes the adapted program
	st.acked = false
	st.err = nil
	as.pending, as.pendingText = plan, irText
	m.trace.Instant2("adapt.update", "phone", "cond", float64(id), "rung", float64(as.engine.Stats().Rung))
	return m.ep.Send(link.Frame{Type: link.MsgConfigPush, Payload: encodeConfigPush(id, irText)})
}

// rollbackAdaptation undoes a rejected adaptive update: the hub kept its
// previous program, so the manager's view and the scheduler's
// registration return to the last good plan and the engine is clamped.
func (m *Manager) rollbackAdaptation(id uint16, st *pushState, as *adaptState) {
	st.irText = as.appliedText
	st.err = nil
	as.pending, as.pendingText = nil, ""
	if m.sched != nil {
		// Best-effort: the last good plan was admitted before, so
		// re-registering it cannot fail structurally.
		if _, err := m.sched.Update(id, as.applied); err != nil {
			m.trace.Instant1("adapt.rollback_error", "phone", "cond", float64(id))
		}
	}
	as.engine.Veto()
}
