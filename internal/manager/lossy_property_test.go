package manager

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"sidewinder/internal/core"
	"sidewinder/internal/ir"
	"sidewinder/internal/link"
	"sidewinder/internal/testutil"
)

// TestCorruptedFrameNeverDecodesAsOriginal is the mutation test of the
// framing layer: take a random valid pipeline, compile it, wrap the IR in
// a link frame, flip exactly one bit of the wire image — the decoder must
// never hand back the original frame intact. CRC-16/CCITT detects all
// single-bit errors, and damage to a flag or escape byte may reframe the
// stream, but what comes out can never silently equal what went in.
func TestCorruptedFrameNeverDecodesAsOriginal(t *testing.T) {
	cat := core.DefaultCatalog()
	rng := rand.New(rand.NewSource(20260806))
	for i := 0; i < 200; i++ {
		p := testutil.RandomPipeline(rng)
		plan, err := p.Validate(cat)
		if err != nil {
			t.Fatalf("pipeline %d invalid: %v", i, err)
		}
		irText := ir.CompileToText(plan)
		orig := link.Frame{Type: link.MsgConfigPush, Payload: encodeConfigPush(uint16(i+1), irText)}
		wire, err := link.Encode(orig)
		if err != nil {
			t.Fatalf("pipeline %d: encoding push frame: %v", i, err)
		}

		mutated := append([]byte(nil), wire...)
		pos := rng.Intn(len(mutated))
		mutated[pos] ^= 1 << uint(rng.Intn(8))

		var dec link.Decoder
		frames, _ := dec.Feed(mutated)
		for _, f := range frames {
			if f.Type == orig.Type && bytes.Equal(f.Payload, orig.Payload) {
				t.Fatalf("pipeline %d: single-bit corruption at byte %d went undetected", i, pos)
			}
		}
	}
}

// TestCorruptedIRTextNeverSilentlyIdentical corrupts one byte of the IR
// *text* (after framing has been stripped): the parser must either reject
// it or produce a program that is observably different — never silently
// accept a mutant as the original. This is the parser-strictness half of
// the mutation test.
func TestCorruptedIRTextNeverSilentlyIdentical(t *testing.T) {
	cat := core.DefaultCatalog()
	rng := rand.New(rand.NewSource(20260807))
	for i := 0; i < 200; i++ {
		p := testutil.RandomPipeline(rng)
		plan, err := p.Validate(cat)
		if err != nil {
			t.Fatalf("pipeline %d invalid: %v", i, err)
		}
		text := ir.CompileToText(plan)
		buf := []byte(text)
		pos := rng.Intn(len(buf))
		old := buf[pos]
		repl := byte(33 + rng.Intn(94)) // printable, avoids NUL weirdness
		for repl == old {
			repl = byte(33 + rng.Intn(94))
		}
		buf[pos] = repl

		mutant, err := ir.ParseAndBind(string(buf), cat)
		if err != nil {
			continue // rejected: fine
		}
		if ir.CompileToText(mutant) == text {
			t.Fatalf("pipeline %d: mutating byte %d (%q -> %q) was silently absorbed:\n%s",
				i, pos, old, repl, text)
		}
	}
}

// TestLossyARQEqualsLosslessRun is the end-to-end equivalence property:
// a random pipeline pushed through a lossy-but-ARQ testbed must deliver
// exactly the same wake events, sample for sample, as the same pipeline
// over a perfect wire.
func TestLossyARQEqualsLosslessRun(t *testing.T) {
	cat := core.DefaultCatalog()
	rng := rand.New(rand.NewSource(20260808))
	const samples = 300

	for i := 0; i < 20; i++ {
		p := testutil.RandomPipeline(rng)
		plan, err := p.Validate(cat)
		if err != nil {
			t.Fatalf("pipeline %d invalid: %v", i, err)
		}
		ch := plan.Channels[0]
		stream := make([]float64, samples)
		for j := range stream {
			stream[j] = rng.NormFloat64() * 10
		}

		run := func(fault *link.FaultConfig, arq *link.ARQConfig) []Event {
			tb, err := NewTestbed(TestbedConfig{BufSamples: 32, Fault: fault, ARQ: arq})
			if err != nil {
				t.Fatal(err)
			}
			var events []Event
			if _, _, err := tb.Push(p, ListenerFunc(func(e Event) {
				events = append(events, e)
			})); err != nil {
				// Some random pipelines exceed every device; skip those
				// uniformly (both runs would fail identically).
				return nil
			}
			if err := tb.FeedSlice(ch, stream); err != nil {
				t.Fatal(err)
			}
			if err := tb.Pump(); err != nil {
				t.Fatal(err)
			}
			return events
		}

		clean := run(nil, nil)
		lossy := run(&link.FaultConfig{
			Seed: int64(1000 + i), DropProb: 0.04, BitFlipProb: 0.0004,
			TruncateProb: 0.01, DelayProb: 0.02, DelayTicks: 2,
		}, &link.ARQConfig{})

		if len(clean) != len(lossy) {
			t.Fatalf("pipeline %d: %d clean events vs %d lossy events", i, len(clean), len(lossy))
		}
		for j := range clean {
			c, l := clean[j], lossy[j]
			if c.CondID != l.CondID || c.SampleIndex != l.SampleIndex {
				t.Fatalf("pipeline %d event %d: identity differs: %+v vs %+v", i, j, c, l)
			}
			if math.IsNaN(c.Value) != math.IsNaN(l.Value) ||
				(!math.IsNaN(c.Value) && c.Value != l.Value) {
				t.Fatalf("pipeline %d event %d: value differs: %v vs %v", i, j, c.Value, l.Value)
			}
			if len(c.Data) != len(l.Data) {
				t.Fatalf("pipeline %d event %d: data channels differ", i, j)
			}
			for dch, cs := range c.Data {
				ls := l.Data[dch]
				if len(cs) != len(ls) {
					t.Fatalf("pipeline %d event %d: %s buffer length differs", i, j, dch)
				}
				for k := range cs {
					if cs[k] != ls[k] && !(math.IsNaN(cs[k]) && math.IsNaN(ls[k])) {
						t.Fatalf("pipeline %d event %d: %s[%d] differs: %v vs %v",
							i, j, dch, k, cs[k], ls[k])
					}
				}
			}
		}
	}
}
