package manager

import (
	"testing"

	"sidewinder/internal/core"
	"sidewinder/internal/link"
	"sidewinder/internal/resilience"
)

// run services both sides n times without waiting for quiescence — the
// clock a supervised deployment actually lives on, where the hub may be
// dead for many consecutive passes.
func run(t *testing.T, tb *Testbed, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := tb.Hub.Service(); err != nil {
			t.Fatalf("hub service: %v", err)
		}
		if err := tb.Manager.Service(); err != nil {
			t.Fatalf("manager service: %v", err)
		}
	}
}

func supervisedTestbed(t *testing.T, crashes []resilience.ScheduledCrash) *Testbed {
	t.Helper()
	tb, err := NewTestbed(TestbedConfig{
		BufSamples:    32,
		ARQ:           &link.ARQConfig{},
		CrashSchedule: crashes,
		Supervisor: &resilience.SupervisorConfig{
			PingIntervalTicks: 4, TimeoutTicks: 4, MissBudget: 2,
			ProbeBackoffTicks: 4, MaxProbeBackoffTicks: 16,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// feedMotion drives the significant-motion condition over the (recovered)
// hub and returns only after the link quiesced.
func feedMotion(t *testing.T, tb *Testbed, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		for _, ch := range []core.SensorChannel{core.AccelX, core.AccelY, core.AccelZ} {
			if err := tb.Feed(ch, 18); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tb.Pump(); err != nil {
		t.Fatal(err)
	}
}

// TestSupervisedResetRecovery is the tentpole scenario end to end: the
// hub hard-resets (conditions wiped, link state gone, new boot epoch),
// the supervisor notices via missed heartbeats, probes until the hub
// answers, re-provisions the condition set, and wake events flow again —
// all without the application doing anything.
func TestSupervisedResetRecovery(t *testing.T) {
	tb := supervisedTestbed(t, []resilience.ScheduledCrash{
		{AtTick: 100, Kind: resilience.Reset, DownTicks: 60},
	})
	var events []Event
	id, device, err := tb.Push(significantMotion(), ListenerFunc(func(e Event) {
		events = append(events, e)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if device != "MSP430" {
		t.Fatalf("placed on %s, want MSP430", device)
	}

	// Service through the crash, the outage, and the recovery.
	run(t, tb, 400)

	sup := tb.Manager.Supervisor()
	if sup.State() != resilience.Up {
		t.Fatalf("supervisor state = %v, want up", sup.State())
	}
	st := sup.Stats()
	if st.Detections == 0 {
		t.Fatalf("reset went undetected: %+v", st)
	}
	if st.Reprovisions == 0 {
		t.Fatalf("no completed re-provisioning: %+v", st)
	}
	if tb.Hub.Epoch() != 2 {
		t.Fatalf("hub epoch = %d, want 2 after one reset", tb.Hub.Epoch())
	}
	if tb.Hub.Loaded() != 1 {
		t.Fatalf("hub has %d conditions after recovery, want 1", tb.Hub.Loaded())
	}
	rp := tb.Manager.ReprovisionStats()
	if rp.Passes == 0 || rp.Frames == 0 || rp.Bytes == 0 {
		t.Fatalf("re-provisioning cost not accounted: %+v", rp)
	}
	if _, ready, err := tb.Manager.Status(id); err != nil || !ready {
		t.Fatalf("condition not ready after recovery: ready=%v err=%v", ready, err)
	}

	// The re-provisioned condition must actually fire.
	feedMotion(t, tb, 40)
	if len(events) == 0 {
		t.Fatal("no wake delivered after recovery")
	}
	for _, ev := range events {
		if ev.CondID != id {
			t.Fatalf("wake for condition %d, want %d", ev.CondID, id)
		}
	}
}

// TestSupervisedHangRecovery: a hang keeps the hub's state, so recovery
// needs no reload — but the supervisor cannot know that from the outside,
// re-pushes anyway, and the hub's idempotent duplicate handling re-acks
// without double-loading.
func TestSupervisedHangRecovery(t *testing.T) {
	tb := supervisedTestbed(t, []resilience.ScheduledCrash{
		{AtTick: 100, Kind: resilience.Hang, DownTicks: 60},
	})
	var events []Event
	id, _, err := tb.Push(significantMotion(), ListenerFunc(func(e Event) {
		events = append(events, e)
	}))
	if err != nil {
		t.Fatal(err)
	}

	run(t, tb, 400)

	sup := tb.Manager.Supervisor()
	if sup.State() != resilience.Up {
		t.Fatalf("supervisor state = %v, want up", sup.State())
	}
	if sup.Stats().Detections == 0 {
		t.Fatal("hang went undetected")
	}
	if tb.Hub.Epoch() != 1 {
		t.Fatalf("hub epoch = %d; a hang must not reboot", tb.Hub.Epoch())
	}
	if tb.Hub.Loaded() != 1 {
		t.Fatalf("hub has %d conditions, want 1 (no double-load on re-push)", tb.Hub.Loaded())
	}
	feedMotion(t, tb, 40)
	if len(events) == 0 {
		t.Fatal("no wake delivered after hang recovery")
	}
	_ = id
}

// TestSupervisedEpochCatchesFastReboot: an outage shorter than the miss
// budget never trips the silence detector, but the next heartbeat's boot
// epoch exposes the reboot and still triggers re-provisioning. Without
// the epoch, this is the silent wake-event killer: a hub that answers
// every ping with an empty condition table.
func TestSupervisedEpochCatchesFastReboot(t *testing.T) {
	tb := supervisedTestbed(t, []resilience.ScheduledCrash{
		{AtTick: 100, Kind: resilience.Brownout, DownTicks: 2},
	})
	if _, _, err := tb.Push(significantMotion(), ListenerFunc(func(Event) {})); err != nil {
		t.Fatal(err)
	}

	run(t, tb, 400)

	sup := tb.Manager.Supervisor()
	if sup.State() != resilience.Up {
		t.Fatalf("supervisor state = %v, want up", sup.State())
	}
	st := sup.Stats()
	if st.EpochChanges+st.Detections == 0 {
		t.Fatalf("fast reboot went undetected: %+v", st)
	}
	if tb.Hub.Epoch() != 2 {
		t.Fatalf("hub epoch = %d, want 2", tb.Hub.Epoch())
	}
	if tb.Hub.Loaded() != 1 {
		t.Fatalf("hub has %d conditions after fast reboot, want 1", tb.Hub.Loaded())
	}
}

// TestUnsupervisedResetLosesConditions documents the failure mode the
// supervisor exists for: without it, a reset silently empties the hub
// and every future wake event is gone.
func TestUnsupervisedResetLosesConditions(t *testing.T) {
	tb, err := NewTestbed(TestbedConfig{
		BufSamples: 32,
		ARQ:        &link.ARQConfig{},
		CrashSchedule: []resilience.ScheduledCrash{
			{AtTick: 100, Kind: resilience.Reset, DownTicks: 10},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	if _, _, err := tb.Push(significantMotion(), ListenerFunc(func(e Event) {
		events = append(events, e)
	})); err != nil {
		t.Fatal(err)
	}
	run(t, tb, 200)
	if tb.Hub.Loaded() != 0 {
		t.Fatalf("hub still has %d conditions after unsupervised reset", tb.Hub.Loaded())
	}
	feedMotion(t, tb, 40)
	if len(events) != 0 {
		t.Fatalf("wakes delivered from an empty hub: %d", len(events))
	}
}
