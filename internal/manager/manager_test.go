package manager

import (
	"math"
	"strings"
	"testing"

	"sidewinder/internal/core"
	"sidewinder/internal/hub"
)

func significantMotion() *core.Pipeline {
	p := core.NewPipeline("significantMotion")
	for _, ch := range []core.SensorChannel{core.AccelX, core.AccelY, core.AccelZ} {
		p.AddBranch(core.NewBranch(ch).Add(core.MovingAverage(10)))
	}
	p.Add(core.VectorMagnitude())
	p.Add(core.MinThreshold(15))
	return p
}

func sirenPipeline() *core.Pipeline {
	p := core.NewPipeline("siren")
	p.AddBranch(core.NewBranch(core.Mic).
		Add(core.HighPass(750, 512)).
		Add(core.FFT()).
		Add(core.SpectralMag()).
		Add(core.Tonality(850, 1800, core.AudioRateHz)).
		Add(core.MinThreshold(4)))
	return p
}

func newBed(t *testing.T) *Testbed {
	t.Helper()
	tb, err := NewTestbed(TestbedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestPushEndToEnd(t *testing.T) {
	tb := newBed(t)
	var events []Event
	id, device, err := tb.Push(significantMotion(), ListenerFunc(func(e Event) {
		events = append(events, e)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if device != "MSP430" {
		t.Errorf("placed on %s, want MSP430", device)
	}
	if tb.Hub.Loaded() != 1 {
		t.Errorf("hub has %d conditions", tb.Hub.Loaded())
	}

	// Idle: gravity only.
	for i := 0; i < 60; i++ {
		tb.Feed(core.AccelX, 0)
		tb.Feed(core.AccelY, 0)
		tb.Feed(core.AccelZ, 9.81)
	}
	if len(events) != 0 {
		t.Fatalf("idle produced %d events", len(events))
	}

	// Violent motion.
	for i := 0; i < 60; i++ {
		tb.Feed(core.AccelX, 12)
		tb.Feed(core.AccelY, 12)
		tb.Feed(core.AccelZ, 12)
	}
	if len(events) == 0 {
		t.Fatal("motion produced no events")
	}
	ev := events[0]
	if ev.CondID != id {
		t.Errorf("event cond = %d, want %d", ev.CondID, id)
	}
	if ev.Value < 15 {
		t.Errorf("admitted value %g below threshold", ev.Value)
	}
	// Raw buffered data is delivered for every channel of the condition.
	for _, ch := range []core.SensorChannel{core.AccelX, core.AccelY, core.AccelZ} {
		if len(ev.Data[ch]) == 0 {
			t.Errorf("no buffered data for %s", ch)
		}
	}
	// Buffered samples are the recent raw values (float32 precision).
	latest := ev.Data[core.AccelZ]
	if got := latest[len(latest)-1]; math.Abs(got-12) > 1e-3 && math.Abs(got-9.81) > 1e-3 {
		t.Errorf("buffer tail = %g, want a raw sample", got)
	}
}

func TestDeviceUpgradeWithSiren(t *testing.T) {
	tb := newBed(t)
	nop := ListenerFunc(func(Event) {})
	if _, device, err := tb.Push(significantMotion(), nop); err != nil || device != "MSP430" {
		t.Fatalf("first push: %s, %v", device, err)
	}
	// The siren condition needs the LM4F120; the whole loaded set moves.
	_, device, err := tb.Push(sirenPipeline(), nop)
	if err != nil {
		t.Fatal(err)
	}
	if device != "LM4F120" {
		t.Errorf("siren placed on %s, want LM4F120", device)
	}
	if dev, ok := tb.Hub.Device(); !ok || dev.Name != "LM4F120" {
		t.Errorf("hub device = %v, %v", dev, ok)
	}
}

func TestRemoveDowngradesDevice(t *testing.T) {
	tb := newBed(t)
	nop := ListenerFunc(func(Event) {})
	tb.Push(significantMotion(), nop)
	sid, _, err := tb.Push(sirenPipeline(), nop)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Remove(sid); err != nil {
		t.Fatal(err)
	}
	if tb.Hub.Loaded() != 1 {
		t.Fatalf("hub has %d conditions after removal", tb.Hub.Loaded())
	}
	if dev, ok := tb.Hub.Device(); !ok || dev.Name != "MSP430" {
		t.Errorf("hub should downgrade to MSP430, got %v %v", dev, ok)
	}
}

func TestPushInvalidPipelineFailsLocally(t *testing.T) {
	tb := newBed(t)
	bad := core.NewPipeline("bad")
	bad.AddBranch(core.NewBranch(core.AccelX).Add(core.Stage{Kind: "nonsense"}))
	if _, err := tb.Manager.Push(bad, ListenerFunc(func(Event) {})); err == nil {
		t.Fatal("invalid pipeline must fail before reaching the hub")
	}
	if tb.Hub.Loaded() != 0 {
		t.Error("hub should have nothing loaded")
	}
}

func TestPushNeedsListener(t *testing.T) {
	tb := newBed(t)
	if _, err := tb.Manager.Push(significantMotion(), nil); err == nil {
		t.Fatal("nil listener must fail")
	}
}

func TestHubRejectsInfeasibleSet(t *testing.T) {
	// A hub with only the MSP430 cannot place the siren condition.
	tb, err := NewTestbed(TestbedConfig{Devices: []hub.Device{hub.MSP430()}})
	if err != nil {
		t.Fatal(err)
	}
	id, err := tb.Manager.Push(sirenPipeline(), ListenerFunc(func(Event) {}))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Hub.Service(); err != nil {
		t.Fatal(err)
	}
	if err := tb.Manager.Service(); err != nil {
		t.Fatal(err)
	}
	_, ready, err := tb.Manager.Status(id)
	if !ready {
		t.Fatal("push not settled")
	}
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("expected hub rejection, got %v", err)
	}
	if tb.Hub.Loaded() != 0 {
		t.Error("rejected condition must not stay loaded")
	}
}

func TestRemoveUnknownCondition(t *testing.T) {
	tb := newBed(t)
	if err := tb.Manager.Remove(42); err == nil {
		t.Fatal("removing unknown condition should fail")
	}
}

func TestStatusUnknown(t *testing.T) {
	tb := newBed(t)
	if _, _, err := tb.Manager.Status(9); err == nil {
		t.Fatal("unknown status should fail")
	}
}

func TestConcurrentConditionsBothFire(t *testing.T) {
	tb := newBed(t)
	var aFires, bFires int
	// Condition A: any strong x movement.
	pa := core.NewPipeline("a")
	pa.AddBranch(core.NewBranch(core.AccelX).Add(core.MovingAverage(2)).Add(core.MinThreshold(5)))
	// Condition B: strong negative y.
	pb := core.NewPipeline("b")
	pb.AddBranch(core.NewBranch(core.AccelY).Add(core.MovingAverage(2)).Add(core.MaxThreshold(-5)))
	if _, _, err := tb.Push(pa, ListenerFunc(func(Event) { aFires++ })); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tb.Push(pb, ListenerFunc(func(Event) { bFires++ })); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		tb.Feed(core.AccelX, 8)
		tb.Feed(core.AccelY, 0)
	}
	if aFires == 0 || bFires != 0 {
		t.Fatalf("after x motion: a=%d b=%d", aFires, bFires)
	}
	for i := 0; i < 10; i++ {
		tb.Feed(core.AccelX, 0)
		tb.Feed(core.AccelY, -8)
	}
	if bFires == 0 {
		t.Fatalf("after y dip: b=%d", bFires)
	}
}

func TestHubWorkMeter(t *testing.T) {
	tb := newBed(t)
	tb.Push(significantMotion(), ListenerFunc(func(Event) {}))
	for i := 0; i < 20; i++ {
		tb.Feed(core.AccelX, 1)
	}
	w := tb.Hub.Work()
	if w.FloatOps <= 0 {
		t.Errorf("hub work = %+v", w)
	}
}

func TestPayloadCodecs(t *testing.T) {
	// Wake payload.
	p := encodeWake(7, 3.25, 99)
	id, v, idx, err := decodeWake(p)
	if err != nil || id != 7 || v != 3.25 || idx != 99 {
		t.Errorf("wake round trip: %d %g %d %v", id, v, idx, err)
	}
	if _, _, _, err := decodeWake(p[:5]); err == nil {
		t.Error("short wake payload should fail")
	}
	// Data payload.
	d := encodeData(3, core.Mic, []float64{1.5, -2.5})
	id, ch, samples, err := decodeData(d)
	if err != nil || id != 3 || ch != core.Mic || len(samples) != 2 || samples[1] != -2.5 {
		t.Errorf("data round trip: %d %s %v %v", id, ch, samples, err)
	}
	if _, _, _, err := decodeData(d[:4]); err == nil {
		t.Error("short data payload should fail")
	}
	if _, _, _, err := decodeData(d[:len(d)-1]); err == nil {
		t.Error("truncated samples should fail")
	}
	// Remove payload.
	if _, err := decodeRemove([]byte{1}); err == nil {
		t.Error("short remove should fail")
	}
	// Config push.
	if _, _, err := decodeConfigPush([]byte{0}); err == nil {
		t.Error("short config push should fail")
	}
}

func TestHubSharesCommonPrefixes(t *testing.T) {
	// Two conditions windowing MIC identically: the hub must share the
	// window stage (paper §7) and still dispatch both listeners.
	tb := newBed(t)
	makeCond := func(op string, min float64) *core.Pipeline {
		p := core.NewPipeline(op)
		p.AddBranch(core.NewBranch(core.Mic).
			Add(core.Window(4, 0, "rectangular")).
			Add(core.Stat(op)).
			Add(core.MinThreshold(min)))
		return p
	}
	var meanFires, rangeFires int
	if _, _, err := tb.Push(makeCond("mean", 1), ListenerFunc(func(Event) { meanFires++ })); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tb.Push(makeCond("range", 2), ListenerFunc(func(Event) { rangeFires++ })); err != nil {
		t.Fatal(err)
	}
	if got := tb.Hub.SharedNodes(); got != 1 {
		t.Errorf("SharedNodes = %d, want 1 (the common window)", got)
	}
	// Window [3,3,3,3]: mean 3 (fires), range 0 (silent).
	for i := 0; i < 4; i++ {
		tb.Feed(core.Mic, 3)
	}
	if meanFires != 1 || rangeFires != 0 {
		t.Fatalf("after flat window: mean=%d range=%d", meanFires, rangeFires)
	}
	// Window [0,4,1,3]: mean 2 (fires), range 4 (fires).
	for _, v := range []float64{0, 4, 1, 3} {
		tb.Feed(core.Mic, v)
	}
	if meanFires != 2 || rangeFires != 1 {
		t.Fatalf("after varied window: mean=%d range=%d", meanFires, rangeFires)
	}
}

func TestMergedPlacementTighterThanSum(t *testing.T) {
	// Ten identical audio conditions would exceed the MSP430 as a sum but
	// share into a single pipeline's demand.
	tb, err := NewTestbed(TestbedConfig{Devices: []hub.Device{hub.MSP430()}})
	if err != nil {
		t.Fatal(err)
	}
	cond := func() *core.Pipeline {
		p := core.NewPipeline("heavy")
		p.AddBranch(core.NewBranch(core.Mic).
			Add(core.Window(1024, 0, "rectangular")).
			Add(core.Stat("variance")).
			Add(core.MinThreshold(0.01)))
		return p
	}
	nop := ListenerFunc(func(Event) {})
	for i := 0; i < 10; i++ {
		if _, _, err := tb.Push(cond(), nop); err != nil {
			t.Fatalf("push %d rejected despite full sharing: %v", i, err)
		}
	}
	if tb.Hub.Loaded() != 10 {
		t.Errorf("Loaded = %d", tb.Hub.Loaded())
	}
	if shared := tb.Hub.SharedNodes(); shared != 27 {
		t.Errorf("SharedNodes = %d, want 27 (9 duplicated three-node plans)", shared)
	}
}

func TestRejectedPushRestoresPreviousSet(t *testing.T) {
	tb, err := NewTestbed(TestbedConfig{Devices: []hub.Device{hub.MSP430()}})
	if err != nil {
		t.Fatal(err)
	}
	fires := 0
	if _, _, err := tb.Push(significantMotion(), ListenerFunc(func(Event) { fires++ })); err != nil {
		t.Fatal(err)
	}
	// The siren FFT condition cannot fit an MSP430-only hub.
	id, err := tb.Manager.Push(sirenPipeline(), ListenerFunc(func(Event) {}))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Hub.Service(); err != nil {
		t.Fatal(err)
	}
	if err := tb.Manager.Service(); err != nil {
		t.Fatal(err)
	}
	if _, ready, serr := tb.Manager.Status(id); !ready || serr == nil {
		t.Fatalf("siren push should be rejected: ready=%v err=%v", ready, serr)
	}
	// The original condition still runs.
	for i := 0; i < 60; i++ {
		tb.Feed(core.AccelX, 12)
		tb.Feed(core.AccelY, 12)
		tb.Feed(core.AccelZ, 12)
	}
	if fires == 0 {
		t.Fatal("pre-existing condition stopped working after a rejected push")
	}
}
