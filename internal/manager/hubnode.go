package manager

import (
	"fmt"
	"sort"

	"sidewinder/internal/core"
	"sidewinder/internal/hub"
	"sidewinder/internal/interp"
	"sidewinder/internal/ir"
	"sidewinder/internal/link"
	"sidewinder/internal/resilience"
	"sidewinder/internal/telemetry"
)

// condState is one loaded wake-up condition on the hub. plan is the
// developer's bound plan; the tuner's factor adjusts its final threshold
// (paper §7). pushText is the IR exactly as pushed, so a retransmitted
// duplicate push can be recognized and re-acked idempotently.
type condState struct {
	id       uint16
	plan     *core.Plan
	pushText string
	tuner    *tuner
}

// HubNode is the hub-side runtime (paper §3.5): it receives IR programs
// over the link, binds them against its own copy of the platform catalog,
// selects a device capable of running the loaded set, interprets
// conditions over incoming sensor samples, and reports wake events with a
// buffer of recent raw data.
type HubNode struct {
	cat     *core.Catalog
	devices []hub.Device
	ep      link.Port

	conds  map[uint16]*condState
	device hub.Device
	placed bool

	// merged executes all loaded conditions with common-prefix sharing
	// (paper §7); mergedIDs maps its plan indices back to condition IDs.
	merged    *interp.Merged
	mergedIDs []uint16

	// Raw-sample ring buffers per channel feed the post-wake-up data
	// delivery (paper §3.8: "Our current implementation passes a buffer
	// of raw sensor data to the application").
	rings   map[core.SensorChannel]*ring
	counts  map[core.SensorChannel]int64
	bufSize int

	// wakesSent counts wake frames handed to the link; dropped counts
	// inbound frames discarded as undecodable or of an unknown type;
	// dead counts outbound frames the link abandoned after its bounded
	// retransmissions.
	wakesSent int
	dropped   int
	dead      int

	// crash is the optional fault injector (nil = immortal hub). epoch is
	// the boot counter echoed in heartbeat pongs; a state-losing crash
	// bumps it, so the manager's supervisor can tell a rebooted hub from
	// one that merely went quiet. samplesLost counts sensor samples that
	// arrived while the hub was down.
	crash       *resilience.CrashInjector
	epoch       uint32
	samplesLost int

	// Telemetry handles, nil (no-op) until SetTelemetry attaches them.
	// profile survives rebuild(): every new merged machine re-attaches it,
	// so per-stage attribution spans condition loads and removals.
	profile    *telemetry.InterpProfile
	cWakesSent *telemetry.Counter
	cDropped   *telemetry.Counter
	cDead      *telemetry.Counter
	trace      *telemetry.Stream
}

// SetTelemetry attaches hub-side telemetry: counters (hub.wake_frames_sent,
// hub.rx_dropped_frames, hub.dead_frames), a per-stage interpreter profile
// that survives condition-set rebuilds, and a trace stream for wake.sent /
// config.push instants. Any argument may be nil.
func (h *HubNode) SetTelemetry(reg *telemetry.Registry, profile *telemetry.InterpProfile, trace *telemetry.Stream) {
	h.cWakesSent = reg.Counter("hub.wake_frames_sent")
	h.cDropped = reg.Counter("hub.rx_dropped_frames")
	h.cDead = reg.Counter("hub.dead_frames")
	h.profile = profile
	h.trace = trace
	if h.merged != nil {
		h.merged.SetProfile(profile)
	}
}

// dropFrame accounts one discarded inbound frame.
func (h *HubNode) dropFrame() {
	h.dropped++
	h.cDropped.Inc()
}

// ring is a fixed-capacity sample buffer.
type ring struct {
	data []float64
	next int
	fill int
}

func newRing(capacity int) *ring { return &ring{data: make([]float64, capacity)} }

func (r *ring) push(v float64) {
	r.data[r.next] = v
	r.next = (r.next + 1) % len(r.data)
	if r.fill < len(r.data) {
		r.fill++
	}
}

// snapshot returns the buffered samples oldest-first.
func (r *ring) snapshot() []float64 {
	out := make([]float64, r.fill)
	start := (r.next - r.fill + len(r.data)) % len(r.data)
	for i := 0; i < r.fill; i++ {
		out[i] = r.data[(start+i)%len(r.data)]
	}
	return out
}

// NewHubNode builds a hub runtime on one end of the link — a raw
// *link.Endpoint or a *link.ARQ for reliable delivery over a lossy wire.
// bufSamples is the per-channel raw-data ring capacity delivered on
// wake-up.
func NewHubNode(ep link.Port, cat *core.Catalog, devices []hub.Device, bufSamples int) (*HubNode, error) {
	if ep == nil {
		return nil, fmt.Errorf("manager: hub node needs a link endpoint")
	}
	if cat == nil {
		cat = core.DefaultCatalog()
	}
	if len(devices) == 0 {
		devices = hub.Devices()
	}
	if bufSamples <= 0 {
		bufSamples = 256
	}
	return &HubNode{
		cat:     cat,
		devices: devices,
		ep:      ep,
		conds:   make(map[uint16]*condState),
		rings:   make(map[core.SensorChannel]*ring),
		counts:  make(map[core.SensorChannel]int64),
		bufSize: bufSamples,
		epoch:   1,
	}, nil
}

// SetCrash installs a crash injector (nil clears it). Each Service pass
// ticks the injector; on a state-losing onset the hub drops every loaded
// condition, its sample buffers and its link state, and comes back with
// the next boot epoch — exactly what a real microcontroller reset does.
func (h *HubNode) SetCrash(c *resilience.CrashInjector) { h.crash = c }

// Epoch returns the hub's current boot epoch (1 at first boot).
func (h *HubNode) Epoch() uint32 { return h.epoch }

// Crashed reports whether the hub is currently down.
func (h *HubNode) Crashed() bool { return h.crash.Down() }

// SamplesLost returns how many sensor samples arrived while the hub was
// crashed (the detection-window exposure fallback sensing cannot cover).
func (h *HubNode) SamplesLost() int { return h.samplesLost }

// reboot wipes the pipeline the way a CPU reset does: pushed conditions,
// merged machine, sample rings and counts all vanish, the boot epoch
// advances, and the link layer (if it supports Reboot) loses its buffers
// and sequence state.
func (h *HubNode) reboot() {
	h.conds = make(map[uint16]*condState)
	h.merged = nil
	h.mergedIDs = nil
	h.rings = make(map[core.SensorChannel]*ring)
	h.counts = make(map[core.SensorChannel]int64)
	h.placed = false
	h.device = hub.Device{}
	h.epoch++
	if rb, ok := h.ep.(interface{ Reboot() }); ok {
		rb.Reboot()
	}
	h.trace.Instant1("hub.reboot", "hub", "epoch", float64(h.epoch))
}

// Device returns the currently selected microcontroller (zero Device and
// false before any condition is placed).
func (h *HubNode) Device() (hub.Device, bool) { return h.device, h.placed }

// Loaded returns the number of active conditions.
func (h *HubNode) Loaded() int { return len(h.conds) }

// Service ticks the link (driving ARQ retransmissions) and drains inbound
// frames: config pushes, removals, pings. A frame whose payload fails to
// decode is counted (DroppedFrames) and skipped — line noise and peer
// bugs must not kill the hub loop. Only internal failures (a broken
// rebuild) are returned.
//
// With a crash injector installed, each pass first advances the fault
// clock. A crashed hub is a silent one: it neither ticks its link (the
// CPU is stopped, so no retransmission timers run) nor acknowledges
// inbound traffic — whatever arrives is discarded unacked, exactly as a
// dead UART would overrun.
func (h *HubNode) Service() error {
	if tr := h.crash.Tick(); tr.Onset && tr.Kind.LosesState() {
		h.reboot()
	}
	if h.crash.Down() {
		if bh, ok := h.ep.(interface{ Blackhole() int }); ok {
			bh.Blackhole()
		}
		return nil
	}
	h.ep.Tick()
	if td, ok := h.ep.(interface{ TakeDead() []link.Frame }); ok {
		// A dead wake/data frame cannot be un-fired; count it so tests
		// and experiments can see undelivered events.
		if n := len(td.TakeDead()); n > 0 {
			h.dead += n
			h.cDead.Add(int64(n))
		}
	}
	for {
		f, ok := h.ep.Receive()
		if !ok {
			return nil
		}
		switch f.Type {
		case link.MsgConfigPush:
			if err := h.handlePush(f.Payload); err != nil {
				return err
			}
		case link.MsgRemove:
			id, err := decodeRemove(f.Payload)
			if err != nil {
				h.dropFrame()
				continue
			}
			delete(h.conds, id)
			if err := h.rebuild(); err != nil {
				return err
			}
		case link.MsgFeedback:
			id, falsePositive, err := decodeFeedback(f.Payload)
			if err != nil {
				h.dropFrame()
				continue
			}
			if c, ok := h.conds[id]; ok {
				if c.tuner.feedback(falsePositive) {
					if err := h.rebuild(); err != nil {
						return err
					}
				}
			}
		case link.MsgPing:
			// A heartbeat ping gets its sequence echoed along with this
			// hub's boot epoch; a legacy empty ping gets the legacy empty
			// pong. Pongs ride outside the ARQ — liveness probes must not
			// queue behind a retransmission backlog.
			var pong link.Frame
			if hb, err := resilience.DecodeHeartbeat(f.Payload); err == nil {
				pong = link.Frame{Type: link.MsgPong, Payload: resilience.Heartbeat{Seq: hb.Seq, Epoch: h.epoch}.Encode()}
			} else if len(f.Payload) == 0 {
				pong = link.Frame{Type: link.MsgPong}
			} else {
				h.dropFrame()
				continue
			}
			if err := h.ep.SendLossy(pong); err != nil {
				return err
			}
		default:
			h.dropFrame()
		}
	}
}

// handlePush parses, binds and places one pushed condition, replying with
// an ack (device name) or an error. Placement accounts for prefix sharing:
// the whole loaded set is merged (paper §7) and the merged demand placed.
func (h *HubNode) handlePush(payload []byte) error {
	id, irText, err := decodeConfigPush(payload)
	if err != nil {
		// Too mangled even to address a MsgConfigError reply; the
		// manager recovers by timeout + Repush.
		h.dropFrame()
		return nil
	}
	fail := func(cause error) error {
		return h.ep.Send(link.Frame{Type: link.MsgConfigError, Payload: encodeIDText(id, cause.Error())})
	}
	if prev, dup := h.conds[id]; dup {
		if prev.pushText == irText {
			// Retransmitted push whose ack was lost: re-ack, don't
			// double-load.
			return h.ep.Send(link.Frame{Type: link.MsgConfigAck, Payload: encodeIDText(id, h.device.Name)})
		}
		// In-place update: the phone re-parameterized a resident condition
		// (adaptive sensing). Bind the new program and swap it in, keeping
		// the condition's raw-data rings and tuner state. A failed rebuild
		// restores the previous program — an update can never take down a
		// running set.
		plan, err := ir.ParseAndBind(irText, h.cat)
		if err != nil {
			return fail(err)
		}
		oldPlan, oldText := prev.plan, prev.pushText
		prev.plan, prev.pushText = plan, irText
		if err := h.rebuild(); err != nil {
			prev.plan, prev.pushText = oldPlan, oldText
			if rerr := h.rebuild(); rerr != nil {
				return fmt.Errorf("manager: hub cannot restore previous condition set: %w", rerr)
			}
			return fail(err)
		}
		for _, ch := range plan.Channels {
			if h.rings[ch] == nil {
				h.rings[ch] = newRing(h.bufSize)
			}
		}
		h.trace.Instant1("config.update", "hub", "cond", float64(id))
		return h.ep.Send(link.Frame{Type: link.MsgConfigAck, Payload: encodeIDText(id, h.device.Name)})
	}
	plan, err := ir.ParseAndBind(irText, h.cat)
	if err != nil {
		return fail(err)
	}
	h.conds[id] = &condState{id: id, plan: plan, pushText: irText, tuner: newTuner()}
	if err := h.rebuild(); err != nil {
		delete(h.conds, id)
		// Restore the previous merged set; the old set was feasible.
		if rerr := h.rebuild(); rerr != nil {
			return fmt.Errorf("manager: hub cannot restore previous condition set: %w", rerr)
		}
		return fail(err)
	}
	for _, ch := range plan.Channels {
		if h.rings[ch] == nil {
			h.rings[ch] = newRing(h.bufSize)
		}
	}
	return h.ep.Send(link.Frame{Type: link.MsgConfigAck, Payload: encodeIDText(id, h.device.Name)})
}

// rebuild reconstructs the merged machine and re-places the set on the
// cheapest feasible device. With no conditions loaded it clears the state.
func (h *HubNode) rebuild() error {
	if len(h.conds) == 0 {
		h.merged = nil
		h.mergedIDs = nil
		h.placed = false
		return nil
	}
	ids := make([]uint16, 0, len(h.conds))
	for id := range h.conds {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	plans := make([]*core.Plan, len(ids))
	for i, id := range ids {
		c := h.conds[id]
		plans[i] = adjustedPlan(c.plan, c.tuner.factor)
	}
	fOps, iOps, mem := interp.MergedDemand(plans...)
	dev, err := hub.SelectDeviceForDemand(h.devices, fOps, iOps, mem)
	if err != nil {
		return err
	}
	// The resident set executes as one DAG-compiled shared plan: subgraphs
	// identical across conditions (and the folds/fusions the compile pass
	// applies) run once, matching the demand the device was selected on.
	sp, err := ir.CompilePlans(h.cat, ir.CompileOptions{}, plans...)
	if err != nil {
		return err
	}
	merged, err := interp.NewShared(interp.Float64, sp)
	if err != nil {
		return err
	}
	merged.SetProfile(h.profile)
	h.merged = merged
	h.mergedIDs = ids
	h.device = dev
	h.placed = true
	return nil
}

// Feed delivers one raw sensor sample to the merged condition set.
// Satisfied conditions emit a data buffer followed by a wake frame.
func (h *HubNode) Feed(ch core.SensorChannel, v float64) error {
	if h.crash.Down() {
		// A crashed hub samples nothing; the event, if any, is gone
		// unless phone-side fallback sensing covers the window.
		h.samplesLost++
		return nil
	}
	if r := h.rings[ch]; r != nil {
		r.push(v)
	}
	h.counts[ch]++
	if h.merged == nil {
		return nil
	}
	for _, wake := range h.merged.PushSample(ch, v) {
		id := h.mergedIDs[wake.Plan]
		c := h.conds[id]
		// Raw data first so the manager has it when the wake callback
		// fires.
		for _, pc := range c.plan.Channels {
			if r := h.rings[pc]; r != nil {
				payload := encodeData(c.id, pc, r.snapshot())
				if err := h.ep.Send(link.Frame{Type: link.MsgData, Payload: payload}); err != nil {
					return err
				}
			}
		}
		payload := encodeWake(c.id, wake.Value, h.counts[ch]-1)
		if err := h.ep.Send(link.Frame{Type: link.MsgWake, Payload: payload}); err != nil {
			return err
		}
		h.wakesSent++
		h.cWakesSent.Inc()
		h.trace.Instant2("wake.sent", "hub", "cond", float64(c.id), "value", wake.Value)
	}
	return nil
}

// FeedBlock delivers a whole block of raw samples from one channel on the
// interpreter's block fast path. Observationally identical to calling Feed
// once per sample: the raw-data ring is advanced incrementally up to each
// wake's offset before its data/wake frames are emitted, so snapshots and
// sample indices match the per-sample path exactly. Callers mixing several
// channels must keep using Feed — block-feeding channels sequentially
// would let one channel's ring run ahead of the others' inside a wake's
// data snapshot.
func (h *HubNode) FeedBlock(ch core.SensorChannel, samples []float64) error {
	if h.crash.Down() {
		// Crash state only changes inside Service, so it is constant
		// across the block: a crashed hub loses the whole block.
		h.samplesLost += len(samples)
		return nil
	}
	r := h.rings[ch]
	fed := 0
	feedTo := func(end int) {
		if r != nil {
			for _, v := range samples[fed:end] {
				r.push(v)
			}
		}
		h.counts[ch] += int64(end - fed)
		fed = end
	}
	if h.merged == nil {
		feedTo(len(samples))
		return nil
	}
	for _, wake := range h.merged.PushBlock(ch, samples) {
		feedTo(wake.Off + 1)
		id := h.mergedIDs[wake.Plan]
		c := h.conds[id]
		for _, pc := range c.plan.Channels {
			if pr := h.rings[pc]; pr != nil {
				payload := encodeData(c.id, pc, pr.snapshot())
				if err := h.ep.Send(link.Frame{Type: link.MsgData, Payload: payload}); err != nil {
					return err
				}
			}
		}
		payload := encodeWake(c.id, wake.Value, h.counts[ch]-1)
		if err := h.ep.Send(link.Frame{Type: link.MsgWake, Payload: payload}); err != nil {
			return err
		}
		h.wakesSent++
		h.cWakesSent.Inc()
		h.trace.Instant2("wake.sent", "hub", "cond", float64(c.id), "value", wake.Value)
	}
	feedTo(len(samples))
	return nil
}

// WakesSent returns how many wake frames the hub has handed to the link.
// Comparing it against listener callbacks measures delivery over a lossy
// wire.
func (h *HubNode) WakesSent() int { return h.wakesSent }

// DroppedFrames returns how many inbound frames this hub discarded as
// undecodable or of an unknown type.
func (h *HubNode) DroppedFrames() int { return h.dropped }

// DeadFrames returns how many outbound frames the link abandoned after
// exhausting its retransmission budget.
func (h *HubNode) DeadFrames() int { return h.dead }

// Work returns the interpreter work of the merged condition set.
func (h *HubNode) Work() core.CostEstimate {
	if h.merged == nil {
		return core.CostEstimate{}
	}
	return h.merged.Work()
}

// TuningFactor returns a condition's adaptive strictness factor (1 means
// the developer's original thresholds) and whether the condition exists.
func (h *HubNode) TuningFactor(id uint16) (float64, bool) {
	c, ok := h.conds[id]
	if !ok {
		return 0, false
	}
	return c.tuner.factor, true
}

// SharedNodes reports how many algorithm instances prefix merging
// eliminated across the loaded set (paper §7).
func (h *HubNode) SharedNodes() int {
	if h.merged == nil {
		return 0
	}
	return h.merged.SharedNodes()
}
