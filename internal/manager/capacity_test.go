package manager

import (
	"testing"

	"sidewinder/internal/core"
	"sidewinder/internal/hub"
	"sidewinder/internal/link"
	"sidewinder/internal/resilience"
	"sidewinder/internal/sched"
)

// motionAt is significantMotion with a configurable threshold, so tests
// can register structurally distinct accelerometer conditions.
func motionAt(threshold float64) *core.Pipeline {
	p := core.NewPipeline("motion")
	for _, ch := range []core.SensorChannel{core.AccelX, core.AccelY, core.AccelZ} {
		p.AddBranch(core.NewBranch(ch).Add(core.MovingAverage(10)))
	}
	p.Add(core.VectorMagnitude())
	p.Add(core.MinThreshold(threshold))
	return p
}

// sirenAt is sirenPipeline with a configurable high-pass cutoff: distinct
// cutoffs share nothing, so each copy pays its full ~14 KB of window
// state — three of them overflow the LM4F120's RAM.
func sirenAt(cutoff float64) *core.Pipeline {
	p := core.NewPipeline("siren")
	p.AddBranch(core.NewBranch(core.Mic).
		Add(core.HighPass(cutoff, 512)).
		Add(core.FFT()).
		Add(core.SpectralMag()).
		Add(core.Tonality(850, 1800, core.AudioRateHz)).
		Add(core.MinThreshold(4)))
	return p
}

// schedBed builds a testbed whose hub ladder and admission controller
// model the same single device.
func schedBed(t *testing.T, dev hub.Device, cfg TestbedConfig) *Testbed {
	t.Helper()
	cfg.Devices = []hub.Device{dev}
	tb, err := NewTestbed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb.Manager.AttachScheduler(sched.New(dev))
	return tb
}

// TestScheduledPushDegradesInfeasible: on an MSP430-only hub the siren's
// FFT chain cannot run; with the admission controller attached the push
// degrades to phone fallback instead of bouncing off the hub's rejection.
func TestScheduledPushDegradesInfeasible(t *testing.T) {
	tb := schedBed(t, hub.MSP430(), TestbedConfig{})
	var motionEvents, sirenEvents int
	motionID, device, err := tb.Push(significantMotion(), ListenerFunc(func(Event) { motionEvents++ }))
	if err != nil {
		t.Fatal(err)
	}
	if device != "MSP430" {
		t.Errorf("motion placed on %s, want MSP430", device)
	}
	sirenID, device, err := tb.Push(sirenPipeline(), ListenerFunc(func(Event) { sirenEvents++ }))
	if err != nil {
		t.Fatalf("degraded push must not error: %v", err)
	}
	if device != sched.FallbackDeviceName {
		t.Errorf("siren placed on %s, want %s", device, sched.FallbackDeviceName)
	}
	if tb.Hub.Loaded() != 1 {
		t.Errorf("hub has %d conditions, want 1 (siren must not reach the hub)", tb.Hub.Loaded())
	}

	// Feedback on a degraded condition is accepted and dropped (no hub
	// threshold to tune); on an unknown ID it still errors.
	if err := tb.Manager.Feedback(sirenID, true); err != nil {
		t.Errorf("feedback on degraded condition: %v", err)
	}
	if err := tb.Manager.Feedback(999, true); err == nil {
		t.Error("feedback on unknown condition must error")
	}

	// The admitted condition still works end to end.
	feedMotion(t, tb, 40)
	if motionEvents == 0 {
		t.Error("admitted condition delivered no wakes")
	}
	if sirenEvents != 0 {
		t.Errorf("degraded condition delivered %d wakes through the hub", sirenEvents)
	}

	// Removing the admitted condition cannot promote the siren — it is
	// infeasible on this device at any load.
	if err := tb.Remove(motionID); err != nil {
		t.Fatal(err)
	}
	if tb.Hub.Loaded() != 0 {
		t.Errorf("hub has %d conditions after remove", tb.Hub.Loaded())
	}
	if device, _, _ := tb.Manager.Status(sirenID); device != sched.FallbackDeviceName {
		t.Errorf("siren moved to %s, want still %s", device, sched.FallbackDeviceName)
	}
}

// TestScheduledPriorityDisplacement drives demotion and promotion through
// the full stack: a higher-priority arrival displaces the lowest-priority
// condition off a full hub, and removing a resident brings it back.
func TestScheduledPriorityDisplacement(t *testing.T) {
	tb := schedBed(t, hub.LM4F120(), TestbedConfig{})
	push := func(cutoff float64, prio int) uint16 {
		t.Helper()
		id, err := tb.Manager.PushPriority(sirenAt(cutoff), prio, ListenerFunc(func(Event) {}))
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.Pump(); err != nil {
			t.Fatal(err)
		}
		return id
	}
	id1 := push(751, 1)
	id2 := push(752, 2)
	if tb.Hub.Loaded() != 2 {
		t.Fatalf("hub has %d conditions, want 2", tb.Hub.Loaded())
	}

	// Third distinct siren: ~43 KB of window state against 32 KB of RAM.
	// The new arrival outranks condition 1, which must yield its slot.
	id3 := push(753, 3)
	if tb.Hub.Loaded() != 2 {
		t.Errorf("hub has %d conditions after displacement, want 2", tb.Hub.Loaded())
	}
	if device, _, _ := tb.Manager.Status(id1); device != sched.FallbackDeviceName {
		t.Errorf("condition 1 on %s, want %s", device, sched.FallbackDeviceName)
	}
	for _, id := range []uint16{id2, id3} {
		device, ready, err := tb.Manager.Status(id)
		if err != nil || !ready || device != "LM4F120" {
			t.Errorf("condition %d: device=%s ready=%v err=%v, want LM4F120", id, device, ready, err)
		}
	}

	// Freeing capacity promotes the victim back onto the hub.
	if err := tb.Remove(id3); err != nil {
		t.Fatal(err)
	}
	if tb.Hub.Loaded() != 2 {
		t.Errorf("hub has %d conditions after promotion, want 2", tb.Hub.Loaded())
	}
	device, ready, err := tb.Manager.Status(id1)
	if err != nil || !ready || device != "LM4F120" {
		t.Errorf("promoted condition: device=%s ready=%v err=%v, want LM4F120", device, ready, err)
	}
}

// TestDegradedNotReprovisionedAfterCrash: after a hub reset, recovery
// re-pushes only hub-resident conditions. A degraded condition must stay
// on the phone — re-provisioning it would silently override the
// admission decision and overload the freshly booted hub.
func TestDegradedNotReprovisionedAfterCrash(t *testing.T) {
	tb := schedBed(t, hub.MSP430(), TestbedConfig{
		BufSamples: 32,
		ARQ:        &link.ARQConfig{},
		CrashSchedule: []resilience.ScheduledCrash{
			{AtTick: 100, Kind: resilience.Reset, DownTicks: 60},
		},
		Supervisor: &resilience.SupervisorConfig{
			PingIntervalTicks: 4, TimeoutTicks: 4, MissBudget: 2,
			ProbeBackoffTicks: 4, MaxProbeBackoffTicks: 16,
		},
	})
	var motionEvents int
	if _, _, err := tb.Push(significantMotion(), ListenerFunc(func(Event) { motionEvents++ })); err != nil {
		t.Fatal(err)
	}
	sirenID, device, err := tb.Push(sirenPipeline(), ListenerFunc(func(Event) {}))
	if err != nil {
		t.Fatal(err)
	}
	if device != sched.FallbackDeviceName {
		t.Fatalf("siren placed on %s, want %s", device, sched.FallbackDeviceName)
	}

	run(t, tb, 400)

	if tb.Manager.Supervisor().State() != resilience.Up {
		t.Fatalf("supervisor state = %v, want up", tb.Manager.Supervisor().State())
	}
	if tb.Hub.Loaded() != 1 {
		t.Errorf("hub has %d conditions after recovery, want 1 (degraded must stay off)", tb.Hub.Loaded())
	}
	if device, _, _ := tb.Manager.Status(sirenID); device != sched.FallbackDeviceName {
		t.Errorf("siren on %s after recovery, want %s", device, sched.FallbackDeviceName)
	}
	feedMotion(t, tb, 40)
	if motionEvents == 0 {
		t.Error("re-provisioned condition delivered no wakes")
	}
}
