package manager

import (
	"fmt"
	"testing"

	"sidewinder/internal/core"
	"sidewinder/internal/link"
	"sidewinder/internal/resilience"
)

// chaosProfiles are the fault regimes of the chaos matrix: each keeps
// frame loss at or below ~5%, the level at which the acceptance bar
// demands 100% eventual delivery with bounded retries.
var chaosProfiles = []struct {
	name  string
	fault link.FaultConfig
}{
	{"drop-only", link.FaultConfig{DropProb: 0.05}},
	// BitFlipProb is per wire byte: 0.05% per byte ≈ 7% of the largest
	// frames in this test (a 32-sample data buffer ≈ 150 wire bytes).
	{"corrupt-only", link.FaultConfig{BitFlipProb: 0.0005}},
	{"burst", link.FaultConfig{BurstProb: 0.05, BurstLen: 6}},
	{"combined", link.FaultConfig{
		DropProb: 0.02, BitFlipProb: 0.0002, TruncateProb: 0.01,
		BurstProb: 0.01, BurstLen: 4, DelayProb: 0.02, DelayTicks: 2,
	}},
}

// TestChaosMatrix replays the quickstart push + wake cycle (significant
// motion on the accelerometer) under every fault profile and seed,
// asserting that the ARQ layer converges: the condition loads, every
// hub-side wake reaches the listener exactly once, and no corrupted
// payload ever surfaces as an event.
func TestChaosMatrix(t *testing.T) {
	for _, prof := range chaosProfiles {
		for _, seed := range []int64{1, 2, 3} {
			t.Run(fmt.Sprintf("%s/seed%d", prof.name, seed), func(t *testing.T) {
				fault := prof.fault
				fault.Seed = seed
				tb, err := NewTestbed(TestbedConfig{
					// A small ring keeps the largest frame ~150 wire
					// bytes, so the per-byte fault rates above stay in
					// the ≤5% frame-loss regime the matrix targets.
					BufSamples: 32,
					Fault:      &fault,
					ARQ:        &link.ARQConfig{},
				})
				if err != nil {
					t.Fatal(err)
				}

				var events []Event
				seen := make(map[int64]bool)
				id, device, err := tb.Push(significantMotion(), ListenerFunc(func(e Event) {
					events = append(events, e)
					if seen[e.SampleIndex] {
						t.Errorf("duplicate wake for sample %d", e.SampleIndex)
					}
					seen[e.SampleIndex] = true
				}))
				if err != nil {
					t.Fatalf("push under %s faults: %v", prof.name, err)
				}
				if device != "MSP430" {
					t.Errorf("placed on %s, want MSP430", device)
				}

				feed := func(x, y, z float64, n int) {
					for i := 0; i < n; i++ {
						if err := tb.Feed(core.AccelX, x); err != nil {
							t.Fatal(err)
						}
						if err := tb.Feed(core.AccelY, y); err != nil {
							t.Fatal(err)
						}
						if err := tb.Feed(core.AccelZ, z); err != nil {
							t.Fatal(err)
						}
					}
				}
				feed(0, 0, 9.81, 60) // idle
				if len(events) != 0 {
					t.Fatalf("idle produced %d events", len(events))
				}
				feed(12, 12, 12, 60) // violent motion
				if err := tb.Pump(); err != nil {
					t.Fatal(err)
				}

				if tb.Hub.WakesSent() == 0 {
					t.Fatal("motion produced no hub-side wakes")
				}
				// Eventual delivery must be total: every wake the hub
				// fired reached the listener, none twice.
				if len(events) != tb.Hub.WakesSent() {
					t.Fatalf("delivered %d of %d wakes", len(events), tb.Hub.WakesSent())
				}
				for _, ev := range events {
					if ev.CondID != id {
						t.Fatalf("corrupted cond id %d delivered", ev.CondID)
					}
					if ev.Value < 15 {
						t.Fatalf("corrupted value %g delivered (below threshold)", ev.Value)
					}
					for _, ch := range []core.SensorChannel{core.AccelX, core.AccelY, core.AccelZ} {
						if len(ev.Data[ch]) == 0 {
							t.Fatalf("wake delivered without %s data buffer", ch)
						}
					}
				}

				s := tb.LinkStats()
				if s.PhoneARQ.Dead != 0 || s.HubARQ.Dead != 0 {
					t.Fatalf("frames died at ≤5%% loss: phone=%+v hub=%+v", s.PhoneARQ, s.HubARQ)
				}
				// Retries must be bounded: stop-and-wait resends each
				// frame at most MaxRetries (8) times.
				sent := s.HubARQ.DataSent + s.PhoneARQ.DataSent
				retr := s.HubARQ.Retransmits + s.PhoneARQ.Retransmits
				if retr > 8*sent {
					t.Fatalf("retransmissions unbounded: %d for %d frames", retr, sent)
				}
				if tb.Manager.DroppedFrames() != 0 || tb.Hub.DroppedFrames() != 0 {
					// ARQ only delivers CRC-valid frames, so neither
					// side should ever see an undecodable payload.
					t.Fatalf("decodable-frame invariant broken: mgr=%d hub=%d",
						tb.Manager.DroppedFrames(), tb.Hub.DroppedFrames())
				}
			})
		}
	}
}

// TestChaosRawLinkLosesWakes is the control experiment: the same drop
// profile without the ARQ layer must actually lose traffic, otherwise the
// chaos matrix proves nothing.
func TestChaosRawLinkLosesWakes(t *testing.T) {
	tb, err := NewTestbed(TestbedConfig{
		Fault: &link.FaultConfig{Seed: 1, DropProb: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	listener := ListenerFunc(func(e Event) { events = append(events, e) })
	// Push may need several attempts over a raw 30%-drop wire.
	id, err := tb.Manager.Push(significantMotion(), listener)
	if err != nil {
		t.Fatal(err)
	}
	loaded := false
	for try := 0; try < 20; try++ {
		if err := tb.Pump(); err != nil {
			t.Fatal(err)
		}
		if _, ready, serr := tb.Manager.Status(id); ready && serr == nil {
			loaded = true
			break
		}
		if err := tb.Manager.Repush(id); err != nil {
			t.Fatal(err)
		}
	}
	if !loaded {
		t.Fatal("condition never loaded over raw lossy link")
	}
	for i := 0; i < 120; i++ {
		tb.Feed(core.AccelX, 12)
		tb.Feed(core.AccelY, 12)
		tb.Feed(core.AccelZ, 12)
	}
	if err := tb.Pump(); err != nil {
		t.Fatal(err)
	}
	if tb.Hub.WakesSent() == 0 {
		t.Fatal("no wakes fired")
	}
	if len(events) >= tb.Hub.WakesSent() {
		t.Fatalf("raw link at 30%% drop lost nothing: %d of %d delivered",
			len(events), tb.Hub.WakesSent())
	}
}

// crashChaosScenarios are the hub-failure regimes of the crash chaos
// matrix, layered on top of a lossy wire: a reset arriving while the
// initial config push is still in flight, a hang landing in the middle of
// wake/ack traffic, and a storm of back-to-back reboots.
var crashChaosScenarios = []struct {
	name    string
	crashes []resilience.ScheduledCrash
}{
	{"reset-while-pushing", []resilience.ScheduledCrash{
		{AtTick: 2, Kind: resilience.Reset, DownTicks: 30},
	}},
	{"hang-mid-ack", []resilience.ScheduledCrash{
		{AtTick: 40, Kind: resilience.Hang, DownTicks: 50},
	}},
	{"reboot-storm", []resilience.ScheduledCrash{
		{AtTick: 100, Kind: resilience.Reset, DownTicks: 20},
		{AtTick: 160, Kind: resilience.Brownout, DownTicks: 30},
		{AtTick: 230, Kind: resilience.Reset, DownTicks: 15},
	}},
}

// TestCrashChaosMatrix runs every crash scenario over a moderately lossy
// wire and asserts the supervised stack converges: the supervisor ends
// Up, the condition set survives (re-provisioned as needed), post-recovery
// wakes reach the listener, and no duplicate or corrupted event ever
// surfaces. Wakes fired immediately before a reset may legitimately die
// with the hub's link buffers, so delivery completeness is asserted only
// for the post-recovery traffic.
func TestCrashChaosMatrix(t *testing.T) {
	for _, sc := range crashChaosScenarios {
		for _, seed := range []int64{1, 2, 3} {
			t.Run(fmt.Sprintf("%s/seed%d", sc.name, seed), func(t *testing.T) {
				tb, err := NewTestbed(TestbedConfig{
					BufSamples: 32,
					Fault: &link.FaultConfig{
						Seed: seed, DropProb: 0.02, BitFlipProb: 0.0002,
						TruncateProb: 0.01, DelayProb: 0.02, DelayTicks: 2,
					},
					ARQ:           &link.ARQConfig{},
					CrashSchedule: sc.crashes,
					Supervisor: &resilience.SupervisorConfig{
						PingIntervalTicks: 4, TimeoutTicks: 4, MissBudget: 2,
						ProbeBackoffTicks: 4, MaxProbeBackoffTicks: 16,
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				var events []Event
				seen := make(map[int64]bool)
				id, err := tb.Manager.Push(significantMotion(), ListenerFunc(func(e Event) {
					events = append(events, e)
					if seen[e.SampleIndex] {
						t.Errorf("duplicate wake for sample %d", e.SampleIndex)
					}
					seen[e.SampleIndex] = true
				}))
				if err != nil {
					t.Fatal(err)
				}

				// Service through every scheduled crash plus recovery
				// slack, the way a deployment lives: no waiting for
				// quiescence, the hub may be dead for many passes.
				for i := 0; i < 600; i++ {
					if err := tb.Hub.Service(); err != nil {
						t.Fatalf("hub service: %v", err)
					}
					if err := tb.Manager.Service(); err != nil {
						t.Fatalf("manager service: %v", err)
					}
				}

				sup := tb.Manager.Supervisor()
				if sup.State() != resilience.Up {
					t.Fatalf("supervisor did not converge: state %v, stats %+v",
						sup.State(), sup.Stats())
				}
				if tb.Hub.Loaded() != 1 {
					t.Fatalf("hub has %d conditions, want 1", tb.Hub.Loaded())
				}
				if _, ready, serr := tb.Manager.Status(id); serr != nil || !ready {
					t.Fatalf("condition not ready after storm: ready=%v err=%v", ready, serr)
				}

				// Post-recovery traffic must be complete: every wake the
				// hub fires from here on is delivered exactly once.
				sentBefore, deliveredBefore := tb.Hub.WakesSent(), len(events)
				for i := 0; i < 60; i++ {
					for _, ch := range []core.SensorChannel{core.AccelX, core.AccelY, core.AccelZ} {
						if err := tb.Feed(ch, 18); err != nil {
							t.Fatal(err)
						}
					}
				}
				if err := tb.Pump(); err != nil {
					t.Fatal(err)
				}
				sent := tb.Hub.WakesSent() - sentBefore
				delivered := len(events) - deliveredBefore
				if sent == 0 {
					t.Fatal("no wakes fired after recovery")
				}
				if delivered != sent {
					t.Fatalf("post-recovery delivery incomplete: %d of %d", delivered, sent)
				}
				for _, ev := range events {
					if ev.CondID != id {
						t.Fatalf("corrupted cond id %d delivered", ev.CondID)
					}
					if ev.Value < 15 {
						t.Fatalf("corrupted value %g delivered", ev.Value)
					}
				}
			})
		}
	}
}
