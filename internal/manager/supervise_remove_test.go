package manager

import (
	"testing"

	"sidewinder/internal/resilience"
)

// These tests pin down how Remove and Feedback interact with crash
// supervision: a condition removed while the hub is unreachable (Down) or
// mid-recovery (Recovering) must NOT come back when the supervisor
// re-provisions the reconnected hub.

// runUntil services both sides until the supervisor reaches the wanted
// state, failing the test if it never does within maxTicks.
func runUntil(t *testing.T, tb *Testbed, want resilience.SupervisorState, maxTicks int) {
	t.Helper()
	for i := 0; i < maxTicks; i++ {
		if tb.Manager.Supervisor().State() == want {
			return
		}
		run(t, tb, 1)
	}
	t.Fatalf("supervisor never reached %v within %d ticks (state %v)",
		want, maxTicks, tb.Manager.Supervisor().State())
}

// removalBed pushes two distinguishable motion conditions onto a
// supervised testbed that will reset at tick 100 for 60 ticks.
func removalBed(t *testing.T) (tb *Testbed, idA, idB uint16, eventsA, eventsB *int) {
	t.Helper()
	tb = supervisedTestbed(t, []resilience.ScheduledCrash{
		{AtTick: 100, Kind: resilience.Reset, DownTicks: 60},
	})
	eventsA, eventsB = new(int), new(int)
	idA, _, err := tb.Push(motionAt(15), ListenerFunc(func(Event) { *eventsA++ }))
	if err != nil {
		t.Fatal(err)
	}
	idB, _, err = tb.Push(motionAt(25), ListenerFunc(func(Event) { *eventsB++ }))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Hub.Loaded() != 2 {
		t.Fatalf("hub has %d conditions before the crash, want 2", tb.Hub.Loaded())
	}
	return tb, idA, idB, eventsA, eventsB
}

// checkRemovedStaysRemoved drives the testbed through recovery and
// asserts that only condition B survived: one condition on the hub, wakes
// for B but none for A, and A unknown to the manager.
func checkRemovedStaysRemoved(t *testing.T, tb *Testbed, idA uint16, eventsA, eventsB *int) {
	t.Helper()
	run(t, tb, 400)
	if st := tb.Manager.Supervisor().State(); st != resilience.Up {
		t.Fatalf("supervisor state = %v, want up", st)
	}
	if tb.Hub.Loaded() != 1 {
		t.Errorf("hub has %d conditions after recovery, want 1 (removed condition re-provisioned?)", tb.Hub.Loaded())
	}
	*eventsA, *eventsB = 0, 0
	feedMotion(t, tb, 40)
	if *eventsA != 0 {
		t.Errorf("removed condition delivered %d wakes after recovery", *eventsA)
	}
	if *eventsB == 0 {
		t.Error("surviving condition delivered no wakes after recovery")
	}
	if _, _, err := tb.Manager.Status(idA); err == nil {
		t.Error("removed condition still has status")
	}
}

func TestRemoveWhileDownNotReprovisioned(t *testing.T) {
	tb, idA, _, eventsA, eventsB := removalBed(t)
	runUntil(t, tb, resilience.Down, 300)
	// The hub is declared dead; the app loses interest in condition A.
	// The MsgRemove frame itself may die on the dead link — what matters
	// is that recovery must not resurrect the condition.
	if err := tb.Manager.Remove(idA); err != nil {
		t.Fatalf("remove while down: %v", err)
	}
	checkRemovedStaysRemoved(t, tb, idA, eventsA, eventsB)
}

func TestRemoveWhileRecoveringNotReprovisioned(t *testing.T) {
	tb, idA, _, eventsA, eventsB := removalBed(t)
	runUntil(t, tb, resilience.Down, 300)
	runUntil(t, tb, resilience.Recovering, 300)
	// Mid-recovery the re-provision pass may already have re-pushed A;
	// removing it now must still converge to A gone from the hub.
	if err := tb.Manager.Remove(idA); err != nil {
		t.Fatalf("remove while recovering: %v", err)
	}
	checkRemovedStaysRemoved(t, tb, idA, eventsA, eventsB)
}

func TestFeedbackDuringOutageAndAfterRemove(t *testing.T) {
	tb, idA, idB, _, _ := removalBed(t)
	runUntil(t, tb, resilience.Down, 300)
	// Feedback is fire-and-forget: while the hub is dead it is quietly
	// lost, never an error surfaced to the app.
	if err := tb.Manager.Feedback(idA, true); err != nil {
		t.Errorf("feedback while down: %v", err)
	}
	if err := tb.Manager.Remove(idA); err != nil {
		t.Fatal(err)
	}
	// After removal the ID is unknown — feedback must error, outage or not.
	if err := tb.Manager.Feedback(idA, true); err == nil {
		t.Error("feedback on removed condition must error")
	}
	run(t, tb, 400)
	if st := tb.Manager.Supervisor().State(); st != resilience.Up {
		t.Fatalf("supervisor state = %v, want up", st)
	}
	// Feedback on the survivor works again post-recovery.
	if err := tb.Manager.Feedback(idB, false); err != nil {
		t.Errorf("feedback after recovery: %v", err)
	}
}
