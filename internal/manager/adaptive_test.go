package manager

import (
	"strings"
	"testing"

	"sidewinder/internal/adapt"
	"sidewinder/internal/core"
	"sidewinder/internal/hub"
	"sidewinder/internal/interp"
	"sidewinder/internal/resilience"
)

// bigWindow is a single-channel condition whose window state dominates its
// RAM footprint: at size 2500 it fits the MSP430 (4·2500+64 ≈ 10 KB of
// 16 KB), but the adaptive d=2/w=2 rung doubles the window and overflows
// it — the shape that exercises re-admission vetoes and hub-side update
// rejection.
func bigWindow(size int) *core.Pipeline {
	p := core.NewPipeline("big-window")
	p.AddBranch(core.NewBranch(core.AccelX).
		Add(core.Window(size, size/2, "rectangular")).
		Add(core.Stat("stddev")).
		Add(core.MinThreshold(5)))
	return p
}

// hubText returns the program text the hub is actually running for a
// condition — the ground truth the manager's view must track.
func hubText(t *testing.T, tb *Testbed, id uint16) string {
	t.Helper()
	c := tb.Hub.conds[id]
	if c == nil {
		t.Fatalf("condition %d not loaded on hub", id)
	}
	return c.pushText
}

// managerText returns the manager's record of a condition's program — what
// crash re-provisioning would push.
func managerText(t *testing.T, tb *Testbed, id uint16) string {
	t.Helper()
	st := tb.Manager.pushes[id]
	if st == nil {
		t.Fatalf("condition %d unknown to manager", id)
	}
	return st.irText
}

func TestEnableAdaptiveErrors(t *testing.T) {
	tb := newBed(t)
	if err := tb.EnableAdaptive(42, adapt.DefaultConfig()); err == nil {
		t.Error("enable on unknown condition must error")
	}
	// A push that has not settled (no pump, no ack yet) cannot be enabled:
	// the manager does not know what program the hub accepted.
	id, err := tb.Manager.Push(significantMotion(), ListenerFunc(func(Event) {}))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.EnableAdaptive(id, adapt.DefaultConfig()); err == nil {
		t.Error("enable before the push settled must error")
	}
	if err := tb.Pump(); err != nil {
		t.Fatal(err)
	}
	if err := tb.EnableAdaptive(id, adapt.DefaultConfig()); err != nil {
		t.Fatalf("enable after settling: %v", err)
	}
	if !tb.Manager.AdaptiveEnabled(id) {
		t.Error("AdaptiveEnabled = false after enable")
	}
	// Remove forgets the adaptive state along with the push.
	if err := tb.Remove(id); err != nil {
		t.Fatal(err)
	}
	if tb.Manager.AdaptiveEnabled(id) {
		t.Error("AdaptiveEnabled = true after remove")
	}
}

// TestAdaptiveFalseWakeTightensHubProgram drives the AIMD threshold axis
// end to end: a false-wake verdict must re-parameterize the resident
// program (min threshold ×1.05) and push the update to the hub in place,
// leaving the hub's legacy tuner untouched — the policy engine subsumes
// it, the two loops never tighten the same threshold twice.
func TestAdaptiveFalseWakeTightensHubProgram(t *testing.T) {
	tb := newBed(t)
	var events []Event
	id, _, err := tb.Push(significantMotion(), ListenerFunc(func(e Event) {
		events = append(events, e)
	}))
	if err != nil {
		t.Fatal(err)
	}
	baseText := hubText(t, tb, id)
	if err := tb.EnableAdaptive(id, adapt.DefaultConfig()); err != nil {
		t.Fatal(err)
	}

	if err := tb.Feedback(id, true); err != nil { // false wake
		t.Fatal(err)
	}
	k, ok := tb.Manager.AdaptiveKnobs(id)
	if !ok || k.ThresholdFactor <= 1 || k.ThresholdFactor > 1.051 {
		t.Fatalf("threshold factor = %g, want ~1.05", k.ThresholdFactor)
	}
	got := hubText(t, tb, id)
	if got == baseText {
		t.Fatal("hub program unchanged after false-wake adaptation")
	}
	if got != managerText(t, tb, id) {
		t.Fatalf("hub and manager program diverged:\nhub: %s\nmanager: %s", got, managerText(t, tb, id))
	}
	if tb.Hub.Loaded() != 1 {
		t.Fatalf("hub has %d conditions after in-place update, want 1", tb.Hub.Loaded())
	}
	// The update must not have gone through the legacy MsgFeedback tuner.
	if f, ok := tb.Hub.TuningFactor(id); !ok || f != 1 {
		t.Errorf("hub tuner factor = %g, want 1 (policy engine subsumes it)", f)
	}
	// The confirmed plan carries the tightened threshold: 15 × 1.05.
	plan, ok := tb.Manager.AdaptivePlan(id)
	if !ok {
		t.Fatal("no adaptive plan")
	}
	final := plan.Nodes[len(plan.Nodes)-1]
	if min := final.Params.Float("min"); min < 15.7 || min > 15.8 {
		t.Errorf("final threshold = %g, want 15.75", min)
	}

	// A true wake decays the factor toward 1 and pushes again; the
	// tightened condition still fires on strong motion.
	if err := tb.Feedback(id, false); err != nil {
		t.Fatal(err)
	}
	k, _ = tb.Manager.AdaptiveKnobs(id)
	if k.ThresholdFactor >= 1.05 {
		t.Errorf("factor did not decay on true wake: %g", k.ThresholdFactor)
	}
	feedMotion(t, tb, 40)
	if len(events) == 0 {
		t.Error("tightened condition delivered no wakes on strong motion")
	}
}

// TestAdaptiveEscalationAndMissedWakeReset walks the energy ladder through
// the hub: Q15 demotion is a knob-only change (the IR carries no
// precision, nothing to push), the decimation rung rebuilds the resident
// program in place, and a missed wake resets the hub to the developer's
// original program with escalation suspended for the cooldown.
func TestAdaptiveEscalationAndMissedWakeReset(t *testing.T) {
	tb := newBed(t)
	var events []Event
	id, _, err := tb.Push(significantMotion(), ListenerFunc(func(e Event) {
		events = append(events, e)
	}))
	if err != nil {
		t.Fatal(err)
	}
	baseText := hubText(t, tb, id)
	cfg := adapt.DefaultConfig()
	cfg.Patience = 1
	cfg.Cooldown = 2
	if err := tb.EnableAdaptive(id, cfg); err != nil {
		t.Fatal(err)
	}

	// Rung 1: precision demotion. Same program text — no push.
	if err := tb.Feedback(id, false); err != nil {
		t.Fatal(err)
	}
	if k, _ := tb.Manager.AdaptiveKnobs(id); k.Precision != interp.Q15 || k.Decimation != 1 {
		t.Fatalf("rung 1 knobs = %+v, want Q15 at decimation 1", k)
	}
	if got := hubText(t, tb, id); got != baseText {
		t.Fatal("precision demotion must not change the hub program")
	}

	// Rung 2: decimation 2, window stretch 2. The hub rebuilds in place.
	if err := tb.Feedback(id, false); err != nil {
		t.Fatal(err)
	}
	got := hubText(t, tb, id)
	if !strings.Contains(got, "decimate") {
		t.Fatalf("hub program has no decimator after escalation:\n%s", got)
	}
	if got != managerText(t, tb, id) {
		t.Fatal("hub and manager program diverged after escalation")
	}
	if tb.Hub.Loaded() != 1 {
		t.Fatalf("hub has %d conditions, want 1", tb.Hub.Loaded())
	}
	if s, _ := tb.Manager.AdaptiveStats(id); s.Rung != 2 {
		t.Fatalf("rung = %d, want 2", s.Rung)
	}

	// The decimated condition still wakes the phone.
	feedMotion(t, tb, 40)
	if len(events) == 0 {
		t.Fatal("decimated condition delivered no wakes")
	}

	// A missed wake resets the hub to the original program.
	if err := tb.MissedWake(id); err != nil {
		t.Fatal(err)
	}
	if got := hubText(t, tb, id); got != baseText {
		t.Fatalf("hub not reset to base program after missed wake:\n%s", got)
	}
	s, _ := tb.Manager.AdaptiveStats(id)
	if s.Rung != 0 || s.MissedWakes != 1 {
		t.Fatalf("stats after miss = %+v, want rung 0, 1 miss", s)
	}
	// Cooldown suspends escalation: the next true wake must not climb.
	if err := tb.Feedback(id, false); err != nil {
		t.Fatal(err)
	}
	if got := hubText(t, tb, id); got != baseText {
		t.Fatal("engine escalated during cooldown")
	}
}

// TestAdaptiveSchedVetoKeepsResidency: with the admission controller
// attached, a rung whose window stretch no longer fits the device must be
// vetoed at re-admission — the condition stays resident on the hub with
// its last good program, and the engine never proposes that rung again.
func TestAdaptiveSchedVetoKeepsResidency(t *testing.T) {
	tb := schedBed(t, hub.MSP430(), TestbedConfig{})
	id, device, err := tb.Push(bigWindow(2500), ListenerFunc(func(Event) {}))
	if err != nil {
		t.Fatal(err)
	}
	if device != "MSP430" {
		t.Fatalf("placed on %s, want MSP430", device)
	}
	baseText := hubText(t, tb, id)
	cfg := adapt.DefaultConfig()
	cfg.Patience = 1
	cfg.AllowQ15 = false // first rung is d=2/w=2: the infeasible one
	if err := tb.EnableAdaptive(id, cfg); err != nil {
		t.Fatal(err)
	}

	if err := tb.Feedback(id, false); err != nil {
		t.Fatal(err)
	}
	s, _ := tb.Manager.AdaptiveStats(id)
	if s.Vetoes == 0 {
		t.Fatalf("infeasible rung not vetoed: %+v", s)
	}
	if s.Rung != 0 || s.MaxRung != 0 {
		t.Fatalf("engine not clamped to baseline: %+v", s)
	}
	if got := hubText(t, tb, id); got != baseText {
		t.Fatal("vetoed adaptation reached the hub")
	}
	if device, ready, err := tb.Manager.Status(id); err != nil || !ready || device != "MSP430" {
		t.Fatalf("condition lost hub residency: device=%s ready=%v err=%v", device, ready, err)
	}
	// The clamped engine never retries the rung on further clean wakes.
	for i := 0; i < 5; i++ {
		if err := tb.Feedback(id, false); err != nil {
			t.Fatal(err)
		}
	}
	if s, _ := tb.Manager.AdaptiveStats(id); s.Vetoes != 1 {
		t.Fatalf("clamped rung retried: %+v", s)
	}
}

// TestAdaptiveHubRejectionRollsBack covers the second rejection point of
// the re-admission contract: without a scheduler the manager pushes the
// mutated program optimistically, the hub's own rebuild overflows RAM and
// answers MsgConfigError, and the manager rolls back in lockstep — the
// hub keeps running the old program and the engine is clamped.
func TestAdaptiveHubRejectionRollsBack(t *testing.T) {
	tb, err := NewTestbed(TestbedConfig{Devices: []hub.Device{hub.MSP430()}})
	if err != nil {
		t.Fatal(err)
	}
	var events int
	id, _, err := tb.Push(bigWindow(2500), ListenerFunc(func(Event) { events++ }))
	if err != nil {
		t.Fatal(err)
	}
	baseText := hubText(t, tb, id)
	cfg := adapt.DefaultConfig()
	cfg.Patience = 1
	cfg.AllowQ15 = false
	if err := tb.EnableAdaptive(id, cfg); err != nil {
		t.Fatal(err)
	}

	if err := tb.Feedback(id, false); err != nil {
		t.Fatal(err)
	}
	if got := hubText(t, tb, id); got != baseText {
		t.Fatalf("hub kept the rejected program:\n%s", got)
	}
	if got := managerText(t, tb, id); got != baseText {
		t.Fatal("manager view not rolled back to the hub's program")
	}
	s, _ := tb.Manager.AdaptiveStats(id)
	if s.Vetoes == 0 || s.MaxRung != 0 {
		t.Fatalf("hub rejection did not clamp the engine: %+v", s)
	}
	if _, ready, err := tb.Manager.Status(id); err != nil || !ready {
		t.Fatalf("condition unhealthy after rollback: ready=%v err=%v", ready, err)
	}
	// The surviving program still runs: a window of flat-high samples
	// has near-zero stddev, so feed a step edge to trip stddev > 5.
	for i := 0; i < 5000; i++ {
		v := 0.0
		if i%100 < 50 {
			v = 20
		}
		if err := tb.Feed(core.AccelX, v); err != nil {
			t.Fatal(err)
		}
	}
	if events == 0 {
		t.Error("condition delivered no wakes after rollback")
	}
}

// TestAdaptiveSurvivesCrashReprovision is the mid-adaptation crash
// property: once the policy engine has rebuilt the resident program, a
// hub reset + supervised recovery must re-provision the *adapted*
// program, not the developer's original — adaptation survives reboots
// with no extra protocol. The loop keeps working afterwards.
func TestAdaptiveSurvivesCrashReprovision(t *testing.T) {
	tb := supervisedTestbed(t, []resilience.ScheduledCrash{
		{AtTick: 2000, Kind: resilience.Reset, DownTicks: 120},
	})
	var events []Event
	id, _, err := tb.Push(significantMotion(), ListenerFunc(func(e Event) {
		events = append(events, e)
	}))
	if err != nil {
		t.Fatal(err)
	}
	cfg := adapt.DefaultConfig()
	cfg.Patience = 1
	cfg.Cooldown = 0
	if err := tb.EnableAdaptive(id, cfg); err != nil {
		t.Fatal(err)
	}
	// Earn the decimation rung before the crash.
	for i := 0; i < 2; i++ {
		if err := tb.Feedback(id, false); err != nil {
			t.Fatal(err)
		}
	}
	adaptedText := managerText(t, tb, id)
	if !strings.Contains(adaptedText, "decimate") {
		t.Fatalf("adaptation did not reach the decimation rung:\n%s", adaptedText)
	}
	if got := hubText(t, tb, id); got != adaptedText {
		t.Fatal("hub not running the adapted program before the crash")
	}

	// Ride through the reset, the outage, and the supervised recovery.
	run(t, tb, 4000)

	sup := tb.Manager.Supervisor()
	if sup.State() != resilience.Up {
		t.Fatalf("supervisor state = %v, want up", sup.State())
	}
	if sup.Stats().Reprovisions == 0 {
		t.Fatal("no completed re-provisioning round")
	}
	if tb.Hub.Epoch() != 2 {
		t.Fatalf("hub epoch = %d, want 2 after one reset", tb.Hub.Epoch())
	}
	if tb.Hub.Loaded() != 1 {
		t.Fatalf("hub has %d conditions after recovery, want 1", tb.Hub.Loaded())
	}
	if got := hubText(t, tb, id); got != adaptedText {
		t.Fatalf("recovery re-provisioned the wrong program:\ngot: %s\nwant: %s", got, adaptedText)
	}
	if _, ready, err := tb.Manager.Status(id); err != nil || !ready {
		t.Fatalf("condition not ready after recovery: ready=%v err=%v", ready, err)
	}

	// The feedback loop keeps adapting on the recovered hub: a false wake
	// tightens the threshold on top of the decimated program.
	if err := tb.Feedback(id, true); err != nil {
		t.Fatal(err)
	}
	got := hubText(t, tb, id)
	if got == adaptedText || !strings.Contains(got, "decimate") {
		t.Fatal("post-recovery adaptation did not update the hub program")
	}
	if got != managerText(t, tb, id) {
		t.Fatal("hub and manager program diverged after recovery")
	}

	// And the adapted condition still wakes the phone.
	events = events[:0]
	feedMotion(t, tb, 40)
	if len(events) == 0 {
		t.Fatal("no wake delivered from the recovered, adapted hub")
	}
}
