package manager

import (
	"math"
	"testing"

	"sidewinder/internal/core"
)

// micBurst builds a deterministic audio-like signal with several loud
// bursts separated by silence, long enough for multiple window emissions.
func micBurst(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		amp := 0.05
		if (i/200)%3 == 0 {
			amp = 2.0
		}
		out[i] = amp * math.Sin(2*math.Pi*float64(i)/14)
	}
	return out
}

// TestFeedBlockMatchesFeed checks that the hub's block fast path is
// observationally identical to per-sample feeding: same wake events in the
// same order, same values, same buffered-data snapshots, same frame count.
func TestFeedBlockMatchesFeed(t *testing.T) {
	pipeline := func() *core.Pipeline {
		p := core.NewPipeline("mic-energy")
		p.AddBranch(core.NewBranch(core.Mic).
			Add(core.Window(64, 64, "")).
			Add(core.Stat("rms")).
			Add(core.MinThreshold(0.5)))
		return p
	}
	sig := micBurst(2000)

	type rec struct {
		CondID uint16
		Value  float64
		Data   []float64
	}
	run := func(feed func(tb *Testbed) error) ([]rec, int) {
		tb := newBed(t)
		var events []rec
		if _, _, err := tb.Push(pipeline(), ListenerFunc(func(e Event) {
			events = append(events, rec{e.CondID, e.Value, append([]float64(nil), e.Data[core.Mic]...)})
		})); err != nil {
			t.Fatal(err)
		}
		if err := feed(tb); err != nil {
			t.Fatal(err)
		}
		return events, tb.Hub.WakesSent()
	}

	want, wantSent := run(func(tb *Testbed) error {
		return tb.FeedSlice(core.Mic, sig)
	})
	if len(want) == 0 {
		t.Fatal("reference run produced no wake events")
	}

	for _, chunk := range []int{1, 17, 256, len(sig)} {
		got, gotSent := run(func(tb *Testbed) error {
			for base := 0; base < len(sig); base += chunk {
				end := base + chunk
				if end > len(sig) {
					end = len(sig)
				}
				if err := tb.FeedBlock(core.Mic, sig[base:end]); err != nil {
					return err
				}
			}
			return nil
		})
		if gotSent != wantSent {
			t.Fatalf("chunk %d: hub sent %d wakes, want %d", chunk, gotSent, wantSent)
		}
		if len(got) != len(want) {
			t.Fatalf("chunk %d: %d events, want %d", chunk, len(got), len(want))
		}
		for i := range want {
			if got[i].CondID != want[i].CondID || got[i].Value != want[i].Value {
				t.Fatalf("chunk %d: event %d = %+v, want %+v", chunk, i, got[i], want[i])
			}
			if len(got[i].Data) != len(want[i].Data) {
				t.Fatalf("chunk %d: event %d data length %d, want %d",
					chunk, i, len(got[i].Data), len(want[i].Data))
			}
			for j := range want[i].Data {
				if got[i].Data[j] != want[i].Data[j] {
					t.Fatalf("chunk %d: event %d data[%d] = %g, want %g",
						chunk, i, j, got[i].Data[j], want[i].Data[j])
				}
			}
		}
	}
}
