package manager

import (
	"math"
	"testing"

	"sidewinder/internal/core"
)

func TestTunerAIMD(t *testing.T) {
	tn := newTuner()
	if tn.factor != 1 {
		t.Fatalf("fresh factor = %g", tn.factor)
	}
	// False positives tighten multiplicatively up to the cap.
	for i := 0; i < 100; i++ {
		tn.feedback(true)
	}
	if tn.factor != tuneMax {
		t.Errorf("factor after FP storm = %g, want capped at %g", tn.factor, tuneMax)
	}
	// True positives drift back toward 1 and never below.
	for i := 0; i < 500; i++ {
		tn.feedback(false)
	}
	if tn.factor != 1 {
		t.Errorf("factor after TP run = %g, want 1", tn.factor)
	}
	if tn.feedback(false) {
		t.Error("feedback at the floor should report no change")
	}
}

func TestAdjustedPlanMinThreshold(t *testing.T) {
	p := core.NewPipeline("x")
	p.AddBranch(core.NewBranch(core.AccelX).Add(core.MovingAverage(2)).Add(core.MinThreshold(10)))
	plan, err := p.Validate(core.DefaultCatalog())
	if err != nil {
		t.Fatal(err)
	}
	adj := adjustedPlan(plan, 1.2)
	got := adj.Nodes[len(adj.Nodes)-1].Params.Float("min")
	if math.Abs(got-12) > 1e-12 {
		t.Errorf("tightened min = %g, want 12", got)
	}
	// The original plan is untouched.
	if plan.Nodes[len(plan.Nodes)-1].Params.Float("min") != 10 {
		t.Error("adjustedPlan mutated the original")
	}
	// Factor 1 returns the same plan.
	if adjustedPlan(plan, 1) != plan {
		t.Error("factor 1 should be the identity")
	}
}

func TestAdjustedPlanMaxThresholdAndNegatives(t *testing.T) {
	p := core.NewPipeline("x")
	p.AddBranch(core.NewBranch(core.AccelY).Add(core.MovingAverage(2)).Add(core.MaxThreshold(-3)))
	plan, err := p.Validate(core.DefaultCatalog())
	if err != nil {
		t.Fatal(err)
	}
	adj := adjustedPlan(plan, 1.1)
	got := adj.Nodes[len(adj.Nodes)-1].Params.Float("max")
	// Stricter max threshold: lower. -3 - 0.3 = -3.3.
	if math.Abs(got-(-3.3)) > 1e-12 {
		t.Errorf("tightened max = %g, want -3.3", got)
	}
	// Negative min threshold also tightens upward.
	p2 := core.NewPipeline("y")
	p2.AddBranch(core.NewBranch(core.AccelY).Add(core.MovingAverage(2)).Add(core.MinThreshold(-5)))
	plan2, err := p2.Validate(core.DefaultCatalog())
	if err != nil {
		t.Fatal(err)
	}
	adj2 := adjustedPlan(plan2, 1.1)
	if got := adj2.Nodes[len(adj2.Nodes)-1].Params.Float("min"); math.Abs(got-(-4.5)) > 1e-12 {
		t.Errorf("tightened negative min = %g, want -4.5", got)
	}
}

func TestAdjustedPlanBandThreshold(t *testing.T) {
	p := core.NewPipeline("x")
	p.AddBranch(core.NewBranch(core.AccelX).Add(core.MovingAverage(2)).Add(core.BandThreshold(2, 6)))
	plan, err := p.Validate(core.DefaultCatalog())
	if err != nil {
		t.Fatal(err)
	}
	adj := adjustedPlan(plan, 1.2)
	last := adj.Nodes[len(adj.Nodes)-1].Params
	lo, hi := last.Float("min"), last.Float("max")
	if lo <= 2 || hi >= 6 || lo >= hi {
		t.Errorf("band after tightening = [%g, %g], want shrunk within (2, 6)", lo, hi)
	}
}

func TestAdjustedPlanAggregatorFinalIsNoop(t *testing.T) {
	p := core.NewPipeline("x")
	p.AddBranch(
		core.NewBranch(core.Mic).Add(core.Window(4, 0, "")).Add(core.Stat("mean")).Add(core.MinThreshold(1)),
		core.NewBranch(core.Mic).Add(core.Window(4, 0, "")).Add(core.Stat("range")).Add(core.MinThreshold(1)),
	)
	p.Add(core.And())
	plan, err := p.Validate(core.DefaultCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if adjustedPlan(plan, 1.3) != plan {
		t.Error("and-terminated plans cannot be tuned; expected identity")
	}
}

func TestFeedbackTightensConditionEndToEnd(t *testing.T) {
	tb := newBed(t)
	fires := 0
	// Threshold 10 on the x moving average.
	p := core.NewPipeline("tunable")
	p.AddBranch(core.NewBranch(core.AccelX).Add(core.MovingAverage(2)).Add(core.MinThreshold(10)))
	id, _, err := tb.Push(p, ListenerFunc(func(Event) { fires++ }))
	if err != nil {
		t.Fatal(err)
	}

	feed := func(v float64, n int) int {
		before := fires
		for i := 0; i < n; i++ {
			if err := tb.Feed(core.AccelX, v); err != nil {
				t.Fatal(err)
			}
		}
		return fires - before
	}

	// 11 m/s² fires against the developer threshold of 10.
	if got := feed(11, 4); got == 0 {
		t.Fatal("condition should fire at 11 before tuning")
	}
	// The app reports several false positives; the hub tightens.
	for i := 0; i < 6; i++ {
		if err := tb.Feedback(id, true); err != nil {
			t.Fatal(err)
		}
	}
	factor, ok := tb.Hub.TuningFactor(id)
	if !ok || factor <= 1 {
		t.Fatalf("tuning factor = %g, %v", factor, ok)
	}
	// 11 no longer fires (threshold is now ~13.4); 15 still does.
	if got := feed(11, 6); got != 0 {
		t.Fatalf("11 m/s² fired %d times after tightening", got)
	}
	if got := feed(15, 4); got == 0 {
		t.Fatal("15 m/s² should still fire after tightening")
	}
	// True positives relax back toward the developer's threshold.
	for i := 0; i < 60; i++ {
		if err := tb.Feedback(id, false); err != nil {
			t.Fatal(err)
		}
	}
	factor, _ = tb.Hub.TuningFactor(id)
	if factor != 1 {
		t.Fatalf("factor after sustained TPs = %g, want 1", factor)
	}
	if got := feed(11, 6); got == 0 {
		t.Fatal("11 m/s² should fire again after relaxation")
	}
}

func TestFeedbackUnknownCondition(t *testing.T) {
	tb := newBed(t)
	if err := tb.Manager.Feedback(99, true); err == nil {
		t.Fatal("feedback for unknown condition should fail")
	}
}

func TestFeedbackPayloadCodec(t *testing.T) {
	p := encodeFeedback(5, true)
	id, fp, err := decodeFeedback(p)
	if err != nil || id != 5 || !fp {
		t.Errorf("round trip: %d %v %v", id, fp, err)
	}
	p = encodeFeedback(6, false)
	if _, fp, _ := decodeFeedback(p); fp {
		t.Error("verdict bit wrong")
	}
	if _, _, err := decodeFeedback(p[:2]); err == nil {
		t.Error("short payload should fail")
	}
}
