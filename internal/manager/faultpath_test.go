package manager

import (
	"errors"
	"testing"

	"sidewinder/internal/link"
)

// rawPair builds a manager and hub on a raw pipe, returning the loose
// endpoints so tests can inject hand-crafted frames from either side.
func rawPair(t *testing.T) (*Manager, *HubNode, *link.Endpoint, *link.Endpoint) {
	t.Helper()
	phoneEnd, hubEnd, err := link.Pipe(115200)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(phoneEnd, nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHubNode(hubEnd, nil, nil, 32)
	if err != nil {
		t.Fatal(err)
	}
	return m, h, phoneEnd, hubEnd
}

// Malformed payloads must be counted and skipped, not kill the service
// loop: over a lossy link they are routine, and over a clean one they are
// a peer bug the runtime should survive.

func TestHubSkipsMalformedPayloads(t *testing.T) {
	m, h, phoneEnd, _ := rawPair(t)

	// Push payload too short to carry even a condition ID.
	phoneEnd.Send(link.Frame{Type: link.MsgConfigPush, Payload: []byte{0x01}})
	// Remove payload of the wrong size.
	phoneEnd.Send(link.Frame{Type: link.MsgRemove, Payload: []byte{1, 2, 3}})
	// Feedback payload of the wrong size.
	phoneEnd.Send(link.Frame{Type: link.MsgFeedback, Payload: []byte{1}})
	// Unknown frame type.
	phoneEnd.Send(link.Frame{Type: 0x7A})

	if err := h.Service(); err != nil {
		t.Fatalf("hub service died on malformed input: %v", err)
	}
	if got := h.DroppedFrames(); got != 4 {
		t.Fatalf("dropped = %d, want 4", got)
	}
	// The loop must still work afterwards: a valid push goes through.
	if err := m.Service(); err != nil {
		t.Fatal(err)
	}
	id, err := m.Push(significantMotion(), ListenerFunc(func(Event) {}))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Service(); err != nil {
		t.Fatal(err)
	}
	if err := m.Service(); err != nil {
		t.Fatal(err)
	}
	if _, ready, serr := m.Status(id); !ready || serr != nil {
		t.Fatalf("push after malformed traffic: ready=%v err=%v", ready, serr)
	}
}

func TestManagerSkipsMalformedPayloads(t *testing.T) {
	m, _, _, hubEnd := rawPair(t)

	hubEnd.Send(link.Frame{Type: link.MsgConfigAck, Payload: []byte{0x01}}) // too short
	hubEnd.Send(link.Frame{Type: link.MsgConfigError, Payload: []byte{}})  // empty
	hubEnd.Send(link.Frame{Type: link.MsgWake, Payload: []byte{1, 2, 3}})  // not 18 bytes
	hubEnd.Send(link.Frame{Type: link.MsgData, Payload: []byte{0, 1, 9}})  // truncated header
	hubEnd.Send(link.Frame{Type: 0x6F})                                    // unknown type

	if err := m.Service(); err != nil {
		t.Fatalf("manager service died on malformed input: %v", err)
	}
	if got := m.DroppedFrames(); got != 5 {
		t.Fatalf("dropped = %d, want 5", got)
	}
}

// TestHubRejectsGarbageIRButSurvives: a decodable push whose IR does not
// parse is a config failure (MsgConfigError), distinct from line damage.
func TestHubRejectsGarbageIRButSurvives(t *testing.T) {
	m, h, _, _ := rawPair(t)
	// Send a push with a valid envelope but garbage program text by
	// bypassing the pipeline compiler.
	m.pushes[42] = &pushState{listener: ListenerFunc(func(Event) {}), irText: "not an ir program"}
	if err := m.Repush(42); err != nil {
		t.Fatal(err)
	}
	if err := h.Service(); err != nil {
		t.Fatal(err)
	}
	if err := m.Service(); err != nil {
		t.Fatal(err)
	}
	_, ready, serr := m.Status(42)
	if !ready || serr == nil {
		t.Fatalf("garbage IR not rejected: ready=%v err=%v", ready, serr)
	}
	if h.DroppedFrames() != 0 {
		t.Fatalf("well-formed push counted as dropped: %d", h.DroppedFrames())
	}
	if h.Loaded() != 0 {
		t.Fatalf("garbage IR loaded: %d", h.Loaded())
	}
}

// TestHubReacksDuplicatePush: a retransmitted push with identical IR is
// idempotent — the hub re-acks instead of double-loading or rejecting, so
// a manager whose ack was lost can recover with Repush.
func TestHubReacksDuplicatePush(t *testing.T) {
	m, h, _, _ := rawPair(t)
	id, err := m.Push(significantMotion(), ListenerFunc(func(Event) {}))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Service(); err != nil {
		t.Fatal(err)
	}
	// Drop the ack on the floor (simulate loss), then re-push.
	for {
		if _, ok := m.ep.Receive(); !ok {
			break
		}
	}
	if err := m.Repush(id); err != nil {
		t.Fatal(err)
	}
	if err := h.Service(); err != nil {
		t.Fatal(err)
	}
	if err := m.Service(); err != nil {
		t.Fatal(err)
	}
	device, ready, serr := m.Status(id)
	if !ready || serr != nil || device != "MSP430" {
		t.Fatalf("duplicate push not re-acked: ready=%v err=%v device=%s", ready, serr, device)
	}
	if h.Loaded() != 1 {
		t.Fatalf("duplicate push double-loaded: %d", h.Loaded())
	}
	// A duplicate ID with a *different* program is still an error.
	m.pushes[id].irText = "ACC_X -> movingAvg(id=1, params={4}); 1 -> OUT;"
	if err := m.Repush(id); err != nil {
		t.Fatal(err)
	}
	if err := h.Service(); err != nil {
		t.Fatal(err)
	}
	if err := m.Service(); err != nil {
		t.Fatal(err)
	}
	if _, _, serr := m.Status(id); serr == nil {
		t.Fatal("conflicting duplicate push was not rejected")
	}
}

// TestDeadConfigPushSurfacesLinkDown: when the ARQ layer exhausts its
// retries on a config push, Status must report ErrLinkDown (retryable via
// Repush) rather than hanging un-acked forever.
func TestDeadConfigPushSurfacesLinkDown(t *testing.T) {
	phoneEnd, hubEnd, err := link.Pipe(115200)
	if err != nil {
		t.Fatal(err)
	}
	// The phone's transmissions all vanish; the hub never hears the push.
	if err := phoneEnd.SetFaults(link.FaultConfig{Seed: 4, DropProb: 1}); err != nil {
		t.Fatal(err)
	}
	phonePort := link.NewARQ(phoneEnd, link.ARQConfig{TimeoutTicks: 1, MaxRetries: 2})
	hubPort := link.NewARQ(hubEnd, link.ARQConfig{})
	m, err := New(phonePort, nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHubNode(hubPort, nil, nil, 32)
	if err != nil {
		t.Fatal(err)
	}
	id, err := m.Push(significantMotion(), ListenerFunc(func(Event) {}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := h.Service(); err != nil {
			t.Fatal(err)
		}
		if err := m.Service(); err != nil {
			t.Fatal(err)
		}
	}
	_, ready, serr := m.Status(id)
	if !ready || !errors.Is(serr, link.ErrLinkDown) {
		t.Fatalf("dead push not surfaced: ready=%v err=%v", ready, serr)
	}
}
