package manager

import (
	"math"

	"sidewinder/internal/adapt"
	"sidewinder/internal/core"
)

// This file implements the paper's §7 "smartness" extension: "given
// feedback from the more complex algorithms running on the application
// level, self-learning mechanisms may be able to tune the parameters used
// on the wake-up conditions. It is easy to imagine an application
// notifying the sensor hub about wake-ups when events of interest were not
// actually detected (i.e. false positives)."
//
// The mechanism is deliberately conservative, because the paper also notes
// the hub cannot observe false negatives: the final admission-control
// stage's threshold is tightened multiplicatively on false-positive
// reports and drifts back toward the developer's original value on true
// positives, bounded so recall is never traded away wholesale.
//
// The tightening rule itself lives in internal/adapt (adapt.TightenFinal):
// the adaptive policy engine subsumes this hub-side tuner as its threshold
// axis, and conditions under adaptive management bypass MsgFeedback
// entirely so the two loops never tighten the same threshold twice.

// Tuning behavior constants.
const (
	// tuneUp is the multiplicative strictness increase per false
	// positive; tuneDown the relaxation per true positive.
	tuneUp   = 1.05
	tuneDown = 0.97
	// tuneMax bounds how far the tuner may tighten a threshold relative
	// to the developer's value (the hub cannot see the false negatives
	// that over-tightening would cause).
	tuneMax = 1.5
)

// tuner tracks one condition's adaptive strictness factor in
// [1, tuneMax]; 1 means the developer's original threshold.
type tuner struct {
	factor float64
}

func newTuner() *tuner { return &tuner{factor: 1} }

// feedback applies one application report and returns whether the factor
// changed.
func (t *tuner) feedback(falsePositive bool) bool {
	old := t.factor
	if falsePositive {
		t.factor = math.Min(t.factor*tuneUp, tuneMax)
	} else {
		t.factor = math.Max(t.factor*tuneDown, 1)
	}
	return t.factor != old
}

// adjustedPlan returns the plan with its final admission-control stage
// tightened by the factor. The returned plan shares all node state except
// the final node's parameters; factor 1 (or an untunable final stage)
// returns the plan unchanged.
func adjustedPlan(plan *core.Plan, factor float64) *core.Plan {
	if factor == 1 {
		return plan
	}
	out := &core.Plan{
		Name:     plan.Name,
		Nodes:    append([]core.PlanNode(nil), plan.Nodes...),
		Channels: plan.Channels,
	}
	last := &out.Nodes[len(out.Nodes)-1]
	params := last.Params.Clone()
	if !adapt.TightenFinal(last.Kind, params, factor) {
		return plan
	}
	last.Params = params
	return out
}
