package manager

import (
	"math"

	"sidewinder/internal/core"
)

// This file implements the paper's §7 "smartness" extension: "given
// feedback from the more complex algorithms running on the application
// level, self-learning mechanisms may be able to tune the parameters used
// on the wake-up conditions. It is easy to imagine an application
// notifying the sensor hub about wake-ups when events of interest were not
// actually detected (i.e. false positives)."
//
// The mechanism is deliberately conservative, because the paper also notes
// the hub cannot observe false negatives: the final admission-control
// stage's threshold is tightened multiplicatively on false-positive
// reports and drifts back toward the developer's original value on true
// positives, bounded so recall is never traded away wholesale.

// Tuning behavior constants.
const (
	// tuneUp is the multiplicative strictness increase per false
	// positive; tuneDown the relaxation per true positive.
	tuneUp   = 1.05
	tuneDown = 0.97
	// tuneMax bounds how far the tuner may tighten a threshold relative
	// to the developer's value (the hub cannot see the false negatives
	// that over-tightening would cause).
	tuneMax = 1.5
)

// tuner tracks one condition's adaptive strictness factor in
// [1, tuneMax]; 1 means the developer's original threshold.
type tuner struct {
	factor float64
}

func newTuner() *tuner { return &tuner{factor: 1} }

// feedback applies one application report and returns whether the factor
// changed.
func (t *tuner) feedback(falsePositive bool) bool {
	old := t.factor
	if falsePositive {
		t.factor = math.Min(t.factor*tuneUp, tuneMax)
	} else {
		t.factor = math.Max(t.factor*tuneDown, 1)
	}
	return t.factor != old
}

// adjustedPlan returns the plan with its final admission-control stage
// tightened by the factor. The returned plan shares all node state except
// the final node's parameters; factor 1 returns the plan unchanged.
func adjustedPlan(plan *core.Plan, factor float64) *core.Plan {
	if factor == 1 {
		return plan
	}
	out := &core.Plan{
		Name:     plan.Name,
		Nodes:    append([]core.PlanNode(nil), plan.Nodes...),
		Channels: plan.Channels,
	}
	last := &out.Nodes[len(out.Nodes)-1]
	params := last.Params.Clone()
	switch last.Kind {
	case core.KindMinThreshold:
		params["min"] = core.Number(tighten(params.Float("min"), factor, +1))
	case core.KindMaxThreshold:
		params["max"] = core.Number(tighten(params.Float("max"), factor, -1))
	case core.KindBandThreshold:
		lo, hi := params.Float("min"), params.Float("max")
		width := hi - lo
		shrink := width * (factor - 1) / 2 * 0.5 // shrink at half the rate: bands are fragile
		if lo+shrink <= hi-shrink {
			params["min"] = core.Number(lo + shrink)
			params["max"] = core.Number(hi - shrink)
		}
	default:
		// Aggregator or parameter-free final stage: nothing to tune.
		return plan
	}
	last.Params = params
	return out
}

// tighten moves a threshold in the stricter direction (dir +1 raises a
// minimum, -1 lowers a maximum) proportionally to its magnitude. A zero
// threshold has no scale reference and is left alone.
func tighten(v, factor float64, dir float64) float64 {
	if v == 0 {
		return 0
	}
	return v + dir*math.Abs(v)*(factor-1)
}
