package manager

import (
	"fmt"

	"sidewinder/internal/core"
	"sidewinder/internal/hub"
	"sidewinder/internal/link"
)

// Testbed wires a Manager and a HubNode over a simulated UART and pumps
// both sides, giving examples and tests a synchronous view of the
// asynchronous architecture. It corresponds to the paper's prototype: a
// phone and a microcontroller joined by a serial cable (§3.4).
type Testbed struct {
	Manager *Manager
	Hub     *HubNode
}

// TestbedConfig tunes the testbed; zero values take defaults.
type TestbedConfig struct {
	Catalog    *core.Catalog // platform catalog shared by both sides
	Devices    []hub.Device  // hub device ladder
	Baud       int           // serial rate (default 115200)
	BufSamples int           // hub raw-data ring per channel (default 256)
}

// NewTestbed builds the full phone+hub assembly.
func NewTestbed(cfg TestbedConfig) (*Testbed, error) {
	baud := cfg.Baud
	if baud == 0 {
		baud = 115200
	}
	phoneEnd, hubEnd, err := link.Pipe(baud)
	if err != nil {
		return nil, err
	}
	m, err := New(phoneEnd, cfg.Catalog)
	if err != nil {
		return nil, err
	}
	h, err := NewHubNode(hubEnd, cfg.Catalog, cfg.Devices, cfg.BufSamples)
	if err != nil {
		return nil, err
	}
	return &Testbed{Manager: m, Hub: h}, nil
}

// Push pushes a wake-up condition end to end and returns its ID and the
// device the hub placed it on.
func (t *Testbed) Push(p *core.Pipeline, l Listener) (id uint16, device string, err error) {
	id, err = t.Manager.Push(p, l)
	if err != nil {
		return 0, "", err
	}
	if err := t.pump(); err != nil {
		return 0, "", err
	}
	device, ready, err := t.Manager.Status(id)
	if err != nil {
		return 0, "", err
	}
	if !ready {
		return 0, "", fmt.Errorf("manager: hub did not answer the push")
	}
	return id, device, nil
}

// Remove unloads a condition end to end.
func (t *Testbed) Remove(id uint16) error {
	if err := t.Manager.Remove(id); err != nil {
		return err
	}
	return t.pump()
}

// Feedback reports a wake-up verdict end to end and applies any resulting
// threshold adjustment on the hub.
func (t *Testbed) Feedback(id uint16, falsePositive bool) error {
	if err := t.Manager.Feedback(id, falsePositive); err != nil {
		return err
	}
	return t.pump()
}

// Feed delivers one sensor sample to the hub and pumps any resulting wake
// callbacks to their listeners.
func (t *Testbed) Feed(ch core.SensorChannel, v float64) error {
	if err := t.Hub.Feed(ch, v); err != nil {
		return err
	}
	return t.Manager.Service()
}

// FeedSlice delivers a whole sample stream for one channel.
func (t *Testbed) FeedSlice(ch core.SensorChannel, samples []float64) error {
	for _, v := range samples {
		if err := t.Feed(ch, v); err != nil {
			return err
		}
	}
	return nil
}

// pump services both sides until the link is quiet.
func (t *Testbed) pump() error {
	for i := 0; i < 8; i++ {
		if err := t.Hub.Service(); err != nil {
			return err
		}
		if err := t.Manager.Service(); err != nil {
			return err
		}
	}
	return nil
}
