package manager

import (
	"errors"
	"fmt"

	"sidewinder/internal/adapt"
	"sidewinder/internal/core"
	"sidewinder/internal/hub"
	"sidewinder/internal/link"
	"sidewinder/internal/resilience"
	"sidewinder/internal/telemetry"
)

// Testbed wires a Manager and a HubNode over a simulated UART and pumps
// both sides, giving examples and tests a synchronous view of the
// asynchronous architecture. It corresponds to the paper's prototype: a
// phone and a microcontroller joined by a serial cable (§3.4). The wire
// can optionally be made lossy (Fault) and protected by the stop-and-wait
// reliability layer (ARQ).
type Testbed struct {
	Manager *Manager
	Hub     *HubNode

	phoneRaw, hubRaw   *link.Endpoint
	phonePort, hubPort link.Port

	// Trace streams created when the config carries telemetry (all nil
	// otherwise). Strategies reuse phoneStream for power-state instants so
	// one track carries the whole phone timeline.
	phoneStream, hubStream, wireStream *telemetry.Stream
	profile                            *telemetry.InterpProfile
}

// Streams returns the testbed's trace streams (phone, hub, wire) — nil
// when the testbed was built without telemetry.
func (t *Testbed) Streams() (phone, hub, wire *telemetry.Stream) {
	return t.phoneStream, t.hubStream, t.wireStream
}

// Profile returns the hub interpreter's per-stage profile (nil without
// telemetry).
func (t *Testbed) Profile() *telemetry.InterpProfile { return t.profile }

// TestbedConfig tunes the testbed; zero values take defaults.
type TestbedConfig struct {
	Catalog    *core.Catalog // platform catalog shared by both sides
	Devices    []hub.Device  // hub device ladder
	Baud       int           // serial rate (default 115200)
	BufSamples int           // hub raw-data ring per channel (default 256)

	// Fault, when non-nil, installs deterministic fault injectors on
	// both transmit directions. The hub-to-phone direction uses
	// Fault.Seed+1 so the two streams differ but the whole assembly
	// stays reproducible. nil leaves the wire perfect — byte-identical
	// to the pre-fault-model behavior.
	Fault *link.FaultConfig

	// ARQ, when non-nil, wraps both endpoints in the stop-and-wait
	// reliability layer so config pushes and wake events survive the
	// injected faults. nil runs raw frames (the legacy behavior).
	ARQ *link.ARQConfig

	// Crash, when non-nil and enabled, installs a randomized crash
	// injector on the hub: each Hub.Service pass may begin or end an
	// outage. nil (or a disabled profile) leaves the hub immortal —
	// byte-identical to the pre-crash-model behavior.
	Crash *resilience.CrashProfile

	// CrashSchedule, when non-empty, installs a scripted injector firing
	// exactly these outages (tick = Hub.Service pass). Takes precedence
	// over Crash; meant for tests that need a crash at a precise moment.
	CrashSchedule []resilience.ScheduledCrash

	// Supervisor, when non-nil, attaches the hub liveness watchdog to the
	// manager: heartbeat probing, down detection, and automatic
	// re-provisioning on recovery. nil trusts the hub blindly (the legacy
	// behavior).
	Supervisor *resilience.SupervisorConfig

	// Telemetry, when enabled, instruments the whole assembly: link
	// counters and frame events, manager/hub counters and wake events,
	// and a per-stage interpreter profile on the hub. The zero Set
	// disables everything at zero hot-path cost.
	Telemetry telemetry.Set

	// Clock stamps trace events with simulated time. Required only when
	// Telemetry carries a tracer; the driving loop (strategy, experiment)
	// advances it.
	Clock *telemetry.Clock

	// TraceLabel prefixes the trace stream names ("phone", "hub", "wire")
	// so parallel evaluation cells stay distinguishable in one trace.
	TraceLabel string
}

// NewTestbed builds the full phone+hub assembly.
func NewTestbed(cfg TestbedConfig) (*Testbed, error) {
	baud := cfg.Baud
	if baud == 0 {
		baud = 115200
	}
	phoneEnd, hubEnd, err := link.Pipe(baud)
	if err != nil {
		return nil, err
	}
	if cfg.Fault != nil {
		phoneFaults := *cfg.Fault
		if err := phoneEnd.SetFaults(phoneFaults); err != nil {
			return nil, err
		}
		hubFaults := *cfg.Fault
		hubFaults.Seed = cfg.Fault.Seed + 1
		if err := hubEnd.SetFaults(hubFaults); err != nil {
			return nil, err
		}
	}
	var phonePort, hubPort link.Port = phoneEnd, hubEnd
	if cfg.ARQ != nil {
		phonePort = link.NewARQ(phoneEnd, *cfg.ARQ)
		hubPort = link.NewARQ(hubEnd, *cfg.ARQ)
	}
	m, err := New(phonePort, cfg.Catalog)
	if err != nil {
		return nil, err
	}
	h, err := NewHubNode(hubPort, cfg.Catalog, cfg.Devices, cfg.BufSamples)
	if err != nil {
		return nil, err
	}
	if len(cfg.CrashSchedule) > 0 {
		h.SetCrash(resilience.NewScheduledCrashInjector(cfg.CrashSchedule))
	} else if cfg.Crash != nil {
		inj, err := resilience.NewCrashInjector(*cfg.Crash)
		if err != nil {
			return nil, err
		}
		h.SetCrash(inj)
	}
	if cfg.Supervisor != nil {
		m.AttachSupervisor(resilience.NewSupervisor(*cfg.Supervisor))
	}
	t := &Testbed{
		Manager:   m,
		Hub:       h,
		phoneRaw:  phoneEnd,
		hubRaw:    hubEnd,
		phonePort: phonePort,
		hubPort:   hubPort,
	}
	if cfg.Telemetry.Enabled() {
		reg := cfg.Telemetry.Metrics
		t.phoneStream = cfg.Telemetry.Tracer.Stream(cfg.TraceLabel+"phone", cfg.Clock)
		t.hubStream = cfg.Telemetry.Tracer.Stream(cfg.TraceLabel+"hub", cfg.Clock)
		t.wireStream = cfg.Telemetry.Tracer.Stream(cfg.TraceLabel+"wire", cfg.Clock)
		t.profile = telemetry.NewInterpProfile()
		phoneEnd.SetTelemetry(reg, "link.phone", t.wireStream)
		hubEnd.SetTelemetry(reg, "link.hub", t.wireStream)
		if pa, ok := phonePort.(*link.ARQ); ok {
			pa.SetTelemetry(reg, "link.phone", t.wireStream)
		}
		if ha, ok := hubPort.(*link.ARQ); ok {
			ha.SetTelemetry(reg, "link.hub", t.wireStream)
		}
		m.SetTelemetry(reg, t.phoneStream)
		h.SetTelemetry(reg, t.profile, t.hubStream)
		m.Supervisor().SetTelemetry(reg, t.phoneStream)
	}
	return t, nil
}

// Push pushes a wake-up condition end to end and returns its ID and the
// device the hub placed it on. If the link layer declares the push dead
// mid-flight (bounded ARQ retries exhausted), one automatic re-push
// re-arms the retry budget before giving up.
func (t *Testbed) Push(p *core.Pipeline, l Listener) (id uint16, device string, err error) {
	id, err = t.Manager.Push(p, l)
	if err != nil {
		return 0, "", err
	}
	if err := t.Pump(); err != nil {
		return 0, "", err
	}
	device, ready, err := t.Manager.Status(id)
	if err != nil && errors.Is(err, link.ErrLinkDown) {
		if err := t.Manager.Repush(id); err != nil {
			return 0, "", err
		}
		if err := t.Pump(); err != nil {
			return 0, "", err
		}
		device, ready, err = t.Manager.Status(id)
	}
	if err != nil {
		return 0, "", err
	}
	if !ready {
		return 0, "", fmt.Errorf("manager: hub did not answer the push")
	}
	return id, device, nil
}

// Remove unloads a condition end to end.
func (t *Testbed) Remove(id uint16) error {
	if err := t.Manager.Remove(id); err != nil {
		return err
	}
	return t.Pump()
}

// Feedback reports a wake-up verdict end to end and applies any resulting
// threshold adjustment on the hub (or, for a condition under adaptive
// management, any resulting re-parameterization push).
func (t *Testbed) Feedback(id uint16, falsePositive bool) error {
	if err := t.Manager.Feedback(id, falsePositive); err != nil {
		return err
	}
	return t.Pump()
}

// EnableAdaptive puts a pushed condition under adaptive management.
func (t *Testbed) EnableAdaptive(id uint16, cfg adapt.Config) error {
	return t.Manager.EnableAdaptive(id, cfg)
}

// MissedWake reports a missed event end to end and applies any resulting
// re-parameterization push.
func (t *Testbed) MissedWake(id uint16) error {
	if err := t.Manager.ReportMissedWake(id); err != nil {
		return err
	}
	return t.Pump()
}

// Feed delivers one sensor sample to the hub and pumps any resulting wake
// callbacks to their listeners.
func (t *Testbed) Feed(ch core.SensorChannel, v float64) error {
	if err := t.Hub.Feed(ch, v); err != nil {
		return err
	}
	if t.quiet() {
		return nil
	}
	return t.Pump()
}

// FeedBlock delivers a whole sample block for one channel on the hub's
// block fast path and pumps any resulting wake callbacks.
func (t *Testbed) FeedBlock(ch core.SensorChannel, samples []float64) error {
	if err := t.Hub.FeedBlock(ch, samples); err != nil {
		return err
	}
	if t.quiet() {
		return nil
	}
	return t.Pump()
}

// FeedSlice delivers a whole sample stream for one channel.
func (t *Testbed) FeedSlice(ch core.SensorChannel, samples []float64) error {
	for _, v := range samples {
		if err := t.Feed(ch, v); err != nil {
			return err
		}
	}
	return nil
}

// maxPumpRounds bounds Pump. ARQ backoff caps at 16 ticks and retries at
// 8, so even a fully dead frame settles within ~130 rounds; the bound
// only guards against a protocol bug livelocking the loop.
const maxPumpRounds = 4096

// Pump services both sides until the link is quiet: nothing pending,
// nothing in flight, nothing delayed. With a lossy link this is where
// retransmission ticks happen.
func (t *Testbed) Pump() error {
	for i := 0; i < maxPumpRounds; i++ {
		if err := t.Hub.Service(); err != nil {
			return err
		}
		if err := t.Manager.Service(); err != nil {
			return err
		}
		if t.quiet() {
			return nil
		}
	}
	return fmt.Errorf("manager: link did not quiesce within %d pump rounds", maxPumpRounds)
}

// quiet reports that no frame is pending, in flight, or delayed in either
// direction. A crashed hub is silent, not busy: its link state is frozen
// (a hung CPU ticks nothing), so only the phone side can go quiet —
// otherwise a frame caught in flight by the crash would keep the pump
// spinning for the whole outage.
func (t *Testbed) quiet() bool {
	phoneQuiet := t.phonePort.Idle() && t.phonePort.Pending() == 0
	if t.Hub.Crashed() {
		return phoneQuiet
	}
	return phoneQuiet && t.hubPort.Idle() && t.hubPort.Pending() == 0
}

// LinkStats aggregates both directions' wire accounting, fault tallies,
// and (when the testbed runs the reliability layer) ARQ session counters.
type LinkStats struct {
	WireBytes   int     // total bytes both endpoints transmitted
	BusySeconds float64 // cumulative wire occupancy, both directions

	PhoneFaults, HubFaults link.FaultStats

	ARQ              bool // reliability layer active
	PhoneARQ, HubARQ link.ARQStats
	PhoneRxCorrupt   int
	HubRxCorrupt     int
	PhoneRxMalformed int
	HubRxMalformed   int
}

// LinkStats snapshots the link's accounting.
func (t *Testbed) LinkStats() LinkStats {
	s := LinkStats{
		WireBytes:        t.phoneRaw.SentBytes() + t.hubRaw.SentBytes(),
		BusySeconds:      t.phoneRaw.BusySeconds() + t.hubRaw.BusySeconds(),
		PhoneFaults:      t.phoneRaw.FaultStats(),
		HubFaults:        t.hubRaw.FaultStats(),
		PhoneRxCorrupt:   t.phoneRaw.RxCorrupt(),
		HubRxCorrupt:     t.hubRaw.RxCorrupt(),
		PhoneRxMalformed: t.phoneRaw.RxMalformed(),
		HubRxMalformed:   t.hubRaw.RxMalformed(),
	}
	if pa, ok := t.phonePort.(*link.ARQ); ok {
		s.ARQ = true
		s.PhoneARQ = pa.Stats()
	}
	if ha, ok := t.hubPort.(*link.ARQ); ok {
		s.HubARQ = ha.Stats()
	}
	return s
}
