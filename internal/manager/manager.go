package manager

import (
	"errors"
	"fmt"
	"sort"

	"sidewinder/internal/adapt"
	"sidewinder/internal/core"
	"sidewinder/internal/ir"
	"sidewinder/internal/link"
	"sidewinder/internal/resilience"
	"sidewinder/internal/sched"
	"sidewinder/internal/telemetry"
)

// Event is delivered to a SensorEventListener when its wake-up condition
// is satisfied (paper §3.2 OnSensorEvent). It carries the admitted value,
// the hub-side sample index, and the hub's buffered raw data.
type Event struct {
	CondID      uint16
	Value       float64
	SampleIndex int64
	Data        map[core.SensorChannel][]float64
}

// Listener is the paper's SensorEventListener.
type Listener interface {
	OnSensorEvent(Event)
}

// ListenerFunc adapts a function to Listener.
type ListenerFunc func(Event)

// OnSensorEvent implements Listener.
func (f ListenerFunc) OnSensorEvent(e Event) { f(e) }

// pushState tracks an in-flight or settled condition push. irText keeps
// the compiled program so a push whose delivery failed can be re-sent.
// degraded marks a condition the admission controller demoted to
// phone-side fallback sensing: it is not loaded on the hub and must never
// be re-provisioned there.
type pushState struct {
	listener Listener
	irText   string
	acked    bool
	device   string
	err      error
	degraded bool
}

// Manager is the phone-side SidewinderSensorManager (paper §3.1-3.3): it
// validates pipelines against the platform catalog, compiles them to the
// intermediate language, pushes them over the link, and dispatches wake
// events (with the hub's raw-data buffer) to registered listeners.
type Manager struct {
	cat    *core.Catalog
	ep     link.Port
	nextID uint16
	pushes map[uint16]*pushState
	// pendingData accumulates raw buffers that precede their wake frame.
	pendingData map[uint16]map[core.SensorChannel][]float64
	// dropped counts inbound frames discarded as undecodable or of an
	// unknown type — line noise or a peer bug, never fatal to the loop.
	dropped int

	// sup is the optional liveness supervisor (nil = trust the hub
	// blindly, the pre-supervision behavior). reprovisioning is true
	// while a post-crash re-push of the condition set is being settled.
	sup            *resilience.Supervisor
	reprovisioning bool
	reprov         ReprovisionStats

	// sched is the optional hub capacity admission controller (nil =
	// push until the hub rejects, the pre-scheduler behavior). See
	// capacity.go.
	sched *sched.Scheduler

	// adaptive holds the per-condition policy engines for conditions
	// under adaptive management (adaptive.go); nil entries mean the
	// legacy hub-side tuner handles feedback instead.
	adaptive map[uint16]*adaptState

	// Telemetry handles, nil (no-op) until SetTelemetry attaches them.
	cWakes    *telemetry.Counter
	cDropped  *telemetry.Counter
	cDemoted  *telemetry.Counter
	cPromoted *telemetry.Counter
	trace     *telemetry.Stream
}

// ReprovisionStats accounts the wire cost of post-crash recovery.
type ReprovisionStats struct {
	// Passes counts re-provisioning rounds started (one per recovery,
	// plus one per hub re-death mid-recovery).
	Passes int
	// Frames and Bytes count the config pushes re-sent and their encoded
	// wire size, excluding the ARQ envelope and any retransmissions
	// (those are already in the link layer's overhead accounting).
	Frames int
	Bytes  int
}

// SetTelemetry attaches phone-side telemetry: counters
// (phone.wakes_delivered, phone.rx_dropped_frames, and the admission
// controller's phone.sched_demotions/phone.sched_promotions) and a trace
// stream for wake.delivered instants. Any argument may be nil.
func (m *Manager) SetTelemetry(reg *telemetry.Registry, trace *telemetry.Stream) {
	m.cWakes = reg.Counter("phone.wakes_delivered")
	m.cDropped = reg.Counter("phone.rx_dropped_frames")
	m.cDemoted = reg.Counter("phone.sched_demotions")
	m.cPromoted = reg.Counter("phone.sched_promotions")
	m.trace = trace
}

// dropFrame accounts one discarded inbound frame.
func (m *Manager) dropFrame() {
	m.dropped++
	m.cDropped.Inc()
}

// AttachSupervisor installs the hub liveness watchdog. Service then
// drives it: inbound traffic counts as evidence of life, the supervisor's
// pings go out as heartbeat-carrying MsgPing frames, and when it declares
// the hub recovered the manager re-pushes every registered condition
// before reporting the hub Up again. Pass nil to detach.
func (m *Manager) AttachSupervisor(s *resilience.Supervisor) { m.sup = s }

// Supervisor returns the attached watchdog (nil when unsupervised).
func (m *Manager) Supervisor() *resilience.Supervisor { return m.sup }

// ReprovisionStats returns the recovery wire-cost tally.
func (m *Manager) ReprovisionStats() ReprovisionStats { return m.reprov }

// New builds a manager on one end of the link — a raw *link.Endpoint or
// a *link.ARQ for reliable delivery over a lossy wire. A nil catalog uses
// the platform default.
func New(ep link.Port, cat *core.Catalog) (*Manager, error) {
	if ep == nil {
		return nil, fmt.Errorf("manager: manager needs a link endpoint")
	}
	if cat == nil {
		cat = core.DefaultCatalog()
	}
	return &Manager{
		cat:         cat,
		ep:          ep,
		nextID:      1,
		pushes:      make(map[uint16]*pushState),
		pendingData: make(map[uint16]map[core.SensorChannel][]float64),
		adaptive:    make(map[uint16]*adaptState),
	}, nil
}

// Push validates and compiles the pipeline, registers the listener, and
// sends the IR program to the hub. The returned ID identifies the
// condition; call Service (or use Testbed) to collect the hub's response,
// then Status to check placement. With a scheduler attached this is a
// default-priority PushPriority.
func (m *Manager) Push(p *core.Pipeline, l Listener) (uint16, error) {
	if m.sched != nil {
		return m.PushPriority(p, 0, l)
	}
	if l == nil {
		return 0, fmt.Errorf("manager: a wake-up condition needs a SensorEventListener")
	}
	plan, err := p.Validate(m.cat)
	if err != nil {
		return 0, err
	}
	id := m.nextID
	m.nextID++
	irText := compileIR(plan)
	if err := m.ep.Send(link.Frame{Type: link.MsgConfigPush, Payload: encodeConfigPush(id, irText)}); err != nil {
		return 0, err
	}
	m.pushes[id] = &pushState{listener: l, irText: irText}
	return id, nil
}

// compileIR compiles a validated plan to the intermediate language.
func compileIR(plan *core.Plan) string { return ir.CompileToText(plan) }

// Repush re-sends a condition whose earlier push was reported undelivered
// (Status returned link.ErrLinkDown) or never answered, re-arming the
// link layer's bounded retry budget. The hub treats a duplicate push with
// identical IR as idempotent and simply re-acks.
func (m *Manager) Repush(id uint16) error {
	st, ok := m.pushes[id]
	if !ok {
		return fmt.Errorf("manager: unknown condition %d", id)
	}
	if st.degraded {
		// A degraded condition lives on the phone, not the hub: there is
		// nothing to re-send.
		return nil
	}
	st.acked = false
	st.err = nil
	return m.ep.Send(link.Frame{Type: link.MsgConfigPush, Payload: encodeConfigPush(id, st.irText)})
}

// Feedback reports a wake-up verdict (paper §7): falsePositive true means
// the main-CPU classifier found no event of interest in the delivered
// data. For a condition under adaptive management the verdict feeds the
// phone-side policy engine (which subsumes the hub tuner — no MsgFeedback
// goes out, so the two loops never tighten the same threshold twice);
// otherwise it is forwarded to the hub's legacy tuner.
func (m *Manager) Feedback(id uint16, falsePositive bool) error {
	st, ok := m.pushes[id]
	if !ok {
		return fmt.Errorf("manager: unknown condition %d", id)
	}
	if as := m.adaptive[id]; as != nil {
		sig := adapt.TrueWake
		if falsePositive {
			sig = adapt.FalseWake
		}
		as.engine.Observe(sig)
		return m.applyAdaptation(id, st, as)
	}
	if st.degraded {
		// The hub does not run this condition, so there is no hub-side
		// threshold to tune; the verdict is accepted and dropped.
		return nil
	}
	// Fire-and-forget: a lost feedback hint only delays threshold tuning
	// by one wake-up, so it is not worth retransmission traffic.
	return m.ep.SendLossy(link.Frame{Type: link.MsgFeedback, Payload: encodeFeedback(id, falsePositive)})
}

// Remove unloads a condition from the hub and forgets its listener. With
// a scheduler attached, the freed capacity may promote degraded
// conditions back onto the hub.
func (m *Manager) Remove(id uint16) error {
	if _, ok := m.pushes[id]; !ok {
		return fmt.Errorf("manager: unknown condition %d", id)
	}
	if m.sched != nil {
		return m.removeScheduled(id)
	}
	if err := m.ep.Send(link.Frame{Type: link.MsgRemove, Payload: encodeRemove(id)}); err != nil {
		return err
	}
	delete(m.pushes, id)
	delete(m.pendingData, id)
	delete(m.adaptive, id)
	return nil
}

// Service ticks the link (driving ARQ retransmissions), settles any
// frames the link abandoned, and drains inbound frames — settling pushes
// and dispatching wake callbacks. A frame that fails to decode is counted
// (DroppedFrames) and skipped, never fatal: over a lossy link such frames
// are expected, and over a perfect link they indicate a peer bug the
// manager should survive.
func (m *Manager) Service() error {
	m.ep.Tick()
	m.reapDead()
	for {
		f, ok := m.ep.Receive()
		if !ok {
			break
		}
		// Any decodable inbound frame is evidence the hub is alive; pongs
		// carry richer evidence and report through ObservePong instead.
		if f.Type != link.MsgPong {
			m.sup.ObserveTraffic()
		}
		switch f.Type {
		case link.MsgConfigAck:
			id, device, err := decodeIDText(f.Payload)
			if err != nil {
				m.dropFrame()
				continue
			}
			if st := m.pushes[id]; st != nil {
				st.acked = true
				st.device = device
				if as := m.adaptive[id]; as != nil {
					as.settleAck()
				}
			}
		case link.MsgConfigError:
			id, msg, err := decodeIDText(f.Payload)
			if err != nil {
				m.dropFrame()
				continue
			}
			if st := m.pushes[id]; st != nil {
				if as := m.adaptive[id]; as != nil && as.pending != nil {
					// The hub rejected an adaptive update and kept the
					// previous program running; fall back in lockstep and
					// clamp the policy so the rung is not retried.
					m.rollbackAdaptation(id, st, as)
					st.acked = true
					continue
				}
				st.acked = true
				st.err = fmt.Errorf("manager: hub rejected condition %d: %s", id, msg)
			}
		case link.MsgData:
			id, ch, samples, err := decodeData(f.Payload)
			if err != nil {
				m.dropFrame()
				continue
			}
			if m.pendingData[id] == nil {
				m.pendingData[id] = make(map[core.SensorChannel][]float64)
			}
			m.pendingData[id][ch] = samples
		case link.MsgWake:
			id, value, sampleIdx, err := decodeWake(f.Payload)
			if err != nil {
				m.dropFrame()
				continue
			}
			st := m.pushes[id]
			if st == nil || st.listener == nil {
				continue // condition was removed; drop the late wake
			}
			ev := Event{CondID: id, Value: value, SampleIndex: sampleIdx, Data: m.pendingData[id]}
			delete(m.pendingData, id)
			m.cWakes.Inc()
			m.trace.Instant2("wake.delivered", "phone", "cond", float64(id), "value", value)
			st.listener.OnSensorEvent(ev)
		case link.MsgPong:
			hb, err := resilience.DecodeHeartbeat(f.Payload)
			m.sup.ObservePong(hb, err == nil)
		default:
			m.dropFrame()
		}
	}
	return m.superviseTick()
}

// superviseTick advances the liveness watchdog one Service pass: sends
// any probe it asks for, starts a re-provisioning round when it latches
// one, and settles an in-flight round. A no-op without a supervisor.
func (m *Manager) superviseTick() error {
	if m.sup == nil {
		return nil
	}
	if act := m.sup.Tick(); act.Ping {
		// Probes bypass the ARQ: a queue of retransmissions to a dead hub
		// must not delay (or reorder) liveness traffic, and a lost ping is
		// just one more miss.
		hb := resilience.Heartbeat{Seq: act.Seq}
		if err := m.ep.SendLossy(link.Frame{Type: link.MsgPing, Payload: hb.Encode()}); err != nil {
			return err
		}
	}
	if m.sup.TakeReprovision() {
		if err := m.reprovisionAll(); err != nil {
			return err
		}
	}
	if m.reprovisioning && m.sup.State() == resilience.Recovering {
		if err := m.settleReprovision(); err != nil {
			return err
		}
	}
	return nil
}

// reprovisionAll re-pushes every hub-resident condition after a hub
// crash. Degraded conditions are skipped: they run on the phone, and
// re-pushing them would silently override the admission decision. The
// hub's transmitter restarted at sequence zero, so the receive side must
// resynchronize first or every post-reboot frame would be suppressed as a
// duplicate. Pushes go out in ID order — deterministic recovery traffic
// for reproducible experiments.
func (m *Manager) reprovisionAll() error {
	if rs, ok := m.ep.(interface{ Resync() }); ok {
		rs.Resync()
	}
	m.reprov.Passes++
	ids := make([]uint16, 0, len(m.pushes))
	for id, st := range m.pushes {
		if st.degraded {
			continue
		}
		ids = append(ids, id)
	}
	m.trace.Instant1("supervisor.reprovision", "supervisor", "conds", float64(len(ids)))
	if len(ids) == 0 {
		m.sup.ObserveReprovisioned()
		m.reprovisioning = false
		return nil
	}
	m.reprovisioning = true
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if err := m.Repush(id); err != nil {
			return err
		}
		m.accountReprovision(id)
	}
	return nil
}

// accountReprovision tallies one re-sent config push.
func (m *Manager) accountReprovision(id uint16) {
	st := m.pushes[id]
	if st == nil {
		return
	}
	m.reprov.Frames++
	f := link.Frame{Type: link.MsgConfigPush, Payload: encodeConfigPush(id, st.irText)}
	if wire, err := link.Encode(f); err == nil {
		m.reprov.Bytes += len(wire)
	}
}

// settleReprovision checks whether the recovery round has completed:
// every condition acked (or definitively rejected) by the hub. A push the
// link abandoned is re-armed — but only while the supervisor still
// believes the hub is Recovering; once it drops back to Down, re-pushing
// would just burn the retry budget against a silent peer.
func (m *Manager) settleReprovision() error {
	settled := true
	for id, st := range m.pushes {
		if !st.acked {
			settled = false
			continue
		}
		if st.err != nil && errors.Is(st.err, link.ErrLinkDown) {
			if err := m.Repush(id); err != nil {
				return err
			}
			m.accountReprovision(id)
			settled = false
		}
	}
	if settled {
		m.sup.ObserveReprovisioned()
		m.reprovisioning = false
	}
	return nil
}

// reapDead settles frames the ARQ layer abandoned after exhausting its
// retransmission budget. A dead config push fails the pending Status with
// link.ErrLinkDown so the caller can Repush; other dead frames carry no
// manager-side state to settle.
func (m *Manager) reapDead() {
	td, ok := m.ep.(interface{ TakeDead() []link.Frame })
	if !ok {
		return
	}
	for _, f := range td.TakeDead() {
		if f.Type != link.MsgConfigPush {
			continue
		}
		id, _, err := decodeConfigPush(f.Payload)
		if err != nil {
			continue
		}
		if st := m.pushes[id]; st != nil && !st.acked {
			st.acked = true
			st.err = fmt.Errorf("manager: condition %d: config push undelivered: %w", id, link.ErrLinkDown)
		}
	}
}

// DroppedFrames returns how many inbound frames this manager discarded as
// undecodable or of an unknown type.
func (m *Manager) DroppedFrames() int { return m.dropped }

// Status reports the outcome of a push: the selected device once acked,
// or the hub's rejection error.
func (m *Manager) Status(id uint16) (device string, ready bool, err error) {
	st, ok := m.pushes[id]
	if !ok {
		return "", false, fmt.Errorf("manager: unknown condition %d", id)
	}
	if !st.acked {
		return "", false, nil
	}
	return st.device, true, st.err
}

// Catalog returns the platform catalog the manager validates against.
func (m *Manager) Catalog() *core.Catalog { return m.cat }
