package manager

import (
	"fmt"

	"sidewinder/internal/core"
	"sidewinder/internal/link"
	"sidewinder/internal/sched"
)

// This file integrates the admission controller (package sched) into the
// sensor manager. With a scheduler attached, Push decides placement
// BEFORE any wire traffic: conditions the budget admits go to the hub as
// before, while overload demotes the lowest-priority conditions to
// phone-side duty-cycled fallback sensing instead of letting the hub
// reject them. A demoted condition stays registered — its listener, IR
// text and priority survive — so freed capacity (a Remove, or a cheaper
// mix after sharing) promotes it back onto the hub automatically.
//
// Degraded conditions are invisible to the hub: they are never pushed,
// never re-provisioned after a crash, and Status reports them placed on
// sched.FallbackDeviceName. Their energy cost is modeled by package sim
// and billed to the ledger's phone.fallback component.

// AttachScheduler installs the hub capacity admission controller. Pass
// nil to detach (subsequent pushes go straight to the hub, the legacy
// behavior). Attach before the first Push: the scheduler only tracks
// conditions pushed through it.
func (m *Manager) AttachScheduler(s *sched.Scheduler) { m.sched = s }

// Scheduler returns the attached admission controller (nil when
// detached).
func (m *Manager) Scheduler() *sched.Scheduler { return m.sched }

// PushPriority validates and compiles the pipeline like Push, then runs
// it through the admission controller. Higher priority wins the hub under
// contention; equal priorities favor earlier pushes. The condition is
// never rejected for capacity: on overload the lowest-priority condition
// (possibly this one) degrades to phone-side fallback sensing. Without an
// attached scheduler, priority is ignored and the push goes straight to
// the hub.
func (m *Manager) PushPriority(p *core.Pipeline, priority int, l Listener) (uint16, error) {
	if m.sched == nil {
		return m.Push(p, l)
	}
	if l == nil {
		return 0, fmt.Errorf("manager: a wake-up condition needs a SensorEventListener")
	}
	plan, err := p.Validate(m.cat)
	if err != nil {
		return 0, err
	}
	id := m.nextID
	m.nextID++
	delta, err := m.sched.Add(id, plan, priority)
	if err != nil {
		return 0, err
	}
	st := &pushState{listener: l, irText: compileIR(plan)}
	m.pushes[id] = st
	if err := m.applyDelta(delta); err != nil {
		return 0, err
	}
	if placement, _ := m.sched.Placement(id); placement == sched.PlacedFallback {
		m.degrade(id)
		return id, nil
	}
	if err := m.ep.Send(link.Frame{Type: link.MsgConfigPush, Payload: encodeConfigPush(id, st.irText)}); err != nil {
		return 0, err
	}
	return id, nil
}

// degrade marks a registered condition as running in phone-side fallback:
// settled from the manager's point of view (no hub round-trip exists to
// wait for), placed on the fallback pseudo-device.
func (m *Manager) degrade(id uint16) {
	st := m.pushes[id]
	if st == nil || st.degraded {
		return
	}
	st.degraded = true
	st.acked = true
	st.device = sched.FallbackDeviceName
	st.err = nil
	m.cDemoted.Inc()
	m.trace.Instant1("sched.degrade", "scheduler", "cond", float64(id))
}

// applyDelta reconciles the hub against an admission recompute: demotions
// unload their conditions from the hub first (freeing the capacity the
// recompute assumed), then promotions push theirs.
func (m *Manager) applyDelta(d sched.Delta) error {
	for _, id := range d.Demoted {
		st := m.pushes[id]
		if st == nil || st.degraded {
			continue
		}
		if err := m.ep.Send(link.Frame{Type: link.MsgRemove, Payload: encodeRemove(id)}); err != nil {
			return err
		}
		m.degrade(id)
	}
	for _, id := range d.Promoted {
		st := m.pushes[id]
		if st == nil || !st.degraded {
			continue
		}
		st.degraded = false
		st.acked = false
		st.device = ""
		st.err = nil
		m.cPromoted.Inc()
		m.trace.Instant1("sched.promote", "scheduler", "cond", float64(id))
		if err := m.ep.Send(link.Frame{Type: link.MsgConfigPush, Payload: encodeConfigPush(id, st.irText)}); err != nil {
			return err
		}
	}
	return nil
}

// removeScheduled is Remove's scheduler-aware path: unregister from the
// admission controller, unload from the hub only if the hub ever had the
// condition, and promote whatever the freed capacity now admits.
func (m *Manager) removeScheduled(id uint16) error {
	st := m.pushes[id]
	delta, err := m.sched.Remove(id)
	if err != nil {
		return err
	}
	if !st.degraded {
		if err := m.ep.Send(link.Frame{Type: link.MsgRemove, Payload: encodeRemove(id)}); err != nil {
			return err
		}
	}
	delete(m.pushes, id)
	delete(m.pendingData, id)
	delete(m.adaptive, id)
	return m.applyDelta(delta)
}
