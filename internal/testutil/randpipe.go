// Package testutil provides test-support helpers shared across packages,
// chiefly a generator of random *valid* wake-up conditions used for
// property-based testing of the compiler/parser/interpreter stack.
package testutil

import (
	"fmt"
	"math/rand"

	"sidewinder/internal/core"
)

// RandomPipeline generates a random wake-up condition that is valid by
// construction: every branch obeys the catalog's kind rules (scalar chains,
// optional windowing into vector features back to scalars) and the
// pipeline ends in an admission-control stage. The generated space covers
// all sensor channels, window shapes, statistics, transforms, filters and
// aggregators.
func RandomPipeline(rng *rand.Rand) *core.Pipeline {
	p := core.NewPipeline(fmt.Sprintf("rand-%d", rng.Int31()))
	nBranches := 1 + rng.Intn(3)

	// Aggregators need matching emission rates: make every branch share
	// one channel and one windowing decision so rates line up.
	channels := core.Channels()
	ch := channels[rng.Intn(len(channels))]
	windowed := rng.Intn(2) == 0
	winSize := 8 << rng.Intn(4) // 8..64
	for b := 0; b < nBranches; b++ {
		branch := core.NewBranch(ch)
		// Scalar prefix.
		for i := rng.Intn(3); i > 0; i-- {
			branch.Add(randScalarStage(rng, ch))
		}
		if windowed {
			shape := "rectangular"
			if rng.Intn(2) == 0 {
				shape = "hamming"
			}
			branch.Add(core.Window(winSize, 0, shape))
			branch.Add(randVectorReducer(rng, winSize))
		}
		// Scalar suffix.
		for i := rng.Intn(2); i > 0; i-- {
			branch.Add(randScalarStage(rng, ch))
		}
		if nBranches > 1 {
			// Pre-aggregator branches must end scalar; they already do.
			branch.Add(core.MinThreshold(rng.NormFloat64()))
		}
		p.AddBranch(branch)
	}
	if nBranches > 1 {
		if nBranches == 2 && rng.Intn(2) == 0 {
			p.Add(core.Ratio())
		} else if rng.Intn(2) == 0 {
			p.Add(core.And())
		} else {
			p.Add(core.VectorMagnitude())
		}
	}
	// Final admission control.
	switch rng.Intn(3) {
	case 0:
		p.Add(core.MinThresholdSustained(rng.NormFloat64()*5, 1+rng.Intn(3)))
	case 1:
		p.Add(core.MaxThreshold(rng.NormFloat64() * 5))
	default:
		lo := rng.NormFloat64() * 3
		p.Add(core.BandThreshold(lo, lo+rng.Float64()*5))
	}
	return p
}

// randScalarStage returns a scalar-to-scalar stage.
func randScalarStage(rng *rand.Rand, ch core.SensorChannel) core.Stage {
	switch rng.Intn(6) {
	case 0:
		return core.MovingAverage(1 + rng.Intn(12))
	case 1:
		return core.ExpMovingAverage(0.05 + 0.9*rng.Float64())
	case 2:
		return core.Delta()
	case 3:
		return core.Abs()
	case 4:
		rate := ch.Rate()
		return core.IIRLowPass(rate/8+rng.Float64()*rate/8, rate)
	default:
		rate := ch.Rate()
		return core.IIRHighPass(rate/16+rng.Float64()*rate/16, rate)
	}
}

// randVectorReducer returns a stage chain's vector-to-scalar tail for a
// window of the given size, possibly via the FFT.
func randVectorReducer(rng *rand.Rand, winSize int) core.Stage {
	ops := core.StatOps
	switch rng.Intn(4) {
	case 0:
		return core.Stat(ops[rng.Intn(len(ops))])
	case 1:
		return core.ZeroCrossingRate()
	case 2:
		k := 2
		if winSize >= 16 {
			k = 4
		}
		return core.ZCRVariance(k)
	default:
		return core.Stat("rms")
	}
}
