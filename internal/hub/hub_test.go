package hub

import (
	"errors"
	"testing"

	"sidewinder/internal/core"
)

func plan(t *testing.T, p *core.Pipeline) *core.Plan {
	t.Helper()
	pl, err := p.Validate(core.DefaultCatalog())
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func accelPlan(t *testing.T) *core.Plan {
	p := core.NewPipeline("sig-motion")
	for _, ch := range []core.SensorChannel{core.AccelX, core.AccelY, core.AccelZ} {
		p.AddBranch(core.NewBranch(ch).Add(core.MovingAverage(10)))
	}
	p.Add(core.VectorMagnitude())
	p.Add(core.MinThreshold(15))
	return plan(t, p)
}

func sirenPlan(t *testing.T) *core.Plan {
	p := core.NewPipeline("siren")
	p.AddBranch(core.NewBranch(core.Mic).
		Add(core.HighPass(750, 512)).
		Add(core.FFT()).
		Add(core.SpectralMag()).
		Add(core.Tonality(850, 1800, core.AudioRateHz)).
		Add(core.MinThresholdSustained(4, 3)))
	return plan(t, p)
}

func musicPlan(t *testing.T) *core.Plan {
	p := core.NewPipeline("music")
	p.AddBranch(
		core.NewBranch(core.Mic).Add(core.Window(512, 0, "")).Add(core.Stat("variance")).Add(core.MinThreshold(0.01)),
		core.NewBranch(core.Mic).Add(core.Window(512, 0, "")).Add(core.ZCRVariance(8)).Add(core.BandThreshold(1e-4, 0.01)),
	)
	p.Add(core.And())
	return plan(t, p)
}

func TestAccelConditionFitsMSP430(t *testing.T) {
	d := MSP430()
	pl := accelPlan(t)
	if err := d.CheckFeasible(pl); err != nil {
		t.Fatalf("accel condition should fit MSP430: %v (util %.4f)", err, d.Utilization(pl))
	}
	if u := d.Utilization(pl); u <= 0 || u > 0.01 {
		t.Errorf("accel utilization on MSP430 = %f, want tiny but positive", u)
	}
}

func TestSirenConditionRejectedByMSP430(t *testing.T) {
	// Reproduces the paper's §4 observation: the MSP430 "was unable to
	// run the FFT-based low-pass filter in real-time".
	err := MSP430().CheckFeasible(sirenPlan(t))
	if !errors.Is(err, ErrNotRealTime) {
		t.Fatalf("expected ErrNotRealTime, got %v", err)
	}
}

func TestSirenConditionFitsLM4F120(t *testing.T) {
	d := LM4F120()
	pl := sirenPlan(t)
	if err := d.CheckFeasible(pl); err != nil {
		t.Fatalf("siren condition should fit LM4F120: %v (util %.4f)", err, d.Utilization(pl))
	}
}

func TestMusicConditionFitsMSP430(t *testing.T) {
	// Table 2 attributes the MSP430's power to music and phrase
	// detection: their windowed time-domain features avoid the FFT.
	d := MSP430()
	pl := musicPlan(t)
	if err := d.CheckFeasible(pl); err != nil {
		t.Fatalf("music condition should fit MSP430: %v (util %.4f, mem %d)",
			err, d.Utilization(pl), pl.TotalMemory())
	}
}

func TestSelectDevicePicksLowestPowerFeasible(t *testing.T) {
	d, err := SelectDevice(Devices(), accelPlan(t))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "MSP430" {
		t.Errorf("accel condition placed on %s, want MSP430", d.Name)
	}
	d, err = SelectDevice(Devices(), sirenPlan(t))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "LM4F120" {
		t.Errorf("siren condition placed on %s, want LM4F120", d.Name)
	}
}

func TestSelectDeviceConcurrentConditions(t *testing.T) {
	// Multiple accel conditions still fit the MSP430 together.
	a, b := accelPlan(t), accelPlan(t)
	d, err := SelectDevice(Devices(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "MSP430" {
		t.Errorf("two accel conditions placed on %s, want MSP430", d.Name)
	}
	// Adding the siren forces the upgrade.
	d, err = SelectDevice(Devices(), a, sirenPlan(t))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "LM4F120" {
		t.Errorf("accel+siren placed on %s, want LM4F120", d.Name)
	}
}

func TestSelectDeviceErrors(t *testing.T) {
	if _, err := SelectDevice(Devices()); err == nil {
		t.Error("no plans should fail")
	}
	if _, err := SelectDevice(nil, accelPlan(t)); err == nil {
		t.Error("no candidates should fail")
	}
	// A plan too big for everything.
	big := plan(t, core.NewPipeline("big").AddBranch(
		core.NewBranch(core.Mic).Add(core.Window(1<<18, 0, "")).Add(core.Stat("median")).Add(core.MinThreshold(0))))
	_, err := SelectDevice(Devices(), big)
	if err == nil {
		t.Fatal("giant plan should not place anywhere")
	}
}

func TestOutOfMemoryDetected(t *testing.T) {
	big := plan(t, core.NewPipeline("big").AddBranch(
		core.NewBranch(core.AccelX).Add(core.Window(1<<14, 0, "")).Add(core.Stat("mean")).Add(core.MinThreshold(0))))
	err := MSP430().CheckFeasible(big)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
}

func TestDevicePowerOrdering(t *testing.T) {
	devs := Devices()
	for i := 1; i < len(devs); i++ {
		if devs[i-1].ActivePowerMW >= devs[i].ActivePowerMW {
			t.Errorf("device ladder not in increasing power order: %s >= %s",
				devs[i-1].Name, devs[i].Name)
		}
	}
	if MSP430().ActivePowerMW != 3.6 || LM4F120().ActivePowerMW != 49.4 {
		t.Error("paper power constants wrong")
	}
}

func TestUtilizationZeroClock(t *testing.T) {
	d := Device{}
	if d.Utilization(accelPlan(t)) != 0 {
		t.Error("zero-clock device should report zero utilization")
	}
}
