// Package hub models the low-power sensor-hub hardware (paper §3.4, §4):
// microcontroller devices with clock, per-operation cycle costs, RAM and
// power draw, plus the real-time/memory feasibility checks the platform
// runs before accepting a wake-up condition.
//
// The two devices of the prototype are modeled:
//
//   - TI MSP430: extremely low power (3.6 mW awake) but no hardware FPU, so
//     floating-point work is software-emulated at ~100 cycles per
//     operation. The paper observed it "was unable to run the FFT-based
//     low-pass filter in real-time"; the cost model reproduces exactly
//     that: FFT-based stages at audio rates exceed its cycle budget.
//
//   - TI LM4F120 (Cortex-M4F): an order of magnitude more power
//     (49.4 mW awake) but hardware floating point, making every prototype
//     pipeline feasible.
package hub

import (
	"errors"
	"fmt"

	"sidewinder/internal/core"
)

// ErrNotRealTime is returned when a wake-up condition demands more cycles
// per second than the device can supply.
var ErrNotRealTime = errors.New("hub: condition cannot run in real time on this device")

// ErrOutOfMemory is returned when a wake-up condition's instance state does
// not fit the device's RAM.
var ErrOutOfMemory = errors.New("hub: condition does not fit in device RAM")

// Device is a sensor-hub microcontroller model.
type Device struct {
	// Name identifies the device in reports ("MSP430", "LM4F120").
	Name string
	// ClockHz is the core clock.
	ClockHz float64
	// CyclesPerFloatOp and CyclesPerIntOp convert the catalog's abstract
	// cost units into cycles. Software float emulation makes the former
	// large on FPU-less parts.
	CyclesPerFloatOp float64
	CyclesPerIntOp   float64
	// MaxUtilization is the fraction of cycles available to wake-up
	// conditions; the rest is reserved for sampling, the interpreter
	// loop, and link handling.
	MaxUtilization float64
	// RAMBytes is the memory available for algorithm instance state.
	RAMBytes int
	// ActivePowerMW is the measured draw while the hub runs continuously
	// (paper §4: MSP430 3.6 mW, LM4F120 49.4 mW).
	ActivePowerMW float64
}

// MSP430 returns the model of the TI MSP430 used by the prototype.
func MSP430() Device {
	return Device{
		Name:             "MSP430",
		ClockHz:          16e6,
		CyclesPerFloatOp: 100, // software floating point
		CyclesPerIntOp:   2,
		MaxUtilization:   0.5,
		RAMBytes:         16 << 10,
		ActivePowerMW:    3.6,
	}
}

// LM4F120 returns the model of the TI LM4F120 (Cortex-M4F) used by the
// prototype for FFT-heavy conditions.
func LM4F120() Device {
	return Device{
		Name:             "LM4F120",
		ClockHz:          80e6,
		CyclesPerFloatOp: 3, // hardware FPU
		CyclesPerIntOp:   1,
		MaxUtilization:   0.5,
		RAMBytes:         32 << 10,
		ActivePowerMW:    49.4,
	}
}

// Devices returns the prototype's device ladder in increasing power order,
// the order SelectDevice prefers.
func Devices() []Device {
	return []Device{MSP430(), LM4F120()}
}

// CyclesPerSecond returns the cycle demand the plan places on the device.
func (d Device) CyclesPerSecond(plan *core.Plan) float64 {
	floatOps, intOps := plan.TotalOpsPerSecond()
	return floatOps*d.CyclesPerFloatOp + intOps*d.CyclesPerIntOp
}

// Utilization returns the plan's cycle demand as a fraction of the
// device's total clock.
func (d Device) Utilization(plan *core.Plan) float64 {
	if d.ClockHz == 0 {
		return 0
	}
	return d.CyclesPerSecond(plan) / d.ClockHz
}

// IdleFraction is the share of a device's active draw that does not scale
// with compute load: sleep clocks, SRAM retention, the sampling front-end
// and the interpreter's idle loop. The remainder scales linearly with duty
// cycle (race-to-sleep between samples). ActivePowerMW remains the
// measured worst case; LoadPowerMW refines it for load-sensitive billing.
const IdleFraction = 0.30

// LoadPowerMW returns the device's draw at the given operation demand:
// the idle floor plus a dynamic share proportional to duty cycle (demand
// over the device's usable cycle budget, clamped to 1). At full budget it
// equals ActivePowerMW, so static billing is the upper bound.
func (d Device) LoadPowerMW(floatOpsPerSec, intOpsPerSec float64) float64 {
	budget := d.ClockHz * d.MaxUtilization
	if budget <= 0 {
		return d.ActivePowerMW
	}
	duty := (floatOpsPerSec*d.CyclesPerFloatOp + intOpsPerSec*d.CyclesPerIntOp) / budget
	if duty > 1 {
		duty = 1
	}
	return d.ActivePowerMW * (IdleFraction + (1-IdleFraction)*duty)
}

// CheckFeasible verifies the plan fits the device's real-time budget and
// RAM. The returned error wraps ErrNotRealTime or ErrOutOfMemory.
func (d Device) CheckFeasible(plan *core.Plan) error {
	demand := d.CyclesPerSecond(plan)
	budget := d.ClockHz * d.MaxUtilization
	if demand > budget {
		return fmt.Errorf("%w: %q needs %.2f Mcycles/s, %s provides %.2f Mcycles/s",
			ErrNotRealTime, plan.Name, demand/1e6, d.Name, budget/1e6)
	}
	if mem := plan.TotalMemory(); mem > d.RAMBytes {
		return fmt.Errorf("%w: %q needs %d B, %s has %d B",
			ErrOutOfMemory, plan.Name, mem, d.Name, d.RAMBytes)
	}
	return nil
}

// SelectDevice returns the lowest-power device from candidates that can
// run every given plan concurrently. This reproduces the prototype's
// device choice: accelerometer conditions land on the MSP430, while the
// siren detector's FFT chain forces the LM4F120 (paper §4.3, Table 2).
func SelectDevice(candidates []Device, plans ...*core.Plan) (Device, error) {
	if len(plans) == 0 {
		return Device{}, errors.New("hub: no plans to place")
	}
	var firstErr error
	for _, d := range candidates {
		err := d.checkAll(plans)
		if err == nil {
			return d, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = errors.New("hub: no candidate devices")
	}
	return Device{}, fmt.Errorf("hub: no device can run the condition set: %w", firstErr)
}

// CheckDemand verifies a raw resource demand (operations per second and
// instance memory) against the device. It lets callers that deduplicate
// work across conditions — the merged interpreter of package interp —
// place sets more tightly than per-plan sums allow.
func (d Device) CheckDemand(floatOpsPerSec, intOpsPerSec float64, memoryBytes int) error {
	cycles := floatOpsPerSec*d.CyclesPerFloatOp + intOpsPerSec*d.CyclesPerIntOp
	if cycles > d.ClockHz*d.MaxUtilization {
		return fmt.Errorf("%w: demand %.2f Mcycles/s exceeds %s budget %.2f Mcycles/s",
			ErrNotRealTime, cycles/1e6, d.Name, d.ClockHz*d.MaxUtilization/1e6)
	}
	if memoryBytes > d.RAMBytes {
		return fmt.Errorf("%w: state %d B exceeds %s RAM %d B",
			ErrOutOfMemory, memoryBytes, d.Name, d.RAMBytes)
	}
	return nil
}

// SelectDeviceForDemand returns the lowest-power device satisfying a raw
// demand.
func SelectDeviceForDemand(candidates []Device, floatOpsPerSec, intOpsPerSec float64, memoryBytes int) (Device, error) {
	var firstErr error
	for _, d := range candidates {
		err := d.CheckDemand(floatOpsPerSec, intOpsPerSec, memoryBytes)
		if err == nil {
			return d, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = errors.New("hub: no candidate devices")
	}
	return Device{}, fmt.Errorf("hub: no device can satisfy the demand: %w", firstErr)
}

// checkAll verifies the combined demand of several plans.
func (d Device) checkAll(plans []*core.Plan) error {
	var cycles float64
	var mem int
	for _, p := range plans {
		cycles += d.CyclesPerSecond(p)
		mem += p.TotalMemory()
	}
	if cycles > d.ClockHz*d.MaxUtilization {
		return fmt.Errorf("%w: combined demand %.2f Mcycles/s exceeds %s budget %.2f Mcycles/s",
			ErrNotRealTime, cycles/1e6, d.Name, d.ClockHz*d.MaxUtilization/1e6)
	}
	if mem > d.RAMBytes {
		return fmt.Errorf("%w: combined state %d B exceeds %s RAM %d B",
			ErrOutOfMemory, mem, d.Name, d.RAMBytes)
	}
	return nil
}
