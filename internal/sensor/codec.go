package sensor

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"sidewinder/internal/core"
)

// WriteJSON encodes the trace as indented JSON. Suited to small traces and
// debugging; large captures should use WriteBinary.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadJSON decodes a trace written by WriteJSON and validates it.
func ReadJSON(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("sensor: decoding trace JSON: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Binary trace format: a little-endian container with float32 samples.
//
//	magic "SWTR" | version u16 | rate f64
//	nameLen u16 | name bytes
//	metaCount u16 | (keyLen u16, key, valLen u16, val)*
//	channelCount u16 | (chanLen u16, chan, sampleCount u32, f32*)*
//	eventCount u32 | (labelLen u16, label, start u32, end u32)*
const (
	binaryMagic   = "SWTR"
	binaryVersion = 1
)

// WriteBinary encodes the trace in the compact binary format. Samples are
// stored as float32, matching the precision of the prototype's hub link.
func (t *Trace) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	le := binary.LittleEndian
	writeU16 := func(v int) error { return binary.Write(bw, le, uint16(v)) }
	writeU32 := func(v int) error { return binary.Write(bw, le, uint32(v)) }
	writeStr := func(s string) error {
		if len(s) > math.MaxUint16 {
			return fmt.Errorf("sensor: string too long (%d)", len(s))
		}
		if err := writeU16(len(s)); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}

	if err := writeU16(binaryVersion); err != nil {
		return err
	}
	if err := binary.Write(bw, le, t.RateHz); err != nil {
		return err
	}
	if err := writeStr(t.Name); err != nil {
		return err
	}

	metaKeys := make([]string, 0, len(t.Meta))
	for k := range t.Meta {
		metaKeys = append(metaKeys, k)
	}
	sort.Strings(metaKeys)
	if err := writeU16(len(metaKeys)); err != nil {
		return err
	}
	for _, k := range metaKeys {
		if err := writeStr(k); err != nil {
			return err
		}
		if err := writeStr(t.Meta[k]); err != nil {
			return err
		}
	}

	chans := t.ChannelList()
	if err := writeU16(len(chans)); err != nil {
		return err
	}
	for _, ch := range chans {
		if err := writeStr(string(ch)); err != nil {
			return err
		}
		samples := t.Channels[ch]
		if err := writeU32(len(samples)); err != nil {
			return err
		}
		buf := make([]byte, 4*len(samples))
		for i, v := range samples {
			le.PutUint32(buf[4*i:], math.Float32bits(float32(v)))
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}

	if err := writeU32(len(t.Events)); err != nil {
		return err
	}
	for _, e := range t.Events {
		if err := writeStr(e.Label); err != nil {
			return err
		}
		if err := writeU32(e.Start); err != nil {
			return err
		}
		if err := writeU32(e.End); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a trace written by WriteBinary and validates it.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("sensor: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("sensor: bad magic %q", magic)
	}
	le := binary.LittleEndian
	readU16 := func() (int, error) {
		var v uint16
		err := binary.Read(br, le, &v)
		return int(v), err
	}
	readU32 := func() (int, error) {
		var v uint32
		err := binary.Read(br, le, &v)
		return int(v), err
	}
	readStr := func() (string, error) {
		n, err := readU16()
		if err != nil {
			return "", err
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}

	version, err := readU16()
	if err != nil {
		return nil, err
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("sensor: unsupported trace version %d", version)
	}
	t := &Trace{Channels: make(map[core.SensorChannel][]float64)}
	if err := binary.Read(br, le, &t.RateHz); err != nil {
		return nil, err
	}
	if t.Name, err = readStr(); err != nil {
		return nil, err
	}

	metaCount, err := readU16()
	if err != nil {
		return nil, err
	}
	if metaCount > 0 {
		t.Meta = make(map[string]string, metaCount)
	}
	for i := 0; i < metaCount; i++ {
		k, err := readStr()
		if err != nil {
			return nil, err
		}
		v, err := readStr()
		if err != nil {
			return nil, err
		}
		t.Meta[k] = v
	}

	chanCount, err := readU16()
	if err != nil {
		return nil, err
	}
	for i := 0; i < chanCount; i++ {
		name, err := readStr()
		if err != nil {
			return nil, err
		}
		ch, err := core.ParseChannel(name)
		if err != nil {
			return nil, err
		}
		n, err := readU32()
		if err != nil {
			return nil, err
		}
		buf := make([]byte, 4*n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("sensor: reading %s samples: %w", ch, err)
		}
		samples := make([]float64, n)
		for j := range samples {
			samples[j] = float64(math.Float32frombits(le.Uint32(buf[4*j:])))
		}
		t.Channels[ch] = samples
	}

	eventCount, err := readU32()
	if err != nil {
		return nil, err
	}
	for i := 0; i < eventCount; i++ {
		var e Event
		if e.Label, err = readStr(); err != nil {
			return nil, err
		}
		if e.Start, err = readU32(); err != nil {
			return nil, err
		}
		if e.End, err = readU32(); err != nil {
			return nil, err
		}
		t.Events = append(t.Events, e)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
