// Package sensor defines the trace containers the evaluation pipeline
// works with: multi-channel sample streams annotated with ground-truth
// event intervals (paper §4.1). Traces are produced by package tracegen,
// consumed by the simulator, and can be persisted as JSON (readable) or a
// compact binary format (large captures).
package sensor

import (
	"fmt"
	"sort"
	"time"

	"sidewinder/internal/core"
)

// Event is one labeled ground-truth interval within a trace. Sample
// indices are half-open: [Start, End).
type Event struct {
	Label string `json:"label"`
	Start int    `json:"start"`
	End   int    `json:"end"`
}

// Duration returns the event length in samples.
func (e Event) Duration() int { return e.End - e.Start }

// Overlaps reports whether the event intersects [start, end).
func (e Event) Overlaps(start, end int) bool {
	return e.Start < end && start < e.End
}

// Trace is a recorded (or synthesized) multi-channel sensor capture with
// ground truth. All channels share one sampling rate and length.
type Trace struct {
	// Name identifies the trace in reports ("robot-g1-run3",
	// "audio-office", "human-commute").
	Name string `json:"name"`
	// RateHz is the per-channel sampling rate.
	RateHz float64 `json:"rate_hz"`
	// Channels holds the sample streams keyed by sensor channel.
	Channels map[core.SensorChannel][]float64 `json:"channels"`
	// Events is the ground-truth annotation, sorted by start index.
	// Traces without ground truth (the human captures of §4.1) leave it
	// empty.
	Events []Event `json:"events,omitempty"`
	// Meta carries free-form attributes ("group": "1", "environment":
	// "office").
	Meta map[string]string `json:"meta,omitempty"`
}

// Len returns the per-channel sample count (0 for an empty trace).
func (t *Trace) Len() int {
	for _, s := range t.Channels {
		return len(s)
	}
	return 0
}

// Duration returns the trace length as wall-clock time.
func (t *Trace) Duration() time.Duration {
	if t.RateHz <= 0 {
		return 0
	}
	return time.Duration(float64(t.Len()) / t.RateHz * float64(time.Second))
}

// ChannelList returns the trace's channels in the canonical core order.
func (t *Trace) ChannelList() []core.SensorChannel {
	var out []core.SensorChannel
	for _, ch := range core.Channels() {
		if _, ok := t.Channels[ch]; ok {
			out = append(out, ch)
		}
	}
	return out
}

// Validate checks structural invariants: at least one channel, equal
// channel lengths, valid channel names, events sorted, in range, and
// non-degenerate.
func (t *Trace) Validate() error {
	if t.RateHz <= 0 {
		return fmt.Errorf("sensor: trace %q has non-positive rate %g", t.Name, t.RateHz)
	}
	if len(t.Channels) == 0 {
		return fmt.Errorf("sensor: trace %q has no channels", t.Name)
	}
	n := -1
	for ch, samples := range t.Channels {
		if !ch.Valid() {
			return fmt.Errorf("sensor: trace %q has unknown channel %q", t.Name, ch)
		}
		if n == -1 {
			n = len(samples)
		} else if len(samples) != n {
			return fmt.Errorf("sensor: trace %q channel %s has %d samples, others have %d", t.Name, ch, len(samples), n)
		}
	}
	prev := -1
	for i, e := range t.Events {
		if e.Label == "" {
			return fmt.Errorf("sensor: trace %q event %d has empty label", t.Name, i)
		}
		if e.Start < 0 || e.End > n || e.Start >= e.End {
			return fmt.Errorf("sensor: trace %q event %d [%d,%d) out of range (len %d)", t.Name, i, e.Start, e.End, n)
		}
		if e.Start < prev {
			return fmt.Errorf("sensor: trace %q events not sorted by start", t.Name)
		}
		prev = e.Start
	}
	return nil
}

// EventsLabeled returns the events carrying the given label, in order.
func (t *Trace) EventsLabeled(label string) []Event {
	var out []Event
	for _, e := range t.Events {
		if e.Label == label {
			out = append(out, e)
		}
	}
	return out
}

// Labels returns the distinct event labels in lexical order.
func (t *Trace) Labels() []string {
	set := make(map[string]bool)
	for _, e := range t.Events {
		set[e.Label] = true
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// LabeledFraction returns the fraction of the trace covered by events with
// the given label (overlaps are not double-counted because generators emit
// non-overlapping events; Validate enforces sorted order).
func (t *Trace) LabeledFraction(label string) float64 {
	n := t.Len()
	if n == 0 {
		return 0
	}
	covered := 0
	lastEnd := 0
	for _, e := range t.Events {
		if e.Label != label {
			continue
		}
		start := e.Start
		if start < lastEnd {
			start = lastEnd
		}
		if e.End > start {
			covered += e.End - start
			lastEnd = e.End
		}
	}
	return float64(covered) / float64(n)
}

// Slice returns a sub-trace covering samples [start, end), clamped to the
// trace bounds. Events are intersected and re-based.
func (t *Trace) Slice(start, end int) *Trace {
	n := t.Len()
	if start < 0 {
		start = 0
	}
	if end > n {
		end = n
	}
	if start > end {
		start = end
	}
	out := &Trace{
		Name:     fmt.Sprintf("%s[%d:%d]", t.Name, start, end),
		RateHz:   t.RateHz,
		Channels: make(map[core.SensorChannel][]float64, len(t.Channels)),
		Meta:     t.Meta,
	}
	for ch, samples := range t.Channels {
		out.Channels[ch] = samples[start:end]
	}
	for _, e := range t.Events {
		if !e.Overlaps(start, end) {
			continue
		}
		ne := Event{Label: e.Label, Start: e.Start - start, End: e.End - start}
		if ne.Start < 0 {
			ne.Start = 0
		}
		if ne.End > end-start {
			ne.End = end - start
		}
		out.Events = append(out.Events, ne)
	}
	return out
}

// SampleIndexAt converts a time offset into a sample index, clamped to the
// trace bounds.
func (t *Trace) SampleIndexAt(d time.Duration) int {
	i := int(d.Seconds() * t.RateHz)
	if i < 0 {
		i = 0
	}
	if n := t.Len(); i > n {
		i = n
	}
	return i
}
