package sensor

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"sidewinder/internal/core"
)

func sampleTrace() *Trace {
	return &Trace{
		Name:   "test",
		RateHz: 50,
		Channels: map[core.SensorChannel][]float64{
			core.AccelX: {0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
			core.AccelY: {9, 8, 7, 6, 5, 4, 3, 2, 1, 0},
			core.AccelZ: {9.8, 9.8, 9.8, 9.8, 9.8, 9.8, 9.8, 9.8, 9.8, 9.8},
		},
		Events: []Event{
			{Label: "step", Start: 1, End: 3},
			{Label: "headbutt", Start: 4, End: 6},
			{Label: "step", Start: 7, End: 9},
		},
		Meta: map[string]string{"group": "1"},
	}
}

func TestTraceBasics(t *testing.T) {
	tr := sampleTrace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 10 {
		t.Errorf("Len = %d", tr.Len())
	}
	if d := tr.Duration(); d != 200*time.Millisecond {
		t.Errorf("Duration = %v", d)
	}
	if got := tr.ChannelList(); len(got) != 3 || got[0] != core.AccelX {
		t.Errorf("ChannelList = %v", got)
	}
	if got := tr.Labels(); len(got) != 2 || got[0] != "headbutt" || got[1] != "step" {
		t.Errorf("Labels = %v", got)
	}
	if got := tr.EventsLabeled("step"); len(got) != 2 {
		t.Errorf("EventsLabeled(step) = %v", got)
	}
	if f := tr.LabeledFraction("step"); math.Abs(f-0.4) > 1e-12 {
		t.Errorf("LabeledFraction(step) = %g, want 0.4", f)
	}
	if f := tr.LabeledFraction("nothing"); f != 0 {
		t.Errorf("LabeledFraction(nothing) = %g", f)
	}
}

func TestEmptyTrace(t *testing.T) {
	var tr Trace
	if tr.Len() != 0 || tr.Duration() != 0 {
		t.Error("empty trace should have zero length and duration")
	}
	if err := tr.Validate(); err == nil {
		t.Error("empty trace should fail validation")
	}
}

func TestEventHelpers(t *testing.T) {
	e := Event{Label: "x", Start: 5, End: 10}
	if e.Duration() != 5 {
		t.Errorf("Duration = %d", e.Duration())
	}
	for _, tc := range []struct {
		lo, hi int
		want   bool
	}{
		{0, 5, false}, {0, 6, true}, {9, 20, true}, {10, 20, false}, {6, 8, true},
	} {
		if got := e.Overlaps(tc.lo, tc.hi); got != tc.want {
			t.Errorf("Overlaps(%d,%d) = %v, want %v", tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Trace)
		want   string
	}{
		{"bad rate", func(tr *Trace) { tr.RateHz = 0 }, "non-positive rate"},
		{"unequal channels", func(tr *Trace) { tr.Channels[core.AccelX] = []float64{1} }, "samples"},
		{"unknown channel", func(tr *Trace) { tr.Channels["WAT"] = make([]float64, 10) }, "unknown channel"},
		{"empty label", func(tr *Trace) { tr.Events[0].Label = "" }, "empty label"},
		{"event out of range", func(tr *Trace) { tr.Events[2].End = 99 }, "out of range"},
		{"degenerate event", func(tr *Trace) { tr.Events[0].End = tr.Events[0].Start }, "out of range"},
		{"unsorted events", func(tr *Trace) { tr.Events[0], tr.Events[2] = tr.Events[2], tr.Events[0] }, "not sorted"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := sampleTrace()
			tc.mutate(tr)
			err := tr.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestSlice(t *testing.T) {
	tr := sampleTrace()
	sub := tr.Slice(2, 8)
	if sub.Len() != 6 {
		t.Fatalf("sub len = %d", sub.Len())
	}
	if got := sub.Channels[core.AccelX][0]; got != 2 {
		t.Errorf("first X sample = %g", got)
	}
	// Events: step[1,3) clips to [0,1); headbutt[4,6) -> [2,4); step[7,9) clips to [5,6).
	if len(sub.Events) != 3 {
		t.Fatalf("sub events = %v", sub.Events)
	}
	if sub.Events[0] != (Event{Label: "step", Start: 0, End: 1}) {
		t.Errorf("event 0 = %+v", sub.Events[0])
	}
	if sub.Events[1] != (Event{Label: "headbutt", Start: 2, End: 4}) {
		t.Errorf("event 1 = %+v", sub.Events[1])
	}
	if sub.Events[2] != (Event{Label: "step", Start: 5, End: 6}) {
		t.Errorf("event 2 = %+v", sub.Events[2])
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	// Out-of-range slicing clamps.
	if got := tr.Slice(-5, 99).Len(); got != 10 {
		t.Errorf("clamped slice len = %d", got)
	}
	if got := tr.Slice(8, 2).Len(); got != 0 {
		t.Errorf("inverted slice len = %d", got)
	}
}

func TestSampleIndexAt(t *testing.T) {
	tr := sampleTrace() // 50 Hz, 10 samples
	if got := tr.SampleIndexAt(100 * time.Millisecond); got != 5 {
		t.Errorf("index at 100ms = %d, want 5", got)
	}
	if got := tr.SampleIndexAt(-time.Second); got != 0 {
		t.Errorf("negative time index = %d", got)
	}
	if got := tr.SampleIndexAt(time.Hour); got != 10 {
		t.Errorf("beyond-end index = %d", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, tr, got, 0)
}

func TestJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON should fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{"name":"x","rate_hz":0,"channels":{}}`)); err == nil {
		t.Error("invalid trace should fail validation")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// float32 storage: tolerance on samples.
	assertTracesEqual(t, tr, got, 1e-6)
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, events uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw) + 10
		tr := &Trace{
			Name:     "prop",
			RateHz:   50,
			Channels: map[core.SensorChannel][]float64{core.AccelX: make([]float64, n)},
			Meta:     map[string]string{"k": "v"},
		}
		for i := range tr.Channels[core.AccelX] {
			tr.Channels[core.AccelX][i] = rng.NormFloat64() * 10
		}
		start := 0
		for e := 0; e < int(events%5) && start < n-2; e++ {
			end := start + 1 + rng.Intn(n-start-1)
			tr.Events = append(tr.Events, Event{Label: "e", Start: start, End: end})
			start = end
		}
		var buf bytes.Buffer
		if err := tr.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if got.Len() != tr.Len() || len(got.Events) != len(tr.Events) {
			return false
		}
		for i, v := range tr.Channels[core.AccelX] {
			if math.Abs(got.Channels[core.AccelX][i]-v) > 1e-4*(1+math.Abs(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	if _, err := ReadBinary(bytes.NewReader(data[:3])); err == nil {
		t.Error("truncated magic should fail")
	}
	bad := append([]byte("XXXX"), data[4:]...)
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := ReadBinary(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("truncated body should fail")
	}
	// Corrupt the version.
	verBad := append([]byte(nil), data...)
	verBad[4] = 0xFF
	if _, err := ReadBinary(bytes.NewReader(verBad)); err == nil {
		t.Error("bad version should fail")
	}
}

func assertTracesEqual(t *testing.T, want, got *Trace, tol float64) {
	t.Helper()
	if got.Name != want.Name || got.RateHz != want.RateHz {
		t.Errorf("header mismatch: %q/%g vs %q/%g", got.Name, got.RateHz, want.Name, want.RateHz)
	}
	if len(got.Channels) != len(want.Channels) {
		t.Fatalf("channel count %d vs %d", len(got.Channels), len(want.Channels))
	}
	for ch, ws := range want.Channels {
		gs := got.Channels[ch]
		if len(gs) != len(ws) {
			t.Fatalf("%s: %d samples vs %d", ch, len(gs), len(ws))
		}
		for i := range ws {
			if math.Abs(gs[i]-ws[i]) > tol*(1+math.Abs(ws[i])) {
				t.Fatalf("%s[%d] = %g, want %g", ch, i, gs[i], ws[i])
			}
		}
	}
	if len(got.Events) != len(want.Events) {
		t.Fatalf("events %v vs %v", got.Events, want.Events)
	}
	for i := range want.Events {
		if got.Events[i] != want.Events[i] {
			t.Errorf("event %d = %+v, want %+v", i, got.Events[i], want.Events[i])
		}
	}
	for k, v := range want.Meta {
		if got.Meta[k] != v {
			t.Errorf("meta[%s] = %q, want %q", k, got.Meta[k], v)
		}
	}
}
