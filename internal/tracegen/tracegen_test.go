package tracegen

import (
	"math"
	"testing"
	"time"

	"sidewinder/internal/core"
	"sidewinder/internal/dsp"
	"sidewinder/internal/sensor"
)

func TestRobotTraceStructure(t *testing.T) {
	tr, err := Robot(RobotConfig{Seed: 1, Duration: 5 * time.Minute, IdleFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Len(); got != 5*60*50 {
		t.Errorf("Len = %d, want %d", got, 5*60*50)
	}
	for _, ch := range []core.SensorChannel{core.AccelX, core.AccelY, core.AccelZ} {
		if _, ok := tr.Channels[ch]; !ok {
			t.Errorf("missing channel %s", ch)
		}
	}
	for _, label := range []string{LabelStep, LabelWalk, LabelTransition, LabelHeadbutt} {
		if len(tr.EventsLabeled(label)) == 0 {
			t.Errorf("no %s events generated", label)
		}
	}
}

func TestRobotActivityMix(t *testing.T) {
	for _, idle := range PaperGroups() {
		tr, err := Robot(RobotConfig{Seed: 7, Duration: 20 * time.Minute, IdleFraction: idle})
		if err != nil {
			t.Fatal(err)
		}
		walk := tr.LabeledFraction(LabelWalk)
		trans := tr.LabeledFraction(LabelTransition)
		head := tr.LabeledFraction(LabelHeadbutt)
		active := 1 - idle
		// Each activity fraction should be within a third of its target.
		if tol := 0.35; math.Abs(walk-active*robotWalkShare) > tol*active*robotWalkShare+0.01 {
			t.Errorf("idle %.0f%%: walk fraction %.3f, want ~%.3f", idle*100, walk, active*robotWalkShare)
		}
		if math.Abs(trans-active*robotTransitionShare) > 0.5*active*robotTransitionShare+0.01 {
			t.Errorf("idle %.0f%%: transition fraction %.3f, want ~%.3f", idle*100, trans, active*robotTransitionShare)
		}
		if head == 0 {
			t.Errorf("idle %.0f%%: no headbutt time", idle*100)
		}
	}
}

func TestRobotDeterminism(t *testing.T) {
	a, err := Robot(RobotConfig{Seed: 42, Duration: time.Minute, IdleFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Robot(RobotConfig{Seed: 42, Duration: time.Minute, IdleFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range a.Channels[core.AccelX] {
		if b.Channels[core.AccelX][i] != v {
			t.Fatalf("sample %d differs between identical seeds", i)
		}
	}
	c, err := Robot(RobotConfig{Seed: 43, Duration: time.Minute, IdleFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i, v := range a.Channels[core.AccelX] {
		if c.Channels[core.AccelX][i] != v {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestRobotStepSignature(t *testing.T) {
	// The paper's step detector: low-pass x, local maxima in [2.5, 4.5].
	tr, err := Robot(RobotConfig{Seed: 3, Duration: 10 * time.Minute, IdleFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	steps := tr.EventsLabeled(LabelStep)
	if len(steps) < 50 {
		t.Fatalf("only %d steps generated", len(steps))
	}
	x := tr.Channels[core.AccelX]
	inRange := 0
	for _, e := range steps {
		peak := dsp.Max(x[e.Start:e.End])
		if peak >= 2.5 && peak <= 4.5+1.0 { // noise can push slightly above
			inRange++
		}
	}
	if frac := float64(inRange) / float64(len(steps)); frac < 0.9 {
		t.Errorf("only %.0f%% of step peaks in detector range", frac*100)
	}
}

func TestRobotPostureBands(t *testing.T) {
	tr, err := Robot(RobotConfig{Seed: 5, Duration: 10 * time.Minute, IdleFraction: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	y := tr.Channels[core.AccelY]
	z := tr.Channels[core.AccelZ]
	// Find an idle stretch right after a transition: posture must sit in
	// one of the paper's bands.
	trans := tr.EventsLabeled(LabelTransition)
	if len(trans) == 0 {
		t.Fatal("no transitions")
	}
	checked := 0
	for _, e := range trans {
		idx := e.End + 10
		if idx+10 >= tr.Len() {
			continue
		}
		my := dsp.Mean(y[idx : idx+10])
		mz := dsp.Mean(z[idx : idx+10])
		standingBand := my > -1 && my < 1 && mz > 9 && mz < 11
		sittingBand := my > 3.5 && my < 5.5 && mz > 7.5 && mz < 9.5
		if standingBand || sittingBand {
			checked++
		}
	}
	if float64(checked) < 0.6*float64(len(trans)) {
		t.Errorf("only %d/%d transitions settle into a posture band", checked, len(trans))
	}
}

func TestRobotHeadbuttSignature(t *testing.T) {
	tr, err := Robot(RobotConfig{Seed: 11, Duration: 20 * time.Minute, IdleFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	heads := tr.EventsLabeled(LabelHeadbutt)
	if len(heads) == 0 {
		t.Fatal("no headbutts")
	}
	y := tr.Channels[core.AccelY]
	for _, e := range heads {
		low := dsp.Min(y[e.Start:e.End])
		if low > -3.75 || low < -6.75-0.5 {
			t.Errorf("headbutt minimum %.2f outside [-6.75, -3.75]", low)
		}
	}
}

func TestPaperRobotRuns(t *testing.T) {
	runs, err := PaperRobotRuns(1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 18 {
		t.Fatalf("got %d runs, want 18", len(runs))
	}
	groups := map[string]int{}
	for _, r := range runs {
		groups[r.Meta["group"]]++
	}
	if groups["1"] != 9 || groups["2"] != 6 || groups["3"] != 3 {
		t.Errorf("group counts = %v, want 9/6/3", groups)
	}
}

func TestRobotConfigValidation(t *testing.T) {
	if _, err := Robot(RobotConfig{Duration: 0, IdleFraction: 0.5}); err == nil {
		t.Error("zero duration should fail")
	}
	if _, err := Robot(RobotConfig{Duration: time.Minute, IdleFraction: 1.0}); err == nil {
		t.Error("idle fraction 1 should fail")
	}
	if _, err := Robot(RobotConfig{Duration: time.Minute, IdleFraction: -0.1}); err == nil {
		t.Error("negative idle fraction should fail")
	}
}

func TestHumanProfiles(t *testing.T) {
	for _, p := range HumanProfiles() {
		tr, err := Human(HumanConfig{Seed: 9, Duration: 10 * time.Minute, Profile: p})
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		walk := tr.LabeledFraction(LabelWalk)
		if walk < 0.10 || walk > 0.45 {
			t.Errorf("%s: walking fraction %.2f outside plausible band", p, walk)
		}
		if tr.Meta["profile"] != string(p) {
			t.Errorf("%s: meta missing", p)
		}
	}
}

func TestHumanUnknownProfile(t *testing.T) {
	if _, err := Human(HumanConfig{Duration: time.Minute, Profile: "astronaut"}); err == nil {
		t.Error("unknown profile should fail")
	}
	if _, err := Human(HumanConfig{Profile: Office}); err == nil {
		t.Error("zero duration should fail")
	}
}

func TestAudioTraceStructure(t *testing.T) {
	cfg := NewAudioConfig(21, 5*time.Minute, CoffeeShopAudio)
	tr, err := Audio(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != int(5*60*core.AudioRateHz) {
		t.Errorf("Len = %d", tr.Len())
	}
	for _, tc := range []struct {
		label string
		want  float64
		tol   float64
	}{
		{LabelMusic, 0.05, 0.03},
		{LabelSpeech, 0.05, 0.03},
		{LabelSiren, 0.02, 0.015},
	} {
		got := tr.LabeledFraction(tc.label)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("%s fraction = %.3f, want %.3f±%.3f", tc.label, got, tc.want, tc.tol)
		}
	}
	phrase := tr.LabeledFraction(LabelPhrase)
	if phrase <= 0 || phrase > 0.012 {
		t.Errorf("phrase fraction = %.4f, want (0, 0.012]", phrase)
	}
	// Phrases must lie inside speech segments.
	for _, p := range tr.EventsLabeled(LabelPhrase) {
		inside := false
		for _, s := range tr.EventsLabeled(LabelSpeech) {
			if p.Start >= s.Start && p.End <= s.End {
				inside = true
				break
			}
		}
		if !inside {
			t.Errorf("phrase [%d,%d) outside any speech segment", p.Start, p.End)
		}
	}
}

func TestAudioEventsDoNotOverlap(t *testing.T) {
	tr, err := Audio(NewAudioConfig(33, 5*time.Minute, OutdoorsAudio))
	if err != nil {
		t.Fatal(err)
	}
	var prim []sensor.Event
	for _, e := range tr.Events {
		if e.Label != LabelPhrase {
			prim = append(prim, e)
		}
	}
	for i := 1; i < len(prim); i++ {
		if prim[i].Start < prim[i-1].End {
			t.Errorf("events overlap: %+v and %+v", prim[i-1], prim[i])
		}
	}
}

func TestSirenIsPitchedInBand(t *testing.T) {
	tr, err := Audio(NewAudioConfig(55, 5*time.Minute, OfficeAudio))
	if err != nil {
		t.Fatal(err)
	}
	sirens := tr.EventsLabeled(LabelSiren)
	if len(sirens) == 0 {
		t.Fatal("no sirens generated")
	}
	mic := tr.Channels[core.Mic]
	e := sirens[0]
	mid := (e.Start + e.End) / 2
	win := mic[mid : mid+512]
	ratio, freq, err := dsp.PeakToMeanRatio(win, core.AudioRateHz)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 4 {
		t.Errorf("siren tonality ratio = %.1f, want >= 4", ratio)
	}
	if freq < 850 || freq > 1800 {
		t.Errorf("siren dominant frequency = %.0f Hz, want in [850, 1800]", freq)
	}
	// Background right before the siren should not be pitched in band.
	if e.Start > 4000 {
		bg := mic[e.Start-2048 : e.Start-2048+512]
		bgRatio, bgFreq, _ := dsp.PeakToMeanRatio(bg, core.AudioRateHz)
		if bgRatio >= 4 && bgFreq >= 850 && bgFreq <= 1800 {
			t.Error("background is siren-like; detector cannot separate")
		}
	}
}

func TestMusicVsSpeechFeatures(t *testing.T) {
	tr, err := Audio(NewAudioConfig(77, 5*time.Minute, OfficeAudio))
	if err != nil {
		t.Fatal(err)
	}
	mic := tr.Channels[core.Mic]
	zcrVar := func(win []float64, k int) float64 {
		sub := len(win) / k
		rates := make([]float64, k)
		for i := 0; i < k; i++ {
			rates[i] = dsp.ZeroCrossingRate(win[i*sub : (i+1)*sub])
		}
		return dsp.Variance(rates)
	}
	avgFeature := func(label string, f func([]float64) float64) float64 {
		var sum float64
		var n int
		for _, e := range tr.EventsLabeled(label) {
			for s := e.Start; s+512 <= e.End; s += 512 {
				sum += f(mic[s : s+512])
				n++
			}
		}
		if n == 0 {
			t.Fatalf("no %s windows", label)
		}
		return sum / float64(n)
	}
	speechZV := avgFeature(LabelSpeech, func(w []float64) float64 { return zcrVar(w, 8) })
	musicZV := avgFeature(LabelMusic, func(w []float64) float64 { return zcrVar(w, 8) })
	if speechZV <= musicZV {
		t.Errorf("speech ZCR variance (%.5f) should exceed music's (%.5f)", speechZV, musicZV)
	}
	musicVar := avgFeature(LabelMusic, dsp.Variance)
	bedVar := dsp.Variance(mic[:2048]) // trace start is almost surely bed
	if musicVar < 5*bedVar {
		t.Errorf("music variance %.5f should dwarf bed variance %.5f", musicVar, bedVar)
	}
}

func TestAudioConfigValidation(t *testing.T) {
	if _, err := Audio(AudioConfig{Duration: time.Minute, Environment: "moon"}); err == nil {
		t.Error("unknown environment should fail")
	}
	if _, err := Audio(AudioConfig{Environment: OfficeAudio}); err == nil {
		t.Error("zero duration should fail")
	}
	cfg := NewAudioConfig(1, time.Minute, OfficeAudio)
	cfg.MusicFraction = 0.4
	cfg.SpeechFraction = 0.3
	if _, err := Audio(cfg); err == nil {
		t.Error("oversubscribed events should fail")
	}
	cfg = NewAudioConfig(1, time.Minute, OfficeAudio)
	cfg.PhraseFraction = 0.2
	if _, err := Audio(cfg); err == nil {
		t.Error("phrase > speech should fail")
	}
}

func TestAudioDeterminism(t *testing.T) {
	a, _ := Audio(NewAudioConfig(5, time.Minute, CoffeeShopAudio))
	b, _ := Audio(NewAudioConfig(5, time.Minute, CoffeeShopAudio))
	for i, v := range a.Channels[core.Mic] {
		if b.Channels[core.Mic][i] != v {
			t.Fatalf("sample %d differs between identical seeds", i)
		}
	}
}

func TestHelperFunctions(t *testing.T) {
	if smoothstep(-1) != 0 || smoothstep(2) != 1 {
		t.Error("smoothstep clamping wrong")
	}
	if got := smoothstep(0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("smoothstep(0.5) = %g", got)
	}
	if bump(0) != 0 || bump(1) != 0 {
		t.Error("bump endpoints should be 0")
	}
	if math.Abs(bump(0.5)-1) > 1e-12 {
		t.Errorf("bump(0.5) = %g", bump(0.5))
	}
}
