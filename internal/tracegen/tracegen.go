// Package tracegen synthesizes the evaluation traces of paper §4.1:
//
//   - Robot accelerometer traces: scripted AIBO-style runs mixing standing
//     idle, walking, sit/stand transitions and headbutts at the paper's
//     activity ratios, with exact ground-truth labels.
//   - Human accelerometer traces: commute/retail/office profiles with
//     20-37% walking and confounding activities, without ground truth
//     (recall is measured against Always-Awake detections, as in §5.5).
//   - Audio traces: office/coffee-shop/outdoor noise beds with injected
//     music (5%), speech (5%) and sirens (2%), plus rare phrases inside
//     speech segments.
//
// The original traces came from real hardware (a robot dog, human subjects,
// microphone recordings). The generators reproduce the *signatures* the
// paper's detectors key on — step maxima between 2.5 and 4.5 m/s²,
// orientation bands for postures, headbutt minima between -6.75 and
// -3.75 m/s², pitched 850-1800 Hz sirens — so every classifier and wake-up
// condition exercises the same code paths. All generators are
// deterministic given their seed.
package tracegen

import (
	"math"
	"math/rand"
)

// Ground-truth labels used across the generated traces.
const (
	LabelStep       = "step"
	LabelWalk       = "walk"
	LabelTransition = "transition"
	LabelHeadbutt   = "headbutt"
	LabelMusic      = "music"
	LabelSpeech     = "speech"
	LabelSiren      = "siren"
	LabelPhrase     = "phrase"
)

// smoothstep interpolates from 0 to 1 over u in [0,1] with zero slope at
// both ends.
func smoothstep(u float64) float64 {
	if u <= 0 {
		return 0
	}
	if u >= 1 {
		return 1
	}
	return u * u * (3 - 2*u)
}

// bump is a smooth positive pulse over u in [0,1], peaking at 1 when u=0.5.
func bump(u float64) float64 {
	if u <= 0 || u >= 1 {
		return 0
	}
	s := math.Sin(math.Pi * u)
	return s * s
}

// gaussianNoise returns a sampler of N(0, sigma) noise from rng.
func gaussianNoise(rng *rand.Rand, sigma float64) func() float64 {
	return func() float64 { return rng.NormFloat64() * sigma }
}

// jitter returns v multiplied by a uniform factor in [1-frac, 1+frac].
func jitter(rng *rand.Rand, v, frac float64) float64 {
	return v * (1 + (rng.Float64()*2-1)*frac)
}
