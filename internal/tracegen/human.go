package tracegen

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"sidewinder/internal/core"
	"sidewinder/internal/sensor"
)

// HumanProfile names one of the paper's human trace scenarios (§4.1):
// morning commute on public transit, working in a retail store, working in
// an office.
type HumanProfile string

// The three collected scenarios.
const (
	Commute HumanProfile = "commute"
	Retail  HumanProfile = "retail"
	Office  HumanProfile = "office"
)

// HumanProfiles lists the scenarios in paper order.
func HumanProfiles() []HumanProfile { return []HumanProfile{Commute, Retail, Office} }

// humanMix describes one profile's activity distribution. Walking stays
// within the paper's 20-37% band; the remaining time mixes still periods
// with the confounding activities (vehicle vibration, fidgeting, carrying)
// that make human traces noisier than robot runs (§5.5: "the human
// subjects were performing a wide range of activities").
type humanMix struct {
	walk    float64 // fraction of trace spent walking
	vehicle float64 // bus/train vibration (commute)
	fidget  float64 // hand/desk fidgeting, shelf work
}

var humanMixes = map[HumanProfile]humanMix{
	Commute: {walk: 0.24, vehicle: 0.45, fidget: 0.08},
	Retail:  {walk: 0.36, vehicle: 0, fidget: 0.30},
	Office:  {walk: 0.21, vehicle: 0, fidget: 0.18},
}

// HumanConfig parameterizes one synthetic human capture.
type HumanConfig struct {
	Seed     int64
	Duration time.Duration
	Profile  HumanProfile
	// RateHz defaults to core.AccelRateHz.
	RateHz float64
}

// Human synthesizes a human daily-activity accelerometer trace. Following
// the paper, the trace carries no ground-truth events: §5.5 measures
// recall against the detections of an Always-Awake baseline. Step
// signatures match the robot generator's so the same step detector applies.
func Human(cfg HumanConfig) (*sensor.Trace, error) {
	mix, ok := humanMixes[cfg.Profile]
	if !ok {
		return nil, fmt.Errorf("tracegen: unknown human profile %q", cfg.Profile)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("tracegen: human trace duration must be positive")
	}
	rate := cfg.RateHz
	if rate == 0 {
		rate = core.AccelRateHz
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	total := int(cfg.Duration.Seconds() * rate)

	g := &robotGen{ // reuse the axis emitter; a human trace shares the frame
		rng:     rng,
		rate:    rate,
		x:       make([]float64, 0, total),
		y:       make([]float64, 0, total),
		z:       make([]float64, 0, total),
		posture: standing,
	}
	walkBudget := int(float64(total) * mix.walk)
	vehicleBudget := int(float64(total) * mix.vehicle)
	fidgetBudget := int(float64(total) * mix.fidget)

	for len(g.x) < total {
		r := rng.Float64()
		switch {
		case walkBudget > 0 && r < 0.30:
			before := len(g.x)
			g.walk(jitter(rng, 12, 0.6)) // humans walk in longer bouts
			walkBudget -= len(g.x) - before
		case vehicleBudget > 0 && r < 0.55:
			before := len(g.x)
			g.vehicle(jitter(rng, 20, 0.5))
			vehicleBudget -= len(g.x) - before
		case fidgetBudget > 0 && r < 0.75:
			before := len(g.x)
			g.fidget(jitter(rng, 5, 0.6))
			fidgetBudget -= len(g.x) - before
		default:
			g.idle(jitter(rng, 8, 0.7))
		}
	}

	tr := &sensor.Trace{
		Name:   fmt.Sprintf("human-%s", cfg.Profile),
		RateHz: rate,
		Channels: map[core.SensorChannel][]float64{
			core.AccelX: g.x[:total],
			core.AccelY: g.y[:total],
			core.AccelZ: g.z[:total],
		},
		// Ground truth intentionally absent (paper §5.5) -- but we keep
		// the walk segments as auxiliary annotations so tests can check
		// the generator itself; the evaluation ignores them for recall.
		Events: clampEvents(g.events, total),
		Meta: map[string]string{
			"kind":    "human",
			"profile": string(cfg.Profile),
		},
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("tracegen: generated invalid human trace: %w", err)
	}
	return tr, nil
}

// vehicle emits transit vibration: broadband low-amplitude shaking with
// occasional bumps. It moves the phone enough to defeat naive
// significant-motion detectors without producing step-like maxima.
func (g *robotGen) vehicle(sec float64) {
	n := int(sec * g.rate)
	for i := 0; i < n; i++ {
		t := float64(i) / g.rate
		shake := 0.35 * math.Sin(2*math.Pi*3.3*t)
		bumpNow := 0.0
		if g.rng.Float64() < 0.002 { // pothole
			bumpNow = 1.2
		}
		g.emit(shake+bumpNow, 0.3*math.Sin(2*math.Pi*1.1*t), standZ, 0.25)
	}
}

// fidget emits hand/desk manipulation: short erratic bursts on all axes
// with orientation wobble, again without step-shaped x maxima.
func (g *robotGen) fidget(sec float64) {
	n := int(sec * g.rate)
	wobble := g.rng.Float64() * 2
	for i := 0; i < n; i++ {
		t := float64(i) / g.rate
		g.emit(
			0.8*math.Sin(2*math.Pi*0.7*t+wobble),
			1.5*math.Sin(2*math.Pi*0.4*t),
			standZ-0.8*math.Sin(2*math.Pi*0.3*t),
			0.35,
		)
	}
}
