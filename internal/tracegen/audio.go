package tracegen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"sidewinder/internal/core"
	"sidewinder/internal/sensor"
)

// AudioEnvironment names one of the paper's recording environments (§4.1):
// an office, a coffee shop, and outdoors.
type AudioEnvironment string

// The three environments.
const (
	OfficeAudio     AudioEnvironment = "office"
	CoffeeShopAudio AudioEnvironment = "coffeeshop"
	OutdoorsAudio   AudioEnvironment = "outdoors"
)

// AudioEnvironments lists the environments in paper order.
func AudioEnvironments() []AudioEnvironment {
	return []AudioEnvironment{OfficeAudio, CoffeeShopAudio, OutdoorsAudio}
}

// AudioConfig parameterizes one synthetic audio trace. The paper mixed
// events of interest into recorded beds: music 5%, speech 5%, sirens 2% of
// each trace, with the phrase of interest occurring in under 1%.
type AudioConfig struct {
	Seed        int64
	Duration    time.Duration
	Environment AudioEnvironment
	// Event shares of the trace; zero values take the paper defaults
	// when UseDefaults is true (helper NewAudioConfig sets them).
	MusicFraction  float64
	SpeechFraction float64
	SirenFraction  float64
	// PhraseFraction is the share of the trace containing the phrase of
	// interest; phrases are embedded inside speech segments.
	PhraseFraction float64
	// RateHz defaults to core.AudioRateHz.
	RateHz float64
}

// NewAudioConfig returns a config with the paper's event mix.
func NewAudioConfig(seed int64, d time.Duration, env AudioEnvironment) AudioConfig {
	return AudioConfig{
		Seed:           seed,
		Duration:       d,
		Environment:    env,
		MusicFraction:  0.05,
		SpeechFraction: 0.05,
		SirenFraction:  0.02,
		PhraseFraction: 0.008,
		RateHz:         core.AudioRateHz,
	}
}

// environment bed parameters.
type audioBed struct {
	level  float64 // RMS-ish noise amplitude
	humHz  float64 // mains/machine hum (0 for none)
	humAmp float64
	burstP float64 // probability per second of a short background burst
	burstA float64 // burst amplitude
	rumble float64 // low-frequency rumble amplitude (outdoors traffic)
}

var audioBeds = map[AudioEnvironment]audioBed{
	OfficeAudio:     {level: 0.015, humHz: 120, humAmp: 0.01, burstP: 0.02, burstA: 0.05},
	CoffeeShopAudio: {level: 0.05, humHz: 0, humAmp: 0, burstP: 0.02, burstA: 0.05},
	OutdoorsAudio:   {level: 0.03, humHz: 0, humAmp: 0, burstP: 0.02, burstA: 0.05, rumble: 0.04},
}

// Audio synthesizes one environment trace with injected events of
// interest, each labeled with exact ground truth.
func Audio(cfg AudioConfig) (*sensor.Trace, error) {
	bed, ok := audioBeds[cfg.Environment]
	if !ok {
		return nil, fmt.Errorf("tracegen: unknown audio environment %q", cfg.Environment)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("tracegen: audio trace duration must be positive")
	}
	if cfg.MusicFraction+cfg.SpeechFraction+cfg.SirenFraction > 0.5 {
		return nil, fmt.Errorf("tracegen: event fractions sum to more than half the trace")
	}
	if cfg.PhraseFraction > cfg.SpeechFraction {
		return nil, fmt.Errorf("tracegen: phrase fraction %g exceeds speech fraction %g", cfg.PhraseFraction, cfg.SpeechFraction)
	}
	rate := cfg.RateHz
	if rate == 0 {
		rate = core.AudioRateHz
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	total := int(cfg.Duration.Seconds() * rate)

	samples := make([]float64, total)
	synthBed(samples, bed, rng, rate)

	// Schedule non-overlapping event segments, then synthesize each in
	// place over the bed.
	var events []sensor.Event
	schedule := func(label string, fraction, minSec, maxSec float64) []sensor.Event {
		placed := placeSegments(rng, total, int(fraction*float64(total)), int(minSec*rate), int(maxSec*rate), events)
		for _, e := range placed {
			events = append(events, sensor.Event{Label: label, Start: e.Start, End: e.End})
		}
		return placed
	}

	musicSegs := schedule(LabelMusic, cfg.MusicFraction, 15, 40)
	speechSegs := schedule(LabelSpeech, cfg.SpeechFraction, 6, 18)
	sirenSegs := schedule(LabelSiren, cfg.SirenFraction, 4, 12)

	for _, e := range musicSegs {
		synthMusic(samples[e.Start:e.End], rng, rate)
	}
	for _, e := range speechSegs {
		synthSpeech(samples[e.Start:e.End], rng, rate)
	}
	for _, e := range sirenSegs {
		synthSiren(samples[e.Start:e.End], rng, rate)
	}

	// Phrases live inside speech segments: mark sub-intervals until the
	// phrase budget is spent. The phrase is acoustically just speech --
	// only the main-CPU recognizer distinguishes it (paper §3.7.2).
	phraseBudget := int(cfg.PhraseFraction * float64(total))
	for _, seg := range speechSegs {
		if phraseBudget <= 0 {
			break
		}
		plen := int(jitter(rng, 1.5, 0.3) * rate) // ~1.5 s phrases
		if plen > seg.End-seg.Start {
			plen = seg.End - seg.Start
		}
		if plen > phraseBudget {
			plen = phraseBudget
		}
		start := seg.Start + rng.Intn(seg.End-seg.Start-plen+1)
		events = append(events, sensor.Event{Label: LabelPhrase, Start: start, End: start + plen})
		phraseBudget -= plen
	}

	sort.Slice(events, func(i, j int) bool {
		if events[i].Start != events[j].Start {
			return events[i].Start < events[j].Start
		}
		return events[i].End < events[j].End
	})

	tr := &sensor.Trace{
		Name:     fmt.Sprintf("audio-%s", cfg.Environment),
		RateHz:   rate,
		Channels: map[core.SensorChannel][]float64{core.Mic: samples},
		Events:   events,
		Meta: map[string]string{
			"kind":        "audio",
			"environment": string(cfg.Environment),
		},
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("tracegen: generated invalid audio trace: %w", err)
	}
	return tr, nil
}

// placeSegments schedules non-overlapping segments totaling roughly budget
// samples, each between minLen and maxLen, avoiding existing events.
func placeSegments(rng *rand.Rand, total, budget, minLen, maxLen int, existing []sensor.Event) []sensor.Event {
	var placed []sensor.Event
	occupied := append([]sensor.Event(nil), existing...)
	tries := 0
	for budget > 0 && tries < 10000 {
		tries++
		l := minLen
		if maxLen > minLen {
			l += rng.Intn(maxLen - minLen)
		}
		if l > budget {
			l = budget
		}
		if l < minLen/3 || l >= total {
			break // the remainder is too short to be a meaningful event
		}
		start := rng.Intn(total - l)
		conflict := false
		for _, e := range occupied {
			// Keep a 1000-sample guard band between events.
			if e.Overlaps(start-1000, start+l+1000) {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		seg := sensor.Event{Start: start, End: start + l}
		placed = append(placed, seg)
		occupied = append(occupied, seg)
		budget -= l
	}
	return placed
}

// synthBed fills samples with the environment's background noise.
func synthBed(samples []float64, bed audioBed, rng *rand.Rand, rate float64) {
	burstLeft := 0
	burstAmp := 0.0
	for i := range samples {
		t := float64(i) / rate
		v := rng.NormFloat64() * bed.level
		if bed.humHz > 0 {
			v += bed.humAmp * math.Sin(2*math.Pi*bed.humHz*t)
		}
		if bed.rumble > 0 {
			v += bed.rumble * math.Sin(2*math.Pi*31*t) * (0.5 + 0.5*math.Sin(2*math.Pi*0.13*t))
		}
		if burstLeft == 0 && rng.Float64() < bed.burstP/rate {
			burstLeft = int(0.3 * rate)
			burstAmp = bed.burstA * (0.5 + rng.Float64())
		}
		if burstLeft > 0 {
			v += rng.NormFloat64() * burstAmp
			burstLeft--
		}
		samples[i] = v
	}
}

// synthMusic overlays a song: sustained chord tones changing every ~0.5 s
// with beat-synchronous amplitude modulation. High amplitude variance,
// low-to-moderate zero-crossing-rate variance (pitch is stable within a
// note).
func synthMusic(seg []float64, rng *rand.Rand, rate float64) {
	noteLen := int(0.5 * rate)
	// Notes stay below ~440 Hz so even the 1.5x harmonic sits under the
	// siren detector's 750 Hz high-pass: recorded music does reach that
	// band, but the paper's siren condition distinguished sirens from
	// music, so the synthetic music must too.
	base := 220.0 * math.Pow(2, float64(rng.Intn(5))/12)
	freq := base
	for i := range seg {
		if i%noteLen == 0 {
			freq = base * math.Pow(2, float64(rng.Intn(8))/12)
		}
		t := float64(i) / rate
		beat := 0.6 + 0.4*math.Abs(math.Sin(2*math.Pi*1.0*t)) // 120 bpm pulse
		v := 0.28 * beat * (math.Sin(2*math.Pi*freq*t) + 0.5*math.Sin(2*math.Pi*freq*1.5*t))
		seg[i] += v
	}
}

// synthSpeech overlays speech: ~4 Hz syllable bursts alternating voiced
// (low-frequency, high energy) and unvoiced (noisy) sounds with pauses.
// High amplitude variance and high zero-crossing-rate variance.
func synthSpeech(seg []float64, rng *rand.Rand, rate float64) {
	i := 0
	for i < len(seg) {
		sylLen := int(jitter(rng, 0.22, 0.4) * rate)
		if i+sylLen > len(seg) {
			sylLen = len(seg) - i
		}
		voiced := rng.Float64() < 0.65
		pitch := jitter(rng, 160, 0.3)
		for j := 0; j < sylLen; j++ {
			u := float64(j) / float64(sylLen)
			env := 0.35 * bump(u)
			t := float64(i+j) / rate
			var v float64
			if voiced {
				v = env * (math.Sin(2*math.Pi*pitch*t) + 0.4*math.Sin(2*math.Pi*2*pitch*t))
			} else {
				v = env * rng.NormFloat64() * 0.8
			}
			seg[i+j] += v
		}
		i += sylLen
		// Inter-syllable / inter-word pause.
		pause := int(jitter(rng, 0.08, 0.6) * rate)
		if rng.Float64() < 0.15 {
			pause = int(jitter(rng, 0.4, 0.5) * rate) // word gap
		}
		i += pause
	}
}

// synthSiren overlays an emergency-vehicle siren: a strong tone sweeping
// within the 850-1800 Hz band the paper's detector targets (sounds must be
// pitched and last longer than 650 ms).
func synthSiren(seg []float64, rng *rand.Rand, rate float64) {
	// Real "wail" sirens sweep slowly (a 5-10 s period); a fast sweep
	// would smear the tone across FFT bins within one analysis window.
	sweepHz := jitter(rng, 0.15, 0.3)
	phase := rng.Float64() * 2 * math.Pi
	var phi float64
	for i := range seg {
		t := float64(i) / rate
		f := 1325 + 450*math.Sin(2*math.Pi*sweepHz*t+phase) // 875..1775 Hz
		phi += 2 * math.Pi * f / rate
		seg[i] += 0.6 * math.Sin(phi)
	}
}
