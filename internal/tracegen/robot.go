package tracegen

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"sidewinder/internal/core"
	"sidewinder/internal/sensor"
)

// RobotConfig parameterizes one synthetic robot run (paper §4.1, "Robotic
// accelerometer traces"). The accelerometer axes follow the paper's frame:
// x is the walking-impact axis, y points front-back (tilts toward +g when
// sitting, dips negative on headbutts), z points up-down (carries gravity
// while standing).
type RobotConfig struct {
	// Seed makes the run reproducible.
	Seed int64
	// Duration of the run; the paper's live runs took close to an hour,
	// its groups are defined by idle fraction, not length.
	Duration time.Duration
	// IdleFraction is the share of the run spent standing idle: 0.9 for
	// group 1, 0.5 for group 2, 0.1 for group 3.
	IdleFraction float64
	// RateHz is the accelerometer sampling rate (default
	// core.AccelRateHz).
	RateHz float64
	// Name labels the trace; a default is derived from the parameters.
	Name string
}

// Activity mix of the non-idle time (paper §4.1): 73% walking, 24%
// sit/stand transitions, 3% headbutts.
const (
	robotWalkShare       = 0.73
	robotTransitionShare = 0.24
	robotHeadbuttShare   = 0.03
)

// Physical signature constants. Values are chosen so the paper's detector
// parameter ranges apply verbatim (steps: local maxima of the low-passed
// x-axis in [2.5, 4.5] m/s²; postures: z in [9,11]/[7.5,9.5] and y in
// [-1,1]/[3.5,5.5]; headbutts: y minima in [-6.75, -3.75]).
const (
	gravity = 9.81

	standZ = 9.81
	standY = 0.0
	sitZ   = 8.5
	sitY   = 4.5

	stepPeriodSec = 0.55 // ~1.8 steps/s
	stepPeakMean  = 3.5  // m/s², inside [2.5, 4.5]
	stepPeakJit   = 0.15 // ±15%

	headbuttSec      = 0.6
	headbuttPeakMean = -5.2 // m/s², inside [-6.75, -3.75]
	headbuttPeakJit  = 0.12

	transitionSec   = 1.5
	transitionShake = 0.45 // extra body-motion noise during a transition

	idleNoise = 0.05
	walkNoise = 0.25
	walkYOsc  = 0.5 // lateral sway amplitude while walking
)

// robotPosture tracks whether the robot is standing or sitting.
type robotPosture int

const (
	standing robotPosture = iota
	sitting
)

// Robot synthesizes one scripted robot run. The action list is generated
// randomly from the configured activity budget, mirroring the paper's
// randomized run scripts, and every action logs its exact start/end as
// ground truth.
func Robot(cfg RobotConfig) (*sensor.Trace, error) {
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("tracegen: robot run duration must be positive")
	}
	if cfg.IdleFraction < 0 || cfg.IdleFraction >= 1 {
		return nil, fmt.Errorf("tracegen: idle fraction %g outside [0, 1)", cfg.IdleFraction)
	}
	rate := cfg.RateHz
	if rate == 0 {
		rate = core.AccelRateHz
	}
	name := cfg.Name
	if name == "" {
		name = fmt.Sprintf("robot-idle%02.0f-seed%d", cfg.IdleFraction*100, cfg.Seed)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	total := int(cfg.Duration.Seconds() * rate)

	g := &robotGen{
		rng:     rng,
		rate:    rate,
		x:       make([]float64, 0, total),
		y:       make([]float64, 0, total),
		z:       make([]float64, 0, total),
		posture: standing,
	}

	active := 1 - cfg.IdleFraction
	budget := map[string]int{
		LabelWalk:       int(float64(total) * active * robotWalkShare),
		LabelTransition: int(float64(total) * active * robotTransitionShare),
		LabelHeadbutt:   int(float64(total) * active * robotHeadbuttShare),
	}

	for len(g.x) < total {
		action := g.pickAction(budget, total-len(g.x))
		before := len(g.x)
		switch action {
		case LabelWalk:
			g.walk(jitter(rng, 6, 0.5)) // 3-9 s walking bouts
		case LabelTransition:
			g.transition()
		case LabelHeadbutt:
			g.headbutt()
		default:
			g.idle(jitter(rng, 4, 0.6)) // 1.6-6.4 s idle stretches
		}
		if action != "" {
			budget[action] -= len(g.x) - before
		}
	}

	tr := &sensor.Trace{
		Name:   name,
		RateHz: rate,
		Channels: map[core.SensorChannel][]float64{
			core.AccelX: g.x[:total],
			core.AccelY: g.y[:total],
			core.AccelZ: g.z[:total],
		},
		Events: clampEvents(g.events, total),
		Meta: map[string]string{
			"kind":          "robot",
			"idle_fraction": fmt.Sprintf("%g", cfg.IdleFraction),
		},
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("tracegen: generated invalid robot trace: %w", err)
	}
	return tr, nil
}

// PaperGroups returns the idle fractions of the paper's three run groups.
func PaperGroups() []float64 { return []float64{0.9, 0.5, 0.1} }

// PaperRobotRunSpecs returns the per-run configurations of the paper's
// 18-run set — 9 runs at 90% idle, 6 at 50% and 3 at 10% — plus each run's
// group number (1-3). Run seeds derive from the base seed
// deterministically, so the runs can be generated in any order (or in
// parallel) and still reproduce bit for bit.
func PaperRobotRunSpecs(seed int64, duration time.Duration) (configs []RobotConfig, groups []int) {
	counts := map[float64]int{0.9: 9, 0.5: 6, 0.1: 3}
	run := 0
	for gi, idle := range PaperGroups() {
		for i := 0; i < counts[idle]; i++ {
			configs = append(configs, RobotConfig{
				Seed:         seed + int64(run)*7919,
				Duration:     duration,
				IdleFraction: idle,
				Name:         fmt.Sprintf("robot-g%d-run%d", gi+1, i+1),
			})
			groups = append(groups, gi+1)
			run++
		}
	}
	return configs, groups
}

// PaperRobotRuns generates the paper's 18-run set serially. Callers that
// want the runs generated in parallel should fan PaperRobotRunSpecs
// through their own pool.
func PaperRobotRuns(seed int64, duration time.Duration) ([]*sensor.Trace, error) {
	configs, groups := PaperRobotRunSpecs(seed, duration)
	out := make([]*sensor.Trace, len(configs))
	for i, cfg := range configs {
		tr, err := Robot(cfg)
		if err != nil {
			return nil, err
		}
		tr.Meta["group"] = fmt.Sprintf("%d", groups[i])
		out[i] = tr
	}
	return out, nil
}

// robotGen accumulates the three axis streams and ground truth.
type robotGen struct {
	rng     *rand.Rand
	rate    float64
	x, y, z []float64
	events  []sensor.Event
	posture robotPosture
}

// pickAction selects the next scripted action proportionally to the
// remaining activity budgets; when all budgets are spent it idles.
func (g *robotGen) pickAction(budget map[string]int, remaining int) string {
	type cand struct {
		label string
		need  int
	}
	var cands []cand
	totalNeed := 0
	for _, label := range []string{LabelWalk, LabelTransition, LabelHeadbutt} {
		if budget[label] > 0 {
			cands = append(cands, cand{label, budget[label]})
			totalNeed += budget[label]
		}
	}
	if totalNeed == 0 {
		return ""
	}
	// Interleave idle so activity spreads over the run: the chance of an
	// active bout is proportional to how much activity remains relative
	// to remaining time.
	if float64(totalNeed) < float64(remaining) && g.rng.Float64() > float64(totalNeed)/float64(remaining)*1.5 {
		return ""
	}
	pick := g.rng.Intn(totalNeed)
	for _, c := range cands {
		if pick < c.need {
			return c.label
		}
		pick -= c.need
	}
	return ""
}

// postureBase returns the resting orientation for the current posture.
func (g *robotGen) postureBase() (y, z float64) {
	if g.posture == sitting {
		return sitY, sitZ
	}
	return standY, standZ
}

// emit appends one sample with N(0, sigma) noise on every axis.
func (g *robotGen) emit(x, y, z, sigma float64) {
	g.x = append(g.x, x+g.rng.NormFloat64()*sigma)
	g.y = append(g.y, y+g.rng.NormFloat64()*sigma)
	g.z = append(g.z, z+g.rng.NormFloat64()*sigma)
}

// Confounder rates per second of idle time. Real captures are not sterile:
// the robot scuffs a foot, something knocks the platform, the posture
// bounces. These unlabeled motions are what give the paper's classifiers
// their sub-100% precision (§5: Headbutts 89%, Transitions 91%, Walking
// 93%) and give wake-up conditions their "moderate precision" (§2.1.2).
const (
	scuffPerSec  = 1.0 / 80   // step-like x bump
	knockPerSec  = 1.0 / 1100 // headbutt-like y dip
	bouncePerSec = 1.0 / 1500 // brief posture bounce
)

// idle emits roughly sec seconds of resting samples in the current
// posture, sprinkled with rare unlabeled confounder motions.
func (g *robotGen) idle(sec float64) {
	end := len(g.x) + int(sec*g.rate)
	for len(g.x) < end {
		r := g.rng.Float64()
		switch {
		case r < scuffPerSec:
			g.scuff()
		case r < scuffPerSec+knockPerSec:
			g.knock()
		case r < scuffPerSec+knockPerSec+bouncePerSec && g.posture == standing:
			g.bounce()
		default:
			// One quiet second (or whatever remains of the stretch).
			baseY, baseZ := g.postureBase()
			n := int(g.rate)
			if left := end - len(g.x); left < n {
				n = left
			}
			for i := 0; i < n; i++ {
				g.emit(0, baseY, baseZ, idleNoise)
			}
		}
	}
}

// scuff emits a single step-like impact on the x axis: an unlabeled
// motion the step detector will count as a false positive.
func (g *robotGen) scuff() {
	baseY, baseZ := g.postureBase()
	peak := jitter(g.rng, 3.3, 0.2)
	n := int(0.5 * g.rate)
	for i := 0; i < n; i++ {
		u := float64(i) / float64(n)
		g.emit(peak*bump(u), baseY, baseZ, idleNoise*2)
	}
}

// knock emits a sharp negative y pulse in the headbutt detector's band:
// an unlabeled jolt to the platform.
func (g *robotGen) knock() {
	baseY, baseZ := g.postureBase()
	peak := jitter(g.rng, -4.4, 0.1)
	n := int(0.4 * g.rate)
	for i := 0; i < n; i++ {
		u := float64(i) / float64(n)
		g.emit(0.2*bump(u), baseY+peak*bump(u), baseZ-0.3*bump(u), idleNoise*2)
	}
}

// bounce briefly dips a standing robot into the sitting orientation band
// and back: long enough for the posture classifier to see a flip, which
// the ground truth does not record.
func (g *robotGen) bounce() {
	n := int(2.2 * g.rate)
	for i := 0; i < n; i++ {
		u := float64(i) / float64(n)
		s := bump(u) // 0 -> 1 -> 0
		y := standY + (sitY-standY)*s
		z := standZ + (sitZ-standZ)*s
		g.emit(0.3*bump(u), y, z, idleNoise+0.3*bump(u))
	}
}

// walk emits a walking bout of roughly sec seconds as a sequence of step
// impulses on the x axis, each labeled as a ground-truth step; the whole
// bout is additionally labeled as a walk segment. A sitting robot stands up
// first (emitting a transition).
func (g *robotGen) walk(sec float64) {
	if g.posture == sitting {
		g.transition()
	}
	start := len(g.x)
	stepSamples := int(stepPeriodSec * g.rate)
	steps := int(sec / stepPeriodSec)
	if steps < 1 {
		steps = 1
	}
	for s := 0; s < steps; s++ {
		peak := jitter(g.rng, stepPeakMean, stepPeakJit)
		phase := g.rng.Float64() * 2 * math.Pi
		stepStart := len(g.x)
		for i := 0; i < stepSamples; i++ {
			u := float64(i) / float64(stepSamples)
			x := peak * bump(u)
			y := standY + walkYOsc*math.Sin(2*math.Pi*u+phase)
			z := standZ + 0.2*math.Sin(4*math.Pi*u)
			g.emit(x, y, z, walkNoise)
		}
		g.events = append(g.events, sensor.Event{Label: LabelStep, Start: stepStart, End: len(g.x)})
	}
	g.events = insertSorted(g.events, sensor.Event{Label: LabelWalk, Start: start, End: len(g.x)})
}

// transition emits a sit-to-stand or stand-to-sit posture change with the
// body shake real transitions exhibit, and flips the posture.
func (g *robotGen) transition() {
	fromY, fromZ := g.postureBase()
	if g.posture == standing {
		g.posture = sitting
	} else {
		g.posture = standing
	}
	toY, toZ := g.postureBase()
	start := len(g.x)
	n := int(transitionSec * g.rate)
	for i := 0; i < n; i++ {
		u := float64(i) / float64(n)
		s := smoothstep(u)
		y := fromY + (toY-fromY)*s
		z := fromZ + (toZ-fromZ)*s
		// Body-motion shake peaks mid-transition.
		g.emit(0.4*bump(u), y, z, idleNoise+transitionShake*bump(u))
	}
	g.events = append(g.events, sensor.Event{Label: LabelTransition, Start: start, End: len(g.x)})
}

// headbutt emits a sudden forward head movement: a sharp negative y pulse.
// A sitting robot stands up first.
func (g *robotGen) headbutt() {
	if g.posture == sitting {
		g.transition()
	}
	start := len(g.x)
	peak := jitter(g.rng, headbuttPeakMean, headbuttPeakJit)
	n := int(headbuttSec * g.rate)
	for i := 0; i < n; i++ {
		u := float64(i) / float64(n)
		g.emit(0.3*bump(u), standY+peak*bump(u), standZ-0.5*bump(u), idleNoise*2)
	}
	g.events = append(g.events, sensor.Event{Label: LabelHeadbutt, Start: start, End: len(g.x)})
}

// insertSorted inserts e keeping events ordered by start index.
func insertSorted(events []sensor.Event, e sensor.Event) []sensor.Event {
	i := len(events)
	for i > 0 && events[i-1].Start > e.Start {
		i--
	}
	events = append(events, sensor.Event{})
	copy(events[i+1:], events[i:])
	events[i] = e
	return events
}

// clampEvents drops or trims events extending past the trace end.
func clampEvents(events []sensor.Event, total int) []sensor.Event {
	var out []sensor.Event
	for _, e := range events {
		if e.Start >= total {
			continue
		}
		if e.End > total {
			e.End = total
		}
		if e.End > e.Start {
			out = append(out, e)
		}
	}
	return out
}
