package fleetd

import (
	"fmt"
	"sort"
	"sync"

	"sidewinder/internal/telemetry"
)

// Registry is the sharded device state store. Devices hash to shards by
// FNV-1a over their ID; each shard owns a mutex and a map, so ingest from
// thousands of connections contends only within a shard. All per-device
// ordering guarantees the daemon makes (energy accumulation order equals
// send order) follow from one fact: every frame of a device hashes to the
// same shard and is applied by that shard's single worker in queue order.
type Registry struct {
	shards []registryShard
	ncomp  int // number of telemetry components (EnergyMJ length)
}

type registryShard struct {
	mu      sync.Mutex
	devices map[uint64]*deviceState
}

// deviceState is the mutable per-device record, guarded by its shard's
// mutex.
type deviceState struct {
	id         uint64
	wakes      uint64
	heartbeats uint64
	sheds      uint64
	shedMJ     float64
	energyMJ   []float64 // indexed by telemetry.Component
	lastSeq    uint32
	epoch      uint32 // device-reported boot epoch (from heartbeats)
	conns      int    // live connections for this device
	// ackedSeq is the dedup watermark: the highest CONTIGUOUS seq the
	// server has acknowledged as accepted (enqueued or applied). A frame
	// at or below it — or in ackedAbove — is a retransmit and must not be
	// re-applied. Contiguity matters because sheds punch holes in the seq
	// space: a shed frame was never accepted, so the watermark must not
	// sweep past it and dedup a legitimate retry.
	ackedSeq   uint32
	ackedAbove map[uint32]struct{} // accepted seqs above ackedSeq (holes from sheds)
	// appliedSeq is the durability watermark: the highest contiguous seq
	// a shard worker has actually applied to this record. It is what
	// checkpoints persist — after an ungraceful restart the acked
	// watermark rolls back to it, so acked-but-unapplied events are
	// retransmitted and re-applied rather than lost.
	appliedSeq   uint32
	appliedAbove map[uint32]struct{}
}

// advance merges seq into a contiguous watermark plus sparse-above set,
// returning the new watermark. Duplicate and below-watermark seqs are
// no-ops.
func advance(mark uint32, above map[uint32]struct{}, seq uint32) uint32 {
	if seq <= mark {
		return mark
	}
	if seq != mark+1 {
		above[seq] = struct{}{}
		return mark
	}
	mark = seq
	for {
		if _, ok := above[mark+1]; !ok {
			return mark
		}
		mark++
		delete(above, mark)
	}
}

// DeviceStats is one device's exported state.
type DeviceStats struct {
	ID         uint64    `json:"id"`
	Wakes      uint64    `json:"wakes"`
	Heartbeats uint64    `json:"heartbeats"`
	Sheds      uint64    `json:"sheds,omitempty"`
	ShedMJ     float64   `json:"shed_mj,omitempty"`
	EnergyMJ   []float64 `json:"energy_mj"` // indexed by telemetry.Component
	TotalMJ    float64   `json:"total_mj"`
	LastSeq    uint32    `json:"last_seq"`
	Epoch      uint32    `json:"epoch,omitempty"`
	Connected  bool      `json:"connected,omitempty"`
	AckedSeq   uint32    `json:"acked_seq,omitempty"`   // in-memory dedup watermark
	AppliedSeq uint32    `json:"applied_seq,omitempty"` // durable resume watermark
	// AppliedAbove lists applied seqs above AppliedSeq (sheds punch holes
	// in the contiguous watermark). The checkpointed totals include these
	// events, so the set must persist with them: without it a restart
	// would treat their retransmits as fresh and double-count energy the
	// checkpoint already holds.
	AppliedAbove []uint32 `json:"applied_above,omitempty"`
}

// NewRegistry returns a registry with the given shard count (minimum 1).
func NewRegistry(shards int) *Registry {
	if shards < 1 {
		shards = 1
	}
	r := &Registry{
		shards: make([]registryShard, shards),
		ncomp:  len(telemetry.Components()),
	}
	for i := range r.shards {
		r.shards[i].devices = make(map[uint64]*deviceState)
	}
	return r
}

// Shards returns the shard count.
func (r *Registry) Shards() int { return len(r.shards) }

// ShardIndex maps a device ID to its shard: FNV-1a over the ID's eight
// little-endian bytes. Consistent for the registry's lifetime, so a
// device's frames always serialize through one shard worker.
func (r *Registry) ShardIndex(deviceID uint64) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= (deviceID >> (8 * i)) & 0xFF
		h *= prime64
	}
	return int(h % uint64(len(r.shards)))
}

// shardFor returns the shard owning a device.
func (r *Registry) shardFor(deviceID uint64) *registryShard {
	return &r.shards[r.ShardIndex(deviceID)]
}

// get returns the device record, creating it if needed. Caller must NOT
// hold the shard lock; get takes it.
func (s *registryShard) get(r *Registry, id uint64) *deviceState {
	if d, ok := s.devices[id]; ok {
		return d
	}
	d := &deviceState{
		id:           id,
		energyMJ:     make([]float64, r.ncomp),
		ackedAbove:   make(map[uint32]struct{}),
		appliedAbove: make(map[uint32]struct{}),
	}
	s.devices[id] = d
	return d
}

// Connect registers a live connection for the device, creating the record
// on first contact. Returns true when this is the device's first contact
// ever (a fresh record).
func (r *Registry) Connect(deviceID uint64) (fresh bool) {
	s := r.shardFor(deviceID)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, existed := s.devices[deviceID]
	d := s.get(r, deviceID)
	d.conns++
	return !existed
}

// Disconnect drops a live connection for the device.
func (r *Registry) Disconnect(deviceID uint64) {
	s := r.shardFor(deviceID)
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.devices[deviceID]; ok && d.conns > 0 {
		d.conns--
	}
}

// RecordHeartbeat applies a device heartbeat: bumps the count, tracks the
// latest seq and the device's boot epoch. Heartbeats ride the shard queue
// like every other event so each device's state mutations happen in
// sequence order — the property the resume watermark depends on.
func (r *Registry) RecordHeartbeat(deviceID uint64, hb Heartbeat) {
	s := r.shardFor(deviceID)
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.get(r, deviceID)
	d.heartbeats++
	d.lastSeq = hb.Seq
	d.epoch = hb.Epoch
	d.appliedSeq = advance(d.appliedSeq, d.appliedAbove, hb.Seq)
}

// MarkAcked advances the device's acked watermark. Called by the
// connection reader the moment an accepted acknowledgement is issued
// (i.e. the event is durably enqueued): from then on the same seq is a
// duplicate and will never be re-applied.
func (r *Registry) MarkAcked(deviceID uint64, seq uint32) {
	s := r.shardFor(deviceID)
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.get(r, deviceID)
	d.ackedSeq = advance(d.ackedSeq, d.ackedAbove, seq)
}

// AlreadyAcked reports whether the seq was already accepted — at or below
// the device's contiguous acked watermark, or in the sparse accepted set
// above it. Such a frame is a retransmit the server must acknowledge
// without re-applying.
func (r *Registry) AlreadyAcked(deviceID uint64, seq uint32) bool {
	s := r.shardFor(deviceID)
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.devices[deviceID]
	if !ok {
		return false
	}
	if seq <= d.ackedSeq {
		return true
	}
	_, above := d.ackedAbove[seq]
	return above
}

// AckedSeq returns the device's acked watermark (0 for unknown devices):
// the figure a resume-ack hands back so the client knows exactly where to
// restart its transmission.
func (r *Registry) AckedSeq(deviceID uint64) uint32 {
	s := r.shardFor(deviceID)
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.devices[deviceID]; ok {
		return d.ackedSeq
	}
	return 0
}

// RecordShed counts a backpressure refusal and bills its fallback energy
// against the device. Called from the connection reader on the shed path;
// the shard lock (not the queue) serializes it against the worker.
func (r *Registry) RecordShed(deviceID uint64, mj float64) {
	s := r.shardFor(deviceID)
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.get(r, deviceID)
	d.sheds++
	d.shedMJ += mj
}

// applyWake applies one queued wake event (shard worker only).
func (r *Registry) applyWake(deviceID uint64, w WakeEvent) {
	s := r.shardFor(deviceID)
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.get(r, deviceID)
	d.wakes++
	d.lastSeq = w.Seq
	d.appliedSeq = advance(d.appliedSeq, d.appliedAbove, w.Seq)
}

// applyEnergy applies one queued energy deposit (shard worker only). The
// per-device accumulation order is the device's send order, which is what
// makes daemon totals bit-identical to a batch replay of the same frames.
func (r *Registry) applyEnergy(deviceID uint64, e EnergyEvent) {
	s := r.shardFor(deviceID)
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.get(r, deviceID)
	d.energyMJ[e.Component] += e.MJ
	d.lastSeq = e.Seq
	d.appliedSeq = advance(d.appliedSeq, d.appliedAbove, e.Seq)
}

// summarize builds the bye-ack summary for a device under the shard lock.
func (r *Registry) summarize(deviceID uint64, seq uint32) DeviceSummary {
	s := r.shardFor(deviceID)
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.devices[deviceID]
	if !ok {
		return DeviceSummary{Seq: seq}
	}
	sum := DeviceSummary{
		Seq:        seq,
		Wakes:      d.wakes,
		Heartbeats: d.heartbeats,
		Sheds:      d.sheds,
		ShedMJ:     d.shedMJ,
	}
	for c, v := range d.energyMJ {
		if v != 0 {
			sum.Energy = append(sum.Energy, ComponentMJ{Component: telemetry.Component(c), MJ: v})
		}
	}
	return sum
}

// restore seeds a device record from a checkpoint (startup only, before
// any connection is accepted).
func (r *Registry) restore(st DeviceStats) error {
	if len(st.EnergyMJ) > r.ncomp {
		return fmt.Errorf("fleetd: checkpoint device %d has %d energy components, registry supports %d",
			st.ID, len(st.EnergyMJ), r.ncomp)
	}
	s := r.shardFor(st.ID)
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.get(r, st.ID)
	d.wakes = st.Wakes
	d.heartbeats = st.Heartbeats
	d.sheds = st.Sheds
	d.shedMJ = st.ShedMJ
	copy(d.energyMJ, st.EnergyMJ)
	d.lastSeq = st.LastSeq
	d.epoch = st.Epoch
	// Both watermarks restart at the durable applied state: anything
	// acked beyond it before the restart was lost with the process, so it
	// must be retransmitted and re-applied — never deduplicated away. The
	// applied state includes the sparse above-hole set: those events are
	// in the checkpointed totals, so their retransmits must dedup as
	// duplicates, not re-apply.
	d.ackedSeq = st.AppliedSeq
	d.appliedSeq = st.AppliedSeq
	for _, seq := range st.AppliedAbove {
		d.appliedSeq = advance(d.appliedSeq, d.appliedAbove, seq)
		d.ackedSeq = advance(d.ackedSeq, d.ackedAbove, seq)
	}
	return nil
}

// Len returns the number of known devices across all shards.
func (r *Registry) Len() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		n += len(s.devices)
		s.mu.Unlock()
	}
	return n
}

// Connected returns the number of devices with at least one live
// connection.
func (r *Registry) Connected() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for _, d := range s.devices {
			if d.conns > 0 {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// Snapshot exports every device in ascending ID order. Shards are
// snapshotted one at a time — the result is per-device consistent (each
// record copied under its shard lock), which is the granularity the
// checkpoint and the identity tests need.
func (r *Registry) Snapshot() []DeviceStats {
	var out []DeviceStats
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for _, d := range s.devices {
			st := DeviceStats{
				ID:         d.id,
				Wakes:      d.wakes,
				Heartbeats: d.heartbeats,
				Sheds:      d.sheds,
				ShedMJ:     d.shedMJ,
				EnergyMJ:   append([]float64(nil), d.energyMJ...),
				LastSeq:    d.lastSeq,
				Epoch:      d.epoch,
				Connected:  d.conns > 0,
				AckedSeq:   d.ackedSeq,
				AppliedSeq: d.appliedSeq,
			}
			if len(d.appliedAbove) > 0 {
				st.AppliedAbove = make([]uint32, 0, len(d.appliedAbove))
				for seq := range d.appliedAbove {
					st.AppliedAbove = append(st.AppliedAbove, seq)
				}
				// Sorted for a deterministic checkpoint encoding.
				sort.Slice(st.AppliedAbove, func(i, j int) bool { return st.AppliedAbove[i] < st.AppliedAbove[j] })
			}
			for _, v := range d.energyMJ {
				st.TotalMJ += v
			}
			out = append(out, st)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
