package fleetd

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"sidewinder/internal/telemetry"
)

// Checkpoint is the daemon's durable state: every device's totals, the
// ledger snapshot, and the boot epoch. It is written periodically and on
// drain, always via temp-file + rename so a crash mid-write leaves the
// previous checkpoint intact, and reloaded on startup (bumping the
// epoch) so device totals survive a restart.
//
// On disk a checkpoint is wrapped in a CRC-32 envelope and the previous
// good file is rotated to <path>.bak before each write, so a truncated or
// bit-flipped newest checkpoint falls back to the previous snapshot
// instead of silently resetting the fleet's totals.
type Checkpoint struct {
	Epoch             uint32                   `json:"epoch"`
	Devices           []DeviceStats            `json:"devices"`
	Ledger            telemetry.LedgerSnapshot `json:"ledger"`
	ConservationErrMJ float64                  `json:"conservation_err_mj"`
}

// checkpointFormat identifies the CRC-enveloped on-disk layout.
const checkpointFormat = 2

// BakSuffix is appended to a checkpoint path for the rotated previous
// snapshot.
const BakSuffix = ".bak"

// checkpointEnvelope is the on-disk wrapper: the checkpoint JSON as a raw
// message plus its CRC-32 (IEEE), so any torn write or in-place bit damage
// is detected at load rather than trusted. The CRC covers the COMPACT
// form of the body — JSON encoders are free to re-indent an embedded raw
// message, so whitespace cannot be part of the integrity contract.
type checkpointEnvelope struct {
	Format int             `json:"format"`
	CRC32  uint32          `json:"crc32_ieee"`
	Data   json.RawMessage `json:"checkpoint"`
}

// checkpointCRC is the envelope checksum: CRC-32 (IEEE) over the compact
// rendering of the checkpoint JSON.
func checkpointCRC(data []byte) (uint32, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, data); err != nil {
		return 0, err
	}
	return crc32.ChecksumIEEE(buf.Bytes()), nil
}

// ErrCheckpointCorrupt marks a checkpoint file that exists but cannot be
// trusted: torn JSON, a failed CRC, or an unknown format.
var ErrCheckpointCorrupt = errors.New("fleetd: checkpoint corrupt")

// WriteCheckpoint atomically writes the checkpoint: the JSON body is
// wrapped in a CRC-32 envelope, staged in a temp file, and the previous
// checkpoint (if any) is rotated to <path>.bak before the rename lands —
// at every instant the chain holds at least one intact snapshot.
func WriteCheckpoint(path string, cp Checkpoint) error {
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return fmt.Errorf("fleetd: encoding checkpoint: %w", err)
	}
	crc, err := checkpointCRC(data)
	if err != nil {
		return fmt.Errorf("fleetd: encoding checkpoint: %w", err)
	}
	env := checkpointEnvelope{Format: checkpointFormat, CRC32: crc, Data: data}
	wire, err := json.MarshalIndent(env, "", " ")
	if err != nil {
		return fmt.Errorf("fleetd: encoding checkpoint envelope: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*")
	if err != nil {
		return fmt.Errorf("fleetd: checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(append(wire, '\n'))
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fleetd: writing checkpoint: %w", werr)
	}
	// Rotate the current checkpoint to .bak before committing the new
	// one — but only after verifying it: rotating a corrupt newest file
	// (the very one startup fell back past) would bury the last good .bak
	// under damage, and a crash before the final rename would then leave
	// the whole chain corrupt. A damaged newest file is deleted instead,
	// so at every instant the chain holds at least one intact snapshot; a
	// crash between the two renames leaves .bak as the newest intact
	// snapshot, which LoadCheckpoint accepts cleanly.
	if _, err := readCheckpointFile(path); err == nil {
		if err := os.Rename(path, path+BakSuffix); err != nil {
			os.Remove(tmpName)
			return fmt.Errorf("fleetd: rotating checkpoint: %w", err)
		}
	} else if !os.IsNotExist(err) {
		os.Remove(path)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fleetd: committing checkpoint: %w", err)
	}
	return nil
}

// readCheckpointFile loads and verifies one file of the chain. It accepts
// both the CRC-enveloped format and the legacy bare-JSON layout (from
// checkpoints written before the envelope existed).
func readCheckpointFile(path string) (Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Checkpoint{}, err
	}
	var env checkpointEnvelope
	if jerr := json.Unmarshal(data, &env); jerr == nil && len(env.Data) > 0 {
		if env.Format != checkpointFormat {
			return Checkpoint{}, fmt.Errorf("%w: %s: unknown format %d", ErrCheckpointCorrupt, path, env.Format)
		}
		got, cerr := checkpointCRC(env.Data)
		if cerr != nil {
			return Checkpoint{}, fmt.Errorf("%w: %s: %v", ErrCheckpointCorrupt, path, cerr)
		}
		if got != env.CRC32 {
			return Checkpoint{}, fmt.Errorf("%w: %s: crc32 %08x, want %08x", ErrCheckpointCorrupt, path, got, env.CRC32)
		}
		var cp Checkpoint
		if err := json.Unmarshal(env.Data, &cp); err != nil {
			return Checkpoint{}, fmt.Errorf("%w: %s: %v", ErrCheckpointCorrupt, path, err)
		}
		return cp, nil
	}
	// Legacy layout: the checkpoint object at the top level, no CRC. A
	// valid legacy file always carries a non-zero epoch; anything else is
	// damage, not an empty fleet.
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil || cp.Epoch == 0 {
		return Checkpoint{}, fmt.Errorf("%w: %s: not a checkpoint (torn write or bit damage)", ErrCheckpointCorrupt, path)
	}
	return cp, nil
}

// CheckpointLoadInfo reports where LoadCheckpointDetail found its
// snapshot.
type CheckpointLoadInfo struct {
	// Source is the file the returned checkpoint came from ("" when none
	// was found).
	Source string
	// FellBack is true when the newest checkpoint was corrupt or
	// unreadable and the .bak snapshot was used instead.
	FellBack bool
	// MainErr holds the newest file's load error when FellBack is true.
	MainErr error
}

// LoadCheckpoint reads the checkpoint chain: the newest file first, then
// <path>.bak when the newest is corrupt or torn. A missing chain is not
// an error (fresh daemon): it returns ok=false. A chain where every
// present file is corrupt returns the error — a daemon must never
// silently reset totals that were supposed to be durable.
func LoadCheckpoint(path string) (Checkpoint, bool, error) {
	cp, info, err := LoadCheckpointDetail(path)
	return cp, info.Source != "", err
}

// LoadCheckpointDetail is LoadCheckpoint with provenance: which file of
// the chain the snapshot came from and whether the newest was rejected.
func LoadCheckpointDetail(path string) (Checkpoint, CheckpointLoadInfo, error) {
	cp, mainErr := readCheckpointFile(path)
	if mainErr == nil {
		return cp, CheckpointLoadInfo{Source: path}, nil
	}
	mainMissing := os.IsNotExist(mainErr)
	bak := path + BakSuffix
	bcp, bakErr := readCheckpointFile(bak)
	if bakErr == nil {
		if mainMissing {
			// Crash between the two rotation renames: .bak is simply the
			// newest intact snapshot, not a degraded fallback.
			return bcp, CheckpointLoadInfo{Source: bak}, nil
		}
		return bcp, CheckpointLoadInfo{Source: bak, FellBack: true, MainErr: mainErr}, nil
	}
	if mainMissing && os.IsNotExist(bakErr) {
		return Checkpoint{}, CheckpointLoadInfo{}, nil
	}
	if mainMissing {
		return Checkpoint{}, CheckpointLoadInfo{}, fmt.Errorf("fleetd: loading checkpoint %s: %w", bak, bakErr)
	}
	return Checkpoint{}, CheckpointLoadInfo{}, fmt.Errorf("fleetd: loading checkpoint %s (and %s): %w", path, bak, mainErr)
}
