package fleetd

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"sidewinder/internal/telemetry"
)

// Checkpoint is the daemon's durable state: every device's totals, the
// ledger snapshot, and the boot epoch. It is written periodically and on
// drain, always via temp-file + rename so a crash mid-write leaves the
// previous checkpoint intact, and reloaded on startup (bumping the
// epoch) so device totals survive a restart.
type Checkpoint struct {
	Epoch             uint32                   `json:"epoch"`
	Devices           []DeviceStats            `json:"devices"`
	Ledger            telemetry.LedgerSnapshot `json:"ledger"`
	ConservationErrMJ float64                  `json:"conservation_err_mj"`
}

// WriteCheckpoint atomically writes the checkpoint as JSON.
func WriteCheckpoint(path string, cp Checkpoint) error {
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return fmt.Errorf("fleetd: encoding checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*")
	if err != nil {
		return fmt.Errorf("fleetd: checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fleetd: writing checkpoint: %w", werr)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fleetd: committing checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint file. A missing file is not an error:
// it returns a zero checkpoint and ok=false.
func LoadCheckpoint(path string) (Checkpoint, bool, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return Checkpoint{}, false, nil
	}
	if err != nil {
		return Checkpoint{}, false, fmt.Errorf("fleetd: reading checkpoint: %w", err)
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return Checkpoint{}, false, fmt.Errorf("fleetd: decoding checkpoint %s: %w", path, err)
	}
	return cp, true, nil
}
