package fleetd

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"sidewinder/internal/telemetry"
)

func testCheckpoint(epoch uint32, wakes uint64) Checkpoint {
	return Checkpoint{
		Epoch: epoch,
		Devices: []DeviceStats{{
			ID: 7, Wakes: wakes, EnergyMJ: []float64{1.5, 0, 2.25}, TotalMJ: 3.75,
			LastSeq: 45, AppliedSeq: 40, AppliedAbove: []uint32{43, 45},
		}},
		Ledger: telemetry.LedgerSnapshot{TotalMJ: 3.75},
	}
}

func TestCheckpointRoundTripAndRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.checkpoint")

	if err := WriteCheckpoint(path, testCheckpoint(1, 10)); err != nil {
		t.Fatalf("WriteCheckpoint #1: %v", err)
	}
	if _, err := os.Stat(path + BakSuffix); !os.IsNotExist(err) {
		t.Fatalf("first write must not create a .bak (err %v)", err)
	}
	if err := WriteCheckpoint(path, testCheckpoint(2, 20)); err != nil {
		t.Fatalf("WriteCheckpoint #2: %v", err)
	}

	cp, ok, err := LoadCheckpoint(path)
	if err != nil || !ok {
		t.Fatalf("LoadCheckpoint: ok=%v err=%v", ok, err)
	}
	if cp.Epoch != 2 || cp.Devices[0].Wakes != 20 {
		t.Fatalf("newest checkpoint = epoch %d wakes %d, want 2/20", cp.Epoch, cp.Devices[0].Wakes)
	}
	if math.Float64bits(cp.Devices[0].EnergyMJ[2]) != math.Float64bits(2.25) {
		t.Fatalf("energy not bit-exact after round trip: %v", cp.Devices[0].EnergyMJ)
	}
	if got := cp.Devices[0].AppliedAbove; len(got) != 2 || got[0] != 43 || got[1] != 45 {
		t.Fatalf("applied-above set did not survive the round trip: %v", got)
	}
	bak, _, err := LoadCheckpointDetail(path + BakSuffix)
	if err != nil || bak.Epoch != 1 {
		t.Fatalf(".bak should hold the previous snapshot (epoch %d, err %v)", bak.Epoch, err)
	}
}

func TestLoadCheckpointMissingChain(t *testing.T) {
	cp, ok, err := LoadCheckpoint(filepath.Join(t.TempDir(), "nope.checkpoint"))
	if err != nil || ok {
		t.Fatalf("missing chain: ok=%v err=%v", ok, err)
	}
	if cp.Epoch != 0 {
		t.Fatalf("missing chain returned a checkpoint: %+v", cp)
	}
}

func TestLoadCheckpointCorruptFallsBackToBak(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.checkpoint")
	if err := WriteCheckpoint(path, testCheckpoint(1, 10)); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := WriteCheckpoint(path, testCheckpoint(2, 20)); err != nil {
		t.Fatalf("write: %v", err)
	}

	for name, damage := range map[string]func([]byte) []byte{
		"truncated JSON": func(b []byte) []byte { return b[:len(b)/2] },
		"garbage":        func([]byte) []byte { return []byte("!!not json at all##") },
		"empty":          func([]byte) []byte { return nil },
		"bit flip": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			// Flip a bit inside the embedded checkpoint body, past the
			// envelope header, so the CRC — not the JSON parser — catches it.
			c[len(c)/2] ^= 0x01
			return c
		},
	} {
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		if err := os.WriteFile(path, damage(orig), 0o644); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		cp, info, err := LoadCheckpointDetail(path)
		if err != nil {
			t.Fatalf("%s: chain with intact .bak must load: %v", name, err)
		}
		if !info.FellBack || info.Source != path+BakSuffix {
			t.Fatalf("%s: expected fallback to .bak, got %+v", name, info)
		}
		if info.MainErr == nil || cp.Epoch != 1 {
			t.Fatalf("%s: fallback loaded epoch %d (mainErr %v), want 1", name, cp.Epoch, info.MainErr)
		}
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatalf("%s: restore: %v", name, err)
		}
	}
}

// TestWriteCheckpointDoesNotRotateCorruptNewest: after a startup that
// fell back to .bak because the newest file was damaged, the next write
// must not rename that damaged file over the last good .bak — a crash
// between the rotation renames would then leave the whole chain corrupt.
// Damage is deleted, not rotated.
func TestWriteCheckpointDoesNotRotateCorruptNewest(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.checkpoint")
	if err := WriteCheckpoint(path, testCheckpoint(1, 10)); err != nil {
		t.Fatalf("write #1: %v", err)
	}
	if err := WriteCheckpoint(path, testCheckpoint(2, 20)); err != nil {
		t.Fatalf("write #2: %v", err)
	}
	if err := os.WriteFile(path, []byte("!!bit damage!!"), 0o644); err != nil {
		t.Fatalf("corrupt newest: %v", err)
	}

	if err := WriteCheckpoint(path, testCheckpoint(3, 30)); err != nil {
		t.Fatalf("write over corrupt newest: %v", err)
	}
	bak, err := readCheckpointFile(path + BakSuffix)
	if err != nil {
		t.Fatalf(".bak destroyed by rotating a corrupt newest file: %v", err)
	}
	if bak.Epoch != 1 {
		t.Fatalf(".bak epoch = %d, want 1 (the last good snapshot, not the damage)", bak.Epoch)
	}
	cp, ok, err := LoadCheckpoint(path)
	if err != nil || !ok || cp.Epoch != 3 {
		t.Fatalf("newest after write = ok=%v err=%v epoch=%d, want true/nil/3", ok, err, cp.Epoch)
	}
}

func TestLoadCheckpointWholeChainCorruptIsAnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.checkpoint")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := os.WriteFile(path+BakSuffix, []byte("{\"torn\":"), 0o644); err != nil {
		t.Fatalf("write bak: %v", err)
	}
	_, ok, err := LoadCheckpoint(path)
	if err == nil {
		t.Fatalf("whole chain corrupt must be an error (ok=%v) — a daemon must not silently reset totals", ok)
	}
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("error should wrap ErrCheckpointCorrupt: %v", err)
	}
}

func TestLoadCheckpointBakOnlyIsClean(t *testing.T) {
	// Crash between the two rotation renames: main is missing, .bak is the
	// newest intact snapshot. Loading it is not a degraded fallback.
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.checkpoint")
	if err := WriteCheckpoint(path+BakSuffix, testCheckpoint(3, 30)); err != nil {
		t.Fatalf("write bak: %v", err)
	}
	cp, info, err := LoadCheckpointDetail(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if info.FellBack {
		t.Fatalf("bak-only chain must not count as a fallback: %+v", info)
	}
	if info.Source != path+BakSuffix || cp.Epoch != 3 {
		t.Fatalf("loaded %+v epoch %d, want .bak epoch 3", info, cp.Epoch)
	}
}

func TestLoadCheckpointLegacyBareJSON(t *testing.T) {
	// Checkpoints written before the CRC envelope: bare Checkpoint JSON at
	// the top level. Still loadable — but only with a non-zero epoch, the
	// marker that distinguishes a real legacy file from damage.
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.checkpoint")
	data, err := json.Marshal(testCheckpoint(5, 50))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	cp, ok, err := LoadCheckpoint(path)
	if err != nil || !ok || cp.Epoch != 5 {
		t.Fatalf("legacy load: ok=%v err=%v epoch=%d, want true/nil/5", ok, err, cp.Epoch)
	}

	// Zero-epoch "legacy" content is damage, not an empty fleet.
	if err := os.WriteFile(path, []byte(`{"epoch":0,"devices":null}`), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, _, err := LoadCheckpoint(path); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("zero-epoch bare JSON should be corrupt, got %v", err)
	}
}
