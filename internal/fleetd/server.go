package fleetd

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"sidewinder/internal/link"
	"sidewinder/internal/telemetry"
)

// DefaultShedWakeCostMJ is the fallback energy billed when a wake event
// is shed: the device must surface the wake locally, which on the paper's
// Table 1 numbers costs one asleep→awake transition (384 mW · 1 s), one
// second awake to deliver it (323 mW) and the fall back to sleep
// (341 mW · 1 s) — about 1048 mJ of main-processor energy the hub-of-hubs
// failed to absorb.
const DefaultShedWakeCostMJ = 1048.0

// Self-protection defaults: a silent session holds a goroutine and a
// registry slot, so it is reaped; a stuck client must not block a flush
// forever; and the session cap bounds daemon memory under a dial storm.
const (
	DefaultIdleTimeout  = 2 * time.Minute
	DefaultWriteTimeout = 10 * time.Second
	DefaultMaxSessions  = 8192
)

// Config parameterizes the ingest daemon.
type Config struct {
	// Addr is the TCP listen address (default 127.0.0.1:7473; use
	// host:0 for an ephemeral port).
	Addr string
	// Shards is the registry/queue shard count (default 16).
	Shards int
	// QueueDepth bounds each shard's ingest queue (default 1024). A full
	// queue sheds: the frame is refused with AckShed, counted and billed.
	QueueDepth int
	// FlushEvery batches this many energy deposits per shard before one
	// ledger flush (default 64). Batches also flush whenever a shard
	// queue empties, so the ledger never lags an idle fleet.
	FlushEvery int
	// CheckpointPath, when set, is loaded on startup (device totals
	// survive restarts; the epoch bumps) and rewritten atomically every
	// CheckpointEvery and on drain. Each write rotates the previous file
	// to CheckpointPath+".bak"; a corrupt newest file falls back to it.
	CheckpointPath string
	// CheckpointEvery is the periodic checkpoint interval (default 10 s;
	// ignored without CheckpointPath).
	CheckpointEvery time.Duration
	// HTTPAddr, when set, serves the observability endpoints: /metrics
	// (registry text), /metrics.json, /ledger, /snapshot (checkpoint
	// JSON), /healthz.
	HTTPAddr string
	// ShedWakeCostMJ overrides the fallback billing per shed wake
	// (default DefaultShedWakeCostMJ).
	ShedWakeCostMJ float64
	// IdleTimeout reaps sessions that go silent: every read arms a
	// deadline this far out, so a half-open or stalled client releases
	// its goroutine and connection instead of pinning them forever
	// (default 2 min; counted as fleetd.idle_reaps).
	IdleTimeout time.Duration
	// WriteTimeout bounds each flush toward a client (default 10 s): a
	// peer that stops reading its acks cannot wedge a server goroutine.
	WriteTimeout time.Duration
	// MaxSessions caps concurrent device connections (default 8192).
	// Connections beyond the cap are closed immediately and counted
	// (fleetd.session_rejects) — explicit, visible load shedding rather
	// than unbounded goroutine growth.
	MaxSessions int
	// Telemetry supplies the sinks. Nil Metrics/Ledger fields are
	// replaced with fresh ones: the daemon cannot run blind, its
	// conservation contract is measured on these.
	Telemetry telemetry.Set
	// Logf receives operational log lines (nil: silent).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:7473"
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.FlushEvery <= 0 {
		c.FlushEvery = 64
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 10 * time.Second
	}
	if c.ShedWakeCostMJ <= 0 {
		c.ShedWakeCostMJ = DefaultShedWakeCostMJ
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = DefaultWriteTimeout
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.Telemetry.Metrics == nil {
		c.Telemetry.Metrics = telemetry.NewRegistry()
	}
	if c.Telemetry.Ledger == nil {
		c.Telemetry.Ledger = telemetry.NewLedger()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// item kinds on the shard queues.
const (
	itemWake = iota
	itemEnergy
	itemBye
	itemHeartbeat
)

// ingestItem is one queued unit of work for a shard worker.
type ingestItem struct {
	dev    uint64
	kind   int
	wake   WakeEvent
	energy EnergyEvent
	hb     Heartbeat
	seq    uint32             // bye only
	reply  chan DeviceSummary // bye only
	at     time.Time          // enqueue instant, for the queue-delay histogram
}

// DrainReport summarizes a graceful drain.
type DrainReport struct {
	Devices           int
	Applied           uint64 // queued items applied by shard workers, lifetime
	Wakes             uint64
	Heartbeats        uint64
	Sheds             uint64
	LedgerTotalMJ     float64
	DeviceTotalMJ     float64 // per-device energy + shed billing, summed
	ConservationErrMJ float64
	ConservationOK    bool
	CheckpointPath    string // "" when checkpointing is disabled
}

// Server is the fleet ingest daemon: TCP listener, per-connection frame
// readers, sharded registry, bounded per-shard queues drained by one
// worker each, batched ledger deposits, periodic checkpoints and an
// optional HTTP observability endpoint.
type Server struct {
	cfg      Config
	registry *Registry
	ledger   *telemetry.Ledger
	epoch    uint32

	ln     net.Listener
	httpLn net.Listener
	httpSv *http.Server

	queues    []chan ingestItem
	wgConns   sync.WaitGroup
	wgWorkers sync.WaitGroup
	wgLoops   sync.WaitGroup

	connsMu sync.Mutex
	conns   map[net.Conn]struct{}

	// sessions maps a device to its one live connection: a second
	// connection for the same device takes the session over (newest
	// wins) and the old connection is torn down.
	sessMu   sync.Mutex
	sessions map[uint64]*sessionHandle

	nSessions atomic.Int64 // live connections, for the MaxSessions cap

	drainCh   chan struct{}
	drainOnce sync.Once
	draining  atomic.Bool

	killCh   chan struct{}
	killOnce sync.Once
	killed   atomic.Bool

	applied atomic.Uint64

	// Interned metric handles (nil-safe, but the registry always exists).
	cConnsOpened, cConnsClosed          *telemetry.Counter
	cRxFrames, cRxCorrupt, cRxMalformed *telemetry.Counter
	cWakes, cHeartbeats, cEnergy, cByes *telemetry.Counter
	cSheds, cCheckpoints                *telemetry.Counter
	cIdleReaps, cTakeovers              *telemetry.Counter
	cSessionRejects, cDedupAcks         *telemetry.Counter
	cResumes, cCheckpointFallbacks      *telemetry.Counter
	gDevices, gConnected                *telemetry.Gauge
	hQueueDelayMS, hFlushBatch          *telemetry.Histogram
}

// NewServer builds a server (no sockets yet; Start opens them). When the
// config names a checkpoint chain with an intact snapshot, device totals
// are restored, the ledger is re-seeded from them, and the epoch bumps
// past the checkpoint's; a corrupt newest file falls back to the .bak
// snapshot (counted in fleetd.checkpoint_fallbacks).
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		registry: NewRegistry(cfg.Shards),
		ledger:   cfg.Telemetry.Ledger,
		epoch:    1,
		conns:    make(map[net.Conn]struct{}),
		sessions: make(map[uint64]*sessionHandle),
		drainCh:  make(chan struct{}),
		killCh:   make(chan struct{}),
	}
	reg := cfg.Telemetry.Metrics
	s.cConnsOpened = reg.Counter("fleetd.conns_opened")
	s.cConnsClosed = reg.Counter("fleetd.conns_closed")
	s.cRxFrames = reg.Counter("fleetd.rx_frames")
	s.cRxCorrupt = reg.Counter("fleetd.rx_corrupt")
	s.cRxMalformed = reg.Counter("fleetd.rx_malformed")
	s.cWakes = reg.Counter("fleetd.wakes")
	s.cHeartbeats = reg.Counter("fleetd.heartbeats")
	s.cEnergy = reg.Counter("fleetd.energy_frames")
	s.cByes = reg.Counter("fleetd.byes")
	s.cSheds = reg.Counter("fleetd.sheds")
	s.cCheckpoints = reg.Counter("fleetd.checkpoints")
	s.cIdleReaps = reg.Counter("fleetd.idle_reaps")
	s.cTakeovers = reg.Counter("fleetd.takeovers")
	s.cSessionRejects = reg.Counter("fleetd.session_rejects")
	s.cDedupAcks = reg.Counter("fleetd.dedup_acks")
	s.cResumes = reg.Counter("fleetd.resumes")
	s.cCheckpointFallbacks = reg.Counter("fleetd.checkpoint_fallbacks")
	s.gDevices = reg.Gauge("fleetd.devices")
	s.gConnected = reg.Gauge("fleetd.devices_connected")
	s.hQueueDelayMS = reg.Histogram("fleetd.queue_delay_ms",
		[]float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250})
	s.hFlushBatch = reg.Histogram("fleetd.flush_batch",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})

	if cfg.CheckpointPath != "" {
		cp, info, err := LoadCheckpointDetail(cfg.CheckpointPath)
		if err != nil {
			return nil, err
		}
		if info.FellBack {
			s.cCheckpointFallbacks.Inc()
			cfg.Logf("fleetd: newest checkpoint rejected (%v), fell back to %s", info.MainErr, info.Source)
		}
		if info.Source != "" {
			for _, d := range cp.Devices {
				if err := s.registry.restore(d); err != nil {
					return nil, err
				}
				for c, v := range d.EnergyMJ {
					s.ledger.AddEnergyMJ(telemetry.Component(c), v)
				}
				s.ledger.AddEnergyMJ(telemetry.PhoneFallback, d.ShedMJ)
				s.applied.Add(d.Wakes) // best effort: restored work counts as applied
			}
			s.epoch = cp.Epoch + 1
			cfg.Logf("fleetd: restored %d devices from %s (epoch %d)",
				len(cp.Devices), info.Source, s.epoch)
		}
	}

	s.queues = make([]chan ingestItem, cfg.Shards)
	for i := range s.queues {
		s.queues[i] = make(chan ingestItem, cfg.QueueDepth)
	}
	return s, nil
}

// Start opens the TCP listener (and the HTTP endpoint, when configured)
// and launches the accept loop, shard workers and checkpointer.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("fleetd: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	for i := range s.queues {
		s.wgWorkers.Add(1)
		go s.shardWorker(i)
	}
	s.wgLoops.Add(1)
	go s.acceptLoop()
	if s.cfg.CheckpointPath != "" {
		s.wgLoops.Add(1)
		go s.checkpointLoop()
	}
	if s.cfg.HTTPAddr != "" {
		if err := s.startHTTP(); err != nil {
			ln.Close()
			return err
		}
	}
	s.cfg.Logf("fleetd: listening on %s (%d shards, queue depth %d, epoch %d, idle timeout %s, max sessions %d)",
		ln.Addr(), s.cfg.Shards, s.cfg.QueueDepth, s.epoch, s.cfg.IdleTimeout, s.cfg.MaxSessions)
	return nil
}

// Addr returns the bound ingest address (empty before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// HTTPAddr returns the bound observability address (empty when disabled).
func (s *Server) HTTPAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// Ledger exposes the daemon's energy ledger.
func (s *Server) Ledger() *telemetry.Ledger { return s.ledger }

// Registry exposes the sharded device registry.
func (s *Server) Registry() *Registry { return s.registry }

// Epoch returns the server boot epoch.
func (s *Server) Epoch() uint32 { return s.epoch }

func (s *Server) acceptLoop() {
	defer s.wgLoops.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed (drain) or fatal; either way stop accepting
		}
		if s.draining.Load() {
			conn.Close()
			continue
		}
		if s.nSessions.Add(1) > int64(s.cfg.MaxSessions) {
			s.nSessions.Add(-1)
			s.cSessionRejects.Inc()
			s.cfg.Logf("fleetd: conn %v: session cap %d reached, rejecting", conn.RemoteAddr(), s.cfg.MaxSessions)
			conn.Close()
			continue
		}
		s.connsMu.Lock()
		s.conns[conn] = struct{}{}
		s.connsMu.Unlock()
		s.wgConns.Add(1)
		go s.serveConn(conn)
	}
}

// sessionHandle identifies one connection's claim on a device identity.
// done closes when the connection's reader goroutine has fully exited.
type sessionHandle struct {
	conn net.Conn
	done chan struct{}
}

// adoptSession makes conn the device's one live session. If an older
// connection holds the session, newest wins: the old one is closed and
// counted as a takeover — a device that reconnects after a cut must not
// find its identity held hostage by a half-open ghost. Adoption then
// WAITS for the old reader to exit: the dedup check and watermark
// advance in ingest are two registry calls, so two readers ingesting
// the same device concurrently could double-enqueue a retransmitted
// seq. One reader per device at a time makes check-then-mark atomic.
func (s *Server) adoptSession(deviceID uint64, h *sessionHandle) {
	s.sessMu.Lock()
	old := s.sessions[deviceID]
	s.sessions[deviceID] = h
	s.sessMu.Unlock()
	if old != nil && old.conn != h.conn {
		s.cTakeovers.Inc()
		s.cfg.Logf("fleetd: device %d: session takeover by %v, closing %v",
			deviceID, h.conn.RemoteAddr(), old.conn.RemoteAddr())
		old.conn.Close()
		<-old.done
	}
}

// releaseSession drops the device→handle mapping, but only if the
// mapping is still ours (a takeover may have already replaced it).
func (s *Server) releaseSession(deviceID uint64, h *sessionHandle) {
	s.sessMu.Lock()
	if s.sessions[deviceID] == h {
		delete(s.sessions, deviceID)
	}
	s.sessMu.Unlock()
}

// errBeforeHello reports an event frame on a connection that never
// introduced itself.
var errBeforeHello = errors.New("fleetd: event frame before hello")

// session is one connection's protocol state.
type session struct {
	conn    net.Conn
	bw      *bufio.Writer
	dev     uint64
	helloed bool
	handle  *sessionHandle
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wgConns.Done()
	defer s.nSessions.Add(-1)
	defer func() {
		conn.Close()
		s.connsMu.Lock()
		delete(s.conns, conn)
		s.connsMu.Unlock()
		s.cConnsClosed.Inc()
	}()
	s.cConnsOpened.Inc()

	var dec link.Decoder
	sess := &session{
		conn:   conn,
		bw:     bufio.NewWriterSize(conn, 1<<14),
		handle: &sessionHandle{conn: conn, done: make(chan struct{})},
	}
	buf := make([]byte, 1<<14)
	defer close(sess.handle.done) // after this, the reader ingests nothing more
	defer func() {
		if sess.helloed {
			s.registry.Disconnect(sess.dev)
			s.releaseSession(sess.dev, sess.handle)
		}
	}()
	flush := func() error {
		if s.cfg.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
		return sess.bw.Flush()
	}
	corrupt, malformed := 0, 0
	for {
		// Arm the idle deadline before every read: a session is entitled
		// to exactly one quiet IdleTimeout, then it is reaped.
		if s.cfg.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		n, rerr := conn.Read(buf)
		if n > 0 {
			frames, _ := dec.Feed(buf[:n])
			// The decoder's taxonomy counters classify damage for us:
			// corrupt frames (line damage) are skipped — later frames in
			// the same chunk still decode — while a malformed frame
			// (CRC-valid nonsense) is a peer bug and tears the
			// connection down below.
			if d := dec.Corrupt() - corrupt; d > 0 {
				s.cRxCorrupt.Add(int64(d))
				corrupt = dec.Corrupt()
			}
			teardown := false
			if d := dec.Malformed() - malformed; d > 0 {
				s.cRxMalformed.Add(int64(d))
				malformed = dec.Malformed()
				teardown = true
			}
			for _, f := range frames {
				if err := s.handleFrame(f, sess); err != nil {
					if link.IsMalformed(err) {
						s.cRxMalformed.Inc()
					}
					s.cfg.Logf("fleetd: conn %v: %v", conn.RemoteAddr(), err)
					flush()
					return
				}
			}
			if err := flush(); err != nil {
				return
			}
			if teardown {
				s.cfg.Logf("fleetd: conn %v: malformed frame, closing", conn.RemoteAddr())
				return
			}
		}
		if rerr != nil {
			var nerr net.Error
			if errors.As(rerr, &nerr) && nerr.Timeout() {
				s.cIdleReaps.Inc()
				s.cfg.Logf("fleetd: conn %v: idle for %s, reaping session (device %d)",
					conn.RemoteAddr(), s.cfg.IdleTimeout, sess.dev)
				return
			}
			if rerr != io.EOF && !s.draining.Load() {
				s.cfg.Logf("fleetd: conn %v: read: %v", conn.RemoteAddr(), rerr)
			}
			return
		}
	}
}

// openSession runs the shared hello/resume bookkeeping: version check,
// single-introduction check, registry connect and session takeover.
func (s *Server) openSession(sess *session, version byte, deviceID uint64) error {
	if version != ProtocolVersion {
		return fmt.Errorf("fleetd: peer speaks protocol %d, want %d", version, ProtocolVersion)
	}
	if sess.helloed {
		return fmt.Errorf("fleetd: duplicate hello from device %d", deviceID)
	}
	sess.dev, sess.helloed = deviceID, true
	s.registry.Connect(deviceID)
	s.adoptSession(deviceID, sess.handle)
	return nil
}

func (s *Server) handleFrame(f link.Frame, sess *session) error {
	s.cRxFrames.Inc()
	bw := sess.bw
	switch f.Type {
	case MsgHello:
		h, err := DecodeHello(f.Payload)
		if err != nil {
			return err
		}
		if err := s.openSession(sess, h.Version, h.DeviceID); err != nil {
			return err
		}
		ack := HelloAck{Epoch: s.epoch, Shard: uint16(s.registry.ShardIndex(h.DeviceID))}
		return writeFrame(bw, MsgHelloAck, ack.Encode())
	case MsgResume:
		r, err := DecodeResume(f.Payload)
		if err != nil {
			return err
		}
		if err := s.openSession(sess, r.Version, r.DeviceID); err != nil {
			return err
		}
		s.cResumes.Inc()
		ack := ResumeAck{
			Epoch:    s.epoch,
			Shard:    uint16(s.registry.ShardIndex(r.DeviceID)),
			AckedSeq: s.registry.AckedSeq(r.DeviceID),
		}
		return writeFrame(bw, MsgResumeAck, ack.Encode())
	}
	if !sess.helloed {
		return fmt.Errorf("%w (type 0x%02x)", errBeforeHello, byte(f.Type))
	}
	switch f.Type {
	case MsgDeviceHeartbeat:
		hb, err := DecodeHeartbeat(f.Payload)
		if err != nil {
			return err
		}
		// Heartbeats ride the shard queue like every other event so the
		// device's state mutations stay in sequence order — the invariant
		// the resume watermark depends on. Acks are still issued at
		// enqueue, so liveness answers do not wait for the worker. A shed
		// heartbeat bills nothing: it carries no energy.
		return s.ingest(bw, ingestItem{dev: sess.dev, kind: itemHeartbeat, hb: hb}, hb.Seq, 0)
	case MsgDeviceWake:
		w, err := DecodeWakeEvent(f.Payload)
		if err != nil {
			return err
		}
		return s.ingest(bw, ingestItem{dev: sess.dev, kind: itemWake, wake: w},
			w.Seq, s.cfg.ShedWakeCostMJ)
	case MsgDeviceEnergy:
		e, err := DecodeEnergyEvent(f.Payload)
		if err != nil {
			return err
		}
		return s.ingest(bw, ingestItem{dev: sess.dev, kind: itemEnergy, energy: e},
			e.Seq, e.MJ)
	case MsgBye:
		b, err := DecodeBye(f.Payload)
		if err != nil {
			return err
		}
		item := ingestItem{dev: sess.dev, kind: itemBye, seq: b.Seq,
			reply: make(chan DeviceSummary, 1), at: time.Now()}
		// Bye must flush the device, so it blocks rather than sheds; a
		// drain that wins the race tears the connection down instead
		// (the client never saw a bye-ack, so nothing was promised).
		select {
		case s.queues[s.registry.ShardIndex(sess.dev)] <- item:
		case <-s.drainCh:
			return fmt.Errorf("fleetd: draining, bye from device %d refused", sess.dev)
		case <-s.killCh:
			return fmt.Errorf("fleetd: killed, bye from device %d refused", sess.dev)
		}
		// The reply wait needs the same kill escape as the enqueue: a
		// killed shard worker exits without replying, and the reply must
		// not pin this reader past wgConns.Wait (a Kill deadlock). The
		// reply channel is buffered, so a worker that does answer after we
		// bail never blocks on it.
		var sum DeviceSummary
		select {
		case sum = <-item.reply:
		case <-s.killCh:
			return fmt.Errorf("fleetd: killed, bye from device %d dropped", sess.dev)
		}
		return writeFrame(bw, MsgByeAck, sum.Encode())
	default:
		return fmt.Errorf("fleetd: unexpected frame type 0x%02x: %w", byte(f.Type), link.ErrLengthMismatch)
	}
}

// ingest enqueues an event onto its shard queue, acking accepted on
// success. A retransmitted seq (at or below the device's acked watermark)
// is answered AckDup without touching state — exactly-once delivery into
// the ledger survives connection cuts. A full queue is explicit
// backpressure: the event is refused with AckShed, the refusal is
// counted, and the device's fallback cost is billed to phone.fallback —
// the degradation is visible in every report, never a silent drop. An
// accepted ack is a durability promise: the item is in a queue, the
// acked watermark has advanced past it, and drain applies every queued
// item before exit.
func (s *Server) ingest(bw *bufio.Writer, item ingestItem, seq uint32, shedCostMJ float64) error {
	if s.registry.AlreadyAcked(item.dev, seq) {
		s.cDedupAcks.Inc()
		return writeAck(bw, seq, AckDup)
	}
	item.at = time.Now()
	select {
	case s.queues[s.registry.ShardIndex(item.dev)] <- item:
		s.registry.MarkAcked(item.dev, seq)
		return writeAck(bw, seq, AckAccepted)
	default:
		s.registry.RecordShed(item.dev, shedCostMJ)
		if shedCostMJ > 0 {
			s.ledger.AddEnergyMJ(telemetry.PhoneFallback, shedCostMJ)
		}
		s.cSheds.Inc()
		return writeAck(bw, seq, AckShed)
	}
}

// shardWorker drains one shard queue: applies items to the registry and
// batches energy deposits into the shared ledger, flushing every
// FlushEvery deposits or whenever the queue runs dry.
func (s *Server) shardWorker(i int) {
	defer s.wgWorkers.Done()
	q := s.queues[i]
	batch := make([]float64, s.registry.ncomp)
	pending := 0
	flush := func() {
		if pending == 0 {
			return
		}
		for c, v := range batch {
			if v != 0 {
				s.ledger.AddEnergyMJ(telemetry.Component(c), v)
				batch[c] = 0
			}
		}
		s.hFlushBatch.Observe(float64(pending))
		pending = 0
	}
	for {
		var item ingestItem
		var ok bool
		select {
		case item, ok = <-q:
			if !ok {
				flush()
				return
			}
		case <-s.killCh:
			// Ungraceful stop: abandon the queue mid-flight. Acked items
			// die with the process — exactly the loss a SIGKILL inflicts,
			// which the checkpoint chain and resume rewind must absorb.
			return
		}
		s.hQueueDelayMS.Observe(float64(time.Since(item.at).Microseconds()) / 1000)
		switch item.kind {
		case itemWake:
			s.registry.applyWake(item.dev, item.wake)
			s.cWakes.Inc()
		case itemEnergy:
			s.registry.applyEnergy(item.dev, item.energy)
			batch[item.energy.Component] += item.energy.MJ
			pending++
		case itemHeartbeat:
			s.registry.RecordHeartbeat(item.dev, item.hb)
			s.cHeartbeats.Inc()
		case itemBye:
			// The summary must reflect every deposit this shard has seen,
			// so the batch flushes first; per-device totals are already
			// current (applied under the shard lock as items arrived).
			flush()
			item.reply <- s.registry.summarize(item.dev, item.seq)
			s.cByes.Inc()
		}
		s.applied.Add(1)
		if pending >= s.cfg.FlushEvery || len(q) == 0 {
			flush()
		}
	}
}

func (s *Server) checkpointLoop() {
	defer s.wgLoops.Done()
	t := time.NewTicker(s.cfg.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.writeCheckpoint(); err != nil {
				s.cfg.Logf("fleetd: periodic checkpoint: %v", err)
			}
		case <-s.drainCh:
			return // drain writes the final checkpoint itself
		case <-s.killCh:
			return
		}
	}
}

func (s *Server) writeCheckpoint() error {
	if s.cfg.CheckpointPath == "" {
		return nil
	}
	if err := WriteCheckpoint(s.cfg.CheckpointPath, s.Snapshot()); err != nil {
		return err
	}
	s.cCheckpoints.Inc()
	return nil
}

// Snapshot builds a checkpoint of the current state. The live
// conservation figure can lag by in-flight ledger batches; the figure in
// the drain report, taken after every queue has been applied and flushed,
// is the authoritative one.
func (s *Server) Snapshot() Checkpoint {
	devs := s.registry.Snapshot()
	s.gDevices.Set(float64(len(devs)))
	s.gConnected.Set(float64(s.registry.Connected()))
	cp := Checkpoint{Epoch: s.epoch, Devices: devs, Ledger: s.ledger.Snapshot()}
	var devTotal float64
	for _, d := range devs {
		devTotal += d.TotalMJ + d.ShedMJ
	}
	cp.ConservationErrMJ = math.Abs(cp.Ledger.TotalMJ - devTotal)
	return cp
}

// conservationOK checks the drain invariant: the ledger total matches the
// per-device totals (energy + shed billing) to one part in 1e9 — the
// batched deposit path reorders float additions, so the tolerance is
// relative, floored at 1e-9 mJ absolute for near-zero fleets.
func conservationOK(errMJ, totalMJ float64) bool {
	return errMJ <= 1e-9*math.Max(1, math.Abs(totalMJ))
}

// Kill stops the server the way SIGKILL would, minus the process exit:
// listener and connections closed, shard queues abandoned mid-flight, no
// final checkpoint. Recovery then starts from whatever the checkpoint
// chain last persisted — exactly the scenario the crash-recovery tests
// must reproduce in-process. Safe to call once; Drain after Kill errors.
func (s *Server) Kill() {
	s.killOnce.Do(func() {
		s.killed.Store(true)
		s.draining.Store(true)
		close(s.killCh)
		if s.ln != nil {
			s.ln.Close()
		}
		s.connsMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connsMu.Unlock()
		if s.httpSv != nil {
			s.httpSv.Close()
		}
		s.wgConns.Wait()
		s.wgWorkers.Wait()
		s.wgLoops.Wait()
	})
}

// Drain performs the graceful shutdown: stop accepting, close every
// connection (no new acks can be issued), apply every already-queued —
// therefore acknowledged — item, flush the ledger batches, write the
// final checkpoint and verify conservation. Safe to call once; returns
// the final report.
func (s *Server) Drain() (DrainReport, error) {
	var rep DrainReport
	var err error
	if s.killed.Load() {
		return rep, errors.New("fleetd: server was killed, nothing to drain")
	}
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
		if s.ln != nil {
			s.ln.Close()
		}
		s.connsMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connsMu.Unlock()
		s.wgConns.Wait() // readers exit; nothing can enqueue anymore
		for _, q := range s.queues {
			close(q)
		}
		s.wgWorkers.Wait() // every acknowledged item applied, batches flushed
		if s.httpSv != nil {
			s.httpSv.Close()
		}
		s.wgLoops.Wait()

		cp := s.Snapshot()
		var devTotal float64
		for _, d := range cp.Devices {
			devTotal += d.TotalMJ + d.ShedMJ
		}
		rep = DrainReport{
			Devices:           len(cp.Devices),
			Applied:           s.applied.Load(),
			Wakes:             uint64(s.cWakes.Value()),
			Heartbeats:        uint64(s.cHeartbeats.Value()),
			Sheds:             uint64(s.cSheds.Value()),
			LedgerTotalMJ:     cp.Ledger.TotalMJ,
			DeviceTotalMJ:     devTotal,
			ConservationErrMJ: cp.ConservationErrMJ,
			ConservationOK:    conservationOK(cp.ConservationErrMJ, devTotal),
			CheckpointPath:    s.cfg.CheckpointPath,
		}
		if s.cfg.CheckpointPath != "" {
			if werr := WriteCheckpoint(s.cfg.CheckpointPath, cp); werr != nil {
				err = werr
			} else {
				s.cCheckpoints.Inc()
			}
		}
		s.cfg.Logf("fleetd: drained: %d devices, %d applied, %d shed, ledger %.6f mJ (conservation err %.3g mJ)",
			rep.Devices, rep.Applied, rep.Sheds, rep.LedgerTotalMJ, rep.ConservationErrMJ)
	})
	return rep, err
}

// startHTTP opens the observability endpoint.
func (s *Server) startHTTP() error {
	ln, err := net.Listen("tcp", s.cfg.HTTPAddr)
	if err != nil {
		return fmt.Errorf("fleetd: http listen %s: %w", s.cfg.HTTPAddr, err)
	}
	s.httpLn = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.cfg.Telemetry.Metrics.WriteText(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.cfg.Telemetry.Metrics.WriteJSON(w)
	})
	mux.HandleFunc("/ledger", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.ledger.WriteText(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, s.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	s.httpSv = &http.Server{Handler: mux}
	s.wgLoops.Add(1)
	go func() {
		defer s.wgLoops.Done()
		s.httpSv.Serve(ln)
	}()
	return nil
}

func writeJSON(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeFrame encodes and writes one protocol frame.
func writeFrame(w io.Writer, t link.MsgType, payload []byte) error {
	wire, err := link.Encode(link.Frame{Type: t, Payload: payload})
	if err != nil {
		return err
	}
	_, err = w.Write(wire)
	return err
}

// writeAck writes one event acknowledgement.
func writeAck(w io.Writer, seq uint32, status byte) error {
	return writeFrame(w, MsgEventAck, EventAck{Seq: seq, Status: status}.Encode())
}
