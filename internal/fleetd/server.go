package fleetd

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"sidewinder/internal/link"
	"sidewinder/internal/telemetry"
)

// DefaultShedWakeCostMJ is the fallback energy billed when a wake event
// is shed: the device must surface the wake locally, which on the paper's
// Table 1 numbers costs one asleep→awake transition (384 mW · 1 s), one
// second awake to deliver it (323 mW) and the fall back to sleep
// (341 mW · 1 s) — about 1048 mJ of main-processor energy the hub-of-hubs
// failed to absorb.
const DefaultShedWakeCostMJ = 1048.0

// Config parameterizes the ingest daemon.
type Config struct {
	// Addr is the TCP listen address (default 127.0.0.1:7473; use
	// host:0 for an ephemeral port).
	Addr string
	// Shards is the registry/queue shard count (default 16).
	Shards int
	// QueueDepth bounds each shard's ingest queue (default 1024). A full
	// queue sheds: the frame is refused with AckShed, counted and billed.
	QueueDepth int
	// FlushEvery batches this many energy deposits per shard before one
	// ledger flush (default 64). Batches also flush whenever a shard
	// queue empties, so the ledger never lags an idle fleet.
	FlushEvery int
	// CheckpointPath, when set, is loaded on startup (device totals
	// survive restarts; the epoch bumps) and rewritten atomically every
	// CheckpointEvery and on drain.
	CheckpointPath string
	// CheckpointEvery is the periodic checkpoint interval (default 10 s;
	// ignored without CheckpointPath).
	CheckpointEvery time.Duration
	// HTTPAddr, when set, serves the observability endpoints: /metrics
	// (registry text), /metrics.json, /ledger, /snapshot (checkpoint
	// JSON), /healthz.
	HTTPAddr string
	// ShedWakeCostMJ overrides the fallback billing per shed wake
	// (default DefaultShedWakeCostMJ).
	ShedWakeCostMJ float64
	// Telemetry supplies the sinks. Nil Metrics/Ledger fields are
	// replaced with fresh ones: the daemon cannot run blind, its
	// conservation contract is measured on these.
	Telemetry telemetry.Set
	// Logf receives operational log lines (nil: silent).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:7473"
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.FlushEvery <= 0 {
		c.FlushEvery = 64
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 10 * time.Second
	}
	if c.ShedWakeCostMJ <= 0 {
		c.ShedWakeCostMJ = DefaultShedWakeCostMJ
	}
	if c.Telemetry.Metrics == nil {
		c.Telemetry.Metrics = telemetry.NewRegistry()
	}
	if c.Telemetry.Ledger == nil {
		c.Telemetry.Ledger = telemetry.NewLedger()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// item kinds on the shard queues.
const (
	itemWake = iota
	itemEnergy
	itemBye
)

// ingestItem is one queued unit of work for a shard worker.
type ingestItem struct {
	dev    uint64
	kind   int
	wake   WakeEvent
	energy EnergyEvent
	seq    uint32              // bye only
	reply  chan DeviceSummary  // bye only
	at     time.Time           // enqueue instant, for the queue-delay histogram
}

// DrainReport summarizes a graceful drain.
type DrainReport struct {
	Devices           int
	Applied           uint64 // queued items applied by shard workers, lifetime
	Wakes             uint64
	Heartbeats        uint64
	Sheds             uint64
	LedgerTotalMJ     float64
	DeviceTotalMJ     float64 // per-device energy + shed billing, summed
	ConservationErrMJ float64
	ConservationOK    bool
	CheckpointPath    string // "" when checkpointing is disabled
}

// Server is the fleet ingest daemon: TCP listener, per-connection frame
// readers, sharded registry, bounded per-shard queues drained by one
// worker each, batched ledger deposits, periodic checkpoints and an
// optional HTTP observability endpoint.
type Server struct {
	cfg      Config
	registry *Registry
	ledger   *telemetry.Ledger
	epoch    uint32

	ln     net.Listener
	httpLn net.Listener
	httpSv *http.Server

	queues    []chan ingestItem
	wgConns   sync.WaitGroup
	wgWorkers sync.WaitGroup
	wgLoops   sync.WaitGroup

	connsMu sync.Mutex
	conns   map[net.Conn]struct{}

	drainCh   chan struct{}
	drainOnce sync.Once
	draining  atomic.Bool

	applied atomic.Uint64

	// Interned metric handles (nil-safe, but the registry always exists).
	cConnsOpened, cConnsClosed         *telemetry.Counter
	cRxFrames, cRxCorrupt, cRxMalformed *telemetry.Counter
	cWakes, cHeartbeats, cEnergy, cByes *telemetry.Counter
	cSheds, cCheckpoints                *telemetry.Counter
	gDevices, gConnected                *telemetry.Gauge
	hQueueDelayMS, hFlushBatch          *telemetry.Histogram
}

// NewServer builds a server (no sockets yet; Start opens them). When the
// config names a checkpoint that exists, device totals are restored, the
// ledger is re-seeded from them, and the epoch bumps past the
// checkpoint's.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		registry: NewRegistry(cfg.Shards),
		ledger:   cfg.Telemetry.Ledger,
		epoch:    1,
		conns:    make(map[net.Conn]struct{}),
		drainCh:  make(chan struct{}),
	}
	reg := cfg.Telemetry.Metrics
	s.cConnsOpened = reg.Counter("fleetd.conns_opened")
	s.cConnsClosed = reg.Counter("fleetd.conns_closed")
	s.cRxFrames = reg.Counter("fleetd.rx_frames")
	s.cRxCorrupt = reg.Counter("fleetd.rx_corrupt")
	s.cRxMalformed = reg.Counter("fleetd.rx_malformed")
	s.cWakes = reg.Counter("fleetd.wakes")
	s.cHeartbeats = reg.Counter("fleetd.heartbeats")
	s.cEnergy = reg.Counter("fleetd.energy_frames")
	s.cByes = reg.Counter("fleetd.byes")
	s.cSheds = reg.Counter("fleetd.sheds")
	s.cCheckpoints = reg.Counter("fleetd.checkpoints")
	s.gDevices = reg.Gauge("fleetd.devices")
	s.gConnected = reg.Gauge("fleetd.devices_connected")
	s.hQueueDelayMS = reg.Histogram("fleetd.queue_delay_ms",
		[]float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250})
	s.hFlushBatch = reg.Histogram("fleetd.flush_batch",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})

	if cfg.CheckpointPath != "" {
		cp, ok, err := LoadCheckpoint(cfg.CheckpointPath)
		if err != nil {
			return nil, err
		}
		if ok {
			for _, d := range cp.Devices {
				if err := s.registry.restore(d); err != nil {
					return nil, err
				}
				for c, v := range d.EnergyMJ {
					s.ledger.AddEnergyMJ(telemetry.Component(c), v)
				}
				s.ledger.AddEnergyMJ(telemetry.PhoneFallback, d.ShedMJ)
				s.applied.Add(d.Wakes) // best effort: restored work counts as applied
			}
			s.epoch = cp.Epoch + 1
			cfg.Logf("fleetd: restored %d devices from %s (epoch %d)",
				len(cp.Devices), cfg.CheckpointPath, s.epoch)
		}
	}

	s.queues = make([]chan ingestItem, cfg.Shards)
	for i := range s.queues {
		s.queues[i] = make(chan ingestItem, cfg.QueueDepth)
	}
	return s, nil
}

// Start opens the TCP listener (and the HTTP endpoint, when configured)
// and launches the accept loop, shard workers and checkpointer.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("fleetd: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	for i := range s.queues {
		s.wgWorkers.Add(1)
		go s.shardWorker(i)
	}
	s.wgLoops.Add(1)
	go s.acceptLoop()
	if s.cfg.CheckpointPath != "" {
		s.wgLoops.Add(1)
		go s.checkpointLoop()
	}
	if s.cfg.HTTPAddr != "" {
		if err := s.startHTTP(); err != nil {
			ln.Close()
			return err
		}
	}
	s.cfg.Logf("fleetd: listening on %s (%d shards, queue depth %d, epoch %d)",
		ln.Addr(), s.cfg.Shards, s.cfg.QueueDepth, s.epoch)
	return nil
}

// Addr returns the bound ingest address (empty before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// HTTPAddr returns the bound observability address (empty when disabled).
func (s *Server) HTTPAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// Ledger exposes the daemon's energy ledger.
func (s *Server) Ledger() *telemetry.Ledger { return s.ledger }

// Registry exposes the sharded device registry.
func (s *Server) Registry() *Registry { return s.registry }

// Epoch returns the server boot epoch.
func (s *Server) Epoch() uint32 { return s.epoch }

func (s *Server) acceptLoop() {
	defer s.wgLoops.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed (drain) or fatal; either way stop accepting
		}
		if s.draining.Load() {
			conn.Close()
			continue
		}
		s.connsMu.Lock()
		s.conns[conn] = struct{}{}
		s.connsMu.Unlock()
		s.wgConns.Add(1)
		go s.serveConn(conn)
	}
}

// errBeforeHello reports an event frame on a connection that never
// introduced itself.
var errBeforeHello = errors.New("fleetd: event frame before hello")

func (s *Server) serveConn(conn net.Conn) {
	defer s.wgConns.Done()
	defer func() {
		conn.Close()
		s.connsMu.Lock()
		delete(s.conns, conn)
		s.connsMu.Unlock()
		s.cConnsClosed.Inc()
	}()
	s.cConnsOpened.Inc()

	var dec link.Decoder
	bw := bufio.NewWriterSize(conn, 1<<14)
	buf := make([]byte, 1<<14)
	var deviceID uint64
	helloed := false
	defer func() {
		if helloed {
			s.registry.Disconnect(deviceID)
		}
	}()
	corrupt, malformed := 0, 0
	for {
		n, rerr := conn.Read(buf)
		if n > 0 {
			frames, _ := dec.Feed(buf[:n])
			// The decoder's taxonomy counters classify damage for us:
			// corrupt frames (line damage) are skipped — later frames in
			// the same chunk still decode — while a malformed frame
			// (CRC-valid nonsense) is a peer bug and tears the
			// connection down below.
			if d := dec.Corrupt() - corrupt; d > 0 {
				s.cRxCorrupt.Add(int64(d))
				corrupt = dec.Corrupt()
			}
			teardown := false
			if d := dec.Malformed() - malformed; d > 0 {
				s.cRxMalformed.Add(int64(d))
				malformed = dec.Malformed()
				teardown = true
			}
			for _, f := range frames {
				if err := s.handleFrame(f, &deviceID, &helloed, bw); err != nil {
					if link.IsMalformed(err) {
						s.cRxMalformed.Inc()
					}
					s.cfg.Logf("fleetd: conn %v: %v", conn.RemoteAddr(), err)
					bw.Flush()
					return
				}
			}
			if err := bw.Flush(); err != nil {
				return
			}
			if teardown {
				s.cfg.Logf("fleetd: conn %v: malformed frame, closing", conn.RemoteAddr())
				return
			}
		}
		if rerr != nil {
			if rerr != io.EOF && !s.draining.Load() {
				s.cfg.Logf("fleetd: conn %v: read: %v", conn.RemoteAddr(), rerr)
			}
			return
		}
	}
}

func (s *Server) handleFrame(f link.Frame, deviceID *uint64, helloed *bool, bw *bufio.Writer) error {
	s.cRxFrames.Inc()
	if f.Type == MsgHello {
		h, err := DecodeHello(f.Payload)
		if err != nil {
			return err
		}
		if h.Version != ProtocolVersion {
			return fmt.Errorf("fleetd: peer speaks protocol %d, want %d", h.Version, ProtocolVersion)
		}
		if *helloed {
			return fmt.Errorf("fleetd: duplicate hello from device %d", h.DeviceID)
		}
		*deviceID, *helloed = h.DeviceID, true
		s.registry.Connect(h.DeviceID)
		ack := HelloAck{Epoch: s.epoch, Shard: uint16(s.registry.ShardIndex(h.DeviceID))}
		return writeFrame(bw, MsgHelloAck, ack.Encode())
	}
	if !*helloed {
		return fmt.Errorf("%w (type 0x%02x)", errBeforeHello, byte(f.Type))
	}
	switch f.Type {
	case MsgDeviceHeartbeat:
		hb, err := DecodeHeartbeat(f.Payload)
		if err != nil {
			return err
		}
		// Heartbeats are the liveness signal: they bypass the ingest
		// queues entirely (a hub drowning in telemetry must still answer
		// "are you alive") and are applied inline under the shard lock.
		s.registry.RecordHeartbeat(*deviceID, hb)
		s.cHeartbeats.Inc()
		return writeAck(bw, hb.Seq, AckAccepted)
	case MsgDeviceWake:
		w, err := DecodeWakeEvent(f.Payload)
		if err != nil {
			return err
		}
		return s.ingest(bw, ingestItem{dev: *deviceID, kind: itemWake, wake: w},
			w.Seq, s.cfg.ShedWakeCostMJ)
	case MsgDeviceEnergy:
		e, err := DecodeEnergyEvent(f.Payload)
		if err != nil {
			return err
		}
		return s.ingest(bw, ingestItem{dev: *deviceID, kind: itemEnergy, energy: e},
			e.Seq, e.MJ)
	case MsgBye:
		b, err := DecodeBye(f.Payload)
		if err != nil {
			return err
		}
		item := ingestItem{dev: *deviceID, kind: itemBye, seq: b.Seq,
			reply: make(chan DeviceSummary, 1), at: time.Now()}
		// Bye must flush the device, so it blocks rather than sheds; a
		// drain that wins the race tears the connection down instead
		// (the client never saw a bye-ack, so nothing was promised).
		select {
		case s.queues[s.registry.ShardIndex(*deviceID)] <- item:
		case <-s.drainCh:
			return fmt.Errorf("fleetd: draining, bye from device %d refused", *deviceID)
		}
		sum := <-item.reply
		return writeFrame(bw, MsgByeAck, sum.Encode())
	default:
		return fmt.Errorf("fleetd: unexpected frame type 0x%02x: %w", byte(f.Type), link.ErrLengthMismatch)
	}
}

// ingest enqueues an event onto its shard queue, acking accepted on
// success. A full queue is explicit backpressure: the event is refused
// with AckShed, the refusal is counted, and the device's fallback cost is
// billed to phone.fallback — the degradation is visible in every report,
// never a silent drop. An accepted ack is a durability promise: the item
// is in a queue, and drain applies every queued item before exit.
func (s *Server) ingest(bw *bufio.Writer, item ingestItem, seq uint32, shedCostMJ float64) error {
	item.at = time.Now()
	select {
	case s.queues[s.registry.ShardIndex(item.dev)] <- item:
		return writeAck(bw, seq, AckAccepted)
	default:
		s.registry.RecordShed(item.dev, shedCostMJ)
		s.ledger.AddEnergyMJ(telemetry.PhoneFallback, shedCostMJ)
		s.cSheds.Inc()
		return writeAck(bw, seq, AckShed)
	}
}

// shardWorker drains one shard queue: applies items to the registry and
// batches energy deposits into the shared ledger, flushing every
// FlushEvery deposits or whenever the queue runs dry.
func (s *Server) shardWorker(i int) {
	defer s.wgWorkers.Done()
	q := s.queues[i]
	batch := make([]float64, s.registry.ncomp)
	pending := 0
	flush := func() {
		if pending == 0 {
			return
		}
		for c, v := range batch {
			if v != 0 {
				s.ledger.AddEnergyMJ(telemetry.Component(c), v)
				batch[c] = 0
			}
		}
		s.hFlushBatch.Observe(float64(pending))
		pending = 0
	}
	for item := range q {
		s.hQueueDelayMS.Observe(float64(time.Since(item.at).Microseconds()) / 1000)
		switch item.kind {
		case itemWake:
			s.registry.applyWake(item.dev, item.wake)
			s.cWakes.Inc()
		case itemEnergy:
			s.registry.applyEnergy(item.dev, item.energy)
			batch[item.energy.Component] += item.energy.MJ
			pending++
		case itemBye:
			// The summary must reflect every deposit this shard has seen,
			// so the batch flushes first; per-device totals are already
			// current (applied under the shard lock as items arrived).
			flush()
			item.reply <- s.registry.summarize(item.dev, item.seq)
			s.cByes.Inc()
		}
		s.applied.Add(1)
		if pending >= s.cfg.FlushEvery || len(q) == 0 {
			flush()
		}
	}
	flush()
}

func (s *Server) checkpointLoop() {
	defer s.wgLoops.Done()
	t := time.NewTicker(s.cfg.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.writeCheckpoint(); err != nil {
				s.cfg.Logf("fleetd: periodic checkpoint: %v", err)
			}
		case <-s.drainCh:
			return // drain writes the final checkpoint itself
		}
	}
}

func (s *Server) writeCheckpoint() error {
	if s.cfg.CheckpointPath == "" {
		return nil
	}
	if err := WriteCheckpoint(s.cfg.CheckpointPath, s.Snapshot()); err != nil {
		return err
	}
	s.cCheckpoints.Inc()
	return nil
}

// Snapshot builds a checkpoint of the current state. The live
// conservation figure can lag by in-flight ledger batches; the figure in
// the drain report, taken after every queue has been applied and flushed,
// is the authoritative one.
func (s *Server) Snapshot() Checkpoint {
	devs := s.registry.Snapshot()
	s.gDevices.Set(float64(len(devs)))
	s.gConnected.Set(float64(s.registry.Connected()))
	cp := Checkpoint{Epoch: s.epoch, Devices: devs, Ledger: s.ledger.Snapshot()}
	var devTotal float64
	for _, d := range devs {
		devTotal += d.TotalMJ + d.ShedMJ
	}
	cp.ConservationErrMJ = math.Abs(cp.Ledger.TotalMJ - devTotal)
	return cp
}

// conservationOK checks the drain invariant: the ledger total matches the
// per-device totals (energy + shed billing) to one part in 1e9 — the
// batched deposit path reorders float additions, so the tolerance is
// relative, floored at 1e-9 mJ absolute for near-zero fleets.
func conservationOK(errMJ, totalMJ float64) bool {
	return errMJ <= 1e-9*math.Max(1, math.Abs(totalMJ))
}

// Drain performs the graceful shutdown: stop accepting, close every
// connection (no new acks can be issued), apply every already-queued —
// therefore acknowledged — item, flush the ledger batches, write the
// final checkpoint and verify conservation. Safe to call once; returns
// the final report.
func (s *Server) Drain() (DrainReport, error) {
	var rep DrainReport
	var err error
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
		if s.ln != nil {
			s.ln.Close()
		}
		s.connsMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connsMu.Unlock()
		s.wgConns.Wait() // readers exit; nothing can enqueue anymore
		for _, q := range s.queues {
			close(q)
		}
		s.wgWorkers.Wait() // every acknowledged item applied, batches flushed
		if s.httpSv != nil {
			s.httpSv.Close()
		}
		s.wgLoops.Wait()

		cp := s.Snapshot()
		var devTotal float64
		for _, d := range cp.Devices {
			devTotal += d.TotalMJ + d.ShedMJ
		}
		rep = DrainReport{
			Devices:           len(cp.Devices),
			Applied:           s.applied.Load(),
			Wakes:             uint64(s.cWakes.Value()),
			Heartbeats:        uint64(s.cHeartbeats.Value()),
			Sheds:             uint64(s.cSheds.Value()),
			LedgerTotalMJ:     cp.Ledger.TotalMJ,
			DeviceTotalMJ:     devTotal,
			ConservationErrMJ: cp.ConservationErrMJ,
			ConservationOK:    conservationOK(cp.ConservationErrMJ, devTotal),
			CheckpointPath:    s.cfg.CheckpointPath,
		}
		if s.cfg.CheckpointPath != "" {
			if werr := WriteCheckpoint(s.cfg.CheckpointPath, cp); werr != nil {
				err = werr
			} else {
				s.cCheckpoints.Inc()
			}
		}
		s.cfg.Logf("fleetd: drained: %d devices, %d applied, %d shed, ledger %.6f mJ (conservation err %.3g mJ)",
			rep.Devices, rep.Applied, rep.Sheds, rep.LedgerTotalMJ, rep.ConservationErrMJ)
	})
	return rep, err
}

// startHTTP opens the observability endpoint.
func (s *Server) startHTTP() error {
	ln, err := net.Listen("tcp", s.cfg.HTTPAddr)
	if err != nil {
		return fmt.Errorf("fleetd: http listen %s: %w", s.cfg.HTTPAddr, err)
	}
	s.httpLn = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.cfg.Telemetry.Metrics.WriteText(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.cfg.Telemetry.Metrics.WriteJSON(w)
	})
	mux.HandleFunc("/ledger", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.ledger.WriteText(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, s.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	s.httpSv = &http.Server{Handler: mux}
	s.wgLoops.Add(1)
	go func() {
		defer s.wgLoops.Done()
		s.httpSv.Serve(ln)
	}()
	return nil
}

func writeJSON(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeFrame encodes and writes one protocol frame.
func writeFrame(w io.Writer, t link.MsgType, payload []byte) error {
	wire, err := link.Encode(link.Frame{Type: t, Payload: payload})
	if err != nil {
		return err
	}
	_, err = w.Write(wire)
	return err
}

// writeAck writes one event acknowledgement.
func writeAck(w io.Writer, seq uint32, status byte) error {
	return writeFrame(w, MsgEventAck, EventAck{Seq: seq, Status: status}.Encode())
}
