package fleetd

import (
	"reflect"
	"sync"
	"testing"

	"sidewinder/internal/telemetry"
)

func TestShardIndexConsistentAndSpread(t *testing.T) {
	r := NewRegistry(16)
	hits := make([]int, 16)
	for id := uint64(1); id <= 1000; id++ {
		s := r.ShardIndex(id)
		if s != r.ShardIndex(id) {
			t.Fatalf("shard index for %d not stable", id)
		}
		if s < 0 || s >= 16 {
			t.Fatalf("shard index %d out of range", s)
		}
		hits[s]++
	}
	// FNV-1a over 1000 sequential IDs should not leave any shard starved:
	// a uniform split is 62.5/shard; demand at least a third of that.
	for i, n := range hits {
		if n < 20 {
			t.Fatalf("shard %d got only %d of 1000 devices — hashing is degenerate", i, n)
		}
	}
}

func TestRegistryLifecycle(t *testing.T) {
	r := NewRegistry(4)
	if !r.Connect(7) {
		t.Fatal("first contact should be fresh")
	}
	if r.Connect(7) {
		t.Fatal("second connection is not fresh")
	}
	if got := r.Connected(); got != 1 {
		t.Fatalf("Connected() = %d, want 1", got)
	}
	r.Disconnect(7)
	if got := r.Connected(); got != 1 {
		t.Fatalf("Connected() after one of two disconnects = %d, want 1", got)
	}
	r.Disconnect(7)
	if got := r.Connected(); got != 0 {
		t.Fatalf("Connected() = %d, want 0", got)
	}
	if got := r.Len(); got != 1 {
		t.Fatalf("Len() = %d, want 1 (disconnect keeps the record)", got)
	}
}

func TestRegistryApplyAndSummarize(t *testing.T) {
	r := NewRegistry(4)
	r.Connect(42)
	r.applyWake(42, WakeEvent{Seq: 1, Node: 0, Value: 1})
	r.applyWake(42, WakeEvent{Seq: 2, Node: 1, Value: 2})
	r.RecordHeartbeat(42, Heartbeat{Seq: 3, Epoch: 9})
	r.applyEnergy(42, EnergyEvent{Seq: 4, Component: telemetry.PhoneAwake, MJ: 1.5})
	r.applyEnergy(42, EnergyEvent{Seq: 5, Component: telemetry.PhoneAwake, MJ: 0.25})
	r.applyEnergy(42, EnergyEvent{Seq: 6, Component: telemetry.HubDevice, MJ: 3})
	r.RecordShed(42, 10)

	sum := r.summarize(42, 99)
	if sum.Seq != 99 || sum.Wakes != 2 || sum.Heartbeats != 1 || sum.Sheds != 1 || sum.ShedMJ != 10 {
		t.Fatalf("summary = %+v", sum)
	}
	want := map[telemetry.Component]float64{telemetry.PhoneAwake: 1.75, telemetry.HubDevice: 3}
	if len(sum.Energy) != len(want) {
		t.Fatalf("summary energy = %+v, want %v", sum.Energy, want)
	}
	for _, e := range sum.Energy {
		if want[e.Component] != e.MJ {
			t.Fatalf("component %s = %v, want %v", e.Component, e.MJ, want[e.Component])
		}
	}

	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d devices, want 1", len(snap))
	}
	d := snap[0]
	if d.ID != 42 || d.Wakes != 2 || d.TotalMJ != 4.75 || d.ShedMJ != 10 || d.LastSeq != 6 || d.Epoch != 9 {
		t.Fatalf("snapshot device = %+v", d)
	}

	// Summarizing an unknown device returns an empty summary, not a panic.
	if s := r.summarize(1000, 5); s.Seq != 5 || s.Wakes != 0 {
		t.Fatalf("unknown device summary = %+v", s)
	}
}

func TestRegistryRestoreRoundTrip(t *testing.T) {
	r := NewRegistry(8)
	r.Connect(1)
	r.applyWake(1, WakeEvent{Seq: 1})
	r.applyEnergy(1, EnergyEvent{Seq: 2, Component: telemetry.PhoneAsleep, MJ: 5})
	r.Connect(2)
	r.applyEnergy(2, EnergyEvent{Seq: 1, Component: telemetry.HubDevice, MJ: 7})

	r2 := NewRegistry(3) // different shard count: restore must not care
	for _, d := range r.Snapshot() {
		if err := r2.restore(d); err != nil {
			t.Fatalf("restore: %v", err)
		}
	}
	a, b := r.Snapshot(), r2.Snapshot()
	if len(a) != len(b) {
		t.Fatalf("restored %d devices, want %d", len(b), len(a))
	}
	for i := range a {
		// Connection state is runtime-only; everything else must survive.
		a[i].Connected = false
		got, want := b[i], a[i]
		if got.ID != want.ID || got.Wakes != want.Wakes || got.TotalMJ != want.TotalMJ ||
			got.LastSeq != want.LastSeq {
			t.Fatalf("device %d: restored %+v, want %+v", want.ID, got, want)
		}
	}

	// A checkpoint from a future registry with more components must be
	// refused rather than silently truncated.
	bad := DeviceStats{ID: 9, EnergyMJ: make([]float64, 64)}
	if err := r2.restore(bad); err == nil {
		t.Fatal("restore with oversized component vector should fail")
	}
}

// TestRegistryRestorePersistsAppliedAboveHoles: events applied above a
// shed hole are inside the checkpointed totals, so after a restore their
// retransmits must dedup as duplicates — re-applying them would
// double-count energy the checkpoint already holds. The hole itself must
// stay open so the client's legitimate retry is accepted.
func TestRegistryRestorePersistsAppliedAboveHoles(t *testing.T) {
	r := NewRegistry(2)
	r.Connect(9)
	r.MarkAcked(9, 1)
	r.applyWake(9, WakeEvent{Seq: 1})
	// seq 2 shed: never acked, never applied — a watermark hole.
	r.MarkAcked(9, 3)
	r.applyWake(9, WakeEvent{Seq: 3})
	r.MarkAcked(9, 4)
	r.applyEnergy(9, EnergyEvent{Seq: 4, Component: telemetry.HubDevice, MJ: 2})

	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].AppliedSeq != 1 {
		t.Fatalf("snapshot = %+v, want one device with applied watermark 1", snap)
	}
	if want := []uint32{3, 4}; !reflect.DeepEqual(snap[0].AppliedAbove, want) {
		t.Fatalf("AppliedAbove = %v, want %v", snap[0].AppliedAbove, want)
	}

	r2 := NewRegistry(5)
	if err := r2.restore(snap[0]); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if !r2.AlreadyAcked(9, 1) || !r2.AlreadyAcked(9, 3) || !r2.AlreadyAcked(9, 4) {
		t.Fatal("applied seqs must dedup after restore — re-applying double-counts checkpointed energy")
	}
	if r2.AlreadyAcked(9, 2) {
		t.Fatal("shed hole wrongly deduped after restore — its retry would be refused")
	}
	// The retry of the hole lands: the watermark sweeps the restored set.
	r2.MarkAcked(9, 2)
	if got := r2.AckedSeq(9); got != 4 {
		t.Fatalf("watermark after filling the hole = %d, want 4", got)
	}
}

func TestRegistryConcurrentSafety(t *testing.T) {
	r := NewRegistry(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := uint64(g*1000 + i)
				r.Connect(id)
				r.applyWake(id, WakeEvent{Seq: 1})
				r.applyEnergy(id, EnergyEvent{Seq: 2, Component: telemetry.HubDevice, MJ: 1})
				r.RecordShed(id, 0.5)
				r.Disconnect(id)
			}
		}(g)
	}
	wg.Wait()
	if got := r.Len(); got != 1600 {
		t.Fatalf("Len() = %d, want 1600", got)
	}
	for _, d := range r.Snapshot() {
		if d.Wakes != 1 || d.TotalMJ != 1 || d.ShedMJ != 0.5 {
			t.Fatalf("device %d state after concurrent ops: %+v", d.ID, d)
		}
	}
}
