package fleetd

import (
	"reflect"
	"testing"

	"sidewinder/internal/telemetry"
)

// testSession builds a devSession over n wake frames with seqs 1..n.
func testSession(n int) *devSession {
	frames := make([]outFrame, n)
	for i := range frames {
		seq := uint32(i + 1)
		frames[i] = outFrame{kind: itemWake, seq: seq,
			wire: mustFrame(MsgDeviceWake, WakeEvent{Seq: seq, Node: uint16(i), Value: 1}.Encode())}
	}
	return &devSession{
		frames:         frames,
		resolved:       make([]bool, n),
		resolvedShed:   make([]bool, n),
		energyAccepted: make([]float64, len(telemetry.Components())),
	}
}

// TestShedFramesNotRetransmitted pins the reconnect contract for sheds: a
// frame resolved as AckShed is a settled transaction (fallback billed on
// both sides), so the next attempt's retransmission set must skip it —
// re-offering it could get it accepted this time and double-count the
// event. Resolved-accepted frames above the watermark, by contrast, MUST
// be re-offered (a checkpoint-restarted server may have lost them).
func TestShedFramesNotRetransmitted(t *testing.T) {
	st := testSession(4)
	st.resolve(0, AckAccepted) // seq 1
	st.resolve(1, AckShed)     // seq 2: hole in the server watermark
	st.resolve(2, AckAccepted) // seq 3: accepted above the hole
	// seq 4 unresolved: its ack died with the old connection.

	if st.shed != 1 || st.wakes != 2 {
		t.Fatalf("shed=%d wakes=%d, want 1/2", st.shed, st.wakes)
	}

	// Reconnect. The server's contiguous watermark stops below the shed
	// hole, so it hands back 1: everything above must be re-offered except
	// the shed frame.
	got := st.unsentAbove(1)
	if want := []int{2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("unsentAbove(1) = %v, want %v (shed seq 2 must not ride again)", got, want)
	}

	// A duplicate ack for the re-offered accepted frame must not re-count.
	st.resolve(2, AckDup)
	if st.wakes != 2 || st.dup != 0 {
		t.Fatalf("re-resolving an already-resolved frame changed counters: wakes=%d dup=%d", st.wakes, st.dup)
	}

	// After a full server restart the watermark can roll back to zero;
	// the shed frame still stays off the wire.
	got = st.unsentAbove(0)
	if want := []int{0, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("unsentAbove(0) = %v, want %v", got, want)
	}
}
