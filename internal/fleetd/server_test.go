package fleetd

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sidewinder/internal/link"
	"sidewinder/internal/sim"
	"sidewinder/internal/telemetry"
)

// testCell fabricates a cell with distinct, recognizable energy values.
func testCell(wakes int) *sim.FleetCell {
	return &sim.FleetCell{
		Wakes:            wakes,
		PhoneStateMJ:     [4]float64{1.25, 2.5, 3.75, 0.5},
		FallbackEnergyMJ: 4.5,
		HubEnergyMJ:      6.125,
		AvgMW:            100,
	}
}

func startTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { s.Drain() })
	return s
}

// TestLoadIdentity is the daemon's anchor test: a population replayed
// over real sockets must leave the daemon with per-device energy totals
// byte-identical to what batch sim.FleetRun records for the same seed,
// and a global ledger that conserves against the batch ledger.
func TestLoadIdentity(t *testing.T) {
	res, batchLedger, err := BuildPopulation(24, 2, 42, 2*time.Second, 0)
	if err != nil {
		t.Fatalf("BuildPopulation: %v", err)
	}
	led := telemetry.NewLedger()
	s := startTestServer(t, Config{Telemetry: telemetry.Set{Ledger: led}})

	rep, err := RunLoad(LoadConfig{Addr: s.Addr()}, res.Cells)
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Mismatches != 0 {
		t.Fatalf("%d devices reported summary mismatches", rep.Mismatches)
	}
	if rep.Shed != 0 {
		t.Fatalf("identity run must not shed (default queues), got %d", rep.Shed)
	}
	if rep.Devices != 24 || len(rep.Summaries) != 24 {
		t.Fatalf("report covers %d devices / %d summaries, want 24", rep.Devices, len(rep.Summaries))
	}

	// Per-device identity against the batch cells, bit for bit.
	snap := s.Registry().Snapshot()
	if len(snap) != len(res.Cells) {
		t.Fatalf("registry has %d devices, want %d", len(snap), len(res.Cells))
	}
	for _, d := range snap {
		cell := res.Cells[d.ID-1]
		want := map[telemetry.Component]float64{
			telemetry.PhoneAsleep:        cell.PhoneStateMJ[0],
			telemetry.PhoneWaking:        cell.PhoneStateMJ[1],
			telemetry.PhoneAwake:         cell.PhoneStateMJ[2],
			telemetry.PhoneFallingAsleep: cell.PhoneStateMJ[3],
			telemetry.PhoneFallback:      cell.FallbackEnergyMJ,
			telemetry.HubDevice:          cell.HubEnergyMJ,
		}
		for c, w := range want {
			if got := d.EnergyMJ[c]; math.Float64bits(got) != math.Float64bits(w) {
				t.Fatalf("device %d component %s: daemon %v, batch %v", d.ID, c, got, w)
			}
		}
		if d.Wakes != uint64(cell.Wakes) {
			t.Fatalf("device %d wakes: daemon %d, batch %d", d.ID, d.Wakes, cell.Wakes)
		}
	}

	drain, err := s.Drain()
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !drain.ConservationOK {
		t.Fatalf("drain conservation failed: err %g mJ over %g mJ", drain.ConservationErrMJ, drain.DeviceTotalMJ)
	}
	// Global ledger vs the batch reference: accumulation order differs
	// across devices, so the comparison is relative, one part in 1e9.
	got, want := led.TotalMJ(), batchLedger.TotalMJ()
	if diff := math.Abs(got - want); diff > 1e-9*math.Max(1, want) {
		t.Fatalf("daemon ledger %.9f mJ, batch ledger %.9f mJ (diff %g)", got, want, diff)
	}
	if rep.EventsPerSec <= 0 || rep.P50ms < 0 || rep.P99ms < rep.P50ms || rep.P999ms < rep.P99ms {
		t.Fatalf("implausible throughput/latency report: %+v", rep)
	}
}

// TestBackpressureShedsAreCountedAndBilled drives the ingest path with the
// shard worker stopped (Start never called), so a depth-1 queue fills
// deterministically: the second event must be refused with AckShed,
// counted, and billed to phone.fallback on both the ledger and the device.
func TestBackpressureShedsAreCountedAndBilled(t *testing.T) {
	reg := telemetry.NewRegistry()
	led := telemetry.NewLedger()
	s, err := NewServer(Config{QueueDepth: 1, Shards: 1, Telemetry: telemetry.Set{Metrics: reg, Ledger: led}})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	s.registry.Connect(1)
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)

	ackFor := func() EventAck {
		t.Helper()
		bw.Flush()
		var dec link.Decoder
		frames, err := dec.Feed(buf.Bytes())
		if err != nil || len(frames) == 0 {
			t.Fatalf("decoding ack stream: %v (%d frames)", err, len(frames))
		}
		last := frames[len(frames)-1]
		if last.Type != MsgEventAck {
			t.Fatalf("expected ack frame, got 0x%02x", byte(last.Type))
		}
		ack, err := DecodeEventAck(last.Payload)
		if err != nil {
			t.Fatalf("DecodeEventAck: %v", err)
		}
		return ack
	}

	// First energy frame fits the depth-1 queue.
	if err := s.ingest(bw, ingestItem{dev: 1, kind: itemEnergy,
		energy: EnergyEvent{Seq: 1, Component: telemetry.HubDevice, MJ: 5}}, 1, 5); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if ack := ackFor(); ack.Status != AckAccepted || ack.Seq != 1 {
		t.Fatalf("first event ack = %+v, want accepted seq 1", ack)
	}

	// Second energy frame: queue full, must shed and bill its 7 mJ.
	if err := s.ingest(bw, ingestItem{dev: 1, kind: itemEnergy,
		energy: EnergyEvent{Seq: 2, Component: telemetry.HubDevice, MJ: 7}}, 2, 7); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if ack := ackFor(); ack.Status != AckShed || ack.Seq != 2 {
		t.Fatalf("second event ack = %+v, want shed seq 2", ack)
	}

	// Shed wake: bills the configured wake fallback cost.
	if err := s.ingest(bw, ingestItem{dev: 1, kind: itemWake,
		wake: WakeEvent{Seq: 3}}, 3, s.cfg.ShedWakeCostMJ); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if ack := ackFor(); ack.Status != AckShed {
		t.Fatalf("wake ack = %+v, want shed", ack)
	}

	if got := reg.Counter("fleetd.sheds").Value(); got != 2 {
		t.Fatalf("fleetd.sheds = %d, want 2", got)
	}
	wantBill := 7 + DefaultShedWakeCostMJ
	if got := led.EnergyMJ(telemetry.PhoneFallback); got != wantBill {
		t.Fatalf("phone.fallback billed %v, want %v", got, wantBill)
	}
	snap := s.Registry().Snapshot()
	if len(snap) != 1 || snap[0].Sheds != 2 || snap[0].ShedMJ != wantBill {
		t.Fatalf("device shed record = %+v, want 2 sheds / %v mJ", snap[0], wantBill)
	}
}

// rawSession is a minimal hand-rolled client for the drain test: it
// pumps frames and records, per sequence number, which were acked
// accepted — tolerating the connection dying mid-stream when the server
// drains out from under it.
type rawSession struct {
	id            uint64
	acceptedWakes uint64
	acceptedMJ    float64
	shed          uint64
}

func (r *rawSession) run(addr string, frames int) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	fr := &frameReader{conn: conn, buf: make([]byte, 4096)}
	if _, err := conn.Write(mustFrame(MsgHello, Hello{Version: ProtocolVersion, DeviceID: r.id}.Encode())); err != nil {
		return err
	}
	if f, err := fr.next(); err != nil || f.Type != MsgHelloAck {
		return fmt.Errorf("no hello-ack: %v", err)
	}
	type sent struct {
		wake bool
		mj   float64
	}
	pending := make(map[uint32]sent, frames)
	done := make(chan struct{})
	var mu sync.Mutex
	go func() {
		defer close(done)
		for {
			f, err := fr.next()
			if err != nil {
				return // server drained; whatever was acked stands
			}
			if f.Type != MsgEventAck {
				continue
			}
			ack, err := DecodeEventAck(f.Payload)
			if err != nil {
				return
			}
			mu.Lock()
			ev, ok := pending[ack.Seq]
			delete(pending, ack.Seq)
			if ok {
				if ack.Status == AckShed {
					r.shed++
				} else if ev.wake {
					r.acceptedWakes++
				} else {
					r.acceptedMJ += ev.mj
				}
			}
			mu.Unlock()
		}
	}()
	for i := 0; i < frames; i++ {
		seq := uint32(i + 1)
		var wire []byte
		s := sent{}
		if i%2 == 0 {
			s.wake = true
			wire = mustFrame(MsgDeviceWake, WakeEvent{Seq: seq, Node: 1, Value: 1}.Encode())
		} else {
			s.mj = 1.0
			wire = mustFrame(MsgDeviceEnergy, EnergyEvent{Seq: seq, Component: telemetry.HubDevice, MJ: 1}.Encode())
		}
		mu.Lock()
		pending[seq] = s
		mu.Unlock()
		if _, err := conn.Write(wire); err != nil {
			break // drained mid-stream: fine
		}
	}
	// Wait for the outstanding acks (or the server hanging up), then
	// close: the reader exits on either.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		left := len(pending)
		mu.Unlock()
		if left == 0 {
			break
		}
		select {
		case <-done:
			left = 0
		case <-time.After(time.Millisecond):
		}
		if left == 0 {
			break
		}
	}
	conn.Close()
	<-done
	return nil
}

// TestDrainLosesNoAckedEvents interrupts a live load mid-stream and
// proves the durability promise: every event a client saw accepted is in
// the final registry state, and the drained ledger conserves.
func TestDrainLosesNoAckedEvents(t *testing.T) {
	led := telemetry.NewLedger()
	s := startTestServer(t, Config{Shards: 4, QueueDepth: 8, ShedWakeCostMJ: 2,
		Telemetry: telemetry.Set{Ledger: led}})

	const devices = 8
	sessions := make([]rawSession, devices)
	var wg sync.WaitGroup
	for i := range sessions {
		sessions[i].id = uint64(i + 1)
		wg.Add(1)
		go func(r *rawSession) {
			defer wg.Done()
			r.run(s.Addr(), 400)
		}(&sessions[i])
	}
	time.Sleep(20 * time.Millisecond) // let the stream get going, then yank it
	rep, err := s.Drain()
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()

	byID := make(map[uint64]DeviceStats)
	for _, d := range s.Registry().Snapshot() {
		byID[d.ID] = d
	}
	for i := range sessions {
		r := &sessions[i]
		d, ok := byID[r.id]
		if !ok {
			if r.acceptedWakes > 0 || r.acceptedMJ > 0 {
				t.Fatalf("device %d acked events but is missing from the registry", r.id)
			}
			continue
		}
		// The server may have applied events whose acks never reached the
		// client (closed conn), so server >= client-acked, never less.
		if d.Wakes < r.acceptedWakes {
			t.Fatalf("device %d: %d acked wakes but registry has %d — acked events were lost",
				r.id, r.acceptedWakes, d.Wakes)
		}
		if d.TotalMJ+1e-12 < r.acceptedMJ {
			t.Fatalf("device %d: %.1f acked mJ but registry has %.1f — acked deposits were lost",
				r.id, r.acceptedMJ, d.TotalMJ)
		}
	}
	if !rep.ConservationOK {
		t.Fatalf("conservation failed across drain: err %g mJ", rep.ConservationErrMJ)
	}
	if got := led.TotalMJ(); math.Abs(got-rep.LedgerTotalMJ) > 1e-12 {
		t.Fatalf("report ledger %v != live ledger %v", rep.LedgerTotalMJ, got)
	}
}

// TestCheckpointRestart drains a loaded daemon, restarts from its
// checkpoint, and verifies totals survive with the epoch bumped.
func TestCheckpointRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.checkpoint")
	led := telemetry.NewLedger()
	s := startTestServer(t, Config{CheckpointPath: path, Telemetry: telemetry.Set{Ledger: led}})
	if s.Epoch() != 1 {
		t.Fatalf("fresh epoch = %d, want 1", s.Epoch())
	}

	r := rawSession{id: 9}
	if err := r.run(s.Addr(), 100); err != nil {
		t.Fatalf("session: %v", err)
	}
	rep, err := s.Drain()
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if rep.CheckpointPath != path {
		t.Fatalf("drain checkpoint path = %q, want %q", rep.CheckpointPath, path)
	}

	s2, err := NewServer(Config{CheckpointPath: path})
	if err != nil {
		t.Fatalf("NewServer from checkpoint: %v", err)
	}
	if s2.Epoch() != 2 {
		t.Fatalf("restarted epoch = %d, want 2", s2.Epoch())
	}
	snap, snap2 := s.Registry().Snapshot(), s2.Registry().Snapshot()
	if len(snap2) != len(snap) {
		t.Fatalf("restored %d devices, want %d", len(snap2), len(snap))
	}
	for i := range snap {
		if snap2[i].ID != snap[i].ID || snap2[i].Wakes != snap[i].Wakes ||
			math.Float64bits(snap2[i].TotalMJ) != math.Float64bits(snap[i].TotalMJ) {
			t.Fatalf("device %d: restored %+v, want %+v", snap[i].ID, snap2[i], snap[i])
		}
	}
	cp := s2.Snapshot()
	if !conservationOK(cp.ConservationErrMJ, cp.Ledger.TotalMJ) {
		t.Fatalf("restored ledger does not conserve: err %g mJ", cp.ConservationErrMJ)
	}
}

// TestHTTPEndpoints smoke-checks the observability surface.
func TestHTTPEndpoints(t *testing.T) {
	s := startTestServer(t, Config{HTTPAddr: "127.0.0.1:0"})
	r := rawSession{id: 3}
	if err := r.run(s.Addr(), 10); err != nil {
		t.Fatalf("session: %v", err)
	}
	for _, path := range []string{"/metrics", "/metrics.json", "/ledger", "/snapshot", "/healthz"} {
		resp, err := http.Get("http://" + s.HTTPAddr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, body)
		}
		if len(body) == 0 {
			t.Fatalf("GET %s returned an empty body", path)
		}
	}
}

// TestBadPeersAreRejected: events before hello, version mismatches and
// malformed payloads all tear the connection down.
func TestBadPeersAreRejected(t *testing.T) {
	s := startTestServer(t, Config{})
	expectClosed := func(name string, frames ...[]byte) {
		t.Helper()
		conn, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatalf("%s: dial: %v", name, err)
		}
		defer conn.Close()
		for _, f := range frames {
			if _, err := conn.Write(f); err != nil {
				return // already closed on us: fine
			}
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 256)
		for {
			if _, err := conn.Read(buf); err != nil {
				return // EOF/reset: the server hung up, as required
			}
		}
	}
	expectClosed("wake before hello",
		mustFrame(MsgDeviceWake, WakeEvent{Seq: 1}.Encode()))
	expectClosed("version mismatch",
		mustFrame(MsgHello, Hello{Version: 99, DeviceID: 1}.Encode()))
	expectClosed("truncated hello",
		mustFrame(MsgHello, []byte{1, 2, 3}))
	expectClosed("unknown type after hello",
		mustFrame(MsgHello, Hello{Version: ProtocolVersion, DeviceID: 5}.Encode()),
		mustFrame(link.MsgType(0x7E), []byte{1}))
}

// TestScheduleMatchesDepositOrder pins the load generator's energy frame
// order to FleetCell.DepositEnergy — the identity contract's other half.
func TestScheduleMatchesDepositOrder(t *testing.T) {
	cell := testCell(3)
	frames := schedule(cell, 2, 1)
	// 3 wakes with a heartbeat every 2 wakes -> hb,wake,wake,hb,wake.
	var kinds []int
	var comps []telemetry.Component
	for _, f := range frames {
		kinds = append(kinds, f.kind)
		if f.kind == itemEnergy {
			comps = append(comps, f.component)
		}
	}
	wantKinds := []int{frameHeartbeat, itemWake, itemWake, frameHeartbeat, itemWake,
		itemEnergy, itemEnergy, itemEnergy, itemEnergy, itemEnergy, itemEnergy}
	if len(kinds) != len(wantKinds) {
		t.Fatalf("schedule has %d frames, want %d: %v", len(kinds), len(wantKinds), kinds)
	}
	for i := range kinds {
		if kinds[i] != wantKinds[i] {
			t.Fatalf("frame %d kind = %d, want %d", i, kinds[i], wantKinds[i])
		}
	}
	wantComps := []telemetry.Component{telemetry.PhoneAsleep, telemetry.PhoneWaking,
		telemetry.PhoneAwake, telemetry.PhoneFallingAsleep, telemetry.PhoneFallback, telemetry.HubDevice}
	for i := range comps {
		if comps[i] != wantComps[i] {
			t.Fatalf("energy frame %d component = %s, want %s", i, comps[i], wantComps[i])
		}
	}
	// Sequence numbers must be dense and ascending: acks come back in
	// send order and the client matches them positionally.
	for i, f := range frames {
		if f.seq != uint32(i+1) {
			t.Fatalf("frame %d seq = %d, want %d", i, f.seq, i+1)
		}
	}
}

// TestByeWaitReleasedByKill: a bye can be enqueued just before Kill fires,
// in which case the shard worker exits via killCh without ever replying.
// The connection reader's reply wait must take the same kill escape —
// otherwise it blocks forever and Kill's wgConns.Wait deadlocks. The
// server here is never Started, so no worker will ever answer the bye:
// without the escape this test hangs on the 5s guard.
func TestByeWaitReleasedByKill(t *testing.T) {
	s, err := NewServer(Config{Shards: 1})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	sess := &session{bw: bufio.NewWriter(io.Discard), dev: 5, helloed: true}
	done := make(chan error, 1)
	go func() {
		done <- s.handleFrame(link.Frame{Type: MsgBye, Payload: Bye{Seq: 9}.Encode()}, sess)
	}()
	time.Sleep(20 * time.Millisecond) // let the bye enqueue and park on the reply
	s.Kill()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("bye during kill must error, not fabricate a bye-ack")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("bye reply wait not released by Kill — reader goroutine leaked, Kill would deadlock")
	}
}
