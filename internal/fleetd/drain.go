package fleetd

import (
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// Drainer turns process signals into a graceful-drain request any long
// replay or service loop can poll. First signal: the drain channel
// closes and Requested flips true — the owner finishes the unit of work
// in hand, flushes its telemetry and exits cleanly. Second signal: the
// operator has lost patience; the process hard-exits with status 1.
//
// sidewinderd drains its ingest queues behind it; hubemu uses the same
// helper so an interrupted replay flushes -metrics/-traceout instead of
// dying mid-frame.
type Drainer struct {
	once     sync.Once
	ch       chan struct{}
	sigc     chan os.Signal
	quit     chan struct{}
	stopOnce sync.Once
	hardExit func(int) // os.Exit, stubbed in tests
}

// WatchSignals installs a drainer on the given signals (default: SIGINT
// and SIGTERM).
func WatchSignals(sigs ...os.Signal) *Drainer {
	return watchSignalsWithExit(os.Exit, sigs...)
}

// watchSignalsWithExit is WatchSignals with the hard-exit hook injected —
// the hook must be in place before the watcher starts, so tests stub it
// here rather than poking the field afterwards.
func watchSignalsWithExit(exit func(int), sigs ...os.Signal) *Drainer {
	if len(sigs) == 0 {
		sigs = []os.Signal{os.Interrupt, syscall.SIGTERM}
	}
	d := &Drainer{
		ch:       make(chan struct{}),
		sigc:     make(chan os.Signal, 2),
		quit:     make(chan struct{}),
		hardExit: exit,
	}
	signal.Notify(d.sigc, sigs...)
	go d.watch()
	return d
}

func (d *Drainer) watch() {
	select {
	case <-d.sigc:
		d.Request()
	case <-d.quit:
		return
	}
	select {
	case <-d.sigc:
		d.hardExit(1)
	case <-d.quit:
	}
}

// Request triggers the drain without a signal (tests, or an internal
// fatal condition that wants the graceful path). Idempotent.
func (d *Drainer) Request() {
	if d == nil {
		return
	}
	d.once.Do(func() { close(d.ch) })
}

// C returns a channel closed on the first drain request. Nil-safe: a nil
// drainer returns a never-closed channel.
func (d *Drainer) C() <-chan struct{} {
	if d == nil {
		return make(chan struct{})
	}
	return d.ch
}

// Requested reports whether a drain has been requested. Nil-safe and
// cheap enough for per-sample replay loops (one select on a closed
// channel).
func (d *Drainer) Requested() bool {
	if d == nil {
		return false
	}
	select {
	case <-d.ch:
		return true
	default:
		return false
	}
}

// Stop detaches the signal handler and releases the watcher goroutine.
// After Stop the drainer keeps its current state but no longer reacts to
// signals.
func (d *Drainer) Stop() {
	if d == nil {
		return
	}
	d.stopOnce.Do(func() {
		signal.Stop(d.sigc)
		close(d.quit)
	})
}
