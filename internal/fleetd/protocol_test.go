package fleetd

import (
	"math"
	"testing"

	"sidewinder/internal/link"
	"sidewinder/internal/telemetry"
)

func TestProtocolRoundTrips(t *testing.T) {
	hello := Hello{Version: ProtocolVersion, DeviceID: 0xDEADBEEFCAFE}
	if got, err := DecodeHello(hello.Encode()); err != nil || got != hello {
		t.Fatalf("hello roundtrip: got %+v, err %v", got, err)
	}
	ha := HelloAck{Epoch: 7, Shard: 12}
	if got, err := DecodeHelloAck(ha.Encode()); err != nil || got != ha {
		t.Fatalf("hello-ack roundtrip: got %+v, err %v", got, err)
	}
	we := WakeEvent{Seq: 42, Node: 3, Value: -1.5}
	if got, err := DecodeWakeEvent(we.Encode()); err != nil || got != we {
		t.Fatalf("wake roundtrip: got %+v, err %v", got, err)
	}
	ee := EnergyEvent{Seq: 99, Component: telemetry.HubDevice, MJ: 123.456}
	if got, err := DecodeEnergyEvent(ee.Encode()); err != nil || got != ee {
		t.Fatalf("energy roundtrip: got %+v, err %v", got, err)
	}
	ack := EventAck{Seq: 5, Status: AckShed}
	if got, err := DecodeEventAck(ack.Encode()); err != nil || got != ack {
		t.Fatalf("ack roundtrip: got %+v, err %v", got, err)
	}
	bye := Bye{Seq: 77}
	if got, err := DecodeBye(bye.Encode()); err != nil || got != bye {
		t.Fatalf("bye roundtrip: got %+v, err %v", got, err)
	}
	hb := Heartbeat{Seq: 11, Epoch: 2}
	if got, err := DecodeHeartbeat(hb.Encode()); err != nil || got != hb {
		t.Fatalf("heartbeat roundtrip: got %+v, err %v", got, err)
	}
}

func TestDeviceSummaryRoundTrip(t *testing.T) {
	sum := DeviceSummary{
		Seq: 1234, Wakes: 10, Heartbeats: 3, Sheds: 2, ShedMJ: 2096,
		Energy: []ComponentMJ{
			{telemetry.PhoneAsleep, 12.5},
			{telemetry.HubDevice, 0.0625},
		},
	}
	got, err := DecodeDeviceSummary(sum.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Seq != sum.Seq || got.Wakes != sum.Wakes || got.Heartbeats != sum.Heartbeats ||
		got.Sheds != sum.Sheds || got.ShedMJ != sum.ShedMJ || len(got.Energy) != len(sum.Energy) {
		t.Fatalf("summary roundtrip: got %+v, want %+v", got, sum)
	}
	for i := range sum.Energy {
		if got.Energy[i] != sum.Energy[i] {
			t.Fatalf("energy[%d]: got %+v, want %+v", i, got.Energy[i], sum.Energy[i])
		}
	}
	// Empty energy list must survive too.
	empty := DeviceSummary{Seq: 1}
	if got, err := DecodeDeviceSummary(empty.Encode()); err != nil || len(got.Energy) != 0 {
		t.Fatalf("empty summary roundtrip: got %+v, err %v", got, err)
	}
}

// Every truncated payload must classify as malformed (a CRC-valid frame
// with a bad payload is a peer bug, not line damage) so the server knows
// to tear the connection down rather than skip and continue.
func TestTruncatedPayloadsAreMalformed(t *testing.T) {
	decoders := map[string]func([]byte) error{
		"hello":     func(p []byte) error { _, err := DecodeHello(p); return err },
		"hello-ack": func(p []byte) error { _, err := DecodeHelloAck(p); return err },
		"wake":      func(p []byte) error { _, err := DecodeWakeEvent(p); return err },
		"energy":    func(p []byte) error { _, err := DecodeEnergyEvent(p); return err },
		"ack":       func(p []byte) error { _, err := DecodeEventAck(p); return err },
		"bye":       func(p []byte) error { _, err := DecodeBye(p); return err },
		"summary":   func(p []byte) error { _, err := DecodeDeviceSummary(p); return err },
		"heartbeat": func(p []byte) error { _, err := DecodeHeartbeat(p); return err },
	}
	for name, dec := range decoders {
		err := dec([]byte{0x01})
		if err == nil {
			t.Fatalf("%s: decoding 1 byte should fail", name)
		}
		if !link.IsMalformed(err) {
			t.Fatalf("%s: error %v should classify as malformed", name, err)
		}
		if link.IsCorrupt(err) {
			t.Fatalf("%s: error %v must not classify as corrupt", name, err)
		}
	}
}

func TestEnergyEventRejectsBadDeposits(t *testing.T) {
	for _, mj := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1} {
		wire := EnergyEvent{Seq: 1, Component: telemetry.HubDevice, MJ: mj}.Encode()
		if _, err := DecodeEnergyEvent(wire); err == nil {
			t.Fatalf("deposit %v should be rejected", mj)
		}
	}
	bad := EnergyEvent{Seq: 1, Component: telemetry.HubDevice, MJ: 1}.Encode()
	bad[4] = 0xFF // unknown component
	if _, err := DecodeEnergyEvent(bad); err == nil || !link.IsMalformed(err) {
		t.Fatalf("unknown component should be malformed, got %v", err)
	}
}
