package fleetd

import (
	"math"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sidewinder/internal/chaosproxy"
	"sidewinder/internal/sim"
	"sidewinder/internal/telemetry"
)

// The chaos suite proves the ingest path's end-to-end robustness
// contract: a fleet replay routed through a fault-injecting proxy must
// finish with zero unrecovered devices and per-device energy totals
// bit-for-bit identical to the fault-free run — resets, cuts, bit
// corruption, stalls and partitions included — and a SIGKILL-style stop
// plus restart must recover from the checkpoint chain without losing an
// acked event.

// chaosLoadConfig is the resilient client tuned for fast test runs.
func chaosLoadConfig(addr string) LoadConfig {
	return LoadConfig{
		Addr:        addr,
		Reconnect:   50,
		BackoffBase: 2 * time.Millisecond,
		BackoffCap:  50 * time.Millisecond,
		AckTimeout:  5 * time.Second,
	}
}

// verifyBitIdentity checks the registry against the batch cells the way
// TestLoadIdentity does: per-device, per-component, bit for bit.
func verifyBitIdentity(t *testing.T, s *Server, cells []sim.FleetCell) {
	t.Helper()
	snap := s.Registry().Snapshot()
	if len(snap) != len(cells) {
		t.Fatalf("registry has %d devices, want %d", len(snap), len(cells))
	}
	for _, d := range snap {
		cell := cells[d.ID-1]
		want := map[telemetry.Component]float64{
			telemetry.PhoneAsleep:        cell.PhoneStateMJ[0],
			telemetry.PhoneWaking:        cell.PhoneStateMJ[1],
			telemetry.PhoneAwake:         cell.PhoneStateMJ[2],
			telemetry.PhoneFallingAsleep: cell.PhoneStateMJ[3],
			telemetry.PhoneFallback:      cell.FallbackEnergyMJ,
			telemetry.HubDevice:          cell.HubEnergyMJ,
		}
		for c, w := range want {
			if got := d.EnergyMJ[c]; math.Float64bits(got) != math.Float64bits(w) {
				t.Fatalf("device %d component %s: daemon %v, batch %v", d.ID, c, got, w)
			}
		}
		if d.Wakes != uint64(cell.Wakes) {
			t.Fatalf("device %d wakes: daemon %d, batch %d", d.ID, d.Wakes, cell.Wakes)
		}
	}
}

// TestChaosProfilesEquivalence drives a fleet replay through the chaos
// proxy under every fault profile at three seeds each and demands exact
// equivalence with the fault-free run. Fault rates are cranked well
// above the soak profiles so even a small population sees every fault
// class many times.
func TestChaosProfilesEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos equivalence sweep is not short")
	}
	res, _, err := BuildPopulation(8, 2, 42, 1500*time.Millisecond, 0)
	if err != nil {
		t.Fatalf("BuildPopulation: %v", err)
	}
	profiles := []chaosproxy.Profile{
		{Name: "resets", ResetProb: 0.03, CutProb: 0.03},
		{Name: "corrupt", CorruptProb: 0.08},
		{Name: "combined", ResetProb: 0.01, CutProb: 0.01, CorruptProb: 0.02,
			DelayProb: 0.1, DelayMax: time.Millisecond},
	}
	for _, prof := range profiles {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			var faults uint64
			for seed := int64(1); seed <= 3; seed++ {
				led := telemetry.NewLedger()
				s := startTestServer(t, Config{
					Shards:      4,
					IdleTimeout: 2 * time.Second,
					Telemetry:   telemetry.Set{Ledger: led},
				})
				p, err := chaosproxy.New(chaosproxy.Config{
					ListenAddr: "127.0.0.1:0", TargetAddr: s.Addr(),
					Profile: prof, Seed: seed,
				})
				if err != nil {
					t.Fatalf("seed %d: proxy: %v", seed, err)
				}
				p.Start()

				rep, err := RunLoad(chaosLoadConfig(p.Addr()), res.Cells)
				if err != nil {
					t.Fatalf("seed %d: RunLoad through chaos: %v", seed, err)
				}
				if rep.Unrecovered != 0 || rep.Mismatches != 0 {
					t.Fatalf("seed %d: unrecovered=%d mismatches=%d, want 0/0",
						seed, rep.Unrecovered, rep.Mismatches)
				}
				if rep.Shed != 0 {
					t.Fatalf("seed %d: default queues must not shed, got %d", seed, rep.Shed)
				}
				verifyBitIdentity(t, s, res.Cells)

				drain, err := s.Drain()
				if err != nil {
					t.Fatalf("seed %d: Drain: %v", seed, err)
				}
				if !drain.ConservationOK {
					t.Fatalf("seed %d: conservation failed: err %g mJ", seed, drain.ConservationErrMJ)
				}
				st := p.Stats().Snapshot()
				faults += st.Resets + st.Cuts + st.CorruptChunks + st.Delays
				p.Close()
			}
			if faults == 0 {
				t.Fatalf("profile %s injected no faults across 3 seeds — the sweep proved nothing", prof.Name)
			}
		})
	}
}

// TestChaosStallAndPartition covers the time-domain faults: a slow-loris
// stall longer than the client's ack timeout, and a timed blackhole
// partition. Both force ack-timeout reconnects (and, for stalls, session
// takeovers when the stalled connection's bytes finally land).
func TestChaosStallAndPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos timing tests are not short")
	}
	res, _, err := BuildPopulation(4, 2, 43, time.Second, 0)
	if err != nil {
		t.Fatalf("BuildPopulation: %v", err)
	}
	profiles := []chaosproxy.Profile{
		{Name: "stall", StallProb: 0.02, StallDur: 900 * time.Millisecond},
		// Partition open from t=0: the initial hellos are guaranteed to
		// vanish into the blackhole, so recovery is exercised on every run.
		{Name: "partition", PartitionAfter: 0, PartitionDur: 400 * time.Millisecond},
	}
	for _, prof := range profiles {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			reg := telemetry.NewRegistry()
			led := telemetry.NewLedger()
			s := startTestServer(t, Config{
				Shards:      4,
				IdleTimeout: 2 * time.Second,
				Telemetry:   telemetry.Set{Metrics: reg, Ledger: led},
			})
			p, err := chaosproxy.New(chaosproxy.Config{
				ListenAddr: "127.0.0.1:0", TargetAddr: s.Addr(),
				Profile: prof, Seed: 7,
			})
			if err != nil {
				t.Fatalf("proxy: %v", err)
			}
			p.Start()
			defer p.Close()

			cfg := chaosLoadConfig(p.Addr())
			cfg.AckTimeout = 300 * time.Millisecond // stalls/partitions must become reconnects
			rep, err := RunLoad(cfg, res.Cells)
			if err != nil {
				t.Fatalf("RunLoad: %v", err)
			}
			if rep.Unrecovered != 0 || rep.Mismatches != 0 {
				t.Fatalf("unrecovered=%d mismatches=%d, want 0/0", rep.Unrecovered, rep.Mismatches)
			}
			verifyBitIdentity(t, s, res.Cells)
			drain, err := s.Drain()
			if err != nil || !drain.ConservationOK {
				t.Fatalf("drain: err=%v conservation err %g mJ", err, drain.ConservationErrMJ)
			}
			st := p.Stats().Snapshot()
			if prof.StallProb > 0 && st.Stalls == 0 {
				t.Fatalf("stall profile never stalled")
			}
			if prof.PartitionDur > 0 && st.BlackholedBytes == 0 {
				t.Fatalf("partition profile never blackholed a byte")
			}
			if prof.PartitionDur > 0 && rep.Reconnects == 0 {
				t.Fatalf("partition run should have forced reconnects, report: %+v", rep)
			}
		})
	}
}

// TestKillRestartRecoversFromCheckpointChain is the crash-recovery
// acceptance test: SIGKILL-style stop mid-load, deliberate corruption of
// the newest checkpoint, restart on the same address — the fleet replay
// must still finish with zero unrecovered devices and exact totals. The
// resume rewind (acked watermark rolled back to the durable applied seq)
// plus server-side dedup is what turns the crash into a non-event.
func TestKillRestartRecoversFromCheckpointChain(t *testing.T) {
	if testing.Short() {
		t.Skip("kill-restart recovery is not short")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.checkpoint")

	// A hand-built population large enough that the kill lands mid-load.
	const devices = 4
	cells := make([]sim.FleetCell, devices)
	for i := range cells {
		cells[i] = *testCell(12000)
	}

	newCfg := func(addr string) Config {
		return Config{
			Addr:            addr,
			Shards:          4,
			CheckpointPath:  path,
			CheckpointEvery: 25 * time.Millisecond,
			Telemetry:       telemetry.Set{Ledger: telemetry.NewLedger()},
		}
	}
	s1, err := NewServer(newCfg("127.0.0.1:0"))
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if err := s1.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	addr := s1.Addr()

	cfg := chaosLoadConfig(addr)
	cfg.Window = 32
	cfg.AckTimeout = 2 * time.Second
	type loadResult struct {
		rep *LoadReport
		err error
	}
	loadDone := make(chan loadResult, 1)
	go func() {
		rep, err := RunLoad(cfg, cells)
		loadDone <- loadResult{rep, err}
	}()

	// Let the stream and at least two periodic checkpoints happen, then
	// pull the plug without ceremony.
	time.Sleep(120 * time.Millisecond)
	s1.Kill()
	if _, err := s1.Drain(); err == nil {
		t.Fatal("Drain after Kill should refuse")
	}
	select {
	case r := <-loadDone:
		t.Fatalf("load finished before the kill (rep=%+v err=%v) — population too small to test recovery", r.rep, r.err)
	default:
	}

	// Sabotage the newest checkpoint: recovery must reject it (CRC) and
	// fall back to the .bak snapshot.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	if _, err := os.Stat(path + BakSuffix); err != nil {
		t.Fatalf("no .bak in the chain after periodic checkpoints: %v", err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("corrupt checkpoint: %v", err)
	}

	// Restart on the same address from the damaged chain.
	reg2 := telemetry.NewRegistry()
	cfg2 := newCfg(addr)
	cfg2.Telemetry.Metrics = reg2
	var s2 *Server
	for attempt := 0; ; attempt++ {
		s2, err = NewServer(cfg2)
		if err != nil {
			t.Fatalf("NewServer from damaged chain: %v", err)
		}
		if err = s2.Start(); err == nil {
			break
		}
		if attempt > 100 {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := reg2.Counter("fleetd.checkpoint_fallbacks").Value(); got != 1 {
		t.Fatalf("fleetd.checkpoint_fallbacks = %d, want 1", got)
	}
	if s2.Epoch() < 2 {
		t.Fatalf("restarted epoch = %d, want >= 2", s2.Epoch())
	}

	r := <-loadDone
	if r.err != nil {
		t.Fatalf("RunLoad across kill+restart: %v", r.err)
	}
	if r.rep.Unrecovered != 0 || r.rep.Mismatches != 0 {
		t.Fatalf("unrecovered=%d mismatches=%d, want 0/0", r.rep.Unrecovered, r.rep.Mismatches)
	}
	if r.rep.Reconnects == 0 {
		t.Fatalf("a killed server must force reconnects, report: %+v", r.rep)
	}
	if r.rep.Shed != 0 {
		t.Fatalf("recovery run must not shed, got %d", r.rep.Shed)
	}

	verifyBitIdentity(t, s2, cells)
	drain, err := s2.Drain()
	if err != nil {
		t.Fatalf("final drain: %v", err)
	}
	if !drain.ConservationOK {
		t.Fatalf("conservation failed after recovery: err %g mJ", drain.ConservationErrMJ)
	}
}

// TestIdleSessionIsReaped is the satellite regression test: a client
// that goes silent after hello must be disconnected within the idle
// timeout and counted in fleetd.idle_reaps.
func TestIdleSessionIsReaped(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := startTestServer(t, Config{
		IdleTimeout: 100 * time.Millisecond,
		Telemetry:   telemetry.Set{Metrics: reg},
	})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	fr := &frameReader{conn: conn, buf: make([]byte, 4096)}
	if _, err := conn.Write(mustFrame(MsgHello, Hello{Version: ProtocolVersion, DeviceID: 11}.Encode())); err != nil {
		t.Fatalf("hello: %v", err)
	}
	if f, err := fr.next(); err != nil || f.Type != MsgHelloAck {
		t.Fatalf("hello-ack: %v (type %v)", err, f.Type)
	}

	// Now stall. The server must hang up on us, not wait forever.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	if _, err := conn.Read(make([]byte, 16)); err == nil {
		t.Fatal("server sent data to a silent client")
	} else if time.Since(start) >= 5*time.Second {
		t.Fatal("server never reaped the idle session")
	}
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("fleetd.idle_reaps").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("fleetd.idle_reaps never incremented")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s.Registry().Connected() != 0 {
		t.Fatalf("reaped device still counted connected")
	}
}

// TestSessionTakeoverNewestWins: a second connection for the same device
// evicts the first.
func TestSessionTakeoverNewestWins(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := startTestServer(t, Config{Telemetry: telemetry.Set{Metrics: reg}})

	dial := func() (net.Conn, *frameReader) {
		t.Helper()
		conn, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		fr := &frameReader{conn: conn, buf: make([]byte, 4096), timeout: 5 * time.Second}
		if _, err := conn.Write(mustFrame(MsgHello, Hello{Version: ProtocolVersion, DeviceID: 21}.Encode())); err != nil {
			t.Fatalf("hello: %v", err)
		}
		if f, err := fr.next(); err != nil || f.Type != MsgHelloAck {
			t.Fatalf("hello-ack: %v", err)
		}
		return conn, fr
	}

	c1, fr1 := dial()
	defer c1.Close()
	c2, fr2 := dial()
	defer c2.Close()

	// The first connection is dead: its next read must fail.
	if _, err := fr1.next(); err == nil {
		t.Fatal("old session survived a takeover")
	}
	if got := reg.Counter("fleetd.takeovers").Value(); got != 1 {
		t.Fatalf("fleetd.takeovers = %d, want 1", got)
	}
	// The new session is fully functional.
	if _, err := c2.Write(mustFrame(MsgDeviceWake, WakeEvent{Seq: 1, Node: 1, Value: 1}.Encode())); err != nil {
		t.Fatalf("wake on new session: %v", err)
	}
	f, err := fr2.next()
	if err != nil || f.Type != MsgEventAck {
		t.Fatalf("ack on new session: %v", err)
	}
	if ack, err := DecodeEventAck(f.Payload); err != nil || ack.Status != AckAccepted {
		t.Fatalf("new session ack = %+v (%v), want accepted", ack, err)
	}
}

// TestMaxSessionsRejectedAndCounted: connections beyond the cap are
// closed immediately and counted.
func TestMaxSessionsRejectedAndCounted(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := startTestServer(t, Config{MaxSessions: 1, Telemetry: telemetry.Set{Metrics: reg}})

	c1, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c1.Close()
	fr1 := &frameReader{conn: c1, buf: make([]byte, 4096), timeout: 5 * time.Second}
	if _, err := c1.Write(mustFrame(MsgHello, Hello{Version: ProtocolVersion, DeviceID: 1}.Encode())); err != nil {
		t.Fatalf("hello: %v", err)
	}
	if f, err := fr1.next(); err != nil || f.Type != MsgHelloAck {
		t.Fatalf("hello-ack: %v", err)
	}

	c2, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatalf("dial #2: %v", err)
	}
	defer c2.Close()
	c2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c2.Read(make([]byte, 1)); err == nil {
		t.Fatal("over-cap connection was served")
	}
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("fleetd.session_rejects").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("fleetd.session_rejects never incremented")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestResumeAndDedup exercises the raw resume protocol: watermark
// handback, AckDup on retransmit, and exactly-once application.
func TestResumeAndDedup(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := startTestServer(t, Config{Telemetry: telemetry.Set{Metrics: reg}})

	// Session 1: plain hello, two accepted wakes, then the wire "dies".
	c1, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	fr1 := &frameReader{conn: c1, buf: make([]byte, 4096), timeout: 5 * time.Second}
	if _, err := c1.Write(mustFrame(MsgHello, Hello{Version: ProtocolVersion, DeviceID: 31}.Encode())); err != nil {
		t.Fatalf("hello: %v", err)
	}
	if f, err := fr1.next(); err != nil || f.Type != MsgHelloAck {
		t.Fatalf("hello-ack: %v", err)
	}
	for seq := uint32(1); seq <= 2; seq++ {
		if _, err := c1.Write(mustFrame(MsgDeviceWake, WakeEvent{Seq: seq, Node: 1, Value: 1}.Encode())); err != nil {
			t.Fatalf("wake %d: %v", seq, err)
		}
		f, err := fr1.next()
		if err != nil {
			t.Fatalf("ack %d: %v", seq, err)
		}
		if ack, _ := DecodeEventAck(f.Payload); ack.Status != AckAccepted || ack.Seq != seq {
			t.Fatalf("ack = %+v, want accepted seq %d", ack, seq)
		}
	}
	c1.Close()

	// Session 2: resume. The server must hand back watermark 2.
	c2, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatalf("dial #2: %v", err)
	}
	defer c2.Close()
	fr2 := &frameReader{conn: c2, buf: make([]byte, 4096), timeout: 5 * time.Second}
	if _, err := c2.Write(mustFrame(MsgResume, Resume{Version: ProtocolVersion, DeviceID: 31, LastAcked: 1}.Encode())); err != nil {
		t.Fatalf("resume: %v", err)
	}
	f, err := fr2.next()
	if err != nil || f.Type != MsgResumeAck {
		t.Fatalf("resume-ack: %v (type %v)", err, f.Type)
	}
	ra, err := DecodeResumeAck(f.Payload)
	if err != nil {
		t.Fatalf("DecodeResumeAck: %v", err)
	}
	if ra.AckedSeq != 2 {
		t.Fatalf("resume watermark = %d, want 2", ra.AckedSeq)
	}
	if ra.Epoch != s.Epoch() {
		t.Fatalf("resume epoch = %d, want %d", ra.Epoch, s.Epoch())
	}

	// Retransmit seq 2: AckDup, not a second application. Then seq 3.
	if _, err := c2.Write(mustFrame(MsgDeviceWake, WakeEvent{Seq: 2, Node: 1, Value: 1}.Encode())); err != nil {
		t.Fatalf("retransmit: %v", err)
	}
	f, err = fr2.next()
	if err != nil {
		t.Fatalf("dup ack: %v", err)
	}
	if ack, _ := DecodeEventAck(f.Payload); ack.Status != AckDup || ack.Seq != 2 {
		t.Fatalf("retransmit ack = %+v, want dup seq 2", ack)
	}
	if _, err := c2.Write(mustFrame(MsgDeviceWake, WakeEvent{Seq: 3, Node: 1, Value: 1}.Encode())); err != nil {
		t.Fatalf("wake 3: %v", err)
	}
	f, err = fr2.next()
	if err != nil {
		t.Fatalf("ack 3: %v", err)
	}
	if ack, _ := DecodeEventAck(f.Payload); ack.Status != AckAccepted || ack.Seq != 3 {
		t.Fatalf("ack = %+v, want accepted seq 3", ack)
	}

	if got := reg.Counter("fleetd.resumes").Value(); got != 1 {
		t.Fatalf("fleetd.resumes = %d, want 1", got)
	}
	if got := reg.Counter("fleetd.dedup_acks").Value(); got != 1 {
		t.Fatalf("fleetd.dedup_acks = %d, want 1", got)
	}
	c2.Close()
	if _, err := s.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	snap := s.Registry().Snapshot()
	if len(snap) != 1 || snap[0].Wakes != 3 {
		t.Fatalf("device applied %d wakes, want exactly 3 (retransmit must not double-apply): %+v",
			snap[0].Wakes, snap)
	}
}

// TestWatermarkRespectsShedHoles pins the contiguity rule: a shed seq
// must hold the watermark back so the client's retry is re-offered, and
// an accepted seq above the hole must still dedup its retransmits.
func TestWatermarkRespectsShedHoles(t *testing.T) {
	r := NewRegistry(1)
	r.Connect(1)
	r.MarkAcked(1, 1)
	// seq 2 shed (never marked), seq 3 accepted.
	r.MarkAcked(1, 3)
	if got := r.AckedSeq(1); got != 1 {
		t.Fatalf("watermark = %d, want 1 (shed hole at 2)", got)
	}
	if r.AlreadyAcked(1, 2) {
		t.Fatal("shed seq 2 counted as acked — its retry would be wrongly deduped")
	}
	if !r.AlreadyAcked(1, 3) {
		t.Fatal("accepted seq 3 above the hole must dedup")
	}
	// The retry of 2 lands: the watermark sweeps through the absorbed set.
	r.MarkAcked(1, 2)
	if got := r.AckedSeq(1); got != 3 {
		t.Fatalf("watermark after filling the hole = %d, want 3", got)
	}
}

// TestChaosShedsWithReconnectsStayConsistent closes the gap the default
// chaos sweeps leave open: their deep queues never shed, so shed × cut
// interplay went unexercised. Here a depth-1 queue sheds constantly while
// the proxy cuts connections, so shed frames and reconnects coincide on
// every seed. The exactly-once contract under test: a frame the client
// resolved as shed is settled — it must never ride a later connection and
// get accepted (double-billing energy the fallback path already charged).
// The bye-ack cross-check (counts exact, energy bit-for-bit, server sheds
// >= client sheds) is what catches any violation.
func TestChaosShedsWithReconnectsStayConsistent(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos shed sweep is not short")
	}
	const devices = 3
	cells := make([]sim.FleetCell, devices)
	for i := range cells {
		cells[i] = *testCell(2000)
	}
	var sheds, reconnects uint64
	for seed := int64(1); seed <= 3; seed++ {
		led := telemetry.NewLedger()
		s := startTestServer(t, Config{
			Shards:      1,
			QueueDepth:  1, // full-blast senders against a depth-1 queue: constant sheds
			IdleTimeout: 2 * time.Second,
			Telemetry:   telemetry.Set{Ledger: led},
		})
		p, err := chaosproxy.New(chaosproxy.Config{
			ListenAddr: "127.0.0.1:0", TargetAddr: s.Addr(),
			Profile: chaosproxy.Profile{Name: "shed-cuts", ResetProb: 0.01, CutProb: 0.01},
			Seed:    seed,
		})
		if err != nil {
			t.Fatalf("seed %d: proxy: %v", seed, err)
		}
		p.Start()

		rep, err := RunLoad(chaosLoadConfig(p.Addr()), cells)
		if err != nil {
			t.Fatalf("seed %d: RunLoad: %v", seed, err)
		}
		if rep.Unrecovered != 0 || rep.Mismatches != 0 {
			t.Fatalf("seed %d: unrecovered=%d mismatches=%d, want 0/0 — shed/reconnect interplay broke the ledger contract",
				seed, rep.Unrecovered, rep.Mismatches)
		}
		drain, err := s.Drain()
		if err != nil {
			t.Fatalf("seed %d: Drain: %v", seed, err)
		}
		if !drain.ConservationOK {
			t.Fatalf("seed %d: conservation failed: err %g mJ", seed, drain.ConservationErrMJ)
		}
		sheds += rep.Shed
		reconnects += rep.Reconnects
		p.Close()
	}
	if sheds == 0 || reconnects == 0 {
		t.Fatalf("sweep saw %d sheds and %d reconnects across 3 seeds — it proved nothing; crank the pressure",
			sheds, reconnects)
	}
}
