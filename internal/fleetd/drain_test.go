package fleetd

import (
	"syscall"
	"testing"
	"time"
)

func TestDrainerNilSafe(t *testing.T) {
	var d *Drainer
	d.Request()
	d.Stop()
	if d.Requested() {
		t.Fatal("nil drainer must never report requested")
	}
	select {
	case <-d.C():
		t.Fatal("nil drainer channel must never close")
	default:
	}
}

func TestDrainerRequestIdempotent(t *testing.T) {
	d := WatchSignals(syscall.SIGUSR1)
	defer d.Stop()
	if d.Requested() {
		t.Fatal("fresh drainer should not be requested")
	}
	d.Request()
	d.Request() // second request must not panic (double close)
	if !d.Requested() {
		t.Fatal("drainer should be requested")
	}
	select {
	case <-d.C():
	default:
		t.Fatal("drain channel should be closed")
	}
}

func TestDrainerSignal(t *testing.T) {
	hard := make(chan int, 1)
	d := watchSignalsWithExit(func(code int) { hard <- code }, syscall.SIGUSR1)
	defer d.Stop()

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGUSR1); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case <-d.C():
	case <-time.After(5 * time.Second):
		t.Fatal("first signal did not trigger the drain")
	}

	// The second signal is the operator losing patience: hard exit.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGUSR1); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case code := <-hard:
		if code != 1 {
			t.Fatalf("hard exit code = %d, want 1", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second signal did not hard-exit")
	}
}

// TestDrainerRequestThenSignalsHardExit covers the mixed path: the
// drain starts programmatically (internal fatal condition), then the
// operator signals twice — the second signal must still hard-exit even
// though the drain was already underway.
func TestDrainerRequestThenSignalsHardExit(t *testing.T) {
	hard := make(chan int, 1)
	d := watchSignalsWithExit(func(code int) { hard <- code }, syscall.SIGUSR1)
	defer d.Stop()

	d.Request() // drain already in progress before any signal
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGUSR1); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case code := <-hard:
		t.Fatalf("first signal after Request must not hard-exit (code %d)", code)
	case <-time.After(100 * time.Millisecond):
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGUSR1); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case code := <-hard:
		if code != 1 {
			t.Fatalf("hard exit code = %d, want 1", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second signal did not hard-exit")
	}
}

func TestDrainerStopDetaches(t *testing.T) {
	d := WatchSignals(syscall.SIGUSR2)
	d.Stop()
	d.Stop() // idempotent
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGUSR2); err != nil {
		t.Fatalf("kill: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	if d.Requested() {
		t.Fatal("stopped drainer must ignore signals")
	}
}
