// Package fleetd is the fleet-scale streaming ingest layer: a long-lived
// daemon (cmd/sidewinderd) that fronts thousands of concurrent simulated
// devices over real TCP sockets, and the load generator (cmd/fleetload)
// that replays a sim.FleetRun-style population against it.
//
// The paper's architecture puts a low-power hub in front of the phone so
// the expensive processor only runs when something interesting happened;
// at fleet scale the analogous system is a service that fronts the whole
// device population and treats wake events as the scarce, latency-critical
// unit of traffic. The package supplies:
//
//   - a device wire protocol carried in the existing internal/link frame
//     codec (byte-stuffed, CRC-16) with the same corrupt-vs-malformed
//     error taxonomy: line damage skips the frame and counts it,
//     a structurally malformed frame tears the connection down;
//
//   - a sharded device registry (per-shard mutex, FNV-1a device→shard
//     hashing) so registrations and event application from thousands of
//     connections never serialize on one lock;
//
//   - bounded per-shard ingest queues with explicit backpressure: a frame
//     that does not fit is refused with a shed acknowledgement, counted,
//     and billed to the energy ledger as phone-side fallback — an
//     acknowledged event is in a queue and is never silently dropped;
//
//   - batched energy-ledger deposits that conserve to 1e-9 against the
//     per-device totals, periodic atomic checkpoints, graceful drain on
//     SIGTERM, and a /metrics snapshot endpoint built on
//     internal/telemetry.
package fleetd

import (
	"encoding/binary"
	"fmt"
	"math"

	"sidewinder/internal/link"
	"sidewinder/internal/resilience"
	"sidewinder/internal/telemetry"
)

// ProtocolVersion is the fleet ingest wire protocol version, carried in
// every hello so mismatched peers fail fast instead of misparsing.
const ProtocolVersion = 1

// Fleet message types. They extend the manager-hub protocol's link.MsgType
// space from 0x20 so the two vocabularies can never collide; the framing,
// CRC and error taxonomy are link's, unchanged.
const (
	// MsgHello opens a device session: version + device ID.
	MsgHello link.MsgType = 0x20
	// MsgHelloAck confirms registration: server epoch + assigned shard.
	MsgHelloAck link.MsgType = 0x21
	// MsgDeviceWake reports one wake event (seq, emitting node, value).
	MsgDeviceWake link.MsgType = 0x22
	// MsgDeviceHeartbeat is the device liveness probe; its payload is the
	// resilience heartbeat codec (seq + device boot epoch), reused verbatim.
	MsgDeviceHeartbeat link.MsgType = 0x23
	// MsgDeviceEnergy deposits energy onto the daemon ledger: seq,
	// telemetry component, millijoules.
	MsgDeviceEnergy link.MsgType = 0x24
	// MsgEventAck acknowledges one ingested frame by seq, with a status
	// distinguishing accepted from shed (backpressure refusal).
	MsgEventAck link.MsgType = 0x25
	// MsgBye asks the server to flush the device and return its totals.
	MsgBye link.MsgType = 0x26
	// MsgByeAck carries the server-side device summary back.
	MsgByeAck link.MsgType = 0x27
	// MsgResume opens (or re-opens) a device session with the client's
	// last-acked sequence number, arming server-side dedup so retransmits
	// after a connection cut are idempotent.
	MsgResume link.MsgType = 0x28
	// MsgResumeAck confirms a resume: server epoch, assigned shard, and
	// the server's acked-seq watermark — the client retransmits everything
	// after it and nothing at or below it.
	MsgResumeAck link.MsgType = 0x29
)

// Ack statuses.
const (
	// AckAccepted: the event is durably queued; drain guarantees it is
	// applied to the registry and ledger before the daemon exits.
	AckAccepted byte = 0
	// AckShed: the shard queue was full. The event was NOT applied; the
	// refusal is counted (fleetd.sheds) and billed to phone.fallback, and
	// the device is expected to handle the event locally.
	AckShed byte = 1
	// AckDup: the frame's sequence number is at or below the device's
	// acked watermark — a retransmit of an event the server already
	// accepted. Nothing was re-applied; the client can resolve the frame
	// as accepted. This is what makes post-cut retransmission idempotent.
	AckDup byte = 2
)

// errTruncated builds a malformed-payload error that the link taxonomy
// classifies correctly: a CRC-valid frame whose payload disagrees with its
// declared shape is a sender bug, so it wraps link.ErrLengthMismatch and
// link.IsMalformed reports true.
func errTruncated(what string, got, want int) error {
	return fmt.Errorf("fleetd: %s payload: %w: %d bytes, want %d", what, link.ErrLengthMismatch, got, want)
}

// Hello opens a device session.
type Hello struct {
	Version  byte
	DeviceID uint64
}

const helloSize = 9

// Encode serializes the hello (1 + 8 bytes, little-endian).
func (h Hello) Encode() []byte {
	out := make([]byte, helloSize)
	out[0] = h.Version
	binary.LittleEndian.PutUint64(out[1:], h.DeviceID)
	return out
}

// DecodeHello parses a hello payload.
func DecodeHello(p []byte) (Hello, error) {
	if len(p) != helloSize {
		return Hello{}, errTruncated("hello", len(p), helloSize)
	}
	return Hello{Version: p[0], DeviceID: binary.LittleEndian.Uint64(p[1:])}, nil
}

// HelloAck confirms a registration.
type HelloAck struct {
	Epoch uint32 // server boot epoch (bumps when restarted from a checkpoint)
	Shard uint16 // registry shard the device hashed to
}

const helloAckSize = 6

// Encode serializes the hello ack.
func (h HelloAck) Encode() []byte {
	out := make([]byte, helloAckSize)
	binary.LittleEndian.PutUint32(out[0:4], h.Epoch)
	binary.LittleEndian.PutUint16(out[4:6], h.Shard)
	return out
}

// DecodeHelloAck parses a hello-ack payload.
func DecodeHelloAck(p []byte) (HelloAck, error) {
	if len(p) != helloAckSize {
		return HelloAck{}, errTruncated("hello-ack", len(p), helloAckSize)
	}
	return HelloAck{
		Epoch: binary.LittleEndian.Uint32(p[0:4]),
		Shard: binary.LittleEndian.Uint16(p[4:6]),
	}, nil
}

// Resume opens a device session carrying the client's resume state. A
// first contact sends LastAcked 0; a reconnect after a cut sends the
// highest sequence number the device saw acknowledged, so the server can
// report its own watermark back and retransmits stay idempotent.
type Resume struct {
	Version   byte
	DeviceID  uint64
	LastAcked uint32 // client-side: highest seq it saw acked (any status)
}

const resumeSize = 13

// Encode serializes the resume (1 + 8 + 4 bytes, little-endian).
func (r Resume) Encode() []byte {
	out := make([]byte, resumeSize)
	out[0] = r.Version
	binary.LittleEndian.PutUint64(out[1:9], r.DeviceID)
	binary.LittleEndian.PutUint32(out[9:13], r.LastAcked)
	return out
}

// DecodeResume parses a resume payload.
func DecodeResume(p []byte) (Resume, error) {
	if len(p) != resumeSize {
		return Resume{}, errTruncated("resume", len(p), resumeSize)
	}
	return Resume{
		Version:   p[0],
		DeviceID:  binary.LittleEndian.Uint64(p[1:9]),
		LastAcked: binary.LittleEndian.Uint32(p[9:13]),
	}, nil
}

// ResumeAck confirms a resume. AckedSeq is the server's authoritative
// dedup watermark for the device: every frame with seq <= AckedSeq is
// already accepted server-side (the client resolves them without
// resending); everything above it must be (re)transmitted.
type ResumeAck struct {
	Epoch    uint32 // server boot epoch (bumps across restarts)
	Shard    uint16 // registry shard the device hashed to
	AckedSeq uint32 // server acked-seq watermark for the device
}

const resumeAckSize = 10

// Encode serializes the resume ack.
func (r ResumeAck) Encode() []byte {
	out := make([]byte, resumeAckSize)
	binary.LittleEndian.PutUint32(out[0:4], r.Epoch)
	binary.LittleEndian.PutUint16(out[4:6], r.Shard)
	binary.LittleEndian.PutUint32(out[6:10], r.AckedSeq)
	return out
}

// DecodeResumeAck parses a resume-ack payload.
func DecodeResumeAck(p []byte) (ResumeAck, error) {
	if len(p) != resumeAckSize {
		return ResumeAck{}, errTruncated("resume-ack", len(p), resumeAckSize)
	}
	return ResumeAck{
		Epoch:    binary.LittleEndian.Uint32(p[0:4]),
		Shard:    binary.LittleEndian.Uint16(p[4:6]),
		AckedSeq: binary.LittleEndian.Uint32(p[6:10]),
	}, nil
}

// WakeEvent is one device wake: the scarce, latency-sensitive unit of
// fleet traffic.
type WakeEvent struct {
	Seq   uint32  // per-device frame sequence number
	Node  uint16  // pipeline node that emitted the wake
	Value float64 // emitted value
}

const wakeEventSize = 14

// Encode serializes the wake event.
func (w WakeEvent) Encode() []byte {
	out := make([]byte, wakeEventSize)
	binary.LittleEndian.PutUint32(out[0:4], w.Seq)
	binary.LittleEndian.PutUint16(out[4:6], w.Node)
	binary.LittleEndian.PutUint64(out[6:14], math.Float64bits(w.Value))
	return out
}

// DecodeWakeEvent parses a wake-event payload.
func DecodeWakeEvent(p []byte) (WakeEvent, error) {
	if len(p) != wakeEventSize {
		return WakeEvent{}, errTruncated("wake", len(p), wakeEventSize)
	}
	return WakeEvent{
		Seq:   binary.LittleEndian.Uint32(p[0:4]),
		Node:  binary.LittleEndian.Uint16(p[4:6]),
		Value: math.Float64frombits(binary.LittleEndian.Uint64(p[6:14])),
	}, nil
}

// EnergyEvent deposits simulated energy for one telemetry component.
type EnergyEvent struct {
	Seq       uint32
	Component telemetry.Component
	MJ        float64
}

const energyEventSize = 13

// Encode serializes the energy event.
func (e EnergyEvent) Encode() []byte {
	out := make([]byte, energyEventSize)
	binary.LittleEndian.PutUint32(out[0:4], e.Seq)
	out[4] = byte(e.Component)
	binary.LittleEndian.PutUint64(out[5:13], math.Float64bits(e.MJ))
	return out
}

// DecodeEnergyEvent parses an energy-event payload, rejecting unknown
// components and non-finite deposits (both would corrupt the ledger's
// conservation invariant).
func DecodeEnergyEvent(p []byte) (EnergyEvent, error) {
	if len(p) != energyEventSize {
		return EnergyEvent{}, errTruncated("energy", len(p), energyEventSize)
	}
	e := EnergyEvent{
		Seq:       binary.LittleEndian.Uint32(p[0:4]),
		Component: telemetry.Component(p[4]),
		MJ:        math.Float64frombits(binary.LittleEndian.Uint64(p[5:13])),
	}
	if int(e.Component) >= len(telemetry.Components()) {
		return EnergyEvent{}, fmt.Errorf("fleetd: energy payload: %w: unknown component %d",
			link.ErrLengthMismatch, e.Component)
	}
	if math.IsNaN(e.MJ) || math.IsInf(e.MJ, 0) || e.MJ < 0 {
		return EnergyEvent{}, fmt.Errorf("fleetd: energy payload: %w: non-finite or negative deposit %g",
			link.ErrLengthMismatch, e.MJ)
	}
	return e, nil
}

// EventAck acknowledges one frame by sequence number.
type EventAck struct {
	Seq    uint32
	Status byte
}

const eventAckSize = 5

// Encode serializes the ack.
func (a EventAck) Encode() []byte {
	out := make([]byte, eventAckSize)
	binary.LittleEndian.PutUint32(out[0:4], a.Seq)
	out[4] = a.Status
	return out
}

// DecodeEventAck parses an ack payload.
func DecodeEventAck(p []byte) (EventAck, error) {
	if len(p) != eventAckSize {
		return EventAck{}, errTruncated("ack", len(p), eventAckSize)
	}
	return EventAck{Seq: binary.LittleEndian.Uint32(p[0:4]), Status: p[4]}, nil
}

// Bye asks the server to flush and summarize the device.
type Bye struct {
	Seq uint32
}

const byeSize = 4

// Encode serializes the bye.
func (b Bye) Encode() []byte {
	out := make([]byte, byeSize)
	binary.LittleEndian.PutUint32(out, b.Seq)
	return out
}

// DecodeBye parses a bye payload.
func DecodeBye(p []byte) (Bye, error) {
	if len(p) != byeSize {
		return Bye{}, errTruncated("bye", len(p), byeSize)
	}
	return Bye{Seq: binary.LittleEndian.Uint32(p)}, nil
}

// ComponentMJ is one (component, energy) pair of a device summary.
type ComponentMJ struct {
	Component telemetry.Component
	MJ        float64
}

// DeviceSummary is the server's view of one device, returned in MsgByeAck
// so the sender can verify — without a side channel — that every
// acknowledged event landed.
type DeviceSummary struct {
	Seq        uint32 // echoes the bye's sequence number
	Wakes      uint64
	Heartbeats uint64
	Sheds      uint64
	ShedMJ     float64       // fallback energy billed for shed events
	Energy     []ComponentMJ // non-zero components, ascending component order
}

// Encode serializes the summary: seq u32 | wakes u64 | heartbeats u64 |
// sheds u64 | shedMJ f64 | count u8 | count × (component u8 | mj f64).
func (s DeviceSummary) Encode() []byte {
	out := make([]byte, 0, 37+9*len(s.Energy))
	var b [8]byte
	binary.LittleEndian.PutUint32(b[:4], s.Seq)
	out = append(out, b[:4]...)
	for _, v := range []uint64{s.Wakes, s.Heartbeats, s.Sheds} {
		binary.LittleEndian.PutUint64(b[:], v)
		out = append(out, b[:]...)
	}
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(s.ShedMJ))
	out = append(out, b[:]...)
	out = append(out, byte(len(s.Energy)))
	for _, e := range s.Energy {
		out = append(out, byte(e.Component))
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(e.MJ))
		out = append(out, b[:]...)
	}
	return out
}

// DecodeDeviceSummary parses a bye-ack payload.
func DecodeDeviceSummary(p []byte) (DeviceSummary, error) {
	const head = 37
	if len(p) < head {
		return DeviceSummary{}, errTruncated("bye-ack", len(p), head)
	}
	s := DeviceSummary{
		Seq:        binary.LittleEndian.Uint32(p[0:4]),
		Wakes:      binary.LittleEndian.Uint64(p[4:12]),
		Heartbeats: binary.LittleEndian.Uint64(p[12:20]),
		Sheds:      binary.LittleEndian.Uint64(p[20:28]),
		ShedMJ:     math.Float64frombits(binary.LittleEndian.Uint64(p[28:36])),
	}
	n := int(p[36])
	if len(p) != head+9*n {
		return DeviceSummary{}, errTruncated("bye-ack energy list", len(p), head+9*n)
	}
	for i := 0; i < n; i++ {
		off := head + 9*i
		s.Energy = append(s.Energy, ComponentMJ{
			Component: telemetry.Component(p[off]),
			MJ:        math.Float64frombits(binary.LittleEndian.Uint64(p[off+1 : off+9])),
		})
	}
	return s, nil
}

// Heartbeat re-exports the resilience heartbeat codec for fleet frames:
// Seq doubles as the frame sequence number (acked like any other event)
// and Epoch carries the device's boot counter, exactly as on the
// manager-hub link.
type Heartbeat = resilience.Heartbeat

// DecodeHeartbeat parses a device heartbeat, mapping the resilience
// codec's error into the link taxonomy (malformed, not corrupt: the frame
// passed CRC, so the bytes are what the peer sent).
func DecodeHeartbeat(p []byte) (Heartbeat, error) {
	hb, err := resilience.DecodeHeartbeat(p)
	if err != nil {
		return Heartbeat{}, fmt.Errorf("fleetd: heartbeat payload: %w: %d bytes, want %d",
			link.ErrLengthMismatch, len(p), resilience.HeartbeatSize)
	}
	return hb, nil
}
