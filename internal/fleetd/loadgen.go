package fleetd

import (
	"bufio"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"sidewinder/internal/link"
	"sidewinder/internal/power"
	"sidewinder/internal/sensor"
	"sidewinder/internal/sim"
	"sidewinder/internal/telemetry"
	"sidewinder/internal/tracegen"
)

// The load generator replays a sim.FleetRun population over real sockets:
// every cell of the batch sweep becomes one device session that sends its
// wakes, heartbeats and energy split as protocol frames. Because the cell
// records the exact per-component energy the batch run deposits, the
// daemon's ledger after a full (shed-free) replay must match the batch
// ledger — per device bit for bit — which is the identity test's anchor.

// BuildPopulation synthesizes candidate traces (two robot accelerometer
// groups and one office audio bed) and runs the batch fleet sweep. The
// returned ledger is the batch reference the daemon replay is compared
// against.
func BuildPopulation(devices, appsPerDevice int, seed int64, traceDur time.Duration, workers int) (*sim.FleetResult, *telemetry.Ledger, error) {
	busy, err := tracegen.Robot(tracegen.RobotConfig{Seed: seed, Duration: traceDur, IdleFraction: 0.1})
	if err != nil {
		return nil, nil, err
	}
	idle, err := tracegen.Robot(tracegen.RobotConfig{Seed: seed + 1, Duration: traceDur, IdleFraction: 0.9})
	if err != nil {
		return nil, nil, err
	}
	office, err := tracegen.Audio(tracegen.NewAudioConfig(seed+2, traceDur, tracegen.OfficeAudio))
	if err != nil {
		return nil, nil, err
	}
	led := telemetry.NewLedger()
	res, err := sim.FleetRun(sim.FleetRunConfig{
		Devices:       devices,
		AppsPerDevice: appsPerDevice,
		Seed:          seed,
		Workers:       workers,
		Accel:         []*sensor.Trace{busy, idle},
		Audio:         []*sensor.Trace{office},
		Telemetry:     telemetry.Set{Ledger: led},
	})
	if err != nil {
		return nil, nil, err
	}
	return res, led, nil
}

// LoadConfig parameterizes a socket replay of a fleet population.
type LoadConfig struct {
	// Addr is the daemon's ingest address (required).
	Addr string
	// Window bounds in-flight unacked frames per device (default 64).
	Window int
	// HeartbeatEvery inserts one heartbeat per this many wake frames
	// (default 25).
	HeartbeatEvery int
	// Epoch is the device boot epoch carried in heartbeats (default 1).
	Epoch uint32
	// Concurrency bounds simultaneously connected devices (default: the
	// whole population at once — concurrent load is the point).
	Concurrency int
	// Telemetry receives the client-side ingest latency histogram
	// (fleetload.ack_latency_ms). Nil metrics get a fresh registry.
	Telemetry telemetry.Set
	// Reconnect enables the resilient session mode: sessions open with a
	// resume handshake and survive up to this many consecutive
	// no-progress connection failures before giving up. Zero keeps the
	// legacy single-shot Hello session (any error is fatal for the
	// device).
	Reconnect int
	// BackoffBase/BackoffCap bound the capped exponential reconnect
	// backoff (defaults 25ms / 1s). Progress on a connection resets the
	// backoff to its base.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// AckTimeout bounds every socket read and flush in resilient mode
	// (default 10s): a stalled or blackholed server turns into a
	// reconnect instead of a hung device.
	AckTimeout time.Duration
	// Pace inserts this delay between consecutive frame sends on each
	// device session (default: none — full blast). Pacing stretches a
	// replay over wall-clock time, which is what crash-mid-soak tests
	// need: an unpaced loopback replay finishes before anyone can pull
	// a plug.
	Pace time.Duration
}

// LoadReport aggregates a replay.
type LoadReport struct {
	Devices      int
	Frames       uint64 // acked event frames (wakes + heartbeats + energy)
	Accepted     uint64
	Shed         uint64
	Wakes        uint64
	Heartbeats   uint64
	EnergyFrames uint64
	DurationSec  float64
	EventsPerSec float64
	P50ms        float64
	P99ms        float64
	P999ms       float64
	// Summaries holds every device's server-side bye-ack totals by ID.
	Summaries map[uint64]DeviceSummary
	// Mismatches counts devices whose bye-ack disagreed with the
	// client-side record of accepted frames — must be zero.
	Mismatches int
	// Reconnects counts session re-dials across all devices (resilient
	// mode only).
	Reconnects uint64
	// DupAcks counts retransmitted frames the server answered with
	// AckDup — proof the dedup path, not a re-apply, absorbed them.
	DupAcks uint64
	// Resumed counts frames resolved by a resume-ack watermark instead
	// of an individually observed ack (the ack was lost with the old
	// connection).
	Resumed uint64
	// Unrecovered counts devices that exhausted their reconnect budget
	// (or, in legacy mode, hit any session error). Only these make the
	// run fail.
	Unrecovered int
}

// outFrame is one scheduled frame of a device session.
type outFrame struct {
	kind      int // itemWake, itemEnergy, or frameHeartbeat below
	seq       uint32
	component telemetry.Component
	mj        float64
	wire      []byte
}

const frameHeartbeat = 100 // distinct from the server-side item kinds

// deviceOutcome is one session's client-side record.
type deviceOutcome struct {
	id                        uint64
	wakes, heartbeats, energy uint64 // accepted, by kind
	shed                      uint64
	reconnects                uint64
	dup                       uint64
	resumed                   uint64
	gaveUp                    bool
	summary                   DeviceSummary
	mismatch                  string // non-empty: bye-ack disagreed with us
	err                       error
}

// schedule builds a cell's frame sequence: wakes with interleaved
// heartbeats, then the six-component energy split in the exact order
// batch FleetRun deposits it (DepositEnergy), then nothing — the bye is
// written by the session after the last ack.
func schedule(cell *sim.FleetCell, hbEvery int, epoch uint32) []outFrame {
	if hbEvery <= 0 {
		hbEvery = 25
	}
	frames := make([]outFrame, 0, cell.Wakes+cell.Wakes/hbEvery+8)
	seq := uint32(0)
	next := func() uint32 { seq++; return seq }
	for w := 0; w < cell.Wakes; w++ {
		if w%hbEvery == 0 {
			s := next()
			hb := Heartbeat{Seq: s, Epoch: epoch}
			frames = append(frames, outFrame{kind: frameHeartbeat, seq: s, wire: mustFrame(MsgDeviceHeartbeat, hb.Encode())})
		}
		s := next()
		we := WakeEvent{Seq: s, Node: uint16(w), Value: cell.AvgMW}
		frames = append(frames, outFrame{kind: itemWake, seq: s, wire: mustFrame(MsgDeviceWake, we.Encode())})
	}
	deposits := []ComponentMJ{
		{telemetry.PhoneAsleep, cell.PhoneStateMJ[power.Asleep]},
		{telemetry.PhoneWaking, cell.PhoneStateMJ[power.WakingUp]},
		{telemetry.PhoneAwake, cell.PhoneStateMJ[power.Awake]},
		{telemetry.PhoneFallingAsleep, cell.PhoneStateMJ[power.FallingAsleep]},
		{telemetry.PhoneFallback, cell.FallbackEnergyMJ},
		{telemetry.HubDevice, cell.HubEnergyMJ},
	}
	for _, d := range deposits {
		s := next()
		ev := EnergyEvent{Seq: s, Component: d.Component, MJ: d.MJ}
		frames = append(frames, outFrame{kind: itemEnergy, seq: s, component: d.Component, mj: d.MJ,
			wire: mustFrame(MsgDeviceEnergy, ev.Encode())})
	}
	return frames
}

func mustFrame(t link.MsgType, payload []byte) []byte {
	wire, err := link.Encode(link.Frame{Type: t, Payload: payload})
	if err != nil {
		panic(err) // payloads are fixed-size and well under the frame limit
	}
	return wire
}

// frameReader pulls whole protocol frames off a connection. A non-zero
// timeout re-arms a read deadline before every read, so a stalled peer
// surfaces as a timeout error instead of a hang.
type frameReader struct {
	conn    net.Conn
	dec     link.Decoder
	buf     []byte
	queue   []link.Frame
	timeout time.Duration
}

func (r *frameReader) next() (link.Frame, error) {
	for len(r.queue) == 0 {
		if r.timeout > 0 {
			if err := r.conn.SetReadDeadline(time.Now().Add(r.timeout)); err != nil {
				return link.Frame{}, err
			}
		}
		n, err := r.conn.Read(r.buf)
		if n > 0 {
			frames, ferr := r.dec.Feed(r.buf[:n])
			r.queue = append(r.queue, frames...)
			if ferr != nil && link.IsMalformed(ferr) {
				return link.Frame{}, ferr
			}
		}
		if err != nil && len(r.queue) == 0 {
			return link.Frame{}, err
		}
	}
	f := r.queue[0]
	r.queue = r.queue[1:]
	return f, nil
}

// devSession is a device's client-side state, persistent across
// connection attempts. frames[i] stays scheduled until resolved[i]: a
// frame resolves when its ack is read, or — after a cut ate the ack —
// when a resume-ack watermark covers it. Resolution is what increments
// the accepted counters, so a frame is counted exactly once no matter
// how many times the wire carried it.
type devSession struct {
	frames   []outFrame
	resolved []bool
	// resolvedShed marks frames whose resolution was AckShed. A shed is a
	// settled transaction — the server billed the fallback cost, we
	// counted the shed — so the frame must never be re-offered on a later
	// connection: the server kept no record of the refusal (a shed seq is
	// a hole in its watermark), and a retry it accepts would double-count
	// the event on top of the fallback billing.
	resolvedShed []bool
	nResolved    int
	maxResolved    uint32 // highest seq resolved (resume handshake's LastAcked)
	wakes          uint64
	heartbeats     uint64
	energy         uint64
	shed           uint64
	dup            uint64
	resumed        uint64
	energyAccepted []float64 // client-side mirror of server accumulation
	summary        DeviceSummary
	mismatch       string
}

// resolve marks frame i resolved with the given ack status and counts it.
// Idempotent: retransmit acks for already-resolved frames are ignored.
func (st *devSession) resolve(i int, status byte) {
	if st.resolved[i] {
		return
	}
	st.resolved[i] = true
	st.nResolved++
	f := &st.frames[i]
	if f.seq > st.maxResolved {
		st.maxResolved = f.seq
	}
	if status == AckShed {
		st.resolvedShed[i] = true
		st.shed++
		return
	}
	// Accepted or duplicate: either way the event is in the server.
	if status == AckDup {
		st.dup++
	}
	switch f.kind {
	case itemWake:
		st.wakes++
	case frameHeartbeat:
		st.heartbeats++
	case itemEnergy:
		st.energy++
		st.energyAccepted[f.component] += f.mj
	}
}

// unsentAbove is the retransmission set for a connection whose resume
// watermark is the given seq: every frame above the watermark — resolved
// accepted ones included, because a server restarted from a checkpoint
// rolls its watermark back to the durable applied seq and anything above
// it must be re-offered (the dedup path answers AckDup for what it still
// has) — EXCEPT frames resolved as shed. A shed was billed on both sides
// when it happened; re-offering it after a reconnect could get it
// accepted this time, double-counting the event on top of the fallback
// billing and breaking the bye-ack cross-check.
func (st *devSession) unsentAbove(watermark uint32) []int {
	toSend := make([]int, 0, len(st.frames))
	for i := range st.frames {
		if st.frames[i].seq > watermark && !st.resolvedShed[i] {
			toSend = append(toSend, i)
		}
	}
	return toSend
}

// attempt runs one connection's worth of the session: handshake, send
// everything unresolved past the server's watermark, read acks, and —
// when every frame is resolved — the bye exchange. Returns done=true
// only after a verified bye-ack; any error leaves the session state
// ready for the next attempt.
func (st *devSession) attempt(cfg LoadConfig, id uint64, lat *telemetry.Histogram, resume bool) (done bool, err error) {
	var conn net.Conn
	if cfg.AckTimeout > 0 {
		conn, err = net.DialTimeout("tcp", cfg.Addr, cfg.AckTimeout)
	} else {
		conn, err = net.Dial("tcp", cfg.Addr)
	}
	if err != nil {
		return false, fmt.Errorf("dial: %w", err)
	}
	defer conn.Close()
	fr := &frameReader{conn: conn, buf: make([]byte, 1<<13), timeout: cfg.AckTimeout}

	// write sends one frame honoring the ack timeout as a write deadline.
	write := func(wire []byte) error {
		if cfg.AckTimeout > 0 {
			if err := conn.SetWriteDeadline(time.Now().Add(cfg.AckTimeout)); err != nil {
				return err
			}
		}
		_, werr := conn.Write(wire)
		return werr
	}

	var watermark uint32
	if resume {
		if err := write(mustFrame(MsgResume, Resume{Version: ProtocolVersion, DeviceID: id, LastAcked: st.maxResolved}.Encode())); err != nil {
			return false, fmt.Errorf("resume: %w", err)
		}
		f, err := fr.next()
		if err != nil || f.Type != MsgResumeAck {
			return false, fmt.Errorf("waiting for resume-ack (got %v): %v", f.Type, err)
		}
		ra, err := DecodeResumeAck(f.Payload)
		if err != nil {
			return false, err
		}
		watermark = ra.AckedSeq
		// Everything at or below the server's contiguous watermark was
		// accepted — including frames whose acks were lost with the old
		// connection. Resolve them as accepted; never retransmit them.
		for i := range st.frames {
			if st.frames[i].seq <= watermark && !st.resolved[i] {
				st.resolve(i, AckAccepted)
				st.resumed++
			}
		}
	} else {
		if err := write(mustFrame(MsgHello, Hello{Version: ProtocolVersion, DeviceID: id}.Encode())); err != nil {
			return false, fmt.Errorf("hello: %w", err)
		}
		f, err := fr.next()
		if err != nil || f.Type != MsgHelloAck {
			return false, fmt.Errorf("waiting for hello-ack (got %v): %v", f.Type, err)
		}
		if _, err := DecodeHelloAck(f.Payload); err != nil {
			return false, err
		}
	}

	toSend := st.unsentAbove(watermark)

	window := cfg.Window
	if window <= 0 {
		window = 64
	}
	type inflight struct {
		idx int
		at  time.Time
	}
	pending := make(chan inflight, window)
	writeErr := make(chan error, 1)
	stop := make(chan struct{})
	defer close(stop) // unblocks the writer if the reader bails early
	go func() {
		bw := bufio.NewWriterSize(conn, 1<<13)
		flush := func() error {
			if cfg.AckTimeout > 0 {
				if err := conn.SetWriteDeadline(time.Now().Add(cfg.AckTimeout)); err != nil {
					return err
				}
			}
			return bw.Flush()
		}
		for n, i := range toSend {
			select {
			case pending <- inflight{idx: i, at: time.Now()}:
			case <-stop:
				writeErr <- nil
				close(pending)
				return
			}
			if _, err := bw.Write(st.frames[i].wire); err != nil {
				writeErr <- err
				close(pending)
				return
			}
			// Flushing with window room to spare is wasted syscalls;
			// flushing when the writer is about to block keeps acks flowing.
			// A paced frame always flushes — it must be on the wire before
			// the writer goes to sleep.
			if cfg.Pace > 0 || len(pending) >= window-1 || n == len(toSend)-1 || bw.Available() < 64 {
				if err := flush(); err != nil {
					writeErr <- err
					close(pending)
					return
				}
			}
			if cfg.Pace > 0 && n < len(toSend)-1 {
				select {
				case <-time.After(cfg.Pace):
				case <-stop:
					writeErr <- nil
					close(pending)
					return
				}
			}
		}
		writeErr <- nil
		close(pending)
	}()

	for inf := range pending {
		f, err := fr.next()
		if err != nil {
			return false, fmt.Errorf("reading ack for seq %d: %w", st.frames[inf.idx].seq, err)
		}
		if f.Type != MsgEventAck {
			return false, fmt.Errorf("expected ack, got frame type 0x%02x", byte(f.Type))
		}
		ack, err := DecodeEventAck(f.Payload)
		if err != nil {
			return false, err
		}
		if ack.Seq != st.frames[inf.idx].seq {
			return false, fmt.Errorf("ack seq %d, want %d (acks must arrive in send order)", ack.Seq, st.frames[inf.idx].seq)
		}
		lat.Observe(float64(time.Since(inf.at).Microseconds()) / 1000)
		st.resolve(inf.idx, ack.Status)
	}
	if err := <-writeErr; err != nil {
		return false, fmt.Errorf("writing: %w", err)
	}

	byeSeq := uint32(len(st.frames) + 1)
	if err := write(mustFrame(MsgBye, Bye{Seq: byeSeq}.Encode())); err != nil {
		return false, fmt.Errorf("bye: %w", err)
	}
	f, err := fr.next()
	if err != nil || f.Type != MsgByeAck {
		return false, fmt.Errorf("waiting for bye-ack (got %v): %v", f.Type, err)
	}
	sum, err := DecodeDeviceSummary(f.Payload)
	if err != nil {
		return false, err
	}
	st.summary = sum

	// The bye-ack is the no-side-channel proof that every acknowledged
	// frame landed: counts must match exactly, energy bit for bit. One
	// relaxation in resilient mode: the server may have shed the same
	// retransmitted frame more than once (each one billed), so its shed
	// count may exceed ours — it must never be lower.
	shedsDisagree := sum.Sheds != st.shed
	if resume {
		shedsDisagree = sum.Sheds < st.shed
	}
	switch {
	case sum.Seq != byeSeq:
		st.mismatch = fmt.Sprintf("bye seq %d, want %d", sum.Seq, byeSeq)
	case sum.Wakes != st.wakes:
		st.mismatch = fmt.Sprintf("server wakes %d, client acked %d", sum.Wakes, st.wakes)
	case sum.Heartbeats != st.heartbeats:
		st.mismatch = fmt.Sprintf("server heartbeats %d, client acked %d", sum.Heartbeats, st.heartbeats)
	case shedsDisagree:
		st.mismatch = fmt.Sprintf("server sheds %d, client saw %d", sum.Sheds, st.shed)
	default:
		got := make([]float64, len(st.energyAccepted))
		for _, e := range sum.Energy {
			if int(e.Component) < len(got) {
				got[e.Component] = e.MJ
			}
		}
		for c := range st.energyAccepted {
			if math.Float64bits(got[c]) != math.Float64bits(st.energyAccepted[c]) {
				st.mismatch = fmt.Sprintf("component %s: server %v, client %v",
					telemetry.Component(c), got[c], st.energyAccepted[c])
				break
			}
		}
	}
	return true, nil
}

// runDevice replays one cell as a full device session. With
// cfg.Reconnect == 0 it is the legacy single-shot Hello session; with a
// reconnect budget it opens with a resume handshake and rides through
// connection failures on capped exponential backoff, resetting the
// budget whenever an attempt makes progress.
func runDevice(cfg LoadConfig, id uint64, cell *sim.FleetCell, lat *telemetry.Histogram) deviceOutcome {
	out := deviceOutcome{id: id}
	epoch := cfg.Epoch
	if epoch == 0 {
		epoch = 1
	}
	frames := schedule(cell, cfg.HeartbeatEvery, epoch)
	st := &devSession{
		frames:         frames,
		resolved:       make([]bool, len(frames)),
		resolvedShed:   make([]bool, len(frames)),
		energyAccepted: make([]float64, len(telemetry.Components())),
	}

	if cfg.Reconnect <= 0 {
		if _, err := st.attempt(cfg, id, lat, false); err != nil {
			out.err = fmt.Errorf("device %d: %w", id, err)
		}
	} else {
		base := cfg.BackoffBase
		if base <= 0 {
			base = 25 * time.Millisecond
		}
		capd := cfg.BackoffCap
		if capd < base {
			capd = time.Second
		}
		backoff := base
		fails := 0
		for {
			before := st.nResolved
			done, err := st.attempt(cfg, id, lat, true)
			if done {
				break
			}
			if st.nResolved > before {
				// Progress: the fleet is alive, just rude. Reset the budget.
				fails = 0
				backoff = base
			} else {
				fails++
			}
			if fails > cfg.Reconnect {
				out.gaveUp = true
				out.err = fmt.Errorf("device %d: giving up after %d consecutive failed attempts: %w", id, fails, err)
				break
			}
			out.reconnects++
			time.Sleep(backoff)
			backoff *= 2
			if backoff > capd {
				backoff = capd
			}
		}
	}

	out.wakes, out.heartbeats, out.energy = st.wakes, st.heartbeats, st.energy
	out.shed, out.dup, out.resumed = st.shed, st.dup, st.resumed
	out.summary, out.mismatch = st.summary, st.mismatch
	return out
}

// RunLoad replays every cell of a population against the daemon,
// Concurrency devices at a time, and aggregates throughput, latency
// quantiles and the per-device server summaries.
func RunLoad(cfg LoadConfig, cells []sim.FleetCell) (*LoadReport, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("fleetd: load generator needs an address")
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("fleetd: load generator needs a population")
	}
	reg := cfg.Telemetry.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	lat := reg.Histogram("fleetload.ack_latency_ms",
		[]float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000})

	conc := cfg.Concurrency
	if conc <= 0 || conc > len(cells) {
		conc = len(cells)
	}
	sem := make(chan struct{}, conc)
	outs := make([]deviceOutcome, len(cells))
	var wg sync.WaitGroup
	start := time.Now()
	for i := range cells {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			outs[i] = runDevice(cfg, uint64(i+1), &cells[i], lat)
		}(i)
	}
	wg.Wait()
	dur := time.Since(start).Seconds()

	rep := &LoadReport{
		Devices:     len(cells),
		DurationSec: dur,
		Summaries:   make(map[uint64]DeviceSummary, len(cells)),
	}
	var firstErr error
	for i := range outs {
		o := &outs[i]
		rep.Reconnects += o.reconnects
		rep.DupAcks += o.dup
		rep.Resumed += o.resumed
		if o.err != nil {
			rep.Unrecovered++
			if firstErr == nil {
				firstErr = o.err
			}
			continue
		}
		rep.Wakes += o.wakes
		rep.Heartbeats += o.heartbeats
		rep.EnergyFrames += o.energy
		rep.Accepted += o.wakes + o.heartbeats + o.energy
		rep.Shed += o.shed
		rep.Summaries[o.id] = o.summary
		if o.mismatch != "" {
			rep.Mismatches++
			if firstErr == nil {
				firstErr = fmt.Errorf("device %d: summary mismatch: %s", o.id, o.mismatch)
			}
		}
	}
	rep.Frames = rep.Accepted + rep.Shed
	if dur > 0 {
		rep.EventsPerSec = float64(rep.Frames) / dur
	}
	rep.P50ms = lat.Quantile(0.50)
	rep.P99ms = lat.Quantile(0.99)
	rep.P999ms = lat.Quantile(0.999)
	return rep, firstErr
}
