package fleetd

import (
	"bufio"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"sidewinder/internal/link"
	"sidewinder/internal/power"
	"sidewinder/internal/sensor"
	"sidewinder/internal/sim"
	"sidewinder/internal/telemetry"
	"sidewinder/internal/tracegen"
)

// The load generator replays a sim.FleetRun population over real sockets:
// every cell of the batch sweep becomes one device session that sends its
// wakes, heartbeats and energy split as protocol frames. Because the cell
// records the exact per-component energy the batch run deposits, the
// daemon's ledger after a full (shed-free) replay must match the batch
// ledger — per device bit for bit — which is the identity test's anchor.

// BuildPopulation synthesizes candidate traces (two robot accelerometer
// groups and one office audio bed) and runs the batch fleet sweep. The
// returned ledger is the batch reference the daemon replay is compared
// against.
func BuildPopulation(devices, appsPerDevice int, seed int64, traceDur time.Duration, workers int) (*sim.FleetResult, *telemetry.Ledger, error) {
	busy, err := tracegen.Robot(tracegen.RobotConfig{Seed: seed, Duration: traceDur, IdleFraction: 0.1})
	if err != nil {
		return nil, nil, err
	}
	idle, err := tracegen.Robot(tracegen.RobotConfig{Seed: seed + 1, Duration: traceDur, IdleFraction: 0.9})
	if err != nil {
		return nil, nil, err
	}
	office, err := tracegen.Audio(tracegen.NewAudioConfig(seed+2, traceDur, tracegen.OfficeAudio))
	if err != nil {
		return nil, nil, err
	}
	led := telemetry.NewLedger()
	res, err := sim.FleetRun(sim.FleetRunConfig{
		Devices:       devices,
		AppsPerDevice: appsPerDevice,
		Seed:          seed,
		Workers:       workers,
		Accel:         []*sensor.Trace{busy, idle},
		Audio:         []*sensor.Trace{office},
		Telemetry:     telemetry.Set{Ledger: led},
	})
	if err != nil {
		return nil, nil, err
	}
	return res, led, nil
}

// LoadConfig parameterizes a socket replay of a fleet population.
type LoadConfig struct {
	// Addr is the daemon's ingest address (required).
	Addr string
	// Window bounds in-flight unacked frames per device (default 64).
	Window int
	// HeartbeatEvery inserts one heartbeat per this many wake frames
	// (default 25).
	HeartbeatEvery int
	// Epoch is the device boot epoch carried in heartbeats (default 1).
	Epoch uint32
	// Concurrency bounds simultaneously connected devices (default: the
	// whole population at once — concurrent load is the point).
	Concurrency int
	// Telemetry receives the client-side ingest latency histogram
	// (fleetload.ack_latency_ms). Nil metrics get a fresh registry.
	Telemetry telemetry.Set
}

// LoadReport aggregates a replay.
type LoadReport struct {
	Devices      int
	Frames       uint64 // acked event frames (wakes + heartbeats + energy)
	Accepted     uint64
	Shed         uint64
	Wakes        uint64
	Heartbeats   uint64
	EnergyFrames uint64
	DurationSec  float64
	EventsPerSec float64
	P50ms        float64
	P99ms        float64
	P999ms       float64
	// Summaries holds every device's server-side bye-ack totals by ID.
	Summaries map[uint64]DeviceSummary
	// Mismatches counts devices whose bye-ack disagreed with the
	// client-side record of accepted frames — must be zero.
	Mismatches int
}

// outFrame is one scheduled frame of a device session.
type outFrame struct {
	kind      int // itemWake, itemEnergy, or frameHeartbeat below
	seq       uint32
	component telemetry.Component
	mj        float64
	wire      []byte
}

const frameHeartbeat = 100 // distinct from the server-side item kinds

// deviceOutcome is one session's client-side record.
type deviceOutcome struct {
	id                        uint64
	wakes, heartbeats, energy uint64 // accepted, by kind
	shed                      uint64
	summary                   DeviceSummary
	mismatch                  string // non-empty: bye-ack disagreed with us
	err                       error
}

// schedule builds a cell's frame sequence: wakes with interleaved
// heartbeats, then the six-component energy split in the exact order
// batch FleetRun deposits it (DepositEnergy), then nothing — the bye is
// written by the session after the last ack.
func schedule(cell *sim.FleetCell, hbEvery int, epoch uint32) []outFrame {
	if hbEvery <= 0 {
		hbEvery = 25
	}
	frames := make([]outFrame, 0, cell.Wakes+cell.Wakes/hbEvery+8)
	seq := uint32(0)
	next := func() uint32 { seq++; return seq }
	for w := 0; w < cell.Wakes; w++ {
		if w%hbEvery == 0 {
			s := next()
			hb := Heartbeat{Seq: s, Epoch: epoch}
			frames = append(frames, outFrame{kind: frameHeartbeat, seq: s, wire: mustFrame(MsgDeviceHeartbeat, hb.Encode())})
		}
		s := next()
		we := WakeEvent{Seq: s, Node: uint16(w), Value: cell.AvgMW}
		frames = append(frames, outFrame{kind: itemWake, seq: s, wire: mustFrame(MsgDeviceWake, we.Encode())})
	}
	deposits := []ComponentMJ{
		{telemetry.PhoneAsleep, cell.PhoneStateMJ[power.Asleep]},
		{telemetry.PhoneWaking, cell.PhoneStateMJ[power.WakingUp]},
		{telemetry.PhoneAwake, cell.PhoneStateMJ[power.Awake]},
		{telemetry.PhoneFallingAsleep, cell.PhoneStateMJ[power.FallingAsleep]},
		{telemetry.PhoneFallback, cell.FallbackEnergyMJ},
		{telemetry.HubDevice, cell.HubEnergyMJ},
	}
	for _, d := range deposits {
		s := next()
		ev := EnergyEvent{Seq: s, Component: d.Component, MJ: d.MJ}
		frames = append(frames, outFrame{kind: itemEnergy, seq: s, component: d.Component, mj: d.MJ,
			wire: mustFrame(MsgDeviceEnergy, ev.Encode())})
	}
	return frames
}

func mustFrame(t link.MsgType, payload []byte) []byte {
	wire, err := link.Encode(link.Frame{Type: t, Payload: payload})
	if err != nil {
		panic(err) // payloads are fixed-size and well under the frame limit
	}
	return wire
}

// frameReader pulls whole protocol frames off a connection.
type frameReader struct {
	conn  net.Conn
	dec   link.Decoder
	buf   []byte
	queue []link.Frame
}

func (r *frameReader) next() (link.Frame, error) {
	for len(r.queue) == 0 {
		n, err := r.conn.Read(r.buf)
		if n > 0 {
			frames, ferr := r.dec.Feed(r.buf[:n])
			r.queue = append(r.queue, frames...)
			if ferr != nil && link.IsMalformed(ferr) {
				return link.Frame{}, ferr
			}
		}
		if err != nil && len(r.queue) == 0 {
			return link.Frame{}, err
		}
	}
	f := r.queue[0]
	r.queue = r.queue[1:]
	return f, nil
}

// runDevice replays one cell as a full device session and verifies the
// bye-ack against the client-side record of what was acknowledged.
func runDevice(cfg LoadConfig, id uint64, cell *sim.FleetCell, lat *telemetry.Histogram) deviceOutcome {
	out := deviceOutcome{id: id}
	conn, err := net.Dial("tcp", cfg.Addr)
	if err != nil {
		out.err = fmt.Errorf("device %d: dial: %w", id, err)
		return out
	}
	defer conn.Close()
	fr := &frameReader{conn: conn, buf: make([]byte, 1<<13)}

	if _, err := conn.Write(mustFrame(MsgHello, Hello{Version: ProtocolVersion, DeviceID: id}.Encode())); err != nil {
		out.err = fmt.Errorf("device %d: hello: %w", id, err)
		return out
	}
	f, err := fr.next()
	if err != nil || f.Type != MsgHelloAck {
		out.err = fmt.Errorf("device %d: waiting for hello-ack (got %v): %v", id, f.Type, err)
		return out
	}
	if _, err := DecodeHelloAck(f.Payload); err != nil {
		out.err = fmt.Errorf("device %d: %w", id, err)
		return out
	}

	window := cfg.Window
	if window <= 0 {
		window = 64
	}
	epoch := cfg.Epoch
	if epoch == 0 {
		epoch = 1
	}
	frames := schedule(cell, cfg.HeartbeatEvery, epoch)

	type inflight struct {
		frame outFrame
		at    time.Time
	}
	pending := make(chan inflight, window)
	writeErr := make(chan error, 1)
	go func() {
		bw := bufio.NewWriterSize(conn, 1<<13)
		for i := range frames {
			pending <- inflight{frame: frames[i], at: time.Now()}
			if _, err := bw.Write(frames[i].wire); err != nil {
				writeErr <- err
				close(pending)
				return
			}
			// Flush when the window has room to spare is wasted syscalls;
			// flush when the writer is about to block keeps acks flowing.
			if len(pending) >= window-1 || i == len(frames)-1 {
				if err := bw.Flush(); err != nil {
					writeErr <- err
					close(pending)
					return
				}
			} else if bw.Available() < 64 {
				if err := bw.Flush(); err != nil {
					writeErr <- err
					close(pending)
					return
				}
			}
		}
		writeErr <- nil
		close(pending)
	}()

	// energyAccepted mirrors, client-side, what the server should have
	// accumulated per component for this device.
	energyAccepted := make([]float64, len(telemetry.Components()))
	for inf := range pending {
		f, err := fr.next()
		if err != nil {
			out.err = fmt.Errorf("device %d: reading ack for seq %d: %w", id, inf.frame.seq, err)
			return out
		}
		if f.Type != MsgEventAck {
			out.err = fmt.Errorf("device %d: expected ack, got frame type 0x%02x", id, byte(f.Type))
			return out
		}
		ack, err := DecodeEventAck(f.Payload)
		if err != nil {
			out.err = fmt.Errorf("device %d: %w", id, err)
			return out
		}
		if ack.Seq != inf.frame.seq {
			out.err = fmt.Errorf("device %d: ack seq %d, want %d (acks must arrive in send order)", id, ack.Seq, inf.frame.seq)
			return out
		}
		lat.Observe(float64(time.Since(inf.at).Microseconds()) / 1000)
		switch {
		case ack.Status == AckShed:
			out.shed++
		case inf.frame.kind == itemWake:
			out.wakes++
		case inf.frame.kind == frameHeartbeat:
			out.heartbeats++
		case inf.frame.kind == itemEnergy:
			out.energy++
			energyAccepted[inf.frame.component] += inf.frame.mj
		}
	}
	if err := <-writeErr; err != nil {
		out.err = fmt.Errorf("device %d: writing: %w", id, err)
		return out
	}

	byeSeq := uint32(len(frames) + 1)
	if _, err := conn.Write(mustFrame(MsgBye, Bye{Seq: byeSeq}.Encode())); err != nil {
		out.err = fmt.Errorf("device %d: bye: %w", id, err)
		return out
	}
	f, err = fr.next()
	if err != nil || f.Type != MsgByeAck {
		out.err = fmt.Errorf("device %d: waiting for bye-ack (got %v): %v", id, f.Type, err)
		return out
	}
	sum, err := DecodeDeviceSummary(f.Payload)
	if err != nil {
		out.err = fmt.Errorf("device %d: %w", id, err)
		return out
	}
	out.summary = sum

	// The bye-ack is the no-side-channel proof that every acknowledged
	// frame landed: counts must match exactly, energy bit for bit.
	switch {
	case sum.Seq != byeSeq:
		out.mismatch = fmt.Sprintf("bye seq %d, want %d", sum.Seq, byeSeq)
	case sum.Wakes != out.wakes:
		out.mismatch = fmt.Sprintf("server wakes %d, client acked %d", sum.Wakes, out.wakes)
	case sum.Heartbeats != out.heartbeats:
		out.mismatch = fmt.Sprintf("server heartbeats %d, client acked %d", sum.Heartbeats, out.heartbeats)
	case sum.Sheds != out.shed:
		out.mismatch = fmt.Sprintf("server sheds %d, client saw %d", sum.Sheds, out.shed)
	default:
		got := make([]float64, len(energyAccepted))
		for _, e := range sum.Energy {
			if int(e.Component) < len(got) {
				got[e.Component] = e.MJ
			}
		}
		for c := range energyAccepted {
			if math.Float64bits(got[c]) != math.Float64bits(energyAccepted[c]) {
				out.mismatch = fmt.Sprintf("component %s: server %v, client %v",
					telemetry.Component(c), got[c], energyAccepted[c])
				break
			}
		}
	}
	return out
}

// RunLoad replays every cell of a population against the daemon,
// Concurrency devices at a time, and aggregates throughput, latency
// quantiles and the per-device server summaries.
func RunLoad(cfg LoadConfig, cells []sim.FleetCell) (*LoadReport, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("fleetd: load generator needs an address")
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("fleetd: load generator needs a population")
	}
	reg := cfg.Telemetry.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	lat := reg.Histogram("fleetload.ack_latency_ms",
		[]float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000})

	conc := cfg.Concurrency
	if conc <= 0 || conc > len(cells) {
		conc = len(cells)
	}
	sem := make(chan struct{}, conc)
	outs := make([]deviceOutcome, len(cells))
	var wg sync.WaitGroup
	start := time.Now()
	for i := range cells {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			outs[i] = runDevice(cfg, uint64(i+1), &cells[i], lat)
		}(i)
	}
	wg.Wait()
	dur := time.Since(start).Seconds()

	rep := &LoadReport{
		Devices:     len(cells),
		DurationSec: dur,
		Summaries:   make(map[uint64]DeviceSummary, len(cells)),
	}
	var firstErr error
	for i := range outs {
		o := &outs[i]
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
			}
			continue
		}
		rep.Wakes += o.wakes
		rep.Heartbeats += o.heartbeats
		rep.EnergyFrames += o.energy
		rep.Accepted += o.wakes + o.heartbeats + o.energy
		rep.Shed += o.shed
		rep.Summaries[o.id] = o.summary
		if o.mismatch != "" {
			rep.Mismatches++
			if firstErr == nil {
				firstErr = fmt.Errorf("device %d: summary mismatch: %s", o.id, o.mismatch)
			}
		}
	}
	rep.Frames = rep.Accepted + rep.Shed
	if dur > 0 {
		rep.EventsPerSec = float64(rep.Frames) / dur
	}
	rep.P50ms = lat.Quantile(0.50)
	rep.P99ms = lat.Quantile(0.99)
	rep.P999ms = lat.Quantile(0.999)
	return rep, firstErr
}
