// Package parallel provides a bounded worker pool for the embarrassingly
// parallel parts of the evaluation: independent (strategy, app, trace)
// simulation cells and per-trace generation. Results are collected in
// submission order, so callers that render tables from them produce output
// that depends only on the inputs — never on goroutine scheduling — and a
// run with N workers is byte-identical to a run with one.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the pool size used when a caller passes workers <= 0:
// one worker per available CPU (GOMAXPROCS).
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// clamp resolves the effective pool size for n items.
func clamp(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Map runs fn over the indices 0..n-1 on a bounded pool and returns the
// results in index order. Every item runs even if some fail; the returned
// error is the lowest-indexed one, so failure reporting is as deterministic
// as success. fn must be safe for concurrent invocation when workers > 1.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)
	workers = clamp(workers, n)
	if workers == 1 {
		// Inline execution keeps single-worker runs free of goroutine
		// overhead and makes workers=1 a faithful serial baseline.
		for i := 0; i < n; i++ {
			results[i], errs[i] = fn(i)
		}
		return results, firstError(errs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return results, firstError(errs)
}

// ForEach is Map without per-item results.
func ForEach(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// All reports whether pred holds for every index 0..n-1, fanning the calls
// through a bounded pool. Once any call reports false or fails, remaining
// unstarted items are skipped, so pred must have no side effects beyond its
// answer: the boolean result is deterministic, but which items run on a
// false outcome is not. A pred error yields (false, err); when several
// items error the lowest-indexed completed one is returned.
func All(workers, n int, pred func(i int) (bool, error)) (bool, error) {
	workers = clamp(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			ok, err := pred(i)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var stopped atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !stopped.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				ok, err := pred(i)
				if err != nil {
					errs[i] = err
					stopped.Store(true)
					return
				}
				if !ok {
					stopped.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return false, err
	}
	return !stopped.Load(), nil
}

// firstError returns the lowest-indexed non-nil error.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
