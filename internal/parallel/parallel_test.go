package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		got, err := Map(workers, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: len = %d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapReturnsLowestIndexedError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, 20, func(i int) (int, error) {
			if i%7 == 3 { // fails at 3, 10, 17
				return 0, fmt.Errorf("item %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "item 3" {
			t.Fatalf("workers=%d: err = %v, want item 3", workers, err)
		}
	}
}

func TestMapRunsEveryItemDespiteErrors(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(4, 30, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("first")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if ran.Load() != 30 {
		t.Fatalf("ran %d of 30 items", ran.Load())
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(3, 10, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestAll(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ok, err := All(workers, 20, func(i int) (bool, error) { return true, nil })
		if err != nil || !ok {
			t.Fatalf("workers=%d: all-true gave %v, %v", workers, ok, err)
		}
		ok, err = All(workers, 20, func(i int) (bool, error) { return i != 11, nil })
		if err != nil || ok {
			t.Fatalf("workers=%d: one-false gave %v, %v", workers, ok, err)
		}
		_, err = All(workers, 20, func(i int) (bool, error) {
			if i == 5 {
				return false, errors.New("boom")
			}
			return true, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: error swallowed", workers)
		}
	}
}

func TestAllSkipsAfterFalse(t *testing.T) {
	var ran atomic.Int64
	ok, err := All(1, 1000, func(i int) (bool, error) {
		ran.Add(1)
		return i < 3, nil
	})
	if err != nil || ok {
		t.Fatalf("got %v, %v", ok, err)
	}
	if ran.Load() != 4 {
		t.Fatalf("serial All ran %d items, want 4", ran.Load())
	}
}

func TestClamp(t *testing.T) {
	if got := clamp(0, 5); got != DefaultWorkers() && got != 5 {
		t.Fatalf("clamp(0, 5) = %d", got)
	}
	if got := clamp(8, 3); got != 3 {
		t.Fatalf("clamp(8, 3) = %d", got)
	}
	if got := clamp(-1, 0); got != 1 {
		t.Fatalf("clamp(-1, 0) = %d", got)
	}
}
