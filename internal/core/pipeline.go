package core

import (
	"fmt"
	"strings"
)

// Stage is one parameterized algorithm instance in a pipeline. At the API
// level stages are stubs (paper §3.2): the implementation lives on the hub.
type Stage struct {
	Kind   AlgorithmKind
	Params Params
}

// String renders the stage as kind(params) with deterministic parameter
// order.
func (s Stage) String() string {
	if len(s.Params) == 0 {
		return string(s.Kind)
	}
	parts := make([]string, 0, len(s.Params))
	for _, name := range s.Params.sortedNames() {
		parts = append(parts, fmt.Sprintf("%s=%s", name, s.Params[name]))
	}
	return fmt.Sprintf("%s(%s)", s.Kind, strings.Join(parts, ", "))
}

// Branch is a ProcessingBranch (paper §3.2): a flow of data from one sensor
// channel through a chain of single-input algorithms.
type Branch struct {
	source SensorChannel
	stages []Stage
}

// NewBranch returns a branch rooted at the given sensor channel.
func NewBranch(source SensorChannel) *Branch {
	return &Branch{source: source}
}

// Add appends a stage to the branch and returns the branch for chaining.
func (b *Branch) Add(s Stage) *Branch {
	b.stages = append(b.stages, s)
	return b
}

// Source returns the branch's sensor channel.
func (b *Branch) Source() SensorChannel { return b.source }

// Stages returns the branch's stages in order.
func (b *Branch) Stages() []Stage { return b.stages }

// Pipeline is a ProcessingPipeline (paper §3.2): the entire wake-up
// condition from input sensors to the final output. It consists of one or
// more branches followed by tail stages; the first tail stage merges all
// branches (and must therefore be an aggregation algorithm when more than
// one branch exists), and subsequent tail stages are single-input.
type Pipeline struct {
	name     string
	branches []*Branch
	tail     []Stage
}

// NewPipeline returns an empty pipeline. The optional name labels the
// condition in diagnostics and IR comments.
func NewPipeline(name string) *Pipeline {
	return &Pipeline{name: name}
}

// Name returns the pipeline's label.
func (p *Pipeline) Name() string { return p.name }

// AddBranch appends branches to the pipeline.
func (p *Pipeline) AddBranch(branches ...*Branch) *Pipeline {
	p.branches = append(p.branches, branches...)
	return p
}

// Add appends a stage after the branch-merge point, mirroring the paper's
// ProcessingPipeline.add(algorithm).
func (p *Pipeline) Add(s Stage) *Pipeline {
	p.tail = append(p.tail, s)
	return p
}

// Branches returns the pipeline's branches.
func (p *Pipeline) Branches() []*Branch { return p.branches }

// Tail returns the post-merge stages.
func (p *Pipeline) Tail() []Stage { return p.tail }

// InputRef identifies where a plan node's input comes from: a sensor
// channel or an upstream node.
type InputRef struct {
	Channel SensorChannel // set when the input is a raw sensor channel
	Node    int           // upstream node ID when Channel is empty
}

// FromChannel reports whether the input is a raw sensor channel.
func (r InputRef) FromChannel() bool { return r.Channel != "" }

// String renders the reference as it appears in the IR source list.
func (r InputRef) String() string {
	if r.FromChannel() {
		return string(r.Channel)
	}
	return fmt.Sprintf("%d", r.Node)
}

// PlanNode is one validated, fully resolved algorithm instance.
type PlanNode struct {
	ID     int
	Kind   AlgorithmKind
	Params Params // normalized: defaults filled, values checked
	Inputs []InputRef
	Meta   *Meta

	// Resolved dataflow facts used by feasibility checks and the
	// interpreter.
	InKind  ValueKind
	OutKind ValueKind
	InLen   int // input vector length (0 for scalar inputs)
	OutLen  int // output vector length (0 for scalar outputs)

	// Rate is the node's invocation rate in Hz (worst case); OutRate is
	// its emission rate.
	Rate    float64
	OutRate float64

	// Cost is the per-invocation work; Memory the per-instance hub RAM.
	Cost   CostEstimate
	Memory int
}

// Plan is a validated pipeline: nodes in topological order with IDs
// assigned exactly as the IR compiler will emit them (1-based, matching
// paper Fig. 2c). The last node feeds OUT.
type Plan struct {
	Name     string
	Nodes    []PlanNode
	Channels []SensorChannel // unique channels in first-use order
}

// OutputNode returns the ID of the node feeding OUT.
func (p *Plan) OutputNode() int { return p.Nodes[len(p.Nodes)-1].ID }

// Node returns the plan node with the given ID, or nil.
func (p *Plan) Node(id int) *PlanNode {
	if id < 1 || id > len(p.Nodes) {
		return nil
	}
	return &p.Nodes[id-1]
}

// TotalOpsPerSecond returns the aggregate float and integer operations per
// second the plan demands of the hub.
func (p *Plan) TotalOpsPerSecond() (floatOps, intOps float64) {
	for i := range p.Nodes {
		n := &p.Nodes[i]
		floatOps += n.Cost.FloatOps * n.Rate
		intOps += n.Cost.IntOps * n.Rate
	}
	return floatOps, intOps
}

// TotalMemory returns the aggregate hub RAM demand in bytes.
func (p *Plan) TotalMemory() int {
	var m int
	for i := range p.Nodes {
		m += p.Nodes[i].Memory
	}
	return m
}

// ResolvedInput describes one already-resolved input edge of a node being
// validated: where it comes from and what flows over it.
type ResolvedInput struct {
	Ref    InputRef
	Kind   ValueKind
	VecLen int     // vector length (0 for scalar edges)
	Rate   float64 // emission rate in Hz
}

// ResolveNode validates one algorithm instance against the catalog given
// its resolved inputs, and returns the fully resolved plan node with the
// given ID. It is the single source of truth for arity, kind, parameter
// and rate checking, shared by Pipeline.Validate and the IR binder.
func ResolveNode(cat *Catalog, id int, kind AlgorithmKind, raw Params, inputs []ResolvedInput) (PlanNode, error) {
	meta, err := cat.Get(kind)
	if err != nil {
		return PlanNode{}, err
	}
	if len(inputs) < meta.MinInputs {
		return PlanNode{}, fmt.Errorf("core: %s requires at least %d inputs, got %d", kind, meta.MinInputs, len(inputs))
	}
	if meta.MaxInputs >= 0 && len(inputs) > meta.MaxInputs {
		return PlanNode{}, fmt.Errorf("core: %s accepts at most %d inputs, got %d", kind, meta.MaxInputs, len(inputs))
	}
	params, err := raw.normalize(string(kind), meta.Params)
	if err != nil {
		return PlanNode{}, err
	}
	if err := checkCrossParams(kind, params); err != nil {
		return PlanNode{}, err
	}
	inLen := 0
	rate := 0.0
	for i, in := range inputs {
		if in.Kind != meta.In {
			return PlanNode{}, fmt.Errorf("core: %s input %d is %s, requires %s", kind, i+1, in.Kind, meta.In)
		}
		if i == 0 {
			inLen, rate = in.VecLen, in.Rate
			continue
		}
		if in.VecLen != inLen {
			return PlanNode{}, fmt.Errorf("core: %s merges vectors of different lengths (%d vs %d)", kind, inLen, in.VecLen)
		}
		if in.Rate != rate {
			return PlanNode{}, fmt.Errorf("core: %s merges branches with different emission rates (%g Hz vs %g Hz)", kind, rate, in.Rate)
		}
	}
	refs := make([]InputRef, len(inputs))
	for i, in := range inputs {
		refs[i] = in.Ref
	}
	outLen := 0
	if meta.Out == Vector {
		outLen = meta.OutLen(params, inLen)
		if outLen <= 0 {
			return PlanNode{}, fmt.Errorf("core: %s produces empty vectors", kind)
		}
	}
	return PlanNode{
		ID:      id,
		Kind:    kind,
		Params:  params,
		Inputs:  refs,
		Meta:    meta,
		InKind:  meta.In,
		OutKind: meta.Out,
		InLen:   inLen,
		OutLen:  outLen,
		Rate:    rate,
		OutRate: rate * meta.RateFactor(params),
		Cost:    meta.Cost(params, inLen),
		Memory:  meta.Memory(params, inLen),
	}, nil
}

// Output returns the node's emission as a ResolvedInput for downstream
// consumers.
func (n *PlanNode) Output() ResolvedInput {
	return ResolvedInput{
		Ref:    InputRef{Node: n.ID},
		Kind:   n.OutKind,
		VecLen: n.OutLen,
		Rate:   n.OutRate,
	}
}

// ChannelInput returns the ResolvedInput for a raw sensor channel.
func ChannelInput(c SensorChannel) ResolvedInput {
	return ResolvedInput{
		Ref:  InputRef{Channel: c},
		Kind: Scalar,
		Rate: c.Rate(),
	}
}

// Validate checks the pipeline against the platform catalog and resolves it
// into a Plan. It enforces the structural rules of paper §3.2 and the
// parameter schemas of §3.6.
func (p *Pipeline) Validate(cat *Catalog) (*Plan, error) {
	if len(p.branches) == 0 {
		return nil, fmt.Errorf("core: pipeline %q has no branches", p.name)
	}
	plan := &Plan{Name: p.name}
	seen := make(map[SensorChannel]bool)

	type edge = ResolvedInput
	ends := make([]edge, 0, len(p.branches))

	addNode := func(s Stage, inputs []edge) (edge, error) {
		node, err := ResolveNode(cat, len(plan.Nodes)+1, s.Kind, s.Params, inputs)
		if err != nil {
			return edge{}, err
		}
		plan.Nodes = append(plan.Nodes, node)
		return node.Output(), nil
	}

	for bi, b := range p.branches {
		if b == nil || len(b.stages) == 0 && len(p.branches) > 1 && len(p.tail) == 0 {
			return nil, fmt.Errorf("core: branch %d is empty with no aggregation tail", bi+1)
		}
		if !b.source.Valid() {
			return nil, fmt.Errorf("core: branch %d has invalid sensor channel %q", bi+1, b.source)
		}
		if !seen[b.source] {
			seen[b.source] = true
			plan.Channels = append(plan.Channels, b.source)
		}
		cur := ChannelInput(b.source)
		for si, s := range b.stages {
			meta, err := cat.Get(s.Kind)
			if err != nil {
				return nil, fmt.Errorf("core: branch %d stage %d: %w", bi+1, si+1, err)
			}
			if meta.MinInputs > 1 {
				return nil, fmt.Errorf("core: branch %d stage %d: %s is an aggregator and cannot appear inside a branch", bi+1, si+1, s.Kind)
			}
			cur, err = addNode(s, []edge{cur})
			if err != nil {
				return nil, fmt.Errorf("core: branch %d stage %d: %w", bi+1, si+1, err)
			}
		}
		ends = append(ends, cur)
	}

	// Tail: the first stage merges all branch ends; later stages are
	// single-input.
	if len(ends) > 1 && len(p.tail) == 0 {
		return nil, fmt.Errorf("core: pipeline %q leaves %d branches unmerged; aggregation algorithms must reduce them to one (paper §3.2)", p.name, len(ends))
	}
	cur := ends[0]
	for ti, s := range p.tail {
		inputs := []edge{cur}
		if ti == 0 && len(ends) > 1 {
			inputs = ends
		}
		var err error
		cur, err = addNode(s, inputs)
		if err != nil {
			return nil, fmt.Errorf("core: tail stage %d: %w", ti+1, err)
		}
	}
	if cur.Kind != Scalar {
		return nil, fmt.Errorf("core: pipeline %q output is a %s; the wake-up signal fed to OUT must be scalar", p.name, cur.Kind)
	}
	if len(plan.Nodes) == 0 {
		return nil, fmt.Errorf("core: pipeline %q contains no algorithms", p.name)
	}
	return plan, nil
}

// checkCrossParams enforces relationships between parameters that the
// per-parameter schema cannot express.
func checkCrossParams(kind AlgorithmKind, p Params) error {
	switch kind {
	case KindWindow:
		size, step := p.Int("size"), p.Int("step")
		if step > size {
			return fmt.Errorf("core: window step %d exceeds size %d", step, size)
		}
	case KindBandThreshold:
		if p.Float("min") > p.Float("max") {
			return fmt.Errorf("core: bandThreshold min %g > max %g", p.Float("min"), p.Float("max"))
		}
	case KindTonality:
		if p.Float("bandLow") > p.Float("bandHigh") {
			return fmt.Errorf("core: tonality bandLow %g > bandHigh %g", p.Float("bandLow"), p.Float("bandHigh"))
		}
	case KindLowPass, KindHighPass:
		b := p.Int("block")
		if b&(b-1) != 0 {
			return fmt.Errorf("core: %s block %d must be a power of two", kind, b)
		}
	case KindIIRLowPass, KindIIRHighPass:
		if p.Float("cutoff") >= p.Float("rate")/2 {
			return fmt.Errorf("core: %s cutoff %g Hz at or above Nyquist (%g)", kind, p.Float("cutoff"), p.Float("rate")/2)
		}
	case KindGoertzelBank:
		if p.Float("bandLow") > p.Float("bandHigh") {
			return fmt.Errorf("core: goertzelBank bandLow %g > bandHigh %g", p.Float("bandLow"), p.Float("bandHigh"))
		}
		if p.Float("bandHigh") >= p.Float("rate")/2 {
			return fmt.Errorf("core: goertzelBank bandHigh %g Hz at or above Nyquist (%g)", p.Float("bandHigh"), p.Float("rate")/2)
		}
	case KindZCRVariance:
		// sub-window count is bounded by the window length at runtime;
		// nothing to check statically.
	}
	return nil
}
