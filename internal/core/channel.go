package core

import "fmt"

// SensorChannel identifies one raw data channel exposed by the sensor hub.
// Channel names are the spelling used in the intermediate language
// (paper Fig. 2c).
type SensorChannel string

// The channels supported by the prototype hub (paper §3.4: an
// accelerometer and a microphone).
const (
	AccelX SensorChannel = "ACC_X"
	AccelY SensorChannel = "ACC_Y"
	AccelZ SensorChannel = "ACC_Z"
	Mic    SensorChannel = "MIC"
)

// Default sampling rates of the prototype's sensors in Hz. The
// accelerometer runs at a typical Android SENSOR_DELAY_GAME rate; the
// microphone at a feature-extraction rate that keeps the 850-1800 Hz siren
// band below Nyquist while staying within microcontroller budgets.
const (
	AccelRateHz = 50.0
	AudioRateHz = 4000.0
)

// Channels lists every supported channel in IR declaration order.
func Channels() []SensorChannel {
	return []SensorChannel{AccelX, AccelY, AccelZ, Mic}
}

// Valid reports whether c names a supported channel.
func (c SensorChannel) Valid() bool {
	switch c {
	case AccelX, AccelY, AccelZ, Mic:
		return true
	}
	return false
}

// Rate returns the channel's sampling rate in Hz.
func (c SensorChannel) Rate() float64 {
	switch c {
	case AccelX, AccelY, AccelZ:
		return AccelRateHz
	case Mic:
		return AudioRateHz
	}
	return 0
}

// ParseChannel converts an IR spelling into a SensorChannel.
func ParseChannel(name string) (SensorChannel, error) {
	c := SensorChannel(name)
	if !c.Valid() {
		return "", fmt.Errorf("core: unknown sensor channel %q", name)
	}
	return c, nil
}
