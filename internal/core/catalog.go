package core

import (
	"fmt"
	"math"
	"sort"
)

// ValueKind classifies the data flowing over a pipeline edge.
type ValueKind int

const (
	// Scalar edges carry one value per emission (raw samples, features,
	// admitted events).
	Scalar ValueKind = iota
	// Vector edges carry a block of values per emission (windows,
	// spectra, filtered blocks).
	Vector
)

// String returns a short kind name.
func (k ValueKind) String() string {
	switch k {
	case Scalar:
		return "scalar"
	case Vector:
		return "vector"
	default:
		return fmt.Sprintf("ValueKind(%d)", int(k))
	}
}

// AlgorithmKind names an algorithm in the platform catalog. The spelling is
// the one used in the intermediate language.
type AlgorithmKind string

// The platform algorithm catalog (paper §3.6): windowing, transforms, data
// filtering, feature extraction and admission control, plus small glue
// operators (delta, abs, ratio, and) needed to chain them.
const (
	// Windowing.
	KindWindow AlgorithmKind = "window"

	// Transforms. fft emits an interleaved complex spectrum
	// [re0,im0,re1,im1,...]; ifft inverts it back to a real block;
	// spectralMag reduces a complex spectrum to per-bin magnitudes.
	KindFFT         AlgorithmKind = "fft"
	KindIFFT        AlgorithmKind = "ifft"
	KindSpectralMag AlgorithmKind = "spectralMag"

	// Data filtering. The iir variants are the streaming, per-sample
	// filters cheap enough for FPU-less microcontrollers; the lowPass/
	// highPass variants are the FFT block filters of the prototype.
	KindMovingAvg   AlgorithmKind = "movingAvg"
	KindEMA         AlgorithmKind = "expMovingAvg"
	KindLowPass     AlgorithmKind = "lowPass"
	KindHighPass    AlgorithmKind = "highPass"
	KindIIRLowPass  AlgorithmKind = "iirLowPass"
	KindIIRHighPass AlgorithmKind = "iirHighPass"

	// Feature extraction.
	KindVectorMagnitude AlgorithmKind = "vectorMagnitude"
	KindZCR             AlgorithmKind = "zeroCrossingRate"
	KindZCRVariance     AlgorithmKind = "zcrVariance"
	KindStat            AlgorithmKind = "stat"
	KindDominantFreq    AlgorithmKind = "dominantFreqMag"
	KindTonality        AlgorithmKind = "tonality"
	KindGoertzelBank    AlgorithmKind = "goertzelBank"

	// Glue operators.
	KindDelta AlgorithmKind = "delta"
	KindAbs   AlgorithmKind = "abs"
	KindRatio AlgorithmKind = "ratio"
	KindAnd   AlgorithmKind = "and"

	// Rate adaptation.
	KindDecimate AlgorithmKind = "decimate"

	// Admission control.
	KindMinThreshold  AlgorithmKind = "minThreshold"
	KindMaxThreshold  AlgorithmKind = "maxThreshold"
	KindBandThreshold AlgorithmKind = "bandThreshold"
)

// StatOps lists the statistics accepted by the stat algorithm's op
// parameter.
var StatOps = []string{"mean", "variance", "stddev", "min", "max", "range", "rms", "median", "meanAbs", "energy"}

// CostEstimate is the per-invocation work of one algorithm instance,
// expressed in abstract float and integer operation counts. Devices map
// these to cycles (package hub); software float emulation on an FPU-less
// microcontroller makes floatOps roughly two orders of magnitude more
// expensive there.
type CostEstimate struct {
	FloatOps float64
	IntOps   float64
}

// Add returns the sum of two estimates.
func (c CostEstimate) Add(o CostEstimate) CostEstimate {
	return CostEstimate{FloatOps: c.FloatOps + o.FloatOps, IntOps: c.IntOps + o.IntOps}
}

// Scale returns the estimate multiplied by f.
func (c CostEstimate) Scale(f float64) CostEstimate {
	return CostEstimate{FloatOps: c.FloatOps * f, IntOps: c.IntOps * f}
}

// Meta describes one catalog algorithm: its signature, parameters, and the
// models the platform uses to check hub feasibility.
type Meta struct {
	Kind AlgorithmKind
	// Summary is a one-line doc string surfaced by tooling.
	Summary string
	// MinInputs/MaxInputs bound the number of input branches.
	// MaxInputs < 0 means unbounded (aggregators).
	MinInputs, MaxInputs int
	// In and Out are the value kinds of the inputs and the output.
	In, Out ValueKind
	// Params is the parameter schema.
	Params []ParamSpec
	// OutLen returns the emitted vector length given the input vector
	// length (0 for scalar inputs). Scalar outputs return 0.
	OutLen func(p Params, inLen int) int
	// Cost returns the per-invocation work for an instance with the
	// given parameters and input vector length. An invocation is one
	// input emission; algorithms that accumulate a block of scalar
	// samples before doing their work (window, lowPass, highPass)
	// amortize the per-block work across the block's samples.
	Cost func(p Params, inLen int) CostEstimate
	// Memory returns the per-instance hub RAM in bytes.
	Memory func(p Params, inLen int) int
	// RateFactor is the ratio of output emissions to input emissions
	// (1 for sample-synchronous algorithms, 1/step for windowing).
	// Conditional emitters (thresholds) report their worst case.
	RateFactor func(p Params) float64
}

// IsAggregator reports whether the algorithm can accept more than one
// input branch.
func (m *Meta) IsAggregator() bool { return m.MaxInputs < 0 || m.MaxInputs > 1 }

// Catalog is the set of algorithms a platform ships on its sensor hub.
type Catalog struct {
	metas map[AlgorithmKind]*Meta
}

// NewCatalog builds a catalog from the given algorithm descriptions.
// Duplicate kinds are an error.
func NewCatalog(metas ...*Meta) (*Catalog, error) {
	c := &Catalog{metas: make(map[AlgorithmKind]*Meta, len(metas))}
	for _, m := range metas {
		if m.Kind == "" {
			return nil, fmt.Errorf("core: catalog entry with empty kind")
		}
		if _, dup := c.metas[m.Kind]; dup {
			return nil, fmt.Errorf("core: duplicate catalog entry %q", m.Kind)
		}
		c.metas[m.Kind] = m
	}
	return c, nil
}

// Get returns the metadata for kind.
func (c *Catalog) Get(kind AlgorithmKind) (*Meta, error) {
	m, ok := c.metas[kind]
	if !ok {
		return nil, fmt.Errorf("core: algorithm %q not in platform catalog", kind)
	}
	return m, nil
}

// Has reports whether the catalog contains kind.
func (c *Catalog) Has(kind AlgorithmKind) bool {
	_, ok := c.metas[kind]
	return ok
}

// Kinds returns all algorithm kinds in lexical order.
func (c *Catalog) Kinds() []AlgorithmKind {
	out := make([]AlgorithmKind, 0, len(c.metas))
	for k := range c.metas {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of algorithms in the catalog.
func (c *Catalog) Len() int { return len(c.metas) }

// identity helpers shared by catalog entries.
func scalarOut(Params, int) int       { return 0 }
func sameLen(_ Params, inLen int) int { return inLen }
func unitRate(Params) float64         { return 1 }
func fixedMemory(n int) func(Params, int) int {
	return func(Params, int) int { return n }
}

// log2 of padded FFT length; at least 1.
func fftWork(n int) float64 {
	if n < 2 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return float64(p) * math.Log2(float64(p))
}

func paddedLen(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// DefaultCatalog returns the platform catalog of the prototype (paper
// §3.6). The cost and memory figures model a 4-byte-float implementation
// of each algorithm written natively for the hub.
func DefaultCatalog() *Catalog {
	sustainSpec := ParamSpec{
		Name: "sustain", Type: IntParam,
		Default: Number(1), Min: 1, Max: 1e6,
	}
	metas := []*Meta{
		{
			Kind:      KindWindow,
			Summary:   "partition a sample stream into fixed-size, optionally tapered windows",
			MinInputs: 1, MaxInputs: 1, In: Scalar, Out: Vector,
			Params: []ParamSpec{
				{Name: "size", Type: IntParam, Required: true, Min: 1, Max: 1 << 20},
				{Name: "step", Type: IntParam, Default: Number(0), Min: 0, Max: 1 << 20}, // 0 means size
				{Name: "shape", Type: EnumParam, Default: Str("rectangular"), Enum: []string{"rectangular", "hamming"}},
			},
			OutLen: func(p Params, _ int) int { return p.Int("size") },
			Cost: func(p Params, _ int) CostEstimate {
				// Per input sample: circular-buffer insert plus the
				// amortized copy-out; Hamming adds one multiply.
				c := CostEstimate{IntOps: 4}
				if p.Str("shape") == "hamming" {
					c.FloatOps += 1
				}
				return c
			},
			Memory: func(p Params, _ int) int { return 4*p.Int("size") + 64 },
			RateFactor: func(p Params) float64 {
				step := p.Int("step")
				if step == 0 {
					step = p.Int("size")
				}
				return 1 / float64(step)
			},
		},
		{
			Kind:      KindFFT,
			Summary:   "fast Fourier transform; emits an interleaved complex spectrum",
			MinInputs: 1, MaxInputs: 1, In: Vector, Out: Vector,
			OutLen: func(_ Params, inLen int) int { return 2 * paddedLen(inLen) },
			Cost: func(_ Params, inLen int) CostEstimate {
				return CostEstimate{FloatOps: 5 * fftWork(inLen)}
			},
			Memory:     func(_ Params, inLen int) int { return 8 * paddedLen(inLen) },
			RateFactor: unitRate,
		},
		{
			Kind:      KindIFFT,
			Summary:   "inverse FFT from an interleaved complex spectrum back to a real block",
			MinInputs: 1, MaxInputs: 1, In: Vector, Out: Vector,
			OutLen: func(_ Params, inLen int) int { return inLen / 2 },
			Cost: func(_ Params, inLen int) CostEstimate {
				return CostEstimate{FloatOps: 5 * fftWork(inLen/2)}
			},
			Memory:     func(_ Params, inLen int) int { return 4 * inLen },
			RateFactor: unitRate,
		},
		{
			Kind:      KindSpectralMag,
			Summary:   "per-bin magnitudes of an interleaved complex spectrum",
			MinInputs: 1, MaxInputs: 1, In: Vector, Out: Vector,
			OutLen: func(_ Params, inLen int) int { return inLen / 2 },
			Cost: func(_ Params, inLen int) CostEstimate {
				return CostEstimate{FloatOps: 3.5 * float64(inLen)}
			},
			Memory:     func(_ Params, inLen int) int { return 2 * inLen },
			RateFactor: unitRate,
		},
		{
			Kind:      KindMovingAvg,
			Summary:   "simple moving average over the last N samples",
			MinInputs: 1, MaxInputs: 1, In: Scalar, Out: Scalar,
			Params: []ParamSpec{
				{Name: "size", Type: IntParam, Required: true, Min: 1, Max: 1 << 16},
			},
			OutLen:     scalarOut,
			Cost:       func(Params, int) CostEstimate { return CostEstimate{FloatOps: 3, IntOps: 2} },
			Memory:     func(p Params, _ int) int { return 4*p.Int("size") + 16 },
			RateFactor: unitRate,
		},
		{
			Kind:      KindEMA,
			Summary:   "exponential moving average with smoothing factor alpha",
			MinInputs: 1, MaxInputs: 1, In: Scalar, Out: Scalar,
			Params: []ParamSpec{
				{Name: "alpha", Type: FloatParam, Required: true, Min: 1e-9, Max: 1},
			},
			OutLen:     scalarOut,
			Cost:       func(Params, int) CostEstimate { return CostEstimate{FloatOps: 3} },
			Memory:     fixedMemory(16),
			RateFactor: unitRate,
		},
		{
			Kind:      KindLowPass,
			Summary:   "FFT-based low-pass filter over fixed-size blocks",
			MinInputs: 1, MaxInputs: 1, In: Scalar, Out: Vector,
			Params: []ParamSpec{
				{Name: "cutoff", Type: FloatParam, Required: true, Min: 0, Max: 1e9},
				{Name: "block", Type: IntParam, Required: true, Min: 2, Max: 1 << 20},
			},
			OutLen: func(p Params, _ int) int { return p.Int("block") },
			Cost: func(p Params, _ int) CostEstimate {
				// Per input sample: the per-block FFT+mask+IFFT work
				// amortized over the block, plus buffering.
				b := p.Int("block")
				perBlock := 10*fftWork(b) + float64(b)
				return CostEstimate{FloatOps: perBlock / float64(b), IntOps: 2}
			},
			Memory:     func(p Params, _ int) int { return 16 * p.Int("block") },
			RateFactor: func(p Params) float64 { return 1 / float64(p.Int("block")) },
		},
		{
			Kind:      KindHighPass,
			Summary:   "FFT-based high-pass filter over fixed-size blocks",
			MinInputs: 1, MaxInputs: 1, In: Scalar, Out: Vector,
			Params: []ParamSpec{
				{Name: "cutoff", Type: FloatParam, Required: true, Min: 0, Max: 1e9},
				{Name: "block", Type: IntParam, Required: true, Min: 2, Max: 1 << 20},
			},
			OutLen: func(p Params, _ int) int { return p.Int("block") },
			Cost: func(p Params, _ int) CostEstimate {
				// Per input sample: the per-block FFT+mask+IFFT work
				// amortized over the block, plus buffering.
				b := p.Int("block")
				perBlock := 10*fftWork(b) + float64(b)
				return CostEstimate{FloatOps: perBlock / float64(b), IntOps: 2}
			},
			Memory:     func(p Params, _ int) int { return 16 * p.Int("block") },
			RateFactor: func(p Params) float64 { return 1 / float64(p.Int("block")) },
		},
		{
			Kind:      KindIIRLowPass,
			Summary:   "streaming biquad low-pass filter (per-sample, MCU-friendly)",
			MinInputs: 1, MaxInputs: 1, In: Scalar, Out: Scalar,
			Params: []ParamSpec{
				{Name: "cutoff", Type: FloatParam, Required: true, Min: 1e-6, Max: 1e9},
				{Name: "rate", Type: FloatParam, Required: true, Min: 1e-6, Max: 1e9},
			},
			OutLen:     scalarOut,
			Cost:       func(Params, int) CostEstimate { return CostEstimate{FloatOps: 9} },
			Memory:     fixedMemory(48),
			RateFactor: unitRate,
		},
		{
			Kind:      KindIIRHighPass,
			Summary:   "streaming biquad high-pass filter (per-sample, MCU-friendly)",
			MinInputs: 1, MaxInputs: 1, In: Scalar, Out: Scalar,
			Params: []ParamSpec{
				{Name: "cutoff", Type: FloatParam, Required: true, Min: 1e-6, Max: 1e9},
				{Name: "rate", Type: FloatParam, Required: true, Min: 1e-6, Max: 1e9},
			},
			OutLen:     scalarOut,
			Cost:       func(Params, int) CostEstimate { return CostEstimate{FloatOps: 9} },
			Memory:     fixedMemory(48),
			RateFactor: unitRate,
		},
		{
			Kind:      KindGoertzelBank,
			Summary:   "bank of Goertzel detectors scanning a frequency band; emits the best normalized tone score per block (fixed-point friendly)",
			MinInputs: 1, MaxInputs: 1, In: Scalar, Out: Scalar,
			Params: []ParamSpec{
				{Name: "bandLow", Type: FloatParam, Required: true, Min: 1e-6, Max: 1e9},
				{Name: "bandHigh", Type: FloatParam, Required: true, Min: 1e-6, Max: 1e9},
				{Name: "rate", Type: FloatParam, Required: true, Min: 1e-6, Max: 1e9},
				{Name: "block", Type: IntParam, Required: true, Min: 8, Max: 1 << 16},
				{Name: "detectors", Type: IntParam, Required: true, Min: 1, Max: 256},
			},
			OutLen: scalarOut,
			Cost: func(p Params, _ int) CostEstimate {
				// Classic fixed-point Goertzel: one Q15 multiply and two
				// adds per detector per sample.
				return CostEstimate{IntOps: 4 * float64(p.Int("detectors"))}
			},
			Memory:     func(p Params, _ int) int { return 16*p.Int("detectors") + 32 },
			RateFactor: func(p Params) float64 { return 1 / float64(p.Int("block")) },
		},
		{
			Kind:      KindVectorMagnitude,
			Summary:   "Euclidean magnitude across input branches (aggregator)",
			MinInputs: 1, MaxInputs: -1, In: Scalar, Out: Scalar,
			OutLen:     scalarOut,
			Cost:       func(Params, int) CostEstimate { return CostEstimate{FloatOps: 12} },
			Memory:     fixedMemory(32),
			RateFactor: unitRate,
		},
		{
			Kind:      KindZCR,
			Summary:   "zero-crossing rate of a window",
			MinInputs: 1, MaxInputs: 1, In: Vector, Out: Scalar,
			OutLen:     scalarOut,
			Cost:       func(_ Params, inLen int) CostEstimate { return CostEstimate{IntOps: 2 * float64(inLen), FloatOps: 2} },
			Memory:     fixedMemory(16),
			RateFactor: unitRate,
		},
		{
			Kind:      KindZCRVariance,
			Summary:   "variance of per-sub-window zero-crossing rates (speech/music feature)",
			MinInputs: 1, MaxInputs: 1, In: Vector, Out: Scalar,
			Params: []ParamSpec{
				{Name: "subwindows", Type: IntParam, Required: true, Min: 2, Max: 1 << 12},
			},
			OutLen: scalarOut,
			Cost: func(p Params, inLen int) CostEstimate {
				return CostEstimate{IntOps: 2 * float64(inLen), FloatOps: 4 * float64(p.Int("subwindows"))}
			},
			Memory:     func(p Params, _ int) int { return 4*p.Int("subwindows") + 16 },
			RateFactor: unitRate,
		},
		{
			Kind:      KindStat,
			Summary:   "windowed statistic (mean, variance, stddev, min, max, range, rms, median, meanAbs, energy)",
			MinInputs: 1, MaxInputs: 1, In: Vector, Out: Scalar,
			Params: []ParamSpec{
				{Name: "op", Type: EnumParam, Required: true, Enum: StatOps},
			},
			OutLen: scalarOut,
			Cost: func(p Params, inLen int) CostEstimate {
				n := float64(inLen)
				switch p.Str("op") {
				case "min", "max", "range":
					return CostEstimate{FloatOps: n}
				case "median":
					return CostEstimate{FloatOps: n, IntOps: n * math.Log2(math.Max(n, 2))}
				case "variance", "stddev":
					return CostEstimate{FloatOps: 3 * n}
				default:
					return CostEstimate{FloatOps: 2 * n}
				}
			},
			Memory: func(p Params, inLen int) int {
				if p.Str("op") == "median" {
					return 4*inLen + 16
				}
				return 32
			},
			RateFactor: unitRate,
		},
		{
			Kind:      KindDominantFreq,
			Summary:   "magnitude of the dominant non-DC spectral bin",
			MinInputs: 1, MaxInputs: 1, In: Vector, Out: Scalar,
			OutLen:     scalarOut,
			Cost:       func(_ Params, inLen int) CostEstimate { return CostEstimate{FloatOps: float64(inLen)} },
			Memory:     fixedMemory(16),
			RateFactor: unitRate,
		},
		{
			Kind:      KindTonality,
			Summary:   "peak-to-mean spectral ratio, gated to a frequency band (pitched-sound feature)",
			MinInputs: 1, MaxInputs: 1, In: Vector, Out: Scalar,
			Params: []ParamSpec{
				{Name: "bandLow", Type: FloatParam, Required: true, Min: 0, Max: 1e9},
				{Name: "bandHigh", Type: FloatParam, Required: true, Min: 0, Max: 1e9},
				{Name: "rate", Type: FloatParam, Required: true, Min: 1e-9, Max: 1e9},
			},
			OutLen:     scalarOut,
			Cost:       func(_ Params, inLen int) CostEstimate { return CostEstimate{FloatOps: 2 * float64(inLen)} },
			Memory:     fixedMemory(32),
			RateFactor: unitRate,
		},
		{
			Kind:      KindDelta,
			Summary:   "difference between consecutive values",
			MinInputs: 1, MaxInputs: 1, In: Scalar, Out: Scalar,
			OutLen:     scalarOut,
			Cost:       func(Params, int) CostEstimate { return CostEstimate{FloatOps: 1} },
			Memory:     fixedMemory(8),
			RateFactor: unitRate,
		},
		{
			Kind:      KindAbs,
			Summary:   "absolute value",
			MinInputs: 1, MaxInputs: 1, In: Scalar, Out: Scalar,
			OutLen:     scalarOut,
			Cost:       func(Params, int) CostEstimate { return CostEstimate{FloatOps: 1} },
			Memory:     fixedMemory(0),
			RateFactor: unitRate,
		},
		{
			Kind:      KindRatio,
			Summary:   "ratio of the first input to the second (aggregator of exactly two branches)",
			MinInputs: 2, MaxInputs: 2, In: Scalar, Out: Scalar,
			OutLen:     scalarOut,
			Cost:       func(Params, int) CostEstimate { return CostEstimate{FloatOps: 2} },
			Memory:     fixedMemory(24),
			RateFactor: unitRate,
		},
		{
			Kind:      KindAnd,
			Summary:   "emits the minimum of all inputs when every branch produced a value for the same emission (aggregator)",
			MinInputs: 2, MaxInputs: -1, In: Scalar, Out: Scalar,
			OutLen:     scalarOut,
			Cost:       func(Params, int) CostEstimate { return CostEstimate{IntOps: 8} },
			Memory:     fixedMemory(64),
			RateFactor: unitRate,
		},
		{
			Kind:      KindDecimate,
			Summary:   "rate adaptation: keep every factor-th sample, dropping the rest",
			MinInputs: 1, MaxInputs: 1, In: Scalar, Out: Scalar,
			Params: []ParamSpec{
				{Name: "factor", Type: IntParam, Required: true, Min: 1, Max: 1 << 12},
			},
			OutLen:     scalarOut,
			Cost:       func(Params, int) CostEstimate { return CostEstimate{IntOps: 2} },
			Memory:     fixedMemory(8),
			RateFactor: func(p Params) float64 { return 1 / float64(p.Int("factor")) },
		},
		{
			Kind:      KindMinThreshold,
			Summary:   "admission control: pass values >= min, optionally sustained for N consecutive emissions",
			MinInputs: 1, MaxInputs: 1, In: Scalar, Out: Scalar,
			Params: []ParamSpec{
				{Name: "min", Type: FloatParam, Required: true, Min: unboundedMin, Max: unboundedMax},
				sustainSpec,
			},
			OutLen:     scalarOut,
			Cost:       func(Params, int) CostEstimate { return CostEstimate{FloatOps: 1, IntOps: 2} },
			Memory:     fixedMemory(16),
			RateFactor: unitRate,
		},
		{
			Kind:      KindMaxThreshold,
			Summary:   "admission control: pass values <= max, optionally sustained",
			MinInputs: 1, MaxInputs: 1, In: Scalar, Out: Scalar,
			Params: []ParamSpec{
				{Name: "max", Type: FloatParam, Required: true, Min: unboundedMin, Max: unboundedMax},
				sustainSpec,
			},
			OutLen:     scalarOut,
			Cost:       func(Params, int) CostEstimate { return CostEstimate{FloatOps: 1, IntOps: 2} },
			Memory:     fixedMemory(16),
			RateFactor: unitRate,
		},
		{
			Kind:      KindBandThreshold,
			Summary:   "admission control: pass values in [min, max], optionally sustained",
			MinInputs: 1, MaxInputs: 1, In: Scalar, Out: Scalar,
			Params: []ParamSpec{
				{Name: "min", Type: FloatParam, Required: true, Min: unboundedMin, Max: unboundedMax},
				{Name: "max", Type: FloatParam, Required: true, Min: unboundedMin, Max: unboundedMax},
				sustainSpec,
			},
			OutLen:     scalarOut,
			Cost:       func(Params, int) CostEstimate { return CostEstimate{FloatOps: 2, IntOps: 2} },
			Memory:     fixedMemory(16),
			RateFactor: unitRate,
		},
	}
	c, err := NewCatalog(metas...)
	if err != nil {
		panic(err) // the default catalog is statically correct
	}
	return c
}
