// Package core implements Sidewinder's primary contribution: the wake-up
// condition model (paper §2-3). A wake-up condition is a ProcessingPipeline
// of ProcessingBranches, each chaining parameterized instances of the
// platform's predefined algorithm catalog. Developers never write code for
// the sensor hub; they configure this graph, the sensor manager compiles it
// to the intermediate language (package ir), and the hub runtime (package
// interp) executes it.
//
// The package defines:
//
//   - SensorChannel: the hub's input channels (accelerometer axes,
//     microphone) with their sampling rates.
//   - Catalog and Meta: the platform's algorithm catalog with parameter
//     schemas, value-kind signatures, and per-device cost/memory models
//     used for real-time feasibility checks (paper §3.8 "Sizing").
//   - Pipeline, Branch, Stage: the developer-facing graph builder mirroring
//     the Java API of paper Fig. 2a.
//
// Validation enforces the structural rules of paper §3.2: a pipeline starts
// with one or more branches rooted at sensor channels, aggregation
// algorithms reduce multiple branches, and exactly one branch remains at
// the end, feeding OUT.
package core
