package core

import (
	"fmt"
	"math"
	"sort"
	"strconv"
)

// ParamType describes the type of an algorithm parameter.
type ParamType int

const (
	// IntParam is an integer parameter (window sizes, counts).
	IntParam ParamType = iota
	// FloatParam is a real-valued parameter (thresholds, cutoffs).
	FloatParam
	// EnumParam is a string drawn from a fixed set (window shapes,
	// statistic names).
	EnumParam
)

// String returns a human-readable type name.
func (t ParamType) String() string {
	switch t {
	case IntParam:
		return "int"
	case FloatParam:
		return "float"
	case EnumParam:
		return "enum"
	default:
		return fmt.Sprintf("ParamType(%d)", int(t))
	}
}

// ParamSpec declares one parameter of a catalog algorithm: its name,
// type, bounds, and default. Parameters with a Default are optional.
type ParamSpec struct {
	Name     string
	Type     ParamType
	Required bool
	Default  ParamValue // used when !Required and the parameter is absent
	Min, Max float64    // numeric bounds (inclusive); ignored for enums
	Enum     []string   // permitted values for EnumParam
}

// ParamValue is a single parameter value: a number or an enum string.
type ParamValue struct {
	Num float64
	Str string
	// IsStr distinguishes the enum case.
	IsStr bool
}

// Number returns a numeric ParamValue.
func Number(v float64) ParamValue { return ParamValue{Num: v} }

// Str returns an enum/string ParamValue.
func Str(s string) ParamValue { return ParamValue{Str: s, IsStr: true} }

// String renders the value as it appears in the intermediate language.
func (v ParamValue) String() string {
	if v.IsStr {
		return v.Str
	}
	return strconv.FormatFloat(v.Num, 'g', -1, 64)
}

// Equal reports exact equality of two values.
func (v ParamValue) Equal(o ParamValue) bool {
	if v.IsStr != o.IsStr {
		return false
	}
	if v.IsStr {
		return v.Str == o.Str
	}
	return v.Num == o.Num
}

// Params holds an algorithm instance's parameter assignment by name.
type Params map[string]ParamValue

// Clone returns a deep copy of p.
func (p Params) Clone() Params {
	if p == nil {
		return nil
	}
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Float returns the named numeric parameter, or 0 when absent.
func (p Params) Float(name string) float64 { return p[name].Num }

// Int returns the named numeric parameter truncated to int.
func (p Params) Int(name string) int { return int(p[name].Num) }

// Str returns the named string parameter, or "" when absent.
func (p Params) Str(name string) string { return p[name].Str }

// sortedNames returns parameter names in lexical order for deterministic
// rendering.
func (p Params) sortedNames() []string {
	names := make([]string, 0, len(p))
	for k := range p {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// normalize validates p against the specs, fills defaults, and returns the
// completed assignment. Unknown parameters, missing required parameters,
// type mismatches, out-of-bounds numbers and unknown enum values are
// errors.
func (p Params) normalize(algo string, specs []ParamSpec) (Params, error) {
	byName := make(map[string]*ParamSpec, len(specs))
	for i := range specs {
		byName[specs[i].Name] = &specs[i]
	}
	for name := range p {
		if _, ok := byName[name]; !ok {
			return nil, fmt.Errorf("core: %s: unknown parameter %q", algo, name)
		}
	}
	out := make(Params, len(specs))
	for i := range specs {
		spec := &specs[i]
		v, present := p[spec.Name]
		if !present {
			if spec.Required {
				return nil, fmt.Errorf("core: %s: missing required parameter %q", algo, spec.Name)
			}
			out[spec.Name] = spec.Default
			continue
		}
		if err := spec.check(v); err != nil {
			return nil, fmt.Errorf("core: %s: %w", algo, err)
		}
		out[spec.Name] = v
	}
	return out, nil
}

// check validates a single value against the spec.
func (s *ParamSpec) check(v ParamValue) error {
	switch s.Type {
	case EnumParam:
		if !v.IsStr {
			return fmt.Errorf("parameter %q must be one of %v", s.Name, s.Enum)
		}
		for _, e := range s.Enum {
			if e == v.Str {
				return nil
			}
		}
		return fmt.Errorf("parameter %q = %q not in %v", s.Name, v.Str, s.Enum)
	case IntParam:
		if v.IsStr {
			return fmt.Errorf("parameter %q must be an integer", s.Name)
		}
		if v.Num != math.Trunc(v.Num) {
			return fmt.Errorf("parameter %q = %g must be an integer", s.Name, v.Num)
		}
	case FloatParam:
		if v.IsStr {
			return fmt.Errorf("parameter %q must be a number", s.Name)
		}
	}
	if math.IsNaN(v.Num) || math.IsInf(v.Num, 0) {
		return fmt.Errorf("parameter %q must be finite", s.Name)
	}
	if v.Num < s.Min || v.Num > s.Max {
		return fmt.Errorf("parameter %q = %g outside [%g, %g]", s.Name, v.Num, s.Min, s.Max)
	}
	return nil
}

// noBounds is a convenience for specs that accept any finite value.
const (
	unboundedMin = -math.MaxFloat64
	unboundedMax = math.MaxFloat64
)
