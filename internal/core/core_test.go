package core

import (
	"strings"
	"testing"
)

func TestChannels(t *testing.T) {
	if len(Channels()) != 4 {
		t.Fatalf("Channels() = %v", Channels())
	}
	for _, c := range Channels() {
		if !c.Valid() {
			t.Errorf("%q should be valid", c)
		}
		if c.Rate() <= 0 {
			t.Errorf("%q has rate %g", c, c.Rate())
		}
	}
	if SensorChannel("GYRO_X").Valid() {
		t.Error("GYRO_X should be invalid")
	}
	if SensorChannel("GYRO_X").Rate() != 0 {
		t.Error("invalid channel should have zero rate")
	}
	if _, err := ParseChannel("ACC_X"); err != nil {
		t.Errorf("ParseChannel(ACC_X): %v", err)
	}
	if _, err := ParseChannel("nope"); err == nil {
		t.Error("ParseChannel(nope) should fail")
	}
	if AccelX.Rate() != AccelRateHz || Mic.Rate() != AudioRateHz {
		t.Error("channel rates wired wrong")
	}
}

func TestDefaultCatalogIntegrity(t *testing.T) {
	cat := DefaultCatalog()
	if cat.Len() < 15 {
		t.Fatalf("catalog has only %d algorithms", cat.Len())
	}
	for _, kind := range cat.Kinds() {
		m, err := cat.Get(kind)
		if err != nil {
			t.Fatalf("Get(%s): %v", kind, err)
		}
		if m.Summary == "" {
			t.Errorf("%s: missing summary", kind)
		}
		if m.MinInputs < 1 {
			t.Errorf("%s: MinInputs = %d", kind, m.MinInputs)
		}
		if m.OutLen == nil || m.Cost == nil || m.Memory == nil || m.RateFactor == nil {
			t.Errorf("%s: incomplete models", kind)
		}
		for _, spec := range m.Params {
			if spec.Name == "" {
				t.Errorf("%s: unnamed parameter", kind)
			}
			if spec.Type == EnumParam && len(spec.Enum) == 0 {
				t.Errorf("%s/%s: enum without values", kind, spec.Name)
			}
			if !spec.Required && spec.Type == EnumParam && spec.Default.Str == "" {
				t.Errorf("%s/%s: optional enum without default", kind, spec.Name)
			}
		}
	}
	if !cat.Has(KindMovingAvg) || cat.Has("bogus") {
		t.Error("Has is broken")
	}
	if _, err := cat.Get("bogus"); err == nil {
		t.Error("Get(bogus) should fail")
	}
}

func TestNewCatalogRejectsDuplicates(t *testing.T) {
	m := &Meta{Kind: "x", MinInputs: 1, MaxInputs: 1}
	if _, err := NewCatalog(m, m); err == nil {
		t.Error("duplicate kinds should fail")
	}
	if _, err := NewCatalog(&Meta{}); err == nil {
		t.Error("empty kind should fail")
	}
}

// significantMotion builds the pipeline of paper Fig. 2a.
func significantMotion() *Pipeline {
	p := NewPipeline("significantMotion")
	for _, ch := range []SensorChannel{AccelX, AccelY, AccelZ} {
		p.AddBranch(NewBranch(ch).Add(MovingAverage(10)))
	}
	p.Add(VectorMagnitude())
	p.Add(MinThreshold(15))
	return p
}

func TestValidateSignificantMotion(t *testing.T) {
	plan, err := significantMotion().Validate(DefaultCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Nodes) != 5 {
		t.Fatalf("plan has %d nodes, want 5", len(plan.Nodes))
	}
	// IDs are 1-based and sequential, matching paper Fig. 2c.
	for i, n := range plan.Nodes {
		if n.ID != i+1 {
			t.Errorf("node %d has ID %d", i, n.ID)
		}
	}
	vm := plan.Nodes[3]
	if vm.Kind != KindVectorMagnitude {
		t.Fatalf("node 4 = %s, want vectorMagnitude", vm.Kind)
	}
	if len(vm.Inputs) != 3 {
		t.Fatalf("vectorMagnitude has %d inputs", len(vm.Inputs))
	}
	for i, in := range vm.Inputs {
		if in.FromChannel() || in.Node != i+1 {
			t.Errorf("vm input %d = %v, want node %d", i, in, i+1)
		}
	}
	th := plan.Nodes[4]
	if th.Kind != KindMinThreshold || th.Inputs[0].Node != 4 {
		t.Errorf("threshold node wrong: %+v", th)
	}
	if th.Params.Float("min") != 15 {
		t.Errorf("threshold min = %g", th.Params.Float("min"))
	}
	if th.Params.Int("sustain") != 1 {
		t.Errorf("sustain default = %d, want 1", th.Params.Int("sustain"))
	}
	if plan.OutputNode() != 5 {
		t.Errorf("OutputNode = %d", plan.OutputNode())
	}
	if got := plan.Channels; len(got) != 3 || got[0] != AccelX || got[2] != AccelZ {
		t.Errorf("Channels = %v", got)
	}
	// Rates: all scalar sample-synchronous stages run at the accel rate.
	for _, n := range plan.Nodes {
		if n.Rate != AccelRateHz || n.OutRate != AccelRateHz {
			t.Errorf("node %d rate = %g/%g, want %g", n.ID, n.Rate, n.OutRate, AccelRateHz)
		}
	}
}

func TestValidateWindowedPipelineRates(t *testing.T) {
	p := NewPipeline("steps-wake")
	p.AddBranch(NewBranch(AccelX).
		Add(MovingAverage(3)).
		Add(Window(25, 0, "rectangular")).
		Add(Stat("stddev")).
		Add(MinThreshold(0.8)))
	plan, err := p.Validate(DefaultCatalog())
	if err != nil {
		t.Fatal(err)
	}
	win := plan.Nodes[1]
	if win.OutKind != Vector || win.OutLen != 25 {
		t.Errorf("window out: %s len %d", win.OutKind, win.OutLen)
	}
	if win.Rate != 50 || win.OutRate != 2 {
		t.Errorf("window rates = %g -> %g, want 50 -> 2", win.Rate, win.OutRate)
	}
	stat := plan.Nodes[2]
	if stat.InLen != 25 || stat.Rate != 2 || stat.OutKind != Scalar {
		t.Errorf("stat node resolved wrong: %+v", stat)
	}
}

func TestValidateAudioSpectralChain(t *testing.T) {
	p := NewPipeline("siren-wake")
	p.AddBranch(NewBranch(Mic).
		Add(HighPass(750, 512)).
		Add(FFT()).
		Add(SpectralMag()).
		Add(Tonality(850, 1800, AudioRateHz)).
		Add(MinThresholdSustained(4, 3)))
	plan, err := p.Validate(DefaultCatalog())
	if err != nil {
		t.Fatal(err)
	}
	hp, fft, mag := plan.Nodes[0], plan.Nodes[1], plan.Nodes[2]
	if hp.OutLen != 512 {
		t.Errorf("highPass out len = %d", hp.OutLen)
	}
	if fft.OutLen != 1024 {
		t.Errorf("fft out len = %d (interleaved complex)", fft.OutLen)
	}
	if mag.OutLen != 512 {
		t.Errorf("spectralMag out len = %d", mag.OutLen)
	}
	wantRate := AudioRateHz / 512
	if hp.OutRate != wantRate || fft.Rate != wantRate {
		t.Errorf("block rates = %g/%g, want %g", hp.OutRate, fft.Rate, wantRate)
	}
	f, i := plan.TotalOpsPerSecond()
	if f <= 0 || i <= 0 {
		t.Errorf("ops per second = %g/%g", f, i)
	}
	if plan.TotalMemory() <= 0 {
		t.Error("TotalMemory should be positive")
	}
}

func TestValidateDualBranchAnd(t *testing.T) {
	p := NewPipeline("music-wake")
	p.AddBranch(
		NewBranch(Mic).Add(Window(512, 0, "")).Add(Stat("variance")).Add(MinThreshold(0.01)),
		NewBranch(Mic).Add(Window(512, 0, "")).Add(ZCRVariance(8)).Add(BandThreshold(0.0001, 0.01)),
	)
	p.Add(And())
	plan, err := p.Validate(DefaultCatalog())
	if err != nil {
		t.Fatal(err)
	}
	and := plan.Nodes[len(plan.Nodes)-1]
	if and.Kind != KindAnd || len(and.Inputs) != 2 {
		t.Fatalf("and node: %+v", and)
	}
	if len(plan.Channels) != 1 || plan.Channels[0] != Mic {
		t.Errorf("Channels = %v (MIC used twice should appear once)", plan.Channels)
	}
}

func TestValidateErrors(t *testing.T) {
	cat := DefaultCatalog()
	cases := []struct {
		name string
		p    *Pipeline
		want string
	}{
		{
			"no branches",
			NewPipeline("empty"),
			"no branches",
		},
		{
			"invalid channel",
			NewPipeline("x").AddBranch(NewBranch("BOGUS").Add(MovingAverage(2))),
			"invalid sensor channel",
		},
		{
			"unknown algorithm",
			NewPipeline("x").AddBranch(NewBranch(AccelX).Add(Stage{Kind: "mystery"})),
			"not in platform catalog",
		},
		{
			"aggregator inside branch",
			NewPipeline("x").AddBranch(NewBranch(AccelX).Add(Ratio())),
			"cannot appear inside a branch",
		},
		{
			"unmerged branches",
			NewPipeline("x").AddBranch(
				NewBranch(AccelX).Add(MovingAverage(2)),
				NewBranch(AccelY).Add(MovingAverage(2)),
			),
			"unmerged",
		},
		{
			"kind mismatch scalar into vector consumer",
			NewPipeline("x").AddBranch(NewBranch(AccelX).Add(Stat("mean"))),
			"requires vector",
		},
		{
			"vector output to OUT",
			NewPipeline("x").AddBranch(NewBranch(AccelX).Add(Window(8, 0, ""))),
			"must be scalar",
		},
		{
			"missing required param",
			NewPipeline("x").AddBranch(NewBranch(AccelX).Add(Stage{Kind: KindMovingAvg})),
			"missing required parameter",
		},
		{
			"unknown param",
			NewPipeline("x").AddBranch(NewBranch(AccelX).Add(
				Stage{Kind: KindMovingAvg, Params: Params{"size": Number(4), "bogus": Number(1)}})),
			"unknown parameter",
		},
		{
			"param out of bounds",
			NewPipeline("x").AddBranch(NewBranch(AccelX).Add(MovingAverage(0))),
			"outside",
		},
		{
			"non-integer int param",
			NewPipeline("x").AddBranch(NewBranch(AccelX).Add(
				Stage{Kind: KindMovingAvg, Params: Params{"size": Number(2.5)}})),
			"must be an integer",
		},
		{
			"bad enum",
			NewPipeline("x").AddBranch(NewBranch(AccelX).Add(Window(8, 0, "kaiser"))),
			"not in",
		},
		{
			"window step exceeds size",
			NewPipeline("x").AddBranch(NewBranch(AccelX).Add(Window(8, 9, ""))),
			"step",
		},
		{
			"band threshold inverted",
			NewPipeline("x").AddBranch(NewBranch(AccelX).Add(BandThreshold(5, 4))),
			"min 5 > max 4",
		},
		{
			"non power of two filter block",
			NewPipeline("x").AddBranch(NewBranch(Mic).Add(LowPass(100, 100)).Add(Stat("mean"))),
			"power of two",
		},
		{
			"ratio arity",
			NewPipeline("x").AddBranch(
				NewBranch(AccelX).Add(MovingAverage(2)),
				NewBranch(AccelY).Add(MovingAverage(2)),
				NewBranch(AccelZ).Add(MovingAverage(2)),
			).Add(Ratio()),
			"at most 2",
		},
		{
			"and arity",
			NewPipeline("x").AddBranch(NewBranch(AccelX).Add(MovingAverage(2))).Add(And()),
			"at least 2",
		},
		{
			"merge different rates",
			NewPipeline("x").AddBranch(
				NewBranch(AccelX).Add(Window(10, 0, "")).Add(Stat("mean")),
				NewBranch(AccelY).Add(Window(25, 0, "")).Add(Stat("mean")),
			).Add(And()),
			"different emission rates",
		},
		{
			"tonality band inverted",
			NewPipeline("x").AddBranch(NewBranch(Mic).
				Add(Window(64, 0, "")).Add(FFT()).Add(SpectralMag()).
				Add(Tonality(1800, 850, AudioRateHz))),
			"bandLow",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.p.Validate(cat)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestStageString(t *testing.T) {
	s := MovingAverage(10)
	if got := s.String(); got != "movingAvg(size=10)" {
		t.Errorf("String = %q", got)
	}
	if got := VectorMagnitude().String(); got != "vectorMagnitude" {
		t.Errorf("String = %q", got)
	}
	w := Window(25, 5, "hamming")
	if got := w.String(); got != "window(shape=hamming, size=25, step=5)" {
		t.Errorf("String = %q", got)
	}
}

func TestParamValue(t *testing.T) {
	if Number(2.5).String() != "2.5" || Str("mean").String() != "mean" {
		t.Error("ParamValue.String wrong")
	}
	if !Number(1).Equal(Number(1)) || Number(1).Equal(Number(2)) {
		t.Error("numeric Equal wrong")
	}
	if Number(1).Equal(Str("1")) || !Str("a").Equal(Str("a")) {
		t.Error("mixed Equal wrong")
	}
}

func TestParamsClone(t *testing.T) {
	p := Params{"a": Number(1)}
	c := p.Clone()
	c["a"] = Number(2)
	if p.Float("a") != 1 {
		t.Error("Clone should be deep")
	}
	if Params(nil).Clone() != nil {
		t.Error("nil Clone should be nil")
	}
}

func TestPlanNodeLookup(t *testing.T) {
	plan, err := significantMotion().Validate(DefaultCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Node(1) == nil || plan.Node(1).Kind != KindMovingAvg {
		t.Error("Node(1) wrong")
	}
	if plan.Node(0) != nil || plan.Node(99) != nil {
		t.Error("out-of-range Node should be nil")
	}
}

func TestInputRefString(t *testing.T) {
	if (InputRef{Channel: AccelX}).String() != "ACC_X" {
		t.Error("channel ref string wrong")
	}
	if (InputRef{Node: 7}).String() != "7" {
		t.Error("node ref string wrong")
	}
}

func TestValueKindAndParamTypeStrings(t *testing.T) {
	if Scalar.String() != "scalar" || Vector.String() != "vector" {
		t.Error("ValueKind strings wrong")
	}
	if ValueKind(9).String() == "" || ParamType(9).String() == "" {
		t.Error("unknown values should stringify diagnostically")
	}
	if IntParam.String() != "int" || FloatParam.String() != "float" || EnumParam.String() != "enum" {
		t.Error("ParamType strings wrong")
	}
}

func TestCostEstimateArithmetic(t *testing.T) {
	a := CostEstimate{FloatOps: 1, IntOps: 2}
	b := CostEstimate{FloatOps: 3, IntOps: 4}
	if s := a.Add(b); s.FloatOps != 4 || s.IntOps != 6 {
		t.Errorf("Add = %+v", s)
	}
	if s := a.Scale(2); s.FloatOps != 2 || s.IntOps != 4 {
		t.Errorf("Scale = %+v", s)
	}
}

func TestMetaIsAggregator(t *testing.T) {
	cat := DefaultCatalog()
	vm, _ := cat.Get(KindVectorMagnitude)
	ma, _ := cat.Get(KindMovingAvg)
	ratio, _ := cat.Get(KindRatio)
	if !vm.IsAggregator() || !ratio.IsAggregator() || ma.IsAggregator() {
		t.Error("IsAggregator misclassifies")
	}
}
