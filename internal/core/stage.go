package core

// This file provides the stage constructors that make up the developer API,
// mirroring the algorithm objects of paper Fig. 2a (new MovingAverage(10),
// new VectorMagnitude(), new MinThreshold(15), ...). Each constructor
// returns a Stage stub; validation against the catalog happens when the
// pipeline is pushed to the sensor manager.

// Window partitions a sample stream into windows of size samples emitted
// every step samples (step 0 means size, i.e. non-overlapping) with the
// given taper shape ("rectangular" or "hamming").
func Window(size, step int, shape string) Stage {
	p := Params{"size": Number(float64(size)), "step": Number(float64(step))}
	if shape != "" {
		p["shape"] = Str(shape)
	}
	return Stage{Kind: KindWindow, Params: p}
}

// FFT transforms a window into an interleaved complex spectrum.
func FFT() Stage { return Stage{Kind: KindFFT} }

// IFFT inverts an interleaved complex spectrum back into a real block.
func IFFT() Stage { return Stage{Kind: KindIFFT} }

// SpectralMag reduces a complex spectrum to per-bin magnitudes.
func SpectralMag() Stage { return Stage{Kind: KindSpectralMag} }

// MovingAverage smooths a sample stream over the last size samples.
func MovingAverage(size int) Stage {
	return Stage{Kind: KindMovingAvg, Params: Params{"size": Number(float64(size))}}
}

// ExpMovingAverage smooths a sample stream with factor alpha.
func ExpMovingAverage(alpha float64) Stage {
	return Stage{Kind: KindEMA, Params: Params{"alpha": Number(alpha)}}
}

// LowPass applies an FFT-based low-pass filter at cutoff Hz over blocks of
// the given power-of-two size.
func LowPass(cutoff float64, block int) Stage {
	return Stage{Kind: KindLowPass, Params: Params{"cutoff": Number(cutoff), "block": Number(float64(block))}}
}

// HighPass applies an FFT-based high-pass filter at cutoff Hz over blocks
// of the given power-of-two size.
func HighPass(cutoff float64, block int) Stage {
	return Stage{Kind: KindHighPass, Params: Params{"cutoff": Number(cutoff), "block": Number(float64(block))}}
}

// IIRLowPass applies a streaming biquad low-pass at cutoff Hz; rate is the
// stream's sampling rate.
func IIRLowPass(cutoff, rate float64) Stage {
	return Stage{Kind: KindIIRLowPass, Params: Params{"cutoff": Number(cutoff), "rate": Number(rate)}}
}

// IIRHighPass applies a streaming biquad high-pass at cutoff Hz.
func IIRHighPass(cutoff, rate float64) Stage {
	return Stage{Kind: KindIIRHighPass, Params: Params{"cutoff": Number(cutoff), "rate": Number(rate)}}
}

// GoertzelBank scans [bandLow, bandHigh] Hz with n Goertzel detectors over
// blocks of the given size, emitting the best normalized tone score per
// block.
func GoertzelBank(bandLow, bandHigh, rate float64, block, detectors int) Stage {
	return Stage{Kind: KindGoertzelBank, Params: Params{
		"bandLow":   Number(bandLow),
		"bandHigh":  Number(bandHigh),
		"rate":      Number(rate),
		"block":     Number(float64(block)),
		"detectors": Number(float64(detectors)),
	}}
}

// VectorMagnitude aggregates N scalar branches into the Euclidean magnitude
// of their joint vector.
func VectorMagnitude() Stage { return Stage{Kind: KindVectorMagnitude} }

// ZeroCrossingRate computes the zero-crossing rate of each window.
func ZeroCrossingRate() Stage { return Stage{Kind: KindZCR} }

// ZCRVariance partitions each window into subwindows and emits the variance
// of their zero-crossing rates (the speech/music discrimination feature of
// paper §3.7.2).
func ZCRVariance(subwindows int) Stage {
	return Stage{Kind: KindZCRVariance, Params: Params{"subwindows": Number(float64(subwindows))}}
}

// Stat computes a windowed statistic; op is one of StatOps.
func Stat(op string) Stage {
	return Stage{Kind: KindStat, Params: Params{"op": Str(op)}}
}

// DominantFreqMag emits the magnitude of the dominant non-DC spectral bin.
func DominantFreqMag() Stage { return Stage{Kind: KindDominantFreq} }

// Tonality emits the peak-to-mean spectral ratio when the dominant bin
// falls within [bandLow, bandHigh] Hz (0 otherwise); rate is the sampling
// rate of the windowed signal.
func Tonality(bandLow, bandHigh, rate float64) Stage {
	return Stage{Kind: KindTonality, Params: Params{
		"bandLow":  Number(bandLow),
		"bandHigh": Number(bandHigh),
		"rate":     Number(rate),
	}}
}

// Delta emits the difference between consecutive values.
func Delta() Stage { return Stage{Kind: KindDelta} }

// Abs emits the absolute value of its input.
func Abs() Stage { return Stage{Kind: KindAbs} }

// Ratio aggregates exactly two scalar branches into first/second.
func Ratio() Stage { return Stage{Kind: KindRatio} }

// And aggregates N scalar branches; it emits the minimum input value when
// every branch produced a value for the same emission index.
func And() Stage { return Stage{Kind: KindAnd} }

// Decimate keeps every factor-th sample of a scalar stream and drops the
// rest, reducing the effective sampling rate by the factor. Factor 1 is the
// identity. The adaptive policy engine (internal/adapt) inserts it at
// branch heads to trade detection latency for hub energy.
func Decimate(factor int) Stage {
	return Stage{Kind: KindDecimate, Params: Params{"factor": Number(float64(factor))}}
}

// MinThreshold admits values >= min.
func MinThreshold(min float64) Stage {
	return Stage{Kind: KindMinThreshold, Params: Params{"min": Number(min)}}
}

// MinThresholdSustained admits values >= min only after the condition has
// held for sustain consecutive emissions.
func MinThresholdSustained(min float64, sustain int) Stage {
	return Stage{Kind: KindMinThreshold, Params: Params{
		"min": Number(min), "sustain": Number(float64(sustain)),
	}}
}

// MaxThreshold admits values <= max.
func MaxThreshold(max float64) Stage {
	return Stage{Kind: KindMaxThreshold, Params: Params{"max": Number(max)}}
}

// BandThreshold admits values in [min, max].
func BandThreshold(min, max float64) Stage {
	return Stage{Kind: KindBandThreshold, Params: Params{"min": Number(min), "max": Number(max)}}
}

// BandThresholdSustained admits values in [min, max] only after the
// condition has held for sustain consecutive emissions.
func BandThresholdSustained(min, max float64, sustain int) Stage {
	return Stage{Kind: KindBandThreshold, Params: Params{
		"min": Number(min), "max": Number(max), "sustain": Number(float64(sustain)),
	}}
}
