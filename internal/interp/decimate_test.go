package interp

import (
	"testing"

	"sidewinder/internal/core"
)

// decimatePipeline routes a channel through decimate(k) into a window
// chain, the shape adapt.Reparameterize produces.
func decimatePipeline(k int) *core.Pipeline {
	p := core.NewPipeline("decimate-chain")
	p.AddBranch(core.NewBranch(core.AccelX).
		Add(core.Decimate(k)).
		Add(core.Window(25, 12, "")).
		Add(core.Stat("stddev")).
		Add(core.MinThreshold(0.7)))
	return p
}

// TestDecimateKeepsEveryKth pins the stage semantics: sample indices
// 0, k, 2k, ... pass through, everything else is dropped, and the
// decimated stream gets its own dense sequence numbers.
func TestDecimateKeepsEveryKth(t *testing.T) {
	p := core.NewPipeline("decimate-only")
	p.AddBranch(core.NewBranch(core.AccelX).
		Add(core.Decimate(3)).
		Add(core.MinThreshold(-1e9))) // passes everything: observe the stream
	plan := mustPlan(t, p)
	m, err := New(plan)
	if err != nil {
		t.Fatal(err)
	}
	var got []float64
	var seqs []int64
	for i := 0; i < 10; i++ {
		for _, w := range m.PushSample(core.AccelX, float64(i)) {
			got = append(got, w.Value)
			seqs = append(seqs, w.Seq)
		}
	}
	want := []float64{0, 3, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("decimate(3) emitted %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("decimate(3) emitted %v, want %v", got, want)
		}
		if seqs[i] != int64(i) {
			t.Fatalf("decimated seq domain %v not dense from 0", seqs)
		}
	}
}

// TestDecimateBlockMatchesPerSample checks the decimate stage's
// consumeBlock against the per-sample reference at several chunkings and
// both precisions — the equivalence that keeps the simulator's block
// fast path byte-identical when adaptation inserts decimators.
func TestDecimateBlockMatchesPerSample(t *testing.T) {
	sig := blockSignal(4096, 11)
	for _, k := range []int{1, 2, 4, 7} {
		plan := mustPlan(t, decimatePipeline(k))
		for _, prec := range []Precision{Float64, Q15} {
			ref, err := NewPrecision(plan, prec)
			if err != nil {
				t.Fatal(err)
			}
			want := machineWakesPerSample(ref, core.AccelX, sig)
			for _, chunk := range []int{1, 3, 64, 1024, len(sig)} {
				m, err := NewPrecision(plan, prec)
				if err != nil {
					t.Fatal(err)
				}
				got := machineWakesBlocked(m, core.AccelX, sig, chunk)
				compareWakes(t, prec.String(), want, got)
				if ref.Work() != m.Work() {
					t.Fatalf("k=%d chunk %d: work meter diverged", k, chunk)
				}
			}
		}
	}
}

// TestDecimateReset checks the phase and sequence state clears.
func TestDecimateReset(t *testing.T) {
	plan := mustPlan(t, decimatePipeline(4))
	m, err := New(plan)
	if err != nil {
		t.Fatal(err)
	}
	sig := blockSignal(512, 3)
	first := machineWakesPerSample(m, core.AccelX, sig)
	m.Reset()
	second := machineWakesPerSample(m, core.AccelX, sig)
	compareWakes(t, "reset", first, second)
}
