package interp

import (
	"math"
	"testing"

	"sidewinder/internal/core"
	"sidewinder/internal/dsp"
	"sidewinder/internal/ir"
)

func mustPlan(t *testing.T, p *core.Pipeline) *core.Plan {
	t.Helper()
	plan, err := p.Validate(core.DefaultCatalog())
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func mustMachine(t *testing.T, p *core.Pipeline) *Machine {
	t.Helper()
	m, err := New(mustPlan(t, p))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSignificantMotionFiresOnMotion(t *testing.T) {
	p := core.NewPipeline("sig-motion")
	for _, ch := range []core.SensorChannel{core.AccelX, core.AccelY, core.AccelZ} {
		p.AddBranch(core.NewBranch(ch).Add(core.MovingAverage(10)))
	}
	p.Add(core.VectorMagnitude())
	p.Add(core.MinThreshold(15))
	m := mustMachine(t, p)

	// Quiescent: gravity only (z = 9.81). Magnitude ~9.81 < 15.
	wakes := 0
	for i := 0; i < 100; i++ {
		wakes += len(m.PushSample(core.AccelX, 0))
		wakes += len(m.PushSample(core.AccelY, 0))
		wakes += len(m.PushSample(core.AccelZ, 9.81))
	}
	if wakes != 0 {
		t.Fatalf("idle produced %d wakes", wakes)
	}

	// Violent motion on all axes: magnitude ~ sqrt(3*12^2) = 20.8 > 15.
	for i := 0; i < 100; i++ {
		wakes += len(m.PushSample(core.AccelX, 12))
		wakes += len(m.PushSample(core.AccelY, 12))
		wakes += len(m.PushSample(core.AccelZ, 12))
	}
	if wakes == 0 {
		t.Fatal("motion produced no wakes")
	}
}

func TestMachineFromParsedIR(t *testing.T) {
	text := `# pipeline: demo
ACC_X -> movingAvg(id=1, params={4});
1 -> minThreshold(id=2, params={5, 1});
2 -> OUT;
`
	plan, err := ir.ParseAndBind(text, core.DefaultCatalog())
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Three samples: warming up, no output regardless of value.
	for i := 0; i < 3; i++ {
		if w := m.PushSample(core.AccelX, 100); len(w) != 0 {
			t.Fatal("wake during moving-average warmup")
		}
	}
	w := m.PushSample(core.AccelX, 100)
	if len(w) != 1 {
		t.Fatalf("expected wake, got %v", w)
	}
	if w[0].NodeID != 2 || w[0].Value != 100 {
		t.Errorf("wake = %+v", w[0])
	}
}

func TestWindowStatPipeline(t *testing.T) {
	p := core.NewPipeline("winstat")
	p.AddBranch(core.NewBranch(core.AccelX).
		Add(core.Window(4, 0, "")).
		Add(core.Stat("mean")).
		Add(core.MinThreshold(2.5)))
	m := mustMachine(t, p)

	feed := func(vals ...float64) int {
		n := 0
		for _, v := range vals {
			n += len(m.PushSample(core.AccelX, v))
		}
		return n
	}
	if n := feed(1, 1, 1, 1); n != 0 { // mean 1 < 2.5
		t.Fatalf("low window fired %d times", n)
	}
	if n := feed(3, 3, 3, 3); n != 1 { // mean 3 >= 2.5
		t.Fatalf("high window fired %d times, want 1", n)
	}
	if n := feed(3, 3); n != 0 { // partial window
		t.Fatalf("partial window fired %d times", n)
	}
}

func TestSustainedThreshold(t *testing.T) {
	p := core.NewPipeline("sustain")
	p.AddBranch(core.NewBranch(core.AccelX).
		Add(core.Window(2, 0, "")).
		Add(core.Stat("mean")).
		Add(core.MinThresholdSustained(5, 3)))
	m := mustMachine(t, p)
	fire := 0
	feedWindow := func(v float64) {
		fire += len(m.PushSample(core.AccelX, v))
		fire += len(m.PushSample(core.AccelX, v))
	}
	feedWindow(10) // run 1
	feedWindow(10) // run 2
	if fire != 0 {
		t.Fatalf("fired before sustain count reached: %d", fire)
	}
	feedWindow(10) // run 3 -> fires
	if fire != 1 {
		t.Fatalf("fire count = %d, want 1", fire)
	}
	feedWindow(10) // run 4 -> still above, fires again
	if fire != 2 {
		t.Fatalf("fire count = %d, want 2", fire)
	}
	feedWindow(0)  // breaks the run
	feedWindow(10) // run 1 again, no fire
	if fire != 2 {
		t.Fatalf("fire count after reset = %d, want 2", fire)
	}
}

func TestAndJoinsOnSameWindow(t *testing.T) {
	// Two branches over the same channel with identical windowing: "and"
	// must fire only when both thresholds admit the same window.
	p := core.NewPipeline("and")
	p.AddBranch(
		core.NewBranch(core.Mic).Add(core.Window(4, 0, "")).Add(core.Stat("mean")).Add(core.MinThreshold(1)),
		core.NewBranch(core.Mic).Add(core.Window(4, 0, "")).Add(core.Stat("range")).Add(core.MinThreshold(2)),
	)
	p.Add(core.And())
	m := mustMachine(t, p)
	feedWindow := func(vals ...float64) int {
		n := 0
		for _, v := range vals {
			n += len(m.PushSample(core.Mic, v))
		}
		return n
	}
	// Window 1: mean 2 (pass), range 0 (fail) -> no fire.
	if n := feedWindow(2, 2, 2, 2); n != 0 {
		t.Fatalf("window 1 fired %d", n)
	}
	// Window 2: mean 0.25 (fail), range 4 (pass) -> no fire.
	if n := feedWindow(-2, 2, 1, 0); n != 0 {
		t.Fatalf("window 2 fired %d", n)
	}
	// Window 3: mean 2.5 (pass), range 3 (pass) -> fire.
	if n := feedWindow(1, 4, 2, 3); n != 1 {
		t.Fatalf("window 3 fired %d, want 1", n)
	}
}

func TestRatioGuardsDivisionByZero(t *testing.T) {
	p := core.NewPipeline("ratio")
	p.AddBranch(
		core.NewBranch(core.Mic).Add(core.Window(2, 0, "")).Add(core.Stat("max")),
		core.NewBranch(core.Mic).Add(core.Window(2, 0, "")).Add(core.Stat("min")),
	)
	p.Add(core.Ratio())
	p.Add(core.MinThreshold(-1e18))
	m := mustMachine(t, p)
	n := 0
	n += len(m.PushSample(core.Mic, 0))
	n += len(m.PushSample(core.Mic, 0)) // max 0 / min 0 -> suppressed
	if n != 0 {
		t.Fatalf("zero denominator produced output")
	}
	n += len(m.PushSample(core.Mic, 6))
	n += len(m.PushSample(core.Mic, 2)) // 6/2 = 3
	if n != 1 {
		t.Fatalf("ratio fired %d, want 1", n)
	}
}

func TestFFTChainDetectsTone(t *testing.T) {
	p := core.NewPipeline("tone")
	p.AddBranch(core.NewBranch(core.Mic).
		Add(core.Window(256, 0, "")).
		Add(core.FFT()).
		Add(core.SpectralMag()).
		Add(core.Tonality(850, 1800, core.AudioRateHz)).
		Add(core.MinThreshold(4)))
	m := mustMachine(t, p)

	// Broadband-ish square-ish noise outside the band: no fire.
	fires := 0
	for i := 0; i < 256; i++ {
		v := math.Sin(2*math.Pi*100*float64(i)/core.AudioRateHz) * 0.5
		fires += len(m.PushSample(core.Mic, v))
	}
	if fires != 0 {
		t.Fatalf("out-of-band tone fired %d", fires)
	}
	// Pure 1 kHz tone inside [850, 1800]: fires.
	for i := 0; i < 256; i++ {
		v := math.Sin(2 * math.Pi * 1000 * float64(i) / core.AudioRateHz)
		fires += len(m.PushSample(core.Mic, v))
	}
	if fires != 1 {
		t.Fatalf("in-band tone fired %d, want 1", fires)
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	p := core.NewPipeline("roundtrip")
	p.AddBranch(core.NewBranch(core.Mic).
		Add(core.Window(8, 0, "")).
		Add(core.FFT()).
		Add(core.IFFT()).
		Add(core.Stat("mean")).
		Add(core.MinThreshold(-1e18)))
	m := mustMachine(t, p)
	var got float64
	fired := false
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	for _, v := range vals {
		for _, w := range m.PushSample(core.Mic, v) {
			got, fired = w.Value, true
		}
	}
	if !fired {
		t.Fatal("round-trip pipeline did not emit")
	}
	if math.Abs(got-4.5) > 1e-9 {
		t.Errorf("mean after FFT+IFFT = %g, want 4.5", got)
	}
}

func TestHighPassBlockPipeline(t *testing.T) {
	p := core.NewPipeline("hp")
	p.AddBranch(core.NewBranch(core.Mic).
		Add(core.HighPass(750, 256)).
		Add(core.Stat("rms")).
		Add(core.MinThreshold(0.1)))
	m := mustMachine(t, p)
	fires := 0
	// 100 Hz tone: removed by the 750 Hz high-pass, RMS ~ 0.
	for i := 0; i < 256; i++ {
		fires += len(m.PushSample(core.Mic, math.Sin(2*math.Pi*100*float64(i)/core.AudioRateHz)))
	}
	if fires != 0 {
		t.Fatalf("low tone passed the high-pass: %d fires", fires)
	}
	// 1500 Hz tone: passes.
	for i := 0; i < 256; i++ {
		fires += len(m.PushSample(core.Mic, math.Sin(2*math.Pi*1500*float64(i)/core.AudioRateHz)))
	}
	if fires != 1 {
		t.Fatalf("high tone fires = %d, want 1", fires)
	}
}

func TestDeltaAndAbs(t *testing.T) {
	p := core.NewPipeline("delta")
	p.AddBranch(core.NewBranch(core.AccelZ).
		Add(core.Delta()).
		Add(core.Abs()).
		Add(core.MinThreshold(2)))
	m := mustMachine(t, p)
	n := 0
	n += len(m.PushSample(core.AccelZ, 9.8)) // primes delta, no output
	n += len(m.PushSample(core.AccelZ, 9.9)) // |0.1| < 2
	if n != 0 {
		t.Fatalf("small delta fired %d", n)
	}
	n += len(m.PushSample(core.AccelZ, 6.5)) // |−3.4| >= 2
	if n != 1 {
		t.Fatalf("large delta fired %d, want 1", n)
	}
}

func TestWorkMeterAccumulates(t *testing.T) {
	p := core.NewPipeline("work")
	p.AddBranch(core.NewBranch(core.AccelX).Add(core.MovingAverage(4)).Add(core.MinThreshold(1e18)))
	m := mustMachine(t, p)
	if w := m.Work(); w.FloatOps != 0 || w.IntOps != 0 {
		t.Fatal("fresh machine has non-zero work")
	}
	for i := 0; i < 10; i++ {
		m.PushSample(core.AccelX, 1)
	}
	w := m.Work()
	if w.FloatOps <= 0 {
		t.Fatalf("work = %+v", w)
	}
	m.ResetWork()
	if w := m.Work(); w.FloatOps != 0 {
		t.Fatal("ResetWork did not clear the meter")
	}
}

func TestMachineReset(t *testing.T) {
	p := core.NewPipeline("reset")
	p.AddBranch(core.NewBranch(core.AccelX).
		Add(core.Window(4, 0, "")).
		Add(core.Stat("mean")).
		Add(core.MinThreshold(0)))
	m := mustMachine(t, p)
	m.PushSample(core.AccelX, 5)
	m.PushSample(core.AccelX, 5)
	m.Reset()
	// After reset the window must refill from scratch.
	n := 0
	n += len(m.PushSample(core.AccelX, 5))
	n += len(m.PushSample(core.AccelX, 5))
	if n != 0 {
		t.Fatal("window survived Reset")
	}
	n += len(m.PushSample(core.AccelX, 5))
	n += len(m.PushSample(core.AccelX, 5))
	if n != 1 {
		t.Fatalf("post-reset window fired %d, want 1", n)
	}
}

func TestZCRVariancePipelineDistinguishesSignals(t *testing.T) {
	p := core.NewPipeline("zcrvar")
	p.AddBranch(core.NewBranch(core.Mic).
		Add(core.Window(64, 0, "")).
		Add(core.ZCRVariance(4)).
		Add(core.MinThreshold(0.001)))
	m := mustMachine(t, p)
	fires := 0
	// Constant-frequency signal: sub-window ZCRs identical, variance ~ 0.
	for i := 0; i < 64; i++ {
		fires += len(m.PushSample(core.Mic, math.Sin(float64(i))))
	}
	if fires != 0 {
		t.Fatalf("uniform signal fired %d", fires)
	}
	// Varying-rate signal: first half slow, second half fast.
	for i := 0; i < 64; i++ {
		f := 50.0
		if i >= 32 {
			f = 800
		}
		fires += len(m.PushSample(core.Mic, math.Sin(2*math.Pi*f*float64(i)/core.AudioRateHz)))
	}
	if fires != 1 {
		t.Fatalf("modulated signal fired %d, want 1", fires)
	}
}

func TestDominantFreqMagNode(t *testing.T) {
	p := core.NewPipeline("dom")
	p.AddBranch(core.NewBranch(core.Mic).
		Add(core.Window(128, 0, "")).
		Add(core.FFT()).
		Add(core.SpectralMag()).
		Add(core.DominantFreqMag()).
		Add(core.MinThreshold(10)))
	m := mustMachine(t, p)
	fires := 0
	for i := 0; i < 128; i++ {
		fires += len(m.PushSample(core.Mic, math.Sin(2*math.Pi*500*float64(i)/core.AudioRateHz)))
	}
	// A unit sine of 128 samples has dominant magnitude ~ 64.
	if fires != 1 {
		t.Fatalf("dominant magnitude fired %d, want 1", fires)
	}
}

func TestEMAPipeline(t *testing.T) {
	p := core.NewPipeline("ema")
	p.AddBranch(core.NewBranch(core.AccelX).
		Add(core.ExpMovingAverage(0.5)).
		Add(core.MinThreshold(7)))
	m := mustMachine(t, p)
	n := len(m.PushSample(core.AccelX, 8)) // EMA = 8 >= 7
	if n != 1 {
		t.Fatalf("EMA fire = %d, want 1", n)
	}
	n = len(m.PushSample(core.AccelX, 0)) // EMA = 4 < 7
	if n != 0 {
		t.Fatalf("EMA fire = %d, want 0", n)
	}
}

func TestJoinPruneBoundsMemory(t *testing.T) {
	// Branch 1 admits every window; branch 2 admits none. Pending joins
	// must not grow without bound.
	p := core.NewPipeline("prune")
	p.AddBranch(
		core.NewBranch(core.Mic).Add(core.Window(2, 0, "")).Add(core.Stat("mean")).Add(core.MinThreshold(-1e18)),
		core.NewBranch(core.Mic).Add(core.Window(2, 0, "")).Add(core.Stat("mean")).Add(core.MinThreshold(1e18)),
	)
	p.Add(core.And())
	plan := mustPlan(t, p)
	m, err := New(plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		m.PushSample(core.Mic, float64(i))
	}
	// Find the join instance and check its pending map.
	var join *joinInst
	for _, inst := range m.nodes {
		if j, ok := inst.(*joinInst); ok {
			join = j
		}
	}
	if join == nil {
		t.Fatal("no join instance found")
	}
	// Port 1 never emits, so nothing is provably stale; but the pending
	// map only holds entries from port 0. With one port never primed we
	// cannot prune -- this documents the worst case: entries accumulate
	// only for the emitting port. Tighten: once both ports have emitted,
	// stale entries vanish. Here we assert the pending count equals the
	// number of port-0 emissions (5000 windows), the documented bound.
	if len(join.pending) != 5000 {
		t.Fatalf("pending = %d, want 5000 (one per emitted window)", len(join.pending))
	}
}

func TestJoinPruneWithBothPortsEmitting(t *testing.T) {
	j := newJoinInst(2, func(vals []float64) (float64, bool) { return vals[0] + vals[1], true })
	// Port 0 emits seqs 0..9; port 1 only seq 9.
	for s := int64(0); s < 10; s++ {
		if _, ok := j.Push(0, Value{Seq: s, Scalar: 1}); ok {
			t.Fatal("join fired with one port")
		}
	}
	out, ok := j.Push(1, Value{Seq: 9, Scalar: 2})
	if !ok || out.Scalar != 3 || out.Seq != 9 {
		t.Fatalf("join = %+v, %v", out, ok)
	}
	// Seqs 0..8 are now provably stale.
	if len(j.pending) != 0 {
		t.Fatalf("pending after prune = %d, want 0", len(j.pending))
	}
}

func TestNewRejectsUnknownKind(t *testing.T) {
	plan := mustPlan(t, core.NewPipeline("x").
		AddBranch(core.NewBranch(core.AccelX).Add(core.MovingAverage(2)).Add(core.MinThreshold(0))))
	plan.Nodes[0].Kind = "martian"
	if _, err := New(plan); err == nil {
		t.Fatal("unknown kind should fail")
	}
}

func TestStatFuncCoverage(t *testing.T) {
	for _, op := range core.StatOps {
		fn, err := statFunc(op)
		if err != nil {
			t.Errorf("statFunc(%s): %v", op, err)
			continue
		}
		if got := fn([]float64{1, 2, 3}); math.IsNaN(got) {
			t.Errorf("statFunc(%s) returned NaN", op)
		}
	}
	if _, err := statFunc("mode"); err == nil {
		t.Error("unknown op should fail")
	}
}

func TestZCRVarianceEdgeCases(t *testing.T) {
	if _, ok := zcrVariance(make([]float64, 4), []float64{1, 2}, 4); ok {
		t.Error("window shorter than k should not produce")
	}
	if _, ok := zcrVariance(nil, []float64{1, 2, 3, 4}, 1); ok {
		t.Error("k < 2 should not produce")
	}
	v, ok := zcrVariance(make([]float64, 2), []float64{1, -1, 1, -1, 1, 1, 1, 1}, 2)
	if !ok || v <= 0 {
		t.Errorf("zcrVariance = (%g, %v), want positive", v, ok)
	}
}

func TestTonalityHelpers(t *testing.T) {
	if tonality([]float64{1, 2}, 0, 100, 100) != 0 {
		t.Error("short spectrum should yield 0")
	}
	if tonality(make([]float64, 16), 0, 2000, 4000) != 0 {
		t.Error("all-zero spectrum should yield 0")
	}
	// Length-4 spectrum: bins 1..2 are the non-mirrored half; the DC bin
	// (5) and the mirrored bin 3 are ignored.
	if dominantMag([]float64{5, 1, 2, 3}) != 2 {
		t.Error("dominantMag should ignore DC bin and scan only the first half")
	}
	// Verify dsp-level consistency: a pure tone's tonality via pipeline
	// helpers matches dsp.PeakToMeanRatio direction.
	n := 128
	sig := make([]float64, n)
	for i := range sig {
		sig[i] = math.Sin(2 * math.Pi * 1000 * float64(i) / 4000)
	}
	spec, _ := dsp.FFTReal(sig)
	mags := dsp.Magnitudes(spec)
	if tonality(mags, 850, 1800, 4000) < 4 {
		t.Error("pure in-band tone should have high tonality")
	}
	if tonality(mags, 100, 200, 4000) != 0 {
		t.Error("out-of-band dominant should gate to 0")
	}
}
