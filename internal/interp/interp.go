// Package interp implements the sensor-hub runtime (paper §3.5): an
// interpreter that executes a bound wake-up condition over streaming sensor
// data. It mirrors the paper's C implementation: every algorithm instance
// owns a per-instance data structure, the interpreter feeds incoming sensor
// samples to the appropriate instances, and an instance that produces a
// result sets a hasResult flag that forwards the value to the next
// instance. A value reaching OUT signals that the main processor should be
// woken up.
//
// The interpreter also meters the work it performs (in the abstract
// float/int operation units of the catalog cost model) so device models can
// translate executed work into energy and real-time feasibility.
package interp

import (
	"fmt"

	"sidewinder/internal/core"
	"sidewinder/internal/dsp"
	"sidewinder/internal/telemetry"
)

// Value is one emission flowing over a pipeline edge: a scalar or a vector
// block, tagged with the emitting node's sequence number. Sequence numbers
// let aggregation algorithms synchronize branches without timestamps.
//
// Vector contents are owned by the emitting instance, which reuses the
// backing array across emissions: a Vector is valid only for the delivery
// cascade of the sample that produced it, and consumers must copy it to
// retain it (and must never mutate it).
type Value struct {
	Seq    int64
	Scalar float64
	Vector []float64 // nil for scalar edges
}

// IsVector reports whether the value carries a block.
func (v Value) IsVector() bool { return v.Vector != nil }

// WakeEvent is delivered when the wake-up condition is satisfied: the final
// admission-control stage emitted a value to OUT (paper §3.3).
type WakeEvent struct {
	// NodeID is the plan node that fed OUT.
	NodeID int
	// Value is the admitted scalar.
	Value float64
	// Seq is the emission sequence number of the final node.
	Seq int64
}

// instance is one running algorithm. Push consumes an input on the given
// port and reports the produced value, if any (the hasResult flag of the
// paper's runtime). The instance sets the output's Seq: sample-synchronous
// and conditional algorithms preserve the input sequence (so aggregators
// downstream can join branches emission-for-emission), while re-blocking
// algorithms (windowing, block filters) start a fresh sequence domain.
type instance interface {
	Push(port int, v Value) (Value, bool)
	Reset()
}

// target routes an emission to one input port of a downstream node.
type target struct {
	node int // index into Machine.nodes
	port int
}

// Machine executes one bound wake-up condition.
type Machine struct {
	plan    *core.Plan
	nodes   []instance
	byChan  map[core.SensorChannel][]target
	byNode  [][]target // fan-out per node index
	outNode int        // index of the node feeding OUT
	prec    Precision
	work    core.CostEstimate
	wakes   []WakeEvent
	chanSeq map[core.SensorChannel]int64

	// off is the offset (within the block being pushed) of the raw sample
	// whose delivery cascade is currently running; wakes record it so the
	// block path can report when within the block each wake fired. The
	// per-sample path runs with off pinned to 0.
	off    int
	bwakes []BlockWake
	// qbuf is the Q15 ingress scratch: PushBlock quantizes into it rather
	// than mutating the caller's samples.
	qbuf []float64

	// stageStats, when non-nil, holds one pre-interned telemetry handle
	// per node (parallel to nodes), so the delivery loop attributes work
	// per stage kind with plain field arithmetic — no map lookups, no
	// allocation, nothing when telemetry is disabled.
	stageStats []*telemetry.StageStat
}

// New builds a machine for the plan in the default float64 precision. The
// plan must come from core.Pipeline.Validate or ir.Bind; New trusts its
// structural invariants but still fails cleanly on an algorithm kind it
// cannot instantiate.
func New(plan *core.Plan) (*Machine, error) { return NewPrecision(plan, Float64) }

// NewPrecision builds a machine executing in the given precision.
func NewPrecision(plan *core.Plan, prec Precision) (*Machine, error) {
	m := &Machine{
		plan:    plan,
		nodes:   make([]instance, len(plan.Nodes)),
		byChan:  make(map[core.SensorChannel][]target),
		byNode:  make([][]target, len(plan.Nodes)),
		outNode: plan.OutputNode() - 1,
		prec:    prec,
		chanSeq: make(map[core.SensorChannel]int64),
	}
	for i := range plan.Nodes {
		n := &plan.Nodes[i]
		inst, err := newInstance(n, prec)
		if err != nil {
			return nil, fmt.Errorf("interp: node %d (%s): %w", n.ID, n.Kind, err)
		}
		m.nodes[i] = inst
		for port, ref := range n.Inputs {
			tg := target{node: i, port: port}
			if ref.FromChannel() {
				m.byChan[ref.Channel] = append(m.byChan[ref.Channel], tg)
			} else {
				m.byNode[ref.Node-1] = append(m.byNode[ref.Node-1], tg)
			}
		}
	}
	return m, nil
}

// Plan returns the machine's bound plan.
func (m *Machine) Plan() *core.Plan { return m.plan }

// Precision returns the machine's numeric execution mode.
func (m *Machine) Precision() Precision { return m.prec }

// SetProfile attaches a telemetry profile: subsequent execution is
// attributed per stage kind into the profile's StageStats. The handles are
// interned once here, keeping PushSample at 0 allocs/op. A nil profile
// detaches instrumentation.
func (m *Machine) SetProfile(p *telemetry.InterpProfile) {
	if p == nil {
		m.stageStats = nil
		return
	}
	m.stageStats = make([]*telemetry.StageStat, len(m.plan.Nodes))
	for i := range m.plan.Nodes {
		m.stageStats[i] = p.Stage(string(m.plan.Nodes[i].Kind))
	}
}

// Channels returns the sensor channels the machine consumes.
func (m *Machine) Channels() []core.SensorChannel { return m.plan.Channels }

// PushSample feeds one raw sensor sample into the condition and returns
// any wake events it produced.
func (m *Machine) PushSample(ch core.SensorChannel, sample float64) []WakeEvent {
	m.wakes = m.wakes[:0]
	m.bwakes = m.bwakes[:0]
	m.off = 0
	if m.prec == Q15 {
		sample = dsp.QuantizeQ15(sample)
	}
	seq := m.chanSeq[ch]
	m.chanSeq[ch] = seq + 1
	v := Value{Seq: seq, Scalar: sample}
	for _, tg := range m.byChan[ch] {
		m.deliver(tg, v)
	}
	for i := range m.bwakes {
		m.wakes = append(m.wakes, m.bwakes[i].WakeEvent)
	}
	return m.wakes
}

// deliver pushes a value into one node port and propagates any emission.
func (m *Machine) deliver(tg target, v Value) {
	node := &m.plan.Nodes[tg.node]
	m.work = m.work.Add(node.Cost)
	out, ok := m.nodes[tg.node].Push(tg.port, v)
	if m.stageStats != nil {
		m.stageStats[tg.node].Record(node.Cost.FloatOps, node.Cost.IntOps, ok)
	}
	if !ok {
		return
	}
	if tg.node == m.outNode {
		m.appendWake(node.ID, out)
	}
	for _, next := range m.byNode[tg.node] {
		m.deliver(next, out)
	}
}

// appendWake records a wake at the current block offset, snapping the
// admitted value onto the Q15 grid in fixed-point mode (wake egress
// conversion: downstream consumers see what the MCU would report).
func (m *Machine) appendWake(nodeID int, out Value) {
	val := out.Scalar
	if m.prec == Q15 {
		val = dsp.QuantizeQ15(val)
	}
	m.bwakes = append(m.bwakes, BlockWake{
		Off:       m.off,
		WakeEvent: WakeEvent{NodeID: nodeID, Value: val, Seq: out.Seq},
	})
}

// Work returns the cumulative work executed since construction or the last
// ResetWork, in catalog cost units.
func (m *Machine) Work() core.CostEstimate { return m.work }

// ResetWork zeroes the work meter.
func (m *Machine) ResetWork() { m.work = core.CostEstimate{} }

// Reset restores every algorithm instance to its initial state and clears
// sequence counters; the work meter is left untouched.
func (m *Machine) Reset() {
	for _, inst := range m.nodes {
		inst.Reset()
	}
	for ch := range m.chanSeq {
		delete(m.chanSeq, ch)
	}
}
