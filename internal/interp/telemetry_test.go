package interp

import (
	"testing"

	"sidewinder/internal/core"
	"sidewinder/internal/telemetry"
)

// telemetryTestPipeline builds a three-axis significant-motion condition:
// enough stage variety (moving averages, an aggregator, a threshold) to
// exercise per-kind attribution.
func telemetryTestPipeline() *core.Pipeline {
	p := core.NewPipeline("sig-motion")
	for _, ch := range []core.SensorChannel{core.AccelX, core.AccelY, core.AccelZ} {
		p.AddBranch(core.NewBranch(ch).Add(core.MovingAverage(10)))
	}
	p.Add(core.VectorMagnitude())
	p.Add(core.MinThreshold(15))
	return p
}

// feedMotion drives the machine through quiet and violent phases and
// returns the wake count.
func feedMotion(m *Machine, rounds int) int {
	wakes := 0
	for i := 0; i < rounds; i++ {
		wakes += len(m.PushSample(core.AccelX, 0))
		wakes += len(m.PushSample(core.AccelY, 0))
		wakes += len(m.PushSample(core.AccelZ, 9.81))
	}
	for i := 0; i < rounds; i++ {
		wakes += len(m.PushSample(core.AccelX, 12))
		wakes += len(m.PushSample(core.AccelY, 12))
		wakes += len(m.PushSample(core.AccelZ, 12))
	}
	return wakes
}

// TestProfileAttributionMatchesWorkMeter: the per-stage profile must
// account for exactly the work the machine's own meter observed — the
// profile is a decomposition of Work(), not a second estimate.
func TestProfileAttributionMatchesWorkMeter(t *testing.T) {
	m := mustMachine(t, telemetryTestPipeline())
	prof := telemetry.NewInterpProfile()
	m.SetProfile(prof)

	wakes := feedMotion(m, 100)
	if wakes == 0 {
		t.Fatal("expected wakes from violent motion")
	}

	f, iOps := prof.TotalOps()
	w := m.Work()
	if f != w.FloatOps || iOps != w.IntOps {
		t.Fatalf("profile ops (%g float, %g int) != work meter (%g float, %g int)",
			f, iOps, w.FloatOps, w.IntOps)
	}

	stages := prof.Stages()
	if len(stages) == 0 {
		t.Fatal("profile recorded no stages")
	}
	var inv, emit int64
	kinds := make(map[string]bool)
	for _, s := range stages {
		if s.Invocations == 0 {
			t.Errorf("stage %q attached but never invoked", s.Kind)
		}
		if s.Emissions > s.Invocations {
			t.Errorf("stage %q emitted %d times in %d invocations", s.Kind, s.Emissions, s.Invocations)
		}
		inv += s.Invocations
		emit += s.Emissions
		kinds[s.Kind] = true
	}
	for _, want := range []string{string(core.KindMovingAvg), string(core.KindVectorMagnitude), string(core.KindMinThreshold)} {
		if !kinds[want] {
			t.Errorf("profile missing stage kind %q (have %v)", want, kinds)
		}
	}
	if inv < int64(wakes) || emit < int64(wakes) {
		t.Errorf("stage totals (inv=%d emit=%d) inconsistent with %d wakes", inv, emit, wakes)
	}
}

// TestDetachedProfileStopsRecording: SetProfile(nil) must fully detach.
func TestDetachedProfileStopsRecording(t *testing.T) {
	m := mustMachine(t, telemetryTestPipeline())
	prof := telemetry.NewInterpProfile()
	m.SetProfile(prof)
	feedMotion(m, 10)
	f1, i1 := prof.TotalOps()
	m.SetProfile(nil)
	feedMotion(m, 10)
	f2, i2 := prof.TotalOps()
	if f1 != f2 || i1 != i2 {
		t.Fatalf("detached profile still recording: (%g,%g) -> (%g,%g)", f1, i1, f2, i2)
	}
}

// TestInstrumentedPushSampleAllocs: the instrumented hot path must stay at
// 0 allocs/op with a live profile attached, and equally with none.
func TestInstrumentedPushSampleAllocs(t *testing.T) {
	for _, tc := range []struct {
		name    string
		profile *telemetry.InterpProfile
	}{
		{"disabled", nil},
		{"enabled", telemetry.NewInterpProfile()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := mustMachine(t, telemetryTestPipeline())
			m.SetProfile(tc.profile)
			// Warm up: first wake grows the wake slice, first sample seeds
			// the per-channel sequence map.
			feedMotion(m, 20)
			i := 0
			allocs := testing.AllocsPerRun(1000, func() {
				m.PushSample(core.AccelX, 12)
				m.PushSample(core.AccelY, 12)
				m.PushSample(core.AccelZ, 12)
				i++
			})
			if allocs != 0 {
				t.Errorf("PushSample (%s telemetry) allocates %.1f allocs/op, want 0", tc.name, allocs)
			}
		})
	}
}

// BenchmarkPushSampleInstrumented is the acceptance benchmark: the
// interpreter hot path with a live telemetry profile attached must report
// 0 allocs/op (run via `make bench-telemetry`).
func BenchmarkPushSampleInstrumented(b *testing.B) {
	plan, err := telemetryTestPipeline().Validate(core.DefaultCatalog())
	if err != nil {
		b.Fatal(err)
	}
	m, err := New(plan)
	if err != nil {
		b.Fatal(err)
	}
	m.SetProfile(telemetry.NewInterpProfile())
	feedMotion(m, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PushSample(core.AccelX, 12)
		m.PushSample(core.AccelY, 12)
		m.PushSample(core.AccelZ, 12)
	}
}

// BenchmarkPushSampleUninstrumented is the baseline for the benchmark
// above: no profile attached.
func BenchmarkPushSampleUninstrumented(b *testing.B) {
	plan, err := telemetryTestPipeline().Validate(core.DefaultCatalog())
	if err != nil {
		b.Fatal(err)
	}
	m, err := New(plan)
	if err != nil {
		b.Fatal(err)
	}
	feedMotion(m, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PushSample(core.AccelX, 12)
		m.PushSample(core.AccelY, 12)
		m.PushSample(core.AccelZ, 12)
	}
}

// mergedWakeInput is a deterministic sample sequence with alternating calm
// and loud stretches, so both thresholds in twoWindowPlans fire on some
// windows and not others.
func mergedWakeInput(n int) []float64 {
	out := make([]float64, n)
	// xorshift-style deterministic generator; amplitude steps up every 32
	// samples so windows land on both sides of each plan's threshold.
	state := uint64(0x51DE)
	for i := range out {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		amp := float64((i/32)%4) * 1.5
		out[i] = amp * (float64(state%1000)/1000 - 0.3)
	}
	return out
}

// TestMergedWakeAttributionMatchesSolo: running mixed plans that share a
// common prefix on one Merged machine must produce TaggedWake events whose
// per-plan counts — and values, in order — match running each plan on its
// own interpreter. Sharing is an optimization, never a semantic change.
func TestMergedWakeAttributionMatchesSolo(t *testing.T) {
	pa, pb := twoWindowPlans(t)

	merged, err := NewMerged(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	if merged.SharedNodes() == 0 {
		t.Fatal("plans share a common prefix but merged machine deduplicated nothing")
	}
	prof := telemetry.NewInterpProfile()
	merged.SetProfile(prof)

	soloA, err := New(pa)
	if err != nil {
		t.Fatal(err)
	}
	soloB, err := New(pb)
	if err != nil {
		t.Fatal(err)
	}

	samples := mergedWakeInput(4096)
	var mergedWakes [2][]WakeEvent
	var soloWakes [2][]WakeEvent
	for _, s := range samples {
		for _, tw := range merged.PushSample(core.Mic, s) {
			if tw.Plan < 0 || tw.Plan > 1 {
				t.Fatalf("TaggedWake with out-of-range plan %d", tw.Plan)
			}
			mergedWakes[tw.Plan] = append(mergedWakes[tw.Plan], tw.WakeEvent)
		}
		soloWakes[0] = append(soloWakes[0], soloA.PushSample(core.Mic, s)...)
		soloWakes[1] = append(soloWakes[1], soloB.PushSample(core.Mic, s)...)
	}

	for plan := 0; plan < 2; plan++ {
		if len(mergedWakes[plan]) != len(soloWakes[plan]) {
			t.Fatalf("plan %d: merged produced %d wakes, solo produced %d",
				plan, len(mergedWakes[plan]), len(soloWakes[plan]))
		}
		if len(mergedWakes[plan]) == 0 {
			t.Errorf("plan %d never woke; input does not exercise attribution", plan)
		}
		for i := range mergedWakes[plan] {
			mw, sw := mergedWakes[plan][i], soloWakes[plan][i]
			if mw.Value != sw.Value || mw.Seq != sw.Seq {
				t.Fatalf("plan %d wake %d: merged {val=%g seq=%d} != solo {val=%g seq=%d}",
					plan, i, mw.Value, mw.Seq, sw.Value, sw.Seq)
			}
		}
	}

	// The merged profile counts shared work once: total ops must equal the
	// merged work meter, which is strictly less than the two solo meters.
	f, iOps := prof.TotalOps()
	mw := merged.Work()
	if f != mw.FloatOps || iOps != mw.IntOps {
		t.Fatalf("merged profile ops (%g,%g) != merged work meter (%g,%g)",
			f, iOps, mw.FloatOps, mw.IntOps)
	}
	soloTotal := soloA.Work().Add(soloB.Work())
	if !(mw.FloatOps < soloTotal.FloatOps) && !(mw.IntOps < soloTotal.IntOps) {
		t.Errorf("merged work %+v not less than solo total %+v despite shared prefix", mw, soloTotal)
	}
}
