package interp

import (
	"math"
	"math/rand"
	"testing"

	"sidewinder/internal/apps"
	"sidewinder/internal/core"
	"sidewinder/internal/ir"
	"sidewinder/internal/testutil"
)

// Reset must be equivalent to a fresh machine: PR 5 found a BlockFilter
// whose Reset left delay-line state behind, which only bit-diverged after
// the first reuse. With the DAG pass a reset instance can now be shared
// by several apps, so stale state would corrupt every resident condition
// at once. These tests replay the same signal on a fresh machine and on a
// used-then-Reset machine and require bit-identical wake streams, for the
// single-plan, merged and DAG-shared interpreters in both precisions.

// resetSignal is deliberately biased positive so thresholds fire and
// sustain runs, joins and window fills all carry state into the reset.
func resetSignal(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()*4 + 2*math.Sin(float64(i)/11)
	}
	return out
}

func TestResetEquivalentToFreshMachine(t *testing.T) {
	cat := core.DefaultCatalog()
	sig := resetSignal(3000, 1)
	for _, app := range apps.All() {
		plan, err := app.Wake.Validate(cat)
		if err != nil {
			t.Fatal(err)
		}
		compiled, _, err := ir.CompilePlan(cat, ir.CompileOptions{}, plan)
		if err != nil {
			t.Fatal(err)
		}
		for _, prec := range []Precision{Float64, Q15} {
			for _, tc := range []struct {
				name string
				plan *core.Plan
			}{{"linear", plan}, {"dag", compiled}} {
				label := app.Name + "/" + prec.String() + "/" + tc.name

				fresh, err := NewPrecision(tc.plan, prec)
				if err != nil {
					t.Fatal(err)
				}
				used, err := NewPrecision(tc.plan, prec)
				if err != nil {
					t.Fatal(err)
				}
				// Dirty the used machine with a different prefix, then reset.
				for _, ch := range tc.plan.Channels {
					used.PushBlock(ch, sig[:1700])
				}
				used.Reset()

				var want, got []dagWake
				for i, v := range sig {
					for _, ch := range tc.plan.Channels {
						for _, w := range fresh.PushSample(ch, v) {
							want = append(want, dagWake{i, math.Float64bits(w.Value), w.Seq})
						}
						for _, w := range used.PushSample(ch, v) {
							got = append(got, dagWake{i, math.Float64bits(w.Value), w.Seq})
						}
					}
				}
				compareDagWakes(t, label, want, got)
			}
		}
	}
}

func TestResetEquivalentToFreshShared(t *testing.T) {
	cat := core.DefaultCatalog()
	var plans []*core.Plan
	for _, app := range apps.AudioApps() {
		plan, err := app.Wake.Validate(cat)
		if err != nil {
			t.Fatal(err)
		}
		plan.Name = app.Name
		plans = append(plans, plan)
	}
	sp, err := ir.CompilePlans(cat, ir.CompileOptions{}, plans...)
	if err != nil {
		t.Fatal(err)
	}
	sig := resetSignal(6000, 2)
	for _, prec := range []Precision{Float64, Q15} {
		for _, mk := range []struct {
			name  string
			build func() (*Merged, error)
		}{
			{"merged", func() (*Merged, error) { return NewMergedPrecision(prec, plans...) }},
			{"shared", func() (*Merged, error) { return NewShared(prec, sp) }},
		} {
			fresh, err := mk.build()
			if err != nil {
				t.Fatal(err)
			}
			used, err := mk.build()
			if err != nil {
				t.Fatal(err)
			}
			used.PushBlock(core.Mic, sig[:3100])
			used.Reset()

			label := prec.String() + "/" + mk.name
			var want, got []taggedDagWake
			for i, v := range sig {
				for _, w := range fresh.PushSample(core.Mic, v) {
					want = append(want, taggedDagWake{i, w.Plan, math.Float64bits(w.Value), w.Seq})
				}
				for _, w := range used.PushSample(core.Mic, v) {
					got = append(got, taggedDagWake{i, w.Plan, math.Float64bits(w.Value), w.Seq})
				}
			}
			if len(want) != len(got) {
				t.Fatalf("%s: wake count %d vs %d after reset", label, len(want), len(got))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%s: wake %d: fresh %+v, reset %+v", label, i, want[i], got[i])
				}
			}
		}
	}
}

// TestResetEquivalenceRandomPipelines broadens the reset pin to the
// generated space, where join slot recycling, sustain runs and filter
// delay lines combine in ways the catalog apps don't reach.
func TestResetEquivalenceRandomPipelines(t *testing.T) {
	cat := core.DefaultCatalog()
	rng := rand.New(rand.NewSource(55))
	for i := 0; i < 60; i++ {
		p := testutil.RandomPipeline(rng)
		plan, err := p.Validate(cat)
		if err != nil {
			t.Fatalf("pipeline %d: %v", i, err)
		}
		sig := resetSignal(900, int64(i))
		ch := plan.Channels[0]

		fresh, err := New(plan)
		if err != nil {
			t.Fatal(err)
		}
		used, err := New(plan)
		if err != nil {
			t.Fatal(err)
		}
		used.PushBlock(ch, sig[:533])
		used.Reset()

		var want, got []dagWake
		for s, v := range sig {
			for _, w := range fresh.PushSample(ch, v) {
				want = append(want, dagWake{s, math.Float64bits(w.Value), w.Seq})
			}
			for _, w := range used.PushSample(ch, v) {
				got = append(got, dagWake{s, math.Float64bits(w.Value), w.Seq})
			}
		}
		compareDagWakes(t, p.Name(), want, got)
	}
}
