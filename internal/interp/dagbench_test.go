package interp

import (
	"testing"

	"sidewinder/internal/core"
	"sidewinder/internal/ir"
)

// dagBenchPlans builds n wake conditions with heavy interior sharing: every
// plan runs the same movingAvg → window → rms feature chain over the
// microphone and differs only in its admission cutoff. The DAG pass
// collapses the whole interior to one shared execution; the linear merged
// path shares it too (it is a common prefix), so the pair benchmarks the
// dispatch machinery, not different amounts of arithmetic.
func dagBenchPlans(tb testing.TB, n int) []*core.Plan {
	tb.Helper()
	cat := core.DefaultCatalog()
	plans := make([]*core.Plan, n)
	for i := range plans {
		p := core.NewPipeline("bench")
		b := core.NewBranch(core.Mic)
		b.Add(core.MovingAverage(8))
		b.Add(core.Window(64, 0, "hamming"))
		b.Add(core.Stat("rms"))
		p.AddBranch(b)
		p.Add(core.MinThreshold(0.5 + 0.1*float64(i)))
		plan, err := p.Validate(cat)
		if err != nil {
			tb.Fatal(err)
		}
		plan.Name = p.Name()
		plans[i] = plan
	}
	return plans
}

// BenchmarkDAGMerged compares the DAG-compiled shared plan against the
// linear signature-merged path on the block dispatch hot loop. Both must
// stay 0 allocs/op in steady state (enforced against docs/bench/baseline.txt
// by `make bench-check`).
func BenchmarkDAGMerged(b *testing.B) {
	const nApps = 6
	plans := dagBenchPlans(b, nApps)
	block := mergedWakeInput(256)

	b.Run("linear", func(b *testing.B) {
		m, err := NewMerged(plans...)
		if err != nil {
			b.Fatal(err)
		}
		m.PushBlock(core.Mic, block) // warm scratch buffers
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.PushBlock(core.Mic, block)
		}
	})
	b.Run("dag", func(b *testing.B) {
		sp, err := ir.CompilePlans(core.DefaultCatalog(), ir.CompileOptions{}, plans...)
		if err != nil {
			b.Fatal(err)
		}
		m, err := NewShared(Float64, sp)
		if err != nil {
			b.Fatal(err)
		}
		m.PushBlock(core.Mic, block)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.PushBlock(core.Mic, block)
		}
	})
}

// TestDAGMergedSteadyStateAllocs is the tier-1 twin of the benchmark: the
// DAG-shared block path must not allocate once its scratch is warm.
func TestDAGMergedSteadyStateAllocs(t *testing.T) {
	plans := dagBenchPlans(t, 6)
	sp, err := ir.CompilePlans(core.DefaultCatalog(), ir.CompileOptions{}, plans...)
	if err != nil {
		t.Fatal(err)
	}
	block := mergedWakeInput(256)
	for _, prec := range []Precision{Float64, Q15} {
		m, err := NewShared(prec, sp)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			m.PushBlock(core.Mic, block)
		}
		if allocs := testing.AllocsPerRun(200, func() {
			m.PushBlock(core.Mic, block)
		}); allocs != 0 {
			t.Errorf("%s: shared PushBlock allocates %.1f allocs/op in steady state, want 0", prec, allocs)
		}
	}
}
