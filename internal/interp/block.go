package interp

import (
	"fmt"

	"sidewinder/internal/core"
	"sidewinder/internal/dsp"
)

// This file implements the interpreter's two fast paths.
//
// Block dispatch: PushBlock feeds a whole sensor block through the graph
// with per-block rather than per-sample dispatch. Stages advertise block
// capability through two narrow interfaces. A blockConsumer re-blocks the
// stream (windowing, block filters, Goertzel banks): it consumes a prefix
// of the input up to its next emission boundary, so each emission still
// cascades depth-first immediately — which is what keeps the
// vector-aliasing contract intact (a vector is valid only during the
// cascade of the sample that produced it). A blockMapper is a dense scalar
// stage (moving average, EMA, biquad): it maps the block 1:1 onto a suffix
// of the input, writing into instance-owned scratch that downstream
// consumption finishes with before the call returns. Everything else falls
// back to the per-value scalar loop. Wake events carry the in-block offset
// of the raw sample that triggered them, and a stable sort by offset
// restores exact per-sample ordering, so a PushBlock call is
// observationally identical to the equivalent PushSample loop.
//
// Precision: a machine built with NewPrecision(plan, Q15) runs its
// stateful kernels on saturating int32 Q15 arithmetic (internal/dsp/fixed.go),
// quantizing samples at sensor ingress and wake values at egress. Spectral
// stages (FFT, magnitudes, tonality) stay in float64 — the paper's MSP430
// cannot run the FFT chain in real time at all, so Q15 mode substitutes
// the IIR block-filter backend for the FFT one; the float spectral stages
// remain only for plans that insist on them.

// Precision selects the numeric substrate a machine executes on.
type Precision int

const (
	// Float64 is the default full-precision mode.
	Float64 Precision = iota
	// Q15 runs stateful kernels on saturating int32 fixed-point
	// arithmetic with 15 fractional bits, modeling the FPU-less MCU hub.
	Q15
)

// String returns the mode's flag-friendly name.
func (p Precision) String() string {
	switch p {
	case Float64:
		return "float64"
	case Q15:
		return "q15"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// ParsePrecision converts a name produced by String back into a mode.
func ParsePrecision(name string) (Precision, error) {
	switch name {
	case "float64", "":
		return Float64, nil
	case "q15":
		return Q15, nil
	default:
		return Float64, fmt.Errorf("interp: unknown precision %q (want float64 or q15)", name)
	}
}

// BlockWake is a wake event produced by PushBlock, tagged with the offset
// (within the pushed block) of the raw sample whose delivery triggered it.
type BlockWake struct {
	Off int
	WakeEvent
}

// TaggedBlockWake is the Merged equivalent: offset plus plan attribution.
type TaggedBlockWake struct {
	Off int
	TaggedWake
}

// blockConsumer is a re-blocking stage: consumeBlock ingests a prefix of
// src up to (and including) the stage's next emission boundary, returning
// how many samples it consumed and the emission, if the boundary was
// reached. The caller loops until src is drained, cascading each emission
// before feeding more — preserving the per-sample delivery order exactly.
type blockConsumer interface {
	consumeBlock(src []float64) (n int, out Value, ok bool)
}

// blockMapper is a dense scalar stage: pushBlock maps src through the
// stage, returning the emissions and the count of leading src samples that
// produced none (priming). The dense-suffix invariant — out[j] corresponds
// 1:1 to src[skip+j] — is what lets offsets and sequence numbers propagate
// through mapper chains without per-sample bookkeeping. The returned slice
// is instance-owned scratch, valid until the stage's next pushBlock.
type blockMapper interface {
	pushBlock(src []float64) (out []float64, skip int)
}

// PushBlock feeds a whole block of raw samples from one channel and
// returns the wakes it produced, ordered exactly as the equivalent
// PushSample loop would produce them; Off reports each wake's position
// within the block. The returned slice is machine-owned scratch, valid
// until the next push.
func (m *Machine) PushBlock(ch core.SensorChannel, samples []float64) []BlockWake {
	m.bwakes = m.bwakes[:0]
	if len(samples) == 0 {
		return m.bwakes
	}
	if m.prec == Q15 {
		samples = m.quantize(samples)
	}
	seq0 := m.chanSeq[ch]
	m.chanSeq[ch] = seq0 + int64(len(samples))
	for _, tg := range m.byChan[ch] {
		m.deliverBlock(tg, samples, seq0, 0)
	}
	// With several targets on the channel, each target's wakes come out
	// batched; a stable insertion sort by offset restores the per-sample
	// interleaving. Wakes are rare, so this is a no-op almost always.
	for i := 1; i < len(m.bwakes); i++ {
		for j := i; j > 0 && m.bwakes[j].Off < m.bwakes[j-1].Off; j-- {
			m.bwakes[j], m.bwakes[j-1] = m.bwakes[j-1], m.bwakes[j]
		}
	}
	return m.bwakes
}

// quantize rounds a block onto the Q15 grid in machine-owned scratch
// (sensor ingress conversion; the caller's slice is never mutated).
func (m *Machine) quantize(samples []float64) []float64 {
	if cap(m.qbuf) < len(samples) {
		m.qbuf = make([]float64, len(samples))
	}
	q := m.qbuf[:len(samples)]
	for i, x := range samples {
		q[i] = dsp.QuantizeQ15(x)
	}
	return q
}

// deliverBlock pushes a block into one node port. src holds the values for
// offsets [off0, off0+len(src)) with sequence numbers starting at seq0.
func (m *Machine) deliverBlock(tg target, src []float64, seq0 int64, off0 int) {
	node := &m.plan.Nodes[tg.node]
	switch inst := m.nodes[tg.node].(type) {
	case blockConsumer:
		base := 0
		for base < len(src) {
			n, out, ok := inst.consumeBlock(src[base:])
			m.work = m.work.Add(node.Cost.Scale(float64(n)))
			if m.stageStats != nil {
				var em int64
				if ok {
					em = 1
				}
				m.stageStats[tg.node].RecordBlock(node.Cost.FloatOps, node.Cost.IntOps, int64(n), em)
			}
			base += n
			if !ok {
				continue
			}
			m.off = off0 + base - 1
			if tg.node == m.outNode {
				m.appendWake(node.ID, out)
			}
			for _, next := range m.byNode[tg.node] {
				m.deliver(next, out)
			}
		}
	case blockMapper:
		out, skip := inst.pushBlock(src)
		m.work = m.work.Add(node.Cost.Scale(float64(len(src))))
		if m.stageStats != nil {
			m.stageStats[tg.node].RecordBlock(node.Cost.FloatOps, node.Cost.IntOps, int64(len(src)), int64(len(out)))
		}
		if len(out) == 0 {
			return
		}
		if tg.node == m.outNode {
			for j, y := range out {
				m.off = off0 + skip + j
				m.appendWake(node.ID, Value{Seq: seq0 + int64(skip+j), Scalar: y})
			}
		}
		for _, next := range m.byNode[tg.node] {
			m.deliverBlock(next, out, seq0+int64(skip), off0+skip)
		}
	default:
		for i, x := range src {
			m.off = off0 + i
			m.deliver(tg, Value{Seq: seq0 + int64(i), Scalar: x})
		}
	}
}
