package interp

import (
	"math"
	"math/rand"
	"testing"

	"sidewinder/internal/core"
)

// wakeRec is one wake in absolute sample position, for comparing the block
// path against the per-sample reference.
type wakeRec struct {
	At     int
	NodeID int
	Value  uint64 // float64 bits: equivalence must be exact
	Seq    int64
}

// blockSignal builds a deterministic test signal long enough to cross
// several window/block boundaries.
func blockSignal(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = 3*math.Sin(2*math.Pi*float64(i)/37) + rng.NormFloat64()
	}
	return out
}

// machineWakesPerSample replays the signal per sample and collects wakes.
func machineWakesPerSample(m *Machine, ch core.SensorChannel, sig []float64) []wakeRec {
	var out []wakeRec
	for i, v := range sig {
		for _, w := range m.PushSample(ch, v) {
			out = append(out, wakeRec{i, w.NodeID, math.Float64bits(w.Value), w.Seq})
		}
	}
	return out
}

// machineWakesBlocked replays the signal via PushBlock in chunks.
func machineWakesBlocked(m *Machine, ch core.SensorChannel, sig []float64, chunk int) []wakeRec {
	var out []wakeRec
	for base := 0; base < len(sig); base += chunk {
		end := base + chunk
		if end > len(sig) {
			end = len(sig)
		}
		for _, w := range m.PushBlock(ch, sig[base:end]) {
			out = append(out, wakeRec{base + w.Off, w.NodeID, math.Float64bits(w.Value), w.Seq})
		}
	}
	return out
}

func compareWakes(t *testing.T, label string, want, got []wakeRec) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: wake count: per-sample %d, block %d", label, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: wake %d: per-sample %+v, block %+v", label, i, want[i], got[i])
		}
	}
}

// blockTestPipelines covers every dispatch class: consumer chains
// (window, block filter, goertzel), mapper chains (moving average, EMA,
// IIR), fallback stages (delta, abs, thresholds), and a join fed by two
// branches of one channel.
func blockTestPipelines() map[string]*core.Pipeline {
	pipes := map[string]*core.Pipeline{}

	p := core.NewPipeline("window-stat")
	p.AddBranch(core.NewBranch(core.AccelX).
		Add(core.MovingAverage(3)).
		Add(core.Window(25, 12, "")).
		Add(core.Stat("stddev")).
		Add(core.MinThreshold(0.7)))
	pipes["window-stat"] = p

	p = core.NewPipeline("blockfilter-fft")
	p.AddBranch(core.NewBranch(core.Mic).
		Add(core.HighPass(750, 64)).
		Add(core.FFT()).
		Add(core.SpectralMag()).
		Add(core.Stat("mean")).
		Add(core.MinThreshold(0.05)))
	pipes["blockfilter-fft"] = p

	p = core.NewPipeline("join-two-branches")
	p.AddBranch(core.NewBranch(core.Mic).Add(core.Window(64, 64, "")).Add(core.Stat("variance")))
	p.AddBranch(core.NewBranch(core.Mic).Add(core.Window(64, 64, "")).Add(core.ZCRVariance(8)))
	p.Add(core.And())
	p.Add(core.MinThreshold(0.001))
	pipes["join-two-branches"] = p

	p = core.NewPipeline("mapper-chain")
	p.AddBranch(core.NewBranch(core.AccelY).
		Add(core.MovingAverage(2)).
		Add(core.ExpMovingAverage(0.3)).
		Add(core.Delta()).
		Add(core.Abs()).
		Add(core.MinThreshold(0.2)))
	pipes["mapper-chain"] = p

	p = core.NewPipeline("goertzel")
	p.AddBranch(core.NewBranch(core.Mic).
		Add(core.GoertzelBank(800, 1600, 4000, 64, 4)).
		Add(core.MinThreshold(0.5)))
	pipes["goertzel"] = p

	return pipes
}

// TestPushBlockMatchesPushSample checks the core equivalence contract:
// PushBlock at any chunking produces byte-identical wake sequences, work
// meters, and sequence numbers to a PushSample loop, in both precisions.
func TestPushBlockMatchesPushSample(t *testing.T) {
	sig := blockSignal(4096, 7)
	for name, p := range blockTestPipelines() {
		plan := mustPlan(t, p)
		ch := plan.Channels[0]
		for _, prec := range []Precision{Float64, Q15} {
			ref, err := NewPrecision(plan, prec)
			if err != nil {
				t.Fatal(err)
			}
			want := machineWakesPerSample(ref, ch, sig)
			for _, chunk := range []int{1, 3, 64, 1024, len(sig)} {
				m, err := NewPrecision(plan, prec)
				if err != nil {
					t.Fatal(err)
				}
				got := machineWakesBlocked(m, ch, sig, chunk)
				label := name + "/" + prec.String()
				compareWakes(t, label, want, got)
				if ref.Work() != m.Work() {
					t.Fatalf("%s chunk %d: work meter diverged: %+v vs %+v",
						label, chunk, ref.Work(), m.Work())
				}
			}
		}
	}
}

// TestMergedPushBlockMatchesPushSample checks the Merged equivalent,
// including plan attribution order and prefix sharing.
func TestMergedPushBlockMatchesPushSample(t *testing.T) {
	pipes := blockTestPipelines()
	plans := []*core.Plan{
		mustPlan(t, pipes["blockfilter-fft"]),
		mustPlan(t, pipes["join-two-branches"]),
		mustPlan(t, pipes["goertzel"]),
	}
	sig := blockSignal(4096, 11)

	type taggedRec struct {
		At   int
		Plan int
		wakeRec
	}
	for _, prec := range []Precision{Float64, Q15} {
		ref, err := NewMergedPrecision(prec, plans...)
		if err != nil {
			t.Fatal(err)
		}
		var want []taggedRec
		for i, v := range sig {
			for _, w := range ref.PushSample(core.Mic, v) {
				want = append(want, taggedRec{i, w.Plan,
					wakeRec{i, w.NodeID, math.Float64bits(w.Value), w.Seq}})
			}
		}
		for _, chunk := range []int{1, 5, 128, 1024} {
			m, err := NewMergedPrecision(prec, plans...)
			if err != nil {
				t.Fatal(err)
			}
			var got []taggedRec
			for base := 0; base < len(sig); base += chunk {
				end := base + chunk
				if end > len(sig) {
					end = len(sig)
				}
				for _, w := range m.PushBlock(core.Mic, sig[base:end]) {
					got = append(got, taggedRec{base + w.Off, w.Plan,
						wakeRec{base + w.Off, w.NodeID, math.Float64bits(w.Value), w.Seq}})
				}
			}
			if len(want) != len(got) {
				t.Fatalf("%s chunk %d: wake count %d vs %d", prec, chunk, len(want), len(got))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%s chunk %d: wake %d: %+v vs %+v", prec, chunk, i, want[i], got[i])
				}
			}
			if ref.Work() != m.Work() {
				t.Fatalf("%s chunk %d: work meter diverged", prec, chunk)
			}
		}
	}
}

// TestPushBlockMultiChannel checks that chunk-interleaved multi-channel
// block pushes match the per-sample interleave on a joined accel plan.
func TestPushBlockMultiChannel(t *testing.T) {
	p := core.NewPipeline("sig-motion")
	for _, ch := range []core.SensorChannel{core.AccelX, core.AccelY, core.AccelZ} {
		p.AddBranch(core.NewBranch(ch).Add(core.MovingAverage(10)))
	}
	p.Add(core.VectorMagnitude())
	p.Add(core.MinThreshold(5))
	plan := mustPlan(t, p)

	sigs := [][]float64{blockSignal(2000, 1), blockSignal(2000, 2), blockSignal(2000, 3)}
	chans := []core.SensorChannel{core.AccelX, core.AccelY, core.AccelZ}

	ref := mustMachine(t, p)
	var want []wakeRec
	for i := 0; i < 2000; i++ {
		for ci, ch := range chans {
			for _, w := range ref.PushSample(ch, sigs[ci][i]) {
				want = append(want, wakeRec{i, w.NodeID, math.Float64bits(w.Value), w.Seq})
			}
		}
	}

	for _, chunk := range []int{1, 7, 256} {
		m, err := New(plan)
		if err != nil {
			t.Fatal(err)
		}
		var got []wakeRec
		for base := 0; base < 2000; base += chunk {
			end := base + chunk
			if end > 2000 {
				end = 2000
			}
			// Within a chunk, wakes from different channels must be
			// re-merged by absolute offset (stable in channel order) to
			// reproduce the per-sample interleave.
			var pend []wakeRec
			for ci, ch := range chans {
				for _, w := range m.PushBlock(ch, sigs[ci][base:end]) {
					pend = append(pend, wakeRec{base + w.Off, w.NodeID, math.Float64bits(w.Value), w.Seq})
				}
			}
			for i := 1; i < len(pend); i++ {
				for j := i; j > 0 && pend[j].At < pend[j-1].At; j-- {
					pend[j], pend[j-1] = pend[j-1], pend[j]
				}
			}
			got = append(got, pend...)
		}
		compareWakes(t, "multi-channel", want, got)
	}
}
