package interp

import (
	"testing"

	"sidewinder/internal/core"
)

// twoWindowPlans builds two pipelines sharing an identical window stage
// over MIC but diverging in features.
func twoWindowPlans(t *testing.T) (*core.Plan, *core.Plan) {
	t.Helper()
	cat := core.DefaultCatalog()
	a := core.NewPipeline("a")
	a.AddBranch(core.NewBranch(core.Mic).
		Add(core.Window(4, 0, "")).
		Add(core.Stat("mean")).
		Add(core.MinThreshold(1)))
	b := core.NewPipeline("b")
	b.AddBranch(core.NewBranch(core.Mic).
		Add(core.Window(4, 0, "")).
		Add(core.Stat("range")).
		Add(core.MinThreshold(2)))
	pa, err := a.Validate(cat)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Validate(cat)
	if err != nil {
		t.Fatal(err)
	}
	return pa, pb
}

func TestMergedSharesCommonPrefix(t *testing.T) {
	pa, pb := twoWindowPlans(t)
	m, err := NewMerged(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	// 3 + 3 plan nodes, window shared once -> 5 live nodes.
	if m.NodeCount() != 5 {
		t.Errorf("NodeCount = %d, want 5", m.NodeCount())
	}
	if m.SharedNodes() != 1 {
		t.Errorf("SharedNodes = %d, want 1", m.SharedNodes())
	}
	if len(m.Plans()) != 2 {
		t.Errorf("Plans = %d", len(m.Plans()))
	}
}

func TestMergedMatchesSeparateMachines(t *testing.T) {
	pa, pb := twoWindowPlans(t)
	merged, err := NewMerged(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	ma, err := New(pa)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := New(pb)
	if err != nil {
		t.Fatal(err)
	}
	// Feed identical data; merged wakes must equal the union of the
	// separate machines' wakes, tagged correctly.
	inputs := []float64{0, 0, 0, 0, 2, 2, 2, 2, -1, 3, 1, 0, 5, 5, 5, 5}
	for _, v := range inputs {
		var wantA, wantB int
		wantA = len(ma.PushSample(core.Mic, v))
		wantB = len(mb.PushSample(core.Mic, v))
		var gotA, gotB int
		for _, w := range merged.PushSample(core.Mic, v) {
			switch w.Plan {
			case 0:
				gotA++
			case 1:
				gotB++
			default:
				t.Fatalf("unexpected plan tag %d", w.Plan)
			}
		}
		if gotA != wantA || gotB != wantB {
			t.Fatalf("sample %g: merged wakes (%d,%d), separate (%d,%d)", v, gotA, gotB, wantA, wantB)
		}
	}
}

func TestMergedWorkLessThanSeparate(t *testing.T) {
	pa, pb := twoWindowPlans(t)
	merged, _ := NewMerged(pa, pb)
	ma, _ := New(pa)
	mb, _ := New(pb)
	for i := 0; i < 400; i++ {
		v := float64(i % 9)
		merged.PushSample(core.Mic, v)
		ma.PushSample(core.Mic, v)
		mb.PushSample(core.Mic, v)
	}
	separate := ma.Work().Add(mb.Work())
	shared := merged.Work()
	if shared.IntOps >= separate.IntOps {
		t.Errorf("merged int work %.0f should be below separate %.0f", shared.IntOps, separate.IntOps)
	}
}

func TestMergedIdenticalPlansFullSharing(t *testing.T) {
	pa, _ := twoWindowPlans(t)
	pa2, _ := twoWindowPlans(t)
	m, err := NewMerged(pa, pa2)
	if err != nil {
		t.Fatal(err)
	}
	// Fully identical plans: every node shared, one OUT node tagged for
	// both plans.
	if m.NodeCount() != 3 {
		t.Errorf("NodeCount = %d, want 3", m.NodeCount())
	}
	if m.SharedNodes() != 3 {
		t.Errorf("SharedNodes = %d, want 3", m.SharedNodes())
	}
	fired := 0
	for _, v := range []float64{3, 3, 3, 3} {
		for _, w := range m.PushSample(core.Mic, v) {
			fired++
			_ = w
		}
	}
	if fired != 2 {
		t.Errorf("identical plans should both fire: %d wakes, want 2", fired)
	}
}

func TestMergedDemandDeduplicates(t *testing.T) {
	pa, pb := twoWindowPlans(t)
	fBoth, iBoth, memBoth := MergedDemand(pa, pb)
	fA, iA, memA := MergedDemand(pa)
	fB, iB, memB := MergedDemand(pb)
	if fBoth >= fA+fB && iBoth >= iA+iB {
		t.Errorf("merged demand (%.1f, %.1f) not below sum (%.1f, %.1f)", fBoth, iBoth, fA+fB, iA+iB)
	}
	if memBoth >= memA+memB {
		t.Errorf("merged memory %d not below sum %d", memBoth, memA+memB)
	}
	// And never below the larger single plan.
	if memBoth < memA || memBoth < memB {
		t.Errorf("merged memory %d below a single plan (%d, %d)", memBoth, memA, memB)
	}
}

func TestMergedResetAndWorkMeter(t *testing.T) {
	pa, pb := twoWindowPlans(t)
	m, _ := NewMerged(pa, pb)
	for i := 0; i < 8; i++ {
		m.PushSample(core.Mic, 3)
	}
	if w := m.Work(); w.IntOps == 0 && w.FloatOps == 0 {
		t.Error("work meter did not accumulate")
	}
	m.ResetWork()
	if w := m.Work(); w.IntOps != 0 || w.FloatOps != 0 {
		t.Error("ResetWork failed")
	}
	m.Reset()
	// After reset the shared window must refill: 3 samples produce no
	// wake even though values are high.
	n := 0
	for i := 0; i < 3; i++ {
		n += len(m.PushSample(core.Mic, 9))
	}
	if n != 0 {
		t.Errorf("state survived Reset: %d wakes", n)
	}
}

func TestMergedValidation(t *testing.T) {
	if _, err := NewMerged(); err == nil {
		t.Error("empty plan set should fail")
	}
}

func TestMergedDistinctParamsNotShared(t *testing.T) {
	cat := core.DefaultCatalog()
	a := core.NewPipeline("a")
	a.AddBranch(core.NewBranch(core.Mic).Add(core.Window(4, 0, "")).Add(core.Stat("mean")).Add(core.MinThreshold(1)))
	b := core.NewPipeline("b")
	b.AddBranch(core.NewBranch(core.Mic).Add(core.Window(8, 0, "")).Add(core.Stat("mean")).Add(core.MinThreshold(1)))
	pa, err := a.Validate(cat)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Validate(cat)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMerged(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	// Different window sizes: nothing shared; stat/threshold differ
	// because their inputs differ.
	if m.SharedNodes() != 0 {
		t.Errorf("SharedNodes = %d, want 0", m.SharedNodes())
	}
	if m.NodeCount() != 6 {
		t.Errorf("NodeCount = %d, want 6", m.NodeCount())
	}
}

func TestMergedDemandByStageSumsToTotal(t *testing.T) {
	pa, pb := twoWindowPlans(t)
	wantF, wantI, wantMem := MergedDemand(pa, pb)
	stages := MergedDemandByStage(pa, pb)
	if len(stages) == 0 {
		t.Fatal("no stage demand reported")
	}
	var gotF, gotI float64
	var gotMem, nodes int
	for i, sd := range stages {
		if i > 0 && !(stages[i-1].Kind < sd.Kind) {
			t.Errorf("stages not kind-sorted: %q before %q", stages[i-1].Kind, sd.Kind)
		}
		gotF += sd.FloatOpsPerSec
		gotI += sd.IntOpsPerSec
		gotMem += sd.MemoryBytes
		nodes += sd.Nodes
	}
	if gotF != wantF || gotI != wantI || gotMem != wantMem {
		t.Errorf("per-stage sums (%g, %g, %d) != MergedDemand (%g, %g, %d)",
			gotF, gotI, gotMem, wantF, wantI, wantMem)
	}
	// 3 + 3 plan nodes with the window shared once -> 5 distinct instances.
	if nodes != 5 {
		t.Errorf("distinct nodes = %d, want 5", nodes)
	}
}

func TestMergedDemandByStageDeduplicates(t *testing.T) {
	pa, _ := twoWindowPlans(t)
	once := MergedDemandByStage(pa)
	twice := MergedDemandByStage(pa, pa)
	if len(once) != len(twice) {
		t.Fatalf("duplicate plan changed stage count: %d vs %d", len(once), len(twice))
	}
	for i := range once {
		if once[i] != twice[i] {
			t.Errorf("stage %q demand changed when the plan was listed twice:\nonce:  %+v\ntwice: %+v",
				once[i].Kind, once[i], twice[i])
		}
	}
}

func TestDemandAccumulatorMatchesMergedDemand(t *testing.T) {
	pa, pb := twoWindowPlans(t)
	acc := NewDemandAccumulator()
	mf, mi, mmem := acc.Marginal(pa)
	wf, wi, wmem := MergedDemand(pa)
	if mf != wf || mi != wi || mmem != wmem {
		t.Errorf("first marginal (%g,%g,%d) != plan demand (%g,%g,%d)", mf, mi, mmem, wf, wi, wmem)
	}
	acc.Commit(pa)
	// The second plan's marginal excludes the shared window prefix, so at
	// least one resource column must come out strictly cheaper.
	mf, mi, mmem = acc.Marginal(pb)
	bf, bi, bmem := MergedDemand(pb)
	if mf > bf || mi > bi || mmem > bmem {
		t.Errorf("marginal (%g,%g,%d) exceeds standalone (%g,%g,%d)", mf, mi, mmem, bf, bi, bmem)
	}
	if mf == bf && mi == bi && mmem == bmem {
		t.Errorf("marginal equals standalone — shared prefix not discounted")
	}
	f, i, mem := acc.Commit(pb)
	wf, wi, wmem = MergedDemand(pa, pb)
	if f != wf || i != wi || mem != wmem {
		t.Errorf("accumulated (%g,%g,%d) != MergedDemand (%g,%g,%d)", f, i, mem, wf, wi, wmem)
	}
	// Committing a duplicate changes nothing.
	f2, i2, mem2 := acc.Commit(pa)
	if f2 != f || i2 != i || mem2 != mem {
		t.Errorf("duplicate commit changed totals")
	}
}
