package interp

import (
	"fmt"

	"sidewinder/internal/core"
	"sidewinder/internal/dsp"
	"sidewinder/internal/ir"
	"sidewinder/internal/telemetry"
)

// This file implements the paper's §7 future-work extension: "When
// receiving multiple wake-up conditions, the sensor manager can attempt to
// improve performance by combining the pipelines that use common
// algorithms." A Merged machine executes several bound plans as one
// data-flow graph in which structurally identical nodes — same algorithm,
// same parameters, same (recursively identical) inputs — run once and fan
// out to every consumer. Two applications windowing the microphone the
// same way share one windower; their divergent feature branches split
// after it.

// TaggedWake is a wake event attributed to one of the merged plans.
type TaggedWake struct {
	// Plan is the index into the plan list passed to NewMerged.
	Plan int
	WakeEvent
}

// mergedNode is one deduplicated algorithm instance.
type mergedNode struct {
	inst instance
	cost core.CostEstimate
	// kind is the algorithm kind, kept for per-stage telemetry.
	kind core.AlgorithmKind
	// outPlans lists the plans for which this node feeds OUT.
	outPlans []int
	// planID is the node's ID within its first contributing plan, kept
	// for diagnostics in wake events.
	planID int
	// fanout routes emissions to downstream merged nodes.
	fanout []target
}

// Merged executes a set of plans with common-prefix sharing.
type Merged struct {
	plans   []*core.Plan
	nodes   []mergedNode
	byChan  map[core.SensorChannel][]target
	chanSeq map[core.SensorChannel]int64
	prec    Precision
	work    core.CostEstimate
	wakes   []TaggedWake
	// off/bwakes/qbuf mirror Machine's block-dispatch state: the in-block
	// offset of the sample whose cascade is running, the offset-tagged
	// wake scratch, and the Q15 ingress buffer.
	off    int
	bwakes []TaggedBlockWake
	qbuf   []float64
	// sharedNodes counts the plan nodes eliminated by structural sharing
	// (and, on the DAG path, folding and fusion), for reporting.
	sharedNodes int

	// stageStats, when non-nil, attributes executed work per stage kind
	// (one pre-interned handle per merged node; see Machine.SetProfile).
	// Work on a shared node is recorded once — the profile sees the
	// deduplicated execution the hub actually pays for.
	stageStats []*telemetry.StageStat
}

// signature returns the canonical identity of a plan node: algorithm,
// normalized parameters, and input identities. Nodes with equal signatures
// compute identical values on identical sensor input.
func signature(plan *core.Plan, id int, memo map[int]string) string {
	if s, ok := memo[id]; ok {
		return s
	}
	n := plan.Node(id)
	sig := core.Stage{Kind: n.Kind, Params: n.Params}.String() + "("
	for _, in := range n.Inputs {
		if in.FromChannel() {
			sig += string(in.Channel) + ";"
		} else {
			sig += signature(plan, in.Node, memo) + ";"
		}
	}
	sig += ")"
	memo[id] = sig
	return sig
}

// NewMerged builds a merged machine over the plans in the default float64
// precision. Plans must each come from core validation or IR binding.
func NewMerged(plans ...*core.Plan) (*Merged, error) {
	return NewMergedPrecision(Float64, plans...)
}

// NewMergedPrecision builds a merged machine executing in the given
// precision. All merged plans share the precision: structurally identical
// nodes must compute identical values for sharing to be sound.
func NewMergedPrecision(prec Precision, plans ...*core.Plan) (*Merged, error) {
	if len(plans) == 0 {
		return nil, fmt.Errorf("interp: merged machine needs at least one plan")
	}
	m := &Merged{
		plans:   plans,
		byChan:  make(map[core.SensorChannel][]target),
		chanSeq: make(map[core.SensorChannel]int64),
		prec:    prec,
	}
	bySig := make(map[string]int) // signature -> merged node index

	for pi, plan := range plans {
		memo := make(map[int]string, len(plan.Nodes))
		// localIdx maps the plan's node IDs to merged indices.
		localIdx := make(map[int]int, len(plan.Nodes))
		for i := range plan.Nodes {
			n := &plan.Nodes[i]
			sig := signature(plan, n.ID, memo)
			idx, shared := bySig[sig]
			if !shared {
				inst, err := newInstance(n, prec)
				if err != nil {
					return nil, fmt.Errorf("interp: plan %d node %d (%s): %w", pi, n.ID, n.Kind, err)
				}
				idx = len(m.nodes)
				m.nodes = append(m.nodes, mergedNode{inst: inst, cost: n.Cost, kind: n.Kind, planID: n.ID})
				bySig[sig] = idx
				// Wire inputs: they are already merged (topological
				// order within the plan guarantees presence).
				for port, ref := range n.Inputs {
					tg := target{node: idx, port: port}
					if ref.FromChannel() {
						m.byChan[ref.Channel] = append(m.byChan[ref.Channel], tg)
					} else {
						up := localIdx[ref.Node]
						m.nodes[up].fanout = append(m.nodes[up].fanout, tg)
					}
				}
			} else {
				m.sharedNodes++
			}
			localIdx[n.ID] = idx
		}
		outIdx := localIdx[plan.OutputNode()]
		m.nodes[outIdx].outPlans = append(m.nodes[outIdx].outPlans, pi)
	}
	return m, nil
}

// SetProfile attaches a telemetry profile: subsequent execution is
// attributed per stage kind, counting each shared node's work once. A nil
// profile detaches instrumentation.
func (m *Merged) SetProfile(p *telemetry.InterpProfile) {
	if p == nil {
		m.stageStats = nil
		return
	}
	m.stageStats = make([]*telemetry.StageStat, len(m.nodes))
	for i := range m.nodes {
		m.stageStats[i] = p.Stage(string(m.nodes[i].kind))
	}
}

// SharedNodes reports how many plan nodes were deduplicated away.
func (m *Merged) SharedNodes() int { return m.sharedNodes }

// NodeCount reports the number of live merged nodes.
func (m *Merged) NodeCount() int { return len(m.nodes) }

// Plans returns the merged plan set.
func (m *Merged) Plans() []*core.Plan { return m.plans }

// Precision returns the merged machine's numeric execution mode.
func (m *Merged) Precision() Precision { return m.prec }

// PushSample feeds one raw sensor sample and returns the tagged wake
// events it produced, ordered by plan index.
func (m *Merged) PushSample(ch core.SensorChannel, sample float64) []TaggedWake {
	m.wakes = m.wakes[:0]
	m.bwakes = m.bwakes[:0]
	m.off = 0
	if m.prec == Q15 {
		sample = dsp.QuantizeQ15(sample)
	}
	seq := m.chanSeq[ch]
	m.chanSeq[ch] = seq + 1
	v := Value{Seq: seq, Scalar: sample}
	for _, tg := range m.byChan[ch] {
		m.deliver(tg, v)
	}
	for i := range m.bwakes {
		m.wakes = append(m.wakes, m.bwakes[i].TaggedWake)
	}
	// Order by plan index. Samples produce zero or one wake almost always;
	// insertion sort keeps this per-sample path free of the reflection
	// allocations sort.Slice would make on every call.
	for i := 1; i < len(m.wakes); i++ {
		for j := i; j > 0 && m.wakes[j].Plan < m.wakes[j-1].Plan; j-- {
			m.wakes[j], m.wakes[j-1] = m.wakes[j-1], m.wakes[j]
		}
	}
	return m.wakes
}

// PushBlock feeds a whole block of raw samples from one channel and
// returns the tagged wakes, ordered by (offset, plan) — exactly the
// concatenation order a PushSample loop would produce. The returned slice
// is machine-owned scratch, valid until the next push.
func (m *Merged) PushBlock(ch core.SensorChannel, samples []float64) []TaggedBlockWake {
	m.bwakes = m.bwakes[:0]
	if len(samples) == 0 {
		return m.bwakes
	}
	if m.prec == Q15 {
		if cap(m.qbuf) < len(samples) {
			m.qbuf = make([]float64, len(samples))
		}
		q := m.qbuf[:len(samples)]
		for i, x := range samples {
			q[i] = dsp.QuantizeQ15(x)
		}
		samples = q
	}
	seq0 := m.chanSeq[ch]
	m.chanSeq[ch] = seq0 + int64(len(samples))
	for _, tg := range m.byChan[ch] {
		m.deliverBlock(tg, samples, seq0, 0)
	}
	for i := 1; i < len(m.bwakes); i++ {
		for j := i; j > 0 && blockWakeLess(m.bwakes[j], m.bwakes[j-1]); j-- {
			m.bwakes[j], m.bwakes[j-1] = m.bwakes[j-1], m.bwakes[j]
		}
	}
	return m.bwakes
}

// blockWakeLess orders merged block wakes by (offset, plan).
func blockWakeLess(a, b TaggedBlockWake) bool {
	if a.Off != b.Off {
		return a.Off < b.Off
	}
	return a.Plan < b.Plan
}

func (m *Merged) deliver(tg target, v Value) {
	node := &m.nodes[tg.node]
	m.work = m.work.Add(node.cost)
	out, ok := node.inst.Push(tg.port, v)
	if m.stageStats != nil {
		m.stageStats[tg.node].Record(node.cost.FloatOps, node.cost.IntOps, ok)
	}
	if !ok {
		return
	}
	m.appendWakes(node, out)
	for _, next := range node.fanout {
		m.deliver(next, out)
	}
}

// appendWakes records the node's wakes (one per plan it feeds OUT for) at
// the current block offset, snapping values onto the Q15 grid in
// fixed-point mode.
func (m *Merged) appendWakes(node *mergedNode, out Value) {
	if len(node.outPlans) == 0 {
		return
	}
	val := out.Scalar
	if m.prec == Q15 {
		val = dsp.QuantizeQ15(val)
	}
	for _, pi := range node.outPlans {
		m.bwakes = append(m.bwakes, TaggedBlockWake{
			Off: m.off,
			TaggedWake: TaggedWake{
				Plan:      pi,
				WakeEvent: WakeEvent{NodeID: node.planID, Value: val, Seq: out.Seq},
			},
		})
	}
}

// deliverBlock pushes a block into one merged node port; see
// Machine.deliverBlock for the dispatch contract.
func (m *Merged) deliverBlock(tg target, src []float64, seq0 int64, off0 int) {
	node := &m.nodes[tg.node]
	switch inst := node.inst.(type) {
	case blockConsumer:
		base := 0
		for base < len(src) {
			n, out, ok := inst.consumeBlock(src[base:])
			m.work = m.work.Add(node.cost.Scale(float64(n)))
			if m.stageStats != nil {
				var em int64
				if ok {
					em = 1
				}
				m.stageStats[tg.node].RecordBlock(node.cost.FloatOps, node.cost.IntOps, int64(n), em)
			}
			base += n
			if !ok {
				continue
			}
			m.off = off0 + base - 1
			m.appendWakes(node, out)
			for _, next := range node.fanout {
				m.deliver(next, out)
			}
		}
	case blockMapper:
		out, skip := inst.pushBlock(src)
		m.work = m.work.Add(node.cost.Scale(float64(len(src))))
		if m.stageStats != nil {
			m.stageStats[tg.node].RecordBlock(node.cost.FloatOps, node.cost.IntOps, int64(len(src)), int64(len(out)))
		}
		if len(out) == 0 {
			return
		}
		if len(node.outPlans) > 0 {
			for j, y := range out {
				m.off = off0 + skip + j
				m.appendWakes(node, Value{Seq: seq0 + int64(skip+j), Scalar: y})
			}
		}
		for _, next := range node.fanout {
			m.deliverBlock(next, out, seq0+int64(skip), off0+skip)
		}
	default:
		for i, x := range src {
			m.off = off0 + i
			m.deliver(tg, Value{Seq: seq0 + int64(i), Scalar: x})
		}
	}
}

// Work returns the cumulative executed work across all merged plans.
func (m *Merged) Work() core.CostEstimate { return m.work }

// ResetWork zeroes the work meter.
func (m *Merged) ResetWork() { m.work = core.CostEstimate{} }

// Reset restores every instance and sequence counter.
func (m *Merged) Reset() {
	for i := range m.nodes {
		m.nodes[i].inst.Reset()
	}
	for ch := range m.chanSeq {
		delete(m.chanSeq, ch)
	}
}

// MergedDemand statically computes the deduplicated resource demand of a
// plan set: operations per second and instance memory after the DAG
// compile pass's sharing, folding and fusion. The hub uses it to place
// condition sets more tightly than the per-plan sums allow.
func MergedDemand(plans ...*core.Plan) (floatOpsPerSec, intOpsPerSec float64, memoryBytes int) {
	return ir.Demand(ir.CompileOptions{}, plans...)
}

// DemandAccumulator computes merged demand incrementally: Marginal prices
// a plan against everything already committed (shared nodes cost zero),
// and Commit adds it. An admission controller trying plans one at a time
// pays O(plan nodes) per step instead of re-merging the whole set. It is
// a thin veneer over the DAG analysis (package ir), which is also where
// the interior-subgraph sharing and fold/fusion billing rules live.
type DemandAccumulator struct {
	acc *ir.DemandAccumulator
}

// NewDemandAccumulator returns an empty accumulator billing under the
// default (fully optimizing) compile options.
func NewDemandAccumulator() *DemandAccumulator {
	return &DemandAccumulator{acc: ir.NewDemandAccumulator(ir.CompileOptions{})}
}

// Marginal returns the additional demand the plan would add on top of the
// committed set, without committing it.
func (a *DemandAccumulator) Marginal(plan *core.Plan) (floatOpsPerSec, intOpsPerSec float64, memoryBytes int) {
	return a.acc.Marginal(plan)
}

// Commit adds the plan to the committed set and returns the accumulated
// totals, which always equal MergedDemand over every committed plan.
func (a *DemandAccumulator) Commit(plan *core.Plan) (floatOpsPerSec, intOpsPerSec float64, memoryBytes int) {
	return a.acc.Commit(plan)
}

// Total returns the committed set's merged demand.
func (a *DemandAccumulator) Total() (floatOpsPerSec, intOpsPerSec float64, memoryBytes int) {
	return a.acc.Total()
}

// StageDemand is the deduplicated static demand attributed to one
// algorithm kind across a merged plan set.
type StageDemand struct {
	Kind core.AlgorithmKind
	// Nodes counts the distinct merged instances of this kind (shared
	// subgraphs count once, exactly as the merged machine executes them).
	Nodes          int
	FloatOpsPerSec float64
	IntOpsPerSec   float64
	MemoryBytes    int
}

// MergedDemandByStage breaks MergedDemand down by algorithm kind: the same
// deduplication, attributed per stage so schedulers and reports can show
// where a condition set's budget goes. Stages are kind-sorted, and the
// per-stage columns sum to exactly what MergedDemand returns for the same
// plans.
func MergedDemandByStage(plans ...*core.Plan) []StageDemand {
	kinds := ir.DemandByKind(ir.CompileOptions{}, plans...)
	out := make([]StageDemand, len(kinds))
	for i, kd := range kinds {
		out[i] = StageDemand{
			Kind:           kd.Kind,
			Nodes:          kd.Nodes,
			FloatOpsPerSec: kd.FloatOpsPerSec,
			IntOpsPerSec:   kd.IntOpsPerSec,
			MemoryBytes:    kd.MemoryBytes,
		}
	}
	return out
}
