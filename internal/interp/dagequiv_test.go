package interp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"sidewinder/internal/apps"
	"sidewinder/internal/core"
	"sidewinder/internal/ir"
	"sidewinder/internal/testutil"
	"sidewinder/internal/tracegen"
)

// The DAG compile pass (package ir) is allowed to restructure a plan —
// deduplicate identical subgraphs, fold redundant stages, fuse threshold
// chains — but never to change what the hub observes: the wake sequence
// must be identical sample for sample, value for value (as float64 bits),
// in both precisions and on both dispatch paths. This file is the
// exhaustive pin: every catalog application, float64 and q15, PushSample
// and PushBlock at several chunkings, linear plan vs DAG plan.

// dagWake is one wake in absolute sample position. NodeID is deliberately
// excluded: the compile pass renumbers nodes when it eliminates
// duplicates, which shifts the OUT node's ID without changing behavior.
type dagWake struct {
	At    int
	Value uint64 // float64 bits: equivalence must be exact
	Seq   int64
}

// dagChunkings are the block sizes the equivalence matrix sweeps. They
// straddle the catalog's window sizes: single-sample, a prime that
// misaligns every boundary, and two powers of two.
var dagChunkings = []int{1, 7, 64, 256}

// dagTestChannels synthesizes one trace per modality and returns the
// merged per-channel sample streams. The robot trace covers the three
// accelerometer channels, the audio trace the microphone.
func dagTestChannels(t *testing.T) map[core.SensorChannel][]float64 {
	t.Helper()
	robot, err := tracegen.Robot(tracegen.RobotConfig{Seed: 5, Duration: 2 * time.Minute, IdleFraction: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	audio, err := tracegen.Audio(tracegen.NewAudioConfig(9, 15*time.Second, tracegen.CoffeeShopAudio))
	if err != nil {
		t.Fatal(err)
	}
	chans := make(map[core.SensorChannel][]float64)
	for ch, sig := range robot.Channels {
		chans[ch] = sig
	}
	for ch, sig := range audio.Channels {
		chans[ch] = sig
	}
	return chans
}

// feedPerSample drives a machine sample by sample, interleaving the
// plan's channels in order at each index (channels may have different
// lengths; shorter ones simply stop contributing).
func feedPerSample(m *Machine, order []core.SensorChannel, chans map[core.SensorChannel][]float64) []dagWake {
	n := 0
	for _, ch := range order {
		if len(chans[ch]) > n {
			n = len(chans[ch])
		}
	}
	var out []dagWake
	for i := 0; i < n; i++ {
		for _, ch := range order {
			sig := chans[ch]
			if i >= len(sig) {
				continue
			}
			for _, w := range m.PushSample(ch, sig[i]) {
				out = append(out, dagWake{i, math.Float64bits(w.Value), w.Seq})
			}
		}
	}
	return out
}

// feedBlocked drives a machine through PushBlock in fixed-size chunks.
// Within a chunk, wakes from different channels are re-merged by absolute
// offset (stable in channel order) to reproduce the per-sample interleave.
func feedBlocked(m *Machine, order []core.SensorChannel, chans map[core.SensorChannel][]float64, chunk int) []dagWake {
	n := 0
	for _, ch := range order {
		if len(chans[ch]) > n {
			n = len(chans[ch])
		}
	}
	var out []dagWake
	for base := 0; base < n; base += chunk {
		var pend []dagWake
		for _, ch := range order {
			sig := chans[ch]
			if base >= len(sig) {
				continue
			}
			end := base + chunk
			if end > len(sig) {
				end = len(sig)
			}
			for _, w := range m.PushBlock(ch, sig[base:end]) {
				pend = append(pend, dagWake{base + w.Off, math.Float64bits(w.Value), w.Seq})
			}
		}
		for i := 1; i < len(pend); i++ {
			for j := i; j > 0 && pend[j].At < pend[j-1].At; j-- {
				pend[j], pend[j-1] = pend[j-1], pend[j]
			}
		}
		out = append(out, pend...)
	}
	return out
}

func compareDagWakes(t *testing.T, label string, want, got []dagWake) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: wake count %d vs %d", label, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: wake %d: %+v vs %+v", label, i, want[i], got[i])
		}
	}
}

// TestDAGLinearEquivalence is the headline pin: for every catalog
// application, in both precisions and on both dispatch paths at several
// chunkings, the DAG-compiled plan produces exactly the wake sequence of
// the linear plan — and exactly its work meter, with duplicated subgraphs
// metered once via the signature-sharing merged interpreter as the
// reference for the apps where CSE actually eliminates nodes.
func TestDAGLinearEquivalence(t *testing.T) {
	cat := core.DefaultCatalog()
	chans := dagTestChannels(t)

	// The pass must demonstrably fire somewhere in the catalog, or this
	// whole file pins a no-op.
	sawElimination := false

	for _, app := range apps.All() {
		plan, err := app.Wake.Validate(cat)
		if err != nil {
			t.Fatal(err)
		}
		compiled, stats, err := ir.CompilePlan(cat, ir.CompileOptions{}, plan)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Eliminated() > 0 {
			sawElimination = true
		}
		order := plan.Channels
		for _, prec := range []Precision{Float64, Q15} {
			label := app.Name + "/" + prec.String()

			linear, err := NewPrecision(plan, prec)
			if err != nil {
				t.Fatal(err)
			}
			want := feedPerSample(linear, order, chans)

			dag, err := NewPrecision(compiled, prec)
			if err != nil {
				t.Fatal(err)
			}
			got := feedPerSample(dag, order, chans)
			compareDagWakes(t, label+"/per-sample", want, got)

			// Work meter: with nothing eliminated the DAG machine must
			// meter bit-identically to the linear one. With duplicates
			// eliminated it must meter bit-identically to the
			// signature-sharing merged interpreter over the same plan —
			// the pre-DAG shared-execution reference.
			if stats.Eliminated() == 0 {
				if linear.Work() != dag.Work() {
					t.Fatalf("%s: work meter diverged with no elimination: %+v vs %+v",
						label, linear.Work(), dag.Work())
				}
			} else {
				ref, err := NewMergedPrecision(prec, plan)
				if err != nil {
					t.Fatal(err)
				}
				var refWakes []dagWake
				for i, v := range chans[order[0]] {
					for _, w := range ref.PushSample(order[0], v) {
						refWakes = append(refWakes, dagWake{i, math.Float64bits(w.Value), w.Seq})
					}
				}
				if len(order) != 1 {
					t.Fatalf("%s: eliminated>0 app expected single-channel", label)
				}
				compareDagWakes(t, label+"/merged-ref", refWakes, got)
				if ref.Work() != dag.Work() {
					t.Fatalf("%s: work meter diverged from shared reference: %+v vs %+v",
						label, ref.Work(), dag.Work())
				}
			}

			// Block dispatch: every chunking reproduces the per-sample
			// wake sequence and work meter of the DAG machine.
			for _, chunk := range dagChunkings {
				bm, err := NewPrecision(compiled, prec)
				if err != nil {
					t.Fatal(err)
				}
				bw := feedBlocked(bm, order, chans, chunk)
				compareDagWakes(t, label+"/block", want, bw)
				if bm.Work() != dag.Work() {
					t.Fatalf("%s chunk %d: block work meter diverged: %+v vs %+v",
						label, chunk, bm.Work(), dag.Work())
				}
			}
		}
	}
	if !sawElimination {
		t.Fatal("no catalog app exercised CSE: the equivalence matrix pins a no-op compile pass")
	}
}

// taggedDagWake attributes a wake to its source plan for the cross-app
// matrix. NodeID is excluded for the same renumbering reason as dagWake.
type taggedDagWake struct {
	At    int
	Plan  int
	Value uint64
	Seq   int64
}

// TestDAGCrossAppEquivalence pins the multi-tenant form: all six catalog
// apps compiled into one shared DAG execute exactly like the
// signature-sharing merged interpreter — same tagged wake sequence, same
// work meter — in both precisions, per-sample and blocked. It also pins
// that cross-app CSE eliminates strictly more than the apps' intra-app
// duplicates alone.
func TestDAGCrossAppEquivalence(t *testing.T) {
	cat := core.DefaultCatalog()
	chans := dagTestChannels(t)

	var plans []*core.Plan
	perAppEliminated := 0
	for _, app := range apps.All() {
		plan, err := app.Wake.Validate(cat)
		if err != nil {
			t.Fatal(err)
		}
		plan.Name = app.Name
		plans = append(plans, plan)
		_, stats, err := ir.CompilePlan(cat, ir.CompileOptions{}, plan)
		if err != nil {
			t.Fatal(err)
		}
		perAppEliminated += stats.Eliminated()
	}
	sp, err := ir.CompilePlans(cat, ir.CompileOptions{}, plans...)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Stats.Eliminated() <= perAppEliminated {
		t.Fatalf("cross-app CSE eliminated %d nodes, want more than the intra-app total %d",
			sp.Stats.Eliminated(), perAppEliminated)
	}

	// Union of channels in first-use order across the plans.
	var order []core.SensorChannel
	seen := map[core.SensorChannel]bool{}
	for _, p := range plans {
		for _, ch := range p.Channels {
			if !seen[ch] {
				seen[ch] = true
				order = append(order, ch)
			}
		}
	}
	n := 0
	for _, ch := range order {
		if len(chans[ch]) > n {
			n = len(chans[ch])
		}
	}

	for _, prec := range []Precision{Float64, Q15} {
		ref, err := NewMergedPrecision(prec, plans...)
		if err != nil {
			t.Fatal(err)
		}
		shared, err := NewShared(prec, sp)
		if err != nil {
			t.Fatal(err)
		}

		collect := func(m *Merged) []taggedDagWake {
			var out []taggedDagWake
			for i := 0; i < n; i++ {
				for _, ch := range order {
					sig := chans[ch]
					if i >= len(sig) {
						continue
					}
					for _, w := range m.PushSample(ch, sig[i]) {
						out = append(out, taggedDagWake{i, w.Plan, math.Float64bits(w.Value), w.Seq})
					}
				}
			}
			return out
		}
		want := collect(ref)
		got := collect(shared)
		if len(want) == 0 {
			t.Fatalf("%s: no wakes at all — traces too quiet to pin anything", prec)
		}
		if len(want) != len(got) {
			t.Fatalf("%s: tagged wake count %d vs %d", prec, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s: tagged wake %d: %+v vs %+v", prec, i, want[i], got[i])
			}
		}
		if ref.Work() != shared.Work() {
			t.Fatalf("%s: work meter diverged: %+v vs %+v", prec, ref.Work(), shared.Work())
		}

		// Blocked dispatch, both machines driven by the identical chunk
		// pattern, must agree wake for wake as well.
		for _, chunk := range dagChunkings {
			refB, err := NewMergedPrecision(prec, plans...)
			if err != nil {
				t.Fatal(err)
			}
			sharedB, err := NewShared(prec, sp)
			if err != nil {
				t.Fatal(err)
			}
			collectB := func(m *Merged) []taggedDagWake {
				var out []taggedDagWake
				for base := 0; base < n; base += chunk {
					for _, ch := range order {
						sig := chans[ch]
						if base >= len(sig) {
							continue
						}
						end := base + chunk
						if end > len(sig) {
							end = len(sig)
						}
						for _, w := range m.PushBlock(ch, sig[base:end]) {
							out = append(out, taggedDagWake{base + w.Off, w.Plan, math.Float64bits(w.Value), w.Seq})
						}
					}
				}
				return out
			}
			bw := collectB(refB)
			bg := collectB(sharedB)
			if len(bw) != len(bg) {
				t.Fatalf("%s chunk %d: tagged wake count %d vs %d", prec, chunk, len(bw), len(bg))
			}
			for i := range bw {
				if bw[i] != bg[i] {
					t.Fatalf("%s chunk %d: tagged wake %d: %+v vs %+v", prec, chunk, i, bw[i], bg[i])
				}
			}
			if refB.Work() != sharedB.Work() {
				t.Fatalf("%s chunk %d: block work meter diverged", prec, chunk)
			}
		}
	}
}

// TestRandomPipelinesDAGEquivalence extends the catalog matrix to the
// generated pipeline space: for random valid conditions, the DAG-compiled
// plan must produce the linear plan's exact wake sequence on random data,
// and never more metered work.
func TestRandomPipelinesDAGEquivalence(t *testing.T) {
	cat := core.DefaultCatalog()
	rng := rand.New(rand.NewSource(20260808))
	sawElimination := false
	for i := 0; i < 150; i++ {
		p := testutil.RandomPipeline(rng)
		plan, err := p.Validate(cat)
		if err != nil {
			t.Fatalf("pipeline %d: %v", i, err)
		}
		compiled, stats, err := ir.CompilePlan(cat, ir.CompileOptions{}, plan)
		if err != nil {
			t.Fatalf("pipeline %d: compile: %v", i, err)
		}
		if stats.Eliminated() > 0 {
			sawElimination = true
		}
		sig := make([]float64, 700)
		for s := range sig {
			sig[s] = rng.NormFloat64() * 10
		}
		ch := plan.Channels[0]
		linear, err := New(plan)
		if err != nil {
			t.Fatalf("pipeline %d: %v", i, err)
		}
		dag, err := New(compiled)
		if err != nil {
			t.Fatalf("pipeline %d: compiled machine: %v", i, err)
		}
		var want, got []dagWake
		for s, v := range sig {
			for _, w := range linear.PushSample(ch, v) {
				want = append(want, dagWake{s, math.Float64bits(w.Value), w.Seq})
			}
			for _, w := range dag.PushSample(ch, v) {
				got = append(got, dagWake{s, math.Float64bits(w.Value), w.Seq})
			}
		}
		compareDagWakes(t, fmt.Sprintf("pipeline %d (%s)", i, p.Name()), want, got)
		lw, dw := linear.Work(), dag.Work()
		if dw.FloatOps > lw.FloatOps+1e-9 || dw.IntOps > lw.IntOps+1e-9 {
			t.Fatalf("pipeline %d: DAG work %+v exceeds linear %+v", i, dw, lw)
		}
		if stats.Eliminated() == 0 && (lw != dw) {
			t.Fatalf("pipeline %d: work diverged with nothing eliminated: %+v vs %+v", i, lw, dw)
		}
	}
	if !sawElimination {
		t.Fatal("no generated pipeline exercised the compile pass's rewrites")
	}
}
