package interp

import (
	"fmt"
	"math"

	"sidewinder/internal/core"
	"sidewinder/internal/dsp"
)

// newInstance constructs the runtime state for one plan node, mirroring the
// paper's per-algorithm data structures (§3.6): the runtime "allocates
// memory for each algorithm in the configuration".
func newInstance(n *core.PlanNode) (instance, error) {
	p := n.Params
	switch n.Kind {
	case core.KindWindow:
		size := p.Int("size")
		step := p.Int("step")
		if step == 0 {
			step = size
		}
		shape, err := dsp.ParseWindowShape(p.Str("shape"))
		if err != nil {
			return nil, err
		}
		w, err := dsp.NewWindower(size, step, shape)
		if err != nil {
			return nil, err
		}
		return &windowInst{w: w}, nil

	case core.KindFFT:
		return &fftInst{}, nil
	case core.KindIFFT:
		return &ifftInst{}, nil
	case core.KindSpectralMag:
		return &spectralMagInst{}, nil

	case core.KindMovingAvg:
		ma, err := dsp.NewMovingAverager(p.Int("size"))
		if err != nil {
			return nil, err
		}
		return &scalarFilterInst{f: ma}, nil
	case core.KindEMA:
		ema, err := dsp.NewEMA(p.Float("alpha"))
		if err != nil {
			return nil, err
		}
		return &scalarFilterInst{f: ema}, nil

	case core.KindIIRLowPass, core.KindIIRHighPass:
		var bq *dsp.Biquad
		var err error
		if n.Kind == core.KindIIRLowPass {
			bq, err = dsp.NewLowPassBiquad(p.Float("cutoff"), p.Float("rate"))
		} else {
			bq, err = dsp.NewHighPassBiquad(p.Float("cutoff"), p.Float("rate"))
		}
		if err != nil {
			return nil, err
		}
		return &scalarFilterInst{f: bq}, nil

	case core.KindGoertzelBank:
		bank, err := dsp.NewGoertzelBank(
			p.Float("bandLow"), p.Float("bandHigh"), p.Float("rate"),
			p.Int("block"), p.Int("detectors"))
		if err != nil {
			return nil, err
		}
		return &goertzelInst{bank: bank}, nil

	case core.KindLowPass, core.KindHighPass:
		kind := dsp.LowPass
		if n.Kind == core.KindHighPass {
			kind = dsp.HighPass
		}
		rate := n.Rate // per-sample invocation rate equals the input sample rate
		bf, err := dsp.NewBlockFilter(kind, p.Float("cutoff"), rate, p.Int("block"))
		if err != nil {
			return nil, err
		}
		return &blockFilterInst{f: bf}, nil

	case core.KindVectorMagnitude:
		return newJoinInst(len(n.Inputs), func(vals []float64) (float64, bool) {
			return dsp.VectorMagnitude(vals...), true
		}), nil
	case core.KindRatio:
		return newJoinInst(len(n.Inputs), func(vals []float64) (float64, bool) {
			if vals[1] == 0 {
				return 0, false
			}
			return vals[0] / vals[1], true
		}), nil
	case core.KindAnd:
		return newJoinInst(len(n.Inputs), func(vals []float64) (float64, bool) {
			return dsp.Min(vals), true
		}), nil

	case core.KindZCR:
		return vectorFeatureInst(func(win []float64) (float64, bool) {
			return dsp.ZeroCrossingRate(win), true
		}), nil
	case core.KindZCRVariance:
		k := p.Int("subwindows")
		var rates []float64 // per-instance scratch for the sub-window rates
		if k >= 2 {
			rates = make([]float64, k)
		}
		return vectorFeatureInst(func(win []float64) (float64, bool) {
			return zcrVariance(rates, win, k)
		}), nil
	case core.KindStat:
		fn, err := statFunc(p.Str("op"))
		if err != nil {
			return nil, err
		}
		return vectorFeatureInst(func(win []float64) (float64, bool) {
			return fn(win), true
		}), nil
	case core.KindDominantFreq:
		return vectorFeatureInst(func(mags []float64) (float64, bool) {
			return dominantMag(mags), true
		}), nil
	case core.KindTonality:
		lo, hi, rate := p.Float("bandLow"), p.Float("bandHigh"), p.Float("rate")
		return vectorFeatureInst(func(mags []float64) (float64, bool) {
			return tonality(mags, lo, hi, rate), true
		}), nil

	case core.KindDelta:
		return &deltaInst{}, nil
	case core.KindAbs:
		return &absInst{}, nil

	case core.KindMinThreshold:
		return &thresholdInst{gate: dsp.NewMinThreshold(p.Float("min")), sustain: p.Int("sustain")}, nil
	case core.KindMaxThreshold:
		return &thresholdInst{gate: dsp.NewMaxThreshold(p.Float("max")), sustain: p.Int("sustain")}, nil
	case core.KindBandThreshold:
		gate, err := dsp.NewBandThreshold(p.Float("min"), p.Float("max"))
		if err != nil {
			return nil, err
		}
		return &thresholdInst{gate: gate, sustain: p.Int("sustain")}, nil
	}
	return nil, fmt.Errorf("no runtime implementation for algorithm %q", n.Kind)
}

// --- windowing -----------------------------------------------------------

type windowInst struct {
	w   *dsp.Windower
	seq int64
}

func (i *windowInst) Push(_ int, v Value) (Value, bool) {
	win, ok := i.w.Push(v.Scalar)
	if !ok {
		return Value{}, false
	}
	out := Value{Seq: i.seq, Vector: win}
	i.seq++
	return out, true
}

func (i *windowInst) Reset() { i.w.Reset(); i.seq = 0 }

// --- transforms ----------------------------------------------------------

// Vector-emitting instances own their output buffers and reuse them across
// pushes: a Vector is valid only while the delivery cascade for the sample
// that produced it is running, and no instance may mutate an input vector
// or retain a reference past its Push call. This keeps the per-sample path
// allocation-free without copying at every edge; instances stay race-free
// because each machine owns its instances.

type fftInst struct {
	spec []complex128
	out  []float64
}

func (i *fftInst) Push(_ int, v Value) (Value, bool) {
	spec, err := dsp.FFTRealInto(i.spec, v.Vector)
	i.spec = spec
	if err != nil || len(spec) == 0 {
		return Value{}, false
	}
	n := 2 * len(spec)
	if cap(i.out) < n {
		i.out = make([]float64, n)
	}
	out := i.out[:n]
	for k, c := range spec {
		out[2*k] = real(c)
		out[2*k+1] = imag(c)
	}
	return Value{Seq: v.Seq, Vector: out}, true
}

func (i *fftInst) Reset() {}

type ifftInst struct {
	buf []complex128
	out []float64
}

func (i *ifftInst) Push(_ int, v Value) (Value, bool) {
	n := len(v.Vector) / 2
	if n == 0 || !dsp.IsPowerOfTwo(n) {
		return Value{}, false
	}
	if cap(i.buf) < n {
		i.buf = make([]complex128, n)
	}
	buf := i.buf[:n]
	for k := range buf {
		buf[k] = complex(v.Vector[2*k], v.Vector[2*k+1])
	}
	if err := dsp.IFFT(buf); err != nil {
		return Value{}, false
	}
	if cap(i.out) < n {
		i.out = make([]float64, n)
	}
	out := i.out[:n]
	for k, c := range buf {
		out[k] = real(c)
	}
	return Value{Seq: v.Seq, Vector: out}, true
}

func (i *ifftInst) Reset() {}

type spectralMagInst struct {
	out []float64
}

func (i *spectralMagInst) Push(_ int, v Value) (Value, bool) {
	n := len(v.Vector) / 2
	if cap(i.out) < n {
		i.out = make([]float64, n)
	}
	out := i.out[:n]
	for k := 0; k < n; k++ {
		out[k] = math.Hypot(v.Vector[2*k], v.Vector[2*k+1])
	}
	return Value{Seq: v.Seq, Vector: out}, true
}

func (i *spectralMagInst) Reset() {}

// --- scalar filters ------------------------------------------------------

// scalarFilter is the common shape of dsp.MovingAverager and dsp.EMA.
type scalarFilter interface {
	Push(float64) (float64, bool)
	Reset()
}

type scalarFilterInst struct{ f scalarFilter }

func (i *scalarFilterInst) Push(_ int, v Value) (Value, bool) {
	out, ok := i.f.Push(v.Scalar)
	if !ok {
		return Value{}, false
	}
	return Value{Seq: v.Seq, Scalar: out}, true
}

func (i *scalarFilterInst) Reset() { i.f.Reset() }

type blockFilterInst struct {
	f   *dsp.BlockFilter
	seq int64
}

func (i *blockFilterInst) Push(_ int, v Value) (Value, bool) {
	block, ok := i.f.Push(v.Scalar)
	if !ok {
		return Value{}, false
	}
	out := Value{Seq: i.seq, Vector: block}
	i.seq++
	return out, true
}

func (i *blockFilterInst) Reset() { i.f.Reset(); i.seq = 0 }

// goertzelInst adapts the Goertzel bank: block-emitting, so it opens a
// fresh sequence domain like windowing does.
type goertzelInst struct {
	bank *dsp.GoertzelBank
	seq  int64
}

func (i *goertzelInst) Push(_ int, v Value) (Value, bool) {
	score, ok := i.bank.Push(v.Scalar)
	if !ok {
		return Value{}, false
	}
	out := Value{Seq: i.seq, Scalar: score}
	i.seq++
	return out, true
}

func (i *goertzelInst) Reset() { i.bank.Reset(); i.seq = 0 }

// --- vector features -----------------------------------------------------

// featureFn reduces one window/spectrum to a scalar feature.
type featureFn func([]float64) (float64, bool)

type featureInst struct{ fn featureFn }

func vectorFeatureInst(fn featureFn) instance { return &featureInst{fn: fn} }

func (i *featureInst) Push(_ int, v Value) (Value, bool) {
	out, ok := i.fn(v.Vector)
	if !ok {
		return Value{}, false
	}
	return Value{Seq: v.Seq, Scalar: out}, true
}

func (i *featureInst) Reset() {}

// statFunc maps a stat op name to its implementation.
func statFunc(op string) (func([]float64) float64, error) {
	switch op {
	case "mean":
		return dsp.Mean, nil
	case "variance":
		return dsp.Variance, nil
	case "stddev":
		return dsp.StdDev, nil
	case "min":
		return dsp.Min, nil
	case "max":
		return dsp.Max, nil
	case "range":
		return dsp.Range, nil
	case "rms":
		return dsp.RMS, nil
	case "median":
		return dsp.Median, nil
	case "meanAbs":
		return dsp.MeanAbs, nil
	case "energy":
		return dsp.Energy, nil
	}
	return nil, fmt.Errorf("unknown stat op %q", op)
}

// zcrVariance splits win into k equal sub-windows and returns the variance
// of their zero-crossing rates (paper §3.7.2, Music Journal). rates is
// caller-owned scratch of length k.
func zcrVariance(rates, win []float64, k int) (float64, bool) {
	if k < 2 || len(win) < k {
		return 0, false
	}
	sub := len(win) / k
	for i := 0; i < k; i++ {
		rates[i] = dsp.ZeroCrossingRate(win[i*sub : (i+1)*sub])
	}
	return dsp.Variance(rates), true
}

// dominantMag returns the largest non-DC magnitude in the first half of a
// magnitude spectrum.
func dominantMag(mags []float64) float64 {
	best := 0.0
	for k := 1; k <= len(mags)/2; k++ {
		if mags[k] > best {
			best = mags[k]
		}
	}
	return best
}

// tonality returns the peak-to-mean ratio of the non-DC spectrum when the
// dominant bin's frequency falls inside [lo, hi] Hz, and 0 otherwise.
func tonality(mags []float64, lo, hi, rate float64) float64 {
	n := len(mags)
	if n < 4 {
		return 0
	}
	best, bestK := 0.0, 0
	var sum float64
	for k := 1; k <= n/2; k++ {
		sum += mags[k]
		if mags[k] > best {
			best, bestK = mags[k], k
		}
	}
	mean := sum / float64(n/2)
	if mean == 0 || bestK == 0 {
		return 0
	}
	freq := dsp.BinFrequency(bestK, n, rate)
	if freq < lo || freq > hi {
		return 0
	}
	return best / mean
}

// --- glue ----------------------------------------------------------------

type deltaInst struct {
	prev   float64
	primed bool
}

func (i *deltaInst) Push(_ int, v Value) (Value, bool) {
	if !i.primed {
		i.prev, i.primed = v.Scalar, true
		return Value{}, false
	}
	d := v.Scalar - i.prev
	i.prev = v.Scalar
	return Value{Seq: v.Seq, Scalar: d}, true
}

func (i *deltaInst) Reset() { i.prev, i.primed = 0, false }

type absInst struct{}

func (absInst) Push(_ int, v Value) (Value, bool) {
	return Value{Seq: v.Seq, Scalar: math.Abs(v.Scalar)}, true
}

func (absInst) Reset() {}

// --- aggregation (branch join) -------------------------------------------

// joinInst synchronizes N input ports on emission sequence numbers: when
// every port has delivered a value with the same Seq, the combine function
// runs over the port values in port order. Stale pending entries (sequence
// numbers that can no longer complete because every port has advanced past
// them) are pruned to bound memory, as a microcontroller implementation
// must.
type joinInst struct {
	ports   int
	combine func([]float64) (float64, bool)
	pending map[int64]*joinSlot
	latest  []int64 // highest Seq seen per port
	primed  []bool
	free    []*joinSlot // recycled slots; steady state allocates none
}

type joinSlot struct {
	vals  []float64
	have  []bool
	count int
}

func newJoinInst(ports int, combine func([]float64) (float64, bool)) *joinInst {
	return &joinInst{
		ports:   ports,
		combine: combine,
		pending: make(map[int64]*joinSlot),
		latest:  make([]int64, ports),
		primed:  make([]bool, ports),
	}
}

func (i *joinInst) Push(port int, v Value) (Value, bool) {
	i.latest[port] = v.Seq
	i.primed[port] = true
	slot := i.pending[v.Seq]
	if slot == nil {
		slot = i.newSlot()
		i.pending[v.Seq] = slot
	}
	if !slot.have[port] {
		slot.have[port] = true
		slot.count++
	}
	slot.vals[port] = v.Scalar

	i.prune()

	if slot.count < i.ports {
		return Value{}, false
	}
	delete(i.pending, v.Seq)
	out, ok := i.combine(slot.vals)
	i.recycle(slot)
	if !ok {
		return Value{}, false
	}
	return Value{Seq: v.Seq, Scalar: out}, true
}

// newSlot pops a recycled slot or allocates the pool's first few.
func (i *joinInst) newSlot() *joinSlot {
	if n := len(i.free); n > 0 {
		slot := i.free[n-1]
		i.free = i.free[:n-1]
		return slot
	}
	return &joinSlot{vals: make([]float64, i.ports), have: make([]bool, i.ports)}
}

// recycle clears a slot and returns it to the pool.
func (i *joinInst) recycle(slot *joinSlot) {
	for p := range slot.have {
		slot.have[p] = false
	}
	slot.count = 0
	i.free = append(i.free, slot)
}

// prune drops pending sequences older than the slowest port's progress:
// emissions are monotone per port, so such sequences can never complete.
func (i *joinInst) prune() {
	min := int64(math.MaxInt64)
	for p := 0; p < i.ports; p++ {
		if !i.primed[p] {
			return // a port has produced nothing yet; nothing is provably stale
		}
		if i.latest[p] < min {
			min = i.latest[p]
		}
	}
	for seq := range i.pending {
		if seq < min {
			i.recycle(i.pending[seq])
			delete(i.pending, seq)
		}
	}
}

func (i *joinInst) Reset() {
	for seq, slot := range i.pending {
		i.recycle(slot)
		delete(i.pending, seq)
	}
	for p := range i.latest {
		i.latest[p] = 0
		i.primed[p] = false
	}
}

// --- admission control ---------------------------------------------------

// thresholdInst gates values and implements the sustain extension: the
// condition must hold for `sustain` consecutive emissions before values
// pass (used for the paper's "pitched sounds lasting longer than 650 ms").
type thresholdInst struct {
	gate    *dsp.Threshold
	sustain int
	run     int
}

func (i *thresholdInst) Push(_ int, v Value) (Value, bool) {
	if !i.gate.Admits(v.Scalar) {
		i.run = 0
		return Value{}, false
	}
	i.run++
	if i.run < i.sustain {
		return Value{}, false
	}
	return v, true
}

func (i *thresholdInst) Reset() { i.run = 0 }
