package interp

import (
	"fmt"
	"math"

	"sidewinder/internal/core"
	"sidewinder/internal/dsp"
)

// newInstance constructs the runtime state for one plan node, mirroring the
// paper's per-algorithm data structures (§3.6): the runtime "allocates
// memory for each algorithm in the configuration". In Q15 mode the
// stateful scalar kernels, thresholds, and window statistics get their
// fixed-point twins; spectral stages (FFT chain, tonality, dominant
// frequency) and structural glue (joins, delta, abs) stay in float64 —
// delta and abs are exact on the Q15 grid anyway, and the FFT chain is
// exactly what the fixed-point MCU does not run (Q15 low/high-pass plans
// use the streaming IIR backend instead of the FFT one).
func newInstance(n *core.PlanNode, prec Precision) (instance, error) {
	p := n.Params
	switch n.Kind {
	case core.KindWindow:
		size := p.Int("size")
		step := p.Int("step")
		if step == 0 {
			step = size
		}
		shape, err := dsp.ParseWindowShape(p.Str("shape"))
		if err != nil {
			return nil, err
		}
		w, err := dsp.NewWindower(size, step, shape)
		if err != nil {
			return nil, err
		}
		return &windowInst{w: w}, nil

	case core.KindFFT:
		return &fftInst{}, nil
	case core.KindIFFT:
		return &ifftInst{}, nil
	case core.KindSpectralMag:
		return &spectralMagInst{}, nil

	case core.KindMovingAvg:
		if prec == Q15 {
			ma, err := dsp.NewMovingAveragerQ15(p.Int("size"))
			if err != nil {
				return nil, err
			}
			return newScalarInst(ma), nil
		}
		ma, err := dsp.NewMovingAverager(p.Int("size"))
		if err != nil {
			return nil, err
		}
		return newScalarInst(ma), nil
	case core.KindEMA:
		if prec == Q15 {
			ema, err := dsp.NewEMAQ15(p.Float("alpha"))
			if err != nil {
				return nil, err
			}
			return newScalarInst(ema), nil
		}
		ema, err := dsp.NewEMA(p.Float("alpha"))
		if err != nil {
			return nil, err
		}
		return newScalarInst(ema), nil

	case core.KindIIRLowPass, core.KindIIRHighPass:
		var bq *dsp.Biquad
		var err error
		if n.Kind == core.KindIIRLowPass {
			bq, err = dsp.NewLowPassBiquad(p.Float("cutoff"), p.Float("rate"))
		} else {
			bq, err = dsp.NewHighPassBiquad(p.Float("cutoff"), p.Float("rate"))
		}
		if err != nil {
			return nil, err
		}
		if prec == Q15 {
			return newScalarInst(bq.Q15()), nil
		}
		return newScalarInst(bq), nil

	case core.KindGoertzelBank:
		bank, err := dsp.NewGoertzelBank(
			p.Float("bandLow"), p.Float("bandHigh"), p.Float("rate"),
			p.Int("block"), p.Int("detectors"))
		if err != nil {
			return nil, err
		}
		return &goertzelInst{bank: bank}, nil

	case core.KindLowPass, core.KindHighPass:
		kind := dsp.LowPass
		if n.Kind == core.KindHighPass {
			kind = dsp.HighPass
		}
		rate := n.Rate // per-sample invocation rate equals the input sample rate
		var bf *dsp.BlockFilter
		var err error
		if prec == Q15 {
			// The paper's MCU cannot run the FFT filter in real time
			// (§4); fixed-point mode uses the streaming Q15 IIR backend
			// with identical block framing instead.
			bf, err = dsp.NewIIRBlockFilterQ15(kind, p.Float("cutoff"), rate, p.Int("block"))
		} else {
			bf, err = dsp.NewBlockFilter(kind, p.Float("cutoff"), rate, p.Int("block"))
		}
		if err != nil {
			return nil, err
		}
		return &blockFilterInst{f: bf}, nil

	case core.KindDecimate:
		return &decimateInst{k: p.Int("factor")}, nil

	case core.KindVectorMagnitude:
		return newJoinInst(len(n.Inputs), func(vals []float64) (float64, bool) {
			return dsp.VectorMagnitude(vals...), true
		}), nil
	case core.KindRatio:
		return newJoinInst(len(n.Inputs), func(vals []float64) (float64, bool) {
			if vals[1] == 0 {
				return 0, false
			}
			return vals[0] / vals[1], true
		}), nil
	case core.KindAnd:
		return newJoinInst(len(n.Inputs), func(vals []float64) (float64, bool) {
			return dsp.Min(vals), true
		}), nil

	case core.KindZCR:
		if prec == Q15 {
			return q15FeatureInst(func(q []int32) (int32, bool) {
				return dsp.ZeroCrossingRateQ15(q), true
			}), nil
		}
		return vectorFeatureInst(func(win []float64) (float64, bool) {
			return dsp.ZeroCrossingRate(win), true
		}), nil
	case core.KindZCRVariance:
		k := p.Int("subwindows")
		if prec == Q15 {
			var qrates []int32 // per-instance scratch for the sub-window rates
			if k >= 2 {
				qrates = make([]int32, k)
			}
			return q15FeatureInst(func(q []int32) (int32, bool) {
				return zcrVarianceQ15(qrates, q, k)
			}), nil
		}
		var rates []float64 // per-instance scratch for the sub-window rates
		if k >= 2 {
			rates = make([]float64, k)
		}
		return vectorFeatureInst(func(win []float64) (float64, bool) {
			return zcrVariance(rates, win, k)
		}), nil
	case core.KindStat:
		if prec == Q15 {
			fn, err := statFuncQ15(p.Str("op"))
			if err != nil {
				return nil, err
			}
			return q15FeatureInst(func(q []int32) (int32, bool) {
				return fn(q), true
			}), nil
		}
		fn, err := statFunc(p.Str("op"))
		if err != nil {
			return nil, err
		}
		return vectorFeatureInst(func(win []float64) (float64, bool) {
			return fn(win), true
		}), nil
	case core.KindDominantFreq:
		return vectorFeatureInst(func(mags []float64) (float64, bool) {
			return dominantMag(mags), true
		}), nil
	case core.KindTonality:
		lo, hi, rate := p.Float("bandLow"), p.Float("bandHigh"), p.Float("rate")
		return vectorFeatureInst(func(mags []float64) (float64, bool) {
			return tonality(mags, lo, hi, rate), true
		}), nil

	case core.KindDelta:
		return &deltaInst{}, nil
	case core.KindAbs:
		return &absInst{}, nil

	case core.KindMinThreshold:
		return newThresholdInst(dsp.NewMinThreshold(p.Float("min")), p.Int("sustain"), prec), nil
	case core.KindMaxThreshold:
		return newThresholdInst(dsp.NewMaxThreshold(p.Float("max")), p.Int("sustain"), prec), nil
	case core.KindBandThreshold:
		gate, err := dsp.NewBandThreshold(p.Float("min"), p.Float("max"))
		if err != nil {
			return nil, err
		}
		return newThresholdInst(gate, p.Int("sustain"), prec), nil
	}
	return nil, fmt.Errorf("no runtime implementation for algorithm %q", n.Kind)
}

// --- windowing -----------------------------------------------------------

type windowInst struct {
	w   *dsp.Windower
	seq int64
}

func (i *windowInst) Push(_ int, v Value) (Value, bool) {
	win, ok := i.w.Push(v.Scalar)
	if !ok {
		return Value{}, false
	}
	out := Value{Seq: i.seq, Vector: win}
	i.seq++
	return out, true
}

func (i *windowInst) Reset() { i.w.Reset(); i.seq = 0 }

func (i *windowInst) consumeBlock(src []float64) (int, Value, bool) {
	n, win, ok := i.w.Consume(src)
	if !ok {
		return n, Value{}, false
	}
	out := Value{Seq: i.seq, Vector: win}
	i.seq++
	return n, out, true
}

// --- transforms ----------------------------------------------------------

// Vector-emitting instances own their output buffers and reuse them across
// pushes: a Vector is valid only while the delivery cascade for the sample
// that produced it is running, and no instance may mutate an input vector
// or retain a reference past its Push call. This keeps the per-sample path
// allocation-free without copying at every edge; instances stay race-free
// because each machine owns its instances.

type fftInst struct {
	spec []complex128
	out  []float64
}

func (i *fftInst) Push(_ int, v Value) (Value, bool) {
	spec, err := dsp.FFTRealInto(i.spec, v.Vector)
	i.spec = spec
	if err != nil || len(spec) == 0 {
		return Value{}, false
	}
	n := 2 * len(spec)
	if cap(i.out) < n {
		i.out = make([]float64, n)
	}
	out := i.out[:n]
	for k, c := range spec {
		out[2*k] = real(c)
		out[2*k+1] = imag(c)
	}
	return Value{Seq: v.Seq, Vector: out}, true
}

func (i *fftInst) Reset() {}

type ifftInst struct {
	buf []complex128
	out []float64
}

func (i *ifftInst) Push(_ int, v Value) (Value, bool) {
	n := len(v.Vector) / 2
	if n == 0 || !dsp.IsPowerOfTwo(n) {
		return Value{}, false
	}
	if cap(i.buf) < n {
		i.buf = make([]complex128, n)
	}
	buf := i.buf[:n]
	for k := range buf {
		buf[k] = complex(v.Vector[2*k], v.Vector[2*k+1])
	}
	if err := dsp.IFFT(buf); err != nil {
		return Value{}, false
	}
	if cap(i.out) < n {
		i.out = make([]float64, n)
	}
	out := i.out[:n]
	for k, c := range buf {
		out[k] = real(c)
	}
	return Value{Seq: v.Seq, Vector: out}, true
}

func (i *ifftInst) Reset() {}

type spectralMagInst struct {
	out []float64
}

func (i *spectralMagInst) Push(_ int, v Value) (Value, bool) {
	n := len(v.Vector) / 2
	if cap(i.out) < n {
		i.out = make([]float64, n)
	}
	out := i.out[:n]
	for k := 0; k < n; k++ {
		out[k] = math.Hypot(v.Vector[2*k], v.Vector[2*k+1])
	}
	return Value{Seq: v.Seq, Vector: out}, true
}

func (i *spectralMagInst) Reset() {}

// --- scalar filters ------------------------------------------------------

// scalarFilter is the common shape of dsp.MovingAverager and dsp.EMA.
type scalarFilter interface {
	Push(float64) (float64, bool)
	Reset()
}

// blockScalarFilter is a scalar filter with a block fast path: PushBlock
// appends emissions to dst[:0] and reports the leading-sample skip, with
// the dense-suffix guarantee blockMapper requires.
type blockScalarFilter interface {
	PushBlock(dst, src []float64) (out []float64, skip int)
}

type scalarFilterInst struct{ f scalarFilter }

func (i *scalarFilterInst) Push(_ int, v Value) (Value, bool) {
	out, ok := i.f.Push(v.Scalar)
	if !ok {
		return Value{}, false
	}
	return Value{Seq: v.Seq, Scalar: out}, true
}

func (i *scalarFilterInst) Reset() { i.f.Reset() }

// blockScalarInst adds blockMapper on top of scalarFilterInst for kernels
// with a block fast path. The output scratch is instance-owned: downstream
// consumption is depth-first and completes before the next pushBlock, the
// same ownership discipline vector emitters already follow.
type blockScalarInst struct {
	scalarFilterInst
	bf  blockScalarFilter
	out []float64
}

// newScalarInst wraps a scalar filter, picking the block-capable adapter
// when the kernel offers one.
func newScalarInst(f scalarFilter) instance {
	if bf, ok := f.(blockScalarFilter); ok {
		return &blockScalarInst{scalarFilterInst: scalarFilterInst{f: f}, bf: bf}
	}
	return &scalarFilterInst{f: f}
}

func (i *blockScalarInst) pushBlock(src []float64) ([]float64, int) {
	if cap(i.out) < len(src) {
		i.out = make([]float64, 0, len(src))
	}
	out, skip := i.bf.PushBlock(i.out[:0], src)
	i.out = out
	return out, skip
}

type blockFilterInst struct {
	f   *dsp.BlockFilter
	seq int64
}

func (i *blockFilterInst) Push(_ int, v Value) (Value, bool) {
	block, ok := i.f.Push(v.Scalar)
	if !ok {
		return Value{}, false
	}
	out := Value{Seq: i.seq, Vector: block}
	i.seq++
	return out, true
}

func (i *blockFilterInst) Reset() { i.f.Reset(); i.seq = 0 }

func (i *blockFilterInst) consumeBlock(src []float64) (int, Value, bool) {
	n, block, ok := i.f.Consume(src)
	if !ok {
		return n, Value{}, false
	}
	out := Value{Seq: i.seq, Vector: block}
	i.seq++
	return n, out, true
}

// goertzelInst adapts the Goertzel bank: block-emitting, so it opens a
// fresh sequence domain like windowing does.
type goertzelInst struct {
	bank *dsp.GoertzelBank
	seq  int64
}

func (i *goertzelInst) Push(_ int, v Value) (Value, bool) {
	score, ok := i.bank.Push(v.Scalar)
	if !ok {
		return Value{}, false
	}
	out := Value{Seq: i.seq, Scalar: score}
	i.seq++
	return out, true
}

func (i *goertzelInst) Reset() { i.bank.Reset(); i.seq = 0 }

func (i *goertzelInst) consumeBlock(src []float64) (int, Value, bool) {
	n, score, ok := i.bank.Consume(src)
	if !ok {
		return n, Value{}, false
	}
	out := Value{Seq: i.seq, Scalar: score}
	i.seq++
	return n, out, true
}

// decimateInst keeps every k-th sample starting with the first. The output
// stream has its own (slower) clock, so like windowing it opens a fresh
// sequence domain. Decimation is value-agnostic: it passes Q15-grid values
// through untouched, so it behaves identically in both precisions.
type decimateInst struct {
	k     int
	phase int // samples to drop before the next kept sample
	seq   int64
}

func (i *decimateInst) Push(_ int, v Value) (Value, bool) {
	if i.phase > 0 {
		i.phase--
		return Value{}, false
	}
	i.phase = i.k - 1
	out := Value{Seq: i.seq, Scalar: v.Scalar}
	i.seq++
	return out, true
}

func (i *decimateInst) Reset() { i.phase, i.seq = 0, 0 }

func (i *decimateInst) consumeBlock(src []float64) (int, Value, bool) {
	if i.phase >= len(src) {
		i.phase -= len(src)
		return len(src), Value{}, false
	}
	n := i.phase + 1
	v := src[i.phase]
	i.phase = i.k - 1
	out := Value{Seq: i.seq, Scalar: v}
	i.seq++
	return n, out, true
}

// --- vector features -----------------------------------------------------

// featureFn reduces one window/spectrum to a scalar feature.
type featureFn func([]float64) (float64, bool)

type featureInst struct{ fn featureFn }

func vectorFeatureInst(fn featureFn) instance { return &featureInst{fn: fn} }

func (i *featureInst) Push(_ int, v Value) (Value, bool) {
	out, ok := i.fn(v.Vector)
	if !ok {
		return Value{}, false
	}
	return Value{Seq: v.Seq, Scalar: out}, true
}

func (i *featureInst) Reset() {}

// q15Feature reduces a quantized window to a Q15 scalar feature.
type q15Feature func([]int32) (int32, bool)

// q15FeatInst quantizes each incoming window into instance-owned int32
// scratch and reduces it with a fixed-point feature — the Q15 twin of
// featureInst. The emitted scalar is the exact float image of the Q15
// result, so downstream float glue sees on-grid values.
type q15FeatInst struct {
	fn   q15Feature
	qwin []int32
}

func q15FeatureInst(fn q15Feature) instance { return &q15FeatInst{fn: fn} }

func (i *q15FeatInst) Push(_ int, v Value) (Value, bool) {
	if cap(i.qwin) < len(v.Vector) {
		i.qwin = make([]int32, len(v.Vector))
	}
	q := dsp.ToQ15Slice(i.qwin[:cap(i.qwin)], v.Vector)
	out, ok := i.fn(q)
	if !ok {
		return Value{}, false
	}
	return Value{Seq: v.Seq, Scalar: dsp.FromQ15(out)}, true
}

func (i *q15FeatInst) Reset() {}

// statFuncQ15 maps a stat op name to its fixed-point implementation.
func statFuncQ15(op string) (func([]int32) int32, error) {
	switch op {
	case "mean":
		return dsp.MeanQ15, nil
	case "variance":
		return dsp.VarianceQ15, nil
	case "stddev":
		return dsp.StdDevQ15, nil
	case "min":
		return dsp.MinQ15, nil
	case "max":
		return dsp.MaxQ15, nil
	case "range":
		return dsp.RangeQ15, nil
	case "rms":
		return dsp.RMSQ15, nil
	case "median":
		return dsp.MedianQ15, nil
	case "meanAbs":
		return dsp.MeanAbsQ15, nil
	case "energy":
		return dsp.EnergyQ15, nil
	}
	return nil, fmt.Errorf("unknown stat op %q", op)
}

// zcrVarianceQ15 is the fixed-point twin of zcrVariance: the variance of
// the k sub-window zero-crossing rates, all in Q15.
func zcrVarianceQ15(qrates, q []int32, k int) (int32, bool) {
	if k < 2 || len(q) < k {
		return 0, false
	}
	sub := len(q) / k
	for i := 0; i < k; i++ {
		qrates[i] = dsp.ZeroCrossingRateQ15(q[i*sub : (i+1)*sub])
	}
	return dsp.VarianceQ15(qrates), true
}

// statFunc maps a stat op name to its implementation.
func statFunc(op string) (func([]float64) float64, error) {
	switch op {
	case "mean":
		return dsp.Mean, nil
	case "variance":
		return dsp.Variance, nil
	case "stddev":
		return dsp.StdDev, nil
	case "min":
		return dsp.Min, nil
	case "max":
		return dsp.Max, nil
	case "range":
		return dsp.Range, nil
	case "rms":
		return dsp.RMS, nil
	case "median":
		return dsp.Median, nil
	case "meanAbs":
		return dsp.MeanAbs, nil
	case "energy":
		return dsp.Energy, nil
	}
	return nil, fmt.Errorf("unknown stat op %q", op)
}

// zcrVariance splits win into k equal sub-windows and returns the variance
// of their zero-crossing rates (paper §3.7.2, Music Journal). rates is
// caller-owned scratch of length k.
func zcrVariance(rates, win []float64, k int) (float64, bool) {
	if k < 2 || len(win) < k {
		return 0, false
	}
	sub := len(win) / k
	for i := 0; i < k; i++ {
		rates[i] = dsp.ZeroCrossingRate(win[i*sub : (i+1)*sub])
	}
	return dsp.Variance(rates), true
}

// dominantMag returns the largest non-DC magnitude in the first half of a
// magnitude spectrum.
func dominantMag(mags []float64) float64 {
	best := 0.0
	for k := 1; k <= len(mags)/2; k++ {
		if mags[k] > best {
			best = mags[k]
		}
	}
	return best
}

// tonality returns the peak-to-mean ratio of the non-DC spectrum when the
// dominant bin's frequency falls inside [lo, hi] Hz, and 0 otherwise.
func tonality(mags []float64, lo, hi, rate float64) float64 {
	n := len(mags)
	if n < 4 {
		return 0
	}
	best, bestK := 0.0, 0
	var sum float64
	for k := 1; k <= n/2; k++ {
		sum += mags[k]
		if mags[k] > best {
			best, bestK = mags[k], k
		}
	}
	mean := sum / float64(n/2)
	if mean == 0 || bestK == 0 {
		return 0
	}
	freq := dsp.BinFrequency(bestK, n, rate)
	if freq < lo || freq > hi {
		return 0
	}
	return best / mean
}

// --- glue ----------------------------------------------------------------

type deltaInst struct {
	prev   float64
	primed bool
}

func (i *deltaInst) Push(_ int, v Value) (Value, bool) {
	if !i.primed {
		i.prev, i.primed = v.Scalar, true
		return Value{}, false
	}
	d := v.Scalar - i.prev
	i.prev = v.Scalar
	return Value{Seq: v.Seq, Scalar: d}, true
}

func (i *deltaInst) Reset() { i.prev, i.primed = 0, false }

type absInst struct{}

func (absInst) Push(_ int, v Value) (Value, bool) {
	return Value{Seq: v.Seq, Scalar: math.Abs(v.Scalar)}, true
}

func (absInst) Reset() {}

// --- aggregation (branch join) -------------------------------------------

// joinInst synchronizes N input ports on emission sequence numbers: when
// every port has delivered a value with the same Seq, the combine function
// runs over the port values in port order. Stale pending entries (sequence
// numbers that can no longer complete because every port has advanced past
// them) are pruned to bound memory, as a microcontroller implementation
// must.
type joinInst struct {
	ports   int
	combine func([]float64) (float64, bool)
	pending map[int64]*joinSlot
	latest  []int64 // highest Seq seen per port
	primed  []bool
	free    []*joinSlot // recycled slots; steady state allocates none
}

type joinSlot struct {
	vals  []float64
	have  []bool
	count int
}

func newJoinInst(ports int, combine func([]float64) (float64, bool)) *joinInst {
	return &joinInst{
		ports:   ports,
		combine: combine,
		pending: make(map[int64]*joinSlot),
		latest:  make([]int64, ports),
		primed:  make([]bool, ports),
	}
}

func (i *joinInst) Push(port int, v Value) (Value, bool) {
	i.latest[port] = v.Seq
	i.primed[port] = true
	slot := i.pending[v.Seq]
	if slot == nil {
		slot = i.newSlot()
		i.pending[v.Seq] = slot
	}
	if !slot.have[port] {
		slot.have[port] = true
		slot.count++
	}
	slot.vals[port] = v.Scalar

	i.prune()

	if slot.count < i.ports {
		return Value{}, false
	}
	delete(i.pending, v.Seq)
	out, ok := i.combine(slot.vals)
	i.recycle(slot)
	if !ok {
		return Value{}, false
	}
	return Value{Seq: v.Seq, Scalar: out}, true
}

// newSlot pops a recycled slot or allocates the pool's first few.
func (i *joinInst) newSlot() *joinSlot {
	if n := len(i.free); n > 0 {
		slot := i.free[n-1]
		i.free = i.free[:n-1]
		return slot
	}
	return &joinSlot{vals: make([]float64, i.ports), have: make([]bool, i.ports)}
}

// recycle clears a slot and returns it to the pool.
func (i *joinInst) recycle(slot *joinSlot) {
	for p := range slot.have {
		slot.have[p] = false
	}
	slot.count = 0
	i.free = append(i.free, slot)
}

// prune drops pending sequences older than the slowest port's progress:
// emissions are monotone per port, so such sequences can never complete.
func (i *joinInst) prune() {
	min := int64(math.MaxInt64)
	for p := 0; p < i.ports; p++ {
		if !i.primed[p] {
			return // a port has produced nothing yet; nothing is provably stale
		}
		if i.latest[p] < min {
			min = i.latest[p]
		}
	}
	for seq := range i.pending {
		if seq < min {
			i.recycle(i.pending[seq])
			delete(i.pending, seq)
		}
	}
}

func (i *joinInst) Reset() {
	for seq, slot := range i.pending {
		i.recycle(slot)
		delete(i.pending, seq)
	}
	for p := range i.latest {
		i.latest[p] = 0
		i.primed[p] = false
	}
}

// --- admission control ---------------------------------------------------

// thresholdInst gates values and implements the sustain extension: the
// condition must hold for `sustain` consecutive emissions before values
// pass (used for the paper's "pitched sounds lasting longer than 650 ms").
type thresholdInst struct {
	gate    admitGate
	sustain int
	run     int
}

// admitGate abstracts the float and Q15 threshold twins behind the single
// decision the interpreter needs.
type admitGate interface {
	Admits(v float64) bool
}

// q15Gate adapts ThresholdQ15: the comparison quantizes the input and
// compares int32 bounds, so float- and fixed-point-fed values that round
// to the same grid point get the same verdict.
type q15Gate struct{ t *dsp.ThresholdQ15 }

func (g q15Gate) Admits(v float64) bool { return g.t.AdmitsFloat(v) }

// newThresholdInst picks the gate implementation for the precision.
func newThresholdInst(gate *dsp.Threshold, sustain int, prec Precision) instance {
	if prec == Q15 {
		return &thresholdInst{gate: q15Gate{t: gate.Q15()}, sustain: sustain}
	}
	return &thresholdInst{gate: gate, sustain: sustain}
}

func (i *thresholdInst) Push(_ int, v Value) (Value, bool) {
	if !i.gate.Admits(v.Scalar) {
		i.run = 0
		return Value{}, false
	}
	i.run++
	if i.run < i.sustain {
		return Value{}, false
	}
	return v, true
}

func (i *thresholdInst) Reset() { i.run = 0 }
