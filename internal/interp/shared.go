package interp

import (
	"fmt"

	"sidewinder/internal/core"
	"sidewinder/internal/ir"
)

// NewShared builds a merged machine directly from a DAG-compiled shared
// plan (ir.CompilePlans): the compile pass has already deduplicated
// structurally identical subgraphs, folded redundant stages and fused
// threshold chains, so construction is a straight wiring of the lowered
// nodes — no signature hashing here. Each input plan's wakes are tagged
// with its index in sp.Sources, exactly like NewMergedPrecision tags its
// plan arguments.
func NewShared(prec Precision, sp *ir.SharedPlan) (*Merged, error) {
	plan := sp.Plan
	m := &Merged{
		plans:   sp.Sources,
		nodes:   make([]mergedNode, len(plan.Nodes)),
		byChan:  make(map[core.SensorChannel][]target),
		chanSeq: make(map[core.SensorChannel]int64),
		prec:    prec,
	}
	for i := range plan.Nodes {
		n := &plan.Nodes[i]
		inst, err := newInstance(n, prec)
		if err != nil {
			return nil, fmt.Errorf("interp: shared node %d (%s): %w", n.ID, n.Kind, err)
		}
		m.nodes[i] = mergedNode{inst: inst, cost: n.Cost, kind: n.Kind, planID: n.ID}
		// Inputs reference earlier nodes only (the shared plan is
		// topologically ordered), so the upstream entries already exist.
		for port, ref := range n.Inputs {
			tg := target{node: i, port: port}
			if ref.FromChannel() {
				m.byChan[ref.Channel] = append(m.byChan[ref.Channel], tg)
			} else {
				m.nodes[ref.Node-1].fanout = append(m.nodes[ref.Node-1].fanout, tg)
			}
		}
	}
	for ai, o := range sp.Outputs {
		m.nodes[o.Out-1].outPlans = append(m.nodes[o.Out-1].outPlans, ai)
	}
	m.sharedNodes = sp.Stats.Eliminated()
	return m, nil
}
