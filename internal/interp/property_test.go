package interp

import (
	"math"
	"math/rand"
	"testing"

	"sidewinder/internal/core"
	"sidewinder/internal/testutil"
)

// TestRandomPipelinesExecuteSafely drives generated wake-up conditions
// with random sensor data: the interpreter must never panic, never emit
// NaN wake values from finite input, and every wake must satisfy the final
// admission-control stage it came from.
func TestRandomPipelinesExecuteSafely(t *testing.T) {
	cat := core.DefaultCatalog()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 120; i++ {
		p := testutil.RandomPipeline(rng)
		plan, err := p.Validate(cat)
		if err != nil {
			t.Fatalf("pipeline %d: %v", i, err)
		}
		m, err := New(plan)
		if err != nil {
			t.Fatalf("pipeline %d: machine: %v", i, err)
		}
		final := plan.Nodes[len(plan.Nodes)-1]
		for s := 0; s < 500; s++ {
			for _, ch := range plan.Channels {
				for _, w := range m.PushSample(ch, rng.NormFloat64()*10) {
					if math.IsNaN(w.Value) {
						t.Fatalf("pipeline %d: NaN wake value", i)
					}
					checkAdmitted(t, i, final, w.Value)
				}
			}
		}
		work := m.Work()
		if work.FloatOps < 0 || work.IntOps < 0 {
			t.Fatalf("pipeline %d: negative work %+v", i, work)
		}
	}
}

// checkAdmitted verifies a wake value against the final threshold's
// parameters.
func checkAdmitted(t *testing.T, i int, final core.PlanNode, v float64) {
	t.Helper()
	const eps = 1e-9
	switch final.Kind {
	case core.KindMinThreshold:
		if v < final.Params.Float("min")-eps {
			t.Fatalf("pipeline %d: wake value %g below min %g", i, v, final.Params.Float("min"))
		}
	case core.KindMaxThreshold:
		if v > final.Params.Float("max")+eps {
			t.Fatalf("pipeline %d: wake value %g above max %g", i, v, final.Params.Float("max"))
		}
	case core.KindBandThreshold:
		if v < final.Params.Float("min")-eps || v > final.Params.Float("max")+eps {
			t.Fatalf("pipeline %d: wake value %g outside band [%g, %g]",
				i, v, final.Params.Float("min"), final.Params.Float("max"))
		}
	}
}

// TestRandomMergedConsistency merges random plan pairs and checks wake
// equivalence against separate machines over identical input.
func TestRandomMergedConsistency(t *testing.T) {
	cat := core.DefaultCatalog()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 60; i++ {
		pa, err := testutil.RandomPipeline(rng).Validate(cat)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := testutil.RandomPipeline(rng).Validate(cat)
		if err != nil {
			t.Fatal(err)
		}
		merged, err := NewMerged(pa, pb)
		if err != nil {
			t.Fatalf("pair %d: %v", i, err)
		}
		ma, err := New(pa)
		if err != nil {
			t.Fatal(err)
		}
		mb, err := New(pb)
		if err != nil {
			t.Fatal(err)
		}
		chans := map[core.SensorChannel]bool{}
		for _, ch := range pa.Channels {
			chans[ch] = true
		}
		for _, ch := range pb.Channels {
			chans[ch] = true
		}
		for s := 0; s < 400; s++ {
			for ch := range chans {
				v := rng.NormFloat64() * 8
				var wantA, wantB int
				for _, pc := range pa.Channels {
					if pc == ch {
						wantA = len(ma.PushSample(ch, v))
					}
				}
				for _, pc := range pb.Channels {
					if pc == ch {
						wantB = len(mb.PushSample(ch, v))
					}
				}
				var gotA, gotB int
				for _, w := range merged.PushSample(ch, v) {
					if w.Plan == 0 {
						gotA++
					} else {
						gotB++
					}
				}
				if gotA != wantA || gotB != wantB {
					t.Fatalf("pair %d sample %d on %s: merged (%d,%d) vs separate (%d,%d)",
						i, s, ch, gotA, gotB, wantA, wantB)
				}
			}
		}
	}
}
