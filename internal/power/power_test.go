package power

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNexus4MatchesTable1(t *testing.T) {
	p := Nexus4()
	if p.AwakeMW != 323 {
		t.Errorf("awake = %g, want 323", p.AwakeMW)
	}
	if p.AsleepMW != 9.7 {
		t.Errorf("asleep = %g, want 9.7", p.AsleepMW)
	}
	if p.WakeTransitionMW != 384 {
		t.Errorf("wake transition = %g, want 384", p.WakeTransitionMW)
	}
	if p.SleepTransition != 341 {
		t.Errorf("sleep transition = %g, want 341", p.SleepTransition)
	}
	if p.TransitionSeconds != 1 {
		t.Errorf("transition duration = %g, want 1", p.TransitionSeconds)
	}
	for s := State(0); int(s) < numStates; s++ {
		if p.DrawMW(s) <= 0 {
			t.Errorf("DrawMW(%s) = %g", s, p.DrawMW(s))
		}
	}
}

func TestAlwaysAsleepAverage(t *testing.T) {
	ph := NewPhone(Nexus4())
	ph.Advance(3600)
	if got := ph.AverageMW(); !approx(got, 9.7, 1e-9) {
		t.Errorf("always-asleep average = %g, want 9.7", got)
	}
}

func TestAlwaysAwakeAverage(t *testing.T) {
	ph := NewPhone(Nexus4())
	ph.RequestWake()
	ph.Advance(1) // transition completes
	if ph.State() != Awake {
		t.Fatalf("state after 1 s = %s", ph.State())
	}
	ph.Advance(3599)
	// 1 s at 384 mW + 3599 s at 323 mW.
	want := (1*384 + 3599*323) / 3600.0
	if got := ph.AverageMW(); !approx(got, want, 1e-9) {
		t.Errorf("average = %g, want %g", got, want)
	}
}

func TestWakeSleepCycleEnergy(t *testing.T) {
	ph := NewPhone(Nexus4())
	// 10 s asleep, wake (1 s), 4 s awake, sleep (1 s), 4 s asleep.
	ph.Advance(10)
	ph.RequestWake()
	ph.Advance(1)
	ph.Advance(4)
	ph.RequestSleep()
	ph.Advance(1)
	ph.Advance(4)
	if got := ph.TotalSeconds(); !approx(got, 20, 1e-12) {
		t.Fatalf("total = %g", got)
	}
	wantEnergy := 14*9.7 + 1*384 + 4*323 + 1*341
	if got := ph.EnergyMJ(); !approx(got, wantEnergy, 1e-9) {
		t.Errorf("energy = %g, want %g", got, wantEnergy)
	}
	if ph.WakeUps() != 1 {
		t.Errorf("wakeups = %d", ph.WakeUps())
	}
	if ph.State() != Asleep {
		t.Errorf("final state = %s", ph.State())
	}
}

func TestAdvanceSplitsAcrossTransition(t *testing.T) {
	ph := NewPhone(Nexus4())
	ph.RequestWake()
	// One big step: 0.4 s into the transition remains transitioning.
	ph.Advance(0.4)
	if ph.State() != WakingUp {
		t.Fatalf("state = %s", ph.State())
	}
	// 2 s more: 0.6 s completes the transition, 1.4 s awake.
	ph.Advance(2)
	if ph.State() != Awake {
		t.Fatalf("state = %s", ph.State())
	}
	if !approx(ph.Dwell(WakingUp), 1, 1e-12) {
		t.Errorf("waking dwell = %g", ph.Dwell(WakingUp))
	}
	if !approx(ph.Dwell(Awake), 1.4, 1e-12) {
		t.Errorf("awake dwell = %g", ph.Dwell(Awake))
	}
}

func TestRequestSemantics(t *testing.T) {
	ph := NewPhone(Nexus4())
	if !ph.RequestWake() {
		t.Error("wake from asleep should start")
	}
	if ph.RequestWake() {
		t.Error("wake while waking should be a no-op")
	}
	if ph.RequestSleep() {
		t.Error("sleep while waking should be a no-op")
	}
	ph.Advance(1)
	if ph.RequestWake() {
		t.Error("wake while awake should be a no-op")
	}
	if !ph.RequestSleep() {
		t.Error("sleep from awake should start")
	}
	// Wake during falling-asleep interrupts and counts a new wake-up.
	if !ph.RequestWake() {
		t.Error("wake while falling asleep should start")
	}
	if ph.WakeUps() != 2 {
		t.Errorf("wakeups = %d, want 2", ph.WakeUps())
	}
	if !ph.UsableAwake() == true && ph.State() != WakingUp {
		t.Errorf("state = %s, want waking-up", ph.State())
	}
}

func TestUsableAwake(t *testing.T) {
	ph := NewPhone(Nexus4())
	if ph.UsableAwake() {
		t.Error("asleep phone is not usable")
	}
	ph.RequestWake()
	if ph.UsableAwake() {
		t.Error("waking phone is not usable")
	}
	ph.Advance(1)
	if !ph.UsableAwake() {
		t.Error("awake phone is usable")
	}
}

func TestSummarize(t *testing.T) {
	ph := NewPhone(Nexus4())
	ph.Advance(9)
	ph.RequestWake()
	ph.Advance(1)
	ph.Advance(9)
	ph.RequestSleep()
	ph.Advance(1)
	rep := Summarize(ph, 3.6)
	if rep.AsleepSec != 9 || rep.AwakeSec != 9 || rep.WakingSec != 1 || rep.SleepingSec != 1 {
		t.Errorf("dwells = %+v", rep)
	}
	if rep.WakeUps != 1 {
		t.Errorf("wakeups = %d", rep.WakeUps)
	}
	if !approx(rep.TotalAvgMW, rep.PhoneAvgMW+3.6, 1e-12) {
		t.Errorf("total = %g, phone = %g", rep.TotalAvgMW, rep.PhoneAvgMW)
	}
	wantPhone := (9*9.7 + 1*384 + 9*323 + 1*341) / 20
	if !approx(rep.PhoneAvgMW, wantPhone, 1e-9) {
		t.Errorf("phone avg = %g, want %g", rep.PhoneAvgMW, wantPhone)
	}
}

func TestAverageBoundedProperty(t *testing.T) {
	// However the phone is driven, its average power lies between the
	// asleep and wake-transition draws.
	f := func(ops []bool, stepsRaw uint8) bool {
		ph := NewPhone(Nexus4())
		steps := float64(stepsRaw%50) + 1
		for _, wake := range ops {
			if wake {
				ph.RequestWake()
			} else {
				ph.RequestSleep()
			}
			ph.Advance(steps / 10)
		}
		ph.Advance(1)
		avg := ph.AverageMW()
		return avg >= 9.7-1e-9 && avg <= 384+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDwellConservationProperty(t *testing.T) {
	// Total advanced time always equals the sum of dwells.
	f := func(ops []bool) bool {
		ph := NewPhone(Nexus4())
		var advanced float64
		for i, wake := range ops {
			if wake {
				ph.RequestWake()
			} else {
				ph.RequestSleep()
			}
			dt := float64(i%7) * 0.3
			ph.Advance(dt)
			advanced += dt
		}
		return approx(ph.TotalSeconds(), advanced, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroTimeAverage(t *testing.T) {
	ph := NewPhone(Nexus4())
	if ph.AverageMW() != 0 {
		t.Error("zero-time average should be 0")
	}
}

func TestStateString(t *testing.T) {
	names := map[State]string{
		Asleep: "asleep", WakingUp: "waking-up", Awake: "awake", FallingAsleep: "falling-asleep",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if State(99).String() == "" {
		t.Error("unknown state should stringify diagnostically")
	}
}

func TestBatteryLifeHours(t *testing.T) {
	// Always-awake at 323 mW drains the Nexus 4 battery in ~24.7 h.
	h := BatteryLifeHours(323, Nexus4BatteryMWh)
	if h < 24 || h > 26 {
		t.Errorf("always-awake battery life = %.1f h, want ~24.7", h)
	}
	// Asleep at 9.7 mW lasts over a month.
	if h := BatteryLifeHours(9.7, Nexus4BatteryMWh); h < 800 {
		t.Errorf("asleep battery life = %.1f h", h)
	}
	if !math.IsInf(BatteryLifeHours(0, Nexus4BatteryMWh), 1) {
		t.Error("zero draw should be infinite")
	}
}

func TestTransitionHookObservesFullCycle(t *testing.T) {
	p := NewPhone(Nexus4())
	type tr struct{ from, to State }
	var seen []tr
	p.SetTransitionHook(func(from, to State) {
		seen = append(seen, tr{from, to})
		if p.State() != to {
			t.Errorf("hook fired before state switch: State()=%v, to=%v", p.State(), to)
		}
	})

	p.Advance(5)
	p.RequestWake()
	p.Advance(2) // completes the 1 s wake transition
	p.RequestSleep()
	p.Advance(2) // completes the 1 s sleep transition

	want := []tr{
		{Asleep, WakingUp},
		{WakingUp, Awake},
		{Awake, FallingAsleep},
		{FallingAsleep, Asleep},
	}
	if len(seen) != len(want) {
		t.Fatalf("hook saw %d transitions %v, want %d", len(seen), seen, len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("transition %d: got %v -> %v, want %v -> %v",
				i, seen[i].from, seen[i].to, want[i].from, want[i].to)
		}
	}

	// Detaching stops observation.
	p.SetTransitionHook(nil)
	p.RequestWake()
	p.Advance(2)
	if len(seen) != len(want) {
		t.Errorf("detached hook still fired: %d events", len(seen))
	}
}

func TestStateEnergySumsToTotal(t *testing.T) {
	p := NewPhone(Nexus4())
	p.Advance(10)
	p.RequestWake()
	p.Advance(3.5)
	p.RequestSleep()
	p.Advance(7.25)

	var sum float64
	for s := State(0); int(s) < numStates; s++ {
		sum += p.StateEnergyMJ(s)
	}
	if diff := math.Abs(sum - p.EnergyMJ()); diff > 1e-9 {
		t.Fatalf("per-state energies sum to %g, EnergyMJ()=%g (diff %g)", sum, p.EnergyMJ(), diff)
	}
	if got := p.StateEnergyMJ(Asleep); math.Abs(got-16.25*9.7) > 1e-9 {
		t.Errorf("asleep energy = %g, want %g", got, 16.25*9.7)
	}
}
