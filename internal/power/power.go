// Package power implements the energy model of the evaluation (paper §4,
// Table 1): a four-state phone power state machine with the measured
// Google Nexus 4 draw figures, plus constant sensor-hub draw, integrated
// over simulated time to estimate average power.
package power

import (
	"fmt"
	"math"
)

// State is the phone's power state.
type State int

const (
	// Asleep: main processor in its low-power sleep state (9.7 mW).
	Asleep State = iota
	// WakingUp: asleep-to-awake transition (384 mW, 1 s).
	WakingUp
	// Awake: running the sensor-driven application (323 mW).
	Awake
	// FallingAsleep: awake-to-asleep transition (341 mW, 1 s).
	FallingAsleep
	numStates int = iota
)

// String returns a short state name.
func (s State) String() string {
	switch s {
	case Asleep:
		return "asleep"
	case WakingUp:
		return "waking-up"
	case Awake:
		return "awake"
	case FallingAsleep:
		return "falling-asleep"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Profile holds a phone's measured power constants (paper Table 1).
type Profile struct {
	Name string
	// Draw per state in milliwatts.
	AwakeMW          float64
	AsleepMW         float64
	WakeTransitionMW float64
	SleepTransition  float64
	// TransitionSeconds is the duration of each transition.
	TransitionSeconds float64
}

// Nexus4 returns the Google Nexus 4 profile measured in the paper
// (Table 1): awake 323 mW, asleep 9.7 mW, asleep-to-awake 384 mW and
// awake-to-asleep 341 mW, each transition lasting 1 second.
func Nexus4() Profile {
	return Profile{
		Name:              "Nexus 4",
		AwakeMW:           323,
		AsleepMW:          9.7,
		WakeTransitionMW:  384,
		SleepTransition:   341,
		TransitionSeconds: 1,
	}
}

// DrawMW returns the profile's draw in the given state.
func (p Profile) DrawMW(s State) float64 {
	switch s {
	case Asleep:
		return p.AsleepMW
	case WakingUp:
		return p.WakeTransitionMW
	case Awake:
		return p.AwakeMW
	case FallingAsleep:
		return p.SleepTransition
	}
	return 0
}

// Phone is the simulated main-processor power state machine. Time advances
// explicitly via Advance; wake and sleep requests start the corresponding
// transitions. The zero value is not usable; construct with NewPhone.
type Phone struct {
	profile        Profile
	state          State
	transitionLeft float64 // seconds remaining in the active transition
	dwell          [numStates]float64
	wakeUps        int
	// transitionHook, when set, observes every state change. The power
	// model stays telemetry-agnostic: tracing layers attach a hook instead
	// of this package importing them.
	transitionHook func(from, to State)
}

// SetTransitionHook registers a callback invoked on every state change,
// with the state being left and the state being entered. A nil hook
// detaches. The hook fires after the machine has switched state, so
// Phone.State() inside the hook reports the new state.
func (p *Phone) SetTransitionHook(fn func(from, to State)) { p.transitionHook = fn }

func (p *Phone) transition(to State) {
	from := p.state
	p.state = to
	if p.transitionHook != nil {
		p.transitionHook(from, to)
	}
}

// NewPhone returns a phone that starts asleep.
func NewPhone(profile Profile) *Phone {
	return &Phone{profile: profile, state: Asleep}
}

// NewPhoneAwake returns a phone that starts fully awake without charging a
// wake transition (used by the Always-Awake baseline, which by definition
// never slept).
func NewPhoneAwake(profile Profile) *Phone {
	return &Phone{profile: profile, state: Awake}
}

// State returns the current power state.
func (p *Phone) State() State { return p.state }

// UsableAwake reports whether the application can currently process sensor
// data (fully awake, not in a transition).
func (p *Phone) UsableAwake() bool { return p.state == Awake }

// WakeUps returns the number of asleep-to-awake transitions started.
func (p *Phone) WakeUps() int { return p.wakeUps }

// RequestWake begins waking the phone. A request while asleep (or while
// falling asleep) starts a full wake transition; requests while waking or
// awake are no-ops. It reports whether a new wake-up was started.
func (p *Phone) RequestWake() bool {
	switch p.state {
	case Asleep, FallingAsleep:
		p.transition(WakingUp)
		p.transitionLeft = p.profile.TransitionSeconds
		p.wakeUps++
		return true
	default:
		return false
	}
}

// RequestSleep begins putting the phone to sleep. Only a fully awake phone
// can start the transition; other states are no-ops. It reports whether
// the transition started.
func (p *Phone) RequestSleep() bool {
	if p.state != Awake {
		return false
	}
	p.transition(FallingAsleep)
	p.transitionLeft = p.profile.TransitionSeconds
	return true
}

// Advance moves simulated time forward by dt seconds, completing
// transitions as they elapse and accounting dwell time per state.
func (p *Phone) Advance(dt float64) {
	for dt > 0 {
		switch p.state {
		case Asleep, Awake:
			p.dwell[p.state] += dt
			return
		case WakingUp, FallingAsleep:
			if dt < p.transitionLeft {
				p.dwell[p.state] += dt
				p.transitionLeft -= dt
				return
			}
			p.dwell[p.state] += p.transitionLeft
			dt -= p.transitionLeft
			if p.state == WakingUp {
				p.transition(Awake)
			} else {
				p.transition(Asleep)
			}
			p.transitionLeft = 0
		}
	}
}

// Dwell returns the accumulated seconds spent in state s.
func (p *Phone) Dwell(s State) float64 { return p.dwell[s] }

// TotalSeconds returns the total simulated time.
func (p *Phone) TotalSeconds() float64 {
	var t float64
	for _, d := range p.dwell {
		t += d
	}
	return t
}

// StateEnergyMJ returns the energy spent dwelling in state s, in
// millijoules. Summing over all states gives EnergyMJ exactly, which is
// the conservation property the telemetry ledger is tested against.
func (p *Phone) StateEnergyMJ(s State) float64 {
	return p.dwell[s] * p.profile.DrawMW(s)
}

// EnergyMJ returns the total phone energy in millijoules.
func (p *Phone) EnergyMJ() float64 {
	var e float64
	for s := State(0); int(s) < numStates; s++ {
		e += p.dwell[s] * p.profile.DrawMW(s)
	}
	return e
}

// AverageMW returns the phone's average draw over the simulated time.
func (p *Phone) AverageMW() float64 {
	t := p.TotalSeconds()
	if t == 0 {
		return 0
	}
	return p.EnergyMJ() / t
}

// Nexus4BatteryMWh is the Nexus 4's battery capacity in milliwatt-hours
// (2100 mAh at a 3.8 V nominal cell voltage), used to translate average
// power into the battery life the paper's introduction motivates.
const Nexus4BatteryMWh = 2100 * 3.8

// BatteryLifeHours converts an average draw in milliwatts into hours on
// the given battery capacity (milliwatt-hours). Zero draw returns +Inf.
func BatteryLifeHours(avgMW, capacityMWh float64) float64 {
	if avgMW <= 0 {
		return math.Inf(1)
	}
	return capacityMWh / avgMW
}

// Report summarizes a simulation's energy accounting.
type Report struct {
	// Dwell per phone state, seconds.
	AsleepSec, WakingSec, AwakeSec, SleepingSec float64
	// WakeUps counts asleep-to-awake transitions.
	WakeUps int
	// PhoneAvgMW is the phone's average draw; HubMW the constant hub
	// draw (0 when the configuration uses no hub); TotalAvgMW the sum.
	PhoneAvgMW float64
	HubMW      float64
	TotalAvgMW float64
}

// Summarize produces the report for a finished phone timeline plus a
// constant hub draw.
func Summarize(p *Phone, hubMW float64) Report {
	avg := p.AverageMW()
	return Report{
		AsleepSec:   p.Dwell(Asleep),
		WakingSec:   p.Dwell(WakingUp),
		AwakeSec:    p.Dwell(Awake),
		SleepingSec: p.Dwell(FallingAsleep),
		WakeUps:     p.WakeUps(),
		PhoneAvgMW:  avg,
		HubMW:       hubMW,
		TotalAvgMW:  avg + hubMW,
	}
}
