package adapt

import (
	"math"
	"testing"

	"sidewinder/internal/core"
	"sidewinder/internal/hub"
	"sidewinder/internal/interp"
	"sidewinder/internal/sched"
)

// testPlan builds accelX -> window -> stat -> minThreshold, the shape of
// the accel wake conditions.
func testPlan(t *testing.T) *core.Plan {
	t.Helper()
	p := core.NewPipeline("test")
	p.AddBranch(core.NewBranch(core.AccelX).
		Add(core.Window(50, 25, "rectangular")).
		Add(core.Stat("stddev")).
		Add(core.MinThreshold(0.5)))
	plan, err := p.Validate(core.DefaultCatalog())
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestSignalString(t *testing.T) {
	for sig, want := range map[Signal]string{
		TrueWake: "true-wake", FalseWake: "false-wake", MissedWake: "missed-wake",
		Signal(99): "Signal(99)",
	} {
		if got := sig.String(); got != want {
			t.Errorf("Signal(%d).String() = %q, want %q", int(sig), got, want)
		}
	}
}

func TestLadderShape(t *testing.T) {
	e := NewEngine(DefaultConfig())
	ladder := e.Ladder()
	want := []Knobs{
		{Decimation: 1, WindowScale: 1, Precision: interp.Float64},
		{Decimation: 1, WindowScale: 1, Precision: interp.Q15},
		{Decimation: 2, WindowScale: 2, Precision: interp.Q15},
		{Decimation: 4, WindowScale: 2, Precision: interp.Q15},
	}
	if len(ladder) != len(want) {
		t.Fatalf("ladder has %d rungs, want %d: %+v", len(ladder), len(want), ladder)
	}
	for i, k := range want {
		if ladder[i] != k {
			t.Errorf("rung %d = %+v, want %+v", i, ladder[i], k)
		}
	}

	// No Q15: the float rung chain.
	cfg := DefaultConfig()
	cfg.AllowQ15 = false
	ladder = NewEngine(cfg).Ladder()
	for i, k := range ladder {
		if k.Precision != interp.Float64 {
			t.Errorf("rung %d precision = %v with AllowQ15=false", i, k.Precision)
		}
	}
	if len(ladder) != 3 {
		t.Errorf("no-Q15 ladder has %d rungs, want 3", len(ladder))
	}
}

func TestEngineEscalatesAfterPatience(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Patience = 3
	e := NewEngine(cfg)
	for i := 0; i < 2; i++ {
		e.Observe(TrueWake)
	}
	if e.Stats().Rung != 0 {
		t.Fatalf("escalated before patience: %+v", e.Stats())
	}
	e.Observe(TrueWake)
	if got := e.Stats().Rung; got != 1 {
		t.Fatalf("rung = %d after patience, want 1", got)
	}
	if !e.TakeDirty() {
		t.Fatal("escalation did not mark the engine dirty")
	}
	if e.TakeDirty() {
		t.Fatal("TakeDirty did not clear the flag")
	}
	if k := e.Knobs(); k.Precision != interp.Q15 || k.Decimation != 1 {
		t.Fatalf("rung 1 knobs = %+v", k)
	}
}

func TestEngineMissedWakeResetsToBaseline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Patience = 1
	cfg.Cooldown = 2
	cfg.MissedWakeBound = 0.5 // the single probe miss must not pin the rate
	e := NewEngine(cfg)
	e.Observe(TrueWake)
	e.Observe(TrueWake) // rung 2
	e.Observe(FalseWake)
	e.Observe(FalseWake) // factor > 1
	if s := e.Stats(); s.Rung != 2 {
		t.Fatalf("setup rung = %d, want 2", s.Rung)
	}
	e.Observe(MissedWake)
	if s := e.Stats(); s.Rung != 0 {
		t.Fatalf("rung = %d after miss, want 0", s.Rung)
	}
	if k := e.Knobs(); k.ThresholdFactor != 1 {
		t.Fatalf("threshold factor %g not reset by miss", k.ThresholdFactor)
	}
	// Cooldown: the next Cooldown true wakes must not escalate.
	e.TakeDirty()
	e.Observe(TrueWake)
	e.Observe(TrueWake)
	if s := e.Stats(); s.Rung != 0 {
		t.Fatalf("escalated during cooldown: %+v", s)
	}
	e.Observe(TrueWake) // cooldown spent, patience 1 met
	if s := e.Stats(); s.Rung != 1 {
		t.Fatalf("rung = %d after cooldown, want 1", s.Rung)
	}
}

func TestEngineMissedWakeBoundBlocksEscalation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Patience = 1
	cfg.Cooldown = 0
	cfg.MissedWakeBound = 0.01
	e := NewEngine(cfg)
	e.Observe(MissedWake) // missed rate 1.0
	for i := 0; i < 5; i++ {
		e.Observe(TrueWake)
	}
	// 1 miss / 6 observed = 0.17 > 0.01: the engine must hold baseline.
	if s := e.Stats(); s.Rung != 0 {
		t.Fatalf("escalated above the missed-wake bound: %+v", s)
	}
	if got := e.MissedRate(); math.Abs(got-1.0/6) > 1e-12 {
		t.Fatalf("missed rate = %g, want 1/6", got)
	}
}

func TestEngineThresholdAIMD(t *testing.T) {
	cfg := DefaultConfig()
	e := NewEngine(cfg)
	e.Observe(FalseWake)
	if k := e.Knobs(); math.Abs(k.ThresholdFactor-1.05) > 1e-12 {
		t.Fatalf("factor = %g after false wake, want 1.05", k.ThresholdFactor)
	}
	for i := 0; i < 100; i++ {
		e.Observe(FalseWake)
	}
	if k := e.Knobs(); k.ThresholdFactor != cfg.ThresholdMax {
		t.Fatalf("factor = %g not capped at %g", k.ThresholdFactor, cfg.ThresholdMax)
	}
	for i := 0; i < 1000; i++ {
		e.Observe(TrueWake)
	}
	if k := e.Knobs(); k.ThresholdFactor != 1 {
		t.Fatalf("factor = %g did not decay to 1", k.ThresholdFactor)
	}
}

func TestEngineVetoClampsRung(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Patience = 1
	e := NewEngine(cfg)
	e.Observe(TrueWake)
	e.Observe(TrueWake) // rung 2
	e.TakeDirty()
	e.Veto()
	if s := e.Stats(); s.Rung != 1 || s.MaxRung != 1 || s.Vetoes != 1 {
		t.Fatalf("after veto: %+v", s)
	}
	if !e.TakeDirty() {
		t.Fatal("veto fallback did not mark dirty")
	}
	// The vetoed rung is never proposed again, however many wakes follow.
	for i := 0; i < 50; i++ {
		e.Observe(TrueWake)
	}
	if s := e.Stats(); s.Rung != 1 {
		t.Fatalf("re-escalated past a veto: %+v", s)
	}
	// Veto at rung 0 pins the engine to the pushed configuration.
	e.Veto() // rung 1 -> 0
	e.Veto() // at rung 0
	if s := e.Stats(); s.Rung != 0 || s.MaxRung != 0 {
		t.Fatalf("rung-0 veto: %+v", s)
	}
}

func TestNewEngineClampsInvalidConfig(t *testing.T) {
	e := NewEngine(Config{MaxDecimation: -3, MaxWindowScale: 0, ThresholdMax: 0,
		Patience: 0, Cooldown: -1, MissedWakeBound: -0.5})
	if len(e.Ladder()) != 1 {
		t.Fatalf("clamped config ladder = %+v, want baseline only", e.Ladder())
	}
	e.Observe(FalseWake)
	if k := e.Knobs(); k.ThresholdFactor != 1 {
		t.Fatalf("ThresholdMax clamp failed: factor %g", k.ThresholdFactor)
	}
}

func TestReparameterizeBaseline(t *testing.T) {
	cat := core.DefaultCatalog()
	base := testPlan(t)
	got, err := Reparameterize(cat, base, Knobs{Decimation: 1, WindowScale: 1, ThresholdFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != len(base.Nodes) {
		t.Fatalf("baseline reparameterization changed node count: %d != %d", len(got.Nodes), len(base.Nodes))
	}
	bf, bi := base.TotalOpsPerSecond()
	gf, gi := got.TotalOpsPerSecond()
	if bf != gf || bi != gi || base.TotalMemory() != got.TotalMemory() {
		t.Fatalf("baseline reparameterization changed cost: (%g,%g,%d) != (%g,%g,%d)",
			gf, gi, got.TotalMemory(), bf, bi, base.TotalMemory())
	}
}

func TestReparameterizeDecimation(t *testing.T) {
	cat := core.DefaultCatalog()
	base := testPlan(t)
	got, err := Reparameterize(cat, base, Knobs{Decimation: 4, WindowScale: 1, ThresholdFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != len(base.Nodes)+1 {
		t.Fatalf("decimation did not insert one node per channel: %d nodes", len(got.Nodes))
	}
	if got.Nodes[0].Kind != core.KindDecimate {
		t.Fatalf("head node is %s, want decimate", got.Nodes[0].Kind)
	}
	// Downstream rates drop 4x: the window node's input rate is rate/4.
	var baseWin, gotWin *core.PlanNode
	for i := range base.Nodes {
		if base.Nodes[i].Kind == core.KindWindow {
			baseWin = &base.Nodes[i]
		}
	}
	for i := range got.Nodes {
		if got.Nodes[i].Kind == core.KindWindow {
			gotWin = &got.Nodes[i]
		}
	}
	if gotWin.Rate != baseWin.Rate/4 {
		t.Fatalf("window rate %g, want %g", gotWin.Rate, baseWin.Rate/4)
	}
	bf, bi := base.TotalOpsPerSecond()
	gf, gi := got.TotalOpsPerSecond()
	db := hub.MSP430()
	if gf*db.CyclesPerFloatOp+gi*db.CyclesPerIntOp >= bf*db.CyclesPerFloatOp+bi*db.CyclesPerIntOp {
		t.Fatalf("decimation did not reduce cycle demand: (%g,%g) vs (%g,%g)", gf, gi, bf, bi)
	}
}

func TestReparameterizeWindowScale(t *testing.T) {
	cat := core.DefaultCatalog()
	base := testPlan(t)
	got, err := Reparameterize(cat, base, Knobs{Decimation: 1, WindowScale: 2, ThresholdFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Nodes {
		if got.Nodes[i].Kind == core.KindWindow {
			if size := got.Nodes[i].Params.Int("size"); size != 100 {
				t.Fatalf("scaled window size = %d, want 100", size)
			}
			if step := got.Nodes[i].Params.Int("step"); step != 50 {
				t.Fatalf("scaled window step = %d, want 50", step)
			}
		}
	}
}

func TestReparameterizeThreshold(t *testing.T) {
	cat := core.DefaultCatalog()
	base := testPlan(t)
	got, err := Reparameterize(cat, base, Knobs{Decimation: 1, WindowScale: 1, ThresholdFactor: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	last := got.Nodes[len(got.Nodes)-1]
	if min := last.Params.Float("min"); math.Abs(min-0.6) > 1e-12 {
		t.Fatalf("tightened min = %g, want 0.6", min)
	}
}

func TestReparameterizeRejectsBadKnobs(t *testing.T) {
	cat := core.DefaultCatalog()
	base := testPlan(t)
	for _, k := range []Knobs{
		{Decimation: 0, WindowScale: 1},
		{Decimation: 1, WindowScale: 0},
		{Decimation: 1, WindowScale: 1, ThresholdFactor: 0.5},
	} {
		if _, err := Reparameterize(cat, base, k); err == nil {
			t.Errorf("knobs %+v accepted", k)
		}
	}
	if _, err := Reparameterize(cat, nil, Knobs{Decimation: 1, WindowScale: 1}); err == nil {
		t.Error("nil base accepted")
	}
}

func TestTightenFinal(t *testing.T) {
	p := core.Params{"min": core.Number(2)}
	if !TightenFinal(core.KindMinThreshold, p, 1.1) {
		t.Fatal("min threshold not tightened")
	}
	if got := p.Float("min"); math.Abs(got-2.2) > 1e-12 {
		t.Fatalf("min = %g, want 2.2", got)
	}

	p = core.Params{"max": core.Number(-4)}
	TightenFinal(core.KindMaxThreshold, p, 1.5)
	if got := p.Float("max"); math.Abs(got-(-6)) > 1e-12 {
		t.Fatalf("max = %g, want -6 (stricter for a negative ceiling)", got)
	}

	p = core.Params{"min": core.Number(1), "max": core.Number(3)}
	TightenFinal(core.KindBandThreshold, p, 1.4)
	lo, hi := p.Float("min"), p.Float("max")
	if math.Abs(lo-1.2) > 1e-12 || math.Abs(hi-2.8) > 1e-12 {
		t.Fatalf("band = [%g,%g], want [1.2,2.8]", lo, hi)
	}

	// A band too narrow to shrink, factor 1, and untunable kinds: no-ops.
	p = core.Params{"min": core.Number(1), "max": core.Number(1)}
	if TightenFinal(core.KindBandThreshold, p, 100) {
		t.Error("degenerate band reported tightened")
	}
	if TightenFinal(core.KindMinThreshold, core.Params{"min": core.Number(1)}, 1) {
		t.Error("factor 1 reported tightened")
	}
	if TightenFinal(core.KindStat, core.Params{}, 2) {
		t.Error("untunable kind reported tightened")
	}
	// A zero threshold has no scale reference: left alone.
	p = core.Params{"min": core.Number(0)}
	TightenFinal(core.KindMinThreshold, p, 2)
	if got := p.Float("min"); got != 0 {
		t.Fatalf("zero min moved to %g", got)
	}
}

func TestDemandQ15Rebilling(t *testing.T) {
	plan := testPlan(t)
	ff, fi, fmem := Demand(plan, interp.Float64)
	qf, qi, qmem := Demand(plan, interp.Q15)
	if fmem != qmem {
		t.Fatalf("memory changed with precision: %d != %d", qmem, fmem)
	}
	if qf >= ff {
		t.Fatalf("Q15 float demand %g not below float64's %g", qf, ff)
	}
	if qi <= fi {
		t.Fatalf("Q15 int demand %g not above float64's %g", qi, fi)
	}
	// Total op count is conserved: float work moves to the int column.
	if math.Abs((ff+fi)-(qf+qi)) > 1e-9 {
		t.Fatalf("ops not conserved: %g != %g", ff+fi, qf+qi)
	}
	// On the FPU-less MSP430 the rebilling is a large cycle win.
	d := hub.MSP430()
	b := sched.BudgetFor(d)
	if b.Cycles(qf, qi) >= b.Cycles(ff, fi) {
		t.Fatal("Q15 did not reduce MSP430 cycles")
	}
}

func TestFitsBudget(t *testing.T) {
	plan := testPlan(t)
	if !FitsBudget(sched.BudgetFor(hub.MSP430()), plan, interp.Float64) {
		t.Fatal("accel condition does not fit the MSP430")
	}
	tiny := sched.Budget{Device: hub.MSP430(), CyclesPerSec: 1, RAMBytes: 1}
	if FitsBudget(tiny, plan, interp.Float64) {
		t.Fatal("plan fits a 1-cycle budget")
	}
}
