package adapt

import (
	"fmt"
	"math"

	"sidewinder/internal/core"
)

// Reparameterize applies a knob proposal to a validated plan and returns a
// freshly resolved plan: a decimate stage per sensor channel at the branch
// heads (when Decimation > 1), window sizes and steps scaled by
// WindowScale, and the final admission stage tightened by ThresholdFactor.
// Every node is re-resolved through core.ResolveNode, so rates, costs and
// memory are recomputed from scratch — the result is costed exactly like a
// fresh push, which is what lets admission be re-checked honestly.
// The base plan is never mutated.
func Reparameterize(cat *core.Catalog, base *core.Plan, k Knobs) (*core.Plan, error) {
	if base == nil || len(base.Nodes) == 0 {
		return nil, fmt.Errorf("adapt: no plan to reparameterize")
	}
	if k.Decimation < 1 {
		return nil, fmt.Errorf("adapt: decimation %d out of range", k.Decimation)
	}
	if k.WindowScale <= 0 {
		return nil, fmt.Errorf("adapt: window scale %g out of range", k.WindowScale)
	}
	if k.ThresholdFactor != 0 && k.ThresholdFactor < 1 {
		return nil, fmt.Errorf("adapt: threshold factor %g below 1", k.ThresholdFactor)
	}

	out := &core.Plan{
		Name:     base.Name,
		Channels: append([]core.SensorChannel(nil), base.Channels...),
	}
	nextID := 1

	// Branch heads: each channel feeds through one decimator (or straight
	// through at factor 1).
	chanIn := make(map[core.SensorChannel]core.ResolvedInput, len(base.Channels))
	for _, ch := range base.Channels {
		if k.Decimation == 1 {
			chanIn[ch] = core.ChannelInput(ch)
			continue
		}
		node, err := core.ResolveNode(cat, nextID, core.KindDecimate,
			core.Params{"factor": core.Number(float64(k.Decimation))},
			[]core.ResolvedInput{core.ChannelInput(ch)})
		if err != nil {
			return nil, fmt.Errorf("adapt: decimator for %s: %w", ch, err)
		}
		out.Nodes = append(out.Nodes, node)
		chanIn[ch] = node.Output()
		nextID++
	}

	// Re-resolve the base nodes in topological order (plan node order),
	// remapping input references through the inserted decimators.
	nodeOut := make(map[int]core.ResolvedInput, len(base.Nodes))
	for i := range base.Nodes {
		n := &base.Nodes[i]
		params := n.Params.Clone()
		if n.Kind == core.KindWindow && k.WindowScale != 1 {
			scaleWindow(params, k.WindowScale)
		}
		if i == len(base.Nodes)-1 && k.ThresholdFactor > 1 {
			TightenFinal(n.Kind, params, k.ThresholdFactor)
		}
		inputs := make([]core.ResolvedInput, len(n.Inputs))
		for j, ref := range n.Inputs {
			if ref.FromChannel() {
				inputs[j] = chanIn[ref.Channel]
			} else {
				in, ok := nodeOut[ref.Node]
				if !ok {
					return nil, fmt.Errorf("adapt: node %d references unresolved node %d", n.ID, ref.Node)
				}
				inputs[j] = in
			}
		}
		node, err := core.ResolveNode(cat, nextID, n.Kind, params, inputs)
		if err != nil {
			return nil, fmt.Errorf("adapt: node %d (%s): %w", n.ID, n.Kind, err)
		}
		out.Nodes = append(out.Nodes, node)
		nodeOut[n.ID] = node.Output()
		nextID++
	}
	return out, nil
}

// scaleWindow stretches a window stage's size and step, keeping step within
// size and both at least 1. Step 0 means "step = size" and stays 0 so the
// non-overlapping semantics survive scaling.
func scaleWindow(params core.Params, scale float64) {
	size := int(math.Round(float64(params.Int("size")) * scale))
	if size < 1 {
		size = 1
	}
	step := params.Int("step")
	if step != 0 {
		step = int(math.Round(float64(step) * scale))
		if step < 1 {
			step = 1
		}
		if step > size {
			step = size
		}
	}
	params["size"] = core.Number(float64(size))
	params["step"] = core.Number(float64(step))
}

// TightenFinal tightens a final admission-control stage's parameters in
// place by the strictness factor and reports whether anything changed.
// Factor 1 (or an untunable kind — aggregators, parameter-free stages)
// leaves the parameters alone. This is the single tightening rule shared
// by the legacy hub-side tuner and the adaptive policy engine: minimum
// thresholds rise, maximum thresholds fall, bands shrink symmetrically at
// half rate (bands are fragile).
func TightenFinal(kind core.AlgorithmKind, params core.Params, factor float64) bool {
	if factor == 1 {
		return false
	}
	switch kind {
	case core.KindMinThreshold:
		params["min"] = core.Number(tighten(params.Float("min"), factor, +1))
	case core.KindMaxThreshold:
		params["max"] = core.Number(tighten(params.Float("max"), factor, -1))
	case core.KindBandThreshold:
		lo, hi := params.Float("min"), params.Float("max")
		width := hi - lo
		shrink := width * (factor - 1) / 2 * 0.5
		if shrink <= 0 || lo+shrink > hi-shrink {
			return false
		}
		params["min"] = core.Number(lo + shrink)
		params["max"] = core.Number(hi - shrink)
	default:
		return false
	}
	return true
}

// tighten moves a threshold in the stricter direction (dir +1 raises a
// minimum, -1 lowers a maximum) proportionally to its magnitude. A zero
// threshold has no scale reference and is left alone.
func tighten(v, factor, dir float64) float64 {
	if v == 0 {
		return 0
	}
	return v + dir*math.Abs(v)*(factor-1)
}
