// Package adapt closes the sensing feedback loop (ROADMAP item 1): a
// deterministic policy engine that consumes false-wake / missed-wake
// verdicts from the application layer and emits bounded
// re-parameterizations of a resident wake-up condition — sampling-rate
// decimation, window stretch, threshold strictness (subsuming the hub's
// legacy AIMD tuner in internal/manager/tuning.go), and Q15/float64
// precision demotion.
//
// The design follows AdaSense (PAPERS.md): recognition feedback drives
// runtime re-selection of sensing parameters, recovering energy headroom
// no static configuration can reach, while a configured missed-wake bound
// keeps recall from being traded away wholesale. Stanley-Marbell &
// Rinard's adaptive-approximation platform motivates precision as a
// first-class axis: the Q15 substrate already exists (internal/interp),
// so demotion is a re-compile, not a new kernel.
//
// Everything is deterministic: no clocks, no randomness — the same signal
// sequence always yields the same knob trajectory, which is what lets the
// evaluation harness stay byte-identical at any worker count.
//
// The engine only proposes; it never applies. Callers (internal/manager
// in the live stack, internal/sim in the simulator) must re-resolve the
// proposal through Reparameterize, re-check admission against the
// device's cycle/RAM budget (sched.Update or FitsBudget), and call Veto
// to clamp the engine when the proposal does not fit. That contract —
// adaptation can never exceed the budget a fresh push would be held to —
// is what the budget-invariance property tests pin.
package adapt

import (
	"fmt"
	"math"

	"sidewinder/internal/interp"
)

// Signal is one application-layer verdict about the condition's behavior.
type Signal int

const (
	// TrueWake: the hub woke the phone and the application confirmed a
	// real event.
	TrueWake Signal = iota
	// FalseWake: the hub woke the phone for nothing (paper §7's false
	// positive report).
	FalseWake
	// MissedWake: an event of interest passed without a wake — observable
	// only by the application layer (ground truth, user annotation, a
	// heavier classifier), never by the hub itself.
	MissedWake
)

// String returns the signal's report name.
func (s Signal) String() string {
	switch s {
	case TrueWake:
		return "true-wake"
	case FalseWake:
		return "false-wake"
	case MissedWake:
		return "missed-wake"
	default:
		return fmt.Sprintf("Signal(%d)", int(s))
	}
}

// Knobs is one bounded re-parameterization of a resident condition.
type Knobs struct {
	// Decimation keeps every k-th input sample (1 = all samples).
	Decimation int
	// WindowScale multiplies window size and step (1 = as authored).
	// Stretching restores a decimated window's wall-clock span.
	WindowScale float64
	// ThresholdFactor is the final admission stage's strictness in
	// [1, Config.ThresholdMax]; 1 is the developer's original threshold.
	ThresholdFactor float64
	// Precision selects the execution substrate.
	Precision interp.Precision
}

// Config bounds the policy. The zero value is invalid; use DefaultConfig
// (possibly modified) so every bound is explicit.
type Config struct {
	// MaxDecimation caps the decimation factor the ladder may reach.
	MaxDecimation int
	// MaxWindowScale caps window stretching.
	MaxWindowScale float64
	// ThresholdMax bounds threshold tightening, exactly like the legacy
	// tuner's tuneMax: the hub cannot see the false negatives that
	// over-tightening would cause.
	ThresholdMax float64
	// AllowQ15 permits precision demotion to fixed point.
	AllowQ15 bool
	// Patience is the number of consecutive clean true wakes required
	// before the engine escalates one rung down the energy ladder.
	Patience int
	// Cooldown is the number of true wakes after a missed wake during
	// which escalation is suspended.
	Cooldown int
	// MissedWakeBound is the highest tolerated missed-wake fraction
	// (missed / (missed + true)); while the observed rate exceeds it the
	// engine refuses to escalate.
	MissedWakeBound float64
}

// DefaultConfig returns the policy bounds used by the evaluation sweep.
func DefaultConfig() Config {
	return Config{
		MaxDecimation:   4,
		MaxWindowScale:  2,
		ThresholdMax:    1.5,
		AllowQ15:        true,
		Patience:        8,
		Cooldown:        16,
		MissedWakeBound: 0.1,
	}
}

// Threshold AIMD constants, identical to the legacy hub tuner so the
// engine subsumes it without changing single-axis behavior.
const (
	thresholdUp   = 1.05
	thresholdDown = 0.97
)

// Stats is a snapshot of the engine's history.
type Stats struct {
	TrueWakes, FalseWakes, MissedWakes int
	Rung, MaxRung                      int
	Vetoes                             int
	Changes                            int // knob transitions proposed
}

// Engine is the per-condition policy state machine. It walks a fixed
// "energy ladder" of knob presets — baseline, precision demotion, then
// increasing decimation with compensating window stretch — escalating one
// rung after Patience consecutive clean true wakes and falling back to
// baseline on any missed wake. Orthogonally it runs the AIMD threshold
// strictness loop on false/true wakes. Not safe for concurrent use; wrap
// externally if shared.
type Engine struct {
	cfg    Config
	ladder []Knobs

	rung    int
	maxRung int // highest admissible rung (Veto lowers it)
	factor  float64

	streak   int // consecutive clean true wakes
	cooldown int

	stats Stats
	dirty bool
}

// NewEngine builds an engine with the given bounds. Invalid bounds are
// clamped to the nearest sane value rather than rejected, so a partially
// filled Config degrades to a more conservative policy.
func NewEngine(cfg Config) *Engine {
	if cfg.MaxDecimation < 1 {
		cfg.MaxDecimation = 1
	}
	if cfg.MaxWindowScale < 1 {
		cfg.MaxWindowScale = 1
	}
	if cfg.ThresholdMax < 1 {
		cfg.ThresholdMax = 1
	}
	if cfg.Patience < 1 {
		cfg.Patience = 1
	}
	if cfg.Cooldown < 0 {
		cfg.Cooldown = 0
	}
	if cfg.MissedWakeBound < 0 {
		cfg.MissedWakeBound = 0
	}
	e := &Engine{cfg: cfg, ladder: buildLadder(cfg), factor: 1}
	e.maxRung = len(e.ladder) - 1
	return e
}

// buildLadder lays out the knob presets from cheapest intervention to
// deepest: demote precision first (free accuracy-wise on these pipelines,
// large cycle win on FPU-less parts), then decimate, stretching windows
// along with deeper decimation so their wall-clock span recovers.
func buildLadder(cfg Config) []Knobs {
	prec := interp.Float64
	ladder := []Knobs{{Decimation: 1, WindowScale: 1, Precision: prec}}
	if cfg.AllowQ15 {
		prec = interp.Q15
		ladder = append(ladder, Knobs{Decimation: 1, WindowScale: 1, Precision: prec})
	}
	for d := 2; d <= cfg.MaxDecimation; d *= 2 {
		scale := math.Min(float64(d), cfg.MaxWindowScale)
		ladder = append(ladder, Knobs{Decimation: d, WindowScale: scale, Precision: prec})
	}
	return ladder
}

// Ladder returns a copy of the engine's knob presets, baseline first.
// ThresholdFactor is zero in the presets; the live factor is orthogonal.
func (e *Engine) Ladder() []Knobs { return append([]Knobs(nil), e.ladder...) }

// Knobs returns the engine's current proposal.
func (e *Engine) Knobs() Knobs {
	k := e.ladder[e.rung]
	k.ThresholdFactor = e.factor
	return k
}

// Observe feeds one verdict into the policy.
func (e *Engine) Observe(sig Signal) {
	switch sig {
	case TrueWake:
		e.stats.TrueWakes++
		e.setFactor(math.Max(e.factor*thresholdDown, 1))
		if e.cooldown > 0 {
			e.cooldown--
			return
		}
		e.streak++
		if e.streak >= e.cfg.Patience && e.rung < e.maxRung && e.missedRate() <= e.cfg.MissedWakeBound {
			e.rung++
			e.streak = 0
			e.markChange()
		}
	case FalseWake:
		e.stats.FalseWakes++
		e.streak = 0
		e.setFactor(math.Min(e.factor*thresholdUp, e.cfg.ThresholdMax))
	case MissedWake:
		e.stats.MissedWakes++
		e.streak = 0
		e.cooldown = e.cfg.Cooldown
		if e.rung != 0 {
			e.rung = 0
			e.markChange()
		}
		// A miss means the condition is too blunt, not too lax: undo any
		// strictness the false-wake loop accumulated.
		e.setFactor(1)
	}
}

// Veto reports that the current proposal failed re-admission (budget or
// compile). The offending rung and everything past it become off-limits,
// and the engine falls back one rung. Rung 0 is the pushed configuration,
// which was admitted, so it can never be vetoed away.
func (e *Engine) Veto() {
	e.stats.Vetoes++
	if e.rung > 0 {
		e.maxRung = e.rung - 1
		e.rung = e.maxRung
		e.markChange()
	} else {
		e.maxRung = 0
	}
}

// TakeDirty reports whether the proposal changed since the last call and
// clears the flag — the caller's cue to re-parameterize and re-admit.
func (e *Engine) TakeDirty() bool {
	d := e.dirty
	e.dirty = false
	return d
}

// Stats returns a snapshot of the engine's history.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.Rung, s.MaxRung = e.rung, e.maxRung
	return s
}

// MissedRate returns the observed missed-wake fraction.
func (e *Engine) MissedRate() float64 { return e.missedRate() }

func (e *Engine) missedRate() float64 {
	total := e.stats.MissedWakes + e.stats.TrueWakes
	if total == 0 {
		return 0
	}
	return float64(e.stats.MissedWakes) / float64(total)
}

func (e *Engine) setFactor(f float64) {
	if f != e.factor {
		e.factor = f
		e.markChange()
	}
}

func (e *Engine) markChange() {
	e.stats.Changes++
	e.dirty = true
}
