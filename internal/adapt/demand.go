package adapt

import (
	"sidewinder/internal/core"
	"sidewinder/internal/interp"
	"sidewinder/internal/sched"
)

// q15Kinds are the stages the interpreter executes on the fixed-point
// substrate in Q15 mode (see interp.newInstance): their float work runs as
// saturating int32 arithmetic, so for costing their float ops are billed
// as integer ops. Spectral stages (FFT chain, tonality, dominant
// frequency) and structural glue stay float and keep their float billing.
var q15Kinds = map[core.AlgorithmKind]bool{
	core.KindMovingAvg:     true,
	core.KindEMA:           true,
	core.KindIIRLowPass:    true,
	core.KindIIRHighPass:   true,
	core.KindLowPass:       true, // Q15 mode substitutes the IIR block backend
	core.KindHighPass:      true,
	core.KindStat:          true,
	core.KindMinThreshold:  true,
	core.KindMaxThreshold:  true,
	core.KindBandThreshold: true,
}

// Demand returns a plan's operation demand under the given execution
// precision: per-second float and integer ops plus instance memory. In
// Q15 mode the fixed-point-capable stages' float work is billed as
// integer work — on an FPU-less device that is the whole point of the
// demotion (software float emulation costs ~100 cycles per op on the
// MSP430; an int op costs 2).
func Demand(plan *core.Plan, prec interp.Precision) (floatOps, intOps float64, memoryBytes int) {
	for i := range plan.Nodes {
		n := &plan.Nodes[i]
		f := n.Cost.FloatOps * n.Rate
		iops := n.Cost.IntOps * n.Rate
		if prec == interp.Q15 && q15Kinds[n.Kind] {
			iops += f
			f = 0
		}
		floatOps += f
		intOps += iops
		memoryBytes += n.Memory
	}
	return floatOps, intOps, memoryBytes
}

// FitsBudget reports whether a plan's precision-aware demand fits a
// scheduler budget — the re-admission check every adaptation must clear
// before the hub may run it.
func FitsBudget(b sched.Budget, plan *core.Plan, prec interp.Precision) bool {
	f, i, mem := Demand(plan, prec)
	return b.Fits(f, i, mem)
}
