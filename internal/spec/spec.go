// Package spec defines a JSON interchange format for wake-up conditions,
// used by tooling (cmd/swc) to author pipelines outside of Go code. The
// format mirrors the builder API one-to-one:
//
//	{
//	  "name": "significantMotion",
//	  "branches": [
//	    {"source": "ACC_X", "stages": [{"kind": "movingAvg", "params": {"size": 10}}]},
//	    {"source": "ACC_Y", "stages": [{"kind": "movingAvg", "params": {"size": 10}}]},
//	    {"source": "ACC_Z", "stages": [{"kind": "movingAvg", "params": {"size": 10}}]}
//	  ],
//	  "tail": [
//	    {"kind": "vectorMagnitude"},
//	    {"kind": "minThreshold", "params": {"min": 15}}
//	  ]
//	}
//
// Parameter values are JSON numbers or strings (for enums such as window
// shapes and statistic names).
package spec

import (
	"encoding/json"
	"fmt"

	"sidewinder/internal/core"
)

// File is the top-level JSON document.
type File struct {
	Name     string       `json:"name"`
	Branches []BranchSpec `json:"branches"`
	Tail     []StageSpec  `json:"tail,omitempty"`
}

// BranchSpec is one processing branch.
type BranchSpec struct {
	Source string      `json:"source"`
	Stages []StageSpec `json:"stages,omitempty"`
}

// StageSpec is one parameterized algorithm instance.
type StageSpec struct {
	Kind   string                     `json:"kind"`
	Params map[string]json.RawMessage `json:"params,omitempty"`
}

// Parse decodes a JSON pipeline spec into a builder pipeline. The result
// still needs Validate against a catalog; Parse checks JSON structure
// only, so error messages stay separated (syntax vs semantics).
func Parse(data []byte) (*core.Pipeline, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("spec: invalid JSON: %w", err)
	}
	return f.Pipeline()
}

// Pipeline converts the decoded file into a builder pipeline.
func (f *File) Pipeline() (*core.Pipeline, error) {
	p := core.NewPipeline(f.Name)
	for i, b := range f.Branches {
		br := core.NewBranch(core.SensorChannel(b.Source))
		for j, s := range b.Stages {
			stage, err := s.stage()
			if err != nil {
				return nil, fmt.Errorf("spec: branch %d stage %d: %w", i+1, j+1, err)
			}
			br.Add(stage)
		}
		p.AddBranch(br)
	}
	for i, s := range f.Tail {
		stage, err := s.stage()
		if err != nil {
			return nil, fmt.Errorf("spec: tail stage %d: %w", i+1, err)
		}
		p.Add(stage)
	}
	return p, nil
}

// stage converts one StageSpec.
func (s *StageSpec) stage() (core.Stage, error) {
	if s.Kind == "" {
		return core.Stage{}, fmt.Errorf("missing algorithm kind")
	}
	params := make(core.Params, len(s.Params))
	for name, raw := range s.Params {
		var num float64
		if err := json.Unmarshal(raw, &num); err == nil {
			params[name] = core.Number(num)
			continue
		}
		var str string
		if err := json.Unmarshal(raw, &str); err == nil {
			params[name] = core.Str(str)
			continue
		}
		return core.Stage{}, fmt.Errorf("parameter %q must be a number or string, got %s", name, raw)
	}
	if len(params) == 0 {
		params = nil
	}
	return core.Stage{Kind: core.AlgorithmKind(s.Kind), Params: params}, nil
}

// Marshal encodes a builder pipeline back into the JSON spec format.
func Marshal(p *core.Pipeline) ([]byte, error) {
	f := File{Name: p.Name()}
	for _, b := range p.Branches() {
		bs := BranchSpec{Source: string(b.Source())}
		for _, s := range b.Stages() {
			bs.Stages = append(bs.Stages, stageSpec(s))
		}
		f.Branches = append(f.Branches, bs)
	}
	for _, s := range p.Tail() {
		f.Tail = append(f.Tail, stageSpec(s))
	}
	return json.MarshalIndent(&f, "", "  ")
}

func stageSpec(s core.Stage) StageSpec {
	out := StageSpec{Kind: string(s.Kind)}
	if len(s.Params) > 0 {
		out.Params = make(map[string]json.RawMessage, len(s.Params))
		for name, v := range s.Params {
			var raw []byte
			if v.IsStr {
				raw, _ = json.Marshal(v.Str)
			} else {
				raw, _ = json.Marshal(v.Num)
			}
			out.Params[name] = raw
		}
	}
	return out
}
