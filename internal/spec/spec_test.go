package spec

import (
	"strings"
	"testing"

	"sidewinder/internal/core"
	"sidewinder/internal/ir"
)

const significantMotionJSON = `{
  "name": "significantMotion",
  "branches": [
    {"source": "ACC_X", "stages": [{"kind": "movingAvg", "params": {"size": 10}}]},
    {"source": "ACC_Y", "stages": [{"kind": "movingAvg", "params": {"size": 10}}]},
    {"source": "ACC_Z", "stages": [{"kind": "movingAvg", "params": {"size": 10}}]}
  ],
  "tail": [
    {"kind": "vectorMagnitude"},
    {"kind": "minThreshold", "params": {"min": 15}}
  ]
}`

func TestParseAndValidate(t *testing.T) {
	p, err := Parse([]byte(significantMotionJSON))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "significantMotion" {
		t.Errorf("name = %q", p.Name())
	}
	plan, err := p.Validate(core.DefaultCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Nodes) != 5 {
		t.Errorf("plan has %d nodes, want 5", len(plan.Nodes))
	}
	text := ir.CompileToText(plan)
	if !strings.Contains(text, "1,2,3 -> vectorMagnitude(id=4);") {
		t.Errorf("unexpected IR:\n%s", text)
	}
}

func TestParseEnumAndStringParams(t *testing.T) {
	doc := `{
	  "name": "w",
	  "branches": [
	    {"source": "MIC", "stages": [
	      {"kind": "window", "params": {"size": 64, "shape": "hamming"}},
	      {"kind": "stat", "params": {"op": "variance"}},
	      {"kind": "minThreshold", "params": {"min": 0.5}}
	    ]}
	  ]
	}`
	p, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Validate(core.DefaultCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Nodes[0].Params.Str("shape") != "hamming" {
		t.Error("shape enum lost")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, doc, want string }{
		{"bad json", `{`, "invalid JSON"},
		{"missing kind", `{"branches":[{"source":"ACC_X","stages":[{"params":{}}]}]}`, "missing algorithm kind"},
		{"bad param type", `{"branches":[{"source":"ACC_X","stages":[{"kind":"movingAvg","params":{"size":[1]}}]}]}`, "number or string"},
		{"bad tail param", `{"branches":[{"source":"ACC_X"}],"tail":[{"kind":"abs","params":{"x":{}}}]}`, "tail stage 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	p, err := Parse([]byte(significantMotionJSON))
	if err != nil {
		t.Fatal(err)
	}
	data, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(data)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, data)
	}
	cat := core.DefaultCatalog()
	plan1, err := p.Validate(cat)
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := p2.Validate(cat)
	if err != nil {
		t.Fatal(err)
	}
	if ir.CompileToText(plan1) != ir.CompileToText(plan2) {
		t.Error("round trip changed the compiled program")
	}
}

func TestSemanticErrorsSurfaceAtValidate(t *testing.T) {
	// Unknown algorithm parses fine (syntax) but fails validation
	// (semantics) -- the layering the package doc promises.
	p, err := Parse([]byte(`{"branches":[{"source":"ACC_X","stages":[{"kind":"teleport"}]}]}`))
	if err != nil {
		t.Fatalf("syntax parse should succeed: %v", err)
	}
	if _, err := p.Validate(core.DefaultCatalog()); err == nil {
		t.Fatal("validation should reject unknown algorithm")
	}
}
