package dsp

import "math"

// VectorMagnitude returns sqrt(sum of squares) of the components. It is the
// magnitude-of-acceleration feature of the paper (§3.6) when given the three
// accelerometer axes.
func VectorMagnitude(components ...float64) float64 {
	var s float64
	for _, v := range components {
		s += v * v
	}
	return math.Sqrt(s)
}

// ZeroCrossingRate returns the fraction of adjacent sample pairs in x whose
// signs differ, in [0, 1]. Zero samples are treated as positive, matching
// the common convention. Fewer than two samples yield 0.
func ZeroCrossingRate(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	crossings := 0
	prevNeg := math.Signbit(x[0]) && x[0] != 0
	for _, v := range x[1:] {
		neg := math.Signbit(v) && v != 0
		if neg != prevNeg {
			crossings++
		}
		prevNeg = neg
	}
	return float64(crossings) / float64(len(x)-1)
}

// ZeroCrossingCount returns the number of sign changes in x.
func ZeroCrossingCount(x []float64) int {
	if len(x) < 2 {
		return 0
	}
	crossings := 0
	prevNeg := math.Signbit(x[0]) && x[0] != 0
	for _, v := range x[1:] {
		neg := math.Signbit(v) && v != 0
		if neg != prevNeg {
			crossings++
		}
		prevNeg = neg
	}
	return crossings
}

// Extremum describes a local maximum or minimum found in a signal.
type Extremum struct {
	Index int     // sample index within the analyzed slice
	Value float64 // sample value at the extremum
}

// LocalMaxima returns the local maxima of x whose values lie in [lo, hi].
// A sample is a local maximum if it is strictly greater than its left
// neighbor and at least its right neighbor (plateaus report their first
// sample). Endpoints are never maxima. This is the primitive used by the
// step detector (Libby's method, paper §3.7.1).
func LocalMaxima(x []float64, lo, hi float64) []Extremum {
	var out []Extremum
	for i := 1; i < len(x)-1; i++ {
		if x[i] > x[i-1] && x[i] >= x[i+1] && x[i] >= lo && x[i] <= hi {
			out = append(out, Extremum{Index: i, Value: x[i]})
		}
	}
	return out
}

// LocalMinima returns the local minima of x whose values lie in [lo, hi],
// with conventions mirroring LocalMaxima. Used by the headbutt detector.
func LocalMinima(x []float64, lo, hi float64) []Extremum {
	var out []Extremum
	for i := 1; i < len(x)-1; i++ {
		if x[i] < x[i-1] && x[i] <= x[i+1] && x[i] >= lo && x[i] <= hi {
			out = append(out, Extremum{Index: i, Value: x[i]})
		}
	}
	return out
}

// PeakToMeanRatio returns the ratio of the dominant (non-DC) spectral
// magnitude to the mean magnitude of all non-DC bins in the first half of
// the spectrum. It is the "pitched sound" feature of the siren detector
// (paper §3.7.2): tonal signals have a high ratio, broadband noise a low
// one. It returns 0 for signals too short to analyze.
func PeakToMeanRatio(x []float64, sampleRate float64) (ratio, domFreq float64, err error) {
	if len(x) < 4 {
		return 0, 0, nil
	}
	spec, err := FFTReal(x)
	if err != nil {
		return 0, 0, err
	}
	mags := Magnitudes(spec)
	half := mags[1 : len(mags)/2+1]
	if len(half) == 0 {
		return 0, 0, nil
	}
	best := 0
	var sum float64
	for i, m := range half {
		sum += m
		if m > half[best] {
			best = i
		}
	}
	mean := sum / float64(len(half))
	if mean == 0 {
		return 0, 0, nil
	}
	return half[best] / mean, BinFrequency(best+1, len(spec), sampleRate), nil
}
