package dsp

import (
	"fmt"
	"math"
)

// This file implements the cheap, streaming alternatives to the FFT-based
// algorithms: biquad IIR filters and the Goertzel single-band detector.
// They answer the paper's §3.8 question about which algorithms the
// platform should ship: an IIR filter does per-sample what the FFT filter
// does per block, at a handful of multiply-accumulates — cheap enough for
// an FPU-less microcontroller, where the FFT chain is not.

// Biquad is a direct-form-II-transposed second-order IIR section.
type Biquad struct {
	b0, b1, b2 float64
	a1, a2     float64
	z1, z2     float64
}

// NewLowPassBiquad returns a Butterworth-style low-pass biquad with the
// given cutoff (Hz) at the given sampling rate.
func NewLowPassBiquad(cutoff, sampleRate float64) (*Biquad, error) {
	if err := checkBiquadParams(cutoff, sampleRate); err != nil {
		return nil, err
	}
	w := 2 * math.Pi * cutoff / sampleRate
	cosw, sinw := math.Cos(w), math.Sin(w)
	const q = math.Sqrt2 / 2 // Butterworth Q
	alpha := sinw / (2 * q)
	a0 := 1 + alpha
	return &Biquad{
		b0: (1 - cosw) / 2 / a0,
		b1: (1 - cosw) / a0,
		b2: (1 - cosw) / 2 / a0,
		a1: -2 * cosw / a0,
		a2: (1 - alpha) / a0,
	}, nil
}

// NewHighPassBiquad returns a Butterworth-style high-pass biquad.
func NewHighPassBiquad(cutoff, sampleRate float64) (*Biquad, error) {
	if err := checkBiquadParams(cutoff, sampleRate); err != nil {
		return nil, err
	}
	w := 2 * math.Pi * cutoff / sampleRate
	cosw, sinw := math.Cos(w), math.Sin(w)
	const q = math.Sqrt2 / 2
	alpha := sinw / (2 * q)
	a0 := 1 + alpha
	return &Biquad{
		b0: (1 + cosw) / 2 / a0,
		b1: -(1 + cosw) / a0,
		b2: (1 + cosw) / 2 / a0,
		a1: -2 * cosw / a0,
		a2: (1 - alpha) / a0,
	}, nil
}

func checkBiquadParams(cutoff, sampleRate float64) error {
	if sampleRate <= 0 {
		return fmt.Errorf("dsp: biquad sample rate must be positive, got %g", sampleRate)
	}
	if cutoff <= 0 || cutoff >= sampleRate/2 {
		return fmt.Errorf("dsp: biquad cutoff %g Hz outside (0, Nyquist=%g)", cutoff, sampleRate/2)
	}
	return nil
}

// Push filters one sample. ok is always true: IIR filters are
// sample-synchronous.
func (f *Biquad) Push(x float64) (y float64, ok bool) {
	y = f.b0*x + f.z1
	f.z1 = f.b1*x - f.a1*y + f.z2
	f.z2 = f.b2*x - f.a2*y
	return y, true
}

// PushBlock filters src, appending outputs to dst[:0]; IIR filters are
// sample-synchronous so skip is always 0. The loop runs the exact Push
// recurrence with the state held in locals, so results are bit-identical.
func (f *Biquad) PushBlock(dst, src []float64) (out []float64, skip int) {
	out = dst[:0]
	z1, z2 := f.z1, f.z2
	for _, x := range src {
		y := f.b0*x + z1
		z1 = f.b1*x - f.a1*y + z2
		z2 = f.b2*x - f.a2*y
		out = append(out, y)
	}
	f.z1, f.z2 = z1, z2
	return out, 0
}

// Reset clears the filter state.
func (f *Biquad) Reset() { f.z1, f.z2 = 0, 0 }

// Goertzel detects energy at a single target frequency over fixed-size
// blocks using the Goertzel algorithm: per sample it costs one multiply
// and two adds, and per block one small wrap-up — hundreds of times
// cheaper than an FFT when only one band matters. It emits the ratio of
// target-band amplitude to the block's RMS, a normalized "how tonal at
// this frequency" score.
type Goertzel struct {
	coeff     float64
	blockSize int

	s1, s2 float64
	energy float64
	n      int
}

// NewGoertzel returns a detector for the target frequency (Hz) at the
// given sampling rate, evaluated every blockSize samples.
func NewGoertzel(freq, sampleRate float64, blockSize int) (*Goertzel, error) {
	if sampleRate <= 0 {
		return nil, fmt.Errorf("dsp: goertzel sample rate must be positive, got %g", sampleRate)
	}
	if freq <= 0 || freq >= sampleRate/2 {
		return nil, fmt.Errorf("dsp: goertzel frequency %g Hz outside (0, Nyquist=%g)", freq, sampleRate/2)
	}
	if blockSize < 8 {
		return nil, fmt.Errorf("dsp: goertzel block size must be >= 8, got %d", blockSize)
	}
	w := 2 * math.Pi * freq / sampleRate
	return &Goertzel{coeff: 2 * math.Cos(w), blockSize: blockSize}, nil
}

// BlockSize returns the detector's block length.
func (g *Goertzel) BlockSize() int { return g.blockSize }

// Push processes one sample. At each block boundary it emits the
// normalized target-band score and resets for the next block.
func (g *Goertzel) Push(x float64) (score float64, ok bool) {
	s0 := x + g.coeff*g.s1 - g.s2
	g.s2 = g.s1
	g.s1 = s0
	g.energy += x * x
	g.n++
	if g.n < g.blockSize {
		return 0, false
	}
	return g.finish()
}

// pushRun feeds a run of samples that must not cross a block boundary
// (len(src) <= blockSize - n); at an exact boundary it emits. Same math as
// a Push loop with the recurrence state held in locals.
func (g *Goertzel) pushRun(src []float64) (score float64, ok bool) {
	s1, s2, energy := g.s1, g.s2, g.energy
	for _, x := range src {
		s0 := x + g.coeff*s1 - s2
		s2 = s1
		s1 = s0
		energy += x * x
	}
	g.s1, g.s2, g.energy = s1, s2, energy
	g.n += len(src)
	if g.n < g.blockSize {
		return 0, false
	}
	return g.finish()
}

// finish wraps up a full block: magnitude of the target bin normalized by
// the block RMS, then state reset for the next block.
func (g *Goertzel) finish() (score float64, ok bool) {
	power := g.s1*g.s1 + g.s2*g.s2 - g.coeff*g.s1*g.s2
	if power < 0 {
		power = 0
	}
	amp := math.Sqrt(power) * 2 / float64(g.blockSize)
	rms := math.Sqrt(g.energy / float64(g.blockSize))
	g.s1, g.s2, g.energy, g.n = 0, 0, 0, 0
	if rms == 0 {
		return 0, true
	}
	return amp / rms, true
}

// Reset clears all block state.
func (g *Goertzel) Reset() { g.s1, g.s2, g.energy, g.n = 0, 0, 0, 0 }

// GoertzelBank scans a frequency band with several Goertzel detectors and
// emits the best normalized score per block: a poor man's "is there a tone
// anywhere in [lo, hi]" feature cheap enough for the MSP430, unlike the
// FFT chain (paper §4: the MSP430 "was unable to run the FFT-based
// low-pass filter in real-time").
type GoertzelBank struct {
	dets []*Goertzel
}

// NewGoertzelBank places n detectors evenly across [lo, hi] Hz.
func NewGoertzelBank(lo, hi, sampleRate float64, blockSize, n int) (*GoertzelBank, error) {
	if n < 1 {
		return nil, fmt.Errorf("dsp: goertzel bank needs at least one detector, got %d", n)
	}
	if lo > hi {
		return nil, fmt.Errorf("dsp: goertzel bank lo %g > hi %g", lo, hi)
	}
	bank := &GoertzelBank{}
	for i := 0; i < n; i++ {
		f := lo
		if n > 1 {
			f = lo + (hi-lo)*float64(i)/float64(n-1)
		}
		det, err := NewGoertzel(f, sampleRate, blockSize)
		if err != nil {
			return nil, err
		}
		bank.dets = append(bank.dets, det)
	}
	return bank, nil
}

// Size returns the number of detectors in the bank.
func (b *GoertzelBank) Size() int { return len(b.dets) }

// Push processes one sample through every detector; at block boundaries
// it emits the best score across the bank.
func (b *GoertzelBank) Push(x float64) (best float64, ok bool) {
	for _, d := range b.dets {
		score, done := d.Push(x)
		if done {
			ok = true
			if score > best {
				best = score
			}
		}
	}
	return best, ok
}

// Consume ingests a prefix of src: exactly enough samples to reach the
// next block boundary (all detectors share the same block size and phase),
// or all of src if the boundary is out of reach. At a boundary it emits
// the best score across the bank, exactly as a Push loop would.
func (b *GoertzelBank) Consume(src []float64) (n int, best float64, ok bool) {
	if len(b.dets) == 0 {
		return len(src), 0, false
	}
	d0 := b.dets[0]
	n = d0.blockSize - d0.n
	if n > len(src) {
		n = len(src)
	}
	for _, d := range b.dets {
		score, done := d.pushRun(src[:n])
		if done {
			ok = true
			if score > best {
				best = score
			}
		}
	}
	return n, best, ok
}

// Reset clears every detector.
func (b *GoertzelBank) Reset() {
	for _, d := range b.dets {
		d.Reset()
	}
}
