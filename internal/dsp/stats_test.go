package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStatsKnownValues(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(x); !approxEqual(got, 5, eps) {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := Variance(x); !approxEqual(got, 4, eps) {
		t.Errorf("Variance = %g, want 4", got)
	}
	if got := StdDev(x); !approxEqual(got, 2, eps) {
		t.Errorf("StdDev = %g, want 2", got)
	}
	if got := Min(x); got != 2 {
		t.Errorf("Min = %g, want 2", got)
	}
	if got := Max(x); got != 9 {
		t.Errorf("Max = %g, want 9", got)
	}
	if got := Range(x); got != 7 {
		t.Errorf("Range = %g, want 7", got)
	}
	if got := Sum(x); got != 40 {
		t.Errorf("Sum = %g, want 40", got)
	}
}

func TestStatsEmptySlices(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g", got)
	}
	if got := Variance(nil); got != 0 {
		t.Errorf("Variance(nil) = %g", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("Median(nil) = %g", got)
	}
	if got := RMS(nil); got != 0 {
		t.Errorf("RMS(nil) = %g", got)
	}
	if got := Range(nil); got != 0 {
		t.Errorf("Range(nil) = %g", got)
	}
	if got := MeanAbs(nil); got != 0 {
		t.Errorf("MeanAbs(nil) = %g", got)
	}
	if !math.IsInf(Min(nil), 1) {
		t.Error("Min(nil) should be +Inf")
	}
	if !math.IsInf(Max(nil), -1) {
		t.Error("Max(nil) should be -Inf")
	}
}

func TestMedian(t *testing.T) {
	for _, tc := range []struct {
		x    []float64
		want float64
	}{
		{[]float64{1}, 1},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{5, 5, 5, 5}, 5},
	} {
		if got := Median(tc.x); !approxEqual(got, tc.want, eps) {
			t.Errorf("Median(%v) = %g, want %g", tc.x, got, tc.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	x := []float64{3, 1, 2}
	Median(x)
	if x[0] != 3 || x[1] != 1 || x[2] != 2 {
		t.Errorf("Median mutated input: %v", x)
	}
}

func TestRMS(t *testing.T) {
	if got := RMS([]float64{3, 4, 0, 0}); !approxEqual(got, 2.5, eps) {
		t.Errorf("RMS = %g, want 2.5", got)
	}
}

func TestMeanAbsAndEnergy(t *testing.T) {
	x := []float64{-1, 2, -3}
	if got := MeanAbs(x); !approxEqual(got, 2, eps) {
		t.Errorf("MeanAbs = %g, want 2", got)
	}
	if got := Energy(x); !approxEqual(got, 14, eps) {
		t.Errorf("Energy = %g, want 14", got)
	}
}

func TestClamp(t *testing.T) {
	for _, tc := range []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5}, {-1, 0, 10, 0}, {11, 0, 10, 10}, {0, 0, 0, 0},
	} {
		if got := Clamp(tc.v, tc.lo, tc.hi); got != tc.want {
			t.Errorf("Clamp(%g,%g,%g) = %g, want %g", tc.v, tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // skip pathological inputs
			}
		}
		return Variance(xs) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanBoundedByMinMaxProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		if n == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, int(n))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		m := Mean(xs)
		return m >= Min(xs)-eps && m <= Max(xs)+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStdDevScalesLinearlyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		scaled := make([]float64, len(xs))
		for i, v := range xs {
			scaled[i] = 3 * v
		}
		return approxEqual(StdDev(scaled), 3*StdDev(xs), 1e-9*(1+StdDev(xs)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
