package dsp

import "fmt"

// Threshold is a streaming admission-control gate (paper §3.6 "Admission
// Control"). It passes a value through only when the configured condition
// holds; otherwise it produces nothing. A threshold at the end of a
// Sidewinder pipeline therefore decides when the main processor wakes up.
type Threshold struct {
	min    float64
	max    float64
	hasMin bool
	hasMax bool
}

// NewMinThreshold passes values >= min.
func NewMinThreshold(min float64) *Threshold {
	return &Threshold{min: min, hasMin: true}
}

// NewMaxThreshold passes values <= max.
func NewMaxThreshold(max float64) *Threshold {
	return &Threshold{max: max, hasMax: true}
}

// NewBandThreshold passes values in [min, max]. It returns an error when
// min > max.
func NewBandThreshold(min, max float64) (*Threshold, error) {
	if min > max {
		return nil, fmt.Errorf("dsp: band threshold min %g > max %g", min, max)
	}
	return &Threshold{min: min, max: max, hasMin: true, hasMax: true}, nil
}

// Push evaluates the gate. When the condition holds the input value is
// returned with ok=true.
func (t *Threshold) Push(v float64) (out float64, ok bool) {
	if t.hasMin && v < t.min {
		return 0, false
	}
	if t.hasMax && v > t.max {
		return 0, false
	}
	return v, true
}

// Admits reports whether v satisfies the gate without producing output.
func (t *Threshold) Admits(v float64) bool {
	_, ok := t.Push(v)
	return ok
}

// Debouncer suppresses repeated triggers: after it passes a value it stays
// closed for holdOff further samples. It is used to model admission-control
// stages that should fire once per event rather than once per sample.
type Debouncer struct {
	holdOff   int
	remaining int
}

// NewDebouncer returns a Debouncer with the given hold-off sample count.
func NewDebouncer(holdOff int) (*Debouncer, error) {
	if holdOff < 0 {
		return nil, fmt.Errorf("dsp: debouncer hold-off must be non-negative, got %d", holdOff)
	}
	return &Debouncer{holdOff: holdOff}, nil
}

// Push passes v through unless the debouncer is in its hold-off period.
func (d *Debouncer) Push(v float64) (out float64, ok bool) {
	if d.remaining > 0 {
		d.remaining--
		return 0, false
	}
	d.remaining = d.holdOff
	return v, true
}

// Tick advances the hold-off clock for samples that did not trigger the
// upstream condition. Call it once per suppressed upstream sample so the
// hold-off is measured in stream time, not trigger count.
func (d *Debouncer) Tick() {
	if d.remaining > 0 {
		d.remaining--
	}
}

// Reset reopens the debouncer immediately.
func (d *Debouncer) Reset() { d.remaining = 0 }
