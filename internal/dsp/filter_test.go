package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMovingAveragerRejectsBadSize(t *testing.T) {
	for _, size := range []int{0, -1} {
		if _, err := NewMovingAverager(size); err == nil {
			t.Errorf("NewMovingAverager(%d) should fail", size)
		}
	}
}

func TestMovingAveragerWarmup(t *testing.T) {
	m, err := NewMovingAverager(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Push(1); ok {
		t.Error("output after 1 of 3 samples")
	}
	if _, ok := m.Push(2); ok {
		t.Error("output after 2 of 3 samples")
	}
	avg, ok := m.Push(3)
	if !ok || !approxEqual(avg, 2, eps) {
		t.Errorf("after warmup got (%g, %v), want (2, true)", avg, ok)
	}
	avg, ok = m.Push(7)
	if !ok || !approxEqual(avg, 4, eps) {
		t.Errorf("sliding average = (%g, %v), want (4, true)", avg, ok)
	}
}

func TestMovingAveragerReset(t *testing.T) {
	m, _ := NewMovingAverager(2)
	m.Push(1)
	m.Push(2)
	m.Reset()
	if _, ok := m.Push(5); ok {
		t.Error("Reset should require a fresh warmup")
	}
	avg, ok := m.Push(7)
	if !ok || !approxEqual(avg, 6, eps) {
		t.Errorf("post-reset average = (%g, %v), want (6, true)", avg, ok)
	}
}

func TestMovingAveragerMatchesBatchMeanProperty(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		size := int(sizeRaw%16) + 1
		rng := rand.New(rand.NewSource(seed))
		m, err := NewMovingAverager(size)
		if err != nil {
			return false
		}
		xs := make([]float64, size+20)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		for i, v := range xs {
			avg, ok := m.Push(v)
			if i < size-1 {
				if ok {
					return false
				}
				continue
			}
			if !ok {
				return false
			}
			if !approxEqual(avg, Mean(xs[i-size+1:i+1]), 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEMAValidation(t *testing.T) {
	for _, alpha := range []float64{0, -0.5, 1.5} {
		if _, err := NewEMA(alpha); err == nil {
			t.Errorf("NewEMA(%g) should fail", alpha)
		}
	}
	if _, err := NewEMA(1); err != nil {
		t.Errorf("NewEMA(1) should succeed: %v", err)
	}
}

func TestEMAFirstSamplePrimes(t *testing.T) {
	e, err := NewEMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := e.Push(10)
	if !ok || v != 10 {
		t.Errorf("first push = (%g, %v), want (10, true)", v, ok)
	}
	v, _ = e.Push(0)
	if !approxEqual(v, 5, eps) {
		t.Errorf("second push = %g, want 5", v)
	}
	e.Reset()
	v, _ = e.Push(42)
	if v != 42 {
		t.Errorf("post-reset push = %g, want 42", v)
	}
}

func TestEMAConvergesToConstantProperty(t *testing.T) {
	f := func(target float64, alphaRaw uint8) bool {
		if math.IsNaN(target) || math.IsInf(target, 0) || math.Abs(target) > 1e6 {
			return true
		}
		alpha := float64(alphaRaw%9+1) / 10 // 0.1 .. 0.9
		e, err := NewEMA(alpha)
		if err != nil {
			return false
		}
		var v float64
		for i := 0; i < 500; i++ {
			v, _ = e.Push(target)
		}
		return approxEqual(v, target, 1e-6*(1+math.Abs(target)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockFilterValidation(t *testing.T) {
	if _, err := NewBlockFilter(LowPass, 10, 100, 6); err == nil {
		t.Error("non-power-of-two block size should fail")
	}
	if _, err := NewBlockFilter(LowPass, 10, 0, 8); err == nil {
		t.Error("zero sample rate should fail")
	}
	if _, err := NewBlockFilter(LowPass, 60, 100, 8); err == nil {
		t.Error("cutoff above Nyquist should fail")
	}
	if _, err := NewBlockFilter(LowPass, -1, 100, 8); err == nil {
		t.Error("negative cutoff should fail")
	}
}

func TestBlockFilterEmitsFilteredBlocks(t *testing.T) {
	const rate = 1000.0
	bf, err := NewBlockFilter(LowPass, 50, rate, 256)
	if err != nil {
		t.Fatal(err)
	}
	if bf.BlockSize() != 256 {
		t.Fatalf("BlockSize = %d", bf.BlockSize())
	}
	emitted := 0
	for i := 0; i < 512; i++ {
		ti := float64(i) / rate
		v := math.Sin(2*math.Pi*10*ti) + math.Sin(2*math.Pi*300*ti)
		block, ok := bf.Push(v)
		if ok {
			emitted++
			if len(block) != 256 {
				t.Fatalf("block length %d", len(block))
			}
			freq, _, err := DominantFrequency(block, rate)
			if err != nil {
				t.Fatal(err)
			}
			if freq > 50 {
				t.Errorf("low-passed block has dominant frequency %g Hz", freq)
			}
		}
	}
	if emitted != 2 {
		t.Errorf("emitted %d blocks, want 2", emitted)
	}
}

func TestBlockFilterHighPass(t *testing.T) {
	const rate = 8000.0
	bf, err := NewBlockFilter(HighPass, 750, rate, 512)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 511; i++ {
		if _, ok := bf.Push(math.Sin(2 * math.Pi * 100 * float64(i) / rate)); ok {
			t.Fatal("premature block emission")
		}
	}
	block, ok := bf.Push(0)
	if !ok {
		t.Fatal("no block after 512 samples")
	}
	if r := RMS(block); r > 0.05 {
		t.Errorf("100 Hz tone should be removed by 750 Hz high-pass, RMS = %g", r)
	}
}

func TestBlockFilterReset(t *testing.T) {
	bf, _ := NewBlockFilter(LowPass, 10, 100, 8)
	for i := 0; i < 7; i++ {
		bf.Push(1)
	}
	bf.Reset()
	if _, ok := bf.Push(1); ok {
		t.Error("Reset should discard buffered samples")
	}
}

// TestIIRBlockFilterResetClearsState is the regression test for the Reset
// bug: the IIR backends carry biquad state across blocks, and Reset used to
// truncate only the block buffer, so the first block after Reset was colored
// by the previous stream. A reset filter must reproduce the first stream's
// output exactly.
func TestIIRBlockFilterResetClearsState(t *testing.T) {
	mk := []struct {
		name string
		mk   func() (*BlockFilter, error)
	}{
		{"float", func() (*BlockFilter, error) { return NewIIRBlockFilter(LowPass, 10, 100, 16) }},
		{"q15", func() (*BlockFilter, error) { return NewIIRBlockFilterQ15(LowPass, 10, 100, 16) }},
	}
	src := make([]float64, 64)
	for i := range src {
		src[i] = math.Sin(float64(i)/2) + 0.5
	}
	for _, c := range mk {
		bf, err := c.mk()
		if err != nil {
			t.Fatal(err)
		}
		run := func() []float64 {
			var out []float64
			for _, v := range src {
				if block, ok := bf.Push(v); ok {
					out = append(out, block...)
				}
			}
			return out
		}
		first := run()
		// Leave both buffered samples and biquad state behind, then Reset.
		bf.Push(3)
		bf.Push(-7)
		bf.Reset()
		second := run()
		if len(first) != len(second) {
			t.Fatalf("%s: %d outputs after reset, want %d", c.name, len(second), len(first))
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("%s: output %d = %g after Reset, want %g (stale IIR state)",
					c.name, i, second[i], first[i])
			}
		}
	}
}

func TestWindowerValidation(t *testing.T) {
	if _, err := NewWindower(0, 1, Rectangular); err == nil {
		t.Error("zero size should fail")
	}
	if _, err := NewWindower(4, 0, Rectangular); err == nil {
		t.Error("zero step should fail")
	}
	if _, err := NewWindower(4, 5, Rectangular); err == nil {
		t.Error("step > size should fail")
	}
}

func TestWindowerNonOverlapping(t *testing.T) {
	w, err := NewWindower(3, 3, Rectangular)
	if err != nil {
		t.Fatal(err)
	}
	var windows [][]float64
	for i := 1; i <= 9; i++ {
		if win, ok := w.Push(float64(i)); ok {
			// Push reuses its buffer; retained windows must be copied.
			windows = append(windows, append([]float64(nil), win...))
		}
	}
	if len(windows) != 3 {
		t.Fatalf("got %d windows, want 3", len(windows))
	}
	want := [][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	for i := range want {
		for j := range want[i] {
			if windows[i][j] != want[i][j] {
				t.Errorf("window %d = %v, want %v", i, windows[i], want[i])
			}
		}
	}
}

func TestWindowerOverlapping(t *testing.T) {
	w, err := NewWindower(4, 2, Rectangular)
	if err != nil {
		t.Fatal(err)
	}
	var windows [][]float64
	for i := 1; i <= 8; i++ {
		if win, ok := w.Push(float64(i)); ok {
			windows = append(windows, append([]float64(nil), win...))
		}
	}
	want := [][]float64{{1, 2, 3, 4}, {3, 4, 5, 6}, {5, 6, 7, 8}}
	if len(windows) != len(want) {
		t.Fatalf("got %d windows, want %d: %v", len(windows), len(want), windows)
	}
	for i := range want {
		for j := range want[i] {
			if windows[i][j] != want[i][j] {
				t.Errorf("window %d = %v, want %v", i, windows[i], want[i])
			}
		}
	}
}

func TestWindowerHammingTaper(t *testing.T) {
	w, err := NewWindower(8, 8, Hamming)
	if err != nil {
		t.Fatal(err)
	}
	var win []float64
	for i := 0; i < 8; i++ {
		win, _ = w.Push(1)
	}
	coeffs := HammingCoefficients(8)
	for i := range coeffs {
		if !approxEqual(win[i], coeffs[i], eps) {
			t.Errorf("tapered[%d] = %g, want %g", i, win[i], coeffs[i])
		}
	}
	// Hamming endpoints are 0.08, peak near center.
	if !approxEqual(coeffs[0], 0.08, 1e-9) {
		t.Errorf("Hamming[0] = %g, want 0.08", coeffs[0])
	}
}

func TestHammingSingleCoefficient(t *testing.T) {
	c := HammingCoefficients(1)
	if len(c) != 1 || c[0] != 1 {
		t.Errorf("HammingCoefficients(1) = %v, want [1]", c)
	}
}

func TestPartition(t *testing.T) {
	wins, err := Partition([]float64{1, 2, 3, 4, 5, 6, 7}, 2, 2, Rectangular)
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 3 {
		t.Fatalf("got %d windows, want 3 (trailing sample dropped)", len(wins))
	}
	if _, err := Partition(nil, 0, 1, Rectangular); err == nil {
		t.Error("invalid size should propagate error")
	}
}

func TestParseWindowShape(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    WindowShape
		wantErr bool
	}{
		{"hamming", Hamming, false},
		{"rectangular", Rectangular, false},
		{"rect", Rectangular, false},
		{"", Rectangular, false},
		{"kaiser", Rectangular, true},
	} {
		got, err := ParseWindowShape(tc.in)
		if (err != nil) != tc.wantErr || got != tc.want {
			t.Errorf("ParseWindowShape(%q) = (%v, %v)", tc.in, got, err)
		}
	}
	if Hamming.String() != "hamming" || Rectangular.String() != "rectangular" {
		t.Error("String round-trip names wrong")
	}
	if WindowShape(99).String() == "" {
		t.Error("unknown shape should stringify diagnostically")
	}
}

func TestWindowerReset(t *testing.T) {
	w, _ := NewWindower(3, 3, Rectangular)
	w.Push(1)
	w.Push(2)
	w.Reset()
	if _, ok := w.Push(3); ok {
		t.Error("Reset should discard partial window")
	}
	if w.Size() != 3 {
		t.Errorf("Size = %d", w.Size())
	}
}
