// Package dsp implements the sensor-data processing algorithms that the
// Sidewinder platform ships on the low-power sensor hub (paper §3.6):
// windowing, Fourier transforms, noise-reduction and FFT-based filters,
// feature extraction (vector magnitude, zero-crossing rate, statistics,
// dominant frequency) and admission-control thresholds.
//
// The package has two layers:
//
//   - Pure functions (FFT, Mean, ZeroCrossingRate, ...) that operate on
//     slices. These are the mathematical core and are shared by the hub
//     interpreter and by main-CPU application classifiers.
//
//   - Streaming processors (MovingAverager, Windower, ...) that keep
//     per-instance state and consume one sample at a time, mirroring the
//     per-algorithm data structures of the paper's C runtime (§3.5-3.6).
//     A streaming processor may not produce output for every input; the
//     caller checks the returned ok flag (the paper's hasResult flag).
package dsp
