package dsp

import (
	"fmt"
	"math"
	"math/bits"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// NextPowerOfTwo returns the smallest power of two >= n. It panics if n is
// not positive or the result would overflow an int.
func NextPowerOfTwo(n int) int {
	if n <= 0 {
		panic("dsp: NextPowerOfTwo requires n > 0")
	}
	if IsPowerOfTwo(n) {
		return n
	}
	p := 1 << bits.Len(uint(n))
	if p <= 0 {
		panic("dsp: NextPowerOfTwo overflow")
	}
	return p
}

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. len(x) must be a power of two. The transform is
// unnormalized: IFFT(FFT(x)) == x.
func FFT(x []complex128) error {
	return fftInternal(x, false)
}

// IFFT computes the in-place inverse FFT of x, including the 1/N
// normalization. len(x) must be a power of two.
func IFFT(x []complex128) error {
	if err := fftInternal(x, true); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
	return nil
}

func fftInternal(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if !IsPowerOfTwo(n) {
		return fmt.Errorf("dsp: FFT length %d is not a power of two", n)
	}

	// Bit-reversal permutation.
	shift := bits.UintSize - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}

	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		angle := sign * 2 * math.Pi / float64(size)
		wStep := complex(math.Cos(angle), math.Sin(angle))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				even := x[start+k]
				odd := x[start+k+half] * w
				x[start+k] = even + odd
				x[start+k+half] = even - odd
				w *= wStep
			}
		}
	}
	return nil
}

// FFTReal transforms a real-valued signal into its complex spectrum. The
// input is zero-padded to the next power of two. The returned slice has the
// padded length.
func FFTReal(x []float64) ([]complex128, error) {
	if len(x) == 0 {
		return nil, nil
	}
	n := NextPowerOfTwo(len(x))
	buf := make([]complex128, n)
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	if err := FFT(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Magnitudes returns |X[k]| for each spectral bin.
func Magnitudes(spec []complex128) []float64 {
	out := make([]float64, len(spec))
	for i, c := range spec {
		out[i] = math.Hypot(real(c), imag(c))
	}
	return out
}

// BinFrequency returns the center frequency in Hz of spectral bin k for a
// transform of length n over a signal sampled at sampleRate Hz.
func BinFrequency(k, n int, sampleRate float64) float64 {
	if n == 0 {
		return 0
	}
	return float64(k) * sampleRate / float64(n)
}

// FrequencyBin returns the spectral bin index whose center frequency is
// closest to freq for a transform of length n at the given sample rate.
// The result is clamped to [0, n/2].
func FrequencyBin(freq float64, n int, sampleRate float64) int {
	if sampleRate <= 0 || n == 0 {
		return 0
	}
	k := int(math.Round(freq * float64(n) / sampleRate))
	if k < 0 {
		k = 0
	}
	if k > n/2 {
		k = n / 2
	}
	return k
}

// DominantFrequency returns the frequency (Hz) and magnitude of the largest
// spectral bin of the real signal x, ignoring the DC bin. Only the first
// half of the spectrum is searched (the signal is real, so the spectrum is
// conjugate-symmetric).
func DominantFrequency(x []float64, sampleRate float64) (freq, magnitude float64, err error) {
	if len(x) < 2 {
		return 0, 0, nil
	}
	spec, err := FFTReal(x)
	if err != nil {
		return 0, 0, err
	}
	mags := Magnitudes(spec)
	best := 1
	for k := 2; k <= len(mags)/2; k++ {
		if mags[k] > mags[best] {
			best = k
		}
	}
	return BinFrequency(best, len(spec), sampleRate), mags[best], nil
}

// LowPassFFT applies a brick-wall low-pass filter at cutoff Hz to the real
// signal x by zeroing spectral bins above the cutoff and inverse
// transforming. The result has len(x) samples.
func LowPassFFT(x []float64, cutoff, sampleRate float64) ([]float64, error) {
	return fftFilter(x, sampleRate, func(f float64) bool { return f <= cutoff })
}

// HighPassFFT applies a brick-wall high-pass filter at cutoff Hz to the
// real signal x. The result has len(x) samples.
func HighPassFFT(x []float64, cutoff, sampleRate float64) ([]float64, error) {
	return fftFilter(x, sampleRate, func(f float64) bool { return f >= cutoff })
}

// BandPassFFT keeps only spectral content between low and high Hz.
func BandPassFFT(x []float64, low, high, sampleRate float64) ([]float64, error) {
	return fftFilter(x, sampleRate, func(f float64) bool { return f >= low && f <= high })
}

// fftFilter zeroes every bin whose center frequency fails keep, preserving
// conjugate symmetry so the output stays real.
func fftFilter(x []float64, sampleRate float64, keep func(freq float64) bool) ([]float64, error) {
	if len(x) == 0 {
		return nil, nil
	}
	spec, err := FFTReal(x)
	if err != nil {
		return nil, err
	}
	n := len(spec)
	for k := 0; k <= n/2; k++ {
		if !keep(BinFrequency(k, n, sampleRate)) {
			spec[k] = 0
			if k != 0 && k != n/2 {
				spec[n-k] = 0
			}
		}
	}
	if err := IFFT(spec); err != nil {
		return nil, err
	}
	out := make([]float64, len(x))
	for i := range out {
		out[i] = real(spec[i])
	}
	return out, nil
}
