package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// NextPowerOfTwo returns the smallest power of two >= n. It panics if n is
// not positive or the result would overflow an int.
func NextPowerOfTwo(n int) int {
	if n <= 0 {
		panic("dsp: NextPowerOfTwo requires n > 0")
	}
	if IsPowerOfTwo(n) {
		return n
	}
	p := 1 << bits.Len(uint(n))
	if p <= 0 {
		panic("dsp: NextPowerOfTwo overflow")
	}
	return p
}

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. len(x) must be a power of two. The transform is
// unnormalized: IFFT(FFT(x)) == x.
func FFT(x []complex128) error {
	return fftInternal(x, false)
}

// IFFT computes the in-place inverse FFT of x, including the 1/N
// normalization. len(x) must be a power of two.
func IFFT(x []complex128) error {
	if err := fftInternal(x, true); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
	return nil
}

// twiddleCache memoizes the forward twiddle factors per transform size.
// Tables are immutable once published, so the lock-free sync.Map keeps
// concurrent machines (one per simulation cell in the parallel evaluation
// harness) race-free without per-transform recomputation or allocation.
var twiddleCache sync.Map // int -> []complex128, length n/2

// twiddles returns e^(-2πik/n) for k in [0, n/2).
func twiddles(n int) []complex128 {
	if v, ok := twiddleCache.Load(n); ok {
		return v.([]complex128)
	}
	tw := make([]complex128, n/2)
	for k := range tw {
		angle := -2 * math.Pi * float64(k) / float64(n)
		tw[k] = complex(math.Cos(angle), math.Sin(angle))
	}
	v, _ := twiddleCache.LoadOrStore(n, tw)
	return v.([]complex128)
}

func fftInternal(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if !IsPowerOfTwo(n) {
		return fmt.Errorf("dsp: FFT length %d is not a power of two", n)
	}

	// Bit-reversal permutation.
	shift := bits.UintSize - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}

	// Table lookups replace the incremental w *= wStep recurrence: no
	// per-stage trigonometry and no error accumulation across a stage.
	tw := twiddles(n)
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		stride := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := tw[k*stride]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				even := x[start+k]
				odd := x[start+k+half] * w
				x[start+k] = even + odd
				x[start+k+half] = even - odd
			}
		}
	}
	return nil
}

// FFTReal transforms a real-valued signal into its complex spectrum. The
// input is zero-padded to the next power of two. The returned slice has the
// padded length and is freshly allocated; per-sample hot paths should use
// FFTRealInto with a reused buffer instead.
func FFTReal(x []float64) ([]complex128, error) {
	if len(x) == 0 {
		return nil, nil
	}
	return FFTRealInto(nil, x)
}

// FFTRealInto is FFTReal writing into dst, growing it only when its
// capacity is too small. It returns the spectrum slice (dst, possibly
// reallocated) so streaming callers can carry one scratch buffer across
// transforms and stay allocation-free in steady state. An empty input
// yields an empty spectrum.
func FFTRealInto(dst []complex128, x []float64) ([]complex128, error) {
	if len(x) == 0 {
		return dst[:0], nil
	}
	n := NextPowerOfTwo(len(x))
	if cap(dst) < n {
		dst = make([]complex128, n)
	}
	dst = dst[:n]
	for i, v := range x {
		dst[i] = complex(v, 0)
	}
	for i := len(x); i < n; i++ {
		dst[i] = 0
	}
	if err := FFT(dst); err != nil {
		return dst, err
	}
	return dst, nil
}

// Magnitudes returns |X[k]| for each spectral bin.
func Magnitudes(spec []complex128) []float64 {
	return MagnitudesInto(nil, spec)
}

// MagnitudesInto writes |X[k]| for each spectral bin into dst, growing it
// only when its capacity is too small, and returns the (possibly
// reallocated) slice.
func MagnitudesInto(dst []float64, spec []complex128) []float64 {
	if cap(dst) < len(spec) {
		dst = make([]float64, len(spec))
	}
	dst = dst[:len(spec)]
	for i, c := range spec {
		dst[i] = math.Hypot(real(c), imag(c))
	}
	return dst
}

// BinFrequency returns the center frequency in Hz of spectral bin k for a
// transform of length n over a signal sampled at sampleRate Hz.
func BinFrequency(k, n int, sampleRate float64) float64 {
	if n == 0 {
		return 0
	}
	return float64(k) * sampleRate / float64(n)
}

// FrequencyBin returns the spectral bin index whose center frequency is
// closest to freq for a transform of length n at the given sample rate.
// The result is clamped to [0, n/2].
func FrequencyBin(freq float64, n int, sampleRate float64) int {
	if sampleRate <= 0 || n == 0 {
		return 0
	}
	k := int(math.Round(freq * float64(n) / sampleRate))
	if k < 0 {
		k = 0
	}
	if k > n/2 {
		k = n / 2
	}
	return k
}

// DominantFrequency returns the frequency (Hz) and magnitude of the largest
// spectral bin of the real signal x, ignoring the DC bin. Only the first
// half of the spectrum is searched (the signal is real, so the spectrum is
// conjugate-symmetric).
func DominantFrequency(x []float64, sampleRate float64) (freq, magnitude float64, err error) {
	if len(x) < 2 {
		return 0, 0, nil
	}
	spec, err := FFTReal(x)
	if err != nil {
		return 0, 0, err
	}
	mags := Magnitudes(spec)
	best := 1
	for k := 2; k <= len(mags)/2; k++ {
		if mags[k] > mags[best] {
			best = k
		}
	}
	return BinFrequency(best, len(spec), sampleRate), mags[best], nil
}

// LowPassFFT applies a brick-wall low-pass filter at cutoff Hz to the real
// signal x by zeroing spectral bins above the cutoff and inverse
// transforming. The result has len(x) samples.
func LowPassFFT(x []float64, cutoff, sampleRate float64) ([]float64, error) {
	return fftFilter(x, sampleRate, func(f float64) bool { return f <= cutoff })
}

// HighPassFFT applies a brick-wall high-pass filter at cutoff Hz to the
// real signal x. The result has len(x) samples.
func HighPassFFT(x []float64, cutoff, sampleRate float64) ([]float64, error) {
	return fftFilter(x, sampleRate, func(f float64) bool { return f >= cutoff })
}

// BandPassFFT keeps only spectral content between low and high Hz.
func BandPassFFT(x []float64, low, high, sampleRate float64) ([]float64, error) {
	return fftFilter(x, sampleRate, func(f float64) bool { return f >= low && f <= high })
}

// fftFilter zeroes every bin whose center frequency fails keep, preserving
// conjugate symmetry so the output stays real.
func fftFilter(x []float64, sampleRate float64, keep func(freq float64) bool) ([]float64, error) {
	if len(x) == 0 {
		return nil, nil
	}
	out, _, err := fftFilterInto(nil, nil, x, sampleRate, keep)
	return out, err
}

// fftFilterInto is fftFilter with caller-owned scratch: dst receives the
// filtered block and spec is the spectrum workspace, both grown only when
// too small. It returns the (possibly reallocated) slices so streaming
// callers such as BlockFilter amortize their buffers across blocks.
func fftFilterInto(dst []float64, spec []complex128, x []float64, sampleRate float64, keep func(freq float64) bool) ([]float64, []complex128, error) {
	if len(x) == 0 {
		return dst[:0], spec, nil
	}
	spec, err := FFTRealInto(spec, x)
	if err != nil {
		return dst, spec, err
	}
	n := len(spec)
	for k := 0; k <= n/2; k++ {
		if !keep(BinFrequency(k, n, sampleRate)) {
			spec[k] = 0
			if k != 0 && k != n/2 {
				spec[n-k] = 0
			}
		}
	}
	if err := IFFT(spec); err != nil {
		return dst, spec, err
	}
	if cap(dst) < len(x) {
		dst = make([]float64, len(x))
	}
	dst = dst[:len(x)]
	for i := range dst {
		dst[i] = real(spec[i])
	}
	return dst, spec, nil
}
