package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func approxEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestIsPowerOfTwo(t *testing.T) {
	for _, tc := range []struct {
		n    int
		want bool
	}{
		{0, false}, {1, true}, {2, true}, {3, false}, {4, true},
		{5, false}, {1024, true}, {1023, false}, {-4, false},
	} {
		if got := IsPowerOfTwo(tc.n); got != tc.want {
			t.Errorf("IsPowerOfTwo(%d) = %v, want %v", tc.n, got, tc.want)
		}
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {100, 128}, {1024, 1024}, {1025, 2048},
	} {
		if got := NextPowerOfTwo(tc.n); got != tc.want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestNextPowerOfTwoPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n <= 0")
		}
	}()
	NextPowerOfTwo(0)
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if err := FFT(make([]complex128, 3)); err == nil {
		t.Fatal("expected error for length 3")
	}
}

func TestFFTEmptyIsNoop(t *testing.T) {
	if err := FFT(nil); err != nil {
		t.Fatalf("FFT(nil) = %v", err)
	}
	if err := IFFT(nil); err != nil {
		t.Fatalf("IFFT(nil) = %v", err)
	}
}

func TestFFTKnownDFT(t *testing.T) {
	// Impulse transforms to all-ones.
	x := []complex128{1, 0, 0, 0}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > eps {
			t.Errorf("impulse FFT bin %d = %v, want 1", i, v)
		}
	}

	// DC signal transforms to N at bin 0.
	y := []complex128{2, 2, 2, 2}
	if err := FFT(y); err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(y[0]-8) > eps {
		t.Errorf("DC FFT bin 0 = %v, want 8", y[0])
	}
	for i := 1; i < 4; i++ {
		if cmplx.Abs(y[i]) > eps {
			t.Errorf("DC FFT bin %d = %v, want 0", i, y[i])
		}
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	want := naiveDFT(x)
	got := append([]complex128(nil), x...)
	if err := FFT(got); err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if cmplx.Abs(got[k]-want[k]) > 1e-8 {
			t.Fatalf("bin %d: FFT %v, naive DFT %v", k, got[k], want[k])
		}
	}
}

func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			out[k] += x[j] * cmplx.Exp(complex(0, angle))
		}
	}
	return out
}

func TestFFTRoundTripProperty(t *testing.T) {
	f := func(seed int64, sizeExp uint8) bool {
		n := 1 << (sizeExp%8 + 1) // 2..256
		rng := rand.New(rand.NewSource(seed))
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		orig := append([]complex128(nil), x...)
		if err := FFT(x); err != nil {
			return false
		}
		if err := IFFT(x); err != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	// Energy in time domain equals energy in frequency domain / N.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 128
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		spec, err := FFTReal(x)
		if err != nil {
			return false
		}
		var timeEnergy, freqEnergy float64
		for _, v := range x {
			timeEnergy += v * v
		}
		for _, c := range spec {
			freqEnergy += real(c)*real(c) + imag(c)*imag(c)
		}
		return approxEqual(timeEnergy, freqEnergy/float64(n), 1e-6*(1+timeEnergy))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDominantFrequency(t *testing.T) {
	const rate = 1000.0
	n := 512
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / rate
		x[i] = 3*math.Sin(2*math.Pi*125*ti) + 0.5*math.Sin(2*math.Pi*50*ti)
	}
	freq, mag, err := DominantFrequency(x, rate)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEqual(freq, 125, rate/float64(n)+0.001) {
		t.Errorf("dominant frequency = %g Hz, want ~125", freq)
	}
	if mag <= 0 {
		t.Errorf("dominant magnitude = %g, want > 0", mag)
	}
}

func TestDominantFrequencyShortSignal(t *testing.T) {
	freq, mag, err := DominantFrequency([]float64{1}, 100)
	if err != nil || freq != 0 || mag != 0 {
		t.Errorf("short signal: got (%g, %g, %v), want (0, 0, nil)", freq, mag, err)
	}
}

func TestLowPassRemovesHighFrequency(t *testing.T) {
	const rate = 1000.0
	n := 512
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / rate
		x[i] = math.Sin(2*math.Pi*10*ti) + math.Sin(2*math.Pi*300*ti)
	}
	y, err := LowPassFFT(x, 100, rate)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != n {
		t.Fatalf("output length %d, want %d", len(y), n)
	}
	freq, _, err := DominantFrequency(y, rate)
	if err != nil {
		t.Fatal(err)
	}
	if freq > 100 {
		t.Errorf("after low-pass at 100 Hz, dominant frequency = %g Hz", freq)
	}
}

func TestHighPassRemovesLowFrequency(t *testing.T) {
	const rate = 1000.0
	n := 512
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / rate
		x[i] = 5 + math.Sin(2*math.Pi*10*ti) + math.Sin(2*math.Pi*300*ti)
	}
	y, err := HighPassFFT(x, 100, rate)
	if err != nil {
		t.Fatal(err)
	}
	freq, _, err := DominantFrequency(y, rate)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEqual(freq, 300, rate/float64(NextPowerOfTwo(n))+0.001) {
		t.Errorf("after high-pass at 100 Hz, dominant frequency = %g Hz, want ~300", freq)
	}
	if m := Mean(y); math.Abs(m) > 0.05 {
		t.Errorf("high-pass retained DC offset: mean = %g", m)
	}
}

func TestBandPassKeepsBand(t *testing.T) {
	const rate = 1000.0
	n := 1024
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / rate
		x[i] = math.Sin(2*math.Pi*20*ti) + math.Sin(2*math.Pi*150*ti) + math.Sin(2*math.Pi*400*ti)
	}
	y, err := BandPassFFT(x, 100, 200, rate)
	if err != nil {
		t.Fatal(err)
	}
	freq, _, err := DominantFrequency(y, rate)
	if err != nil {
		t.Fatal(err)
	}
	if freq < 100 || freq > 200 {
		t.Errorf("band-pass 100-200 Hz produced dominant frequency %g Hz", freq)
	}
}

func TestFilterPreservesRealOutput(t *testing.T) {
	// Filtering arbitrary real input must give real output (conjugate
	// symmetry preserved). Verified indirectly: output magnitudes finite
	// and filter is linear-ish idempotent for pass band.
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, 256)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y, err := LowPassFFT(x, 500, 1000) // cutoff at Nyquist keeps everything
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !approxEqual(x[i], y[i], 1e-8) {
			t.Fatalf("pass-all filter changed sample %d: %g -> %g", i, x[i], y[i])
		}
	}
}

func TestBinFrequencyAndFrequencyBinInverse(t *testing.T) {
	const rate = 8000.0
	n := 256
	for k := 0; k <= n/2; k++ {
		f := BinFrequency(k, n, rate)
		if got := FrequencyBin(f, n, rate); got != k {
			t.Errorf("FrequencyBin(BinFrequency(%d)) = %d", k, got)
		}
	}
	if got := FrequencyBin(-10, n, rate); got != 0 {
		t.Errorf("negative frequency bin = %d, want 0", got)
	}
	if got := FrequencyBin(1e9, n, rate); got != n/2 {
		t.Errorf("huge frequency bin = %d, want %d", got, n/2)
	}
}

func TestMagnitudes(t *testing.T) {
	got := Magnitudes([]complex128{3 + 4i, 0, -2})
	want := []float64{5, 0, 2}
	for i := range want {
		if !approxEqual(got[i], want[i], eps) {
			t.Errorf("Magnitudes[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}
