package dsp

import (
	"testing"
	"testing/quick"
)

func TestMinThreshold(t *testing.T) {
	th := NewMinThreshold(15)
	if _, ok := th.Push(14.9); ok {
		t.Error("14.9 should not pass min threshold 15")
	}
	v, ok := th.Push(15)
	if !ok || v != 15 {
		t.Errorf("15 should pass, got (%g, %v)", v, ok)
	}
	if _, ok := th.Push(100); !ok {
		t.Error("100 should pass min threshold 15")
	}
}

func TestMaxThreshold(t *testing.T) {
	th := NewMaxThreshold(-3.75)
	if _, ok := th.Push(0); ok {
		t.Error("0 should not pass max threshold -3.75")
	}
	if _, ok := th.Push(-4); !ok {
		t.Error("-4 should pass max threshold -3.75")
	}
}

func TestBandThreshold(t *testing.T) {
	th, err := NewBandThreshold(2.5, 4.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		v    float64
		pass bool
	}{
		{2.4, false}, {2.5, true}, {3.5, true}, {4.5, true}, {4.6, false},
	} {
		if got := th.Admits(tc.v); got != tc.pass {
			t.Errorf("band(2.5,4.5).Admits(%g) = %v, want %v", tc.v, got, tc.pass)
		}
	}
}

func TestBandThresholdValidation(t *testing.T) {
	if _, err := NewBandThreshold(5, 4); err == nil {
		t.Error("min > max should fail")
	}
}

func TestThresholdPassThroughValueProperty(t *testing.T) {
	f := func(v float64) bool {
		if v != v || v < -1e300 || v > 1e300 {
			return true // NaN and extreme magnitudes out of scope
		}
		th := NewMinThreshold(-1e300)
		out, ok := th.Push(v)
		return ok && out == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDebouncer(t *testing.T) {
	d, err := NewDebouncer(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Push(1); !ok {
		t.Error("first trigger should pass")
	}
	if _, ok := d.Push(2); ok {
		t.Error("trigger during hold-off should be suppressed")
	}
	if _, ok := d.Push(3); ok {
		t.Error("still within hold-off")
	}
	if _, ok := d.Push(4); !ok {
		t.Error("hold-off expired, trigger should pass")
	}
}

func TestDebouncerTickAdvancesClock(t *testing.T) {
	d, _ := NewDebouncer(3)
	d.Push(1) // opens hold-off of 3
	d.Tick()
	d.Tick()
	d.Tick()
	if _, ok := d.Push(2); !ok {
		t.Error("after 3 ticks the hold-off should have elapsed")
	}
}

func TestDebouncerReset(t *testing.T) {
	d, _ := NewDebouncer(10)
	d.Push(1)
	d.Reset()
	if _, ok := d.Push(2); !ok {
		t.Error("Reset should reopen immediately")
	}
}

func TestDebouncerValidation(t *testing.T) {
	if _, err := NewDebouncer(-1); err == nil {
		t.Error("negative hold-off should fail")
	}
	d, err := NewDebouncer(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Push(1); !ok {
		t.Error("zero hold-off passes everything")
	}
	if _, ok := d.Push(2); !ok {
		t.Error("zero hold-off passes everything")
	}
}
