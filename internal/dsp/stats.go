package dsp

import (
	"math"
	"sort"
)

// Sum returns the sum of x. An empty slice sums to zero.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Sum(x) / float64(len(x))
}

// Variance returns the population variance of x, or 0 for fewer than two
// samples.
func Variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// StdDev returns the population standard deviation of x.
func StdDev(x []float64) float64 {
	return math.Sqrt(Variance(x))
}

// Min returns the minimum of x, or +Inf for an empty slice.
func Min(x []float64) float64 {
	m := math.Inf(1)
	for _, v := range x {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum of x, or -Inf for an empty slice.
func Max(x []float64) float64 {
	m := math.Inf(-1)
	for _, v := range x {
		if v > m {
			m = v
		}
	}
	return m
}

// Range returns Max(x) - Min(x), or 0 for an empty slice.
func Range(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Max(x) - Min(x)
}

// RMS returns the root-mean-square of x, or 0 for an empty slice.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s / float64(len(x)))
}

// Median returns the median of x without modifying it, or 0 for an empty
// slice.
func Median(x []float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	tmp := make([]float64, n)
	copy(tmp, x)
	sort.Float64s(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// MeanAbs returns the mean of |x_i|, or 0 for an empty slice.
func MeanAbs(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s / float64(len(x))
}

// Energy returns the sum of squares of x.
func Energy(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
