package dsp

import "fmt"

// MovingAverager is a streaming simple moving average over the last N
// samples (paper §3.6 "Noise-reduction"). It produces no output until N
// samples have arrived, mirroring the hasResult semantics of the paper's
// runtime (§3.5).
type MovingAverager struct {
	window []float64
	next   int
	count  int
	sum    float64
}

// NewMovingAverager returns a moving average with the given window size.
func NewMovingAverager(size int) (*MovingAverager, error) {
	if size <= 0 {
		return nil, fmt.Errorf("dsp: moving average window must be positive, got %d", size)
	}
	return &MovingAverager{window: make([]float64, size)}, nil
}

// Size returns the window size.
func (m *MovingAverager) Size() int { return len(m.window) }

// Push adds a sample. Once the window is full it returns the current
// average with ok=true on every subsequent sample.
func (m *MovingAverager) Push(v float64) (avg float64, ok bool) {
	if m.count == len(m.window) {
		m.sum -= m.window[m.next]
	} else {
		m.count++
	}
	m.window[m.next] = v
	m.sum += v
	m.next = (m.next + 1) % len(m.window)
	if m.count < len(m.window) {
		return 0, false
	}
	return m.sum / float64(m.count), true
}

// Reset clears all buffered samples.
func (m *MovingAverager) Reset() {
	m.next, m.count, m.sum = 0, 0, 0
	for i := range m.window {
		m.window[i] = 0
	}
}

// EMA is a streaming exponential moving average with smoothing factor
// alpha in (0, 1]: y_t = alpha*x_t + (1-alpha)*y_{t-1}. The first sample
// initializes the average and is produced immediately.
type EMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEMA returns an exponential moving average with the given alpha.
func NewEMA(alpha float64) (*EMA, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("dsp: EMA alpha must be in (0, 1], got %g", alpha)
	}
	return &EMA{alpha: alpha}, nil
}

// Push adds a sample and returns the updated average. ok is always true.
func (e *EMA) Push(v float64) (avg float64, ok bool) {
	if !e.primed {
		e.value = v
		e.primed = true
	} else {
		e.value = e.alpha*v + (1-e.alpha)*e.value
	}
	return e.value, true
}

// Reset returns the EMA to its unprimed state.
func (e *EMA) Reset() { e.value, e.primed = 0, false }

// BlockFilterKind selects the spectral mask of a BlockFilter.
type BlockFilterKind int

const (
	// LowPass keeps content at or below the cutoff.
	LowPass BlockFilterKind = iota
	// HighPass keeps content at or above the cutoff.
	HighPass
)

// BlockFilter is a streaming FFT-based low- or high-pass filter. It buffers
// blockSize samples, filters the block in the frequency domain, and emits
// the filtered block (paper §3.6 "FFT-based low/high-pass filtering"). The
// block size must be a power of two so the FFT needs no padding.
type BlockFilter struct {
	kind       BlockFilterKind
	cutoff     float64
	sampleRate float64
	buf        []float64
	blockSize  int
	out        []float64
	spec       []complex128
	keep       func(freq float64) bool
}

// NewBlockFilter returns an FFT-based block filter.
func NewBlockFilter(kind BlockFilterKind, cutoff, sampleRate float64, blockSize int) (*BlockFilter, error) {
	if !IsPowerOfTwo(blockSize) {
		return nil, fmt.Errorf("dsp: block filter size must be a power of two, got %d", blockSize)
	}
	if sampleRate <= 0 {
		return nil, fmt.Errorf("dsp: block filter sample rate must be positive, got %g", sampleRate)
	}
	if cutoff < 0 || cutoff > sampleRate/2 {
		return nil, fmt.Errorf("dsp: cutoff %g Hz outside [0, Nyquist=%g]", cutoff, sampleRate/2)
	}
	f := &BlockFilter{
		kind:       kind,
		cutoff:     cutoff,
		sampleRate: sampleRate,
		buf:        make([]float64, 0, blockSize),
		blockSize:  blockSize,
	}
	f.keep = func(freq float64) bool { return freq <= f.cutoff }
	if kind == HighPass {
		f.keep = func(freq float64) bool { return freq >= f.cutoff }
	}
	return f, nil
}

// BlockSize returns the filter's block length in samples.
func (f *BlockFilter) BlockSize() int { return f.blockSize }

// Push adds a sample. When a full block has accumulated it returns the
// filtered block with ok=true; the internal buffer is then empty. The
// returned block is the filter's internal scratch: it stays valid only
// until the next emission, so callers that retain blocks must copy.
func (f *BlockFilter) Push(v float64) (block []float64, ok bool) {
	f.buf = append(f.buf, v)
	if len(f.buf) < f.blockSize {
		return nil, false
	}
	out, spec, err := fftFilterInto(f.out, f.spec, f.buf, f.sampleRate, f.keep)
	f.out, f.spec = out, spec
	f.buf = f.buf[:0]
	if err != nil {
		// Unreachable for a power-of-two block, but fail closed.
		return nil, false
	}
	return out, true
}

// Reset discards buffered samples.
func (f *BlockFilter) Reset() { f.buf = f.buf[:0] }
