package dsp

import "fmt"

// MovingAverager is a streaming simple moving average over the last N
// samples (paper §3.6 "Noise-reduction"). It produces no output until N
// samples have arrived, mirroring the hasResult semantics of the paper's
// runtime (§3.5).
type MovingAverager struct {
	window []float64
	next   int
	count  int
	sum    float64
}

// NewMovingAverager returns a moving average with the given window size.
func NewMovingAverager(size int) (*MovingAverager, error) {
	if size <= 0 {
		return nil, fmt.Errorf("dsp: moving average window must be positive, got %d", size)
	}
	return &MovingAverager{window: make([]float64, size)}, nil
}

// Size returns the window size.
func (m *MovingAverager) Size() int { return len(m.window) }

// Push adds a sample. Once the window is full it returns the current
// average with ok=true on every subsequent sample.
func (m *MovingAverager) Push(v float64) (avg float64, ok bool) {
	if m.count == len(m.window) {
		m.sum -= m.window[m.next]
	} else {
		m.count++
	}
	m.window[m.next] = v
	m.sum += v
	m.next = (m.next + 1) % len(m.window)
	if m.count < len(m.window) {
		return 0, false
	}
	return m.sum / float64(m.count), true
}

// PushBlock runs src through the filter, appending one output per emission
// to dst[:0] and returning the outputs plus the count of leading samples
// that produced nothing (window priming). Emissions are dense once the
// window fills, so out aligns 1:1 with src[skip:]. The arithmetic is the
// exact per-sample recurrence of Push, so results are bit-identical.
func (m *MovingAverager) PushBlock(dst, src []float64) (out []float64, skip int) {
	out = dst[:0]
	for _, v := range src {
		if m.count == len(m.window) {
			m.sum -= m.window[m.next]
		} else {
			m.count++
		}
		m.window[m.next] = v
		m.sum += v
		m.next = (m.next + 1) % len(m.window)
		if m.count < len(m.window) {
			skip++
			continue
		}
		out = append(out, m.sum/float64(m.count))
	}
	return out, skip
}

// Reset clears all buffered samples.
func (m *MovingAverager) Reset() {
	m.next, m.count, m.sum = 0, 0, 0
	for i := range m.window {
		m.window[i] = 0
	}
}

// EMA is a streaming exponential moving average with smoothing factor
// alpha in (0, 1]: y_t = alpha*x_t + (1-alpha)*y_{t-1}. The first sample
// initializes the average and is produced immediately.
type EMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEMA returns an exponential moving average with the given alpha.
func NewEMA(alpha float64) (*EMA, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("dsp: EMA alpha must be in (0, 1], got %g", alpha)
	}
	return &EMA{alpha: alpha}, nil
}

// Push adds a sample and returns the updated average. ok is always true.
func (e *EMA) Push(v float64) (avg float64, ok bool) {
	if !e.primed {
		e.value = v
		e.primed = true
	} else {
		e.value = e.alpha*v + (1-e.alpha)*e.value
	}
	return e.value, true
}

// PushBlock runs src through the filter; the EMA emits on every sample so
// skip is always 0. Bit-identical to a Push loop.
func (e *EMA) PushBlock(dst, src []float64) (out []float64, skip int) {
	out = dst[:0]
	for _, v := range src {
		if !e.primed {
			e.value = v
			e.primed = true
		} else {
			e.value = e.alpha*v + (1-e.alpha)*e.value
		}
		out = append(out, e.value)
	}
	return out, 0
}

// Reset returns the EMA to its unprimed state.
func (e *EMA) Reset() { e.value, e.primed = 0, false }

// BlockFilterKind selects the spectral mask of a BlockFilter.
type BlockFilterKind int

const (
	// LowPass keeps content at or below the cutoff.
	LowPass BlockFilterKind = iota
	// HighPass keeps content at or above the cutoff.
	HighPass
)

// BlockFilter is a streaming low- or high-pass filter with block-framed
// emission. The default backend buffers blockSize samples, filters the
// block in the frequency domain, and emits the filtered block (paper §3.6
// "FFT-based low/high-pass filtering"); its block size must be a power of
// two so the FFT needs no padding. The IIR backend (NewIIRBlockFilter)
// keeps the same block framing but realizes the mask with a streaming
// Butterworth biquad whose state carries across blocks — the form an
// FPU-less MCU can actually run in real time (paper §4).
type BlockFilter struct {
	kind       BlockFilterKind
	cutoff     float64
	sampleRate float64
	buf        []float64
	blockSize  int
	out        []float64
	spec       []complex128
	keep       func(freq float64) bool
	bq         *Biquad    // IIR backend (nil for FFT)
	bqQ        *BiquadQ15 // Q15 IIR backend (nil otherwise)
}

// NewBlockFilter returns an FFT-based block filter.
func NewBlockFilter(kind BlockFilterKind, cutoff, sampleRate float64, blockSize int) (*BlockFilter, error) {
	if !IsPowerOfTwo(blockSize) {
		return nil, fmt.Errorf("dsp: block filter size must be a power of two, got %d", blockSize)
	}
	if sampleRate <= 0 {
		return nil, fmt.Errorf("dsp: block filter sample rate must be positive, got %g", sampleRate)
	}
	if cutoff < 0 || cutoff > sampleRate/2 {
		return nil, fmt.Errorf("dsp: cutoff %g Hz outside [0, Nyquist=%g]", cutoff, sampleRate/2)
	}
	f := &BlockFilter{
		kind:       kind,
		cutoff:     cutoff,
		sampleRate: sampleRate,
		buf:        make([]float64, 0, blockSize),
		blockSize:  blockSize,
	}
	f.keep = func(freq float64) bool { return freq <= f.cutoff }
	if kind == HighPass {
		f.keep = func(freq float64) bool { return freq >= f.cutoff }
	}
	return f, nil
}

// NewIIRBlockFilter returns a block filter realized by a streaming
// Butterworth biquad: block framing identical to the FFT backend, but the
// filter state persists across block boundaries. blockSize only frames the
// emission so it need not be a power of two.
func NewIIRBlockFilter(kind BlockFilterKind, cutoff, sampleRate float64, blockSize int) (*BlockFilter, error) {
	f, err := newIIRBlockFilter(kind, cutoff, sampleRate, blockSize)
	if err != nil {
		return nil, err
	}
	if kind == HighPass {
		f.bq, err = NewHighPassBiquad(cutoff, sampleRate)
	} else {
		f.bq, err = NewLowPassBiquad(cutoff, sampleRate)
	}
	return f, err
}

// NewIIRBlockFilterQ15 is NewIIRBlockFilter with the biquad run in Q15
// fixed point (quantized coefficients, saturating arithmetic).
func NewIIRBlockFilterQ15(kind BlockFilterKind, cutoff, sampleRate float64, blockSize int) (*BlockFilter, error) {
	f, err := newIIRBlockFilter(kind, cutoff, sampleRate, blockSize)
	if err != nil {
		return nil, err
	}
	var bq *Biquad
	if kind == HighPass {
		bq, err = NewHighPassBiquad(cutoff, sampleRate)
	} else {
		bq, err = NewLowPassBiquad(cutoff, sampleRate)
	}
	if err != nil {
		return nil, err
	}
	f.bqQ = bq.Q15()
	return f, nil
}

func newIIRBlockFilter(kind BlockFilterKind, cutoff, sampleRate float64, blockSize int) (*BlockFilter, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("dsp: block filter size must be positive, got %d", blockSize)
	}
	return &BlockFilter{
		kind:       kind,
		cutoff:     cutoff,
		sampleRate: sampleRate,
		buf:        make([]float64, 0, blockSize),
		blockSize:  blockSize,
	}, nil
}

// BlockSize returns the filter's block length in samples.
func (f *BlockFilter) BlockSize() int { return f.blockSize }

// Push adds a sample. When a full block has accumulated it returns the
// filtered block with ok=true; the internal buffer is then empty. The
// returned block is the filter's internal scratch: it stays valid only
// until the next emission, so callers that retain blocks must copy.
func (f *BlockFilter) Push(v float64) (block []float64, ok bool) {
	f.buf = append(f.buf, v)
	if len(f.buf) < f.blockSize {
		return nil, false
	}
	return f.emit()
}

// Consume ingests a prefix of src: exactly enough samples to reach the
// next block boundary, or all of src if the boundary is out of reach. It
// returns the number of samples consumed and, at a boundary, the filtered
// block (same scratch-aliasing contract as Push). Feeding a slice through
// repeated Consume calls is equivalent to a Push loop, minus the
// per-sample call overhead.
func (f *BlockFilter) Consume(src []float64) (n int, block []float64, ok bool) {
	n = f.blockSize - len(f.buf)
	if n > len(src) {
		n = len(src)
	}
	f.buf = append(f.buf, src[:n]...)
	if len(f.buf) < f.blockSize {
		return n, nil, false
	}
	block, ok = f.emit()
	return n, block, ok
}

// emit filters the full buffer through the active backend.
func (f *BlockFilter) emit() (block []float64, ok bool) {
	switch {
	case f.bq != nil:
		if cap(f.out) < f.blockSize {
			f.out = make([]float64, 0, f.blockSize)
		}
		f.out, _ = f.bq.PushBlock(f.out[:0], f.buf)
		f.buf = f.buf[:0]
		return f.out, true
	case f.bqQ != nil:
		if cap(f.out) < f.blockSize {
			f.out = make([]float64, 0, f.blockSize)
		}
		f.out, _ = f.bqQ.PushBlock(f.out[:0], f.buf)
		f.buf = f.buf[:0]
		return f.out, true
	default:
		out, spec, err := fftFilterInto(f.out, f.spec, f.buf, f.sampleRate, f.keep)
		f.out, f.spec = out, spec
		f.buf = f.buf[:0]
		if err != nil {
			// Unreachable for a power-of-two block, but fail closed.
			return nil, false
		}
		return out, true
	}
}

// Reset discards buffered samples and clears the IIR state carried across
// blocks. (The FFT backend has no cross-block state; the biquad backends
// do, and forgetting it left residue from the previous stream bleeding
// into the next one.)
func (f *BlockFilter) Reset() {
	f.buf = f.buf[:0]
	if f.bq != nil {
		f.bq.Reset()
	}
	if f.bqQ != nil {
		f.bqQ.Reset()
	}
}
