package dsp

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the Q15 fixed-point execution substrate: saturating
// int32 arithmetic and fixed-point twins of the stateful streaming kernels
// (moving average, EMA, biquad, thresholds, window statistics). The hub of
// the paper is an MSP430-class MCU with no FPU, where a software float64
// multiply costs ~100 cycles but an int32 multiply-accumulate costs ~2; a
// fixed-point mode is therefore both the faithful model of the device and
// the fast path on the host.
//
// Format: Q17.15 — an int32 carrying 15 fractional bits (Q15One == 1.0).
// Pure Q0.15 would confine values to [-1, 1), but Sidewinder pipelines flow
// engineering units (accelerometer m/s², thresholds like 6.5), so the
// format keeps 16 integer bits of headroom and saturates at the int32
// rails (±65536.0 in real terms) instead of ±1. The fractional resolution
// is the classic Q15 step of 2^-15 ≈ 3.05e-5.

const (
	// Q15One is the fixed-point representation of 1.0.
	Q15One = 1 << 15
	// Q15Max and Q15Min are the saturation rails of the format.
	Q15Max = math.MaxInt32
	Q15Min = math.MinInt32
)

// ToQ15 converts a float64 to Q15, rounding half away from zero and
// saturating at the format rails. NaN converts to 0.
func ToQ15(x float64) int32 {
	if math.IsNaN(x) {
		return 0
	}
	scaled := x * Q15One
	if scaled >= Q15Max {
		return Q15Max
	}
	if scaled <= Q15Min {
		return Q15Min
	}
	if scaled >= 0 {
		return int32(int64(scaled + 0.5))
	}
	return int32(int64(scaled - 0.5))
}

// FromQ15 converts a Q15 value back to float64. The conversion is exact:
// every Q15 value is representable in a float64 mantissa.
func FromQ15(q int32) float64 { return float64(q) / Q15One }

// QuantizeQ15 rounds a float64 onto the Q15 grid, saturating at the rails.
// It is the ingress/egress conversion of the interpreter's Q15 mode.
func QuantizeQ15(x float64) float64 { return FromQ15(ToQ15(x)) }

// sat32 saturates an int64 intermediate to the int32 rails.
func sat32(v int64) int32 {
	if v > Q15Max {
		return Q15Max
	}
	if v < Q15Min {
		return Q15Min
	}
	return int32(v)
}

// SatAdd32 adds two Q15 values with saturation.
func SatAdd32(a, b int32) int32 { return sat32(int64(a) + int64(b)) }

// SatSub32 subtracts two Q15 values with saturation.
func SatSub32(a, b int32) int32 { return sat32(int64(a) - int64(b)) }

// MulQ15 multiplies two Q15 values: the Q30 product is rounded back to Q15
// and saturated. This is the MCU's single-instruction MAC building block.
func MulQ15(a, b int32) int32 {
	return sat32((int64(a)*int64(b) + 1<<14) >> 15)
}

// divRound divides num by den (den > 0) rounding half away from zero,
// which keeps means symmetric around 0.
func divRound(num, den int64) int64 {
	if num >= 0 {
		return (num + den/2) / den
	}
	return (num - den/2) / den
}

// isqrtRound returns the non-negative integer closest to sqrt(v).
// sqrt of a Q30 value yields Q15, so this is the fixed-point square root
// used by stddev and RMS.
func isqrtRound(v int64) int64 {
	if v <= 0 {
		return 0
	}
	// Newton's method seeded from the float estimate converges in a step
	// or two; the loop only corrects the last bit.
	r := int64(math.Sqrt(float64(v)))
	for r > 0 && r*r > v {
		r--
	}
	for (r+1)*(r+1) <= v {
		r++
	}
	// Round to nearest: bump when v is past the midpoint r² + r.
	if v-r*r > r {
		r++
	}
	return r
}

// ToQ15Slice quantizes src into dst (which must be at least as long) and
// returns dst[:len(src)].
func ToQ15Slice(dst []int32, src []float64) []int32 {
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] = ToQ15(v)
	}
	return dst
}

// --- Q15 window statistics ----------------------------------------------
//
// These mirror the float64 statistics in stats.go over Q15 windows. Sums
// accumulate in int64 (a Q30 sum of squares of a 2^20-sample window still
// fits), divisions round half away from zero, and results saturate back to
// Q15. Conventions match the float versions: variance of fewer than two
// samples is 0, extremes of an empty window are the rails.

// SumQ15S returns the exact int64 sum of a Q15 window.
func SumQ15S(x []int32) int64 {
	var s int64
	for _, v := range x {
		s += int64(v)
	}
	return s
}

// MeanQ15 returns the rounded mean of a Q15 window, or 0 when empty.
func MeanQ15(x []int32) int32 {
	if len(x) == 0 {
		return 0
	}
	return sat32(divRound(SumQ15S(x), int64(len(x))))
}

// sumSqDev returns the Q30 sum of squared deviations from the rounded mean.
func sumSqDev(x []int32) int64 {
	m := int64(MeanQ15(x))
	var s int64
	for _, v := range x {
		d := int64(v) - m
		s += d * d
	}
	return s
}

// VarianceQ15 returns the population variance of a Q15 window in Q15, or 0
// for fewer than two samples.
func VarianceQ15(x []int32) int32 {
	if len(x) < 2 {
		return 0
	}
	varQ30 := divRound(sumSqDev(x), int64(len(x)))
	return sat32(divRound(varQ30, Q15One))
}

// StdDevQ15 returns the population standard deviation of a Q15 window.
// sqrt maps Q30 to Q15 directly, so no rescaling is needed.
func StdDevQ15(x []int32) int32 {
	if len(x) < 2 {
		return 0
	}
	return sat32(isqrtRound(divRound(sumSqDev(x), int64(len(x)))))
}

// MinQ15 returns the minimum of a Q15 window, or the positive rail when
// empty (mirroring the float +Inf convention).
func MinQ15(x []int32) int32 {
	m := int32(Q15Max)
	for _, v := range x {
		if v < m {
			m = v
		}
	}
	return m
}

// MaxQ15 returns the maximum of a Q15 window, or the negative rail when
// empty.
func MaxQ15(x []int32) int32 {
	m := int32(Q15Min)
	for _, v := range x {
		if v > m {
			m = v
		}
	}
	return m
}

// RangeQ15 returns max - min with saturation, or 0 when empty.
func RangeQ15(x []int32) int32 {
	if len(x) == 0 {
		return 0
	}
	return SatSub32(MaxQ15(x), MinQ15(x))
}

// RMSQ15 returns the root-mean-square of a Q15 window, or 0 when empty.
func RMSQ15(x []int32) int32 {
	if len(x) == 0 {
		return 0
	}
	var s int64
	for _, v := range x {
		s += int64(v) * int64(v)
	}
	return sat32(isqrtRound(divRound(s, int64(len(x)))))
}

// MedianQ15 returns the median of a Q15 window without modifying it, or 0
// when empty. Like the float version it copies and sorts.
func MedianQ15(x []int32) int32 {
	n := len(x)
	if n == 0 {
		return 0
	}
	tmp := make([]int32, n)
	copy(tmp, x)
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	if n%2 == 1 {
		return tmp[n/2]
	}
	return sat32(divRound(int64(tmp[n/2-1])+int64(tmp[n/2]), 2))
}

// MeanAbsQ15 returns the mean absolute value of a Q15 window, or 0 when
// empty.
func MeanAbsQ15(x []int32) int32 {
	if len(x) == 0 {
		return 0
	}
	var s int64
	for _, v := range x {
		d := int64(v)
		if d < 0 {
			d = -d
		}
		s += d
	}
	return sat32(divRound(s, int64(len(x))))
}

// EnergyQ15 returns the saturated sum of squares of a Q15 window, in Q15.
func EnergyQ15(x []int32) int32 {
	var s int64
	for _, v := range x {
		s += int64(v) * int64(v)
	}
	return sat32(divRound(s, Q15One))
}

// ZeroCrossingRateQ15 returns the Q15 fraction of adjacent sample pairs
// whose signs differ, treating 0 as positive — the fixed-point twin of
// ZeroCrossingRate. Fewer than two samples yield 0.
func ZeroCrossingRateQ15(x []int32) int32 {
	if len(x) < 2 {
		return 0
	}
	crossings := int64(0)
	prevNeg := x[0] < 0
	for _, v := range x[1:] {
		neg := v < 0
		if neg != prevNeg {
			crossings++
		}
		prevNeg = neg
	}
	return sat32(divRound(crossings*Q15One, int64(len(x)-1)))
}

// --- Q15 admission control -----------------------------------------------

// ThresholdQ15 is the fixed-point twin of Threshold: the bounds are
// quantized once at build time and every comparison is an int32 compare.
type ThresholdQ15 struct {
	min, max       int32
	hasMin, hasMax bool
}

// Q15 returns the fixed-point twin of a float threshold.
func (t *Threshold) Q15() *ThresholdQ15 {
	return &ThresholdQ15{
		min: ToQ15(t.min), max: ToQ15(t.max),
		hasMin: t.hasMin, hasMax: t.hasMax,
	}
}

// Admits reports whether a Q15 value satisfies the gate.
func (t *ThresholdQ15) Admits(q int32) bool {
	if t.hasMin && q < t.min {
		return false
	}
	if t.hasMax && q > t.max {
		return false
	}
	return true
}

// AdmitsFloat quantizes v and evaluates the gate, so float and fixed-point
// callers make the same decision on the same sample.
func (t *ThresholdQ15) AdmitsFloat(v float64) bool { return t.Admits(ToQ15(v)) }

// --- Q15 streaming kernels -----------------------------------------------
//
// Each kernel mirrors its float64 twin's emission semantics exactly (same
// priming, same ok pattern) and exposes the same Push(float64) shape so the
// interpreter can swap it in behind the scalarFilter interface; the float
// boundary quantizes on the way in and is exact on the way out.

// MovingAveragerQ15 is the fixed-point twin of MovingAverager: a rolling
// int64 sum over a Q15 ring with a rounded divide per emission.
type MovingAveragerQ15 struct {
	window []int32
	next   int
	count  int
	sum    int64
}

// NewMovingAveragerQ15 returns a fixed-point moving average.
func NewMovingAveragerQ15(size int) (*MovingAveragerQ15, error) {
	if size <= 0 {
		return nil, fmt.Errorf("dsp: moving average window must be positive, got %d", size)
	}
	return &MovingAveragerQ15{window: make([]int32, size)}, nil
}

// PushQ15 adds a quantized sample; once the window is full it emits the
// rounded average on every subsequent sample.
func (m *MovingAveragerQ15) PushQ15(v int32) (avg int32, ok bool) {
	if m.count == len(m.window) {
		m.sum -= int64(m.window[m.next])
	} else {
		m.count++
	}
	m.window[m.next] = v
	m.sum += int64(v)
	m.next = (m.next + 1) % len(m.window)
	if m.count < len(m.window) {
		return 0, false
	}
	return sat32(divRound(m.sum, int64(m.count))), true
}

// Push quantizes and delegates to PushQ15.
func (m *MovingAveragerQ15) Push(v float64) (avg float64, ok bool) {
	q, ok := m.PushQ15(ToQ15(v))
	if !ok {
		return 0, false
	}
	return FromQ15(q), true
}

// PushBlock runs src through the filter, appending one output per emission
// to dst[:0] and returning the outputs plus the count of leading samples
// that produced nothing. Emissions are dense once priming completes, so
// out aligns 1:1 with src[skip:].
func (m *MovingAveragerQ15) PushBlock(dst, src []float64) (out []float64, skip int) {
	out = dst[:0]
	for _, v := range src {
		if avg, ok := m.PushQ15(ToQ15(v)); ok {
			out = append(out, FromQ15(avg))
		} else {
			skip++
		}
	}
	return out, skip
}

// Reset clears all buffered samples.
func (m *MovingAveragerQ15) Reset() {
	m.next, m.count, m.sum = 0, 0, 0
	for i := range m.window {
		m.window[i] = 0
	}
}

// EMAQ15 is the fixed-point twin of EMA, updated in the numerically robust
// incremental form y += alpha*(x - y) with saturating steps.
type EMAQ15 struct {
	alpha  int32
	value  int32
	primed bool
}

// NewEMAQ15 returns a fixed-point exponential moving average.
func NewEMAQ15(alpha float64) (*EMAQ15, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("dsp: EMA alpha must be in (0, 1], got %g", alpha)
	}
	qa := ToQ15(alpha)
	if qa == 0 {
		qa = 1 // alpha below the Q15 step still has to make progress
	}
	return &EMAQ15{alpha: qa}, nil
}

// PushQ15 adds a quantized sample and returns the updated average.
func (e *EMAQ15) PushQ15(v int32) (avg int32, ok bool) {
	if !e.primed {
		e.value = v
		e.primed = true
	} else {
		e.value = SatAdd32(e.value, MulQ15(e.alpha, SatSub32(v, e.value)))
	}
	return e.value, true
}

// Push quantizes and delegates to PushQ15. ok is always true.
func (e *EMAQ15) Push(v float64) (avg float64, ok bool) {
	q, _ := e.PushQ15(ToQ15(v))
	return FromQ15(q), true
}

// PushBlock runs src through the filter; the EMA emits on every sample so
// skip is always 0.
func (e *EMAQ15) PushBlock(dst, src []float64) (out []float64, skip int) {
	out = dst[:0]
	for _, v := range src {
		q, _ := e.PushQ15(ToQ15(v))
		out = append(out, FromQ15(q))
	}
	return out, 0
}

// Reset returns the EMA to its unprimed state.
func (e *EMAQ15) Reset() { e.value, e.primed = 0, false }

// BiquadQ15 is the fixed-point twin of Biquad: coefficients quantized to
// Q15, direct-form-II-transposed state kept at full Q30 precision in int64
// so rounding happens once per output sample, and the output saturated to
// the Q15 rails. Butterworth biquad coefficients stay within ±2, well
// inside the format's headroom.
type BiquadQ15 struct {
	b0, b1, b2 int32
	a1, a2     int32
	z1, z2     int64 // Q30 state
}

// Q15 returns the fixed-point twin of a float biquad (fresh state).
func (f *Biquad) Q15() *BiquadQ15 {
	return &BiquadQ15{
		b0: ToQ15(f.b0), b1: ToQ15(f.b1), b2: ToQ15(f.b2),
		a1: ToQ15(f.a1), a2: ToQ15(f.a2),
	}
}

// PushQ15 filters one quantized sample.
func (f *BiquadQ15) PushQ15(x int32) int32 {
	y := sat32((int64(f.b0)*int64(x) + f.z1 + 1<<14) >> 15)
	f.z1 = int64(f.b1)*int64(x) - int64(f.a1)*int64(y) + f.z2
	f.z2 = int64(f.b2)*int64(x) - int64(f.a2)*int64(y)
	return y
}

// Push quantizes and delegates to PushQ15. ok is always true.
func (f *BiquadQ15) Push(x float64) (y float64, ok bool) {
	return FromQ15(f.PushQ15(ToQ15(x))), true
}

// PushBlock filters src; IIR filters are sample-synchronous so skip is 0.
func (f *BiquadQ15) PushBlock(dst, src []float64) (out []float64, skip int) {
	out = dst[:0]
	for _, v := range src {
		out = append(out, FromQ15(f.PushQ15(ToQ15(v))))
	}
	return out, 0
}

// Reset clears the filter state.
func (f *BiquadQ15) Reset() { f.z1, f.z2 = 0, 0 }
