package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

// sineResponse measures a filter's steady-state gain at freq.
func sineResponse(f *Biquad, freq, rate float64) float64 {
	f.Reset()
	n := int(rate) // one second
	var peak float64
	for i := 0; i < n; i++ {
		y, _ := f.Push(math.Sin(2 * math.Pi * freq * float64(i) / rate))
		if i > n/2 && math.Abs(y) > peak { // skip the transient
			peak = math.Abs(y)
		}
	}
	return peak
}

func TestLowPassBiquadFrequencyResponse(t *testing.T) {
	const rate = 4000.0
	f, err := NewLowPassBiquad(200, rate)
	if err != nil {
		t.Fatal(err)
	}
	pass := sineResponse(f, 20, rate)
	stop := sineResponse(f, 1500, rate)
	if pass < 0.9 {
		t.Errorf("pass-band gain = %.3f, want ~1", pass)
	}
	if stop > 0.05 {
		t.Errorf("stop-band gain = %.3f, want ~0", stop)
	}
}

func TestHighPassBiquadFrequencyResponse(t *testing.T) {
	const rate = 4000.0
	f, err := NewHighPassBiquad(750, rate)
	if err != nil {
		t.Fatal(err)
	}
	stop := sineResponse(f, 60, rate)
	pass := sineResponse(f, 1500, rate)
	if pass < 0.9 {
		t.Errorf("pass-band gain = %.3f, want ~1", pass)
	}
	if stop > 0.05 {
		t.Errorf("stop-band gain = %.3f, want ~0", stop)
	}
	// DC is removed entirely.
	f.Reset()
	var y float64
	for i := 0; i < 4000; i++ {
		y, _ = f.Push(5)
	}
	if math.Abs(y) > 1e-3 {
		t.Errorf("DC leaks through high-pass: %g", y)
	}
}

func TestBiquadValidation(t *testing.T) {
	if _, err := NewLowPassBiquad(0, 100); err == nil {
		t.Error("zero cutoff should fail")
	}
	if _, err := NewLowPassBiquad(60, 100); err == nil {
		t.Error("cutoff above Nyquist should fail")
	}
	if _, err := NewHighPassBiquad(10, 0); err == nil {
		t.Error("zero rate should fail")
	}
}

func TestBiquadStabilityProperty(t *testing.T) {
	// Bounded input -> bounded output, for any valid cutoff.
	f := func(seed int64, cutRaw uint8) bool {
		const rate = 1000.0
		cutoff := 10 + float64(cutRaw)*(480.0/255)
		filt, err := NewLowPassBiquad(cutoff, rate)
		if err != nil {
			return false
		}
		x := 1.0
		for i := 0; i < 5000; i++ {
			x = -x // worst-case alternating input
			y, _ := filt.Push(x)
			if math.Abs(y) > 10 || math.IsNaN(y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGoertzelDetectsTargetTone(t *testing.T) {
	const rate = 4000.0
	g, err := NewGoertzel(1000, rate, 256)
	if err != nil {
		t.Fatal(err)
	}
	if g.BlockSize() != 256 {
		t.Fatalf("BlockSize = %d", g.BlockSize())
	}
	score := feedTone(g, 1000, rate, 256)
	if score < 1.2 {
		t.Errorf("on-target score = %.2f, want high", score)
	}
	g.Reset()
	off := feedTone(g, 300, rate, 256)
	if off > score/3 {
		t.Errorf("off-target score %.2f should be far below on-target %.2f", off, score)
	}
}

func feedTone(g *Goertzel, freq, rate float64, n int) float64 {
	var out float64
	for i := 0; i < n; i++ {
		if s, ok := g.Push(math.Sin(2 * math.Pi * freq * float64(i) / rate)); ok {
			out = s
		}
	}
	return out
}

func TestGoertzelSilenceScoresZero(t *testing.T) {
	g, err := NewGoertzel(500, 4000, 64)
	if err != nil {
		t.Fatal(err)
	}
	var score float64
	var fired bool
	for i := 0; i < 64; i++ {
		if s, ok := g.Push(0); ok {
			score, fired = s, true
		}
	}
	if !fired || score != 0 {
		t.Errorf("silence score = %.2f fired=%v, want 0/true", score, fired)
	}
}

func TestGoertzelValidation(t *testing.T) {
	if _, err := NewGoertzel(0, 4000, 64); err == nil {
		t.Error("zero frequency should fail")
	}
	if _, err := NewGoertzel(3000, 4000, 64); err == nil {
		t.Error("frequency above Nyquist should fail")
	}
	if _, err := NewGoertzel(500, 0, 64); err == nil {
		t.Error("zero rate should fail")
	}
	if _, err := NewGoertzel(500, 4000, 4); err == nil {
		t.Error("tiny block should fail")
	}
}

func TestGoertzelBankCoversBand(t *testing.T) {
	const rate = 4000.0
	bank, err := NewGoertzelBank(850, 1800, rate, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	if bank.Size() != 16 {
		t.Fatalf("Size = %d", bank.Size())
	}
	// Any in-band tone scores high; out-of-band tones score low.
	inBand := bankTone(bank, 1234, rate)
	bank.Reset()
	outBand := bankTone(bank, 300, rate)
	if inBand < 0.8 {
		t.Errorf("in-band score = %.2f, want high", inBand)
	}
	if outBand > inBand/2 {
		t.Errorf("out-of-band score %.2f should be well below in-band %.2f", outBand, inBand)
	}
}

func bankTone(b *GoertzelBank, freq, rate float64) float64 {
	var best float64
	for i := 0; i < 64; i++ {
		if s, ok := b.Push(math.Sin(2 * math.Pi * freq * float64(i) / rate)); ok {
			best = s
		}
	}
	return best
}

func TestGoertzelBankValidation(t *testing.T) {
	if _, err := NewGoertzelBank(850, 1800, 4000, 64, 0); err == nil {
		t.Error("empty bank should fail")
	}
	if _, err := NewGoertzelBank(1800, 850, 4000, 64, 4); err == nil {
		t.Error("inverted band should fail")
	}
	if _, err := NewGoertzelBank(0, 1800, 4000, 64, 4); err == nil {
		t.Error("invalid member frequency should fail")
	}
	// A single-detector bank sits at lo.
	bank, err := NewGoertzelBank(1000, 2000, 8000, 64, 1)
	if err != nil || bank.Size() != 1 {
		t.Fatalf("single bank: %v", err)
	}
}
