package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorMagnitude(t *testing.T) {
	for _, tc := range []struct {
		in   []float64
		want float64
	}{
		{[]float64{3, 4}, 5},
		{[]float64{1, 2, 2}, 3},
		{[]float64{0, 0, 0}, 0},
		{[]float64{-3, -4}, 5},
		{nil, 0},
		{[]float64{7}, 7},
	} {
		if got := VectorMagnitude(tc.in...); !approxEqual(got, tc.want, eps) {
			t.Errorf("VectorMagnitude(%v) = %g, want %g", tc.in, got, tc.want)
		}
	}
}

func TestZeroCrossingRate(t *testing.T) {
	for _, tc := range []struct {
		name string
		in   []float64
		want float64
	}{
		{"alternating", []float64{1, -1, 1, -1}, 1},
		{"constant positive", []float64{1, 1, 1, 1}, 0},
		{"single crossing", []float64{1, 1, -1, -1}, 1.0 / 3},
		{"empty", nil, 0},
		{"one sample", []float64{5}, 0},
		{"zeros treated positive", []float64{0, 0, 0}, 0},
	} {
		if got := ZeroCrossingRate(tc.in); !approxEqual(got, tc.want, eps) {
			t.Errorf("%s: ZCR = %g, want %g", tc.name, got, tc.want)
		}
	}
}

func TestZeroCrossingRateOfSineScalesWithFrequency(t *testing.T) {
	const rate = 1000.0
	n := 1000
	zcrAt := func(freq float64) float64 {
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(2 * math.Pi * freq * float64(i) / rate)
		}
		return ZeroCrossingRate(x)
	}
	low, high := zcrAt(10), zcrAt(100)
	if high <= low {
		t.Errorf("ZCR should grow with frequency: 10 Hz=%g, 100 Hz=%g", low, high)
	}
	// A sine at f Hz crosses zero 2f times per second: rate 2f/sampleRate.
	if want := 2 * 100 / rate; !approxEqual(high, want, 0.01) {
		t.Errorf("ZCR(100 Hz sine) = %g, want ~%g", high, want)
	}
}

func TestZeroCrossingRateBoundedProperty(t *testing.T) {
	f := func(xs []float64) bool {
		z := ZeroCrossingRate(xs)
		return z >= 0 && z <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroCrossingCountMatchesRate(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		if n < 2 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, int(n))
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		return approxEqual(ZeroCrossingRate(xs), float64(ZeroCrossingCount(xs))/float64(len(xs)-1), eps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalMaxima(t *testing.T) {
	x := []float64{0, 3, 1, 5, 5, 2, 4, 0}
	got := LocalMaxima(x, 0, 10)
	want := []Extremum{{1, 3}, {3, 5}, {6, 4}}
	if len(got) != len(want) {
		t.Fatalf("LocalMaxima = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("maximum %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLocalMaximaRangeFilter(t *testing.T) {
	x := []float64{0, 3, 1, 5, 1, 4, 0}
	got := LocalMaxima(x, 2.5, 4.5)
	want := []Extremum{{1, 3}, {5, 4}}
	if len(got) != len(want) {
		t.Fatalf("filtered maxima = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("maximum %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLocalMaximaEndpointsExcluded(t *testing.T) {
	if got := LocalMaxima([]float64{9, 1, 8}, 0, 10); len(got) != 0 {
		t.Errorf("endpoints must not be maxima, got %v", got)
	}
	if got := LocalMaxima([]float64{1, 2}, 0, 10); got != nil {
		t.Errorf("two-sample input has no interior, got %v", got)
	}
}

func TestLocalMinima(t *testing.T) {
	x := []float64{5, -4, 3, -6, -6, 2, 5}
	got := LocalMinima(x, -7, 0)
	want := []Extremum{{1, -4}, {3, -6}}
	if len(got) != len(want) {
		t.Fatalf("LocalMinima = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("minimum %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMinimaAreMaximaOfNegationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 64)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		neg := make([]float64, len(xs))
		for i, v := range xs {
			neg[i] = -v
		}
		minima := LocalMinima(xs, math.Inf(-1), math.Inf(1))
		maxima := LocalMaxima(neg, math.Inf(-1), math.Inf(1))
		if len(minima) != len(maxima) {
			return false
		}
		for i := range minima {
			if minima[i].Index != maxima[i].Index || !approxEqual(minima[i].Value, -maxima[i].Value, eps) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPeakToMeanRatioDistinguishesToneFromNoise(t *testing.T) {
	const rate = 8000.0
	n := 1024
	tone := make([]float64, n)
	noise := make([]float64, n)
	rng := rand.New(rand.NewSource(42))
	for i := range tone {
		tone[i] = math.Sin(2 * math.Pi * 1000 * float64(i) / rate)
		noise[i] = rng.NormFloat64()
	}
	toneRatio, toneFreq, err := PeakToMeanRatio(tone, rate)
	if err != nil {
		t.Fatal(err)
	}
	noiseRatio, _, err := PeakToMeanRatio(noise, rate)
	if err != nil {
		t.Fatal(err)
	}
	if toneRatio < 5*noiseRatio {
		t.Errorf("tone ratio %g should dwarf noise ratio %g", toneRatio, noiseRatio)
	}
	if !approxEqual(toneFreq, 1000, rate/float64(n)+1) {
		t.Errorf("tone dominant frequency = %g, want ~1000", toneFreq)
	}
}

func TestPeakToMeanRatioShortInput(t *testing.T) {
	ratio, freq, err := PeakToMeanRatio([]float64{1, 2}, 100)
	if err != nil || ratio != 0 || freq != 0 {
		t.Errorf("short input: got (%g,%g,%v), want zeros", ratio, freq, err)
	}
}
