package dsp

import (
	"fmt"
	"math"
)

// WindowShape selects the tapering function applied by a Windower.
type WindowShape int

const (
	// Rectangular applies no tapering.
	Rectangular WindowShape = iota
	// Hamming applies the Hamming taper 0.54 - 0.46*cos(2*pi*n/(N-1)).
	Hamming
)

// String returns the lower-case name of the shape.
func (s WindowShape) String() string {
	switch s {
	case Rectangular:
		return "rectangular"
	case Hamming:
		return "hamming"
	default:
		return fmt.Sprintf("WindowShape(%d)", int(s))
	}
}

// ParseWindowShape converts a name produced by String back into a shape.
func ParseWindowShape(name string) (WindowShape, error) {
	switch name {
	case "rectangular", "rect", "":
		return Rectangular, nil
	case "hamming":
		return Hamming, nil
	default:
		return Rectangular, fmt.Errorf("dsp: unknown window shape %q", name)
	}
}

// HammingCoefficients returns the n Hamming taper coefficients.
func HammingCoefficients(n int) []float64 {
	out := make([]float64, n)
	if n == 1 {
		out[0] = 1
		return out
	}
	for i := range out {
		out[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return out
}

// ApplyWindow multiplies x in place by the taper for the given shape and
// returns x. Rectangular is a no-op.
func ApplyWindow(x []float64, shape WindowShape) []float64 {
	if shape == Hamming {
		for i, c := range HammingCoefficients(len(x)) {
			x[i] *= c
		}
	}
	return x
}

// Windower partitions a sample stream into fixed-size windows with optional
// overlap and tapering (paper §3.6 "Windowing"). The zero value is not
// usable; construct with NewWindower.
type Windower struct {
	size  int
	step  int
	shape WindowShape
	buf   []float64
	out   []float64
	taper []float64
}

// NewWindower returns a Windower emitting windows of size samples every
// step samples (step == size means non-overlapping). It returns an error
// for non-positive size, non-positive step, or step > size.
func NewWindower(size, step int, shape WindowShape) (*Windower, error) {
	if size <= 0 {
		return nil, fmt.Errorf("dsp: window size must be positive, got %d", size)
	}
	if step <= 0 || step > size {
		return nil, fmt.Errorf("dsp: window step must be in [1, size], got %d", step)
	}
	w := &Windower{size: size, step: step, shape: shape, buf: make([]float64, 0, size)}
	if shape == Hamming {
		w.taper = HammingCoefficients(size)
	}
	return w, nil
}

// Size returns the window length in samples.
func (w *Windower) Size() int { return w.size }

// Push adds one sample. When a full window is available it returns the
// window with the taper applied and ok=true; otherwise ok=false. The
// returned slice is the Windower's internal buffer: it stays valid only
// until the next emission, so callers that retain windows must copy.
func (w *Windower) Push(v float64) (window []float64, ok bool) {
	w.buf = append(w.buf, v)
	if len(w.buf) < w.size {
		return nil, false
	}
	return w.emit(), true
}

// Consume ingests a prefix of src: exactly enough samples to complete the
// next window, or all of src if the window stays unfilled. It returns the
// number of samples consumed and, on completion, the tapered window (same
// scratch-aliasing contract as Push). Repeated Consume calls over a slice
// are equivalent to a Push loop.
func (w *Windower) Consume(src []float64) (n int, window []float64, ok bool) {
	n = w.size - len(w.buf)
	if n > len(src) {
		n = len(src)
	}
	w.buf = append(w.buf, src[:n]...)
	if len(w.buf) < w.size {
		return n, nil, false
	}
	return n, w.emit(), true
}

// emit tapers the full buffer into the output scratch and slides by step.
func (w *Windower) emit() []float64 {
	if w.out == nil {
		w.out = make([]float64, w.size)
	}
	copy(w.out, w.buf)
	if w.taper != nil {
		for i, c := range w.taper {
			w.out[i] *= c
		}
	}
	// Slide by step.
	copy(w.buf, w.buf[w.step:])
	w.buf = w.buf[:w.size-w.step]
	return w.out
}

// Reset discards any buffered samples.
func (w *Windower) Reset() { w.buf = w.buf[:0] }

// Partition splits x into consecutive windows of the given size and step,
// applying the taper to each. Trailing samples that do not fill a window
// are dropped.
func Partition(x []float64, size, step int, shape WindowShape) ([][]float64, error) {
	w, err := NewWindower(size, step, shape)
	if err != nil {
		return nil, err
	}
	var out [][]float64
	for _, v := range x {
		if win, ok := w.Push(v); ok {
			// Push reuses its buffer across emissions; keep a copy.
			out = append(out, append([]float64(nil), win...))
		}
	}
	return out, nil
}
