package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestToQ15Rounding(t *testing.T) {
	cases := []struct {
		in   float64
		want int32
	}{
		{0, 0},
		{1, Q15One},
		{-1, -Q15One},
		{0.5, Q15One / 2},
		{1.0 / Q15One, 1},
		{0.4999 / Q15One, 0},      // below half a step rounds to zero
		{0.5 / Q15One, 1},         // half a step rounds away from zero
		{-0.5 / Q15One, -1},       // ... in both directions
		{65535.99999, Q15Max},     // at the positive rail
		{-65536.00001, Q15Min},    // past the negative rail
		{math.Inf(1), Q15Max},     // infinities saturate
		{math.Inf(-1), Q15Min},    // ...
		{math.NaN(), 0},           // NaN quantizes to zero
		{1e300, Q15Max},           // huge values saturate, no overflow
		{-1e300, Q15Min},          // ...
		{20.25, 20.25 * Q15One},   // engineering units are exact on the grid
		{-9.81, -321454},          // round(-9.81 * 32768)
	}
	for _, c := range cases {
		if got := ToQ15(c.in); got != c.want {
			t.Errorf("ToQ15(%g) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestFromQ15Inverse(t *testing.T) {
	// Every representable Q15 value round-trips exactly.
	for _, q := range []int32{0, 1, -1, Q15One, -Q15One, Q15Max, Q15Min, 12345, -54321} {
		if got := ToQ15(FromQ15(q)); got != q {
			t.Errorf("ToQ15(FromQ15(%d)) = %d", q, got)
		}
	}
}

func TestQuantizeQ15(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64() * 10
		q := QuantizeQ15(x)
		if math.Abs(q-x) > 0.5/Q15One+1e-12 {
			t.Fatalf("QuantizeQ15(%g) = %g: error exceeds half a step", x, q)
		}
		if QuantizeQ15(q) != q {
			t.Fatalf("QuantizeQ15 not idempotent at %g", x)
		}
	}
}

func TestSaturatingArithmetic(t *testing.T) {
	if got := SatAdd32(Q15Max, 1); got != Q15Max {
		t.Errorf("SatAdd32 overflow = %d", got)
	}
	if got := SatAdd32(Q15Min, -1); got != Q15Min {
		t.Errorf("SatAdd32 underflow = %d", got)
	}
	if got := SatSub32(Q15Min, 1); got != Q15Min {
		t.Errorf("SatSub32 underflow = %d", got)
	}
	if got := SatSub32(Q15Max, -1); got != Q15Max {
		t.Errorf("SatSub32 overflow = %d", got)
	}
	if got := SatAdd32(3, 4); got != 7 {
		t.Errorf("SatAdd32(3,4) = %d", got)
	}
	// MulQ15: 0.5 * 0.5 = 0.25, exact on the grid.
	half := int32(Q15One / 2)
	if got := MulQ15(half, half); got != Q15One/4 {
		t.Errorf("MulQ15(0.5, 0.5) = %d, want %d", got, Q15One/4)
	}
	// Saturation: (2^16)^2 in real terms is far beyond the rails.
	big := int32(Q15Max)
	if got := MulQ15(big, big); got != Q15Max {
		t.Errorf("MulQ15(max, max) = %d", got)
	}
	if got := MulQ15(big, -big); got != Q15Min {
		t.Errorf("MulQ15(max, -max) = %d", got)
	}
}

func TestQ15StatsMatchFloatStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, 128)
	q := make([]int32, 128)
	for i := range x {
		x[i] = rng.NormFloat64() * 5
		q[i] = ToQ15(x[i])
	}
	// One Q15 step of the input plus accumulated rounding; stddev/rms
	// involve a square root so allow a slightly wider margin.
	const tol = 2e-3
	checks := []struct {
		name  string
		fixed int32
		want  float64
	}{
		{"mean", MeanQ15(q), Mean(x)},
		{"variance", VarianceQ15(q), Variance(x)},
		{"stddev", StdDevQ15(q), StdDev(x)},
		{"min", MinQ15(q), Min(x)},
		{"max", MaxQ15(q), Max(x)},
		{"range", RangeQ15(q), Max(x) - Min(x)},
		{"rms", RMSQ15(q), RMS(x)},
		{"median", MedianQ15(q), Median(x)},
		{"meanAbs", MeanAbsQ15(q), MeanAbs(x)},
	}
	for _, c := range checks {
		got := FromQ15(c.fixed)
		if math.Abs(got-c.want) > tol*math.Max(1, math.Abs(c.want)) {
			t.Errorf("%s: q15 %.6f, float %.6f", c.name, got, c.want)
		}
	}
}

func TestZeroCrossingRateQ15MatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, 256)
	q := make([]int32, 256)
	for i := range x {
		x[i] = math.Sin(float64(i)/3) + rng.NormFloat64()*0.1
		q[i] = ToQ15(x[i])
	}
	got := FromQ15(ZeroCrossingRateQ15(q))
	want := ZeroCrossingRate(x)
	if math.Abs(got-want) > 1e-4 {
		t.Errorf("zcr: q15 %.6f, float %.6f", got, want)
	}
}

func TestThresholdQ15AgreesWithFloat(t *testing.T) {
	band, err := NewBandThreshold(-3, 6.5)
	if err != nil {
		t.Fatal(err)
	}
	ts := []*Threshold{
		NewMinThreshold(0.7),
		NewMaxThreshold(3.2),
		band,
	}
	rng := rand.New(rand.NewSource(3))
	for _, th := range ts {
		q := th.Q15()
		for i := 0; i < 2000; i++ {
			v := rng.NormFloat64() * 4
			// The fixed-point gate decides on the quantized value; the
			// float gate must agree when fed the same grid point.
			if q.AdmitsFloat(v) != th.Admits(QuantizeQ15(v)) {
				t.Fatalf("%v: gates disagree at %g", th, v)
			}
		}
	}
}

func TestMovingAveragerQ15MatchesFloat(t *testing.T) {
	f, err := NewMovingAverager(8)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewMovingAveragerQ15(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		v := QuantizeQ15(rng.NormFloat64() * 3)
		fy, fok := f.Push(v)
		gy, gok := g.Push(v)
		if fok != gok {
			t.Fatalf("sample %d: emit mismatch", i)
		}
		if fok && math.Abs(fy-gy) > 1.0/Q15One {
			t.Fatalf("sample %d: float %.8f, q15 %.8f", i, fy, gy)
		}
	}
}

func TestEMAQ15Converges(t *testing.T) {
	e, err := NewEMAQ15(0.25)
	if err != nil {
		t.Fatal(err)
	}
	var y float64
	for i := 0; i < 200; i++ {
		y, _ = e.Push(1.0)
	}
	if math.Abs(y-1.0) > 1e-3 {
		t.Errorf("EMA of constant 1 converged to %g", y)
	}
	e.Reset()
	if y, _ := e.Push(0.5); y != 0.5 {
		t.Errorf("after Reset first sample primes: got %g", y)
	}
}

func TestBiquadQ15TracksFloatBiquad(t *testing.T) {
	bf, err := NewLowPassBiquad(5, 50)
	if err != nil {
		t.Fatal(err)
	}
	bq := bf.Q15()
	rng := rand.New(rand.NewSource(21))
	var worst float64
	for i := 0; i < 2000; i++ {
		v := QuantizeQ15(rng.NormFloat64() * 2)
		fy, _ := bf.Push(v)
		qy, _ := bq.Push(v)
		if d := math.Abs(fy - qy); d > worst {
			worst = d
		}
	}
	// Q30 internal state keeps the recursion tight: even this aggressive
	// cutoff (5 Hz at 50 Hz, heavy feedback) stays within ~10 Q15 steps of
	// the float filter after thousands of samples; 16 steps is the pin.
	if worst > 16.0/Q15One {
		t.Errorf("worst biquad divergence %.8f exceeds 16 Q15 steps", worst)
	}
}

// FuzzQ15Roundtrip fuzzes the float64→Q15→float64 conversion: it must
// never panic, always saturate to the format rails, quantize NaN to zero,
// and round-trip in-range values within half a quantization step.
func FuzzQ15Roundtrip(f *testing.F) {
	for _, seed := range []float64{
		0, 1, -1, 0.5, -0.5, 65535.99, -65536.5, 1e300, -1e300,
		math.Inf(1), math.Inf(-1), math.NaN(), 1.0 / Q15One, -0.5 / Q15One,
		9.81, -20.25, 3.0000152587890625,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, x float64) {
		q := ToQ15(x)
		back := FromQ15(q)

		if math.IsNaN(x) {
			if q != 0 {
				t.Fatalf("ToQ15(NaN) = %d, want 0", q)
			}
			return
		}
		hi, lo := FromQ15(Q15Max), FromQ15(Q15Min)
		switch {
		case x >= hi:
			if q != Q15Max {
				t.Fatalf("ToQ15(%g) = %d, want saturation at %d", x, q, Q15Max)
			}
		case x <= lo:
			if q != Q15Min {
				t.Fatalf("ToQ15(%g) = %d, want saturation at %d", x, q, Q15Min)
			}
		default:
			// In range: the round-trip error is bounded by half a step.
			if err := math.Abs(back - x); err > 0.5/Q15One+1e-12 {
				t.Fatalf("roundtrip error %g at %g exceeds half a step", err, x)
			}
		}
		// Idempotence: re-quantizing a grid point is exact.
		if ToQ15(back) != q {
			t.Fatalf("requantize(%g): %d != %d", x, ToQ15(back), q)
		}
	})
}
