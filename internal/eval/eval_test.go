package eval

import (
	"strings"
	"testing"
	"time"

	"sidewinder/internal/apps"
	"sidewinder/internal/sim"
)

// testOptions keeps the harness fast: short traces, fewer intervals.
func testOptions() Options {
	return Options{
		Seed:             3,
		RobotRunDuration: 3 * time.Minute,
		AudioDuration:    4 * time.Minute,
		HumanDuration:    12 * time.Minute,
		SleepIntervals:   []float64{2, 10, 30},
	}
}

// sharedWorkload is generated once for the whole test package.
var sharedWorkload *Workload

func workload(t *testing.T) *Workload {
	t.Helper()
	if sharedWorkload == nil {
		w, err := GenerateWorkload(testOptions())
		if err != nil {
			t.Fatal(err)
		}
		sharedWorkload = w
	}
	return sharedWorkload
}

func TestGenerateWorkload(t *testing.T) {
	w := workload(t)
	if len(w.RobotRuns) != 18 {
		t.Errorf("robot runs = %d, want 18", len(w.RobotRuns))
	}
	if len(w.Audio) != 3 || len(w.Human) != 3 {
		t.Errorf("audio/human = %d/%d, want 3/3", len(w.Audio), len(w.Human))
	}
	if got := len(w.RobotGroup(1)); got != 9 {
		t.Errorf("group 1 = %d runs, want 9", got)
	}
	if got := len(w.RobotGroup(3)); got != 3 {
		t.Errorf("group 3 = %d runs, want 3", got)
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:  "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"x", "1"}, {"yyyy", "22"}},
		Note:   "note",
	}
	out := tb.Render()
	for _, want := range []string{"demo", "long-header", "yyyy", "note", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tb := Table1()
	if len(tb.Rows) != 4 {
		t.Fatalf("table 1 has %d rows", len(tb.Rows))
	}
	want := map[string]string{
		"Awake, running sensor-driven application": "323.0",
		"Asleep":                     "9.7",
		"Asleep-to-Awake Transition": "384.0",
		"Awake-to-Asleep Transition": "341.0",
	}
	for _, row := range tb.Rows {
		if got := row[1]; got != want[row[0]] {
			t.Errorf("%s = %s, want %s", row[0], got, want[row[0]])
		}
	}
}

func TestTable2Shape(t *testing.T) {
	w := workload(t)
	res, err := Table2(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.PAThreshold <= 0 {
		t.Errorf("PA threshold = %g", res.PAThreshold)
	}
	if res.Devices["sirens"] != "LM4F120" {
		t.Errorf("sirens device = %s, want LM4F120 (Table 2 asterisk)", res.Devices["sirens"])
	}
	if res.Devices["music"] != "MSP430" || res.Devices["phrase"] != "MSP430" {
		t.Errorf("music/phrase devices = %s/%s, want MSP430", res.Devices["music"], res.Devices["phrase"])
	}
	for _, app := range []string{"sirens", "music", "phrase"} {
		oracle := res.PowerMW["Oracle"][app]
		sw := res.PowerMW["Sidewinder"][app]
		pa := res.PowerMW["Predefined Activity"][app]
		if rec := res.Recall["Sidewinder"][app]; rec < 0.99 {
			t.Errorf("%s: Sidewinder recall = %.2f, want ~1 (conservative conditions)", app, rec)
		}
		if oracle <= 9.7 || oracle >= 323 {
			t.Errorf("%s oracle = %.1f out of range", app, oracle)
		}
		if sw < oracle {
			t.Errorf("%s: Sidewinder (%.1f) beats oracle (%.1f)", app, sw, oracle)
		}
		if pa >= 323 || sw >= 323 {
			t.Errorf("%s: no savings over always-awake (pa %.1f, sw %.1f)", app, pa, sw)
		}
	}
	// Paper shape: PA wastes power on music and phrase relative to
	// Sidewinder (45% and 60% more in the paper).
	if res.PowerMW["Predefined Activity"]["music"] <= res.PowerMW["Sidewinder"]["music"] {
		t.Error("PA should cost more than Sidewinder for music")
	}
	if res.PowerMW["Predefined Activity"]["phrase"] <= res.PowerMW["Sidewinder"]["phrase"] {
		t.Error("PA should cost more than Sidewinder for phrase detection")
	}
	if res.Table.Render() == "" {
		t.Error("empty render")
	}
}

func TestFigure5Shape(t *testing.T) {
	o := testOptions()
	w := workload(t)
	res, err := Figure5(o, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 3 {
		t.Fatalf("want one table per accel app, got %d", len(res.Tables))
	}
	for _, app := range []string{"steps", "transitions", "headbutts"} {
		for group := 1; group <= 3; group++ {
			rel := res.Relative[app][group]
			if rel["AA"] < 1 {
				t.Errorf("%s g%d: AA %.2fx should be above oracle", app, group, rel["AA"])
			}
			if rel["Sw"] > rel["AA"] {
				t.Errorf("%s g%d: Sidewinder (%.2fx) worse than always-awake (%.2fx)", app, group, rel["Sw"], rel["AA"])
			}
			if rel["Sw"] > rel["PA"] {
				t.Errorf("%s g%d: Sidewinder (%.2fx) worse than predefined activity (%.2fx)", app, group, rel["Sw"], rel["PA"])
			}
			// Always-Awake recall is the classifier's ceiling; the
			// conservative wake-up mechanisms must reach it.
			ceiling := res.Recall[app][group]["AA"]
			if rec := res.Recall[app][group]["Sw"]; rec < ceiling-0.02 {
				t.Errorf("%s g%d: Sidewinder recall %.2f below AA ceiling %.2f", app, group, rec, ceiling)
			}
			if rec := res.Recall[app][group]["Ba-10s"]; rec < ceiling-0.02 {
				t.Errorf("%s g%d: batching recall %.2f below AA ceiling %.2f", app, group, rec, ceiling)
			}
		}
		// AA relative cost shrinks as activity grows (oracle rises).
		if res.Relative[app][1]["AA"] <= res.Relative[app][3]["AA"] {
			t.Errorf("%s: AA ratio should fall from group 1 to 3", app)
		}
	}
	// Rare events: PA pays far more than Sidewinder (paper: 4.7x).
	if ratio := res.Relative["headbutts"][1]["PA"] / res.Relative["headbutts"][1]["Sw"]; ratio < 2 {
		t.Errorf("PA/Sw for headbutts = %.1fx, want >> 1 (paper 4.7x)", ratio)
	}
}

func TestFigure6Shape(t *testing.T) {
	o := testOptions()
	w := workload(t)
	res, err := Figure6(o, w)
	if err != nil {
		t.Fatal(err)
	}
	for app, recalls := range res.Recall {
		if recalls[2] < recalls[30] {
			t.Errorf("%s: recall at 2s (%.2f) below recall at 30s (%.2f)", app, recalls[2], recalls[30])
		}
		if recalls[30] > 0.6 {
			t.Errorf("%s: 30s duty cycling recall %.2f implausibly high", app, recalls[30])
		}
	}
}

func TestFigure7Shape(t *testing.T) {
	o := testOptions()
	w := workload(t)
	res, err := Figure7(o, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range w.Human {
		rel := res.Relative[tr.Name]
		if rel["Sw"] > rel["AA"] || rel["Sw"] > rel["PA"] {
			t.Errorf("%s: Sw %.2fx vs AA %.2fx PA %.2fx", tr.Name, rel["Sw"], rel["AA"], rel["PA"])
		}
		if res.Recall[tr.Name]["Sw"] < 0.95 {
			t.Errorf("%s: Sidewinder recall vs AA baseline = %.2f", tr.Name, res.Recall[tr.Name]["Sw"])
		}
		if res.Recall[tr.Name]["Ba-10s"] < 0.95 {
			t.Errorf("%s: batching recall = %.2f", tr.Name, res.Recall[tr.Name]["Ba-10s"])
		}
		if s := res.SidewinderSavings[tr.Name]; s < 0.75 || s > 1.01 {
			t.Errorf("%s: Sidewinder savings share = %.2f (paper >= 0.91)", tr.Name, s)
		}
	}
}

func TestSavingsShape(t *testing.T) {
	o := testOptions()
	w := workload(t)
	res, err := Savings(o, w)
	if err != nil {
		t.Fatal(err)
	}
	for app, groups := range res.AccelSavings {
		for g, share := range groups {
			if share < 0.7 || share > 1.01 {
				t.Errorf("%s group %d: savings share %.2f outside plausible band (paper 0.927-0.957)", app, g, share)
			}
		}
	}
	for app, share := range res.AudioSavings {
		if share < 0.6 || share > 1.01 {
			t.Errorf("%s: audio savings share %.2f (paper 0.85-0.98)", app, share)
		}
	}
	if res.OracleMinMW <= 9.7 || res.OracleMaxMW >= 323 || res.OracleMinMW > res.OracleMaxMW {
		t.Errorf("oracle bounds [%.1f, %.1f] implausible", res.OracleMinMW, res.OracleMaxMW)
	}
}

func TestCalibratePAFindsThreshold(t *testing.T) {
	w := workload(t)
	th, err := CalibratePA(w.Workers, sim.SignificantMotion, w.RobotRuns[:3], apps.AccelApps(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if th <= 0 {
		t.Fatalf("threshold = %g", th)
	}
	// The calibrated threshold must sit above idle noise (~0.05 m/s²
	// magnitude std) or PA would never sleep.
	if th < 0.05 {
		t.Errorf("threshold %.3f below idle noise floor", th)
	}
}

func TestGeometricGrid(t *testing.T) {
	g := geometric(1, 100, 3)
	if len(g) != 3 || g[0] != 1 || g[2] != 100 {
		t.Fatalf("geometric = %v", g)
	}
	if g[1] < 9.9 || g[1] > 10.1 {
		t.Errorf("midpoint = %g, want ~10", g[1])
	}
}

func TestDeviceSweep(t *testing.T) {
	w := workload(t)
	res, err := DeviceSweep(w)
	if err != nil {
		t.Fatal(err)
	}
	// Sirens must be infeasible on the MSP430 and present on the LM4F120.
	if _, ok := res.PowerMW["sirens"]["MSP430"]; ok {
		t.Error("sirens should be infeasible on the MSP430")
	}
	if _, ok := res.PowerMW["sirens"]["LM4F120"]; !ok {
		t.Error("sirens missing on the LM4F120")
	}
	// Where both devices work, the big part must cost more.
	for app, byDev := range res.PowerMW {
		small, okS := byDev["MSP430"]
		big, okB := byDev["LM4F120"]
		if okS && okB && big <= small {
			t.Errorf("%s: LM4F120 (%.1f) should cost more than MSP430 (%.1f)", app, big, small)
		}
	}
}

func TestConditionAblation(t *testing.T) {
	w := workload(t)
	res, err := ConditionAblation(w)
	if err != nil {
		t.Fatal(err)
	}
	variants := StepsConditionVariants()
	if len(variants) != 3 {
		t.Fatalf("want 3 variants, got %d", len(variants))
	}
	naive := res.PowerMW[variants[0].Label]
	full := res.PowerMW[variants[2].Label]
	if naive < full {
		t.Errorf("naive condition (%.1f mW) should cost at least the tuned one (%.1f mW)", naive, full)
	}
	for _, v := range variants {
		if res.Recall[v.Label] < res.Recall[variants[0].Label]-0.02 {
			t.Errorf("%s: recall %.2f below the naive baseline", v.Label, res.Recall[v.Label])
		}
	}
}

func TestBatchingLatency(t *testing.T) {
	o := testOptions()
	w := workload(t)
	res, err := BatchingLatency(o, w)
	if err != nil {
		t.Fatal(err)
	}
	intervals := o.SleepIntervals
	for i := 1; i < len(intervals); i++ {
		lo, hi := intervals[i-1], intervals[i]
		if res.PowerMW[hi] >= res.PowerMW[lo] {
			t.Errorf("power should fall with interval: %.1f at %gs vs %.1f at %gs",
				res.PowerMW[hi], hi, res.PowerMW[lo], lo)
		}
		if res.LatencySec[hi] <= res.LatencySec[lo] {
			t.Errorf("latency should grow with interval: %.1fs at %gs vs %.1fs at %gs",
				res.LatencySec[hi], hi, res.LatencySec[lo], lo)
		}
	}
	// Latency is bounded below by roughly half the cycle period.
	if res.LatencySec[intervals[len(intervals)-1]] < 2 {
		t.Error("long batching intervals should show multi-second latency")
	}
}

func TestPipelineSharing(t *testing.T) {
	res, err := PipelineSharing()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Table.Rows))
	}
	// Music and phrase share both window stages, so the pairwise saving
	// must be substantial; across all six apps it dilutes.
	if res.SavedFrac <= 0 || res.SavedFrac > 0.5 {
		t.Errorf("all-apps sharing fraction = %.2f, want in (0, 0.5]", res.SavedFrac)
	}
}

func TestSirenRedesign(t *testing.T) {
	w := workload(t)
	res, err := SirenRedesign(w)
	if err != nil {
		t.Fatal(err)
	}
	const fft = "FFT tonality (paper)"
	const goe = "Goertzel bank (extension)"
	if res.Device[fft] != "LM4F120" {
		t.Errorf("FFT condition on %s, want LM4F120", res.Device[fft])
	}
	if res.Device[goe] != "MSP430" {
		t.Errorf("Goertzel condition on %s, want MSP430", res.Device[goe])
	}
	if res.Recall[goe] < res.Recall[fft]-0.01 {
		t.Errorf("Goertzel recall %.2f below FFT recall %.2f", res.Recall[goe], res.Recall[fft])
	}
	if res.PowerMW[goe] >= res.PowerMW[fft] {
		t.Errorf("Goertzel condition (%.1f mW) should beat the FFT one (%.1f mW)",
			res.PowerMW[goe], res.PowerMW[fft])
	}
	// The saving should be dominated by dropping the 49.4 - 3.6 mW hub.
	if gap := res.PowerMW[fft] - res.PowerMW[goe]; gap < 30 {
		t.Errorf("power gap = %.1f mW, want >= 30 (device downgrade)", gap)
	}
}

func TestBatteryLife(t *testing.T) {
	w := workload(t)
	res, err := BatteryLife(w)
	if err != nil {
		t.Fatal(err)
	}
	for app, byCfg := range res.Hours {
		aa := byCfg["Always Awake"]
		sw := byCfg["Sidewinder"]
		oracle := byCfg["Oracle"]
		if aa < 24 || aa > 26 {
			t.Errorf("%s: always-awake life = %.1f h, want ~24.7", app, aa)
		}
		if !(oracle >= sw && sw > aa) {
			t.Errorf("%s: life ordering violated: aa %.1f, sw %.1f, oracle %.1f", app, aa, sw, oracle)
		}
		// The paper's headline: Sidewinder turns ~1 day into many days
		// for rare-event applications.
		if app == "headbutts" && sw < 5*24 {
			t.Errorf("headbutts Sidewinder life = %.1f h, want > 5 days", sw)
		}
	}
}

func TestAdaptiveTuning(t *testing.T) {
	w := workload(t)
	res, err := AdaptiveTuning(w)
	if err != nil {
		t.Fatal(err)
	}
	staticFP := res.WakesFirstHalf["static"] + res.WakesSecondHalf["static"]
	tunedFP := res.WakesFirstHalf["tuned"] + res.WakesSecondHalf["tuned"]
	if tunedFP > staticFP {
		t.Errorf("tuning increased FP wakes: %d vs %d", tunedFP, staticFP)
	}
	if res.FinalFactor <= 1 {
		t.Errorf("tuner never tightened: factor %.2f", res.FinalFactor)
	}
	if res.Recall["tuned"] < res.Recall["static"]-0.05 {
		t.Errorf("tuning cost recall: %.2f vs %.2f", res.Recall["tuned"], res.Recall["static"])
	}
}

func TestLinkReliability(t *testing.T) {
	w := workload(t)
	res, err := LinkReliability(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.RawRecall[0] != 1 || res.ARQRecall[0] != 1 {
		t.Errorf("clean wire should deliver everything: raw %.2f, arq %.2f",
			res.RawRecall[0], res.ARQRecall[0])
	}
	for rate, recall := range res.ARQRecall {
		if recall != 1 {
			t.Errorf("ARQ recall at %.0f%% error = %.3f, want 1", rate*100, recall)
		}
	}
	if res.RawRecall[0.20] >= 1 {
		t.Errorf("raw link at 20%% error lost nothing (recall %.3f); faults inert", res.RawRecall[0.20])
	}
	if res.Retransmits[0.20] <= res.Retransmits[0] {
		t.Errorf("retransmits did not grow with error rate: %d at 0%%, %d at 20%%",
			res.Retransmits[0], res.Retransmits[0.20])
	}

	// The sweep must render identically at any worker count: the pool
	// collects results in submission order.
	serial := *w
	serial.Workers = 1
	sres, err := LinkReliability(&serial)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sres.Table.Render(), res.Table.Render(); got != want {
		t.Errorf("worker count changed the table:\n--- parallel\n%s\n--- serial\n%s", want, got)
	}
}
