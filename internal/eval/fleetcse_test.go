package eval

import "testing"

// TestFleetCSEGainsCapacity is the acceptance pin for cross-app
// common-subgraph elimination: on the seeded fleet sweep, billing shared
// subgraphs once must never admit fewer tenants than naive per-app
// billing, and must admit strictly more at some multi-app mix. The
// ablation (DisableCSE) must report zero shared nodes — it really is the
// naive ledger, not a cheaper copy of the shared one.
func TestFleetCSEGainsCapacity(t *testing.T) {
	opts := testOptions()
	on := *workload(t)
	on.DisableCSE = false
	off := on
	off.DisableCSE = true

	resOn, err := FleetCapacity(opts, &on)
	if err != nil {
		t.Fatal(err)
	}
	resOff, err := FleetCapacity(opts, &off)
	if err != nil {
		t.Fatal(err)
	}

	strictGain := false
	for _, m := range fleetAppMixes {
		rOn, rOff := resOn.Runs[m], resOff.Runs[m]
		if rOn == nil || rOff == nil {
			t.Fatalf("mix %d missing from sweep", m)
		}
		if rOn.Conditions != rOff.Conditions {
			t.Fatalf("mix %d: workloads diverged: %d vs %d conditions", m, rOn.Conditions, rOff.Conditions)
		}
		if rOn.Admitted < rOff.Admitted {
			t.Errorf("mix %d: CSE admitted %d < naive %d", m, rOn.Admitted, rOff.Admitted)
		}
		if rOn.Admitted > rOff.Admitted {
			strictGain = true
		}
		var sharedOn, sharedOff int
		for _, c := range rOn.Cells {
			sharedOn += c.SharedNodes
		}
		for _, c := range rOff.Cells {
			sharedOff += c.SharedNodes
		}
		if sharedOff != 0 {
			t.Errorf("mix %d: ablation reports %d shared nodes, want 0", m, sharedOff)
		}
		if m > 1 && sharedOn == 0 {
			t.Errorf("mix %d: CSE run shares no nodes — sweep no longer exercises sharing", m)
		}
	}
	if !strictGain {
		t.Error("CSE never admitted strictly more tenants at any mix")
	}
}
