package eval

import (
	"fmt"

	"sidewinder/internal/apps"
	"sidewinder/internal/adapt"
	"sidewinder/internal/sensor"
	"sidewinder/internal/sim"
)

// AdaptiveResult reports the closed-loop adaptation sweep: for each
// application, the oracle bound, the static Sidewinder control (same
// load-proportional power model, adaptation frozen) and the adaptive arm,
// with the hub-energy savings the policy engine recovered and the
// missed-wake rate it paid for them.
type AdaptiveResult struct {
	Table *Table
	// SavingsPct[app] is the adaptive arm's hub-energy savings over the
	// static control, as a fraction of the static hub energy.
	SavingsPct map[string]float64
	// MissedRate[app] is the adaptive arm's observed missed-wake fraction.
	MissedRate map[string]float64
	// Recall[app] is the adaptive arm's detection recall.
	Recall map[string]float64
}

// adaptiveSweepApps picks the applications and traces the sweep covers:
// the two continuous accelerometer conditions over the group-2 robot runs
// (group 2 has the mid idle fraction, so both wake and idle behavior are
// exercised) and every audio application over the audio environments. The
// audio trio spans the interesting policy regimes: sirens and music earn
// the Q15 rung (the FFT chain keeps the LM4F120, the feature chain idles
// the MSP430), music's decimation rung gets vetoed by re-admission, and
// phrase's false wakes drive the AIMD threshold axis.
func adaptiveSweepApps(w *Workload) []struct {
	app    *apps.App
	traces []*sensor.Trace
} {
	out := []struct {
		app    *apps.App
		traces []*sensor.Trace
	}{
		{apps.Steps(), w.RobotGroup(2)},
		{apps.Transitions(), w.RobotGroup(2)},
	}
	for _, app := range apps.AudioApps() {
		out = append(out, struct {
			app    *apps.App
			traces []*sensor.Trace
		}{app, w.Audio})
	}
	return out
}

// Adaptive runs the feedback-loop experiment (ROADMAP item 1): every
// application replays its traces under Oracle, static Sidewinder and
// adaptive Sidewinder. Both Sidewinder arms bill the hub with the
// load-proportional power model, so the delta is purely what the policy
// engine's re-parameterizations (threshold strictness, Q15 demotion,
// decimation + window stretch) are worth. Cells fan out through the
// worker pool and aggregate in enqueue order; the engine itself is
// driven only by the trace, so the table is byte-identical at any worker
// count (TestRunAdaptiveWorkerInvariance).
func Adaptive(w *Workload) (*AdaptiveResult, error) {
	sweep := adaptiveSweepApps(w)
	// The sweep's policy bounds: default knob ceilings, but a shorter
	// patience/cooldown than adapt.DefaultConfig — the evaluation traces
	// are minutes long, so the engine must earn its rungs on tens of
	// wake-ups, not the hours a deployment would see.
	cfg := adapt.DefaultConfig()
	cfg.Patience = 3
	cfg.Cooldown = 6
	arms := []struct {
		name string
		s    sim.Strategy
	}{
		{"Oracle", sim.Oracle{}},
		{"Static Sidewinder", sim.AdaptiveSidewinder{Config: cfg, Frozen: true}},
		{"Adaptive Sidewinder", sim.AdaptiveSidewinder{Config: cfg}},
	}

	var b runBatch
	cells := make([][]cellRange, len(sweep))
	for si, sw := range sweep {
		cells[si] = make([]cellRange, len(arms))
		for ai, arm := range arms {
			cells[si][ai] = b.add(arm.s, sw.traces, sw.app)
		}
	}
	b.run(w.Workers, w.Telemetry, w.Precision)

	out := &AdaptiveResult{
		SavingsPct: make(map[string]float64),
		MissedRate: make(map[string]float64),
		Recall:     make(map[string]float64),
	}
	table := &Table{
		Title: "Closed-loop adaptation: static vs adaptive Sidewinder (load-proportional hub power)",
		Header: []string{"App", "Arm", "Power (mW)", "Hub (mJ)", "Savings",
			"Recall", "Missed", "Adaptations", "Final knobs"},
		Note: "Savings = hub energy recovered vs the static arm under the identical power model. " +
			"Missed = missed-wake fraction the policy observed (bounded by MissedWakeBound). " +
			"Adaptations = program rebuilds the hub performed; knobs = decimation/window/threshold/precision.",
	}

	for si, sw := range sweep {
		for ai, arm := range arms {
			results, err := cells[si][ai].results()
			if err != nil {
				return nil, err
			}
			power := meanPower(results)
			recall := meanRecall(results)
			row := []string{sw.app.Name, arm.name, fmt.Sprintf("%.1f", power)}
			if ai == 0 { // Oracle: no hub, no policy
				row = append(row, "—", "—", fmt.Sprintf("%.2f", recall), "—", "—", "—")
				table.Rows = append(table.Rows, row)
				continue
			}
			var staticMJ, adaptedMJ, missed, observed float64
			var adoptions, changes int
			var final string
			for _, r := range results {
				if r.Adapt == nil {
					return nil, fmt.Errorf("eval: %s cell missing adaptation stats", arm.name)
				}
				staticMJ += r.Adapt.StaticMJ
				adaptedMJ += r.Adapt.AdaptedMJ
				missed += float64(r.Adapt.MissedWakes)
				observed += float64(r.Adapt.MissedWakes + r.Adapt.TrueWakes)
				adoptions += r.Adapt.Adoptions
				changes += r.Adapt.Changes
				k := r.Adapt.FinalKnobs
				final = fmt.Sprintf("d=%d w=%.1f t=%.2f %s", k.Decimation, k.WindowScale,
					k.ThresholdFactor, k.Precision)
			}
			savings := 0.0
			if staticMJ > 0 {
				savings = (staticMJ - adaptedMJ) / staticMJ
			}
			missedRate := 0.0
			if observed > 0 {
				missedRate = missed / observed
			}
			if ai == 2 {
				out.SavingsPct[sw.app.Name] = savings
				out.MissedRate[sw.app.Name] = missedRate
				out.Recall[sw.app.Name] = recall
			}
			row = append(row,
				fmt.Sprintf("%.0f", adaptedMJ),
				fmt.Sprintf("%.1f%%", savings*100),
				fmt.Sprintf("%.2f", recall),
				fmt.Sprintf("%.3f", missedRate),
				fmt.Sprintf("%d", adoptions),
				final)
			table.Rows = append(table.Rows, row)
		}
	}
	out.Table = table
	return out, nil
}
