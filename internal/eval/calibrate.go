package eval

import (
	"fmt"
	"math"

	"sidewinder/internal/apps"
	"sidewinder/internal/parallel"
	"sidewinder/internal/sensor"
	"sidewinder/internal/sim"
)

// CalibratePA finds the predefined-activity threshold that minimizes power
// while keeping 100% detection recall for every (trace, app) pair, exactly
// the deliberately over-fit procedure of paper §5.3 ("we explored the
// parameter space to determine the best thresholds ... values that
// minimize power consumption, while maintaining 100% detection recall").
//
// Power decreases monotonically as the threshold rises (fewer wake-ups),
// so the best threshold is the largest one that still recalls everything:
// a coarse descending scan over a geometric grid suffices and stays
// deterministic.
func CalibratePA(workers int, kind sim.PAKind, traces []*sensor.Trace, appList []*apps.App, truths map[string][]sensor.Event) (float64, error) {
	// "100% recall" means recalling everything the main-CPU classifier
	// can detect at all: the Always-Awake run is the per-(trace, app)
	// ceiling no wake-up mechanism can exceed. The pairs are independent,
	// so they fan through the pool.
	pairs := calibrationPairs(traces, appList)
	recalls, err := parallel.Map(workers, len(pairs), func(i int) (float64, error) {
		tr, app := pairs[i].tr, pairs[i].app
		res, err := (sim.AlwaysAwake{}).Run(tr, app)
		if err != nil {
			return 0, err
		}
		if truth, ok := truths[truthKey(tr, app)]; ok {
			res.RescoreAgainst(truth, int(app.MatchTolSec*tr.RateHz))
		}
		return res.Recall, nil
	})
	if err != nil {
		return 0, err
	}
	ceilings := make(map[string]float64, len(pairs))
	for i, p := range pairs {
		ceilings[truthKey(p.tr, p.app)] = recalls[i]
	}

	grid := motionGrid
	if kind == sim.SignificantSound {
		grid = soundGrid
	}
	for i := len(grid) - 1; i >= 0; i-- {
		threshold := grid[i]
		ok, err := paRecallsAll(workers, kind, threshold, pairs, truths, ceilings)
		if err != nil {
			return 0, err
		}
		if ok {
			return threshold, nil
		}
	}
	return 0, fmt.Errorf("eval: no predefined-activity threshold achieves full recall")
}

// calibrationPair is one (trace, app) recall measurement.
type calibrationPair struct {
	tr  *sensor.Trace
	app *apps.App
}

// calibrationPairs flattens the (trace, app) matrix in deterministic order.
func calibrationPairs(traces []*sensor.Trace, appList []*apps.App) []calibrationPair {
	out := make([]calibrationPair, 0, len(traces)*len(appList))
	for _, tr := range traces {
		for _, app := range appList {
			out = append(out, calibrationPair{tr: tr, app: app})
		}
	}
	return out
}

// Geometric threshold grids for the two hardwired detectors. Units:
// motion is the std-dev of acceleration magnitude (m/s²); sound is the
// audio amplitude variance.
var (
	motionGrid = geometric(0.02, 1.6, 24)
	soundGrid  = geometric(0.0002, 0.08, 24)
)

// geometric returns n points from lo to hi in geometric progression.
func geometric(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	ratio := hi / lo
	for i := range out {
		out[i] = lo * math.Pow(ratio, float64(i)/float64(n-1))
	}
	return out
}

// paRecallsAll reports whether the PA configuration with the given
// threshold achieves full recall on every (trace, app) pair. For traces
// listed in truths, recall is measured against that baseline instead of
// trace labels (human traces, §5.5). Pairs fan through the pool and stop
// early once any pair falls short; the verdict is deterministic even
// though the set of pairs actually simulated is not.
func paRecallsAll(workers int, kind sim.PAKind, threshold float64, pairs []calibrationPair, truths map[string][]sensor.Event, ceilings map[string]float64) (bool, error) {
	pa := sim.PredefinedActivity{Kind: kind, Threshold: threshold}
	return parallel.All(workers, len(pairs), func(i int) (bool, error) {
		tr, app := pairs[i].tr, pairs[i].app
		res, err := pa.Run(tr, app)
		if err != nil {
			return false, err
		}
		if truth, ok := truths[truthKey(tr, app)]; ok {
			res.RescoreAgainst(truth, int(app.MatchTolSec*tr.RateHz))
		}
		return res.Recall >= ceilings[truthKey(tr, app)]-1e-9, nil
	})
}

// truthKey identifies a (trace, app) baseline in the truths map.
func truthKey(tr *sensor.Trace, app *apps.App) string {
	return tr.Name + "/" + app.Name
}
