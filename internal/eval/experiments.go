package eval

import (
	"fmt"
	"sort"

	"sidewinder/internal/apps"
	"sidewinder/internal/core"
	"sidewinder/internal/power"
	"sidewinder/internal/sensor"
	"sidewinder/internal/sim"
)

// ---------------------------------------------------------------- Table 1

// Table1 regenerates the Nexus 4 power profile (paper Table 1) by driving
// the power model through each state and reading back the average draw,
// verifying the model reproduces the measured constants.
func Table1() *Table {
	profile := power.Nexus4()

	awake := power.NewPhoneAwake(profile)
	awake.Advance(3600)

	asleep := power.NewPhone(profile)
	asleep.Advance(3600)

	waking := power.NewPhone(profile)
	waking.RequestWake()
	waking.Advance(profile.TransitionSeconds)
	wakingAvg := waking.EnergyMJ() / profile.TransitionSeconds

	sleeping := power.NewPhoneAwake(profile)
	sleeping.RequestSleep()
	sleeping.Advance(profile.TransitionSeconds)
	sleepingAvg := sleeping.EnergyMJ() / profile.TransitionSeconds

	return &Table{
		Title:  "Table 1: Google Nexus 4 power profile (model readback)",
		Header: []string{"State", "Avg power (mW)", "Avg duration"},
		Rows: [][]string{
			{"Awake, running sensor-driven application", fmt.Sprintf("%.1f", awake.AverageMW()), "N/A"},
			{"Asleep", fmt.Sprintf("%.1f", asleep.AverageMW()), "N/A"},
			{"Asleep-to-Awake Transition", fmt.Sprintf("%.1f", wakingAvg), "1 second"},
			{"Awake-to-Asleep Transition", fmt.Sprintf("%.1f", sleepingAvg), "1 second"},
		},
		Note: "Paper: 323 / 9.7 / 384 / 341 mW.",
	}
}

// ---------------------------------------------------------------- Table 2

// Table2Result carries the audio-application power matrix (paper Table 2)
// plus the calibrated significant-sound threshold.
type Table2Result struct {
	Table *Table
	// PowerMW[mechanism][app] in milliwatts.
	PowerMW map[string]map[string]float64
	// Recall[mechanism][app] averaged over the environments.
	Recall map[string]map[string]float64
	// PAThreshold is the calibrated significant-sound threshold.
	PAThreshold float64
	// Devices[app] is the hub device Sidewinder selected.
	Devices map[string]string
}

// Table2 regenerates the average power of the audio applications under
// Oracle, Predefined Activity (calibrated significant sound) and
// Sidewinder, averaged over the three audio environments.
func Table2(w *Workload) (*Table2Result, error) {
	audioApps := apps.AudioApps()
	paThreshold, err := CalibratePA(w.Workers, sim.SignificantSound, w.Audio, audioApps, nil)
	if err != nil {
		return nil, err
	}

	mechanisms := []struct {
		name string
		s    sim.Strategy
	}{
		{"Oracle", sim.Oracle{}},
		{"Predefined Activity", sim.PredefinedActivity{Kind: sim.SignificantSound, Threshold: paThreshold}},
		{"Sidewinder", sim.Sidewinder{}},
	}

	// Fan every (mechanism, app, trace) cell through the pool, then
	// aggregate in enqueue order.
	var b runBatch
	cells := make([][]cellRange, len(mechanisms))
	for mi, mech := range mechanisms {
		cells[mi] = make([]cellRange, len(audioApps))
		for ai, app := range audioApps {
			cells[mi][ai] = b.add(mech.s, w.Audio, app)
		}
	}
	b.run(w.Workers, w.Telemetry, w.Precision)

	res := &Table2Result{
		PowerMW:     make(map[string]map[string]float64),
		Recall:      make(map[string]map[string]float64),
		PAThreshold: paThreshold,
		Devices:     make(map[string]string),
	}
	table := &Table{
		Title:  "Table 2: Average power for the audio applications (mW)",
		Header: []string{"Wake-up Mechanism", "Sirens", "Music", "Phrase"},
		Note:   "Paper: Oracle 16.8/27.2/14.7; Predefined 51.9 (all); Sidewinder 63.1*/32.3/35.6 (* = LM4F120).",
	}
	for mi, mech := range mechanisms {
		res.PowerMW[mech.name] = make(map[string]float64)
		res.Recall[mech.name] = make(map[string]float64)
		row := []string{mech.name}
		for ai, app := range audioApps {
			results, err := cells[mi][ai].results()
			if err != nil {
				return nil, err
			}
			p := meanPower(results)
			res.PowerMW[mech.name][app.Name] = p
			res.Recall[mech.name][app.Name] = meanRecall(results)
			cell := fmt.Sprintf("%.1f", p)
			if mech.name == "Sidewinder" {
				res.Devices[app.Name] = results[0].Device
				if results[0].Device == "LM4F120" {
					cell += "*"
				}
			}
			row = append(row, cell)
		}
		table.Rows = append(table.Rows, row)
	}
	res.Table = table
	return res, nil
}

// ---------------------------------------------------------------- Fig. 5

// Figure5Result carries the robot-trace configuration matrix.
type Figure5Result struct {
	Tables []*Table // one per application
	// Relative[app][group][config] = power / oracle power.
	Relative map[string]map[int]map[string]float64
	// Recall[app][group][config], Precision[app][config] averages.
	Recall      map[string]map[int]map[string]float64
	Precision   map[string]float64
	PAThreshold float64
}

// Figure5 regenerates the power-relative-to-Oracle comparison on the 18
// synthetic robot runs for every configuration of paper §4.2 (Fig. 5).
func Figure5(o Options, w *Workload) (*Figure5Result, error) {
	o = o.withDefaults()
	accelApps := apps.AccelApps()

	paThreshold, err := CalibratePA(w.Workers, sim.SignificantMotion, w.RobotRuns, accelApps, nil)
	if err != nil {
		return nil, err
	}

	configs := []struct {
		label string
		s     sim.Strategy
	}{
		{"AA", sim.AlwaysAwake{}},
	}
	for _, sl := range o.SleepIntervals {
		configs = append(configs, struct {
			label string
			s     sim.Strategy
		}{fmt.Sprintf("DC-%.0fs", sl), sim.DutyCycling{SleepSec: sl}})
	}
	configs = append(configs,
		struct {
			label string
			s     sim.Strategy
		}{"Ba-10s", sim.Batching{SleepSec: 10}},
		struct {
			label string
			s     sim.Strategy
		}{"PA", sim.PredefinedActivity{Kind: sim.SignificantMotion, Threshold: paThreshold}},
		struct {
			label string
			s     sim.Strategy
		}{"Sw", sim.Sidewinder{}},
	)

	out := &Figure5Result{
		Relative:    make(map[string]map[int]map[string]float64),
		Recall:      make(map[string]map[int]map[string]float64),
		Precision:   make(map[string]float64),
		PAThreshold: paThreshold,
	}

	// Enqueue the full (app, config, group, trace) matrix — plus the
	// per-group Oracle references — then run it through one pool.
	var b runBatch
	oracleCells := make([][3]cellRange, len(accelApps))
	cfgCells := make([][][3]cellRange, len(accelApps))
	for ai, app := range accelApps {
		for group := 1; group <= 3; group++ {
			oracleCells[ai][group-1] = b.add(sim.Oracle{}, w.RobotGroup(group), app)
		}
		cfgCells[ai] = make([][3]cellRange, len(configs))
		for ci, cfg := range configs {
			for group := 1; group <= 3; group++ {
				cfgCells[ai][ci][group-1] = b.add(cfg.s, w.RobotGroup(group), app)
			}
		}
	}
	b.run(w.Workers, w.Telemetry, w.Precision)

	for ai, app := range accelApps {
		out.Relative[app.Name] = make(map[int]map[string]float64)
		out.Recall[app.Name] = make(map[int]map[string]float64)
		table := &Table{
			Title:  fmt.Sprintf("Figure 5 (%s): power relative to Oracle, by activity group", app.Name),
			Header: []string{"Config", "Group 1 (90% idle)", "Group 2 (50% idle)", "Group 3 (10% idle)"},
			Note:   "Cells: power/oracle (recall). All approaches except DC hold 100% recall in the paper.",
		}
		// Oracle reference per group, computed once.
		oraclePower := make(map[int]float64, 3)
		for group := 1; group <= 3; group++ {
			oracleRes, err := oracleCells[ai][group-1].results()
			if err != nil {
				return nil, err
			}
			oraclePower[group] = meanPower(oracleRes)
		}
		var precSum float64
		var precN int
		for ci, cfg := range configs {
			row := []string{cfg.label}
			for group := 1; group <= 3; group++ {
				cfgRes, err := cfgCells[ai][ci][group-1].results()
				if err != nil {
					return nil, err
				}
				oracleP := oraclePower[group]
				rel := meanPower(cfgRes) / oracleP
				rec := meanRecall(cfgRes)
				if out.Relative[app.Name][group] == nil {
					out.Relative[app.Name][group] = make(map[string]float64)
					out.Recall[app.Name][group] = make(map[string]float64)
				}
				out.Relative[app.Name][group][cfg.label] = rel
				out.Recall[app.Name][group][cfg.label] = rec
				precSum += meanPrecision(cfgRes)
				precN++
				row = append(row, fmt.Sprintf("%.2fx (%.0f%%)", rel, rec*100))
			}
			table.Rows = append(table.Rows, row)
		}
		out.Precision[app.Name] = precSum / float64(precN)
		out.Tables = append(out.Tables, table)
	}
	return out, nil
}

// ---------------------------------------------------------------- Fig. 6

// Figure6Result carries duty-cycling recall vs sleep interval.
type Figure6Result struct {
	Table *Table
	// Recall[app][sleepSec].
	Recall map[string]map[float64]float64
}

// Figure6 regenerates duty-cycling recall on the 90%-idle robot runs as
// the sleep interval grows (paper Fig. 6).
func Figure6(o Options, w *Workload) (*Figure6Result, error) {
	o = o.withDefaults()
	runs := w.RobotGroup(1)
	out := &Figure6Result{Recall: make(map[string]map[float64]float64)}
	table := &Table{
		Title:  "Figure 6: Duty-cycling recall on 90%-idle robot runs",
		Header: []string{"Sleep interval"},
		Note:   "Paper: a 10 s interval drops Headbutts and Transitions recall below 30%.",
	}
	accelApps := apps.AccelApps()
	for _, app := range accelApps {
		table.Header = append(table.Header, app.Name)
		out.Recall[app.Name] = make(map[float64]float64)
	}
	var b runBatch
	cells := make([][]cellRange, len(o.SleepIntervals))
	for si, sl := range o.SleepIntervals {
		cells[si] = make([]cellRange, len(accelApps))
		for ai, app := range accelApps {
			cells[si][ai] = b.add(sim.DutyCycling{SleepSec: sl}, runs, app)
		}
	}
	b.run(w.Workers, w.Telemetry, w.Precision)
	for si, sl := range o.SleepIntervals {
		row := []string{fmt.Sprintf("%.0f s", sl)}
		for ai, app := range accelApps {
			results, err := cells[si][ai].results()
			if err != nil {
				return nil, err
			}
			rec := meanRecall(results)
			out.Recall[app.Name][sl] = rec
			row = append(row, fmt.Sprintf("%.0f%%", rec*100))
		}
		table.Rows = append(table.Rows, row)
	}
	out.Table = table
	return out, nil
}

// ---------------------------------------------------------------- Fig. 7

// Figure7Result carries the human-trace step-detector comparison.
type Figure7Result struct {
	Table *Table
	// Relative[trace][config] = power / oracle power.
	Relative map[string]map[string]float64
	// Recall[trace][config] measured against Always-Awake detections.
	Recall map[string]map[string]float64
	// SidewinderSavings[trace] = fraction of available savings achieved.
	SidewinderSavings map[string]float64
}

// Figure7 regenerates the human-trace experiment (paper Fig. 7): the step
// detector on three human captures, recall measured against the
// Always-Awake baseline because the traces carry no ground truth (§5.5).
func Figure7(o Options, w *Workload) (*Figure7Result, error) {
	o = o.withDefaults()
	app := apps.Steps()

	// Always-Awake provides the pseudo ground truth; the per-trace runs
	// are independent, so they fan through the pool first.
	var aaBatch runBatch
	aaCells := make([]cellRange, len(w.Human))
	for ti, tr := range w.Human {
		aaCells[ti] = aaBatch.addOne(sim.AlwaysAwake{}, tr, app)
	}
	aaBatch.run(w.Workers, w.Telemetry, w.Precision)

	truths := make(map[string][]sensor.Event)
	aaResults := make(map[string]*sim.Result)
	for ti, tr := range w.Human {
		res, err := aaCells[ti].first()
		if err != nil {
			return nil, err
		}
		aaResults[tr.Name] = res
		truths[truthKey(tr, app)] = res.Detections
	}

	paThreshold, err := CalibratePA(w.Workers, sim.SignificantMotion, w.Human, []*apps.App{app}, truths)
	if err != nil {
		return nil, err
	}

	configs := []struct {
		label string
		s     sim.Strategy
	}{
		{"AA", sim.AlwaysAwake{}},
		{"DC-10s", sim.DutyCycling{SleepSec: 10}},
		{"Ba-10s", sim.Batching{SleepSec: 10}},
		{"PA", sim.PredefinedActivity{Kind: sim.SignificantMotion, Threshold: paThreshold}},
		{"Sw", sim.Sidewinder{}},
	}

	out := &Figure7Result{
		Relative:          make(map[string]map[string]float64),
		Recall:            make(map[string]map[string]float64),
		SidewinderSavings: make(map[string]float64),
	}
	table := &Table{
		Title:  "Figure 7: Step detector on human traces, power relative to Oracle",
		Header: []string{"Config"},
		Note:   "Recall vs Always-Awake detections (traces are unlabeled, paper §5.5).",
	}
	for _, tr := range w.Human {
		table.Header = append(table.Header, tr.Name)
	}

	// Oracle (on pseudo-truth traces) and every (config, trace) cell run
	// through one pool; rescoring happens in the ordered aggregation pass.
	var b runBatch
	oracleCells := make([]cellRange, len(w.Human))
	for ti, tr := range w.Human {
		pseudo := pseudoTruthTrace(tr, app.Label, truths[truthKey(tr, app)])
		oracleCells[ti] = b.addOne(sim.Oracle{}, pseudo, app)
	}
	cfgCells := make([][]cellRange, len(configs))
	for ci, cfg := range configs {
		cfgCells[ci] = make([]cellRange, len(w.Human))
		for ti, tr := range w.Human {
			cfgCells[ci][ti] = b.addOne(cfg.s, tr, app)
		}
	}
	b.run(w.Workers, w.Telemetry, w.Precision)

	oraclePower := make(map[string]float64)
	for ti, tr := range w.Human {
		res, err := oracleCells[ti].first()
		if err != nil {
			return nil, err
		}
		oraclePower[tr.Name] = res.Power.TotalAvgMW
	}

	for ci, cfg := range configs {
		row := []string{cfg.label}
		for ti, tr := range w.Human {
			res, err := cfgCells[ci][ti].first()
			if err != nil {
				return nil, err
			}
			res.RescoreAgainst(truths[truthKey(tr, app)], int(app.MatchTolSec*tr.RateHz))
			rel := res.Power.TotalAvgMW / oraclePower[tr.Name]
			if out.Relative[tr.Name] == nil {
				out.Relative[tr.Name] = make(map[string]float64)
				out.Recall[tr.Name] = make(map[string]float64)
			}
			out.Relative[tr.Name][cfg.label] = rel
			out.Recall[tr.Name][cfg.label] = res.Recall
			if cfg.label == "Sw" {
				aa := aaResults[tr.Name].Power.TotalAvgMW
				out.SidewinderSavings[tr.Name] = (aa - res.Power.TotalAvgMW) / (aa - oraclePower[tr.Name])
			}
			row = append(row, fmt.Sprintf("%.2fx (%.0f%%)", rel, res.Recall*100))
		}
		table.Rows = append(table.Rows, row)
	}
	out.Table = table
	return out, nil
}

// pseudoTruthTrace returns a shallow copy of tr whose events are the given
// pseudo ground truth, so the Oracle strategy can run on unlabeled traces.
func pseudoTruthTrace(tr *sensor.Trace, label string, truth []sensor.Event) *sensor.Trace {
	events := make([]sensor.Event, len(truth))
	for i, e := range truth {
		events[i] = sensor.Event{Label: label, Start: e.Start, End: e.End}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Start < events[j].Start })
	return &sensor.Trace{
		Name:     tr.Name,
		RateHz:   tr.RateHz,
		Channels: tr.Channels,
		Events:   events,
		Meta:     tr.Meta,
	}
}

// ------------------------------------------------------------- §5.1/§5.2

// SavingsResult carries the headline savings numbers of §5.1-5.2.
type SavingsResult struct {
	Table *Table
	// AccelSavings[app][group] = Sidewinder's fraction of available
	// savings ((AA - Sw) / (AA - Oracle), paper footnote 2).
	AccelSavings map[string]map[int]float64
	// AudioSavings[app], same definition on the audio traces.
	AudioSavings map[string]float64
	// OracleMinMW/OracleMaxMW bound the oracle across accel scenarios.
	OracleMinMW, OracleMaxMW float64
}

// Savings regenerates the §5.1 savings-potential numbers and the §5.2
// fraction-of-optimal analysis.
func Savings(o Options, w *Workload) (*SavingsResult, error) {
	o = o.withDefaults()
	out := &SavingsResult{
		AccelSavings: make(map[string]map[int]float64),
		AudioSavings: make(map[string]float64),
		OracleMinMW:  1e18,
	}
	table := &Table{
		Title:  "§5.1-5.2: Sidewinder's share of the available power savings",
		Header: []string{"App", "Scenario", "AA (mW)", "Oracle (mW)", "Sw (mW)", "Savings share"},
		Note:   "Paper: 92.7-95.7% for accelerometer apps, 85-98% for audio apps.",
	}
	const aa = 323.0

	accelApps := apps.AccelApps()
	audioApps := apps.AudioApps()
	var b runBatch
	type savingsCells struct{ oracle, sw cellRange }
	accelCells := make([][3]savingsCells, len(accelApps))
	for ai, app := range accelApps {
		for group := 1; group <= 3; group++ {
			runs := w.RobotGroup(group)
			accelCells[ai][group-1] = savingsCells{
				oracle: b.add(sim.Oracle{}, runs, app),
				sw:     b.add(sim.Sidewinder{}, runs, app),
			}
		}
	}
	audioCells := make([]savingsCells, len(audioApps))
	for ai, app := range audioApps {
		audioCells[ai] = savingsCells{
			oracle: b.add(sim.Oracle{}, w.Audio, app),
			sw:     b.add(sim.Sidewinder{}, w.Audio, app),
		}
	}
	b.run(w.Workers, w.Telemetry, w.Precision)

	for ai, app := range accelApps {
		out.AccelSavings[app.Name] = make(map[int]float64)
		for group := 1; group <= 3; group++ {
			oracleRes, err := accelCells[ai][group-1].oracle.results()
			if err != nil {
				return nil, err
			}
			swRes, err := accelCells[ai][group-1].sw.results()
			if err != nil {
				return nil, err
			}
			op, sp := meanPower(oracleRes), meanPower(swRes)
			share := (aa - sp) / (aa - op)
			out.AccelSavings[app.Name][group] = share
			if op < out.OracleMinMW {
				out.OracleMinMW = op
			}
			if op > out.OracleMaxMW {
				out.OracleMaxMW = op
			}
			table.Rows = append(table.Rows, []string{
				app.Name, fmt.Sprintf("group %d", group),
				fmt.Sprintf("%.0f", aa), fmt.Sprintf("%.1f", op), fmt.Sprintf("%.1f", sp),
				fmt.Sprintf("%.1f%%", share*100),
			})
		}
	}
	for ai, app := range audioApps {
		oracleRes, err := audioCells[ai].oracle.results()
		if err != nil {
			return nil, err
		}
		swRes, err := audioCells[ai].sw.results()
		if err != nil {
			return nil, err
		}
		op, sp := meanPower(oracleRes), meanPower(swRes)
		share := (aa - sp) / (aa - op)
		out.AudioSavings[app.Name] = share
		table.Rows = append(table.Rows, []string{
			app.Name, "audio (3 envs)",
			fmt.Sprintf("%.0f", aa), fmt.Sprintf("%.1f", op), fmt.Sprintf("%.1f", sp),
			fmt.Sprintf("%.1f%%", share*100),
		})
	}
	out.Table = table
	return out, nil
}

// ------------------------------------------------------------ battery life

// BatteryLifeResult translates average power into the battery life the
// paper's introduction motivates ("resulting in poor battery life and
// ultimately, a slow emergence of continuous sensing applications").
type BatteryLifeResult struct {
	Table *Table
	// Hours[app][config] on the Nexus 4 battery.
	Hours map[string]map[string]float64
}

// BatteryLife estimates Nexus 4 battery life per application for Always
// Awake, Sidewinder and the Oracle on daily-usage-like workloads (group-1
// robot runs: 90% idle; the audio traces for audio apps).
func BatteryLife(w *Workload) (*BatteryLifeResult, error) {
	out := &BatteryLifeResult{Hours: make(map[string]map[string]float64)}
	table := &Table{
		Title:  "Battery life on the Nexus 4 (2100 mAh), daily-usage-like workloads",
		Header: []string{"App", "Always Awake", "Sidewinder", "Oracle"},
		Note:   "Group-1 robot runs (90% idle) for accelerometer apps; the three audio traces for audio apps.",
	}
	configs := []struct {
		label string
		s     sim.Strategy
	}{
		{"Always Awake", sim.AlwaysAwake{}},
		{"Sidewinder", sim.Sidewinder{}},
		{"Oracle", sim.Oracle{}},
	}
	allApps := apps.All()
	var b runBatch
	cells := make([][]cellRange, len(allApps))
	for ai, app := range allApps {
		traces := w.Audio
		if app.Channels[0] != core.Mic {
			traces = w.RobotGroup(1)
		}
		cells[ai] = make([]cellRange, len(configs))
		for ci, cfg := range configs {
			cells[ai][ci] = b.add(cfg.s, traces, app)
		}
	}
	b.run(w.Workers, w.Telemetry, w.Precision)
	for ai, app := range allApps {
		out.Hours[app.Name] = make(map[string]float64)
		row := []string{app.Name}
		for ci, cfg := range configs {
			results, err := cells[ai][ci].results()
			if err != nil {
				return nil, err
			}
			hours := power.BatteryLifeHours(meanPower(results), power.Nexus4BatteryMWh)
			out.Hours[app.Name][cfg.label] = hours
			row = append(row, fmt.Sprintf("%.1f h (%.1f d)", hours, hours/24))
		}
		table.Rows = append(table.Rows, row)
	}
	out.Table = table
	return out, nil
}
