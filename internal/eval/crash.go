package eval

import (
	"fmt"

	"sidewinder/internal/apps"
	"sidewinder/internal/parallel"
	"sidewinder/internal/resilience"
	"sidewinder/internal/sim"
)

// CrashResilienceResult reports the hub-failure sweep: how many wake-ups
// each configuration catches, transiently misses, or structurally loses
// while the hub crashes, and what supervision costs in energy.
type CrashResilienceResult struct {
	Table *Table
	// Per row label: wake-ups caught (hub window + fallback) as a fraction
	// of the oracle, wake-ups structurally lost, mean detection latency,
	// and average system power.
	Recall       map[string]float64
	LostWakes    map[string]int
	DetectionSec map[string]float64
	AvgMW        map[string]float64
}

// crashMTBFSecs are the swept mean times between hub failures, in
// seconds of trace time. The no-crash baseline is emitted separately.
var crashMTBFSecs = []float64{30, 120}

// crashConfig is one supervision configuration of the sweep.
type crashConfig struct {
	name       string
	supervised bool
	missBudget int
	fallback   sim.FallbackMode
}

// crashConfigs sweeps the detection budget and the fallback mode against
// the unsupervised control. A tight budget detects outages fast but pings
// more; a loose one is quieter but leaves a longer blind window.
var crashConfigs = []crashConfig{
	{name: "unsupervised", supervised: false},
	{name: "supervised budget=2 fallback=always-awake", supervised: true,
		missBudget: 2, fallback: sim.FallbackAlwaysAwake},
	{name: "supervised budget=2 fallback=duty-cycle", supervised: true,
		missBudget: 2, fallback: sim.FallbackDutyCycle},
	{name: "supervised budget=6 fallback=duty-cycle", supervised: true,
		missBudget: 6, fallback: sim.FallbackDutyCycle},
}

// crashSupervisorFor builds the watchdog config for one detection budget:
// pings every 8 ticks, a pong timeout of 8 ticks, and the given number of
// consecutive misses before the hub is declared down.
func crashSupervisorFor(missBudget int) *resilience.SupervisorConfig {
	return &resilience.SupervisorConfig{
		PingIntervalTicks: 8, TimeoutTicks: 8, MissBudget: missBudget,
		ProbeBackoffTicks: 16, MaxProbeBackoffTicks: 128,
	}
}

// CrashResilience sweeps the hub's crash rate against the supervision
// configurations and measures wake-up coverage and energy. The steps
// condition replays over one group-2 robot run; the oracle's wakes are
// partitioned into caught (live hub or fallback sensing), transiently
// missed (outage not yet detected), and structurally lost (the hub came
// back empty and nothing noticed). Supervised rows are required to lose
// nothing structurally; the unsupervised control shows what that is
// worth. Cells fan out across the worker pool and results are read back
// in sweep order, so the table is identical at any worker count.
func CrashResilience(w *Workload) (*CrashResilienceResult, error) {
	tr := w.RobotGroup(2)[0]
	app := apps.Steps()
	rate := tr.RateHz

	type cell struct {
		mtbfSec float64 // 0 = immortal-hub baseline
		cfg     crashConfig
	}
	cells := []cell{{0, crashConfigs[2]}} // baseline: supervised, no crashes
	for _, mtbf := range crashMTBFSecs {
		for _, cfg := range crashConfigs {
			cells = append(cells, cell{mtbf, cfg})
		}
	}

	outcomes, err := parallel.Map(w.Workers, len(cells), func(i int) (*sim.CrashResult, error) {
		c := cells[i]
		rc := sim.CrashRunConfig{
			Fallback:  c.cfg.fallback,
			Telemetry: w.Telemetry,
			TraceLabel: fmt.Sprintf("crash[mtbf=%.0fs,%s]/%s/",
				c.mtbfSec, c.cfg.name, tr.Name),
		}
		if c.mtbfSec > 0 {
			rc.Crash = resilience.CrashProfile{
				Seed:          0xC5A5 + int64(i),
				MTBFTicks:     c.mtbfSec * rate,
				MeanDownTicks: 5 * rate,  // 5 s mean outage
				MaxDownTicks:  int(20 * rate), // 20 s cap
			}
		}
		if c.cfg.supervised {
			rc.Supervisor = crashSupervisorFor(c.cfg.missBudget)
		}
		return sim.CrashRun(tr, app, rc)
	})
	if err != nil {
		return nil, err
	}

	out := &CrashResilienceResult{
		Recall:       make(map[string]float64),
		LostWakes:    make(map[string]int),
		DetectionSec: make(map[string]float64),
		AvgMW:        make(map[string]float64),
	}
	table := &Table{
		Title: "Crash resilience: hub failure rate vs supervision (detection budget × fallback)",
		Header: []string{"Hub MTBF", "Configuration", "Crashes", "Detect (s)",
			"Repush frames/B", "Caught", "Missed", "Lost", "Power (mW)"},
		Note: "Steps condition over one robot run; 5 s mean outages. Caught = live hub or phone " +
			"fallback window; Missed = outage not yet detected (bounded by the budget); Lost = hub " +
			"returned empty and nothing noticed — must be 0 under supervision. Power includes " +
			"fallback sensing and re-provisioning traffic.",
	}

	baseMW := outcomes[0].TotalAvgMW
	for i, c := range cells {
		r := outcomes[i]
		label := c.cfg.name
		if c.mtbfSec == 0 {
			label = "no crashes (baseline)"
		}
		if c.cfg.supervised && r.StructurallyLostWakes != 0 {
			return nil, fmt.Errorf("eval: supervised cell %q structurally lost %d wakes",
				label, r.StructurallyLostWakes)
		}
		caught := r.HubWindowWakes + r.FallbackWakes
		recall := 1.0
		if r.OracleWakes > 0 {
			recall = float64(caught) / float64(r.OracleWakes)
		}
		key := fmt.Sprintf("mtbf=%.0fs/%s", c.mtbfSec, label)
		out.Recall[key] = recall
		out.LostWakes[key] = r.StructurallyLostWakes
		out.DetectionSec[key] = r.DetectionLatencySec
		out.AvgMW[key] = r.TotalAvgMW

		mtbfCol := "—"
		if c.mtbfSec > 0 {
			mtbfCol = fmt.Sprintf("%.0f s", c.mtbfSec)
		}
		table.Rows = append(table.Rows, []string{
			mtbfCol,
			label,
			fmt.Sprintf("%d", r.Crash.Crashes),
			fmt.Sprintf("%.2f", r.DetectionLatencySec),
			fmt.Sprintf("%d/%d", r.Reprovision.Frames, r.Reprovision.Bytes),
			fmt.Sprintf("%d/%d", caught, r.OracleWakes),
			fmt.Sprintf("%d", r.DetectionWindowWakes),
			fmt.Sprintf("%d", r.StructurallyLostWakes),
			fmt.Sprintf("%.1f (%+.1f)", r.TotalAvgMW, r.TotalAvgMW-baseMW),
		})
	}
	out.Table = table
	return out, nil
}
