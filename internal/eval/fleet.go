package eval

import (
	"fmt"
	"sort"

	"sidewinder/internal/sensor"
	"sidewinder/internal/sim"
)

// FleetCapacityResult reports the multi-tenant capacity sweep: a
// population of phones per app-mix size, each placed by the admission
// controller, with admission/degradation rates and the population's
// power distribution.
type FleetCapacityResult struct {
	Table *Table
	// Runs holds the raw population per apps-per-device sweep point.
	Runs map[int]*sim.FleetResult
}

// fleetAppMixes are the swept per-phone app counts M. One app per phone
// always fits; by six the audio phones that drew all three distinct
// audio conditions overflow the LM4F120's RAM and degrade.
var fleetAppMixes = []int{1, 2, 4, 6}

// fleetPopulation is the number of phones N per sweep point.
const fleetPopulation = 16

// FleetCapacity sweeps the app-mix size over a seeded phone population.
// Each phone draws a modality, M apps (with repetition) and a trace from
// the workload catalog, places the mix through the hub capacity
// scheduler, and replays the admitted set on a merged interpreter while
// degraded conditions are billed as phone-side duty-cycled fallback.
// Cells fan out over the worker pool; populations and tables are
// byte-identical at any worker count.
func FleetCapacity(o Options, w *Workload) (*FleetCapacityResult, error) {
	o = o.withDefaults()
	accel := make([]*sensor.Trace, 0, len(w.RobotRuns)+len(w.Human))
	accel = append(accel, w.RobotRuns...)
	accel = append(accel, w.Human...)

	out := &FleetCapacityResult{Runs: make(map[int]*sim.FleetResult)}
	table := &Table{
		Title: "Fleet capacity: admission and degradation vs per-phone app count",
		Header: []string{"Apps/phone", "Phones", "Conditions", "Admitted", "Degraded",
			"Hub split", "Shared nodes", "Power mW (mean/p50/p90)"},
		Note: fmt.Sprintf("%d phones per row; each draws a modality, its app mix (with repetition) and a trace "+
			"from the catalog, then the capacity scheduler places the mix on the cheapest admitting device. "+
			"Degraded conditions run as duty-cycled phone fallback; shared nodes count pipeline stages "+
			"deduplicated by cross-app sharing.", fleetPopulation),
	}

	for mi, m := range fleetAppMixes {
		res, err := sim.FleetRun(sim.FleetRunConfig{
			Devices:       fleetPopulation,
			AppsPerDevice: m,
			Seed:          o.Seed + int64(mi)*0x5EED,
			Workers:       w.Workers,
			Accel:         accel,
			Audio:         w.Audio,
			Telemetry:     w.Telemetry,
			Precision:     w.Precision,
			DisableCSE:    w.DisableCSE,
		})
		if err != nil {
			return nil, err
		}
		out.Runs[m] = res

		split := make(map[string]int)
		shared := 0
		for _, c := range res.Cells {
			split[c.Device]++
			shared += c.SharedNodes
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", m),
			fmt.Sprintf("%d", len(res.Cells)),
			fmt.Sprintf("%d", res.Conditions),
			fmt.Sprintf("%d (%.0f%%)", res.Admitted, res.AdmissionRate()*100),
			fmt.Sprintf("%d (%.0f%%)", res.Degraded, res.DegradationRate()*100),
			renderSplit(split),
			fmt.Sprintf("%d", shared),
			fmt.Sprintf("%.1f/%.1f/%.1f", res.MeanMW, res.P50MW, res.P90MW),
		})
	}
	out.Table = table
	return out, nil
}

// renderSplit formats a device histogram ("12×MSP430 4×LM4F120") in
// sorted device-name order.
func renderSplit(split map[string]int) string {
	names := make([]string, 0, len(split))
	for name := range split {
		names = append(names, name)
	}
	sort.Strings(names)
	s := ""
	for i, name := range names {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d×%s", split[name], name)
	}
	return s
}
