// Package eval implements the experiment harness that regenerates every
// table and figure of the paper's evaluation (§4-5): trace generation,
// predefined-activity threshold calibration (§5.3), the configuration
// matrix of §4.2, and text rendering of the resulting tables.
package eval

import (
	"fmt"
	"strings"
	"time"

	"sidewinder/internal/apps"
	"sidewinder/internal/interp"
	"sidewinder/internal/parallel"
	"sidewinder/internal/sensor"
	"sidewinder/internal/sim"
	"sidewinder/internal/telemetry"
	"sidewinder/internal/tracegen"
)

// Options parameterizes a full evaluation run. Zero values take the
// defaults matching the paper's setup.
type Options struct {
	// Seed drives every generator; a given seed reproduces the entire
	// evaluation bit for bit.
	Seed int64
	// Workers bounds the worker pool that fans out independent
	// (strategy, app, trace) cells and per-trace generation; <= 0 means
	// one worker per CPU. Results are collected in submission order, so
	// every worker count renders byte-identical tables.
	Workers int
	// RobotRunDuration is the length of each of the 18 robot runs
	// (the paper's live runs took ~1 h; simulation defaults to 30 min,
	// which the paper's idle-fraction groups make equivalent in shape).
	RobotRunDuration time.Duration
	// AudioDuration is the length of each audio trace (paper: 30 min).
	AudioDuration time.Duration
	// HumanDuration is the length of each human trace (paper: ~2 h per
	// subject).
	HumanDuration time.Duration
	// SleepIntervals are the duty-cycling/batching sleep intervals in
	// seconds (paper: 2, 5, 10, 20, 30).
	SleepIntervals []float64
	// Precision selects the hub interpreter's numeric substrate for every
	// Sidewinder cell (default float64; q15 models the FPU-less MCU on
	// saturating fixed-point arithmetic).
	Precision interp.Precision
	// DisableCSE is the cross-app sharing ablation for the fleet sweep:
	// the scheduler bills every condition its standalone demand and the
	// merged interpreter executes duplicated subgraphs separately. The
	// default (false) compiles resident apps into one shared DAG.
	DisableCSE bool
	// Telemetry, when any sink is set, is shared by every simulation cell
	// of the run: counters aggregate across cells (the registry interns by
	// name), the ledger accumulates the whole run's energy, and trace
	// streams are disambiguated per cell. The zero Set disables telemetry
	// and leaves the harness byte-identical to an uninstrumented run.
	Telemetry telemetry.Set
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.RobotRunDuration == 0 {
		o.RobotRunDuration = 30 * time.Minute
	}
	if o.AudioDuration == 0 {
		o.AudioDuration = 30 * time.Minute
	}
	if o.HumanDuration == 0 {
		o.HumanDuration = 2 * time.Hour
	}
	if len(o.SleepIntervals) == 0 {
		o.SleepIntervals = []float64{2, 5, 10, 20, 30}
	}
	return o
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	return b.String()
}

// Workload bundles the generated traces of one evaluation run.
type Workload struct {
	RobotRuns []*sensor.Trace // 18 runs, meta "group" in {1,2,3}
	Audio     []*sensor.Trace // office, coffee shop, outdoors
	Human     []*sensor.Trace // commute, retail, office profiles

	// Workers bounds the parallelism of experiments run over this
	// workload (<= 0: one worker per CPU). Every simulation cell owns its
	// seeded RNG and machine state, and results are consumed in
	// submission order, so changing Workers never changes any table.
	Workers int

	// Telemetry is injected into every Sidewinder cell run over this
	// workload (see Options.Telemetry).
	Telemetry telemetry.Set

	// Precision is injected into every Sidewinder cell run over this
	// workload (see Options.Precision).
	Precision interp.Precision

	// DisableCSE is injected into every fleet cell run over this workload
	// (see Options.DisableCSE).
	DisableCSE bool
}

// GenerateWorkload produces all traces for the options. Each trace derives
// its seed from Options.Seed alone, so the traces are generated through
// the worker pool and are identical for every worker count.
func GenerateWorkload(o Options) (*Workload, error) {
	o = o.withDefaults()
	robotConfigs, robotGroups := tracegen.PaperRobotRunSpecs(o.Seed, o.RobotRunDuration)
	audioEnvs := tracegen.AudioEnvironments()
	humanProfiles := tracegen.HumanProfiles()

	gen := make([]func() (*sensor.Trace, error), 0,
		len(robotConfigs)+len(audioEnvs)+len(humanProfiles))
	for i := range robotConfigs {
		cfg, group := robotConfigs[i], robotGroups[i]
		gen = append(gen, func() (*sensor.Trace, error) {
			tr, err := tracegen.Robot(cfg)
			if err != nil {
				return nil, err
			}
			tr.Meta["group"] = fmt.Sprintf("%d", group)
			return tr, nil
		})
	}
	for i, env := range audioEnvs {
		cfg := tracegen.NewAudioConfig(o.Seed+int64(i)*101, o.AudioDuration, env)
		gen = append(gen, func() (*sensor.Trace, error) { return tracegen.Audio(cfg) })
	}
	for i, prof := range humanProfiles {
		cfg := tracegen.HumanConfig{
			Seed:     o.Seed + int64(i)*211,
			Duration: o.HumanDuration,
			Profile:  prof,
		}
		gen = append(gen, func() (*sensor.Trace, error) { return tracegen.Human(cfg) })
	}

	traces, err := parallel.Map(o.Workers, len(gen), func(i int) (*sensor.Trace, error) {
		return gen[i]()
	})
	if err != nil {
		return nil, err
	}
	return &Workload{
		RobotRuns:  traces[:len(robotConfigs)],
		Audio:      traces[len(robotConfigs) : len(robotConfigs)+len(audioEnvs)],
		Human:      traces[len(robotConfigs)+len(audioEnvs):],
		Workers:    o.Workers,
		Telemetry:  o.Telemetry,
		Precision:  o.Precision,
		DisableCSE: o.DisableCSE,
	}, nil
}

// RobotGroup returns the runs belonging to one paper group (1, 2 or 3).
func (w *Workload) RobotGroup(group int) []*sensor.Trace {
	var out []*sensor.Trace
	for _, tr := range w.RobotRuns {
		if tr.Meta["group"] == fmt.Sprintf("%d", group) {
			out = append(out, tr)
		}
	}
	return out
}

// meanPower averages total power over a set of results.
func meanPower(results []*sim.Result) float64 {
	if len(results) == 0 {
		return 0
	}
	var sum float64
	for _, r := range results {
		sum += r.Power.TotalAvgMW
	}
	return sum / float64(len(results))
}

// meanRecall averages recall over a set of results.
func meanRecall(results []*sim.Result) float64 {
	if len(results) == 0 {
		return 0
	}
	var sum float64
	for _, r := range results {
		sum += r.Recall
	}
	return sum / float64(len(results))
}

// meanPrecision averages precision over a set of results.
func meanPrecision(results []*sim.Result) float64 {
	if len(results) == 0 {
		return 0
	}
	var sum float64
	for _, r := range results {
		sum += r.Precision
	}
	return sum / float64(len(results))
}

// runAll executes a strategy over a set of traces for one app, fanning the
// per-trace cells through the worker pool.
func runAll(workers int, s sim.Strategy, traces []*sensor.Trace, app *apps.App) ([]*sim.Result, error) {
	var b runBatch
	h := b.add(s, traces, app)
	b.run(workers, telemetry.Set{}, interp.Float64)
	return h.results()
}
