package eval

import (
	"fmt"

	"sidewinder/internal/apps"
	"sidewinder/internal/link"
	"sidewinder/internal/parallel"
	"sidewinder/internal/sim"
)

// LinkReliabilityResult reports the lossy-link sweep: what an unprotected
// serial link loses at each error rate, and what the stop-and-wait ARQ
// layer pays to lose nothing.
type LinkReliabilityResult struct {
	Table *Table
	// Per error rate, delivery recall (delivered/hub wakes) without and
	// with the ARQ layer, ARQ retransmissions, and ARQ link power.
	RawRecall   map[float64]float64
	ARQRecall   map[float64]float64
	Retransmits map[float64]int
	LinkMW      map[float64]float64
}

// linkErrorRates are the swept per-frame fault intensities. 0 is the
// control: with faults disabled both modes reduce to the legacy perfect
// wire.
var linkErrorRates = []float64{0, 0.01, 0.02, 0.05, 0.10, 0.20}

// linkFaultFor derives a full fault mix from one headline rate: drops at
// the rate itself, plus proportionally rarer truncations, bursts and
// delays, and a per-byte flip rate tuned so ~150-byte data frames are
// corrupted at about half the headline rate.
func linkFaultFor(rate float64, seed int64) link.FaultConfig {
	return link.FaultConfig{
		Seed:         seed,
		DropProb:     rate,
		BitFlipProb:  rate / 300,
		TruncateProb: rate / 4,
		BurstProb:    rate / 8,
		BurstLen:     6,
		DelayProb:    rate / 4,
		DelayTicks:   2,
	}
}

// LinkReliability sweeps the serial link's frame-error rate and measures
// delivered wake-up recall and energy overhead with and without the
// stop-and-wait ARQ layer (fault model of §3.4's audio-jack UART). The
// steps condition replays over one group-2 robot run; cells fan out
// across the worker pool and results are read back in sweep order, so the
// table is identical at any worker count.
func LinkReliability(w *Workload) (*LinkReliabilityResult, error) {
	tr := w.RobotGroup(2)[0]
	app := apps.Steps()

	type cell struct {
		rate float64
		arq  bool
	}
	cells := make([]cell, 0, 2*len(linkErrorRates))
	for _, r := range linkErrorRates {
		cells = append(cells, cell{r, false}, cell{r, true})
	}
	outcomes, err := parallel.Map(w.Workers, len(cells), func(i int) (*sim.LossyLinkResult, error) {
		c := cells[i]
		cfg := sim.LossyLinkConfig{
			Fault:     linkFaultFor(c.rate, 0x51DE+int64(i)),
			Telemetry: w.Telemetry,
			TraceLabel: fmt.Sprintf("link[rate=%.0f%%,arq=%t]/%s/",
				c.rate*100, c.arq, tr.Name),
		}
		if c.arq {
			cfg.ARQ = &link.ARQConfig{}
		}
		return sim.LossyLinkRun(tr, app, cfg)
	})
	if err != nil {
		return nil, err
	}

	out := &LinkReliabilityResult{
		RawRecall:   make(map[float64]float64),
		ARQRecall:   make(map[float64]float64),
		Retransmits: make(map[float64]int),
		LinkMW:      make(map[float64]float64),
	}
	table := &Table{
		Title: "Link reliability (paper §3.4): lossy audio-jack UART vs stop-and-wait ARQ",
		Header: []string{"Frame error rate", "Raw delivery", "ARQ delivery",
			"ARQ retransmits", "ARQ dup drops", "ARQ overhead (B)", "ARQ link power (mW)"},
		Note: "Steps condition over one robot run. Raw = unprotected frames (lost wake-ups stay lost); " +
			"ARQ = bounded stop-and-wait retransmission. Link power prices wire occupancy at " +
			fmt.Sprintf("%.0f mW", link.UARTActiveMW) + " busy.",
	}
	for ri, r := range linkErrorRates {
		raw, arq := outcomes[2*ri], outcomes[2*ri+1]
		if arq.DuplicateWakes > 0 {
			return nil, fmt.Errorf("eval: ARQ delivered %d duplicate wakes at rate %g", arq.DuplicateWakes, r)
		}
		out.RawRecall[r] = raw.DeliveredRecall
		out.ARQRecall[r] = arq.DeliveredRecall
		retr := arq.Stats.PhoneARQ.Retransmits + arq.Stats.HubARQ.Retransmits
		out.Retransmits[r] = retr
		out.LinkMW[r] = arq.LinkAvgMW
		overhead := arq.Stats.PhoneARQ.OverheadBytes + arq.Stats.HubARQ.OverheadBytes
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%.0f%%", r*100),
			fmt.Sprintf("%.0f%%", raw.DeliveredRecall*100),
			fmt.Sprintf("%.0f%%", arq.DeliveredRecall*100),
			fmt.Sprintf("%d", retr),
			fmt.Sprintf("%d", arq.Stats.PhoneARQ.DupsDropped+arq.Stats.HubARQ.DupsDropped),
			fmt.Sprintf("%d", overhead),
			fmt.Sprintf("%.3f", arq.LinkAvgMW),
		})
	}
	out.Table = table
	return out, nil
}
