package eval

import (
	"fmt"

	"sidewinder/internal/apps"
	"sidewinder/internal/interp"
	"sidewinder/internal/parallel"
	"sidewinder/internal/sensor"
	"sidewinder/internal/sim"
	"sidewinder/internal/telemetry"
)

// The evaluation matrix is embarrassingly parallel: every (strategy, app,
// trace) cell builds its own machine and owns its seeded state, so cells
// are share-nothing. A runBatch lets an experiment enqueue all of its
// cells first, execute them through one bounded worker pool, and then read
// the results back in enqueue order — the aggregation loop that renders a
// table therefore sees exactly the sequence a serial run would have
// produced, making tables byte-identical across worker counts.

// cellJob is one (strategy, app, trace) simulation cell.
type cellJob struct {
	s   sim.Strategy
	tr  *sensor.Trace
	app *apps.App
}

// cellOutcome is a completed cell: its result or its error. Errors stay
// attached to their cell so callers with expected failures (e.g. the
// device sweep probing infeasible placements) can handle them per handle.
type cellOutcome struct {
	res *sim.Result
	err error
}

// runBatch accumulates cells and their outcomes.
type runBatch struct {
	jobs []cellJob
	out  []cellOutcome
}

// cellRange addresses a contiguous run of enqueued cells; its results are
// readable after runBatch.run.
type cellRange struct {
	b          *runBatch
	start, end int
}

// add enqueues the strategy over every trace for one app and returns the
// handle to read the results back after run.
func (b *runBatch) add(s sim.Strategy, traces []*sensor.Trace, app *apps.App) cellRange {
	start := len(b.jobs)
	for _, tr := range traces {
		b.jobs = append(b.jobs, cellJob{s: s, tr: tr, app: app})
	}
	return cellRange{b: b, start: start, end: len(b.jobs)}
}

// addOne enqueues one (strategy, app, trace) cell.
func (b *runBatch) addOne(s sim.Strategy, tr *sensor.Trace, app *apps.App) cellRange {
	return b.add(s, []*sensor.Trace{tr}, app)
}

// run executes every enqueued cell through the pool. Outcomes land in
// submission order regardless of the schedule. Telemetry (when enabled)
// and the interpreter precision are injected into every Sidewinder cell
// here — the one place all experiments funnel through — with a per-cell
// trace label so parallel cells land on distinct streams while sharing
// the registry and ledger.
func (b *runBatch) run(workers int, tele telemetry.Set, prec interp.Precision) {
	// Map's fn never errors: each cell's error is part of its outcome.
	b.out, _ = parallel.Map(workers, len(b.jobs), func(i int) (cellOutcome, error) {
		j := b.jobs[i]
		s := j.s
		if sw, ok := s.(sim.Sidewinder); ok {
			sw.Precision = prec
			if tele.Enabled() {
				sw.Telemetry = tele
				sw.TraceLabel = fmt.Sprintf("%s/%s/%s/", sw.Name(), j.app.Name, j.tr.Name)
			}
			s = sw
		}
		// Adaptive cells take telemetry but NOT the precision override:
		// precision is one of the axes the policy engine drives.
		if sw, ok := s.(sim.AdaptiveSidewinder); ok && tele.Enabled() {
			sw.Telemetry = tele
			sw.TraceLabel = fmt.Sprintf("%s/%s/%s/", sw.Name(), j.app.Name, j.tr.Name)
			s = sw
		}
		r, err := s.Run(j.tr, j.app)
		if err != nil {
			err = fmt.Errorf("eval: %s/%s on %s: %w", j.s.Name(), j.app.Name, j.tr.Name, err)
		}
		return cellOutcome{res: r, err: err}, nil
	})
}

// first returns the single result of a one-cell range, or its error.
func (h cellRange) first() (*sim.Result, error) {
	res, err := h.results()
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// results returns the range's results in submission order, or its first
// error.
func (h cellRange) results() ([]*sim.Result, error) {
	out := make([]*sim.Result, 0, h.end-h.start)
	for _, oc := range h.b.out[h.start:h.end] {
		if oc.err != nil {
			return nil, oc.err
		}
		out = append(out, oc.res)
	}
	return out, nil
}
