package eval

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"sidewinder/internal/core"
	"sidewinder/internal/sensor"
)

// renderFigure5 renders everything Figure5 reports — the tables plus the
// calibrated threshold and precision lines the CLI prints — so the
// comparison covers every externally visible number.
func renderFigure5(t *testing.T, w *Workload) string {
	t.Helper()
	res, err := Figure5(testOptions(), w)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, tb := range res.Tables {
		b.WriteString(tb.Render())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "threshold %.17g\n", res.PAThreshold)
	for _, k := range []string{"steps", "transitions", "headbutts"} {
		fmt.Fprintf(&b, "%s %.17g\n", k, res.Precision[k])
	}
	return b.String()
}

// TestFigure5DeterministicAcrossWorkers is the regression guard for the
// parallel harness: the fan-out must never leak scheduling order into
// results, so a serial run and an oversubscribed 8-worker run must render
// byte-identical output.
func TestFigure5DeterministicAcrossWorkers(t *testing.T) {
	base := workload(t)

	serial := *base
	serial.Workers = 1
	wide := *base
	wide.Workers = 8

	got1 := renderFigure5(t, &serial)
	got8 := renderFigure5(t, &wide)
	if got1 != got8 {
		t.Errorf("Figure5 output differs between 1 and 8 workers:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", got1, got8)
	}
}

// traceDigest summarizes a workload's traces well enough to detect any
// reordering or divergence: names in order, lengths, and full sample sums.
func traceDigest(w *Workload) string {
	var b strings.Builder
	dump := func(label string, tr *sensor.Trace) {
		fmt.Fprintf(&b, "%s %s %s %d ev=%d", label, tr.Name, tr.Meta["group"], tr.Len(), len(tr.Events))
		keys := make([]string, 0, len(tr.Channels))
		for ch := range tr.Channels {
			keys = append(keys, string(ch))
		}
		sort.Strings(keys)
		for _, ch := range keys {
			var sum float64
			for _, v := range tr.Channels[core.SensorChannel(ch)] {
				sum += v
			}
			fmt.Fprintf(&b, " %s=%.17g", ch, sum)
		}
		b.WriteByte('\n')
	}
	for _, tr := range w.RobotRuns {
		dump("robot", tr)
	}
	for _, tr := range w.Audio {
		dump("audio", tr)
	}
	for _, tr := range w.Human {
		dump("human", tr)
	}
	return b.String()
}

// TestGenerateWorkloadDeterministicAcrossWorkers checks that parallel trace
// generation assembles the same workload, in the same order, as a serial
// run.
func TestGenerateWorkloadDeterministicAcrossWorkers(t *testing.T) {
	o := Options{
		Seed:             7,
		RobotRunDuration: time.Minute,
		AudioDuration:    30 * time.Second,
		HumanDuration:    time.Minute,
	}
	o.Workers = 1
	w1, err := GenerateWorkload(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 8
	w8, err := GenerateWorkload(o)
	if err != nil {
		t.Fatal(err)
	}
	d1, d8 := traceDigest(w1), traceDigest(w8)
	if d1 != d8 {
		t.Errorf("workloads differ between 1 and 8 workers:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", d1, d8)
	}
}
