package eval

import (
	"fmt"

	"sidewinder/internal/apps"
	"sidewinder/internal/core"
	"sidewinder/internal/hub"
	"sidewinder/internal/manager"
	"sidewinder/internal/parallel"
	"sidewinder/internal/sensor"
	"sidewinder/internal/sim"
	"sidewinder/internal/tracegen"
)

// This file implements the beyond-the-headline analyses sketched in the
// paper's discussion sections: device sizing (§3.8), wake-up-condition
// complexity (§3.8 "Identifying processing algorithms"), batching
// timeliness (§5.4) and pipeline sharing across concurrent applications
// (§7 future work).

// ------------------------------------------------------------ device sweep

// DeviceSweepResult reports, per application, the power of running its
// wake-up condition on each microcontroller that can host it.
type DeviceSweepResult struct {
	Table *Table
	// PowerMW[app][device]; absent devices were infeasible.
	PowerMW map[string]map[string]float64
}

// DeviceSweep runs every application's Sidewinder configuration once per
// feasible device, quantifying the sizing trade-off of paper §3.8: a
// larger processor runs everything but idles expensively.
func DeviceSweep(w *Workload) (*DeviceSweepResult, error) {
	out := &DeviceSweepResult{PowerMW: make(map[string]map[string]float64)}
	table := &Table{
		Title:  "Ablation (paper §3.8): hub device sizing",
		Header: []string{"App", "MSP430 (mW)", "LM4F120 (mW)", "Penalty for oversizing"},
		Note:   "Penalty: extra average power from running a condition on the larger part when the small one suffices.",
	}
	allApps := apps.All()
	devices := hub.Devices()
	var b runBatch
	devCells := make([][]cellRange, len(allApps))
	for ai, app := range allApps {
		traces := w.Audio
		if app.Channels[0] != core.Mic {
			traces = w.RobotGroup(2)
		}
		devCells[ai] = make([]cellRange, len(devices))
		for di, dev := range devices {
			devCells[ai][di] = b.add(sim.Sidewinder{Devices: []hub.Device{dev}}, traces, app)
		}
	}
	b.run(w.Workers, w.Telemetry, w.Precision)
	for ai, app := range allApps {
		out.PowerMW[app.Name] = make(map[string]float64)
		row := []string{app.Name}
		var cells [2]string
		for di, dev := range devices {
			// An error here is the expected outcome for a condition that
			// does not fit the device (e.g. the FFT chain on the MSP430).
			results, err := devCells[ai][di].results()
			if err != nil {
				cells[di] = "infeasible"
				continue
			}
			p := meanPower(results)
			out.PowerMW[app.Name][dev.Name] = p
			cells[di] = fmt.Sprintf("%.1f", p)
		}
		penalty := "-"
		if small, ok := out.PowerMW[app.Name]["MSP430"]; ok {
			if big, ok := out.PowerMW[app.Name]["LM4F120"]; ok {
				penalty = fmt.Sprintf("+%.1f mW (%.0f%%)", big-small, (big-small)/small*100)
			}
		}
		row = append(row, cells[0], cells[1], penalty)
		table.Rows = append(table.Rows, row)
	}
	out.Table = table
	return out, nil
}

// ------------------------------------------------- condition complexity

// ConditionVariant is one wake-up condition alternative for an app.
type ConditionVariant struct {
	Label string
	Wake  *core.Pipeline
}

// ConditionAblationResult compares wake-up-condition designs for the step
// detector.
type ConditionAblationResult struct {
	Table *Table
	// PowerMW and Recall per variant label.
	PowerMW map[string]float64
	Recall  map[string]float64
	WakeUps map[string]float64
}

// StepsConditionVariants returns three designs for the steps wake-up
// condition at increasing complexity, mirroring the paper's trade-off
// between algorithm complexity and power (§3.8): more selective conditions
// cost more hub cycles but avoid unnecessary main-CPU wake-ups.
func StepsConditionVariants() []ConditionVariant {
	naive := core.NewPipeline("steps-naive")
	for _, ch := range []core.SensorChannel{core.AccelX, core.AccelY, core.AccelZ} {
		naive.AddBranch(core.NewBranch(ch).Add(core.MovingAverage(10)))
	}
	naive.Add(core.VectorMagnitude())
	naive.Add(core.MinThreshold(9.95)) // any deviation from rest

	noSmooth := core.NewPipeline("steps-nosmooth")
	noSmooth.AddBranch(core.NewBranch(core.AccelX).
		Add(core.Window(25, 12, "rectangular")).
		Add(core.Stat("stddev")).
		Add(core.MinThreshold(0.7)))

	return []ConditionVariant{
		{"significant-motion style", naive},
		{"windowed stddev, no pre-filter", noSmooth},
		{"full (smoothed windowed stddev)", apps.Steps().Wake},
	}
}

// ConditionAblation runs the step detector with each wake-up condition
// variant over the group-2 robot runs.
func ConditionAblation(w *Workload) (*ConditionAblationResult, error) {
	out := &ConditionAblationResult{
		PowerMW: make(map[string]float64),
		Recall:  make(map[string]float64),
		WakeUps: make(map[string]float64),
	}
	table := &Table{
		Title:  "Ablation (paper §3.8): steps wake-up condition complexity",
		Header: []string{"Condition", "Power (mW)", "Recall", "Wake-ups/run", "Hub util"},
		Note:   "Group-2 robot runs. Simpler conditions wake on everything; the full condition sleeps through non-walking motion.",
	}
	runs := w.RobotGroup(2)
	base := apps.Steps()
	variants := StepsConditionVariants()
	var b runBatch
	cells := make([]cellRange, len(variants))
	for vi, variant := range variants {
		app := *base
		app.Wake = variant.Wake
		cells[vi] = b.add(sim.Sidewinder{}, runs, &app)
	}
	b.run(w.Workers, w.Telemetry, w.Precision)
	for vi, variant := range variants {
		results, err := cells[vi].results()
		if err != nil {
			return nil, err
		}
		var wakes float64
		var util float64
		for _, r := range results {
			wakes += float64(r.Power.WakeUps)
			util = r.HubUtilization
		}
		wakes /= float64(len(results))
		p := meanPower(results)
		rec := meanRecall(results)
		out.PowerMW[variant.Label] = p
		out.Recall[variant.Label] = rec
		out.WakeUps[variant.Label] = wakes
		table.Rows = append(table.Rows, []string{
			variant.Label,
			fmt.Sprintf("%.1f", p),
			fmt.Sprintf("%.0f%%", rec*100),
			fmt.Sprintf("%.1f", wakes),
			fmt.Sprintf("%.3f%%", util*100),
		})
	}
	out.Table = table
	return out, nil
}

// ----------------------------------------------------- batching latency

// BatchingLatencyResult sweeps the batching interval and reports the
// power/timeliness trade-off of paper §5.4.
type BatchingLatencyResult struct {
	Table *Table
	// PowerMW and LatencySec per sleep interval.
	PowerMW    map[float64]float64
	LatencySec map[float64]float64
}

// BatchingLatency runs the transitions app (a timeliness-sensitive event)
// under batching with growing intervals on the group-2 robot runs.
func BatchingLatency(o Options, w *Workload) (*BatchingLatencyResult, error) {
	o = o.withDefaults()
	out := &BatchingLatencyResult{
		PowerMW:    make(map[float64]float64),
		LatencySec: make(map[float64]float64),
	}
	table := &Table{
		Title:  "Ablation (paper §5.4): batching saves power only by sacrificing timeliness",
		Header: []string{"Sleep interval", "Power (mW)", "Mean detection latency", "Recall"},
		Note:   "Transitions app on group-2 robot runs. A gesture app cannot tolerate multi-second delays (paper §5.4).",
	}
	runs := w.RobotGroup(2)
	app := apps.Transitions()
	var b runBatch
	cells := make([]cellRange, len(o.SleepIntervals))
	for si, sl := range o.SleepIntervals {
		cells[si] = b.add(sim.Batching{SleepSec: sl}, runs, app)
	}
	b.run(w.Workers, w.Telemetry, w.Precision)
	for si, sl := range o.SleepIntervals {
		results, err := cells[si].results()
		if err != nil {
			return nil, err
		}
		var latSum float64
		var latN int
		for _, r := range results {
			if lat, ok := r.MeanDetectionLatencySec(core.AccelRateHz); ok {
				latSum += lat
				latN++
			}
		}
		lat := 0.0
		if latN > 0 {
			lat = latSum / float64(latN)
		}
		p := meanPower(results)
		out.PowerMW[sl] = p
		out.LatencySec[sl] = lat
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%.0f s", sl),
			fmt.Sprintf("%.1f", p),
			fmt.Sprintf("%.1f s", lat),
			fmt.Sprintf("%.0f%%", meanRecall(results)*100),
		})
	}
	out.Table = table
	return out, nil
}

// ----------------------------------------------------- pipeline sharing

// SharingResult quantifies the hub-cycle savings available from merging
// the common prefixes of concurrent wake-up conditions (paper §7: "the
// sensor manager can attempt to improve performance by combining the
// pipelines that use common algorithms").
type SharingResult struct {
	Table *Table
	// SavedFrac is the fraction of combined hub float-ops/s that prefix
	// sharing eliminates for the all-six-apps condition set.
	SavedFrac float64
}

// PipelineSharing statically analyzes the six applications' plans: nodes
// whose (kind, params, inputs) match an already-counted node on the same
// sources are shared.
func PipelineSharing() (*SharingResult, error) {
	cat := core.DefaultCatalog()
	table := &Table{
		Title:  "Analysis (paper §7): hub work saved by merging common pipeline prefixes",
		Header: []string{"Condition set", "Combined Mops/s", "With sharing", "Saved"},
	}
	type nodeKey string
	var appsAll []*apps.App = apps.All()

	var totalCombined, totalShared float64
	addRow := func(label string, plans []*core.Plan) {
		seen := make(map[nodeKey]bool)
		var combined, shared float64
		for _, plan := range plans {
			// Map node IDs to canonical keys bottom-up so identical
			// prefixes in different plans collide.
			keys := make(map[int]nodeKey, len(plan.Nodes))
			for i := range plan.Nodes {
				n := &plan.Nodes[i]
				sig := core.Stage{Kind: n.Kind, Params: n.Params}.String() + "|"
				for _, in := range n.Inputs {
					if in.FromChannel() {
						sig += string(in.Channel) + ","
					} else {
						sig += string(keys[in.Node]) + ","
					}
				}
				key := nodeKey(sig)
				keys[n.ID] = key
				ops := (n.Cost.FloatOps + n.Cost.IntOps) * n.Rate
				combined += ops
				if !seen[key] {
					seen[key] = true
					shared += ops
				}
			}
		}
		totalCombined, totalShared = combined, shared
		saved := 0.0
		if combined > 0 {
			saved = 1 - shared/combined
		}
		table.Rows = append(table.Rows, []string{
			label,
			fmt.Sprintf("%.3f", combined/1e6),
			fmt.Sprintf("%.3f", shared/1e6),
			fmt.Sprintf("%.1f%%", saved*100),
		})
	}

	// The interesting set: music + phrase share their window stages.
	var audioPlans []*core.Plan
	for _, a := range []*apps.App{apps.MusicJournal(), apps.PhraseDetection()} {
		plan, err := a.Wake.Validate(cat)
		if err != nil {
			return nil, err
		}
		audioPlans = append(audioPlans, plan)
	}
	addRow("music + phrase", audioPlans)

	var allPlans []*core.Plan
	for _, a := range appsAll {
		plan, err := a.Wake.Validate(cat)
		if err != nil {
			return nil, err
		}
		allPlans = append(allPlans, plan)
	}
	addRow("all six applications", allPlans)

	saved := 0.0
	if totalCombined > 0 {
		saved = 1 - totalShared/totalCombined
	}
	return &SharingResult{Table: table, SavedFrac: saved}, nil
}

// ----------------------------------------------------- siren redesign

// SirenRedesignResult compares the paper's FFT-based siren wake-up
// condition against a Goertzel-bank redesign that fits the MSP430.
type SirenRedesignResult struct {
	Table *Table
	// PowerMW, Recall and Device per variant label.
	PowerMW map[string]float64
	Recall  map[string]float64
	Device  map[string]string
}

// GoertzelSirenCondition returns a siren wake-up condition built from the
// extended catalog's streaming algorithms: an IIR high-pass plus a bank of
// fixed-point Goertzel detectors scanning the siren band. Unlike the
// paper's FFT chain, it fits the MSP430's real-time budget, answering the
// §3.8 question of whether the platform's algorithm set should include
// cheaper alternatives: with the right catalog, the Table 2 asterisk (and
// its 49.4 mW hub) disappears.
func GoertzelSirenCondition() *core.Pipeline {
	p := core.NewPipeline("sirens-wake-goertzel")
	p.AddBranch(core.NewBranch(core.Mic).
		Add(core.IIRHighPass(750, core.AudioRateHz)).
		Add(core.GoertzelBank(850, 1800, core.AudioRateHz, 64, 16)).
		Add(core.MinThresholdSustained(0.8, 20))) // >=320 ms of sustained in-band tone
	return p
}

// SirenRedesign runs the siren application with both wake-up conditions
// over the audio traces.
func SirenRedesign(w *Workload) (*SirenRedesignResult, error) {
	out := &SirenRedesignResult{
		PowerMW: make(map[string]float64),
		Recall:  make(map[string]float64),
		Device:  make(map[string]string),
	}
	table := &Table{
		Title:  "Extension (paper §3.8): a Goertzel-bank siren condition removes the Table 2 asterisk",
		Header: []string{"Condition", "Device", "Power (mW)", "Recall"},
		Note:   "The FFT chain needs the LM4F120 (49.4 mW); the fixed-point Goertzel bank fits the MSP430 (3.6 mW).",
	}
	base := apps.Sirens()
	variants := []ConditionVariant{
		{"FFT tonality (paper)", base.Wake},
		{"Goertzel bank (extension)", GoertzelSirenCondition()},
	}
	var b runBatch
	cells := make([]cellRange, len(variants))
	for vi, v := range variants {
		app := *base
		app.Wake = v.Wake
		cells[vi] = b.add(sim.Sidewinder{}, w.Audio, &app)
	}
	b.run(w.Workers, w.Telemetry, w.Precision)
	for vi, v := range variants {
		results, err := cells[vi].results()
		if err != nil {
			return nil, err
		}
		out.PowerMW[v.Label] = meanPower(results)
		out.Recall[v.Label] = meanRecall(results)
		out.Device[v.Label] = results[0].Device
		table.Rows = append(table.Rows, []string{
			v.Label,
			results[0].Device,
			fmt.Sprintf("%.1f", out.PowerMW[v.Label]),
			fmt.Sprintf("%.0f%%", out.Recall[v.Label]*100),
		})
	}
	out.Table = table
	return out, nil
}

// ----------------------------------------------------- adaptive tuning

// AdaptiveTuningResult quantifies the §7 "smartness" loop: an app with a
// deliberately loose wake-up condition reports verdicts after every
// wake-up, and the hub's tuner converges the condition toward the false
// positives' level.
type AdaptiveTuningResult struct {
	Table *Table
	// WakesFirstHalf/WakesSecondHalf per mode ("static", "tuned").
	WakesFirstHalf  map[string]int
	WakesSecondHalf map[string]int
	// Recall per mode measured on the second half (tuning must not cost
	// detectable events).
	Recall map[string]float64
	// FinalFactor is the tuner's strictness factor at trace end.
	FinalFactor float64
}

// AdaptiveTuning replays a group-2 robot run through the full
// manager/link/hub stack twice — once without feedback and once with the
// application reporting wake-up verdicts — and compares wake-up counts per
// trace half.
func AdaptiveTuning(w *Workload) (*AdaptiveTuningResult, error) {
	tr := w.RobotGroup(2)[0]
	app := apps.Steps()

	// A deliberately loose variant of the steps condition: it fires on
	// transitions and scuffs, not only on walking.
	loose := func() *core.Pipeline {
		p := core.NewPipeline("steps-loose")
		p.AddBranch(core.NewBranch(core.AccelX).
			Add(core.MovingAverage(3)).
			Add(core.Window(25, 12, "rectangular")).
			Add(core.Stat("stddev")).
			Add(core.MinThreshold(0.30)))
		return p
	}

	out := &AdaptiveTuningResult{
		WakesFirstHalf:  make(map[string]int),
		WakesSecondHalf: make(map[string]int),
		Recall:          make(map[string]float64),
	}
	x := tr.Channels[core.AccelX]
	half := len(x) / 2
	truth := tr.EventsLabeled(app.Label)

	// A wake is legitimate when it lands inside (or just after) a walking
	// bout; everything else — scuffs, transitions, noise — is a false
	// positive the tuner should learn away.
	walkHorizon := int(2 * tr.RateHz)
	walks := tr.EventsLabeled(tracegen.LabelWalk)
	isLegit := func(sample int) bool {
		for _, wv := range walks {
			if sample >= wv.Start-walkHorizon && sample <= wv.End+walkHorizon {
				return true
			}
		}
		return false
	}

	// The two modes replay the trace through independent testbeds, so
	// they run as two cells of the pool.
	modes := []string{"static", "tuned"}
	type modeOutcome struct {
		firstHalf, secondHalf int
		recall                float64
		finalFactor           float64
	}
	outcomes, err := parallel.Map(w.Workers, len(modes), func(mi int) (modeOutcome, error) {
		mode := modes[mi]
		var mo modeOutcome
		bed, err := manager.NewTestbed(manager.TestbedConfig{})
		if err != nil {
			return mo, err
		}
		var wakeSamples []int
		sampleIdx := 0
		var pendingVerdicts []bool
		id, _, err := bed.Push(loose(), manager.ListenerFunc(func(e manager.Event) {
			wakeSamples = append(wakeSamples, sampleIdx)
			// The application classifies the delivered buffer: a wake-up
			// with no detectable steps in the data is a false positive.
			buf := &sensor.Trace{
				RateHz:   tr.RateHz,
				Channels: map[core.SensorChannel][]float64{core.AccelX: e.Data[core.AccelX]},
			}
			dets := app.Detector.Detect(buf, 0, buf.Len())
			pendingVerdicts = append(pendingVerdicts, len(dets) == 0)
		}))
		if err != nil {
			return mo, err
		}
		for i, v := range x {
			sampleIdx = i
			if err := bed.Feed(core.AccelX, v); err != nil {
				return mo, err
			}
			if mode == "tuned" {
				for _, fp := range pendingVerdicts {
					if err := bed.Feedback(id, fp); err != nil {
						return mo, err
					}
				}
			}
			pendingVerdicts = pendingVerdicts[:0]
		}
		for _, s := range wakeSamples {
			if isLegit(s) {
				continue // count only false-positive wakes
			}
			if s < half {
				mo.firstHalf++
			} else {
				mo.secondHalf++
			}
		}
		// Recall on the second half: an event is caught if a wake lands
		// within its pre-buffer horizon.
		horizon := int(app.PreBufferSec * tr.RateHz)
		caught, total := 0, 0
		for _, e := range truth {
			if e.Start < half {
				continue
			}
			total++
			for _, s := range wakeSamples {
				if s >= e.Start-horizon && s <= e.End+horizon {
					caught++
					break
				}
			}
		}
		mo.recall = 1
		if total > 0 {
			mo.recall = float64(caught) / float64(total)
		}
		if mode == "tuned" {
			mo.finalFactor, _ = bed.Hub.TuningFactor(id)
		}
		return mo, nil
	})
	if err != nil {
		return nil, err
	}
	for mi, mode := range modes {
		out.WakesFirstHalf[mode] = outcomes[mi].firstHalf
		out.WakesSecondHalf[mode] = outcomes[mi].secondHalf
		out.Recall[mode] = outcomes[mi].recall
		if mode == "tuned" {
			out.FinalFactor = outcomes[mi].finalFactor
		}
	}

	table := &Table{
		Title:  "Extension (paper §7): feedback-driven threshold tuning on a loose steps condition",
		Header: []string{"Mode", "FP wakes (1st half)", "FP wakes (2nd half)", "Step recall (2nd half)"},
		Note:   fmt.Sprintf("One group-2 robot run through the full manager/link/hub stack; final tuning factor %.2f.", out.FinalFactor),
	}
	for _, mode := range []string{"static", "tuned"} {
		table.Rows = append(table.Rows, []string{
			mode,
			fmt.Sprintf("%d", out.WakesFirstHalf[mode]),
			fmt.Sprintf("%d", out.WakesSecondHalf[mode]),
			fmt.Sprintf("%.0f%%", out.Recall[mode]*100),
		})
	}
	out.Table = table
	return out, nil
}
