package telemetry

import "sort"

// StageStat accumulates the execution of one pipeline-stage kind inside an
// interpreter: how often it ran, the abstract work it performed (catalog
// float/int operation units), and how often it emitted a value downstream.
// Fields are plain — an interpreter machine is single-goroutine, and the
// parallel evaluation pool gives each cell its own profile — so recording
// is a handful of adds: no locks, no allocation, nothing on the hot path
// beyond the arithmetic.
type StageStat struct {
	Kind        string
	Invocations int64
	Emissions   int64
	FloatOps    float64
	IntOps      float64
}

// Record accounts one node execution. No-op on a nil stat, so machines can
// keep a nil-filled handle table when telemetry is disabled.
func (s *StageStat) Record(floatOps, intOps float64, emitted bool) {
	if s == nil {
		return
	}
	s.Invocations++
	s.FloatOps += floatOps
	s.IntOps += intOps
	if emitted {
		s.Emissions++
	}
}

// RecordBlock accounts n node executions with emitted emissions in one
// call — the block-dispatch path's batched equivalent of n Record calls.
// Per-execution costs in this codebase are integer- or dyadic-valued, so
// the batched float accumulation is bit-identical to n sequential adds.
// No-op on a nil stat.
func (s *StageStat) RecordBlock(floatOps, intOps float64, n, emitted int64) {
	if s == nil {
		return
	}
	s.Invocations += n
	s.FloatOps += floatOps * float64(n)
	s.IntOps += intOps * float64(n)
	s.Emissions += emitted
}

// InterpProfile is a per-machine table of stage statistics keyed by stage
// kind. A machine interns one *StageStat per node at attach time and
// afterwards records through the pre-resolved handles. Nil-safe: a nil
// profile interns nil handles.
type InterpProfile struct {
	byKind map[string]*StageStat
	order  []*StageStat
}

// NewInterpProfile returns an empty profile.
func NewInterpProfile() *InterpProfile {
	return &InterpProfile{byKind: make(map[string]*StageStat)}
}

// Stage returns the stat handle for a stage kind, creating it on first
// use. Nil-safe: a nil profile returns a nil handle.
func (p *InterpProfile) Stage(kind string) *StageStat {
	if p == nil {
		return nil
	}
	if s, ok := p.byKind[kind]; ok {
		return s
	}
	s := &StageStat{Kind: kind}
	p.byKind[kind] = s
	p.order = append(p.order, s)
	return s
}

// Stages returns every stat sorted by kind (nil on a nil profile).
func (p *InterpProfile) Stages() []*StageStat {
	if p == nil {
		return nil
	}
	out := append([]*StageStat(nil), p.order...)
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// TotalOps sums the recorded work across all stages.
func (p *InterpProfile) TotalOps() (floatOps, intOps float64) {
	if p == nil {
		return 0, 0
	}
	for _, s := range p.order {
		floatOps += s.FloatOps
		intOps += s.IntOps
	}
	return floatOps, intOps
}

// DepositCycles converts the profile's per-stage work into device cycles
// (cyclesPerFloatOp/cyclesPerIntOp are the hub device's conversion rates)
// and attributes them to the ledger. No-op when either side is nil.
func (p *InterpProfile) DepositCycles(l *Ledger, cyclesPerFloatOp, cyclesPerIntOp float64) {
	if p == nil || l == nil {
		return
	}
	for _, s := range p.order {
		l.AddStageCycles(s.Kind, s.FloatOps*cyclesPerFloatOp+s.IntOps*cyclesPerIntOp)
	}
}
