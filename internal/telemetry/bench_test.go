package telemetry

import "testing"

// The disabled-path benchmarks pin the cost of instrumentation when
// telemetry is off: every handle is nil and every call must be a
// zero-allocation early return. `make bench-telemetry` runs these plus the
// instrumented interpreter benchmarks in internal/interp.

func BenchmarkDisabledCounterInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkDisabledHistogramObserve(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i))
	}
}

func BenchmarkDisabledStageRecord(b *testing.B) {
	var s *StageStat
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Record(10, 2, i&1 == 0)
	}
}

func BenchmarkDisabledStreamInstant(b *testing.B) {
	var s *Stream
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Instant1("wake", "hub", "value", float64(i))
	}
}

func BenchmarkEnabledCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkEnabledHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench", []float64{1, 10, 100, 1000})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 2000))
	}
}

func BenchmarkEnabledStageRecord(b *testing.B) {
	s := NewInterpProfile().Stage("window")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Record(10, 2, i&1 == 0)
	}
}

// TestDisabledPathAllocs enforces the 0 allocs/op contract directly, so a
// regression fails tests rather than only showing in benchmark output.
func TestDisabledPathAllocs(t *testing.T) {
	var c *Counter
	var h *Histogram
	var s *StageStat
	var st *Stream
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		h.Observe(3)
		s.Record(1, 1, true)
		st.Instant("a", "b")
		st.Instant1("a", "b", "k", 1)
		st.Span("a", "b", 0, 1)
	})
	if allocs != 0 {
		t.Errorf("disabled telemetry allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestEnabledHotPathAllocs enforces that the metric handles themselves are
// allocation-free even when live — they must be safe inside the
// interpreter inner loop and the parallel evaluation pool.
func TestEnabledHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", []float64{1, 10, 100})
	g := r.Gauge("g")
	s := NewInterpProfile().Stage("window")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Add(0.5)
		h.Observe(42)
		s.Record(10, 2, true)
	})
	if allocs != 0 {
		t.Errorf("enabled metric handles allocate %.1f allocs/op, want 0", allocs)
	}
}
