package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("a.gauge")
	g.Set(2.5)
	g.Add(0.5)
	if got := g.Value(); got != 3 {
		t.Errorf("gauge = %g, want 3", got)
	}
	if r.Counter("a.count") != c {
		t.Error("re-registering a counter must return the interned handle")
	}
	if r.Gauge("a.gauge") != g {
		t.Error("re-registering a gauge must return the interned handle")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Errorf("count = %d, want 6", got)
	}
	if got := h.Sum(); got != 5556.5 {
		t.Errorf("sum = %g, want 5556.5", got)
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Kind != "histogram" {
		t.Fatalf("snapshot = %+v", snap)
	}
	wantCounts := []int64{2, 1, 1, 2} // <=1, <=10, <=100, +Inf
	for i, b := range snap[0].Buckets {
		if b.Count != wantCounts[i] {
			t.Errorf("bucket %d count = %d, want %d", i, b.Count, wantCounts[i])
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("concurrent")
	h := r.Histogram("hist", []float64{10})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 20))
				r.Gauge("late.gauge").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := h.Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
	if got := r.Gauge("late.gauge").Value(); got != 8000 {
		t.Errorf("gauge = %g, want 8000", got)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", []float64{1})
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles must read zero")
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot must be nil")
	}
	var l *Ledger
	l.AddEnergyMJ(PhoneAwake, 1)
	l.AddStageCycles("window", 1)
	if l.TotalMJ() != 0 || l.TotalCycles() != 0 {
		t.Error("nil ledger must read zero")
	}
	var tr *Tracer
	s := tr.Stream("phone", nil)
	s.Instant("wake", "hub")
	s.Instant1("wake", "hub", "v", 1)
	s.Span("span", "hub", 0, 1)
	s.Counter("c", 1)
	if tr.Events() != 0 {
		t.Error("nil tracer must buffer nothing")
	}
	var set *Set
	if set.Enabled() || set.MetricsSink() != nil || set.LedgerSink() != nil || set.TracerSink() != nil {
		t.Error("nil set must be fully disabled")
	}
}

func TestExporters(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(7)
	r.Gauge("a.gauge").Set(1.5)
	r.Histogram("c.hist", []float64{1}).Observe(2)

	var text strings.Builder
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a.gauge", "b.count", "counter 7", "gauge 1.5", "le=+Inf"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text export missing %q:\n%s", want, text.String())
		}
	}

	var js strings.Builder
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var snap []MetricSnapshot
	if err := json.Unmarshal([]byte(js.String()), &snap); err != nil {
		t.Fatalf("JSON export does not round-trip: %v\n%s", err, js.String())
	}
	if len(snap) != 3 {
		t.Errorf("JSON export has %d metrics, want 3", len(snap))
	}
}

func TestLedgerAccounting(t *testing.T) {
	l := NewLedger()
	l.AddEnergyMJ(PhoneAsleep, 10)
	l.AddEnergyMJ(PhoneAwake, 20)
	l.AddEnergyMJ(HubDevice, 5)
	l.AddEnergyMJ(LinkWire, 1.5)
	l.AddEnergyMJ(LinkRetransmit, 0.5)
	if got := l.TotalMJ(); got != 37 {
		t.Errorf("total = %g, want 37", got)
	}
	if got := l.EnergyMJ(PhoneAwake); got != 20 {
		t.Errorf("phone awake = %g, want 20", got)
	}
	l.AddStageCycles("window", 100)
	l.AddStageCycles("fft", 300)
	l.AddStageCycles("window", 50)
	if got := l.StageCycles("window"); got != 150 {
		t.Errorf("window cycles = %g, want 150", got)
	}
	if got := l.TotalCycles(); got != 450 {
		t.Errorf("total cycles = %g, want 450", got)
	}

	var text strings.Builder
	if err := l.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"phone.awake", "hub.device", "link.retransmit", "fft"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("ledger text missing %q:\n%s", want, text.String())
		}
	}
	var js strings.Builder
	if err := l.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var snap LedgerSnapshot
	if err := json.Unmarshal([]byte(js.String()), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.TotalMJ != 37 || snap.TotalCycles != 450 {
		t.Errorf("snapshot totals = %g mJ / %g cycles, want 37 / 450", snap.TotalMJ, snap.TotalCycles)
	}
}

func TestInterpProfile(t *testing.T) {
	p := NewInterpProfile()
	w := p.Stage("window")
	f := p.Stage("fft")
	if p.Stage("window") != w {
		t.Error("stage handles must be interned")
	}
	w.Record(10, 2, true)
	w.Record(10, 2, false)
	f.Record(100, 0, true)
	if w.Invocations != 2 || w.Emissions != 1 || w.FloatOps != 20 || w.IntOps != 4 {
		t.Errorf("window stat = %+v", *w)
	}
	fl, in := p.TotalOps()
	if fl != 120 || in != 4 {
		t.Errorf("total ops = %g/%g, want 120/4", fl, in)
	}
	stages := p.Stages()
	if len(stages) != 2 || stages[0].Kind != "fft" || stages[1].Kind != "window" {
		t.Errorf("stages not sorted by kind: %+v", stages)
	}

	l := NewLedger()
	p.DepositCycles(l, 3, 1) // LM4F120-style rates
	if got := l.StageCycles("fft"); got != 300 {
		t.Errorf("fft cycles = %g, want 300", got)
	}
	if got := l.StageCycles("window"); got != 64 {
		t.Errorf("window cycles = %g, want 64", got)
	}

	var nilP *InterpProfile
	nilP.Stage("x").Record(1, 1, true)
	if fl, in := nilP.TotalOps(); fl != 0 || in != 0 {
		t.Error("nil profile must record nothing")
	}
}
