package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. Registration (Counter, Gauge, Histogram)
// takes a lock and interns the handle; the returned handles themselves are
// lock-free — counters and gauges are single atomic words, histograms an
// atomic word per bucket — so instrumented hot paths never contend and
// never allocate. Registering the same name twice returns the same handle,
// which is how two endpoints of one link share a counter.
type Registry struct {
	mu     sync.Mutex
	order  []string // registration order, for stable zero-diff exports
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the handle for a monotonically increasing count,
// creating it on first use. Nil-safe: a nil registry returns a nil handle,
// whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counts[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counts[name] = c
	r.order = append(r.order, name)
	return c
}

// Gauge returns the handle for a point-in-time value, creating it on first
// use. Nil-safe like Counter.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	r.gauges[name] = g
	r.order = append(r.order, name)
	return g
}

// Histogram returns the handle for a fixed-bucket distribution, creating
// it on first use with the given upper bounds (ascending; an implicit
// +Inf bucket is appended). Re-registering an existing name returns the
// existing handle and ignores the bounds. Nil-safe like Counter.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{
		name:   name,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.hists[name] = h
	r.order = append(r.order, name)
	return h
}

// Counter is a monotonically increasing count. The zero value of the
// pointer (nil) is a disabled counter.
type Counter struct {
	name string
	v    atomic.Int64
}

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time float value. Nil is disabled.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds d to the gauge. No-op on a nil gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution: Observe finds the first bound
// >= v (binary search over a small immutable slice, no allocation) and
// increments that bucket's atomic count. Nil is disabled.
type Histogram struct {
	name   string
	bounds []float64      // ascending upper bounds
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    Gauge          // running sum of observations
}

// Observe records one sample. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Quantile returns a bucket-interpolated estimate of the q-quantile of
// the observed distribution (q clamped to [0,1]; 0 on a nil or empty
// histogram). Within the bucket holding the target rank the estimate
// interpolates linearly between the bucket's edges; the first bucket's
// lower edge is taken as 0 unless its upper bound is non-positive, and a
// rank landing in the +Inf overflow bucket saturates at the largest
// finite bound. Accuracy is therefore one bucket width — good enough for
// the tail-latency reporting the fleet daemon and load generator do
// without a streaming-quantile dependency.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// One consistent pass over the atomic bucket counts: concurrent
	// Observe calls may land between loads, shifting the estimate by at
	// most those late samples — fine for a monitoring read.
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= target {
			if i == len(h.bounds) {
				// Overflow bucket: no finite upper edge to interpolate
				// toward. Saturate at the largest finite bound (0 when
				// the histogram has no finite buckets at all).
				if len(h.bounds) == 0 {
					return 0
				}
				return h.bounds[len(h.bounds)-1]
			}
			upper := h.bounds[i]
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			} else if upper <= 0 {
				return upper
			}
			frac := (target - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lower + (upper-lower)*frac
		}
		cum += c
	}
	// Unreachable: the loop always terminates inside a bucket because
	// target <= total. Kept for the compiler.
	return 0
}

// HistogramBucket is one exported bucket: the count of observations at or
// below UpperBound (IsInf for the overflow bucket).
type HistogramBucket struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// MarshalJSON renders the upper bound as a string so the +Inf overflow
// bucket survives encoding/json, which rejects infinite floats.
func (b HistogramBucket) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.UpperBound, 1) {
		le = strconv.FormatFloat(b.UpperBound, 'g', -1, 64)
	}
	return json.Marshal(struct {
		UpperBound string `json:"le"`
		Count      int64  `json:"count"`
	}{le, b.Count})
}

// UnmarshalJSON is the inverse of MarshalJSON, so exported snapshots
// round-trip through encoding/json.
func (b *HistogramBucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		UpperBound string `json:"le"`
		Count      int64  `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	if raw.UpperBound == "+Inf" {
		b.UpperBound = math.Inf(1)
		return nil
	}
	v, err := strconv.ParseFloat(raw.UpperBound, 64)
	if err != nil {
		return err
	}
	b.UpperBound = v
	return nil
}

// MetricSnapshot is one metric's exported state.
type MetricSnapshot struct {
	Name    string            `json:"name"`
	Kind    string            `json:"kind"` // "counter" | "gauge" | "histogram"
	Value   float64           `json:"value,omitempty"`
	Sum     float64           `json:"sum,omitempty"`
	Count   int64             `json:"count,omitempty"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot returns every metric in registration order.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MetricSnapshot, 0, len(r.order))
	for _, name := range r.order {
		switch {
		case r.counts[name] != nil:
			out = append(out, MetricSnapshot{
				Name: name, Kind: "counter", Value: float64(r.counts[name].Value()),
			})
		case r.gauges[name] != nil:
			out = append(out, MetricSnapshot{
				Name: name, Kind: "gauge", Value: r.gauges[name].Value(),
			})
		case r.hists[name] != nil:
			h := r.hists[name]
			s := MetricSnapshot{Name: name, Kind: "histogram", Sum: h.Sum(), Count: h.Count()}
			for i := range h.counts {
				b := HistogramBucket{UpperBound: math.Inf(1), Count: h.counts[i].Load()}
				if i < len(h.bounds) {
					b.UpperBound = h.bounds[i]
				}
				s.Buckets = append(s.Buckets, b)
			}
			out = append(out, s)
		}
	}
	return out
}

// WriteText renders the registry as aligned name-sorted text.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	sort.Slice(snap, func(i, j int) bool { return snap[i].Name < snap[j].Name })
	var b strings.Builder
	for _, m := range snap {
		switch m.Kind {
		case "histogram":
			fmt.Fprintf(&b, "%-40s histogram count=%d sum=%g\n", m.Name, m.Count, m.Sum)
			for _, bk := range m.Buckets {
				le := "+Inf"
				if !math.IsInf(bk.UpperBound, 1) {
					le = fmt.Sprintf("%g", bk.UpperBound)
				}
				fmt.Fprintf(&b, "%-40s   le=%-10s %d\n", m.Name, le, bk.Count)
			}
		default:
			fmt.Fprintf(&b, "%-40s %s %g\n", m.Name, m.Kind, m.Value)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders the registry snapshot as a JSON array.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	if snap == nil {
		snap = []MetricSnapshot{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}
