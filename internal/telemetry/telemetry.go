// Package telemetry is the runtime observability layer: a zero-allocation
// metrics registry, an energy ledger that attributes every simulated
// millijoule to a component and every hub cycle to a pipeline stage, and a
// structured event tracer that exports Chrome trace_event JSON loadable in
// Perfetto or chrome://tracing.
//
// Every sink is strictly opt-in. Instrumented components hold handles
// (*Counter, *Gauge, *Histogram, *Stream, *Ledger) that are nil when
// telemetry is disabled, and every handle method is nil-safe: a nil
// receiver is a no-op. Call sites therefore stay branch-cheap and
// allocation-free on hot paths — the paper's interpreter inner loop keeps
// its 0 allocs/op contract whether or not it is instrumented.
//
// Handles are pre-interned: components resolve their counters and streams
// once at construction (Registry.Counter, Tracer.Stream) and afterwards
// touch only atomic words, so the registry is safe for concurrent use by
// the parallel evaluation pool.
package telemetry

// Set bundles the three telemetry sinks a component may be wired to. A nil
// *Set — or any nil field — disables the corresponding instrumentation;
// the zero value is a fully disabled set.
type Set struct {
	// Metrics is the counter/gauge/histogram registry.
	Metrics *Registry
	// Ledger attributes simulated energy and hub cycles.
	Ledger *Ledger
	// Tracer records timestamped execution events.
	Tracer *Tracer
}

// Enabled reports whether any sink is attached.
func (s *Set) Enabled() bool {
	return s != nil && (s.Metrics != nil || s.Ledger != nil || s.Tracer != nil)
}

// MetricsSink returns the registry, nil-safe on a nil set.
func (s *Set) MetricsSink() *Registry {
	if s == nil {
		return nil
	}
	return s.Metrics
}

// LedgerSink returns the ledger, nil-safe on a nil set.
func (s *Set) LedgerSink() *Ledger {
	if s == nil {
		return nil
	}
	return s.Ledger
}

// TracerSink returns the tracer, nil-safe on a nil set.
func (s *Set) TracerSink() *Tracer {
	if s == nil {
		return nil
	}
	return s.Tracer
}

// Clock is a simulated-time source shared by the streams of one run. The
// driver (a simulation loop that knows the sample rate) advances it; every
// stream stamping an event reads it. One writer, many readers, all on the
// same goroutine — a run owns its clock.
type Clock struct {
	us float64 // microseconds since run start
}

// SetSec positions the clock at sec seconds since the run started.
func (c *Clock) SetSec(sec float64) {
	if c == nil {
		return
	}
	c.us = sec * 1e6
}

// NowUS returns the current time in microseconds (0 on a nil clock).
func (c *Clock) NowUS() float64 {
	if c == nil {
		return 0
	}
	return c.us
}

// NowSec returns the current time in seconds (0 on a nil clock).
func (c *Clock) NowSec() float64 { return c.NowUS() / 1e6 }
