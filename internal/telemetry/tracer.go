package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// Tracer collects structured execution events — wake-ups, condition
// pushes, frame retransmissions, phone state transitions, per-stage
// execution spans — and exports them in the Chrome trace_event JSON Object
// Format, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Events are organized into Streams: one named timeline per simulated
// component (phone, hub, wire), rendered as a thread track in the viewer.
// Streams stamp events from a shared per-run Clock holding simulated time,
// so components that have no notion of time (the link layer ticks, the
// interpreter counts samples) emit correctly-placed events without
// carrying a clock themselves.
//
// The tracer is mutex-protected: parallel evaluation cells append to one
// tracer through their own streams. A nil *Tracer — and the nil *Stream it
// hands out — disables tracing with no allocation at any call site.
type Tracer struct {
	mu      sync.Mutex
	events  []traceEvent
	nextTID int
	max     int
	dropped int64
}

// DefaultMaxEvents bounds a tracer's buffered events so an unexpectedly
// chatty run degrades (drops and counts) instead of exhausting memory.
const DefaultMaxEvents = 1 << 22

// traceEvent is one Chrome trace_event entry.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// NewTracer returns an empty tracer with the default event cap.
func NewTracer() *Tracer { return &Tracer{max: DefaultMaxEvents} }

// SetMaxEvents overrides the event cap (<= 0 restores the default).
func (t *Tracer) SetMaxEvents(n int) {
	if t == nil {
		return
	}
	if n <= 0 {
		n = DefaultMaxEvents
	}
	t.mu.Lock()
	t.max = n
	t.mu.Unlock()
}

// Stream registers a named timeline bound to a clock and returns its
// handle. The name becomes the thread name in the trace viewer. Nil-safe:
// a nil tracer returns a nil stream whose methods are no-ops.
func (t *Tracer) Stream(name string, clk *Clock) *Stream {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextTID++
	tid := t.nextTID
	t.mu.Unlock()
	s := &Stream{t: t, tid: tid, clk: clk}
	// Thread-name metadata event: viewers label the track with it.
	t.append(traceEvent{
		Name: "thread_name", Ph: "M", PID: tracePID, TID: tid,
		Args: map[string]any{"name": name},
	})
	return s
}

// Events returns how many events are buffered.
func (t *Tracer) Events() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events were discarded at the cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// tracePID is the constant process ID of the simulated system.
const tracePID = 1

func (t *Tracer) append(e traceEvent) {
	t.mu.Lock()
	if t.max > 0 && len(t.events) >= t.max {
		t.dropped++
	} else {
		t.events = append(t.events, e)
	}
	t.mu.Unlock()
}

// WriteJSON exports the trace in the Chrome trace_event JSON Object
// Format: {"traceEvents": [...], "displayTimeUnit": "ms"}.
func (t *Tracer) WriteJSON(w io.Writer) error {
	var events []traceEvent
	if t != nil {
		t.mu.Lock()
		events = append(events, t.events...)
		t.mu.Unlock()
	}
	if events == nil {
		events = []traceEvent{}
	}
	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{events, "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// Stream is one component's timeline within a tracer. All methods are
// nil-safe no-ops, so instrumented components hold a possibly-nil *Stream
// and emit unconditionally.
type Stream struct {
	t   *Tracer
	tid int
	clk *Clock
}

// NowSec returns the stream clock's current time in seconds (0 on nil).
func (s *Stream) NowSec() float64 {
	if s == nil {
		return 0
	}
	return s.clk.NowSec()
}

// Instant records a zero-duration event at the current clock time.
func (s *Stream) Instant(name, cat string) {
	if s == nil {
		return
	}
	s.t.append(traceEvent{Name: name, Cat: cat, Ph: "i", S: "t",
		TS: s.clk.NowUS(), PID: tracePID, TID: s.tid})
}

// Instant1 records an instant with one numeric argument.
func (s *Stream) Instant1(name, cat, key string, v float64) {
	if s == nil {
		return
	}
	s.t.append(traceEvent{Name: name, Cat: cat, Ph: "i", S: "t",
		TS: s.clk.NowUS(), PID: tracePID, TID: s.tid,
		Args: map[string]any{key: v}})
}

// Instant2 records an instant with two numeric arguments.
func (s *Stream) Instant2(name, cat, k1 string, v1 float64, k2 string, v2 float64) {
	if s == nil {
		return
	}
	s.t.append(traceEvent{Name: name, Cat: cat, Ph: "i", S: "t",
		TS: s.clk.NowUS(), PID: tracePID, TID: s.tid,
		Args: map[string]any{k1: v1, k2: v2}})
}

// InstantStr records an instant with one string argument.
func (s *Stream) InstantStr(name, cat, key, val string) {
	if s == nil {
		return
	}
	s.t.append(traceEvent{Name: name, Cat: cat, Ph: "i", S: "t",
		TS: s.clk.NowUS(), PID: tracePID, TID: s.tid,
		Args: map[string]any{key: val}})
}

// Span records a complete-duration event ("X" phase) starting at startSec
// and lasting durSec, both in simulated seconds.
func (s *Stream) Span(name, cat string, startSec, durSec float64) {
	if s == nil {
		return
	}
	s.t.append(traceEvent{Name: name, Cat: cat, Ph: "X",
		TS: startSec * 1e6, Dur: durSec * 1e6, PID: tracePID, TID: s.tid})
}

// Counter records a counter-track sample ("C" phase) at the current clock
// time; viewers render it as a stepped graph.
func (s *Stream) Counter(name string, v float64) {
	if s == nil {
		return
	}
	s.t.append(traceEvent{Name: name, Ph: "C",
		TS: s.clk.NowUS(), PID: tracePID, TID: s.tid,
		Args: map[string]any{"value": v}})
}
